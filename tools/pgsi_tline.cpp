// pgsi_tline — 2-D transmission-line parameter extraction from the command
// line.
//
//   pgsi_tline --w 0.2m --h 0.15m --er 4.5 [--n 2 --gap 0.2m] [--segments 32]
//
// Prints per-unit-length L/C matrices and the derived line figures.
#include <cstdio>

#include "tline2d/mtl_extract.hpp"
#include "tools/cli_common.hpp"

using namespace pgsi;

namespace {
constexpr const char* kUsage =
    "pgsi_tline --w <strip width> --h <substrate height> --er <eps_r>\n"
    "           [--n <conductors>] [--gap <edge gap>] [--segments n]\n"
    "           [--profile] [--trace-json out.json] [--report out.json]";
}

int main(int argc, char** argv) {
    return cli::run_tool(
        [&]() -> int {
            const cli::Args args(
                argc, argv,
                cli::ObsSession::flags({"w", "h", "er", "n", "gap", "segments"}));
            cli::ObsSession obs_session(args, "pgsi_tline", argc, argv);
            const double w = args.num("w", 0.0);
            const double h = args.num("h", 0.0);
            const double er = args.num("er", 4.5);
            PGSI_REQUIRE(w > 0 && h > 0, "--w and --h are required");
            const int n = static_cast<int>(args.num("n", 1));
            const double gap = args.num("gap", w);
            Mtl2dOptions opt;
            opt.segments_per_strip =
                static_cast<int>(args.num("segments", 32));

            std::vector<StripSpec> strips;
            for (int k = 0; k < n; ++k)
                strips.push_back(
                    {(k - 0.5 * (n - 1)) * (w + gap), w});
            const MtlParameters p = extract_microstrip(strips, er, h, opt);

            std::printf("microstrip system: %d conductor(s), w = %.4g m, "
                        "gap = %.4g m, h = %.4g m, er = %.2f\n\n",
                        n, w, gap, h, er);
            std::printf("L [nH/m]:\n");
            for (int i = 0; i < n; ++i) {
                for (int j = 0; j < n; ++j)
                    std::printf(" %10.3f", p.l(i, j) * 1e9);
                std::printf("\n");
            }
            std::printf("C [pF/m]:\n");
            for (int i = 0; i < n; ++i) {
                for (int j = 0; j < n; ++j)
                    std::printf(" %10.3f", p.c(i, j) * 1e12);
                std::printf("\n");
            }
            if (n == 1) {
                const LineFigures f = line_figures(p);
                std::printf("\nZ0 = %.2f ohm, eps_eff = %.3f, delay = %.3f "
                            "ns/m\n",
                            f.z0, f.eps_eff, f.delay_per_m * 1e9);
                if (obs::SolveReportBuilder* rep = obs_session.report()) {
                    rep->add_number("line", "z0_ohm", f.z0);
                    rep->add_number("line", "eps_eff", f.eps_eff);
                    rep->add_number("line", "delay_s_per_m", f.delay_per_m);
                }
            }
            return 0;
        },
        kUsage);
}
