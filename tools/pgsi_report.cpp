// pgsi_report — render a SolveReport JSON artifact as Markdown.
//
//   pgsi_report <report.json> [--spans N]
//
// Reads a report emitted by any pgsi tool's --report flag and prints a
// human-readable summary: slowest span paths, solver iteration statistics,
// convergence-stream digests, recoveries, resource accounting, and pool
// utilization. The output is Markdown so it pastes cleanly into issues and
// CI summaries.
#include <cstdio>

#include "io/json.hpp"
#include "obs/report.hpp"
#include "tools/cli_common.hpp"

using namespace pgsi;

namespace {
constexpr const char* kUsage = "pgsi_report <report.json> [--spans N]";
}

int main(int argc, char** argv) {
    return cli::run_tool(
        [&]() -> int {
            const cli::Args args(argc, argv, {"spans"});
            PGSI_REQUIRE(args.positional().size() == 1,
                         "expected exactly one report file");
            const JsonValue report =
                parse_json_file(args.positional()[0]);
            const auto top =
                static_cast<std::size_t>(args.num("spans", 12));
            const std::string md =
                obs::render_solve_report_markdown(report, top);
            std::fputs(md.c_str(), stdout);
            return 0;
        },
        kUsage);
}
