// pgsi_batch — run a campaign of solve jobs through the fault-contained
// batch engine (pgsi::serve).
//
//   pgsi_batch <jobs.json> [--journal jobs.jsonl] [--resume]
//              [--threads n] [--cache-mb n] [--out results.json]
//
// Each job in the JSON campaign (see src/serve/job.hpp for the format) runs
// inside its own containment boundary: deadline, retry ladder, exception
// capture. Plane models are shared through the process ModelCache. With
// --journal, every finished job is fsync'd to the journal so a killed
// campaign restarted with --resume skips the completed jobs and merges to
// bit-identical results. Exit code: 0 when every job completed (or was
// resumed), 2 when some jobs failed but the batch itself ran, 1 on usage /
// campaign-level errors.
#include <cinttypes>
#include <cstdio>
#include <string>

#include "common/parallel.hpp"
#include "serve/engine.hpp"
#include "tools/cli_common.hpp"

using namespace pgsi;

namespace {

constexpr const char* kUsage =
    "pgsi_batch <jobs.json> [--journal jobs.jsonl] [--resume] [--threads n]\n"
    "           [--cache-mb n] [--out results.json]\n"
    "           [--profile] [--trace-json out.json] [--report out.json]";

void write_results_json(const std::string& path,
                        const serve::BatchResult& result) {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) throw Error("cannot write " + path);
    std::fprintf(f, "{\n  \"schema\": \"pgsi.batch_results/1\",\n");
    std::fprintf(f, "  \"jobs\": [\n");
    for (std::size_t i = 0; i < result.reports.size(); ++i) {
        const serve::JobReport& rep = result.reports[i];
        std::fprintf(f,
                     "    {\"id\": \"%s\", \"state\": \"%s\", "
                     "\"attempts\": %d, \"cache_hit\": %s, "
                     "\"digest\": \"%016" PRIx64 "\", \"summary\": %.17g, "
                     "\"wall_s\": %.6f}%s\n",
                     rep.id.c_str(), serve::to_string(rep.state), rep.attempts,
                     rep.cache_hit ? "true" : "false", rep.digest, rep.summary,
                     rep.wall_seconds,
                     i + 1 < result.reports.size() ? "," : "");
    }
    const serve::BatchStats& st = result.stats;
    std::fprintf(f, "  ],\n");
    std::fprintf(f,
                 "  \"completed\": %zu, \"failed\": %zu, "
                 "\"deadline_expired\": %zu, \"cancelled\": %zu, "
                 "\"resumed\": %zu, \"retries\": %zu,\n"
                 "  \"cache_hits\": %" PRIu64 ", \"cache_misses\": %" PRIu64
                 ", \"wall_s\": %.6f\n}\n",
                 st.completed, st.failed, st.deadline_expired, st.cancelled,
                 st.resumed, st.retries, st.cache_hits, st.cache_misses,
                 st.wall_seconds);
    std::fclose(f);
}

} // namespace

int main(int argc, char** argv) {
    return cli::run_tool(
        [&]() -> int {
            const cli::Args args(
                argc, argv,
                cli::ObsSession::flags(
                    {"journal", "resume", "threads", "cache-mb", "out"}));
            if (args.positional().size() != 1)
                throw InvalidArgument("expected exactly one job file");
            const cli::ObsSession obs_session(args, "pgsi_batch", argc, argv);

            const std::size_t threads =
                static_cast<std::size_t>(args.num("threads", 0));
            if (threads > 0) par::set_thread_count(threads);

            const serve::JobFile campaign =
                serve::parse_job_file(args.positional()[0]);

            serve::BatchOptions opt;
            opt.journal_path = args.str("journal", "");
            opt.resume = args.has("resume");
            const double cache_mb = args.num("cache-mb", 0);
            serve::ModelCache local_cache(
                static_cast<std::size_t>(cache_mb * 1024 * 1024));
            if (cache_mb > 0) opt.cache = &local_cache;

            serve::JobQueue queue(opt);
            const serve::BatchResult result = queue.run(campaign.jobs);

            std::printf("%-16s %-16s %8s %6s %10s %18s %12s\n", "job", "state",
                        "attempts", "cache", "wall [s]", "digest", "summary");
            for (const serve::JobReport& rep : result.reports) {
                std::printf("%-16s %-16s %8d %6s %10.3f   %016" PRIx64
                            " %12.4g\n",
                            rep.id.c_str(), serve::to_string(rep.state),
                            rep.attempts, rep.cache_hit ? "hit" : "miss",
                            rep.wall_seconds, rep.digest, rep.summary);
                if (!rep.error.empty())
                    std::printf("  ^ %s\n", rep.error.c_str());
            }
            const serve::BatchStats& st = result.stats;
            std::printf(
                "\n%zu completed, %zu resumed, %zu failed, %zu deadline, "
                "%zu cancelled; %zu retries; cache %" PRIu64 "/%" PRIu64
                " hits; %.3f s\n",
                st.completed, st.resumed, st.failed, st.deadline_expired,
                st.cancelled, st.retries, st.cache_hits,
                st.cache_hits + st.cache_misses, st.wall_seconds);

            const std::string out = args.str("out", "");
            if (!out.empty()) {
                write_results_json(out, result);
                std::printf("wrote %s\n", out.c_str());
            }
            return result.all_completed() ? 0 : 2;
        },
        kUsage);
}
