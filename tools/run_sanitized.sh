#!/usr/bin/env bash
# Configure a fresh sanitized build tree and run tests under it.
#
# Usage: tools/run_sanitized.sh [--tsan|--verify] [build-dir] [ctest args...]
#
# Default mode builds with ASan+UBSan and runs the full suite. --tsan builds
# with ThreadSanitizer (its own build dir: the two sanitizers cannot share
# object files) and runs the concurrency-sensitive suites — the pgsi::par
# pool, the parallel BEM assembly, the dense kernels, the FFT/GMRES numerics,
# both sweep solvers, and the pgsi::robust recovery / fault-injection suites
# (the FaultInjector and the solver recovery ladders are reached from pool
# workers) — unless explicit ctest args are given.
#
# --verify runs the property-based harness under both sanitizers: a 25
# iteration all-suite pgsi_verify campaign under ASan+UBSan (randomized
# geometries drive memory-error-prone assembly/solve paths), then the
# backend-equivalence suite under TSan (the dense-vs-iterative cross-check
# exercises the pool, the displacement cache, and the FFT operator
# concurrently).
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"

mode=address
case "${1:-}" in
  --tsan)
    mode=thread
    shift
    ;;
  --verify)
    mode=verify
    shift
    ;;
esac

if [[ $mode == verify ]]; then
  asan_dir="${1:-$repo_root/build-sanitize}"
  tsan_dir="$repo_root/build-tsan"
  export ASAN_OPTIONS="${ASAN_OPTIONS:-halt_on_error=1:detect_leaks=0}"
  export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}"
  export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1:second_deadlock_stack=1}"

  cmake -B "$asan_dir" -S "$repo_root" -DPGSI_SANITIZE=ON \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build "$asan_dir" -j"$(nproc)" --target pgsi_verify
  echo "== ASan/UBSan verify campaign =="
  "$asan_dir/tools/pgsi_verify" --iters 25 --seed 1 --suite all

  cmake -B "$tsan_dir" -S "$repo_root" -DPGSI_SANITIZE=thread \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build "$tsan_dir" -j"$(nproc)" --target pgsi_verify
  echo "== TSan backend-equivalence campaign =="
  "$tsan_dir/tools/pgsi_verify" --iters 10 --seed 1 --suite backends
  exit 0
fi

if [[ $mode == thread ]]; then
  default_dir="$repo_root/build-tsan"
else
  default_dir="$repo_root/build-sanitize"
fi
build_dir="${1:-$default_dir}"
shift || true

if [[ $mode == thread ]]; then
  cmake -B "$build_dir" -S "$repo_root" -DPGSI_SANITIZE=thread \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
else
  cmake -B "$build_dir" -S "$repo_root" -DPGSI_SANITIZE=ON \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
fi
cmake --build "$build_dir" -j"$(nproc)"

# halt_on_error keeps ctest exit codes meaningful; UBSan prints where it
# fired; TSan's second_deadlock_stack names both locks of a lock-order report.
export ASAN_OPTIONS="${ASAN_OPTIONS:-halt_on_error=1:detect_leaks=0}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}"
export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1:second_deadlock_stack=1}"

cd "$build_dir"
if [[ $mode == thread && $# -eq 0 ]]; then
  ctest --output-on-failure -j"$(nproc)" \
    -R 'Parallel|BemCache|Gemm|Lu\.|Cholesky|DirectSolver|Fft|Gmres|IterativeSolver|Robust|RobustEnv|ObsMetrics|ObsTest|ReportTest|JsonParser|BenchGate|ServeEnv|ServeEngine|ModelCache|Journal'
else
  ctest --output-on-failure -j"$(nproc)" "$@"
fi
