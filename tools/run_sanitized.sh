#!/usr/bin/env bash
# Configure a fresh ASan/UBSan build tree and run the full test suite under
# it. Usage: tools/run_sanitized.sh [build-dir] [ctest args...]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build-sanitize}"
shift || true

cmake -B "$build_dir" -S "$repo_root" -DPGSI_SANITIZE=ON \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$build_dir" -j"$(nproc)"

# halt_on_error keeps ctest exit codes meaningful; UBSan prints where it fired.
export ASAN_OPTIONS="${ASAN_OPTIONS:-halt_on_error=1:detect_leaks=0}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}"

cd "$build_dir"
ctest --output-on-failure -j"$(nproc)" "$@"
