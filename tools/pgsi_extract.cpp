// pgsi_extract — extract a power-plane macromodel from a board file.
//
//   pgsi_extract <board-file> [--pitch 10m] [--interior 16] [--prune 0.02]
//                [--spice out.sp] [--touchstone out.sNp]
//                [--fstart 10meg] [--fstop 5g] [--points 20]
//
// Ports are the driver Vcc pins (in board-file order) plus the VRM
// connection. Writes a SPICE subcircuit and/or a Touchstone S-parameter
// sweep and prints a summary.
#include <cstdio>
#include <fstream>

#include "circuit/sparams.hpp"
#include "extract/spice_export.hpp"
#include "extract/vector_fit.hpp"
#include "io/touchstone.hpp"
#include "si/board_file.hpp"
#include "si/cosim.hpp"
#include "tools/cli_common.hpp"

using namespace pgsi;

namespace {
constexpr const char* kUsage =
    "pgsi_extract <board-file> [--pitch m] [--interior n] [--prune x]\n"
    "             [--spice out.sp] [--touchstone out.sNp]\n"
    "             [--fstart hz] [--fstop hz] [--points n]\n"
    "             [--fit npoles --fit-spice out.sp]\n"
    "             [--profile] [--trace-json out.json] [--report out.json]";
}

int main(int argc, char** argv) {
    return cli::run_tool(
        [&]() -> int {
            const cli::Args args(
                argc, argv,
                cli::ObsSession::flags({"pitch", "interior", "prune", "spice",
                                        "touchstone", "fstart", "fstop",
                                        "points", "fit", "fit-spice"}));
            cli::ObsSession obs_session(args, "pgsi_extract", argc, argv);
            PGSI_REQUIRE(args.positional().size() == 1,
                         "expected exactly one board file");
            const Board board = load_board_file(args.positional()[0]);

            SsnModelOptions opt;
            opt.mesh_pitch = args.num("pitch", 10e-3);
            opt.interior_nodes =
                static_cast<std::size_t>(args.num("interior", 16));
            opt.prune_rel_tol = args.num("prune", 0.02);
            const PlaneModel plane(board, opt);
            const EquivalentCircuit& ec = plane.circuit();

            std::printf("board: %.0f x %.0f mm, %zu driver sites, %zu decaps\n",
                        board.width() * 1e3, board.height() * 1e3,
                        board.driver_sites().size(), board.decaps().size());
            std::printf("mesh: %zu cells; circuit: %zu nodes, %zu branches, "
                        "C_total = %.2f nF\n",
                        plane.bem().node_count(), ec.node_count(),
                        ec.branches.size(),
                        ec.total_reference_capacitance() * 1e9);

            if (obs::SolveReportBuilder* rep = obs_session.report()) {
                rep->add_text("model", "board", args.positional()[0]);
                rep->add_number("model", "mesh_cells",
                                static_cast<double>(plane.bem().node_count()));
                rep->add_number("model", "circuit_nodes",
                                static_cast<double>(ec.node_count()));
                rep->add_number("model", "circuit_branches",
                                static_cast<double>(ec.branches.size()));
                rep->add_number("model", "c_total_f",
                                ec.total_reference_capacitance());
            }

            if (args.has("spice")) {
                std::ofstream f(args.str("spice", ""));
                PGSI_REQUIRE(f.good(), "cannot open SPICE output file");
                write_spice_subckt(f, ec, "pgsi_plane");
                std::printf("wrote SPICE subckt: %s\n",
                            args.str("spice", "").c_str());
            }

            if (args.has("touchstone")) {
                std::vector<std::size_t> ports;
                for (std::size_t s = 0; s < board.driver_sites().size(); ++s)
                    ports.push_back(plane.site_vcc_node(s));
                ports.push_back(plane.vrm_vcc_node());
                const VectorD freqs =
                    log_space(args.num("fstart", 10e6), args.num("fstop", 5e9),
                              static_cast<int>(args.num("points", 20)));
                std::vector<MatrixC> sweep;
                for (double f : freqs)
                    sweep.push_back(z_to_s(ec.impedance(f, ports), 50.0));
                write_touchstone_file(args.str("touchstone", ""), freqs, sweep,
                                      50.0);
                std::printf("wrote %zu-port Touchstone sweep (%zu points): %s\n",
                            ports.size(), freqs.size(),
                            args.str("touchstone", "").c_str());
            }
            if (args.has("fit")) {
                // Broadband rational macromodel of Z11 at the first driver
                // pin, synthesized as a Foster SPICE network.
                PGSI_REQUIRE(!board.driver_sites().empty(),
                             "--fit needs at least one driver site");
                const std::size_t port = plane.site_vcc_node(0);
                const VectorD freqs =
                    lin_space(args.num("fstart", 10e6), args.num("fstop", 5e9),
                              120);
                VectorC h(freqs.size());
                for (std::size_t i = 0; i < freqs.size(); ++i)
                    h[i] = ec.impedance(freqs[i], {port})(0, 0);
                VectorFitOptions vfo;
                vfo.n_poles = static_cast<int>(args.num("fit", 12));
                vfo.iterations = 25;
                const RationalFit fit = vector_fit(freqs, h, vfo);
                std::printf("vector fit: %d poles, max relative error %.3f%%\n",
                            vfo.n_poles,
                            100 * fit.max_relative_error(freqs, h));
                if (args.has("fit-spice")) {
                    Netlist nl;
                    const NodeId a = nl.node("port");
                    stamp_foster_impedance(nl, "Zpdn", a, nl.ground(), fit);
                    std::ofstream f(args.str("fit-spice", ""));
                    PGSI_REQUIRE(f.good(), "cannot open --fit-spice file");
                    f << "* pgsi Foster macromodel of Z11 (vector fit)\n";
                    f << ".SUBCKT pdn_z11 port 0\n";
                    f.precision(9);
                    for (const Resistor& r : nl.resistors())
                        f << r.name << " " << nl.node_name(r.a) << " "
                          << nl.node_name(r.b) << " " << r.r << "\n";
                    for (const Capacitor& c : nl.capacitors())
                        f << c.name << " " << nl.node_name(c.a) << " "
                          << nl.node_name(c.b) << " " << c.c << "\n";
                    for (const Inductor& l : nl.inductors()) {
                        if (l.r != 0) {
                            f << "R" << l.name << " " << nl.node_name(l.a)
                              << " m" << l.name << " " << l.r << "\n";
                            f << l.name << " m" << l.name << " "
                              << nl.node_name(l.b) << " " << l.l << "\n";
                        } else {
                            f << l.name << " " << nl.node_name(l.a) << " "
                              << nl.node_name(l.b) << " " << l.l << "\n";
                        }
                    }
                    f << ".ENDS pdn_z11\n";
                    std::printf("wrote Foster macromodel: %s\n",
                                args.str("fit-spice", "").c_str());
                }
            }
            return 0;
        },
        kUsage);
}
