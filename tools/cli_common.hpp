// Minimal argument parsing shared by the pgsi command-line tools.
#pragma once

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include <memory>

#include "circuit/parser.hpp"
#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/resource.hpp"
#include "obs/stream.hpp"
#include "obs/trace.hpp"

namespace pgsi::cli {

/// Observability flags shared by every pgsi tool:
///   --profile            enable tracing; print the span timing tree and the
///                        metrics table when the tool finishes
///   --trace-json <file>  enable tracing; write Chrome-trace JSON on exit
///                        (loads in chrome://tracing or Perfetto)
///   --report <file>      enable tracing, convergence streams, and resource
///                        accounting; write a SolveReport JSON artifact on
///                        exit (render with tools/pgsi_report)
/// Construct one right after argument parsing; the destructor emits the
/// reports even when the tool body throws.
class ObsSession {
public:
    /// Flag names to append to a tool's known-flags list.
    static std::vector<std::string> flags(std::vector<std::string> base) {
        base.push_back("profile");
        base.push_back("trace-json");
        base.push_back("report");
        return base;
    }

    template <class ArgsT>
    ObsSession(const ArgsT& args, std::string tool, int argc = 0,
               const char* const* argv = nullptr)
        : profile_(args.has("profile")), trace_path_(args.str("trace-json", "")),
          report_path_(args.str("report", "")) {
        if (args.has("trace-json") && trace_path_.empty())
            throw InvalidArgument("--trace-json requires an output file path");
        if (args.has("report") && report_path_.empty())
            throw InvalidArgument("--report requires an output file path");
        if (profile_ || !trace_path_.empty() || !report_path_.empty())
            obs::set_trace_enabled(true);
        if (!report_path_.empty()) {
            obs::set_streams_enabled(true);
            obs::set_resources_enabled(true);
            obs::set_thread_name("main");
            builder_ = std::make_unique<obs::SolveReportBuilder>(std::move(tool));
            if (argv != nullptr) builder_->set_argv(argc, argv);
        }
    }

    /// Back-compat constructor for tools that never emit reports.
    template <class ArgsT>
    explicit ObsSession(const ArgsT& args) : ObsSession(args, "pgsi") {}

    ~ObsSession() {
        if (builder_ != nullptr) {
            try {
                builder_->write_file(report_path_);
                std::fprintf(stderr, "wrote report: %s\n", report_path_.c_str());
            } catch (const Error& e) {
                std::fprintf(stderr, "error: %s\n", e.what());
            }
        }
        if (!trace_path_.empty()) {
            try {
                obs::write_chrome_trace_file(trace_path_);
                std::fprintf(stderr, "wrote trace: %s\n", trace_path_.c_str());
            } catch (const Error& e) {
                std::fprintf(stderr, "error: %s\n", e.what());
            }
        }
        if (profile_) {
            const std::string summary = obs::trace_summary();
            const std::string metrics = obs::format_metrics();
            std::fprintf(stdout, "\n%s\n%s", summary.c_str(), metrics.c_str());
        }
    }

    ObsSession(const ObsSession&) = delete;
    ObsSession& operator=(const ObsSession&) = delete;

    /// The SolveReport under construction, or nullptr without --report.
    /// Tools use this to attach free-form sections and recovery events.
    obs::SolveReportBuilder* report() { return builder_.get(); }

private:
    bool profile_;
    std::string trace_path_;
    std::string report_path_;
    std::unique_ptr<obs::SolveReportBuilder> builder_;
};

/// Parsed command line: positional arguments plus --key value options
/// (--flag with no value stores an empty string).
class Args {
public:
    Args(int argc, char** argv, const std::vector<std::string>& known_flags) {
        for (int i = 1; i < argc; ++i) {
            std::string a = argv[i];
            if (a.rfind("--", 0) == 0) {
                const std::string key = a.substr(2);
                bool known = false;
                for (const std::string& k : known_flags)
                    if (k == key) known = true;
                if (!known)
                    throw InvalidArgument("unknown option --" + key);
                if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0)
                    options_[key] = argv[++i];
                else
                    options_[key] = "";
            } else {
                positional_.push_back(std::move(a));
            }
        }
    }

    const std::vector<std::string>& positional() const { return positional_; }

    bool has(const std::string& key) const { return options_.count(key) > 0; }

    std::string str(const std::string& key, const std::string& fallback) const {
        const auto it = options_.find(key);
        return it == options_.end() ? fallback : it->second;
    }

    double num(const std::string& key, double fallback) const {
        const auto it = options_.find(key);
        return it == options_.end() ? fallback : parse_spice_value(it->second);
    }

private:
    std::vector<std::string> positional_;
    std::map<std::string, std::string> options_;
};

/// Standard error wrapper for tool main()s.
template <class F>
int run_tool(F&& body, const char* usage) {
    try {
        return body();
    } catch (const Error& e) {
        std::fprintf(stderr, "error: %s\n\nusage: %s\n", e.what(), usage);
        return 1;
    }
}

} // namespace pgsi::cli
