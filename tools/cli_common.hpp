// Minimal argument parsing shared by the pgsi command-line tools.
#pragma once

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "circuit/parser.hpp"
#include "common/error.hpp"

namespace pgsi::cli {

/// Parsed command line: positional arguments plus --key value options
/// (--flag with no value stores an empty string).
class Args {
public:
    Args(int argc, char** argv, const std::vector<std::string>& known_flags) {
        for (int i = 1; i < argc; ++i) {
            std::string a = argv[i];
            if (a.rfind("--", 0) == 0) {
                const std::string key = a.substr(2);
                bool known = false;
                for (const std::string& k : known_flags)
                    if (k == key) known = true;
                if (!known)
                    throw InvalidArgument("unknown option --" + key);
                if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0)
                    options_[key] = argv[++i];
                else
                    options_[key] = "";
            } else {
                positional_.push_back(std::move(a));
            }
        }
    }

    const std::vector<std::string>& positional() const { return positional_; }

    bool has(const std::string& key) const { return options_.count(key) > 0; }

    std::string str(const std::string& key, const std::string& fallback) const {
        const auto it = options_.find(key);
        return it == options_.end() ? fallback : it->second;
    }

    double num(const std::string& key, double fallback) const {
        const auto it = options_.find(key);
        return it == options_.end() ? fallback : parse_spice_value(it->second);
    }

private:
    std::vector<std::string> positional_;
    std::map<std::string, std::string> options_;
};

/// Standard error wrapper for tool main()s.
template <class F>
int run_tool(F&& body, const char* usage) {
    try {
        return body();
    } catch (const Error& e) {
        std::fprintf(stderr, "error: %s\n\nusage: %s\n", e.what(), usage);
        return 1;
    }
}

} // namespace pgsi::cli
