// Property-based verification campaigns from the command line.
//
//   pgsi_verify [--iters N] [--seed S] [--suite all|reciprocity,backends,...]
//               [--shrink] [--out DIR] [--manifest FILE]
//               [--profile] [--trace-json FILE]
//
// Draws N random scenarios from the seeded stream and checks every invariant
// of the selected suites. With --shrink, failures are minimized and emitted
// as tests/-ready repro files into DIR (default verify_failures/). Exits 1
// when any invariant fails. Reproduce a single reported failure by re-running
// with the same --seed and the failing suite, or by compiling the emitted
// .cpp snippet.
#include <cstdio>
#include <fstream>

#include "tools/cli_common.hpp"
#include "verify/verify.hpp"

namespace {

constexpr const char* kUsage =
    "pgsi_verify [--iters N] [--seed S] [--suite list] [--shrink] "
    "[--out DIR] [--manifest FILE] [--profile] [--trace-json FILE] "
    "[--report FILE]";

int main_impl(int argc, char** argv) {
    using namespace pgsi;
    const cli::Args args(argc, argv,
                         cli::ObsSession::flags({"iters", "seed", "suite",
                                                 "shrink", "out", "manifest"}));
    cli::ObsSession obs_session(args, "pgsi_verify", argc, argv);

    verify::VerifyOptions opt;
    opt.iterations = static_cast<int>(args.num("iters", 100));
    opt.seed = static_cast<std::uint64_t>(args.num("seed", 1));
    opt.suites = verify::parse_suites(args.str("suite", "all"));
    opt.shrink = args.has("shrink");
    opt.failure_dir = args.str("out", "verify_failures");

    const verify::CampaignResult result = verify::run_campaign(opt);

    std::printf("campaign: seed=%llu iters=%d suites=",
                static_cast<unsigned long long>(result.seed),
                result.iterations);
    for (std::size_t i = 0; i < result.suites.size(); ++i)
        std::printf("%s%s", i ? "," : "", result.suites[i].c_str());
    std::printf("\n\n%-18s %8s %6s %9s %12s %12s\n", "invariant", "checks",
                "skips", "failures", "worst", "tolerance");
    for (const verify::InvariantStats& s : result.invariants)
        std::printf("%-18s %8zu %6zu %9zu %12.3e %12.3e\n",
                    s.invariant.c_str(), s.checks, s.skips, s.failures,
                    s.worst_error, s.tolerance);

    if (obs::SolveReportBuilder* rep = obs_session.report()) {
        rep->add_number("campaign", "iterations",
                        static_cast<double>(result.iterations));
        rep->add_number("campaign", "failures",
                        static_cast<double>(result.failures.size()));
        for (const verify::CounterStats& m : result.metrics)
            rep->add_number("campaign_counters", m.name,
                            static_cast<double>(m.total));
    }

    for (const verify::FailureRecord& f : result.failures) {
        std::printf("\nFAIL %s (suite %s, iteration %d, seed %llu)\n",
                    f.invariant.c_str(), f.suite.c_str(), f.iteration,
                    static_cast<unsigned long long>(f.seed));
        std::printf("  error %.3e > tolerance %.3e  %s\n", f.error,
                    f.tolerance, f.detail.c_str());
        std::printf("  scenario: %s\n", f.scenario.c_str());
        if (!f.shrunk_scenario.empty())
            std::printf("  shrunk:   %s\n", f.shrunk_scenario.c_str());
        if (!f.repro_cpp.empty())
            std::printf("  repro:    %s\n            %s\n", f.repro_cpp.c_str(),
                        f.repro_board.c_str());
    }

    const std::string manifest_path = args.str("manifest", "");
    if (!manifest_path.empty()) {
        std::ofstream f(manifest_path);
        PGSI_REQUIRE(f.good(),
                     "pgsi_verify: cannot write manifest " + manifest_path);
        f << verify::manifest_json(result);
        std::printf("\nwrote manifest: %s\n", manifest_path.c_str());
    }

    if (!result.ok()) {
        std::printf("\n%zu invariant violation(s)\n", result.failures.size());
        return 1;
    }
    std::printf("\nall invariants held\n");
    return 0;
}

} // namespace

int main(int argc, char** argv) {
    return pgsi::cli::run_tool([&] { return main_impl(argc, argv); }, kUsage);
}
