// bench_compare — perf-regression gate over BENCH_*.json records.
//
//   bench_compare <fresh.json> <golden.json>
//                 [--time-ratio X] [--count-ratio X] [--error-ratio X]
//                 [--min-seconds S] [--min-count N]
//
// Diffs a freshly generated benchmark record against a committed golden and
// exits 1 when any metric regressed past its class threshold (slower times,
// more iterations, larger errors). Improvements and metrics present in only
// one document pass. See src/obs/bench_gate.hpp for the classification
// rules. Wired into the build as the `bench-smoke` target.
#include <cstdio>

#include "io/json.hpp"
#include "obs/bench_gate.hpp"
#include "tools/cli_common.hpp"

using namespace pgsi;

namespace {
constexpr const char* kUsage =
    "bench_compare <fresh.json> <golden.json> [--time-ratio x]\n"
    "              [--count-ratio x] [--error-ratio x] [--min-seconds s]\n"
    "              [--min-count n]";
}

int main(int argc, char** argv) {
    return cli::run_tool(
        [&]() -> int {
            const cli::Args args(argc, argv,
                                 {"time-ratio", "count-ratio", "error-ratio",
                                  "min-seconds", "min-count"});
            PGSI_REQUIRE(args.positional().size() == 2,
                         "expected <fresh.json> <golden.json>");
            obs::BenchGateOptions opt;
            opt.time_ratio = args.num("time-ratio", opt.time_ratio);
            opt.count_ratio = args.num("count-ratio", opt.count_ratio);
            opt.error_ratio = args.num("error-ratio", opt.error_ratio);
            opt.min_seconds = args.num("min-seconds", opt.min_seconds);
            opt.min_count = args.num("min-count", opt.min_count);

            const JsonValue fresh = parse_json_file(args.positional()[0]);
            const JsonValue golden = parse_json_file(args.positional()[1]);
            const obs::BenchGateResult result =
                obs::compare_bench(fresh, golden, opt);
            std::fputs(obs::format_bench_gate(result).c_str(), stdout);
            if (!result.ok()) {
                std::printf("FAIL: %zu perf regression(s) vs %s\n",
                            result.regression_count(),
                            args.positional()[1].c_str());
                return 1;
            }
            std::printf("OK: no perf regressions vs %s\n",
                        args.positional()[1].c_str());
            return 0;
        },
        kUsage);
}
