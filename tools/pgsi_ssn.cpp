// pgsi_ssn — run a full SSN transient on a board file.
//
//   pgsi_ssn <board-file> [--pitch 10m] [--interior 16] [--prune 0.02]
//            [--dt 25p] [--tstop 8n] [--csv out.csv] [--optimize N]
//
// Prints per-site peak noise; with --csv, dumps the die-supply waveforms;
// with --optimize N, greedily ranks up to N of the board's decap candidates.
// With --report, also sweeps the plane impedance at the driver pins through
// the iterative backend so the flight recorder captures a GMRES residual
// stream alongside the transient's Newton streams.
#include <cstdio>

#include "em/solver.hpp"
#include "io/csv.hpp"
#include "si/board_file.hpp"
#include "si/decap_opt.hpp"
#include "si/ssn.hpp"
#include "tools/cli_common.hpp"

using namespace pgsi;

namespace {
constexpr const char* kUsage =
    "pgsi_ssn <board-file> [--pitch m] [--interior n] [--prune x]\n"
    "         [--dt s] [--tstop s] [--csv out.csv] [--optimize N]\n"
    "         [--profile] [--trace-json out.json] [--report out.json]";

// Z(f) at the driver Vcc pins through the iterative (GMRES) backend, for
// the report's "zprofile" section. A handful of points is enough to record
// the solver's convergence behavior on this mesh.
void report_zprofile(obs::SolveReportBuilder& rep, const Board& board,
                     const PlaneModel& plane) {
    if (board.driver_sites().empty()) return;
    std::vector<std::size_t> ports;
    for (const DriverSite& site : board.driver_sites())
        ports.push_back(plane.bem().mesh().nearest_node_any(site.vcc_pin));
    SolverOptions sopt;
    sopt.backend = SolverBackend::Iterative;
    const auto solver = make_solver(
        plane.bem(), SurfaceImpedance::from_sheet_resistance(
                         board.stackup().sheet_resistance),
        sopt);
    const VectorD freqs{10e6, 100e6, 1e9};
    const std::vector<MatrixC> z = solver->sweep_impedance(freqs, ports);
    rep.add_number("zprofile", "ports", static_cast<double>(ports.size()));
    rep.add_number("zprofile", "freqs", static_cast<double>(freqs.size()));
    double zmax = 0;
    for (std::size_t k = 0; k < freqs.size(); ++k)
        for (std::size_t i = 0; i < ports.size(); ++i)
            zmax = std::max(zmax, std::abs(z[k](i, i)));
    rep.add_number("zprofile", "max_self_z_ohm", zmax);
}

} // namespace

int main(int argc, char** argv) {
    return cli::run_tool(
        [&]() -> int {
            const cli::Args args(argc, argv,
                                 cli::ObsSession::flags({"pitch", "interior",
                                                         "prune", "dt", "tstop",
                                                         "csv", "optimize"}));
            cli::ObsSession obs_session(args, "pgsi_ssn", argc, argv);
            PGSI_REQUIRE(args.positional().size() == 1,
                         "expected exactly one board file");
            const Board board = load_board_file(args.positional()[0]);

            SsnModelOptions opt;
            opt.mesh_pitch = args.num("pitch", 10e-3);
            opt.interior_nodes =
                static_cast<std::size_t>(args.num("interior", 16));
            opt.prune_rel_tol = args.num("prune", 0.02);
            auto plane = std::make_shared<PlaneModel>(board, opt);

            const double dt = args.num("dt", 25e-12);
            const double tstop = args.num("tstop", 8e-9);

            const SsnModel model(plane);
            const TransientResult r = model.simulate(dt, tstop);

            if (obs::SolveReportBuilder* rep = obs_session.report()) {
                rep->add_text("model", "board", args.positional()[0]);
                rep->add_number("model", "mesh_cells",
                                static_cast<double>(plane->bem().node_count()));
                rep->add_number(
                    "model", "circuit_nodes",
                    static_cast<double>(plane->circuit().node_count()));
                rep->add_number(
                    "model", "circuit_branches",
                    static_cast<double>(plane->circuit().branches.size()));
                rep->add_number(
                    "model", "driver_sites",
                    static_cast<double>(board.driver_sites().size()));
                rep->add_number("transient", "dt_s", dt);
                rep->add_number("transient", "tstop_s", tstop);
                rep->add_number("transient", "steps",
                                static_cast<double>(r.stats.steps));
                rep->add_number(
                    "transient", "newton_iterations",
                    static_cast<double>(r.stats.newton_iterations));
                rep->add_number("transient", "step_rejections",
                                static_cast<double>(r.stats.step_rejections));
                rep->add_number("transient", "lu_factorizations",
                                static_cast<double>(r.stats.lu_factorizations));
                rep->add_number("transient", "lu_solves",
                                static_cast<double>(r.stats.lu_solves));
                rep->add_number("transient", "wall_seconds",
                                r.stats.wall_seconds);
                rep->add_recoveries(r.recovery);
                report_zprofile(*rep, board, *plane);
            }

            if (args.has("profile"))
                std::printf("transient: %zu steps, %zu Newton iterations, "
                            "%zu rejections, %zu LU factorizations, "
                            "%zu solves, %.3f s\n\n",
                            r.stats.steps, r.stats.newton_iterations,
                            r.stats.step_rejections, r.stats.lu_factorizations,
                            r.stats.lu_solves, r.stats.wall_seconds);

            std::printf("%-12s %-16s %-16s %-16s\n", "site",
                        "gnd bounce [mV]", "Vcc droop [mV]", "plane [mV]");
            double worst_g = 0, worst_v = 0, worst_p = 0;
            for (std::size_t s = 0; s < board.driver_sites().size(); ++s) {
                const double g = r.peak_excursion(model.die_gnd(s));
                const double v = r.peak_excursion(model.die_vcc(s));
                const double p = r.peak_excursion(model.board_vcc(s));
                std::printf("%-12s %-16.1f %-16.1f %-16.1f\n",
                            board.driver_sites()[s].name.c_str(), g * 1e3,
                            v * 1e3, p * 1e3);
                worst_g = std::max(worst_g, g);
                worst_v = std::max(worst_v, v);
                worst_p = std::max(worst_p, p);
            }
            std::printf("%-12s %-16.1f %-16.1f %-16.1f\n", "WORST",
                        worst_g * 1e3, worst_v * 1e3, worst_p * 1e3);

            if (obs::SolveReportBuilder* rep = obs_session.report()) {
                rep->add_number("noise", "worst_gnd_bounce_v", worst_g);
                rep->add_number("noise", "worst_vcc_droop_v", worst_v);
                rep->add_number("noise", "worst_plane_v", worst_p);
            }

            if (args.has("csv")) {
                std::vector<std::string> headers{"t_s"};
                std::vector<VectorD> cols{r.time};
                for (std::size_t s = 0; s < board.driver_sites().size(); ++s) {
                    headers.push_back(board.driver_sites()[s].name + "_vcc");
                    cols.push_back(r.waveform(model.die_vcc(s)));
                    headers.push_back(board.driver_sites()[s].name + "_gnd");
                    cols.push_back(r.waveform(model.die_gnd(s)));
                }
                write_csv_file(args.str("csv", ""), headers, cols);
                std::printf("wrote waveforms: %s\n", args.str("csv", "").c_str());
            }

            if (args.has("optimize")) {
                const auto budget =
                    static_cast<std::size_t>(args.num("optimize", 4));
                const DecapPlacementResult res =
                    optimize_decap_placement(plane, budget, dt, tstop);
                std::printf("\ndecap optimization (baseline plane noise "
                            "%.1f mV):\n",
                            res.baseline_noise * 1e3);
                for (std::size_t i = 0; i < res.picks.size(); ++i) {
                    const Decap& d = board.decaps()[res.picks[i].candidate];
                    std::printf("  pick %zu: decap #%zu at (%.0f, %.0f) mm -> "
                                "%.1f mV\n",
                                i + 1, res.picks[i].candidate, d.pos.x * 1e3,
                                d.pos.y * 1e3, res.picks[i].noise_after * 1e3);
                }
                if (res.picks.empty())
                    std::printf("  no candidate improves the noise\n");
            }
            return 0;
        },
        kUsage);
}
