// Tests for the direct MPIE frequency sweep — the in-house reference the
// extracted circuit is validated against.
#include <gtest/gtest.h>

#include <cmath>

#include "common/constants.hpp"
#include "em/solver.hpp"
#include "extract/equivalent_circuit.hpp"
#include "numeric/lu.hpp"

using namespace pgsi;

namespace {

PlaneBem small_plane() {
    ConductorShape s;
    s.outline = Polygon::rectangle(0, 0, 0.04, 0.03);
    s.z = 0.5e-3;
    s.sheet_resistance = 6e-3;
    return PlaneBem(RectMesh({s}, 0.005), Greens::homogeneous(4.5, true),
                    BemOptions{});
}

} // namespace

TEST(DirectSolver, LowFrequencyIsCapacitive) {
    const PlaneBem bem = small_plane();
    const DirectSolver solver(bem, SurfaceImpedance::from_sheet_resistance(6e-3));
    const std::size_t port = bem.mesh().nearest_node({0.02, 0.015}, 0);
    const double f = 1e6;
    const MatrixC z = solver.port_impedance(f, {port});
    // At 1 MHz the plane is a capacitor: phase ≈ −90°, |Z| ≈ 1/(ωC_total).
    EXPECT_LT(z(0, 0).imag(), 0.0);
    EXPECT_GT(std::abs(z(0, 0).imag()), 50.0 * std::abs(z(0, 0).real()));
    const MatrixD& c = bem.maxwell_capacitance();
    double ctot = 0;
    for (std::size_t i = 0; i < c.rows(); ++i)
        for (std::size_t j = 0; j < c.cols(); ++j) ctot += c(i, j);
    EXPECT_NEAR(std::abs(z(0, 0)), 1.0 / (2 * pi * f * ctot),
                0.1 / (2 * pi * f * ctot));
}

TEST(DirectSolver, AgreesWithExtractedCircuitBelowResonance) {
    const PlaneBem bem = small_plane();
    const DirectSolver solver(bem, SurfaceImpedance::from_sheet_resistance(6e-3));
    // Frequency-domain comparison: keep the exact element-wise map.
    const EquivalentCircuit ec =
        CircuitExtractor(bem, ExtractionOptions{0.0, true, false}).extract_full();
    const std::size_t port = bem.mesh().nearest_node({0.01, 0.01}, 0);
    for (double f : {10e6, 100e6, 400e6}) {
        const Complex zd = solver.port_impedance(f, {port})(0, 0);
        const Complex ze = ec.impedance(f, {port})(0, 0);
        EXPECT_NEAR(std::abs(ze), std::abs(zd), 0.08 * std::abs(zd)) << f;
    }
}

TEST(DirectSolver, ReciprocalPortMatrix) {
    const PlaneBem bem = small_plane();
    const DirectSolver solver(bem, SurfaceImpedance{});
    const std::size_t p1 = bem.mesh().nearest_node({0.005, 0.005}, 0);
    const std::size_t p2 = bem.mesh().nearest_node({0.035, 0.025}, 0);
    const MatrixC z = solver.port_impedance(200e6, {p1, p2});
    EXPECT_NEAR(std::abs(z(0, 1) - z(1, 0)), 0.0, 1e-6 * std::abs(z(0, 1)));
}

TEST(DirectSolver, LossAddsRealPart) {
    const PlaneBem bem = small_plane();
    const std::size_t port = bem.mesh().nearest_node({0.02, 0.015}, 0);
    const DirectSolver lossless(bem, SurfaceImpedance{});
    const DirectSolver lossy(bem, SurfaceImpedance::from_sheet_resistance(0.1));
    const double f = 100e6;
    const double r0 = lossless.port_impedance(f, {port})(0, 0).real();
    const double r1 = lossy.port_impedance(f, {port})(0, 0).real();
    EXPECT_GT(r1, r0 + 1e-3);
}

TEST(DirectSolver, PortImpedanceMatchesFullInverseSubmatrix) {
    // Regression: port_impedance used to invert the whole N×N admittance;
    // the multi-RHS solve against the port columns must give the same Z.
    const PlaneBem bem = small_plane();
    const DirectSolver solver(bem, SurfaceImpedance::from_sheet_resistance(6e-3));
    const std::vector<std::size_t> ports{
        bem.mesh().nearest_node({0.005, 0.005}, 0),
        bem.mesh().nearest_node({0.02, 0.015}, 0),
        bem.mesh().nearest_node({0.035, 0.025}, 0)};
    const double f = 300e6;
    const MatrixC y = solver.nodal_admittance(f);
    const MatrixC ref = Lu<Complex>(y).inverse().submatrix(ports, ports);
    const MatrixC z = solver.port_impedance(f, ports);
    ASSERT_EQ(z.rows(), ports.size());
    for (std::size_t i = 0; i < ports.size(); ++i)
        for (std::size_t j = 0; j < ports.size(); ++j)
            EXPECT_LT(std::abs(z(i, j) - ref(i, j)), 1e-10 * std::abs(ref(i, j)))
                << i << "," << j;
}

TEST(DirectSolver, PortImpedanceSolvesOnlyPortColumns) {
    // The triangular-solve count must scale with |ports|, not with N.
    const PlaneBem bem = small_plane();
    const DirectSolver solver(bem, SurfaceImpedance{});
    const std::vector<std::size_t> ports{
        bem.mesh().nearest_node({0.005, 0.005}, 0),
        bem.mesh().nearest_node({0.035, 0.025}, 0)};
    solver.port_impedance(100e6, ports);
    // nodal_admittance solves the N incidence columns; port extraction adds
    // only |ports| more (it previously added N for the full inverse).
    EXPECT_EQ(solver.stats().solves, bem.node_count() + ports.size());
}

TEST(DirectSolver, SweepShapes) {
    const PlaneBem bem = small_plane();
    const DirectSolver solver(bem, SurfaceImpedance{});
    const std::size_t port = bem.mesh().nearest_node({0.02, 0.015}, 0);
    const auto sweep = solver.sweep_impedance({1e8, 2e8, 3e8}, {port});
    EXPECT_EQ(sweep.size(), 3u);
    EXPECT_EQ(sweep[0].rows(), 1u);
    EXPECT_THROW(solver.port_impedance(-1.0, {port}), InvalidArgument);
}
