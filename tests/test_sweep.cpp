// Sweep engine (warm starts, recycling) and the adaptive sweep driver.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "em/iterative_solver.hpp"
#include "em/sweep.hpp"
#include "obs/metrics.hpp"
#include "tests/test_util.hpp"

using namespace pgsi;

namespace {

RectMesh plain_mesh(double pitch = 0.001) {
    ConductorShape s;
    s.outline = Polygon::rectangle(0, 0, 0.020, 0.016);
    s.z = 0.4e-3;
    s.sheet_resistance = 1e-3;
    return RectMesh({s}, pitch);
}

PlaneBem make_bem(RectMesh mesh) {
    return PlaneBem(std::move(mesh), Greens::homogeneous(4.2, true), {});
}

double max_rel_diff(const MatrixC& a, const MatrixC& b) {
    EXPECT_EQ(a.rows(), b.rows());
    EXPECT_EQ(a.cols(), b.cols());
    double scale = 1e-300;
    for (std::size_t i = 0; i < a.rows(); ++i)
        for (std::size_t j = 0; j < a.cols(); ++j)
            scale = std::max(scale, std::abs(a(i, j)));
    double m = 0;
    for (std::size_t i = 0; i < a.rows(); ++i)
        for (std::size_t j = 0; j < a.cols(); ++j)
            m = std::max(m, std::abs(a(i, j) - b(i, j)) / scale);
    return m;
}

SolverOptions iterative_options() {
    SolverOptions opt;
    opt.backend = SolverBackend::Iterative;
    return opt;
}

VectorD linspace(double lo, double hi, std::size_t n) {
    VectorD f(n);
    for (std::size_t i = 0; i < n; ++i)
        f[i] = lo + (hi - lo) * static_cast<double>(i) /
                        static_cast<double>(n - 1);
    return f;
}

} // namespace

TEST(SweepEngine, MatchesLegacyColdSweepAndSavesWork) {
    const PlaneBem bem = make_bem(plain_mesh());
    const SurfaceImpedance zs = SurfaceImpedance::from_sheet_resistance(1e-3);
    const std::vector<std::size_t> ports{
        bem.mesh().nearest_node({0.002, 0.002}, 0),
        bem.mesh().nearest_node({0.018, 0.014}, 0)};
    const VectorD freqs = linspace(4e8, 6e8, 8);

    SolverOptions legacy_opt = iterative_options();
    legacy_opt.sweep.engine = false;
    legacy_opt.sweep.block_solve = false;
    legacy_opt.sweep.warm_start = false;
    const IterativeSolver legacy(bem, zs, legacy_opt);
    const auto zl = legacy.sweep_impedance(freqs, ports);

    const IterativeSolver engine(bem, zs, iterative_options());
    const auto ze = engine.sweep_impedance(freqs, ports);

    for (std::size_t i = 0; i < freqs.size(); ++i)
        EXPECT_LT(max_rel_diff(ze[i], zl[i]), 1e-8) << "f = " << freqs[i];

    const IterativeSolverStats& st = engine.stats();
    EXPECT_EQ(st.sweep_points, freqs.size());
    // Every point after the first seeds from prior work, and the recycled
    // subspace starts paying off once it holds the first point's columns.
    EXPECT_GE(st.warm_starts, freqs.size() - 1);
    EXPECT_GE(st.recycle_hits, 1u);
    EXPECT_GT(st.saved_iterations, 0u);
    // The headline claim: cross-frequency reuse beats cold per-point solves.
    EXPECT_LT(st.matvecs, legacy.stats().matvecs);
    EXPECT_GT(st.block_solves, 0u);
}

TEST(SweepEngine, WarmStartedSweepBitwiseInvariantAcrossThreadCounts) {
    const SurfaceImpedance zs = SurfaceImpedance::from_sheet_resistance(1e-3);
    const VectorD freqs = linspace(3e8, 9e8, 5);

    pgsi::test::ScopedThreadCount pin(1);
    std::vector<MatrixC> base;
    {
        const PlaneBem bem = make_bem(plain_mesh());
        const std::vector<std::size_t> ports{
            bem.mesh().nearest_node({0.002, 0.002}, 0),
            bem.mesh().nearest_node({0.018, 0.014}, 0)};
        const IterativeSolver solver(bem, zs, iterative_options());
        base = solver.sweep_impedance(freqs, ports);
        EXPECT_EQ(solver.stats().sweep_points, freqs.size());
    }
    for (const unsigned threads : {2u, 8u}) {
        pin.repin(threads);
        const PlaneBem bem = make_bem(plain_mesh());
        const std::vector<std::size_t> ports{
            bem.mesh().nearest_node({0.002, 0.002}, 0),
            bem.mesh().nearest_node({0.018, 0.014}, 0)};
        const auto got = IterativeSolver(bem, zs, iterative_options())
                             .sweep_impedance(freqs, ports);
        for (std::size_t i = 0; i < freqs.size(); ++i)
            for (std::size_t r = 0; r < got[i].rows(); ++r)
                for (std::size_t c = 0; c < got[i].cols(); ++c)
                    EXPECT_EQ(got[i](r, c), base[i](r, c))
                        << "threads " << threads << " f " << freqs[i];
    }
}

TEST(AdaptiveSweep, RefinesResonanceAndSolvesFewerPointsThanGrid) {
    // 2 mm pitch: resolution is irrelevant here, only the resonant shape of
    // Z(f), and the 64-point reference sweep stays cheap.
    const PlaneBem bem = make_bem(plain_mesh(0.002));
    const SurfaceImpedance zs = SurfaceImpedance::from_sheet_resistance(1e-3);
    const DirectSolver direct(bem, zs);
    const std::vector<std::size_t> ports{
        bem.mesh().nearest_node({0.002, 0.002}, 0),
        bem.mesh().nearest_node({0.018, 0.014}, 0)};
    // 64 points across the plane's first cavity resonances: smooth inductive
    // rise, sharp peaks, smooth tails — the shape adaptive refinement is for.
    const VectorD freqs = linspace(2e8, 5e9, 64);

    AdaptiveSweepOptions opt;
    opt.tol = 1e-3;
    const AdaptiveSweepResult res =
        adaptive_sweep_impedance(direct, freqs, ports, opt);

    ASSERT_EQ(res.z.size(), freqs.size());
    ASSERT_EQ(res.solved.size(), freqs.size());
    EXPECT_LT(res.solves, freqs.size()); // interpolation actually saved work
    EXPECT_GT(res.refinements, 0u);      // the resonances forced refinement
    EXPECT_LE(res.worst_validated_error, opt.tol);

    // Solved points are the solver's own results, verbatim.
    std::size_t solved = 0;
    const auto zref = direct.sweep_impedance(freqs, ports);
    for (std::size_t i = 0; i < freqs.size(); ++i) {
        if (!res.solved[i]) continue;
        ++solved;
        EXPECT_LT(max_rel_diff(res.z[i], zref[i]), 1e-12);
    }
    EXPECT_EQ(solved, res.solves);
    // Interpolated points track the true sweep under the driver's own error
    // scale: entry magnitude floored at 1e-3 of the band's peak |Z| (near
    // the low-frequency zeros of Z a tiny absolute error is acceptable even
    // when it is large relative to the local entry). The validation bounds
    // midpoints at tol; allow slack elsewhere in the gaps.
    double gmax = 0;
    for (const MatrixC& z : zref)
        for (std::size_t r = 0; r < z.rows(); ++r)
            for (std::size_t c = 0; c < z.cols(); ++c)
                gmax = std::max(gmax, std::abs(z(r, c)));
    for (std::size_t i = 0; i < freqs.size(); ++i) {
        double err = 0;
        for (std::size_t r = 0; r < ports.size(); ++r)
            for (std::size_t c = 0; c < ports.size(); ++c)
                err = std::max(err,
                               std::abs(res.z[i](r, c) - zref[i](r, c)) /
                                   std::max(std::abs(zref[i](r, c)),
                                            1e-3 * gmax));
        EXPECT_LT(err, 0.05) << "f = " << freqs[i];
    }
}

TEST(AdaptiveSweep, SmallGridSolvesEverythingOutright) {
    const PlaneBem bem = make_bem(plain_mesh(0.002));
    const SurfaceImpedance zs = SurfaceImpedance::from_sheet_resistance(1e-3);
    const DirectSolver direct(bem, zs);
    const std::vector<std::size_t> ports{
        bem.mesh().nearest_node({0.002, 0.002}, 0)};
    const VectorD freqs = linspace(1e8, 1e9, 6);
    const AdaptiveSweepResult res =
        adaptive_sweep_impedance(direct, freqs, ports);
    EXPECT_EQ(res.solves, freqs.size());
    for (std::size_t i = 0; i < freqs.size(); ++i)
        EXPECT_TRUE(res.solved[i]);
    EXPECT_EQ(res.refinements, 0u);
}

TEST(AdaptiveSweep, MaxSolvesCapsTheWorkAndStillFillsTheGrid) {
    const PlaneBem bem = make_bem(plain_mesh(0.002));
    const SurfaceImpedance zs = SurfaceImpedance::from_sheet_resistance(1e-3);
    const DirectSolver direct(bem, zs);
    const std::vector<std::size_t> ports{
        bem.mesh().nearest_node({0.002, 0.002}, 0)};
    const VectorD freqs = linspace(2e8, 5e9, 64);
    AdaptiveSweepOptions opt;
    opt.max_solves = 12;
    const std::uint64_t fills_before =
        obs::counter("em.sweep.unvalidated_fills").value();
    const AdaptiveSweepResult res =
        adaptive_sweep_impedance(direct, freqs, ports, opt);
    EXPECT_LE(res.solves, opt.max_solves);
    for (std::size_t i = 0; i < freqs.size(); ++i)
        EXPECT_GT(res.z[i].rows(), 0u); // every point filled, solved or not

    // The budget binds on this grid (64 points, 12 solves), so the unchecked
    // model fills must be surfaced, not silent: the result counts them, a
    // "sweep.budget_exhausted" recovery event names the budget, and the
    // "em.sweep.unvalidated_fills" counter carries them into exported
    // metrics.
    ASSERT_GT(res.unvalidated_points, 0u);
    EXPECT_EQ(res.recovery.count("sweep.budget_exhausted"), 1u);
    EXPECT_EQ(obs::counter("em.sweep.unvalidated_fills").value(),
              fills_before + res.unvalidated_points);
}

TEST(AdaptiveSweep, UnboundBudgetReportsNoDegradation) {
    const PlaneBem bem = make_bem(plain_mesh(0.002));
    const SurfaceImpedance zs = SurfaceImpedance::from_sheet_resistance(1e-3);
    const DirectSolver direct(bem, zs);
    const std::vector<std::size_t> ports{
        bem.mesh().nearest_node({0.002, 0.002}, 0)};
    const AdaptiveSweepResult res =
        adaptive_sweep_impedance(direct, linspace(1e8, 1e9, 6), ports);
    EXPECT_EQ(res.unvalidated_points, 0u);
    EXPECT_FALSE(res.recovery.any());
}

TEST(AdaptiveSweep, RejectsInvalidArguments) {
    const PlaneBem bem = make_bem(plain_mesh());
    const DirectSolver direct(bem, SurfaceImpedance{});
    const std::vector<std::size_t> ports{0};
    EXPECT_THROW(adaptive_sweep_impedance(direct, {}, ports), InvalidArgument);
    EXPECT_THROW(adaptive_sweep_impedance(direct, {1e8, 1e8}, ports),
                 InvalidArgument);
    EXPECT_THROW(adaptive_sweep_impedance(direct, {2e8, 1e8}, ports),
                 InvalidArgument);
    EXPECT_THROW(adaptive_sweep_impedance(direct, {1e8, 2e8}, {}),
                 InvalidArgument);
}
