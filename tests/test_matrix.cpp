// Unit tests for the dense matrix/vector layer.
#include <gtest/gtest.h>

#include "numeric/matrix.hpp"

using namespace pgsi;

TEST(Matrix, ConstructAndIndex) {
    MatrixD m(2, 3);
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m.cols(), 3u);
    m(1, 2) = 4.5;
    EXPECT_DOUBLE_EQ(m(1, 2), 4.5);
    EXPECT_DOUBLE_EQ(m(0, 0), 0.0);
}

TEST(Matrix, InitializerList) {
    const MatrixD m{{1, 2}, {3, 4}};
    EXPECT_DOUBLE_EQ(m(0, 1), 2);
    EXPECT_DOUBLE_EQ(m(1, 0), 3);
    EXPECT_THROW((MatrixD{{1, 2}, {3}}), InvalidArgument);
}

TEST(Matrix, Identity) {
    const MatrixD i = MatrixD::identity(3);
    for (std::size_t r = 0; r < 3; ++r)
        for (std::size_t c = 0; c < 3; ++c)
            EXPECT_DOUBLE_EQ(i(r, c), r == c ? 1.0 : 0.0);
}

TEST(Matrix, AddSubScale) {
    const MatrixD a{{1, 2}, {3, 4}};
    const MatrixD b{{5, 6}, {7, 8}};
    const MatrixD s = a + b;
    EXPECT_DOUBLE_EQ(s(0, 0), 6);
    const MatrixD d = b - a;
    EXPECT_DOUBLE_EQ(d(1, 1), 4);
    const MatrixD sc = 2.0 * a;
    EXPECT_DOUBLE_EQ(sc(1, 0), 6);
}

TEST(Matrix, Product) {
    const MatrixD a{{1, 2}, {3, 4}};
    const MatrixD b{{5, 6}, {7, 8}};
    const MatrixD p = a * b;
    EXPECT_DOUBLE_EQ(p(0, 0), 19);
    EXPECT_DOUBLE_EQ(p(0, 1), 22);
    EXPECT_DOUBLE_EQ(p(1, 0), 43);
    EXPECT_DOUBLE_EQ(p(1, 1), 50);
}

TEST(Matrix, MatVec) {
    const MatrixD a{{1, 2}, {3, 4}};
    const VectorD x{1, 1};
    const VectorD y = a * x;
    EXPECT_DOUBLE_EQ(y[0], 3);
    EXPECT_DOUBLE_EQ(y[1], 7);
}

TEST(Matrix, Transpose) {
    const MatrixD a{{1, 2, 3}, {4, 5, 6}};
    const MatrixD t = a.transposed();
    EXPECT_EQ(t.rows(), 3u);
    EXPECT_DOUBLE_EQ(t(2, 1), 6);
}

TEST(Matrix, Submatrix) {
    const MatrixD a{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}};
    const MatrixD s = a.submatrix({0, 2}, {1, 2});
    EXPECT_EQ(s.rows(), 2u);
    EXPECT_DOUBLE_EQ(s(0, 0), 2);
    EXPECT_DOUBLE_EQ(s(1, 1), 9);
}

TEST(Matrix, Asymmetry) {
    MatrixD a{{1, 2}, {2, 1}};
    EXPECT_DOUBLE_EQ(a.asymmetry(), 0.0);
    a(0, 1) = 2.5;
    EXPECT_NEAR(a.asymmetry(), 0.5, 1e-15);
}

TEST(Matrix, ComplexOps) {
    MatrixC m(2, 2);
    m(0, 0) = Complex(1, 1);
    m(1, 1) = Complex(0, -2);
    const MatrixD re = real_part(m);
    const MatrixD im = imag_part(m);
    EXPECT_DOUBLE_EQ(re(0, 0), 1);
    EXPECT_DOUBLE_EQ(im(1, 1), -2);
    const MatrixC back = to_complex(re);
    EXPECT_DOUBLE_EQ(back(0, 0).real(), 1);
    EXPECT_DOUBLE_EQ(back(0, 0).imag(), 0);
}

TEST(Vector, Norms) {
    const VectorD v{3, 4};
    EXPECT_DOUBLE_EQ(norm2(v), 5.0);
    EXPECT_DOUBLE_EQ(max_abs(v), 4.0);
    EXPECT_DOUBLE_EQ(dot(v, v), 25.0);
}

TEST(Vector, Axpy) {
    VectorD y{1, 1};
    axpy(2.0, {1, 2}, y);
    EXPECT_DOUBLE_EQ(y[0], 3);
    EXPECT_DOUBLE_EQ(y[1], 5);
}

TEST(Matrix, ShapeMismatchThrows) {
    MatrixD a(2, 2), b(3, 3);
    EXPECT_THROW(a += b, InvalidArgument);
    EXPECT_THROW((void)(a * VectorD{1, 2, 3}), InvalidArgument);
}
