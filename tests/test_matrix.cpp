// Unit tests for the dense matrix/vector layer.
#include <gtest/gtest.h>

#include "numeric/matrix.hpp"
#include "tests/test_util.hpp"

using namespace pgsi;

TEST(Matrix, ConstructAndIndex) {
    MatrixD m(2, 3);
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m.cols(), 3u);
    m(1, 2) = 4.5;
    EXPECT_DOUBLE_EQ(m(1, 2), 4.5);
    EXPECT_DOUBLE_EQ(m(0, 0), 0.0);
}

TEST(Matrix, InitializerList) {
    const MatrixD m{{1, 2}, {3, 4}};
    EXPECT_DOUBLE_EQ(m(0, 1), 2);
    EXPECT_DOUBLE_EQ(m(1, 0), 3);
    EXPECT_THROW((MatrixD{{1, 2}, {3}}), InvalidArgument);
}

TEST(Matrix, Identity) {
    const MatrixD i = MatrixD::identity(3);
    for (std::size_t r = 0; r < 3; ++r)
        for (std::size_t c = 0; c < 3; ++c)
            EXPECT_DOUBLE_EQ(i(r, c), r == c ? 1.0 : 0.0);
}

TEST(Matrix, AddSubScale) {
    const MatrixD a{{1, 2}, {3, 4}};
    const MatrixD b{{5, 6}, {7, 8}};
    const MatrixD s = a + b;
    EXPECT_DOUBLE_EQ(s(0, 0), 6);
    const MatrixD d = b - a;
    EXPECT_DOUBLE_EQ(d(1, 1), 4);
    const MatrixD sc = 2.0 * a;
    EXPECT_DOUBLE_EQ(sc(1, 0), 6);
}

TEST(Matrix, Product) {
    const MatrixD a{{1, 2}, {3, 4}};
    const MatrixD b{{5, 6}, {7, 8}};
    const MatrixD p = a * b;
    EXPECT_DOUBLE_EQ(p(0, 0), 19);
    EXPECT_DOUBLE_EQ(p(0, 1), 22);
    EXPECT_DOUBLE_EQ(p(1, 0), 43);
    EXPECT_DOUBLE_EQ(p(1, 1), 50);
}

TEST(Matrix, MatVec) {
    const MatrixD a{{1, 2}, {3, 4}};
    const VectorD x{1, 1};
    const VectorD y = a * x;
    EXPECT_DOUBLE_EQ(y[0], 3);
    EXPECT_DOUBLE_EQ(y[1], 7);
}

TEST(Matrix, Transpose) {
    const MatrixD a{{1, 2, 3}, {4, 5, 6}};
    const MatrixD t = a.transposed();
    EXPECT_EQ(t.rows(), 3u);
    EXPECT_DOUBLE_EQ(t(2, 1), 6);
}

TEST(Matrix, Submatrix) {
    const MatrixD a{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}};
    const MatrixD s = a.submatrix({0, 2}, {1, 2});
    EXPECT_EQ(s.rows(), 2u);
    EXPECT_DOUBLE_EQ(s(0, 0), 2);
    EXPECT_DOUBLE_EQ(s(1, 1), 9);
}

TEST(Matrix, Asymmetry) {
    MatrixD a{{1, 2}, {2, 1}};
    EXPECT_DOUBLE_EQ(a.asymmetry(), 0.0);
    a(0, 1) = 2.5;
    EXPECT_NEAR(a.asymmetry(), 0.5, 1e-15);
}

TEST(Matrix, ComplexOps) {
    MatrixC m(2, 2);
    m(0, 0) = Complex(1, 1);
    m(1, 1) = Complex(0, -2);
    const MatrixD re = real_part(m);
    const MatrixD im = imag_part(m);
    EXPECT_DOUBLE_EQ(re(0, 0), 1);
    EXPECT_DOUBLE_EQ(im(1, 1), -2);
    const MatrixC back = to_complex(re);
    EXPECT_DOUBLE_EQ(back(0, 0).real(), 1);
    EXPECT_DOUBLE_EQ(back(0, 0).imag(), 0);
}

TEST(Vector, Norms) {
    const VectorD v{3, 4};
    EXPECT_DOUBLE_EQ(norm2(v), 5.0);
    EXPECT_DOUBLE_EQ(max_abs(v), 4.0);
    EXPECT_DOUBLE_EQ(dot(v, v), 25.0);
}

TEST(Vector, Axpy) {
    VectorD y{1, 1};
    axpy(2.0, {1, 2}, y);
    EXPECT_DOUBLE_EQ(y[0], 3);
    EXPECT_DOUBLE_EQ(y[1], 5);
}

TEST(Matrix, ShapeMismatchThrows) {
    MatrixD a(2, 2), b(3, 3);
    EXPECT_THROW(a += b, InvalidArgument);
    EXPECT_THROW((void)(a * VectorD{1, 2, 3}), InvalidArgument);
}

// --- Blocked parallel GEMM (numeric/gemm.hpp) -------------------------------

#include <random>

#include "common/parallel.hpp"

namespace {

MatrixD random_matrix(std::size_t rows, std::size_t cols, unsigned seed) {
    std::mt19937 rng(seed);
    std::uniform_real_distribution<double> u(-1.0, 1.0);
    MatrixD m(rows, cols);
    for (std::size_t i = 0; i < rows; ++i)
        for (std::size_t j = 0; j < cols; ++j) m(i, j) = u(rng);
    return m;
}

MatrixC random_complex(std::size_t rows, std::size_t cols, unsigned seed) {
    std::mt19937 rng(seed);
    std::uniform_real_distribution<double> u(-1.0, 1.0);
    MatrixC m(rows, cols);
    for (std::size_t i = 0; i < rows; ++i)
        for (std::size_t j = 0; j < cols; ++j) m(i, j) = Complex(u(rng), u(rng));
    return m;
}

// Scalar triple-loop reference the blocked kernel must agree with.
template <class T>
Matrix<T> naive_product(const Matrix<T>& a, const Matrix<T>& b) {
    Matrix<T> c(a.rows(), b.cols());
    for (std::size_t i = 0; i < a.rows(); ++i)
        for (std::size_t k = 0; k < a.cols(); ++k)
            for (std::size_t j = 0; j < b.cols(); ++j)
                c(i, j) += a(i, k) * b(k, j);
    return c;
}

} // namespace

TEST(Gemm, BlockedMatchesNaiveRealRaggedShapes) {
    const MatrixD a = random_matrix(37, 53, 1);
    const MatrixD b = random_matrix(53, 41, 2);
    const MatrixD c = a * b;
    const MatrixD ref = naive_product(a, b);
    for (std::size_t i = 0; i < c.rows(); ++i)
        for (std::size_t j = 0; j < c.cols(); ++j)
            EXPECT_NEAR(c(i, j), ref(i, j), 1e-12);
}

TEST(Gemm, BlockedMatchesNaiveAcrossPanelBoundary) {
    // k = 300 crosses the 256-row packing panel.
    const MatrixD a = random_matrix(65, 300, 3);
    const MatrixD b = random_matrix(300, 67, 4);
    const MatrixD c = a * b;
    const MatrixD ref = naive_product(a, b);
    for (std::size_t i = 0; i < c.rows(); ++i)
        for (std::size_t j = 0; j < c.cols(); ++j)
            EXPECT_NEAR(c(i, j), ref(i, j), 1e-11);
}

TEST(Gemm, BlockedMatchesNaiveComplex) {
    const MatrixC a = random_complex(29, 31, 5);
    const MatrixC b = random_complex(31, 23, 6);
    const MatrixC c = a * b;
    const MatrixC ref = naive_product(a, b);
    for (std::size_t i = 0; i < c.rows(); ++i)
        for (std::size_t j = 0; j < c.cols(); ++j)
            EXPECT_NEAR(std::abs(c(i, j) - ref(i, j)), 0.0, 1e-12);
}

TEST(Gemm, ProductBitIdenticalAcrossThreadCounts) {
    const MatrixD a = random_matrix(120, 90, 7);
    const MatrixD b = random_matrix(90, 110, 8);
    pgsi::test::ScopedThreadCount pin(1);
    const MatrixD c1 = a * b;
    for (const std::size_t threads : {2u, 8u}) {
        pin.repin(threads);
        const MatrixD cn = a * b;
        double d = 0;
        for (std::size_t i = 0; i < c1.rows(); ++i)
            for (std::size_t j = 0; j < c1.cols(); ++j)
                d = std::max(d, std::abs(c1(i, j) - cn(i, j)));
        EXPECT_EQ(d, 0.0) << "threads=" << threads;
    }
}
