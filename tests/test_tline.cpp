// Tests for the modal transmission-line model: delay, matching, reflection,
// crosstalk symmetry, and frequency-domain consistency.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "circuit/transient.hpp"
#include "common/constants.hpp"
#include "common/error.hpp"
#include "obs/metrics.hpp"

using namespace pgsi;

namespace {

std::shared_ptr<ModalTline> line50(double length) {
    MtlParameters p;
    p.l = MatrixD{{250e-9}};
    p.c = MatrixD{{100e-12}}; // Z0 = 50 Ω, v = 2e8 m/s
    return std::make_shared<ModalTline>(p, length);
}

} // namespace

TEST(ModalTline, SingleLineFigures) {
    const auto m = line50(0.2);
    // Modal impedance lives in the modal coordinate system: sqrt(eig(LC)) =
    // the per-metre delay. Physical behaviour is carried by Yc.
    EXPECT_NEAR(m->modal_impedance()[0], 5e-9, 1e-15);
    EXPECT_NEAR(m->delays()[0], 1e-9, 1e-15); // 0.2 m / 2e8 m/s
    EXPECT_NEAR(m->characteristic_admittance()(0, 0), 1.0 / 50.0, 1e-12);
}

TEST(ModalTline, MatchedLineDelaysPulse) {
    Netlist nl;
    const NodeId src = nl.node("src");
    const NodeId in = nl.node("in");
    const NodeId out = nl.node("out");
    nl.add_vsource("V1", src, nl.ground(),
                   Source::pulse(0, 2, 0, 0.1e-9, 0.1e-9, 2e-9));
    nl.add_resistor("Rs", src, in, 50.0);
    nl.add_tline("T1", {in}, {out}, line50(0.2)); // 1 ns delay
    nl.add_resistor("Rl", out, nl.ground(), 50.0);
    TransientOptions opt;
    opt.dt = 10e-12;
    opt.tstop = 4e-9;
    const TransientResult res = transient_analyze(nl, opt);
    const VectorD w_in = res.waveform(in);
    const VectorD w_out = res.waveform(out);
    // Incident amplitude is 1 V (2 V behind 50 into 50); far end sees the
    // same 1 V one delay later, no reflection.
    auto at = [&](const VectorD& w, double t) {
        return w[static_cast<std::size_t>(t / opt.dt)];
    };
    EXPECT_NEAR(at(w_in, 0.6e-9), 1.0, 0.02);
    EXPECT_NEAR(at(w_out, 0.9e-9), 0.0, 0.02); // before the delay
    EXPECT_NEAR(at(w_out, 1.6e-9), 1.0, 0.02); // after the delay
}

TEST(ModalTline, OpenEndDoublesShortEndCancels) {
    for (const bool open : {true, false}) {
        Netlist nl;
        const NodeId src = nl.node("src");
        const NodeId in = nl.node("in");
        const NodeId out = nl.node("out");
        nl.add_vsource("V1", src, nl.ground(),
                       Source::pulse(0, 2, 0, 0.1e-9, 0.1e-9, 5e-9));
        nl.add_resistor("Rs", src, in, 50.0);
        nl.add_tline("T1", {in}, {out}, line50(0.2));
        nl.add_resistor("Rl", out, nl.ground(), open ? 1e9 : 1e-3);
        TransientOptions opt;
        opt.dt = 10e-12;
        opt.tstop = 4e-9;
        const TransientResult res = transient_analyze(nl, opt);
        const VectorD w_out = res.waveform(out);
        const double v_mid =
            w_out[static_cast<std::size_t>(1.8e-9 / opt.dt)];
        if (open)
            EXPECT_NEAR(v_mid, 2.0, 0.05); // reflection doubles
        else
            EXPECT_NEAR(v_mid, 0.0, 0.05); // short kills it
    }
}

TEST(ModalTline, CoupledPairCrosstalkSigns) {
    // Symmetric coupled pair: near-end crosstalk on the quiet line is
    // positive (for this L/C sign convention), far-end is negative, and both
    // vanish when the coupling does.
    MtlParameters p;
    p.l = MatrixD{{300e-9, 60e-9}, {60e-9, 300e-9}};
    p.c = MatrixD{{120e-12, -15e-12}, {-15e-12, 120e-12}};
    auto model = std::make_shared<ModalTline>(p, 0.15);

    Netlist nl;
    const NodeId src = nl.node("src");
    const NodeId a_in = nl.node("a_in");
    const NodeId a_out = nl.node("a_out");
    const NodeId b_in = nl.node("b_in");
    const NodeId b_out = nl.node("b_out");
    nl.add_vsource("V1", src, nl.ground(),
                   Source::pulse(0, 2, 0, 0.2e-9, 0.2e-9, 3e-9));
    nl.add_resistor("Rs", src, a_in, 50.0);
    nl.add_resistor("Rbn", b_in, nl.ground(), 50.0);
    nl.add_tline("T1", {a_in, b_in}, {a_out, b_out}, model);
    nl.add_resistor("Ral", a_out, nl.ground(), 50.0);
    nl.add_resistor("Rbl", b_out, nl.ground(), 50.0);

    TransientOptions opt;
    opt.dt = 10e-12;
    opt.tstop = 5e-9;
    const TransientResult res = transient_analyze(nl, opt);
    const double ne = res.peak_abs(b_in);
    const double fe = res.peak_abs(b_out);
    EXPECT_GT(ne, 0.01);  // crosstalk exists
    EXPECT_GT(fe, 0.01);
    EXPECT_LT(ne, 0.5);   // and is a fraction of the 1 V aggressor
    EXPECT_LT(fe, 0.5);
}

TEST(ModalTline, AcAdmittanceMatchesCircuitBehaviour) {
    // Half-wave line: input impedance equals the load.
    const auto m = line50(0.2); // τ = 1 ns -> half wave at 500 MHz
    const MatrixC y = m->ac_admittance(2 * pi * 500e6 * 1.000001);
    // For the (nearly singular) half-wave point use the quarter-wave instead.
    const MatrixC yq = m->ac_admittance(2 * pi * 250e6);
    // Quarter wave: y11 ~ 0 (cot(π/2) = 0), |y12| = 1/Z0.
    EXPECT_NEAR(std::abs(yq(0, 0)), 0.0, 1e-9);
    EXPECT_NEAR(std::abs(yq(0, 1)), 1.0 / 50.0, 1e-9);
    (void)y;
}

TEST(ModalTline, RejectsTooCoarseTimeStep) {
    Netlist nl;
    const NodeId a = nl.node("a");
    const NodeId b = nl.node("b");
    nl.add_vsource("V1", a, nl.ground(), Source::dc(0.0));
    nl.add_tline("T1", {a}, {b}, line50(0.02)); // τ = 100 ps
    nl.add_resistor("R1", b, nl.ground(), 50.0);
    TransientOptions opt;
    opt.dt = 1e-9; // dt > τ
    opt.tstop = 5e-9;
    EXPECT_THROW(transient_analyze(nl, opt), InvalidArgument);
}

TEST(ModalTline, TerminalCountValidation) {
    Netlist nl;
    const NodeId a = nl.node("a");
    EXPECT_THROW(nl.add_tline("T1", {a}, {a, a}, line50(0.1)), InvalidArgument);
}

TEST(ModalTline, HalfWaveResonanceIsPerturbedAutomatically) {
    // τ = 1 ns: ω = π/τ lands exactly on the m = 1 half-wave resonance of
    // the single mode. A relative 1e-9 nudge moves θ off the singularity;
    // the admittance must come back finite instead of throwing.
    const auto m = line50(0.2);
    const double omega_res = 3.14159265358979323846 / 1e-9;
    static obs::Counter& perturbed =
        obs::counter("tline.resonance_perturbations");
    const std::uint64_t before = perturbed.value();
    MatrixC y;
    ASSERT_NO_THROW(y = m->ac_admittance(omega_res));
    EXPECT_EQ(perturbed.value(), before + 1);
    for (std::size_t i = 0; i < y.rows(); ++i)
        for (std::size_t j = 0; j < y.cols(); ++j) {
            EXPECT_TRUE(std::isfinite(y(i, j).real()));
            EXPECT_TRUE(std::isfinite(y(i, j).imag()));
        }
    // Slightly off resonance must agree with the perturbed on-resonance
    // sample to the physical tolerance the nudge implies.
    const MatrixC yref = m->ac_admittance(omega_res * (1.0 + 1e-9));
    EXPECT_NEAR(std::abs(y(0, 0) - yref(0, 0)), 0.0, 1e-6 * std::abs(y(0, 0)));
}

TEST(ModalTline, UnrecoverableResonanceNamesTheMode) {
    // ω = 0 is the m = 0 "resonance" (θ = 0) of every mode and stays
    // singular under any relative perturbation — the error must name the
    // resonant order and mode.
    const auto m = line50(0.2);
    try {
        m->ac_admittance(0.0);
        FAIL() << "expected InvalidArgument at omega = 0";
    } catch (const InvalidArgument& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("half-wave resonance"), std::string::npos) << msg;
        EXPECT_NE(msg.find("m = 0"), std::string::npos) << msg;
        EXPECT_NE(msg.find("mode 0"), std::string::npos) << msg;
    }
}
