// FFT (radix-2 + Bluestein) against the DFT definition.
#include <gtest/gtest.h>

#include <random>

#include "common/constants.hpp"
#include "common/parallel.hpp"
#include "numeric/fft.hpp"
#include "tests/test_util.hpp"

using namespace pgsi;

namespace {

VectorC random_signal(std::size_t n, unsigned seed) {
    std::mt19937 rng(seed);
    std::uniform_real_distribution<double> u(-1.0, 1.0);
    VectorC x(n);
    for (std::size_t i = 0; i < n; ++i) x[i] = Complex(u(rng), u(rng));
    return x;
}

// O(n^2) reference straight from the definition.
VectorC naive_dft(const VectorC& x) {
    const std::size_t n = x.size();
    VectorC out(n, Complex{});
    for (std::size_t k = 0; k < n; ++k)
        for (std::size_t j = 0; j < n; ++j) {
            const double ang = -2.0 * pi * static_cast<double>(k * j) /
                               static_cast<double>(n);
            out[k] += x[j] * Complex(std::cos(ang), std::sin(ang));
        }
    return out;
}

double max_abs_diff(const VectorC& a, const VectorC& b) {
    EXPECT_EQ(a.size(), b.size());
    double m = 0;
    for (std::size_t i = 0; i < a.size(); ++i)
        m = std::max(m, std::abs(a[i] - b[i]));
    return m;
}

class FftSizes : public ::testing::TestWithParam<std::size_t> {};

} // namespace

TEST_P(FftSizes, ForwardMatchesNaiveDft) {
    const std::size_t n = GetParam();
    const VectorC x = random_signal(n, 17u + static_cast<unsigned>(n));
    const VectorC ref = naive_dft(x);
    const VectorC got = fft(x);
    // Naive DFT accumulates rounding itself; scale the tolerance with n.
    EXPECT_LT(max_abs_diff(got, ref), 1e-11 * static_cast<double>(n) + 1e-12)
        << "n = " << n;
}

TEST_P(FftSizes, InverseRoundTrips) {
    const std::size_t n = GetParam();
    const VectorC x = random_signal(n, 91u + static_cast<unsigned>(n));
    const VectorC back = ifft(fft(x));
    EXPECT_LT(max_abs_diff(back, x), 1e-12 * static_cast<double>(n) + 1e-13)
        << "n = " << n;
}

// Powers of two hit radix-2; primes (3, 5, 7, 31, 97, 127) and composites
// (6, 12, 100, 384) hit Bluestein, including sizes just off a power of two.
INSTANTIATE_TEST_SUITE_P(Sizes, FftSizes,
                         ::testing::Values<std::size_t>(1, 2, 3, 4, 5, 6, 7, 8,
                                                        12, 16, 31, 32, 97, 100,
                                                        127, 128, 384, 512));

TEST(Fft, PlanReportsRadix2Path) {
    EXPECT_TRUE(Fft(8).radix2());
    EXPECT_TRUE(Fft(1).radix2());
    EXPECT_FALSE(Fft(12).radix2());
    EXPECT_FALSE(Fft(97).radix2());
}

TEST(Fft, ImpulseTransformsToAllOnes) {
    for (const std::size_t n : {8u, 13u}) {
        VectorC x(n, Complex{});
        x[0] = 1.0;
        const VectorC got = fft(x);
        for (std::size_t k = 0; k < n; ++k)
            EXPECT_LT(std::abs(got[k] - Complex(1.0, 0.0)), 1e-12);
    }
}

TEST(Fft, NextPow2) {
    EXPECT_EQ(next_pow2(1), 1u);
    EXPECT_EQ(next_pow2(2), 2u);
    EXPECT_EQ(next_pow2(3), 4u);
    EXPECT_EQ(next_pow2(17), 32u);
    EXPECT_EQ(next_pow2(64), 64u);
}

TEST(Fft, TwoDimensionalMatchesRowColumnNaive) {
    const std::size_t ny = 4, nx = 8;
    VectorC grid = random_signal(ny * nx, 7u);
    // Reference: naive DFT on every row, then every column.
    std::vector<VectorC> rows(ny);
    for (std::size_t r = 0; r < ny; ++r)
        rows[r] = naive_dft(VectorC(grid.begin() + r * nx,
                                    grid.begin() + (r + 1) * nx));
    VectorC ref(ny * nx);
    for (std::size_t c = 0; c < nx; ++c) {
        VectorC col(ny);
        for (std::size_t r = 0; r < ny; ++r) col[r] = rows[r][c];
        col = naive_dft(col);
        for (std::size_t r = 0; r < ny; ++r) ref[r * nx + c] = col[r];
    }
    const Fft fy(ny), fx(nx);
    VectorC got = grid;
    fft_2d(got.data(), ny, nx, fy, fx, false);
    EXPECT_LT(max_abs_diff(got, ref), 1e-11);

    fft_2d(got.data(), ny, nx, fy, fx, true);
    EXPECT_LT(max_abs_diff(got, grid), 1e-12);
}

TEST(Fft, TwoDimensionalBitwiseInvariantAcrossThreadCounts) {
    const std::size_t ny = 16, nx = 32;
    const VectorC grid = random_signal(ny * nx, 23u);
    const Fft fy(ny), fx(nx);

    pgsi::test::ScopedThreadCount pin(1);
    VectorC base = grid;
    fft_2d(base.data(), ny, nx, fy, fx, false);

    for (const unsigned threads : {2u, 8u}) {
        pin.repin(threads);
        VectorC got = grid;
        fft_2d(got.data(), ny, nx, fy, fx, false);
        for (std::size_t i = 0; i < got.size(); ++i)
            EXPECT_EQ(got[i], base[i]) << "thread count " << threads;
    }
}
