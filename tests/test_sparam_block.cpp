// Tests for the Touchstone-driven S-parameter black-box element.
#include <gtest/gtest.h>

#include <cmath>

#include "circuit/ac.hpp"
#include "circuit/sparams.hpp"
#include "circuit/transient.hpp"
#include "common/constants.hpp"

using namespace pgsi;

namespace {

// Tabulate the S-parameters of a known series-R two-port and wrap them in
// TouchstoneData.
std::shared_ptr<TouchstoneData> series_r_table(double r, const VectorD& freqs) {
    Netlist nl;
    const NodeId p1 = nl.node("p1");
    const NodeId p2 = nl.node("p2");
    nl.add_resistor("R1", p1, p2, r);
    SParamExtractor ex(nl, {{p1, 0, 50.0}, {p2, 0, 50.0}});
    auto data = std::make_shared<TouchstoneData>();
    data->freqs_hz = freqs;
    data->z0 = 50.0;
    for (double f : freqs) data->s.push_back(ex.at(f));
    return data;
}

} // namespace

TEST(SParamBlock, ReproducesTabulatedNetwork) {
    // Black-box the 100-ohm series two-port and re-measure it: the AC
    // response must match the original resistor at tabulated and
    // interpolated frequencies alike.
    const VectorD table_freqs{1e6, 10e6, 100e6, 1e9};
    auto data = series_r_table(100.0, table_freqs);

    Netlist nl;
    const NodeId a = nl.node("a");
    const NodeId b = nl.node("b");
    nl.add_sparam_block("Sblk", {a, b}, data);
    // Drive: 1 V behind 50, terminate with 50.
    const NodeId src = nl.node("src");
    nl.add_vsource("V1", src, nl.ground(), Source::dc(0.0).set_ac(1.0));
    nl.add_resistor("Rs", src, a, 50.0);
    nl.add_resistor("Rl", b, nl.ground(), 50.0);

    for (double f : {1e6, 5e6, 300e6}) { // includes interpolated points
        const AcSolution s = ac_analyze(nl, f);
        // Voltage divider: V(b) = 1 * 50 / (50 + 100 + 50) = 0.25.
        EXPECT_NEAR(std::abs(s.v(b)), 0.25, 1e-6) << f;
        EXPECT_NEAR(std::abs(s.v(a)), 0.75, 1e-6) << f;
    }
}

TEST(SParamBlock, OnePortShuntElement) {
    // 1-port table of a 25-ohm shunt; the block must load a divider like the
    // real resistor.
    Netlist ref;
    const NodeId q = ref.node("q");
    ref.add_resistor("R1", q, ref.ground(), 25.0);
    SParamExtractor ex(ref, {{q, 0, 50.0}});
    auto data = std::make_shared<TouchstoneData>();
    data->freqs_hz = {1e6, 1e9};
    data->z0 = 50.0;
    for (double f : data->freqs_hz) data->s.push_back(ex.at(f));

    Netlist nl;
    const NodeId a = nl.node("a");
    nl.add_sparam_block("S1", {a}, data);
    const NodeId src = nl.node("src");
    nl.add_vsource("V1", src, nl.ground(), Source::dc(0.0).set_ac(1.0));
    nl.add_resistor("Rs", src, a, 75.0);
    const AcSolution s = ac_analyze(nl, 50e6);
    EXPECT_NEAR(std::abs(s.v(a)), 25.0 / 100.0, 1e-6);
}

TEST(SParamBlock, TransientRejectsIt) {
    auto data = series_r_table(100.0, {1e6, 1e9});
    Netlist nl;
    const NodeId a = nl.node("a");
    const NodeId b = nl.node("b");
    nl.add_sparam_block("Sblk", {a, b}, data);
    nl.add_vsource("V1", a, nl.ground(), Source::dc(1.0));
    nl.add_resistor("Rl", b, nl.ground(), 50.0);
    TransientOptions opt;
    opt.dt = 1e-10;
    opt.tstop = 1e-9;
    EXPECT_THROW(transient_analyze(nl, opt), InvalidArgument);
}

TEST(SParamBlock, Validation) {
    auto data = series_r_table(100.0, {1e6, 1e9});
    Netlist nl;
    const NodeId a = nl.node("a");
    EXPECT_THROW(nl.add_sparam_block("bad", {a}, data), InvalidArgument);
    EXPECT_THROW(nl.add_sparam_block("bad", {a, a}, nullptr), InvalidArgument);
}
