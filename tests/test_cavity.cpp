// Tests for the analytic cavity-resonator plane model, including the
// three-way cross-validation: analytic cavity vs BEM direct solve vs
// extracted equivalent circuit on the same plane pair.
#include <gtest/gtest.h>

#include <cmath>

#include "common/constants.hpp"
#include "em/cavity_model.hpp"
#include "em/solver.hpp"
#include "extract/equivalent_circuit.hpp"

using namespace pgsi;

namespace {

CavityModel test_cavity() {
    CavityModel c;
    c.a = 0.04;
    c.b = 0.03;
    c.d = 0.5e-3;
    c.eps_r = 4.5;
    c.rs_total = 2e-3;
    c.max_modes = 50;
    c.port_w = 2e-3;
    c.port_h = 2e-3;
    return c;
}

} // namespace

TEST(Cavity, StaticCapacitanceLimit) {
    CavityModel c = test_cavity();
    // At low frequency the (0,0) mode dominates: Z ≈ 1/(jωC). Use the
    // lossless cavity — at 1 MHz the conductor term Rs/(ωμ0 d) otherwise
    // contributes a large effective loss tangent (physical, but not what
    // this limit checks).
    c.rs_total = 0;
    const double f = 1e6;
    const Complex z = c.impedance({0.01, 0.01}, {0.01, 0.01}, f);
    const double expect = 1.0 / (2 * pi * f * c.static_capacitance());
    EXPECT_NEAR(std::abs(z), expect, 0.01 * expect);
    EXPECT_LT(z.imag(), 0.0);
}

TEST(Cavity, ModeFrequencies) {
    const CavityModel c = test_cavity();
    EXPECT_NEAR(c.mode_frequency(1, 0), c0 / std::sqrt(4.5) / (2 * 0.04), 1.0);
    EXPECT_NEAR(c.mode_frequency(0, 1), c0 / std::sqrt(4.5) / (2 * 0.03), 1.0);
    EXPECT_GT(c.mode_frequency(1, 1), c.mode_frequency(1, 0));
    EXPECT_THROW(c.mode_frequency(0, 0), InvalidArgument);
}

TEST(Cavity, ImpedancePeaksAtFirstMode) {
    const CavityModel c = test_cavity();
    const double f10 = c.mode_frequency(1, 0);
    // |Z| at the plane edge rises sharply at the resonance compared to 20%
    // off resonance.
    const Point2 p{0.002, 0.015};
    const double at = std::abs(c.impedance(p, p, f10));
    const double off = std::abs(c.impedance(p, p, 0.8 * f10));
    EXPECT_GT(at, 3.0 * off);
}

TEST(Cavity, ReciprocityAndSymmetry) {
    const CavityModel c = test_cavity();
    const MatrixC z = c.impedance_matrix({{0.005, 0.005}, {0.035, 0.025}}, 2e9);
    EXPECT_NEAR(std::abs(z(0, 1) - z(1, 0)), 0.0, 1e-12 * std::abs(z(0, 1)));
}

TEST(Cavity, LossDampsResonance) {
    CavityModel lossless = test_cavity();
    lossless.rs_total = 0;
    CavityModel lossy = test_cavity();
    lossy.tan_delta = 0.05;
    const double f10 = lossless.mode_frequency(1, 0);
    const Point2 p{0.002, 0.015};
    EXPECT_GT(std::abs(lossless.impedance(p, p, f10)),
              2.0 * std::abs(lossy.impedance(p, p, f10)));
}

TEST(Cavity, ThreeWayAgreementWithBemAndCircuit) {
    // Same plane pair through the analytic cavity, the direct BEM solve and
    // the extracted equivalent circuit.
    const CavityModel cav = test_cavity();

    ConductorShape s;
    s.outline = Polygon::rectangle(0, 0, cav.a, cav.b);
    s.z = cav.d;
    s.sheet_resistance = 1e-3; // per plane; cavity carries both -> 2e-3 total
    const PlaneBem bem(RectMesh({s}, cav.a / 16), Greens::homogeneous(4.5, true),
                       BemOptions{});
    const DirectSolver direct(bem, SurfaceImpedance::from_sheet_resistance(1e-3));
    const EquivalentCircuit ec =
        CircuitExtractor(bem, ExtractionOptions{0.0, true, false}).extract_full();

    const Point2 pos{0.005, 0.0075};
    const std::size_t port = bem.mesh().nearest_node(pos, 0);
    const Point2 snapped = bem.mesh().nodes()[port].center;

    // Compare below and between the first resonances (analytic model and
    // quasi-static BEM share assumptions there).
    for (double f : {50e6, 200e6, 600e6}) {
        const double za = std::abs(cav.impedance(snapped, snapped, f));
        const double zb = std::abs(direct.port_impedance(f, {port})(0, 0));
        const double zc = std::abs(ec.impedance(f, {port})(0, 0));
        EXPECT_NEAR(zb, za, 0.10 * za) << "BEM vs cavity at f=" << f;
        EXPECT_NEAR(zc, za, 0.10 * za) << "circuit vs cavity at f=" << f;
    }
}

TEST(Cavity, FirstResonanceMatchesBem) {
    const CavityModel cav = test_cavity();
    ConductorShape s;
    s.outline = Polygon::rectangle(0, 0, cav.a, cav.b);
    s.z = cav.d;
    const PlaneBem bem(RectMesh({s}, cav.a / 16), Greens::homogeneous(4.5, true),
                       BemOptions{});
    const EquivalentCircuit ec =
        CircuitExtractor(bem, ExtractionOptions{0.0, true, false}).extract_full();
    const std::size_t port = bem.mesh().nearest_node({0.002, 0.015}, 0);

    // Scan for the first |Z| peak of the extracted circuit.
    double best_f = 0, best = 0;
    const double f10 = cav.mode_frequency(1, 0);
    for (double f = 0.6 * f10; f <= 1.4 * f10; f += f10 / 200) {
        const double z = std::abs(ec.impedance(f, {port})(0, 0));
        if (z > best) {
            best = z;
            best_f = f;
        }
    }
    EXPECT_NEAR(best_f, f10, 0.08 * f10);
}
