// Shared helpers for the test suite.
#pragma once

#include <cstddef>

#include "common/parallel.hpp"

namespace pgsi::test {

// Pins the pool thread count for the lifetime of the guard and restores the
// automatic default on destruction. Exception-safe: a failing ASSERT or a
// throw inside the pinned region can no longer leak a pinned count into
// later tests in the same binary.
class ScopedThreadCount {
public:
    explicit ScopedThreadCount(std::size_t n) { par::set_thread_count(n); }
    ~ScopedThreadCount() { par::set_thread_count(0); }

    ScopedThreadCount(const ScopedThreadCount&) = delete;
    ScopedThreadCount& operator=(const ScopedThreadCount&) = delete;

    // Re-pin within the same guarded region.
    void repin(std::size_t n) { par::set_thread_count(n); }
};

} // namespace pgsi::test
