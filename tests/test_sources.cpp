// Tests for source waveforms.
#include <gtest/gtest.h>

#include <cmath>

#include "circuit/sources.hpp"
#include "common/constants.hpp"
#include "common/error.hpp"

using namespace pgsi;

TEST(Source, Dc) {
    const Source s = Source::dc(3.3);
    EXPECT_DOUBLE_EQ(s.value(0.0), 3.3);
    EXPECT_DOUBLE_EQ(s.value(1e9), 3.3);
    EXPECT_DOUBLE_EQ(s.settle_time(), 0.0);
}

TEST(Source, PulseShape) {
    const Source s = Source::pulse(0, 5, 1e-9, 0.3e-9, 0.3e-9, 1e-9);
    EXPECT_DOUBLE_EQ(s.value(0.0), 0.0);
    EXPECT_DOUBLE_EQ(s.value(1e-9), 0.0);                 // at delay
    EXPECT_NEAR(s.value(1.15e-9), 2.5, 1e-9);             // mid rise
    EXPECT_DOUBLE_EQ(s.value(1.5e-9), 5.0);               // plateau
    EXPECT_NEAR(s.value(2.45e-9), 2.5, 1e-9);             // mid fall
    EXPECT_DOUBLE_EQ(s.value(5e-9), 0.0);                 // settled
    EXPECT_NEAR(s.settle_time(), 2.6e-9, 1e-15);
}

TEST(Source, PeriodicPulse) {
    const Source s = Source::pulse(0, 1, 0, 1e-9, 1e-9, 3e-9, 10e-9);
    EXPECT_DOUBLE_EQ(s.value(2e-9), 1.0);
    EXPECT_DOUBLE_EQ(s.value(12e-9), 1.0); // second period
    EXPECT_TRUE(std::isinf(s.settle_time()));
}

TEST(Source, Sine) {
    const Source s = Source::sine(1.0, 2.0, 1e6);
    EXPECT_DOUBLE_EQ(s.value(0.0), 1.0);
    EXPECT_NEAR(s.value(0.25e-6), 3.0, 1e-9); // quarter period peak
    EXPECT_NEAR(s.value(0.75e-6), -1.0, 1e-9);
}

TEST(Source, SineDamped) {
    const Source s = Source::sine(0.0, 1.0, 1e6, 0.0, 1e6);
    EXPECT_LT(std::abs(s.value(2.25e-6)), std::abs(s.value(0.25e-6)));
}

TEST(Source, Pwl) {
    const Source s = Source::pwl({0, 1e-9, 2e-9}, {0, 1, 0});
    EXPECT_NEAR(s.value(0.5e-9), 0.5, 1e-12);
    EXPECT_DOUBLE_EQ(s.value(9e-9), 0.0);
    EXPECT_NEAR(s.settle_time(), 2e-9, 1e-18);
}

TEST(Source, AcPhasor) {
    Source s = Source::dc(0.0);
    s.set_ac(2.0, 90.0);
    const Complex p = s.ac_phasor();
    EXPECT_NEAR(p.real(), 0.0, 1e-12);
    EXPECT_NEAR(p.imag(), 2.0, 1e-12);
}

TEST(Source, RejectsBadPulse) {
    EXPECT_THROW(Source::pulse(0, 1, 0, 0.0, 1e-9, 1e-9), InvalidArgument);
    EXPECT_THROW(Source::sine(0, 1, -5.0), InvalidArgument);
}
