// Tests for the equivalent-circuit extraction (§4.2): element maps, model
// admittance consistency, netlist stamping, and physical sanity.
#include <gtest/gtest.h>

#include <cmath>

#include "circuit/ac.hpp"
#include "common/constants.hpp"
#include "extract/equivalent_circuit.hpp"

using namespace pgsi;

namespace {

PlaneBem make_plane(double side, double pitch, double h, double rs = 6e-3) {
    ConductorShape s;
    s.outline = Polygon::rectangle(0, 0, side, side);
    s.z = h;
    s.sheet_resistance = rs;
    return PlaneBem(RectMesh({s}, pitch), Greens::homogeneous(4.5, true),
                    BemOptions{});
}

} // namespace

TEST(EquivalentCircuit, FullExtractionStructure) {
    const PlaneBem bem = make_plane(0.04, 0.01, 0.5e-3);
    const CircuitExtractor ex(bem);
    const EquivalentCircuit ec = ex.extract_full();
    EXPECT_EQ(ec.node_count(), bem.node_count());
    EXPECT_TRUE(ec.has_reference);
    // Branch L between adjacent nodes must be positive; node caps positive.
    for (double c : ec.node_cap) EXPECT_GT(c, 0.0);
    std::size_t positive_l = 0;
    for (const RlcBranch& b : ec.branches) {
        if (b.l > 0) ++positive_l;
        if (b.c != 0) {
            EXPECT_GT(b.c, 0.0);
        }
        if (b.r != 0) {
            EXPECT_GT(b.r, 0.0);
        }
    }
    EXPECT_GT(positive_l, 0u);
}

TEST(EquivalentCircuit, TotalCapacitanceMatchesParallelPlate) {
    const double side = 0.05, h = 0.5e-3;
    const PlaneBem bem = make_plane(side, side / 8, h);
    const EquivalentCircuit ec = CircuitExtractor(bem).extract_full();
    const double cpp = eps0 * 4.5 * side * side / h;
    EXPECT_NEAR(ec.total_reference_capacitance(), cpp, 0.25 * cpp);
    EXPECT_GT(ec.total_reference_capacitance(), cpp);
}

TEST(EquivalentCircuit, ReducedModelMatchesFullAtPorts) {
    // Impedance between two pin nodes: full circuit vs Kron-reduced circuit
    // must agree at low frequency (the reduction is exact for Γ and C).
    const PlaneBem bem = make_plane(0.04, 0.01, 0.5e-3);
    const CircuitExtractor ex(bem);
    const EquivalentCircuit full = ex.extract_full();
    const std::size_t p1 = bem.mesh().nearest_node({0.005, 0.005}, 0);
    const std::size_t p2 = bem.mesh().nearest_node({0.035, 0.035}, 0);
    const EquivalentCircuit red = ex.extract({p1, p2});

    const double f = 50e6;
    const MatrixC zf = full.impedance(f, {p1, p2});
    const MatrixC zr = red.impedance(f, {0, 1});
    EXPECT_NEAR(std::abs(zf(0, 0)), std::abs(zr(0, 0)), 0.05 * std::abs(zf(0, 0)));
    EXPECT_NEAR(std::abs(zf(0, 1)), std::abs(zr(0, 1)), 0.05 * std::abs(zf(0, 1)));
}

TEST(EquivalentCircuit, StampedNetlistMatchesModelAdmittance) {
    // AC analysis of the stamped netlist must reproduce the analytic model
    // impedance.
    const PlaneBem bem = make_plane(0.03, 0.01, 0.5e-3);
    const EquivalentCircuit ec = CircuitExtractor(bem).extract_full();

    Netlist nl;
    std::vector<NodeId> map;
    for (std::size_t k = 0; k < ec.node_count(); ++k)
        map.push_back(nl.add_node("p" + std::to_string(k)));
    ec.stamp(nl, map, nl.ground(), "pg");
    nl.add_isource("I1", nl.ground(), map[0], Source::dc(0.0).set_ac(1.0));

    const double f = 100e6;
    const AcSolution sol = ac_analyze(nl, f);
    const MatrixC z = ec.impedance(f, {0});
    EXPECT_NEAR(std::abs(sol.v(map[0])), std::abs(z(0, 0)),
                1e-6 * std::abs(z(0, 0)));
}

TEST(EquivalentCircuit, PruningDropsWeakBranches) {
    const PlaneBem bem = make_plane(0.05, 0.01, 0.5e-3);
    const EquivalentCircuit all =
        CircuitExtractor(bem, ExtractionOptions{0.0, true}).extract_full();
    const EquivalentCircuit pruned =
        CircuitExtractor(bem, ExtractionOptions{0.05, true}).extract_full();
    std::size_t all_l = 0, pruned_l = 0;
    for (const RlcBranch& b : all.branches)
        if (b.l != 0) ++all_l;
    for (const RlcBranch& b : pruned.branches)
        if (b.l != 0) ++pruned_l;
    EXPECT_LT(pruned_l, all_l);
    // ...while barely moving the port impedance.
    const std::size_t p1 = 0, p2 = bem.node_count() - 1;
    const double f = 30e6;
    const double za = std::abs(all.impedance(f, {p1, p2})(0, 1));
    const double zp = std::abs(pruned.impedance(f, {p1, p2})(0, 1));
    EXPECT_NEAR(zp, za, 0.1 * za);
}

TEST(EquivalentCircuit, LosslessExtractionHasNoR) {
    ConductorShape s;
    s.outline = Polygon::rectangle(0, 0, 0.03, 0.03);
    s.z = 0.5e-3;
    s.sheet_resistance = 0.0;
    const PlaneBem bem(RectMesh({s}, 0.01), Greens::homogeneous(4.5, true),
                       BemOptions{});
    const EquivalentCircuit ec = CircuitExtractor(bem).extract_full();
    for (const RlcBranch& b : ec.branches) EXPECT_DOUBLE_EQ(b.r, 0.0);
}

TEST(EquivalentCircuit, SelectNodesIncludesPortsAndInterior) {
    const PlaneBem bem = make_plane(0.05, 0.01, 0.5e-3);
    const CircuitExtractor ex(bem);
    const std::vector<std::size_t> ports{3, 7};
    const auto keep = ex.select_nodes(ports, 6);
    EXPECT_GE(keep.size(), 6u);
    EXPECT_TRUE(std::binary_search(keep.begin(), keep.end(), 3u));
    EXPECT_TRUE(std::binary_search(keep.begin(), keep.end(), 7u));
}
