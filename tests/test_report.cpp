// Flight-recorder tests: convergence streams (zero-cost-off guarantee and
// bitwise-identical results), resource accounting, the JSON parser, the
// SolveReport round trip, pool statistics, the Markdown renderer, and the
// bench_compare perf-regression gate.
#include <gtest/gtest.h>

#include <complex>
#include <cstdio>
#include <filesystem>

#include "common/parallel.hpp"
#include "common/robust.hpp"
#include "io/json.hpp"
#include "numeric/gmres.hpp"
#include "obs/bench_gate.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/resource.hpp"
#include "obs/stream.hpp"
#include "obs/trace.hpp"

using namespace pgsi;

namespace {

// Per-test stream/resource sandbox: both recorders on, cleared, restored off.
class ReportTest : public ::testing::Test {
protected:
    void SetUp() override {
        obs::set_streams_enabled(true);
        obs::set_resources_enabled(true);
        obs::reset_streams();
    }
    void TearDown() override {
        obs::set_streams_enabled(false);
        obs::set_resources_enabled(false);
        obs::reset_streams();
    }
};

// Diagonally dominant dense test system; GMRES takes a handful of
// iterations, enough to populate a residual stream.
GmresResult solve_test_system(VectorC& x) {
    const std::size_t n = 24;
    MatrixC a(n, n);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j)
            a(i, j) = i == j ? Complex(4.0 + double(i) * 0.1, 0.5)
                             : Complex(1.0 / (1.0 + double(i + 2 * j)), 0.0);
    VectorC b(n);
    for (std::size_t i = 0; i < n; ++i)
        b[i] = Complex(1.0, double(i) * 0.01);
    const LinearOpC op = [&a](const VectorC& v, VectorC& y) {
        for (std::size_t i = 0; i < a.rows(); ++i) {
            Complex s = 0;
            for (std::size_t j = 0; j < a.cols(); ++j) s += a(i, j) * v[j];
            y[i] = s;
        }
    };
    x.assign(n, Complex(0, 0));
    return gmres(op, b, x);
}

const obs::StreamSeries* find_series(const std::vector<obs::StreamSeries>& all,
                                     const std::string& name) {
    for (const obs::StreamSeries& s : all)
        if (s.name == name) return &s;
    return nullptr;
}

} // namespace

TEST_F(ReportTest, GmresRecordsResidualStream) {
    VectorC x;
    const GmresResult r = solve_test_system(x);
    ASSERT_TRUE(r.converged);
    const auto streams = obs::stream_snapshot();
    const obs::StreamSeries* s = find_series(streams, "gmres.residual");
    ASSERT_NE(s, nullptr);
    // Initial point at x=0 plus one per iteration plus the final true
    // residual; monotone x, and the last y equals the reported residual.
    ASSERT_GE(s->x.size(), r.iterations + 1);
    EXPECT_EQ(s->x.size(), s->y.size());
    EXPECT_DOUBLE_EQ(s->x.front(), 0.0);
    EXPECT_DOUBLE_EQ(s->y.back(), r.residual);
    for (std::size_t i = 1; i < s->x.size(); ++i)
        EXPECT_GE(s->x[i], s->x[i - 1]);
    EXPECT_EQ(s->dropped, 0u);
}

TEST_F(ReportTest, StreamsOffIsEmptyAndBitwiseIdentical) {
    // Reference run with streams ON.
    VectorC x_on;
    const GmresResult r_on = solve_test_system(x_on);
    ASSERT_NE(find_series(obs::stream_snapshot(), "gmres.residual"), nullptr);

    // Same solve with recording OFF: nothing recorded, and the solution and
    // telemetry are bitwise identical — instrumentation only reads state.
    obs::set_streams_enabled(false);
    obs::reset_streams();
    VectorC x_off;
    const GmresResult r_off = solve_test_system(x_off);
    EXPECT_TRUE(obs::stream_snapshot().empty());
    EXPECT_EQ(obs::stream_open("ignored"), obs::kStreamNone);
    ASSERT_EQ(x_on.size(), x_off.size());
    for (std::size_t i = 0; i < x_on.size(); ++i) {
        EXPECT_EQ(x_on[i].real(), x_off[i].real());
        EXPECT_EQ(x_on[i].imag(), x_off[i].imag());
    }
    EXPECT_EQ(r_on.iterations, r_off.iterations);
    EXPECT_EQ(r_on.matvecs, r_off.matvecs);
    EXPECT_EQ(r_on.residual, r_off.residual);
}

TEST_F(ReportTest, StreamCapsAndStaleIdsAreSafe) {
    const std::size_t id = obs::stream_open("capped");
    ASSERT_NE(id, obs::kStreamNone);
    for (std::size_t i = 0; i < obs::kMaxPoints + 100; ++i)
        obs::stream_append(id, double(i), 1.0);
    const auto snap = obs::stream_snapshot();
    const obs::StreamSeries* s = find_series(snap, "capped");
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->x.size(), obs::kMaxPoints);
    EXPECT_EQ(s->dropped, 100u);

    // Ids issued before a reset must go dead, not alias new series.
    EXPECT_TRUE(obs::stream_live(id));
    obs::reset_streams();
    EXPECT_FALSE(obs::stream_live(id));
    obs::stream_append(id, 0, 0); // silently dropped
    obs::stream_mark(id, 0, "stale");
    const std::size_t fresh = obs::stream_open("after_reset");
    ASSERT_NE(fresh, obs::kStreamNone);
    obs::stream_append(fresh, 1, 2);
    const auto snap2 = obs::stream_snapshot();
    ASSERT_EQ(snap2.size(), 1u);
    EXPECT_EQ(snap2[0].name, "after_reset");
    EXPECT_EQ(snap2[0].x.size(), 1u);
    EXPECT_TRUE(snap2[0].marks.empty());
}

TEST_F(ReportTest, MatrixAllocationsAreAttributedToScopes) {
    const std::uint64_t count0 =
        obs::metrics_snapshot().counter_value("alloc.matrix.count");
    const std::uint64_t tagged0 =
        obs::metrics_snapshot().counter_value("alloc.test.scope.bytes");
    {
        PGSI_ALLOC_SCOPE("test.scope");
        MatrixD m(10, 20);
        (void)m;
    }
    const obs::MetricsSnapshot snap = obs::metrics_snapshot();
    EXPECT_GE(snap.counter_value("alloc.matrix.count"), count0 + 1);
    EXPECT_EQ(snap.counter_value("alloc.test.scope.bytes"),
              tagged0 + 10 * 20 * sizeof(double));
}

TEST_F(ReportTest, PoolStatsCountJobsAndBusyTime) {
    par::reset_pool_stats();
    std::atomic<std::uint64_t> sum{0};
    par::parallel_for(1000, [&sum](std::size_t i) {
        sum.fetch_add(i, std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), 1000u * 999u / 2);
    const par::PoolStats st = par::pool_stats();
    EXPECT_GE(st.jobs, 1u);
    EXPECT_GE(st.items, 1000u);
    EXPECT_GT(st.wall_ns, 0u);
    ASSERT_FALSE(st.busy_ns.empty());
    std::uint64_t busy = 0;
    for (const std::uint64_t b : st.busy_ns) busy += b;
    EXPECT_GT(busy, 0u);
}

TEST(JsonParser, ParsesScalarsContainersAndEscapes) {
    const JsonValue v = parse_json(
        " {\"a\": 1.5e2, \"b\": [true, false, null, -3], "
        "\"s\": \"q\\\"\\\\\\n\\u0041\\u00e9\\ud83d\\ude00\", "
        "\"nested\": {\"deep\": {\"x\": 7}}} ");
    ASSERT_TRUE(v.is_object());
    EXPECT_DOUBLE_EQ(v.at("a").number, 150.0);
    const JsonValue& b = v.at("b");
    ASSERT_TRUE(b.is_array());
    ASSERT_EQ(b.array.size(), 4u);
    EXPECT_TRUE(b.array[0].is_bool() && b.array[0].boolean);
    EXPECT_TRUE(b.array[1].is_bool() && !b.array[1].boolean);
    EXPECT_TRUE(b.array[2].is_null());
    EXPECT_DOUBLE_EQ(b.array[3].number, -3.0);
    // \u0041 = 'A', \u00e9 = é (2-byte UTF-8), the surrogate pair = 😀.
    EXPECT_EQ(v.at("s").string, "q\"\\\nA\xC3\xA9\xF0\x9F\x98\x80");
    EXPECT_DOUBLE_EQ(v.at("nested").at("deep").at("x").number, 7.0);
    EXPECT_DOUBLE_EQ(v.num_or("missing", -1.0), -1.0);
}

TEST(JsonParser, RejectsMalformedDocuments) {
    EXPECT_THROW(parse_json(""), InvalidArgument);
    EXPECT_THROW(parse_json("{"), InvalidArgument);
    EXPECT_THROW(parse_json("{\"a\": }"), InvalidArgument);
    EXPECT_THROW(parse_json("[1, 2,]"), InvalidArgument);
    EXPECT_THROW(parse_json("{\"a\": 1} trailing"), InvalidArgument);
    EXPECT_THROW(parse_json("\"unterminated"), InvalidArgument);
    EXPECT_THROW(parse_json("{\"bad\": \"\\ud800\"}"), InvalidArgument);
    EXPECT_THROW(parse_json("nul"), InvalidArgument);
    // Depth bomb must hit the recursion cap, not the stack.
    std::string deep(1000, '[');
    deep += std::string(1000, ']');
    EXPECT_THROW(parse_json(deep), InvalidArgument);
}

TEST(JsonParser, MetricsJsonIsParseable) {
    obs::counter("test.report.counter").add(3);
    obs::gauge("test.report.gauge").set(2.5);
    obs::histogram("test.report.hist").record(5.0);
    const JsonValue v = parse_json(obs::metrics_json());
    ASSERT_TRUE(v.is_object());
    EXPECT_GE(v.at("counters").num_or("test.report.counter", 0), 3.0);
    EXPECT_DOUBLE_EQ(v.at("gauges").num_or("test.report.gauge", 0), 2.5);
    const JsonValue& h = v.at("histograms").at("test.report.hist");
    EXPECT_GE(h.num_or("count", 0), 1.0);
    EXPECT_DOUBLE_EQ(h.num_or("max", 0), 5.0);
}

TEST_F(ReportTest, SolveReportRoundTripsThroughTheParser) {
    obs::set_trace_enabled(true);
    obs::reset_trace();
    { PGSI_TRACE_SCOPE("report_span"); }

    VectorC x;
    solve_test_system(x); // populates a gmres.residual stream

    obs::SolveReportBuilder builder("test_report");
    const char* argv[] = {"test_report", "--flag"};
    builder.set_argv(2, argv);
    builder.add_number("custom", "answer", 42.0);
    builder.add_text("custom", "note", "quote \" backslash \\ done");
    robust::RecoveryReport rr;
    rr.events.push_back({"gmres.stall", "escalated to dense fallback"});
    builder.add_recoveries(rr);

    const std::filesystem::path path =
        std::filesystem::temp_directory_path() / "pgsi_test_report.json";
    builder.write_file(path.string());
    const JsonValue v = parse_json_file(path.string());
    std::filesystem::remove(path);

    EXPECT_EQ(v.str_or("schema", ""), obs::kSolveReportSchema);
    EXPECT_EQ(v.str_or("tool", ""), "test_report");
    EXPECT_GE(v.num_or("wall_seconds", -1), 0.0);
    ASSERT_TRUE(v.at("argv").is_array());
    EXPECT_EQ(v.at("argv").array[1].string, "--flag");
    EXPECT_GE(v.at("environment").num_or("threads", 0), 1.0);
    EXPECT_GE(v.at("resources").num_or("matrix_alloc_count", 0), 1.0);
    ASSERT_TRUE(v.at("pool").at("busy_ns").is_array());

    // The recorded span and stream made it through.
    bool saw_span = false;
    for (const JsonValue& s : v.at("spans").array)
        saw_span = saw_span || s.str_or("path", "") == "report_span";
    EXPECT_TRUE(saw_span);
    const JsonValue& streams = v.at("streams");
    ASSERT_TRUE(streams.is_array());
    bool saw_stream = false;
    for (const JsonValue& s : streams.array)
        if (s.str_or("name", "") == "gmres.residual") {
            saw_stream = true;
            EXPECT_FALSE(s.at("points").array.empty());
        }
    EXPECT_TRUE(saw_stream);

    ASSERT_EQ(v.at("recoveries").array.size(), 1u);
    EXPECT_EQ(v.at("recoveries").array[0].str_or("site", ""), "gmres.stall");
    EXPECT_DOUBLE_EQ(v.at("sections").at("custom").num_or("answer", 0), 42.0);
    EXPECT_EQ(v.at("sections").at("custom").str_or("note", ""),
              "quote \" backslash \\ done");

    // The Markdown renderer consumes the same document.
    const std::string md = obs::render_solve_report_markdown(v);
    EXPECT_NE(md.find("# SolveReport: test_report"), std::string::npos);
    EXPECT_NE(md.find("gmres.residual"), std::string::npos);
    EXPECT_NE(md.find("## Recoveries"), std::string::npos);

    obs::set_trace_enabled(false);
    obs::reset_trace();
}

namespace {

// Synthetic golden/fresh pair shaped like BENCH_scaling.json.
constexpr const char* kGolden = R"({
  "bench": "scaling", "threads": 8,
  "cases": [
    {"n": 6, "nodes": 30, "fill_direct_s": 0.10, "sweep_s": 0.04,
     "cached_rel_err": 1e-12, "gmres_iterations": 100},
    {"n": 10, "nodes": 80, "fill_direct_s": 0.50, "sweep_s": 0.20,
     "cached_rel_err": 1e-12, "gmres_iterations": 300}
  ],
  "resources": {"peak_rss_bytes": 1000000, "matrix_alloc_count": 500}
})";

std::string fresh_with(double fill10, double iters10) {
    char buf[1024];
    std::snprintf(buf, sizeof buf, R"({
  "bench": "scaling", "threads": 8,
  "cases": [
    {"n": 6, "nodes": 30, "fill_direct_s": 0.10, "sweep_s": 0.04,
     "cached_rel_err": 1e-12, "gmres_iterations": 100},
    {"n": 10, "nodes": 80, "fill_direct_s": %.4f, "sweep_s": 0.20,
     "cached_rel_err": 1e-12, "gmres_iterations": %.0f}
  ],
  "resources": {"peak_rss_bytes": 9000000, "matrix_alloc_count": 500}
})",
                  fill10, iters10);
    return buf;
}

} // namespace

TEST(BenchGate, UnchangedRecordPasses) {
    const JsonValue golden = parse_json(kGolden);
    const obs::BenchGateResult r =
        obs::compare_bench(parse_json(fresh_with(0.50, 300)), golden);
    EXPECT_TRUE(r.ok()) << obs::format_bench_gate(r);
    EXPECT_GT(r.compared.size(), 0u);
}

TEST(BenchGate, TwofoldSlowdownFails) {
    const JsonValue golden = parse_json(kGolden);
    const obs::BenchGateResult r =
        obs::compare_bench(parse_json(fresh_with(1.00, 300)), golden);
    EXPECT_FALSE(r.ok());
    ASSERT_EQ(r.regression_count(), 1u);
    EXPECT_EQ(r.compared.front().path, "cases[n=10].fill_direct_s");
    EXPECT_NEAR(r.compared.front().ratio, 2.0, 1e-9);
}

TEST(BenchGate, IterationBlowupFails) {
    const JsonValue golden = parse_json(kGolden);
    const obs::BenchGateResult r =
        obs::compare_bench(parse_json(fresh_with(0.50, 600)), golden);
    EXPECT_FALSE(r.ok());
    ASSERT_EQ(r.regression_count(), 1u);
    EXPECT_EQ(r.compared.front().path, "cases[n=10].gmres_iterations");
}

TEST(BenchGate, ImprovementsAndDescriptorsPass) {
    const JsonValue golden = parse_json(kGolden);
    // Twice as fast, and peak RSS (machine-dependent, skipped) 9x higher.
    const obs::BenchGateResult r =
        obs::compare_bench(parse_json(fresh_with(0.25, 150)), golden);
    EXPECT_TRUE(r.ok()) << obs::format_bench_gate(r);
    bool rss_skipped = false;
    for (const std::string& s : r.skipped)
        rss_skipped = rss_skipped ||
                      s.find("peak_rss_bytes") != std::string::npos;
    EXPECT_TRUE(rss_skipped);
}

TEST(BenchGate, SubsetAndMissingKeysAreSkippedNotFailed) {
    const JsonValue golden = parse_json(kGolden);
    // A smoke run covering only n=6, with one extra key the golden lacks.
    const JsonValue fresh = parse_json(R"({
  "bench": "scaling", "threads": 8,
  "cases": [
    {"n": 6, "nodes": 30, "fill_direct_s": 0.10, "sweep_s": 0.04,
     "cached_rel_err": 1e-12, "gmres_iterations": 100, "new_metric_s": 5.0}
  ]
})");
    const obs::BenchGateResult r = obs::compare_bench(fresh, golden);
    EXPECT_TRUE(r.ok()) << obs::format_bench_gate(r);
    bool saw_new = false, saw_resources = false;
    for (const std::string& s : r.skipped) {
        saw_new = saw_new || s.find("new_metric_s") != std::string::npos;
        saw_resources =
            saw_resources || s.find("resources") != std::string::npos;
    }
    EXPECT_TRUE(saw_new);
    EXPECT_TRUE(saw_resources);
    // But a matched case that regressed still fails, even in a subset run.
    const JsonValue bad = parse_json(R"({
  "cases": [{"n": 6, "fill_direct_s": 0.40}]
})");
    EXPECT_FALSE(obs::compare_bench(bad, golden).ok());
}
