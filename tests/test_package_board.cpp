// Tests for package-pin stamping and the board factories.
#include <gtest/gtest.h>

#include "circuit/ac.hpp"
#include "circuit/mna.hpp"
#include "common/constants.hpp"
#include "si/board.hpp"

using namespace pgsi;

TEST(Package, PinStampTopology) {
    Netlist nl;
    const NodeId board = nl.node("board");
    nl.add_vsource("V1", board, nl.ground(), Source::dc(3.3));
    const PackagePin pin{5e-9, 0.1, 1e-12};
    const NodeId die = stamp_package_pin(nl, "p1", board, nl.ground(), pin);
    nl.add_resistor("Rload", die, nl.ground(), 100.0);
    const DcSolution s = dc_operating_point(nl);
    // DC: only the 0.1 Ω pin resistance matters.
    EXPECT_NEAR(s.v(die), 3.3 * 100.0 / 100.1, 1e-6);
}

TEST(Package, PinInductanceIsolatesAtHighFrequency) {
    Netlist nl;
    const NodeId board = nl.node("board");
    nl.add_vsource("V1", board, nl.ground(), Source::dc(0.0).set_ac(1.0));
    const NodeId die =
        stamp_package_pin(nl, "p1", board, nl.ground(), packages::dip);
    nl.add_resistor("Rload", die, nl.ground(), 50.0);
    const AcSolution lo = ac_analyze(nl, 1e6);
    const AcSolution hi = ac_analyze(nl, 3e9);
    EXPECT_GT(std::abs(lo.v(die)), 0.95);
    EXPECT_LT(std::abs(hi.v(die)), 0.5);
}

TEST(Package, FamiliesOrdered) {
    EXPECT_GT(packages::dip.l, packages::pqfp.l);
    EXPECT_GT(packages::pqfp.l, packages::bga.l);
}

TEST(Board, SsnEvalBoardMatchesPaper) {
    const Board b = make_ssn_eval_board(7);
    EXPECT_NEAR(b.width(), 7 * units::inch, 1e-12);
    EXPECT_NEAR(b.height(), 10 * units::inch, 1e-12);
    EXPECT_NEAR(b.stackup().plane_separation, 30 * units::mil, 1e-12);
    ASSERT_EQ(b.driver_sites().size(), 16u);
    // Exactly 7 drivers have a switching (non-DC) input.
    int switching = 0;
    for (const DriverSite& s : b.driver_sites())
        if (s.driver.input.value(2e-9) > 0.1) ++switching;
    EXPECT_EQ(switching, 7);
}

TEST(Board, SsnEvalBoardBounds) {
    EXPECT_THROW(make_ssn_eval_board(17), InvalidArgument);
    EXPECT_NO_THROW(make_ssn_eval_board(0));
}

TEST(Board, PostlayoutBoardPinBudget) {
    const Board b = make_postlayout_board(7);
    EXPECT_EQ(b.driver_sites().size(), 55u); // 55 Vcc pins
    EXPECT_EQ(b.gnd_stitches().size(), 25u); // + 55 site Gnd pins = 80 Gnd
    EXPECT_NEAR(b.stackup().plane_separation, 10 * units::mil, 1e-12);
    EXPECT_FALSE(b.decaps().empty());
    // Pins stay on the board.
    for (const DriverSite& s : b.driver_sites()) {
        EXPECT_GT(s.vcc_pin.x, 0.0);
        EXPECT_LT(s.vcc_pin.x, b.width());
        EXPECT_GT(s.gnd_pin.y, 0.0);
        EXPECT_LT(s.gnd_pin.y, b.height());
    }
}

TEST(Board, PostlayoutBoardIsDeterministic) {
    const Board a = make_postlayout_board(42);
    const Board b = make_postlayout_board(42);
    ASSERT_EQ(a.driver_sites().size(), b.driver_sites().size());
    for (std::size_t i = 0; i < a.driver_sites().size(); ++i) {
        EXPECT_DOUBLE_EQ(a.driver_sites()[i].vcc_pin.x,
                         b.driver_sites()[i].vcc_pin.x);
        EXPECT_DOUBLE_EQ(a.driver_sites()[i].load_c, b.driver_sites()[i].load_c);
    }
}

TEST(Board, RejectsBadConstruction) {
    BoardStackup st;
    st.plane_separation = 0;
    EXPECT_THROW(Board(0.1, 0.1, st), InvalidArgument);
    st.plane_separation = 1e-3;
    EXPECT_THROW(Board(-0.1, 0.1, st), InvalidArgument);
}
