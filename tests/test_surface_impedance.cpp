// Tests for the conductor surface-impedance model.
#include <gtest/gtest.h>

#include <cmath>

#include "common/constants.hpp"
#include "em/surface_impedance.hpp"

using namespace pgsi;

TEST(SurfaceImpedance, DefaultIsLossless) {
    const SurfaceImpedance z;
    EXPECT_TRUE(z.lossless());
    EXPECT_DOUBLE_EQ(z.dc(), 0.0);
    EXPECT_DOUBLE_EQ(z.at(1e9).real(), 0.0);
}

TEST(SurfaceImpedance, SheetResistanceIsFlat) {
    const SurfaceImpedance z = SurfaceImpedance::from_sheet_resistance(6e-3);
    EXPECT_DOUBLE_EQ(z.dc(), 6e-3);
    EXPECT_DOUBLE_EQ(z.at(2 * pi * 1e9).real(), 6e-3);
    EXPECT_DOUBLE_EQ(z.at(2 * pi * 1e9).imag(), 0.0);
}

TEST(SurfaceImpedance, ConductorDcLimit) {
    // 35 µm copper: Rdc = 1/(σt) ≈ 0.49 mΩ/sq.
    const double sigma = 5.8e7, t = 35e-6;
    const SurfaceImpedance z = SurfaceImpedance::from_conductor(sigma, t);
    EXPECT_NEAR(z.dc(), 1.0 / (sigma * t), 1e-15);
    const Complex lo = z.at(2 * pi * 1e3); // δ ≈ 2 mm >> t
    EXPECT_NEAR(lo.real(), z.dc(), 0.01 * z.dc());
    EXPECT_LT(std::abs(lo.imag()), 0.2 * z.dc());
}

TEST(SurfaceImpedance, SkinEffectLimit) {
    const double sigma = 5.8e7, t = 35e-6;
    const SurfaceImpedance z = SurfaceImpedance::from_conductor(sigma, t);
    const double f = 10e9; // δ ≈ 0.66 µm << t
    const double delta = std::sqrt(2.0 / (2 * pi * f * mu0 * sigma));
    const Complex hi = z.at(2 * pi * f);
    EXPECT_NEAR(hi.real(), 1.0 / (sigma * delta), 0.02 / (sigma * delta));
    EXPECT_NEAR(hi.imag(), hi.real(), 0.02 * hi.real()); // 45° phase
}

TEST(SurfaceImpedance, MonotoneRealPart) {
    const SurfaceImpedance z = SurfaceImpedance::from_conductor(5.8e7, 35e-6);
    double prev = z.at(2 * pi * 1e5).real();
    for (double f = 1e6; f <= 1e10; f *= 10) {
        const double cur = z.at(2 * pi * f).real();
        EXPECT_GE(cur, prev * 0.999);
        prev = cur;
    }
}

TEST(SurfaceImpedance, RejectsBadInputs) {
    EXPECT_THROW(SurfaceImpedance::from_sheet_resistance(-1.0), InvalidArgument);
    EXPECT_THROW(SurfaceImpedance::from_conductor(0.0, 1e-6), InvalidArgument);
    EXPECT_THROW(SurfaceImpedance::from_conductor(1e7, 0.0), InvalidArgument);
}
