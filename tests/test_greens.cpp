// Tests for the quasi-static layered Green's functions: limiting cases of
// the slab image series, image signs, and basic symmetry.
#include <gtest/gtest.h>

#include <cmath>

#include "common/constants.hpp"
#include "em/greens.hpp"

using namespace pgsi;

namespace {
const Rect kCell{0, 1e-3, 0, 1e-3};
} // namespace

TEST(Greens, HomogeneousNoReferenceIsCoulomb) {
    const Greens g = Greens::homogeneous(1.0, false);
    const Point2 far{0.05, 0.0};
    const double v = g.phi_integral(far, 0.0, kCell, 0.0);
    const double expect = kCell.area() / (4.0 * pi * eps0 * 0.0505); // ~ center dist
    EXPECT_NEAR(v, expect, 0.05 * expect);
    EXPECT_FALSE(g.has_reference());
}

TEST(Greens, DielectricScalesPotentialDown) {
    const Greens g1 = Greens::homogeneous(1.0, false);
    const Greens g4 = Greens::homogeneous(4.0, false);
    const Point2 p{0.01, 0.0};
    EXPECT_NEAR(g1.phi_integral(p, 0, kCell, 0),
                4.0 * g4.phi_integral(p, 0, kCell, 0), 1e-12);
}

TEST(Greens, PecReferenceReducesPotential) {
    const Greens free = Greens::homogeneous(1.0, false);
    const Greens img = Greens::homogeneous(1.0, true);
    const Point2 p{0.01, 0.0};
    const double h = 0.5e-3;
    const double v_free = free.phi_integral(p, h, kCell, h);
    const double v_img = img.phi_integral(p, h, kCell, h);
    EXPECT_LT(v_img, v_free);
    EXPECT_GT(v_img, 0.0);
    // Image term equals a negative source at depth 2h.
    const double expected = v_free - free.phi_integral(p, h, kCell, -h);
    EXPECT_NEAR(v_img, expected, 1e-9 * v_free);
}

TEST(Greens, SlabWithEps1EqualsGroundImage) {
    // εr = 1 slab reduces to charge over a bare ground plane.
    const double h = 1e-3;
    const Greens slab = Greens::grounded_slab(1.0, h);
    const Greens img = Greens::homogeneous(1.0, true);
    const Point2 p{0.004, 0.002};
    const double vs = slab.phi_integral(p, h, kCell, h);
    const double vi = img.phi_integral(p, h, kCell, h);
    EXPECT_NEAR(vs, vi, 1e-9 * vi);
}

TEST(Greens, SlabHighEpsKillsPotential) {
    const double h = 1e-3;
    const Point2 p{0.01, 0.0};
    const double v_low = Greens::grounded_slab(2.0, h).phi_integral(p, h, kCell, h);
    const double v_high =
        Greens::grounded_slab(500.0, h, 2000, 1e-10).phi_integral(p, h, kCell, h);
    EXPECT_LT(v_high, 0.05 * v_low);
}

TEST(Greens, SlabSeriesConverged) {
    // Doubling the image budget should not move the result.
    const double h = 0.5e-3;
    const Point2 p{0.003, 0.001};
    const double a = Greens::grounded_slab(9.6, h, 64, 1e-7)
                         .phi_integral(p, h, kCell, h);
    const double b = Greens::grounded_slab(9.6, h, 256, 1e-12)
                         .phi_integral(p, h, kCell, h);
    EXPECT_NEAR(a, b, 1e-5 * std::abs(b));
}

TEST(Greens, VectorPotentialIgnoresDielectric) {
    const double h = 1e-3;
    const Point2 p{0.005, 0.0};
    const double a1 = Greens::grounded_slab(1.0, h).a_integral(p, h, kCell, h);
    const double a96 = Greens::grounded_slab(9.6, h).a_integral(p, h, kCell, h);
    EXPECT_NEAR(a1, a96, 1e-12);
}

TEST(Greens, VectorPotentialImageReduces) {
    const double h = 1e-3;
    const Point2 p{0.005, 0.0};
    const Greens withimg = Greens::homogeneous(1.0, true);
    const Greens noimg = Greens::homogeneous(1.0, false);
    EXPECT_LT(withimg.a_integral(p, h, kCell, h), noimg.a_integral(p, h, kCell, h));
}

TEST(Greens, Phi2dDecaysWithDistance) {
    const Greens g = Greens::grounded_slab(4.5, 1e-3);
    const double v1 = g.phi_2d(1e-3, 0, 0);
    const double v2 = g.phi_2d(1e-2, 0, 0);
    EXPECT_GT(v1, v2); // closer line charge -> higher potential
}

TEST(Greens, RejectsBadInputs) {
    EXPECT_THROW(Greens::homogeneous(0.5, false), InvalidArgument);
    EXPECT_THROW(Greens::grounded_slab(4.5, -1e-3), InvalidArgument);
}
