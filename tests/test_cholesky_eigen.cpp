// Tests for Cholesky factorization and the Jacobi symmetric eigensolver.
#include <gtest/gtest.h>

#include <random>

#include "numeric/cholesky.hpp"
#include "numeric/eigen.hpp"
#include "numeric/lu.hpp"

using namespace pgsi;

namespace {

MatrixD random_spd(int n, unsigned seed) {
    std::mt19937 rng(seed);
    std::uniform_real_distribution<double> u(-1.0, 1.0);
    MatrixD b(n, n);
    for (int i = 0; i < n; ++i)
        for (int j = 0; j < n; ++j) b(i, j) = u(rng);
    MatrixD a = b * b.transposed();
    for (int i = 0; i < n; ++i) a(i, i) += 0.5;
    return a;
}

} // namespace

TEST(Cholesky, SolveMatchesLu) {
    const MatrixD a = random_spd(6, 7);
    VectorD b(6);
    for (int i = 0; i < 6; ++i) b[i] = i + 1;
    const VectorD xc = Cholesky(a).solve(b);
    const VectorD xl = Lu<double>(a).solve(b);
    for (int i = 0; i < 6; ++i) EXPECT_NEAR(xc[i], xl[i], 1e-10);
}

TEST(Cholesky, RejectsIndefinite) {
    const MatrixD a{{1, 2}, {2, 1}}; // eigenvalues 3, -1
    EXPECT_THROW((Cholesky{a}), NumericalError);
    EXPECT_FALSE(is_spd(a));
    EXPECT_TRUE(is_spd(random_spd(4, 3)));
}

TEST(Cholesky, FactorReconstructs) {
    const MatrixD a = random_spd(5, 11);
    const MatrixD g = Cholesky(a).factor();
    const MatrixD r = g * g.transposed();
    for (int i = 0; i < 5; ++i)
        for (int j = 0; j < 5; ++j) EXPECT_NEAR(r(i, j), a(i, j), 1e-10);
}

TEST(EigenSymmetric, Diagonal) {
    const MatrixD a{{3, 0}, {0, 1}};
    const SymmetricEigen e = eigen_symmetric(a);
    EXPECT_NEAR(e.values[0], 1.0, 1e-12);
    EXPECT_NEAR(e.values[1], 3.0, 1e-12);
}

TEST(EigenSymmetric, Known2x2) {
    const MatrixD a{{2, 1}, {1, 2}};
    const SymmetricEigen e = eigen_symmetric(a);
    EXPECT_NEAR(e.values[0], 1.0, 1e-10);
    EXPECT_NEAR(e.values[1], 3.0, 1e-10);
}

TEST(EigenSymmetric, RejectsAsymmetric) {
    const MatrixD a{{1, 2}, {0, 1}};
    EXPECT_THROW(eigen_symmetric(a), InvalidArgument);
}

class EigenProperty : public ::testing::TestWithParam<int> {};

TEST_P(EigenProperty, ReconstructsMatrix) {
    const int n = GetParam();
    const MatrixD a = random_spd(n, 100 + n);
    const SymmetricEigen e = eigen_symmetric(a);
    // A = V diag(w) V^T
    MatrixD d(n, n);
    for (int i = 0; i < n; ++i) d(i, i) = e.values[i];
    const MatrixD r = e.vectors * d * e.vectors.transposed();
    for (int i = 0; i < n; ++i)
        for (int j = 0; j < n; ++j) EXPECT_NEAR(r(i, j), a(i, j), 1e-8);
    // Eigenvalues of an SPD matrix are positive and sorted.
    for (int i = 0; i < n; ++i) EXPECT_GT(e.values[i], 0.0);
    for (int i = 1; i < n; ++i) EXPECT_LE(e.values[i - 1], e.values[i]);
}

INSTANTIATE_TEST_SUITE_P(Sizes, EigenProperty, ::testing::Values(2, 3, 4, 6, 10, 16));

TEST(EigenSpdProduct, DiagonalizesLC) {
    const MatrixD l = random_spd(3, 21);
    const MatrixD c = random_spd(3, 22);
    const ProductEigen pe = eigen_spd_product(l, c);
    // (L C) t_k = w_k t_k for each column.
    const MatrixD lc = l * c;
    for (int k = 0; k < 3; ++k) {
        VectorD t(3);
        for (int i = 0; i < 3; ++i) t[i] = pe.t(i, k);
        const VectorD lct = lc * t;
        for (int i = 0; i < 3; ++i)
            EXPECT_NEAR(lct[i], pe.values[k] * t[i], 1e-8 * (1.0 + pe.values[k]));
    }
}

// --- Blocked factorization / multi-RHS paths --------------------------------

TEST(Cholesky, BlockedFactorReconstructsAcrossBlockBoundary) {
    // n = 150 crosses the 64-column factorization block.
    const int n = 150;
    const MatrixD a = random_spd(n, 51);
    const MatrixD g = Cholesky(a).factor();
    const MatrixD r = g * g.transposed();
    double worst = 0;
    for (int i = 0; i < n; ++i)
        for (int j = 0; j < n; ++j)
            worst = std::max(worst, std::abs(r(i, j) - a(i, j)));
    EXPECT_LT(worst, 1e-9 * a.max_abs());
}

TEST(Cholesky, MatrixSolveMatchesColumnwiseVectorSolves) {
    const int n = 130, k = 70; // k crosses the substitution block
    const MatrixD a = random_spd(n, 61);
    std::mt19937 rng(62);
    std::uniform_real_distribution<double> u(-1.0, 1.0);
    MatrixD b(n, k);
    for (int i = 0; i < n; ++i)
        for (int j = 0; j < k; ++j) b(i, j) = u(rng);
    const Cholesky chol(a);
    const MatrixD x = chol.solve(b);
    for (int j = 0; j < k; j += 17) {
        VectorD col(n);
        for (int i = 0; i < n; ++i) col[i] = b(i, j);
        const VectorD xj = chol.solve(col);
        for (int i = 0; i < n; ++i)
            EXPECT_NEAR(x(i, j), xj[i], 1e-9) << "col=" << j;
    }
}
