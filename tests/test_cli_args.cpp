// Tests for the CLI argument helper shared by the pgsi tools.
#include <gtest/gtest.h>

#include "tools/cli_common.hpp"

using namespace pgsi;

namespace {

cli::Args make(std::vector<std::string> argv,
               const std::vector<std::string>& known) {
    std::vector<char*> ptrs;
    ptrs.push_back(const_cast<char*>("tool"));
    for (auto& a : argv) ptrs.push_back(a.data());
    return cli::Args(static_cast<int>(ptrs.size()), ptrs.data(), known);
}

} // namespace

TEST(CliArgs, PositionalAndOptions) {
    const cli::Args a =
        make({"board.txt", "--pitch", "10m", "--flag"}, {"pitch", "flag"});
    ASSERT_EQ(a.positional().size(), 1u);
    EXPECT_EQ(a.positional()[0], "board.txt");
    EXPECT_TRUE(a.has("pitch"));
    EXPECT_DOUBLE_EQ(a.num("pitch", 0.0), 10e-3);
    EXPECT_TRUE(a.has("flag"));
    EXPECT_EQ(a.str("flag", "x"), "");
}

TEST(CliArgs, Defaults) {
    const cli::Args a = make({}, {"pitch"});
    EXPECT_FALSE(a.has("pitch"));
    EXPECT_DOUBLE_EQ(a.num("pitch", 2.5), 2.5);
    EXPECT_EQ(a.str("pitch", "d"), "d");
}

TEST(CliArgs, RejectsUnknownOption) {
    EXPECT_THROW(make({"--bogus", "1"}, {"pitch"}), InvalidArgument);
}

TEST(CliArgs, SpiceSuffixValues) {
    const cli::Args a = make({"--dt", "25p", "--f", "3meg"}, {"dt", "f"});
    EXPECT_DOUBLE_EQ(a.num("dt", 0), 25e-12);
    EXPECT_DOUBLE_EQ(a.num("f", 0), 3e6);
}
