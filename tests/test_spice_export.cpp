// Tests for the SPICE subckt exporter (round trip through our own parser).
#include <gtest/gtest.h>

#include <sstream>

#include "extract/spice_export.hpp"

using namespace pgsi;

namespace {

EquivalentCircuit tiny_circuit() {
    EquivalentCircuit ec;
    ec.node_position = {{0, 0}, {1e-2, 0}};
    ec.node_z = {0, 0};
    ec.node_cap = {10e-12, 12e-12};
    RlcBranch b;
    b.m = 0;
    b.n = 1;
    b.r = 0.01;
    b.l = 2e-9;
    b.c = 1e-12;
    ec.branches.push_back(b);
    return ec;
}

} // namespace

TEST(SpiceExport, EmitsSubcktStructure) {
    const std::string s = spice_subckt_string(tiny_circuit(), "pgplane");
    EXPECT_NE(s.find(".SUBCKT pgplane n0 n1 ref"), std::string::npos);
    EXPECT_NE(s.find(".ENDS pgplane"), std::string::npos);
    EXPECT_NE(s.find("C0_1 n0 n1"), std::string::npos);
    EXPECT_NE(s.find("R0_1 n0 mid0"), std::string::npos);
    EXPECT_NE(s.find("L0_1 mid0 n1"), std::string::npos);
    EXPECT_NE(s.find("Cg0 n0 ref"), std::string::npos);
    EXPECT_NE(s.find("Cg1 n1 ref"), std::string::npos);
}

TEST(SpiceExport, PureInductorBranch) {
    EquivalentCircuit ec = tiny_circuit();
    ec.branches[0].r = 0;
    const std::string s = spice_subckt_string(ec, "x");
    EXPECT_NE(s.find("L0_1 n0 n1"), std::string::npos);
    EXPECT_EQ(s.find("R0_1"), std::string::npos);
}

TEST(SpiceExport, ValuesSurviveFullPrecision) {
    const std::string s = spice_subckt_string(tiny_circuit(), "x");
    EXPECT_NE(s.find("2e-09"), std::string::npos);  // inductance
    EXPECT_NE(s.find("0.01"), std::string::npos);   // resistance
}

TEST(SpiceExport, StreamOverload) {
    std::ostringstream os;
    write_spice_subckt(os, tiny_circuit(), "y");
    EXPECT_FALSE(os.str().empty());
}
