// Tests for the decap placement optimizer and the PDN impedance profile.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "circuit/ac.hpp"
#include "common/constants.hpp"
#include "si/decap_opt.hpp"

using namespace pgsi;

namespace {

// Two switching drivers clustered at the right side; candidate decaps: one
// next to the chip, one at the far corner, one mid-board.
Board opt_board() {
    BoardStackup st;
    st.plane_separation = 0.5e-3;
    st.eps_r = 4.5;
    st.sheet_resistance = 0.6e-3;
    Board b(0.09, 0.06, st, 3.3);
    b.set_vrm_location({0.008, 0.008});
    for (int d = 0; d < 2; ++d) {
        DriverSite s;
        s.name = "d" + std::to_string(d);
        s.vcc_pin = {0.07 + 0.006 * d, 0.04};
        s.gnd_pin = {0.07 + 0.006 * d, 0.03};
        s.load_c = 25e-12;
        s.driver.input = Source::pulse(0, 1, 0.4e-9, 0.6e-9, 0.6e-9, 4e-9);
        b.add_driver_site(s);
    }
    Decap proto;
    proto.c = 100e-9;
    proto.esr = 25e-3;
    proto.esl = 0.8e-9;
    Decap near = proto;
    near.pos = {0.075, 0.035};     // candidate 0: next to the chip
    Decap far = proto;
    far.pos = {0.01, 0.05};        // candidate 1: far corner
    Decap mid = proto;
    mid.pos = {0.045, 0.03};       // candidate 2: mid board
    b.add_decap(near);
    b.add_decap(far);
    b.add_decap(mid);
    return b;
}

SsnModelOptions fast_options() {
    SsnModelOptions o;
    o.mesh_pitch = 9e-3;
    o.interior_nodes = 6;
    o.prune_rel_tol = 0.03;
    return o;
}

} // namespace

TEST(DecapOpt, PicksNearChipFirstAndReducesNoise) {
    auto plane = std::make_shared<PlaneModel>(opt_board(), fast_options());
    const DecapPlacementResult res =
        optimize_decap_placement(plane, 3, 25e-12, 5e-9);
    ASSERT_FALSE(res.picks.empty());
    // The near-chip candidate is the most effective single decap.
    EXPECT_EQ(res.picks.front().candidate, 0u);
    // Every pick improves monotonically on the baseline.
    double prev = res.baseline_noise;
    for (const DecapPick& p : res.picks) {
        EXPECT_LT(p.noise_after, prev);
        prev = p.noise_after;
    }
}

TEST(DecapOpt, StopsWhenNoCandidateHelps) {
    auto plane = std::make_shared<PlaneModel>(opt_board(), fast_options());
    // Huge min_gain: nothing can improve the objective by 90% in one pick.
    const DecapPlacementResult res =
        optimize_decap_placement(plane, 3, 25e-12, 5e-9,
                                 DecapObjective::PlaneNoise, 0.9);
    EXPECT_TRUE(res.picks.empty());
}

TEST(DecapOpt, SubsetModelMatchesPrefixModel) {
    auto plane = std::make_shared<PlaneModel>(opt_board(), fast_options());
    const SsnModel by_count(plane, std::size_t{2});
    const SsnModel by_subset(plane, std::vector<std::size_t>{0, 1});
    // Identical element counts imply identical populations.
    EXPECT_EQ(by_count.netlist().capacitors().size(),
              by_subset.netlist().capacitors().size());
    EXPECT_EQ(by_count.netlist().inductors().size(),
              by_subset.netlist().inductors().size());
}

TEST(DecapOpt, PdnProfileShapes) {
    auto plane = std::make_shared<PlaneModel>(opt_board(), fast_options());
    const VectorD freqs = log_space(1e6, 2e9, 6);
    const SsnModel bare(plane, std::size_t{0});
    const SsnModel with(plane, std::vector<std::size_t>{0});
    const VectorD z_bare = pdn_impedance_profile(bare, 0, freqs);
    const VectorD z_with = pdn_impedance_profile(with, 0, freqs);
    ASSERT_EQ(z_bare.size(), freqs.size());
    // Low frequency: regulator holds the rail — low impedance either way.
    EXPECT_LT(z_bare.front(), 1.0);
    // The decap lowers the impedance in the mid band (10-100 MHz region).
    double improved = 0;
    for (std::size_t i = 0; i < freqs.size(); ++i)
        if (freqs[i] > 5e6 && freqs[i] < 3e8)
            improved = std::max(improved, z_bare[i] / z_with[i]);
    EXPECT_GT(improved, 1.3);
}

TEST(DecapOpt, RequiresCandidates) {
    BoardStackup st;
    st.plane_separation = 0.5e-3;
    Board b(0.05, 0.05, st, 3.3);
    DriverSite s;
    s.name = "d";
    s.vcc_pin = {0.03, 0.03};
    s.gnd_pin = {0.03, 0.02};
    b.add_driver_site(s);
    auto plane = std::make_shared<PlaneModel>(b, fast_options());
    EXPECT_THROW(optimize_decap_placement(plane, 1, 25e-12, 2e-9),
                 InvalidArgument);
}
