// pgsi::robust — numerical-health guards, recovery policies, and
// deterministic fault injection across the solve pipeline.
//
// The acceptance tests inject faults at the compiled-in sites and assert
// that each recovery ladder rescues the run (matching an un-faulted golden
// result), that Strict reproduces the historical throws, and that every
// recovery is visible in the RecoveryReport and the pgsi::obs counters.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <random>

#include "circuit/mna.hpp"
#include "circuit/transient.hpp"
#include "common/error.hpp"
#include "common/robust.hpp"
#include "em/iterative_solver.hpp"
#include "em/solver.hpp"
#include "numeric/cholesky.hpp"
#include "numeric/lu.hpp"
#include "obs/metrics.hpp"
#include "si/cosim.hpp"
#include "si/ssn.hpp"

using namespace pgsi;

// --- PGSI_FAULT environment grammar ----------------------------------------
// Declared first: the environment is parsed once, at the first fault-site
// query in the process, so this must run before any other test arms a site
// when the whole binary runs in one process. (Under ctest each test is its
// own process and the ordering constraint is moot.)

TEST(RobustEnv, FaultGrammarParsesSiteNthCountLists) {
    ::setenv("PGSI_FAULT",
             "lu.pivot:2,gmres.stall:1:0,serve.job:2:2,serve.deadline:1,"
             "cache.evict:1:0,bogus,alsobad:",
             1);
    // lu.pivot fires on exactly the 2nd call.
    EXPECT_FALSE(robust::FaultInjector::should_fire("lu.pivot"));
    EXPECT_TRUE(robust::FaultInjector::should_fire("lu.pivot"));
    EXPECT_FALSE(robust::FaultInjector::should_fire("lu.pivot"));
    // gmres.stall: count 0 = every call from the 1st on.
    EXPECT_TRUE(robust::FaultInjector::should_fire("gmres.stall"));
    EXPECT_TRUE(robust::FaultInjector::should_fire("gmres.stall"));
    // Batch-engine sites use the same grammar: serve.job fires on calls 2-3
    // (nth=2, count=2)...
    EXPECT_FALSE(robust::FaultInjector::should_fire("serve.job"));
    EXPECT_TRUE(robust::FaultInjector::should_fire("serve.job"));
    EXPECT_TRUE(robust::FaultInjector::should_fire("serve.job"));
    EXPECT_FALSE(robust::FaultInjector::should_fire("serve.job"));
    // ...serve.deadline defaults count to 1 (first call only)...
    EXPECT_TRUE(robust::FaultInjector::should_fire("serve.deadline"));
    EXPECT_FALSE(robust::FaultInjector::should_fire("serve.deadline"));
    // ...and cache.evict with count=0 fires on every call.
    EXPECT_TRUE(robust::FaultInjector::should_fire("cache.evict"));
    EXPECT_TRUE(robust::FaultInjector::should_fire("cache.evict"));
    EXPECT_TRUE(robust::FaultInjector::should_fire("cache.evict"));
    // Malformed entries are ignored, never armed.
    EXPECT_FALSE(robust::FaultInjector::should_fire("bogus"));
    EXPECT_EQ(robust::FaultInjector::fire_count("lu.pivot"), 1u);
    EXPECT_EQ(robust::FaultInjector::fire_count("gmres.stall"), 2u);
    EXPECT_EQ(robust::FaultInjector::fire_count("serve.job"), 2u);
    EXPECT_EQ(robust::FaultInjector::fire_count("serve.deadline"), 1u);
    EXPECT_EQ(robust::FaultInjector::fire_count("cache.evict"), 3u);
    robust::FaultInjector::disarm_all();
    ::unsetenv("PGSI_FAULT");
    EXPECT_FALSE(robust::FaultInjector::should_fire("gmres.stall"));
}

// --- fault injector semantics ----------------------------------------------

class Robust : public ::testing::Test {
protected:
    void TearDown() override { robust::FaultInjector::disarm_all(); }
};

TEST_F(Robust, InjectorFiresNthThroughNthPlusCount) {
    robust::FaultInjector::arm("unit.site", 3, 2);
    EXPECT_FALSE(robust::FaultInjector::should_fire("unit.site")); // call 1
    EXPECT_FALSE(robust::FaultInjector::should_fire("unit.site")); // call 2
    EXPECT_TRUE(robust::FaultInjector::should_fire("unit.site"));  // call 3
    EXPECT_TRUE(robust::FaultInjector::should_fire("unit.site"));  // call 4
    EXPECT_FALSE(robust::FaultInjector::should_fire("unit.site")); // call 5
    EXPECT_EQ(robust::FaultInjector::fire_count("unit.site"), 2u);
    // Unarmed sites never fire.
    EXPECT_FALSE(robust::FaultInjector::should_fire("other.site"));
    // Re-arming resets the call count.
    robust::FaultInjector::arm("unit.site", 1);
    EXPECT_TRUE(robust::FaultInjector::should_fire("unit.site"));
    EXPECT_FALSE(robust::FaultInjector::should_fire("unit.site"));
}

TEST_F(Robust, InjectorCountZeroFiresForever) {
    robust::FaultInjector::arm("unit.site", 2, 0);
    EXPECT_FALSE(robust::FaultInjector::should_fire("unit.site"));
    for (int i = 0; i < 10; ++i)
        EXPECT_TRUE(robust::FaultInjector::should_fire("unit.site"));
    robust::FaultInjector::disarm_all();
    EXPECT_FALSE(robust::FaultInjector::should_fire("unit.site"));
    EXPECT_EQ(robust::FaultInjector::fire_count("unit.site"), 0u);
}

TEST_F(Robust, InjectedLuPivotFailureThrowsNamedError) {
    robust::FaultInjector::arm("lu.pivot", 1);
    MatrixD a(2, 2);
    a(0, 0) = a(1, 1) = 1.0;
    try {
        const Lu<double> lu(a);
        FAIL() << "expected injected pivot failure";
    } catch (const NumericalError& e) {
        EXPECT_NE(std::string(e.what()).find("lu.pivot"), std::string::npos);
    }
    EXPECT_EQ(robust::FaultInjector::fire_count("lu.pivot"), 1u);
    // Disarmed after count exhausted: the same factorization now succeeds.
    const Lu<double> lu(a);
    VectorD x = lu.solve(VectorD{1.0, 2.0});
    EXPECT_NEAR(x[0], 1.0, 1e-15);
}

// --- report / guard plumbing -------------------------------------------------

TEST_F(Robust, RecoveryReportCountsMergesAndSummarizes) {
    robust::RecoveryReport a, b;
    robust::note_recovery(&a, "dcop.gmin", "first");
    robust::note_recovery(&b, "dcop.gmin", "second");
    robust::note_recovery(&b, "transient.timestep_cut", "third");
    EXPECT_TRUE(a.any());
    a.merge(b);
    EXPECT_EQ(a.events.size(), 3u);
    EXPECT_EQ(a.count("dcop.gmin"), 2u);
    EXPECT_EQ(a.count("transient.timestep_cut"), 1u);
    EXPECT_EQ(a.count("nothing"), 0u);
    const std::string s = a.summary();
    EXPECT_NE(s.find("dcop.gmin: first"), std::string::npos);
    EXPECT_NE(s.find("transient.timestep_cut: third"), std::string::npos);
}

TEST_F(Robust, NoteRecoveryTicksObsCounters) {
    obs::Counter& total = obs::counter("robust.recoveries");
    obs::Counter& site = obs::counter("robust.test.site");
    const std::uint64_t t0 = total.value(), s0 = site.value();
    robust::note_recovery(nullptr, "test.site", "detail");
    EXPECT_EQ(total.value(), t0 + 1);
    EXPECT_EQ(site.value(), s0 + 1);
}

TEST_F(Robust, FiniteGuards) {
    const double inf = std::numeric_limits<double>::infinity();
    EXPECT_TRUE(robust::is_finite(1.0));
    EXPECT_FALSE(robust::is_finite(std::nan("")));
    EXPECT_FALSE(robust::is_finite(Complex(0.0, inf)));
    EXPECT_TRUE(robust::all_finite(VectorD{1.0, 2.0}));
    EXPECT_FALSE(robust::all_finite(VectorC{Complex(1, 0), Complex(inf, 0)}));
    EXPECT_NO_THROW(robust::require_finite(VectorD{0.0, 1.0}, "stage"));
    obs::Counter& detected = obs::counter("robust.nonfinite_detected");
    const std::uint64_t d0 = detected.value();
    try {
        robust::require_finite(VectorD{0.0, std::nan("")}, "unit stage");
        FAIL() << "expected NumericalError";
    } catch (const NumericalError& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("unit stage"), std::string::npos);
        EXPECT_NE(msg.find("index 1"), std::string::npos);
    }
    EXPECT_EQ(detected.value(), d0 + 1);
}

// --- condition estimation ----------------------------------------------------

TEST_F(Robust, LuConditionEstimateTracksDiagonalSpread) {
    // diag(1, 1e-8): kappa_1 = 1e8 exactly; the Hager estimator is exact on
    // diagonal matrices.
    MatrixD a(2, 2);
    a(0, 0) = 1.0;
    a(1, 1) = 1e-8;
    const Lu<double> lu(a);
    EXPECT_NEAR(lu.condition_estimate(), 1e8, 1e8 * 1e-10);

    MatrixC ic(3, 3);
    for (std::size_t i = 0; i < 3; ++i) ic(i, i) = Complex(1.0, 0.0);
    const Lu<Complex> luc(ic);
    EXPECT_LT(luc.condition_estimate(), 10.0);
}

TEST_F(Robust, CholeskyConditionEstimateTracksDiagonalSpread) {
    MatrixD a(2, 2);
    a(0, 0) = 1.0;
    a(1, 1) = 1e-8;
    const Cholesky chol(a);
    EXPECT_NEAR(chol.condition_estimate(), 1e8, 1e8 * 1e-10);
}

TEST_F(Robust, CheckConditionWarnsAboveThreshold) {
    robust::RecoveryOptions opt;
    opt.condition_warn_threshold = 1e6;
    robust::RecoveryReport report;
    obs::Counter& warnings = obs::counter("robust.condition_warnings");
    const std::uint64_t w0 = warnings.value();
    EXPECT_FALSE(robust::check_condition(1e3, "benign", opt, &report));
    EXPECT_FALSE(report.any());
    EXPECT_TRUE(robust::check_condition(1e9, "test matrix", opt, &report));
    EXPECT_EQ(report.count("condition_warning"), 1u);
    EXPECT_EQ(warnings.value(), w0 + 1);
    // Threshold 0 disables the check entirely.
    opt.condition_warn_threshold = 0;
    EXPECT_FALSE(robust::check_condition(1e30, "disabled", opt, &report));
}

// --- transient: injected Newton divergence recovers by timestep cut ----------

namespace {

Netlist rc_fixture() {
    Netlist nl;
    const NodeId in = nl.node("in");
    const NodeId out = nl.node("out");
    nl.add_vsource("V1", in, nl.ground(), Source::dc(1.0));
    nl.add_resistor("R1", in, out, 1e3);
    nl.add_capacitor("C1", out, nl.ground(), 1e-9);
    return nl;
}

} // namespace

TEST_F(Robust, InjectedNewtonDivergenceRecoversByTimestepCut) {
    const Netlist nl = rc_fixture();
    const double tau = 1e-6;
    TransientOptions opt;
    opt.dt = tau;
    opt.tstop = 60 * tau;

    // Golden: no fault.
    const TransientResult golden = transient_analyze(nl, opt);
    ASSERT_FALSE(golden.recovery.any());
    ASSERT_EQ(golden.stats.timestep_cuts, 0u);

    // Fault both the trapezoidal attempt and the backward-Euler retry of
    // step 50 (the attempt-site call counter advances once per clean step),
    // forcing the timestep-cut ladder.
    obs::Counter& cuts = obs::counter("transient.timestep_cuts");
    obs::Counter& recoveries = obs::counter("robust.recoveries");
    const std::uint64_t c0 = cuts.value(), r0 = recoveries.value();
    robust::FaultInjector::arm("transient.newton", 50, 2);
    const TransientResult res = transient_analyze(nl, opt);

    EXPECT_EQ(res.stats.timestep_cuts, 1u);
    EXPECT_EQ(res.recovery.count("transient.timestep_cut"), 1u);
    EXPECT_EQ(cuts.value(), c0 + 1);
    EXPECT_GE(recoveries.value(), r0 + 1);

    // The re-advanced run matches the un-faulted golden waveform: the fault
    // lands in the settled region, where the backward-Euler substeps and the
    // trapezoidal step agree to far better than 1e-9.
    const NodeId out = nl.find_node("out");
    const VectorD w = res.waveform(out);
    const VectorD wg = golden.waveform(out);
    ASSERT_EQ(w.size(), wg.size());
    for (std::size_t i = 0; i < w.size(); ++i)
        EXPECT_NEAR(w[i], wg[i], 1e-9) << "sample " << i;
}

TEST_F(Robust, StrictTransientReproducesTheThrow) {
    const Netlist nl = rc_fixture();
    TransientOptions opt;
    opt.dt = 1e-6;
    opt.tstop = 10e-6;
    opt.recovery.policy = robust::RecoveryPolicy::Strict;
    robust::FaultInjector::arm("transient.newton", 5, 0);
    try {
        transient_analyze(nl, opt);
        FAIL() << "expected NumericalError under Strict";
    } catch (const NumericalError& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("Newton iteration did not converge"),
                  std::string::npos);
        ASSERT_FALSE(e.context().empty());
        // Innermost context first: the advancing-step annotation.
        EXPECT_NE(e.context().front().find("while advancing the transient"),
                  std::string::npos);
    }
}

TEST_F(Robust, RecoverPolicyStillFailsWhenCutsAreExhausted) {
    const Netlist nl = rc_fixture();
    TransientOptions opt;
    opt.dt = 1e-6;
    opt.tstop = 10e-6;
    // Fault every attempt from step 3 on: no ladder level can succeed.
    robust::FaultInjector::arm("transient.newton", 3, 0);
    EXPECT_THROW(transient_analyze(nl, opt), NumericalError);
}

// --- DC operating point: injected divergence recovers by gmin stepping -------

TEST_F(Robust, InjectedDcDivergenceRecoversByGminStepping) {
    Netlist nl;
    const NodeId vin = nl.node("in");
    const NodeId mid = nl.node("mid");
    nl.add_vsource("V1", vin, nl.ground(), Source::dc(10.0));
    nl.add_resistor("R1", vin, mid, 1e3);
    nl.add_resistor("R2", mid, nl.ground(), 3e3);

    robust::FaultInjector::arm("dcop.diverge", 1, 1); // plain attempt fails
    robust::RecoveryReport report;
    const DcSolution s = dc_operating_point(nl, robust::RecoveryOptions{},
                                            &report);
    EXPECT_NEAR(s.v(mid), 7.5, 1e-9);
    EXPECT_EQ(report.count("dcop.gmin"), 1u);
}

TEST_F(Robust, StrictDcReproducesTheThrow) {
    Netlist nl;
    const NodeId a = nl.node("a");
    nl.add_vsource("V1", a, nl.ground(), Source::dc(1.0));
    nl.add_resistor("R1", a, nl.ground(), 1e3);
    robust::FaultInjector::arm("dcop.diverge", 1, 0);
    robust::RecoveryOptions opt;
    opt.policy = robust::RecoveryPolicy::Strict;
    EXPECT_THROW(dc_operating_point(nl, opt, nullptr), NumericalError);
}

// --- iterative EM solver: injected GMRES stall falls back to dense LU --------

namespace {

RectMesh small_plane_mesh() {
    ConductorShape s;
    s.outline = Polygon::rectangle(0, 0, 0.012, 0.010);
    s.z = 0.4e-3;
    s.sheet_resistance = 1e-3;
    return RectMesh({s}, 0.001);
}

PlaneBem small_bem() {
    return PlaneBem(small_plane_mesh(), Greens::homogeneous(4.2, true), {});
}

double max_rel_diff(const MatrixC& a, const MatrixC& b) {
    double scale = 1e-300, diff = 0;
    for (std::size_t i = 0; i < a.rows(); ++i)
        for (std::size_t j = 0; j < a.cols(); ++j) {
            scale = std::max(scale, std::abs(a(i, j)));
            diff = std::max(diff, std::abs(a(i, j) - b(i, j)));
        }
    return diff / scale;
}

} // namespace

TEST_F(Robust, InjectedGmresStallFallsBackToDenseSolver) {
    const PlaneBem bem = small_bem();
    const SurfaceImpedance zs = SurfaceImpedance::from_sheet_resistance(1e-3);
    SolverOptions opt;
    opt.backend = SolverBackend::Iterative;
    const IterativeSolver iterative(bem, zs, opt);
    const std::vector<std::size_t> ports{
        bem.mesh().nearest_node({0.002, 0.002}, 0)};

    // Stall every GMRES solve: escalation cannot help, so the whole
    // frequency point must be rescued by the dense direct solver.
    robust::FaultInjector::arm("gmres.stall", 1, 0);
    const MatrixC z = iterative.port_impedance(1e9, ports);
    robust::FaultInjector::disarm_all();

    EXPECT_GE(iterative.stats().dense_fallbacks, 1u);
    EXPECT_GE(iterative.recovery_report().count("em.dense_fallback"), 1u);

    const DirectSolver direct(bem, zs);
    const MatrixC zd = direct.port_impedance(1e9, ports);
    EXPECT_LT(max_rel_diff(z, zd), 1e-8);
}

TEST_F(Robust, StrictIterativeSolverReproducesTheStallThrow) {
    const PlaneBem bem = small_bem();
    const SurfaceImpedance zs = SurfaceImpedance::from_sheet_resistance(1e-3);
    SolverOptions opt;
    opt.backend = SolverBackend::Iterative;
    opt.recovery.policy = robust::RecoveryPolicy::Strict;
    const IterativeSolver iterative(bem, zs, opt);
    const std::vector<std::size_t> ports{
        bem.mesh().nearest_node({0.002, 0.002}, 0)};
    robust::FaultInjector::arm("gmres.stall", 1, 0);
    EXPECT_THROW(iterative.port_impedance(1e9, ports), NumericalError);
}

// --- error-context chains across layers --------------------------------------

TEST_F(Robust, ContextChainRendersInnermostFirstAcrossTransientAndSsn) {
    // A Newton failure inside the monolithic SSN transient must surface with
    // the full layered story: the transient annotation innermost, the SSN
    // simulation annotation outermost, and what() rendering every line.
    SsnModelOptions coarse;
    coarse.mesh_pitch = 25e-3;
    coarse.interior_nodes = 6;
    coarse.prune_rel_tol = 0.05;
    auto plane = std::make_shared<PlaneModel>(make_ssn_eval_board(1), coarse);
    const SsnModel model(plane);

    robust::FaultInjector::arm("transient.newton", 1, 0);
    robust::RecoveryOptions strict;
    strict.policy = robust::RecoveryPolicy::Strict;
    try {
        model.simulate(50e-12, 1e-9, {}, strict);
        FAIL() << "expected NumericalError under Strict";
    } catch (const NumericalError& e) {
        // Original message intact.
        EXPECT_NE(e.message().find("Newton iteration did not converge"),
                  std::string::npos);
        // Contexts: innermost (transient step) before outermost (SSN run).
        const std::vector<std::string>& ctx = e.context();
        ASSERT_GE(ctx.size(), 2u);
        std::size_t i_transient = ctx.size(), i_ssn = ctx.size();
        for (std::size_t i = 0; i < ctx.size(); ++i) {
            if (ctx[i].find("while advancing the transient") !=
                std::string::npos)
                i_transient = std::min(i_transient, i);
            if (ctx[i].find("while simulating the SSN model") !=
                std::string::npos)
                i_ssn = std::min(i_ssn, i);
        }
        ASSERT_LT(i_transient, ctx.size());
        ASSERT_LT(i_ssn, ctx.size());
        EXPECT_LT(i_transient, i_ssn);
        // what() renders the message followed by one indented line per
        // context, in chain order.
        const std::string what = e.what();
        const std::size_t p_msg = what.find("Newton iteration");
        const std::size_t p_in = what.find("\n  " + ctx[i_transient]);
        const std::size_t p_out = what.find("\n  " + ctx[i_ssn]);
        ASSERT_NE(p_msg, std::string::npos);
        ASSERT_NE(p_in, std::string::npos);
        ASSERT_NE(p_out, std::string::npos);
        EXPECT_LT(p_msg, p_in);
        EXPECT_LT(p_in, p_out);
    }
}

// --- recovery surfaced end-to-end through the cosim entry points -------------

TEST_F(Robust, SsnSimulationSurfacesRecoveriesInTheResult) {
    SsnModelOptions coarse;
    coarse.mesh_pitch = 25e-3;
    coarse.interior_nodes = 6;
    coarse.prune_rel_tol = 0.05;
    auto plane = std::make_shared<PlaneModel>(make_ssn_eval_board(1), coarse);
    const SsnModel model(plane);

    // Fault one mid-run step (trap + BE retry): the run must complete, with
    // the timestep cut recorded on the result.
    robust::FaultInjector::arm("transient.newton", 8, 2);
    const TransientResult res = model.simulate(50e-12, 1e-9);
    EXPECT_GE(res.stats.timestep_cuts, 1u);
    EXPECT_GE(res.recovery.count("transient.timestep_cut"), 1u);
}

// --- cooperative cancellation (CancelToken) ---------------------------------

TEST_F(Robust, CancelTokenTripsOnceWithFirstReason) {
    robust::CancelToken token;
    EXPECT_FALSE(token.cancelled());
    EXPECT_EQ(token.reason(), "");
    token.cancel("batch shutdown");
    token.cancel("too late");
    EXPECT_TRUE(token.cancelled());
    EXPECT_FALSE(token.deadline_expired());
    EXPECT_EQ(token.reason(), "batch shutdown");
    EXPECT_THROW(token.poll("unit.stage"), Cancelled);
    try {
        token.poll("unit.stage");
    } catch (const Cancelled& e) {
        EXPECT_NE(std::string(e.what()).find("unit.stage"), std::string::npos);
        EXPECT_NE(std::string(e.what()).find("batch shutdown"),
                  std::string::npos);
    }
}

TEST_F(Robust, CancelTokenDeadlineTripsLazilyWithoutWatchdog) {
    robust::CancelToken token;
    token.set_deadline_after(1e-4); // 100 us
    const auto until = std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(200);
    while (!token.cancelled() && std::chrono::steady_clock::now() < until) {
    }
    ASSERT_TRUE(token.cancelled());
    EXPECT_TRUE(token.deadline_expired());
    EXPECT_THROW(token.poll("unit.stage"), Cancelled);
}

TEST_F(Robust, CancelTokenForcedExpiryNeedsAPendingDeadline) {
    robust::CancelToken without;
    without.expire_deadline(); // no deadline armed: must be a no-op
    EXPECT_FALSE(without.cancelled());

    robust::CancelToken with;
    with.set_deadline_after(3600.0); // far future
    with.expire_deadline();
    EXPECT_TRUE(with.cancelled());
    EXPECT_TRUE(with.deadline_expired());
}

TEST_F(Robust, CancelTokenAbortsTransientMidRun) {
    Netlist nl;
    const NodeId a = nl.node("a");
    nl.add_resistor("R1", a, nl.ground(), 50.0);
    nl.add_capacitor("C1", a, nl.ground(), 1e-12);
    nl.add_vsource("V1", a, nl.ground(), Source::dc(1.0));

    robust::CancelToken token;
    token.cancel("stop now");
    TransientOptions opt;
    opt.dt = 1e-11;
    opt.tstop = 1e-9;
    opt.recovery.cancel = &token;
    EXPECT_THROW(transient_analyze(nl, opt), Cancelled);
}

TEST_F(Robust, CancelTokenAbortsSweepBackends) {
    ConductorShape shape;
    shape.outline = Polygon::rectangle(0, 0, 0.04, 0.03);
    shape.z = 0.4e-3;
    shape.sheet_resistance = 0.6e-3;
    const PlaneBem bem(RectMesh({shape}, 0.01), Greens::homogeneous(4.5, true));
    robust::CancelToken token;
    token.cancel("batch abandoned");

    SolverOptions opt;
    opt.recovery.cancel = &token;
    opt.backend = SolverBackend::Direct;
    const auto direct = make_solver(
        bem, SurfaceImpedance::from_sheet_resistance(0.6e-3), opt);
    EXPECT_THROW(direct->sweep_impedance({1e8, 2e8}, {0}), Cancelled);

    opt.backend = SolverBackend::Iterative;
    const auto iterative = make_solver(
        bem, SurfaceImpedance::from_sheet_resistance(0.6e-3), opt);
    EXPECT_THROW(iterative->sweep_impedance({1e8, 2e8}, {0}), Cancelled);
}

TEST_F(Robust, EscalateOneRungIsMonotonicallyMoreForgiving) {
    robust::RecoveryOptions base;
    base.policy = robust::RecoveryPolicy::Strict;
    base.allow_precond_escalation = false;
    base.allow_dense_fallback = false;
    robust::RecoveryOptions rung = base;
    for (int k = 0; k < 3; ++k) {
        const robust::RecoveryOptions next = robust::escalate_one_rung(rung);
        EXPECT_EQ(next.policy, robust::RecoveryPolicy::Recover);
        EXPECT_GT(next.max_timestep_cuts, rung.max_timestep_cuts);
        EXPECT_GE(next.timestep_cut_factor, rung.timestep_cut_factor);
        EXPECT_GT(next.gmin_steps, rung.gmin_steps);
        EXPECT_GE(next.gmin_start, rung.gmin_start);
        EXPECT_GT(next.source_steps, rung.source_steps);
        EXPECT_TRUE(next.allow_precond_escalation);
        EXPECT_TRUE(next.allow_dense_fallback);
        rung = next;
    }
    EXPECT_LE(rung.gmin_start, 1e-1);
}
