// Tests for the vector-fitting macromodeler and its Foster synthesis.
#include <gtest/gtest.h>

#include <cmath>

#include "circuit/ac.hpp"
#include "common/constants.hpp"
#include "em/bem_plane.hpp"
#include "em/solver.hpp"
#include "extract/vector_fit.hpp"
#include "numeric/eigen.hpp"

using namespace pgsi;

namespace {

// Synthetic rational target with known poles/residues.
Complex synth(double f) {
    const Complex s(0.0, 2 * pi * f);
    const Complex p1(-2e8, 6e9), r1(5e8, -1e8);
    const Complex p2 = std::conj(p1), r2 = std::conj(r1);
    const Complex p3(-5e8, 0.0), r3(3e9, 0.0);
    return r1 / (s - p1) + r2 / (s - p2) + r3 / (s - p3) + 2.0 + s * 1e-10;
}

} // namespace

TEST(EigenGeneral, KnownSpectra) {
    // Triangular matrix: eigenvalues on the diagonal.
    MatrixC a(3, 3);
    a(0, 0) = Complex(1, 0);
    a(0, 1) = Complex(4, 2);
    a(1, 1) = Complex(-2, 1);
    a(1, 2) = Complex(1, 1);
    a(2, 2) = Complex(0, -3);
    VectorC e = eigenvalues_general(a);
    std::sort(e.begin(), e.end(),
              [](Complex x, Complex y) { return x.real() < y.real(); });
    EXPECT_NEAR(std::abs(e[0] - Complex(-2, 1)), 0.0, 1e-9);
    EXPECT_NEAR(std::abs(e[1] - Complex(0, -3)), 0.0, 1e-9);
    EXPECT_NEAR(std::abs(e[2] - Complex(1, 0)), 0.0, 1e-9);
}

TEST(EigenGeneral, CompanionPair) {
    // [[0,1],[-5,-2]] has eigenvalues -1 ± 2j.
    MatrixC a(2, 2);
    a(0, 1) = Complex(1, 0);
    a(1, 0) = Complex(-5, 0);
    a(1, 1) = Complex(-2, 0);
    VectorC e = eigenvalues_general(a);
    std::sort(e.begin(), e.end(),
              [](Complex x, Complex y) { return x.imag() < y.imag(); });
    EXPECT_NEAR(std::abs(e[0] - Complex(-1, -2)), 0.0, 1e-9);
    EXPECT_NEAR(std::abs(e[1] - Complex(-1, 2)), 0.0, 1e-9);
}

TEST(VectorFit, RecoversSyntheticRational) {
    const VectorD freqs = lin_space(50e6, 20e9, 120);
    VectorC h(freqs.size());
    for (std::size_t i = 0; i < freqs.size(); ++i) h[i] = synth(freqs[i]);
    VectorFitOptions opt;
    opt.n_poles = 4;
    const RationalFit fit = vector_fit(freqs, h, opt);
    EXPECT_LT(fit.max_relative_error(freqs, h), 1e-4);
    EXPECT_NEAR(fit.d, 2.0, 0.1);
    EXPECT_NEAR(fit.e, 1e-10, 1e-11);
}

TEST(VectorFit, FitsExtractedPlaneImpedance) {
    // Fit the direct MPIE sweep of a small plane across its first resonances.
    ConductorShape s;
    s.outline = Polygon::rectangle(0, 0, 0.03, 0.02);
    s.z = 0.4e-3;
    s.sheet_resistance = 2e-3;
    const PlaneBem bem(RectMesh({s}, 0.03 / 10), Greens::homogeneous(4.5, true),
                       BemOptions{});
    const DirectSolver solver(bem, SurfaceImpedance::from_sheet_resistance(2e-3));
    const std::size_t port = bem.mesh().nearest_node({0.003, 0.01}, 0);

    const VectorD freqs = lin_space(0.05e9, 8e9, 80);
    VectorC h(freqs.size());
    for (std::size_t i = 0; i < freqs.size(); ++i)
        h[i] = solver.port_impedance(freqs[i], {port})(0, 0);

    VectorFitOptions opt;
    opt.n_poles = 16; // the band holds ~5 resonances plus the capacitive tail
    opt.iterations = 25;
    const RationalFit fit = vector_fit(freqs, h, opt);
    EXPECT_LT(fit.max_relative_error(freqs, h), 0.01);
    for (const Complex& p : fit.poles) EXPECT_LT(p.real(), 0.0);
}

TEST(VectorFit, FosterNetlistReproducesFit) {
    const VectorD freqs = lin_space(50e6, 20e9, 120);
    VectorC h(freqs.size());
    for (std::size_t i = 0; i < freqs.size(); ++i) h[i] = synth(freqs[i]);
    VectorFitOptions opt;
    opt.n_poles = 4;
    const RationalFit fit = vector_fit(freqs, h, opt);

    Netlist nl;
    const NodeId a = nl.node("a");
    stamp_foster_impedance(nl, "Zfit", a, nl.ground(), fit);
    nl.add_isource("I1", nl.ground(), a, Source::dc(0.0).set_ac(1.0));
    for (double f : {0.1e9, 1e9, 3e9, 10e9}) {
        const AcSolution sol = ac_analyze(nl, f);
        const Complex z_net = sol.v(a);
        const Complex z_fit = fit.evaluate(f);
        EXPECT_NEAR(std::abs(z_net - z_fit), 0.0, 0.01 * std::abs(z_fit))
            << "f=" << f;
    }
}

TEST(VectorFit, InputValidation) {
    const VectorD f{1e6, 2e6, 3e6, 4e6};
    const VectorC h{Complex(1, 0), Complex(1, 0), Complex(1, 0), Complex(1, 0)};
    VectorFitOptions opt;
    opt.n_poles = 3; // odd
    EXPECT_THROW(vector_fit(f, h, opt), InvalidArgument);
    opt.n_poles = 8; // too many for 4 samples
    EXPECT_THROW(vector_fit(f, h, opt), InvalidArgument);
}

TEST(VectorFit, UnstableFitRejectedBySynthesis) {
    RationalFit fit;
    fit.poles = {Complex(1e8, 0)};
    fit.residues = {Complex(1e9, 0)};
    Netlist nl;
    const NodeId a = nl.node("a");
    EXPECT_THROW(stamp_foster_impedance(nl, "bad", a, nl.ground(), fit),
                 InvalidArgument);
}
