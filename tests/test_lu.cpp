// Unit + property tests for LU factorization (real and complex).
#include <gtest/gtest.h>

#include <random>

#include "numeric/lu.hpp"
#include "tests/test_util.hpp"

using namespace pgsi;

TEST(Lu, Solve2x2) {
    const MatrixD a{{2, 1}, {1, 3}};
    const VectorD x = Lu<double>(a).solve(VectorD{5, 10});
    EXPECT_NEAR(x[0], 1.0, 1e-12);
    EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Lu, SingularThrows) {
    const MatrixD a{{1, 2}, {2, 4}};
    EXPECT_THROW((Lu<double>{a}), NumericalError);
}

TEST(Lu, Determinant) {
    const MatrixD a{{2, 0, 0}, {0, 3, 0}, {0, 0, 4}};
    EXPECT_NEAR(Lu<double>(a).determinant(), 24.0, 1e-12);
    // Permutation sign.
    const MatrixD p{{0, 1}, {1, 0}};
    EXPECT_NEAR(Lu<double>(p).determinant(), -1.0, 1e-12);
}

TEST(Lu, Inverse) {
    const MatrixD a{{4, 7}, {2, 6}};
    const MatrixD inv = Lu<double>(a).inverse();
    const MatrixD prod = a * inv;
    for (std::size_t i = 0; i < 2; ++i)
        for (std::size_t j = 0; j < 2; ++j)
            EXPECT_NEAR(prod(i, j), i == j ? 1.0 : 0.0, 1e-12);
}

TEST(Lu, ComplexSolve) {
    MatrixC a(2, 2);
    a(0, 0) = Complex(1, 1);
    a(0, 1) = Complex(0, 2);
    a(1, 0) = Complex(2, 0);
    a(1, 1) = Complex(1, -1);
    const VectorC b{Complex(1, 0), Complex(0, 1)};
    const VectorC x = Lu<Complex>(a).solve(b);
    // Residual check.
    const VectorC r = a * x;
    EXPECT_NEAR(std::abs(r[0] - b[0]), 0.0, 1e-12);
    EXPECT_NEAR(std::abs(r[1] - b[1]), 0.0, 1e-12);
}

TEST(Lu, MultiRhs) {
    const MatrixD a{{3, 1}, {1, 2}};
    const MatrixD x = Lu<double>(a).solve(MatrixD::identity(2));
    const MatrixD prod = a * x;
    EXPECT_NEAR(prod(0, 0), 1.0, 1e-12);
    EXPECT_NEAR(prod(0, 1), 0.0, 1e-12);
}

// Property sweep: random diagonally dominant systems solve to tiny residual.
class LuResidual : public ::testing::TestWithParam<int> {};

TEST_P(LuResidual, RandomSystemResidual) {
    const int n = GetParam();
    std::mt19937 rng(42 + n);
    std::uniform_real_distribution<double> u(-1.0, 1.0);
    MatrixD a(n, n);
    VectorD b(n);
    for (int i = 0; i < n; ++i) {
        b[i] = u(rng);
        for (int j = 0; j < n; ++j) a(i, j) = u(rng);
        a(i, i) += n; // ensure well-conditioned
    }
    const VectorD x = Lu<double>(a).solve(b);
    VectorD r = a * x;
    for (int i = 0; i < n; ++i) r[i] -= b[i];
    EXPECT_LT(norm2(r), 1e-10 * (1.0 + norm2(b)));
}

INSTANTIATE_TEST_SUITE_P(Sizes, LuResidual,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

// --- Blocked factorization / multi-RHS paths --------------------------------

#include "common/parallel.hpp"
#include "obs/metrics.hpp"

namespace {

// Well-conditioned random system large enough to cross the 64-column
// factorization block and exercise the GEMM trailing updates.
MatrixD random_spd_ish(int n, unsigned seed) {
    std::mt19937 rng(seed);
    std::uniform_real_distribution<double> u(-1.0, 1.0);
    MatrixD a(n, n);
    for (int i = 0; i < n; ++i) {
        for (int j = 0; j < n; ++j) a(i, j) = u(rng);
        a(i, i) += n;
    }
    return a;
}

} // namespace

TEST(Lu, BlockedResidualAcrossBlockBoundary) {
    for (const int n : {150, 193}) {
        const MatrixD a = random_spd_ish(n, 100 + n);
        std::mt19937 rng(7);
        std::uniform_real_distribution<double> u(-1.0, 1.0);
        VectorD b(n);
        for (int i = 0; i < n; ++i) b[i] = u(rng);
        const VectorD x = Lu<double>(a).solve(b);
        VectorD r = a * x;
        for (int i = 0; i < n; ++i) r[i] -= b[i];
        EXPECT_LT(norm2(r), 1e-10 * (1.0 + norm2(b))) << "n=" << n;
    }
}

TEST(Lu, MatrixSolveMatchesColumnwiseVectorSolves) {
    const int n = 97, k = 13;
    const MatrixD a = random_spd_ish(n, 11);
    std::mt19937 rng(12);
    std::uniform_real_distribution<double> u(-1.0, 1.0);
    MatrixD b(n, k);
    for (int i = 0; i < n; ++i)
        for (int j = 0; j < k; ++j) b(i, j) = u(rng);
    const Lu<double> lu(a);
    const MatrixD x = lu.solve(b);
    for (int j = 0; j < k; ++j) {
        VectorD col(n);
        for (int i = 0; i < n; ++i) col[i] = b(i, j);
        const VectorD xj = lu.solve(col);
        for (int i = 0; i < n; ++i)
            EXPECT_NEAR(x(i, j), xj[i], 1e-11) << "col=" << j;
    }
}

TEST(Lu, MultiRhsResidualWideBlock) {
    // nrhs = 200 crosses the 64-column substitution block.
    const int n = 120, k = 200;
    const MatrixD a = random_spd_ish(n, 21);
    std::mt19937 rng(22);
    std::uniform_real_distribution<double> u(-1.0, 1.0);
    MatrixD b(n, k);
    for (int i = 0; i < n; ++i)
        for (int j = 0; j < k; ++j) b(i, j) = u(rng);
    const MatrixD x = Lu<double>(a).solve(b);
    const MatrixD r = a * x;
    double worst = 0;
    for (int i = 0; i < n; ++i)
        for (int j = 0; j < k; ++j)
            worst = std::max(worst, std::abs(r(i, j) - b(i, j)));
    EXPECT_LT(worst, 1e-9);
}

TEST(Lu, SolveBitIdenticalAcrossThreadCounts) {
    const int n = 160, k = 40;
    const MatrixD a = random_spd_ish(n, 31);
    std::mt19937 rng(32);
    std::uniform_real_distribution<double> u(-1.0, 1.0);
    MatrixD b(n, k);
    for (int i = 0; i < n; ++i)
        for (int j = 0; j < k; ++j) b(i, j) = u(rng);
    pgsi::test::ScopedThreadCount pin(1);
    const MatrixD x1 = Lu<double>(a).solve(b);
    for (const std::size_t threads : {2u, 8u}) {
        pin.repin(threads);
        const MatrixD xn = Lu<double>(a).solve(b);
        double d = 0;
        for (int i = 0; i < n; ++i)
            for (int j = 0; j < k; ++j)
                d = std::max(d, std::abs(x1(i, j) - xn(i, j)));
        EXPECT_EQ(d, 0.0) << "threads=" << threads;
    }
}

TEST(Lu, SolveCountersDistinguishCallsFromColumns) {
    obs::reset_metrics();
    const MatrixD a = random_spd_ish(50, 41);
    const Lu<double> lu(a);
    lu.solve(VectorD(50));
    EXPECT_EQ(obs::counter("lu.solves").value(), 1u);
    EXPECT_EQ(obs::counter("lu.rhs_cols").value(), 1u);
    lu.solve(MatrixD(50, 9));
    EXPECT_EQ(obs::counter("lu.solves").value(), 2u);
    EXPECT_EQ(obs::counter("lu.rhs_cols").value(), 10u);
}
