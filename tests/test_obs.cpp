// Tests for the observability subsystem: span nesting and timing invariants,
// counter atomicity under thread contention, JSON escaping, and the
// disabled-mode guarantee that nothing is recorded.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>

#include "circuit/transient.hpp"
#include "common/error.hpp"
#include "io/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

using namespace pgsi;

namespace {

// Per-test trace sandbox: tracing enabled, records cleared, restored off.
class ObsTest : public ::testing::Test {
protected:
    void SetUp() override {
        obs::set_trace_enabled(true);
        obs::reset_trace();
    }
    void TearDown() override {
        obs::set_trace_enabled(false);
        obs::reset_trace();
    }
};

const obs::SpanRecord* find_span(const std::vector<obs::SpanRecord>& recs,
                                 const std::string& path) {
    for (const obs::SpanRecord& r : recs)
        if (r.path == path) return &r;
    return nullptr;
}

void spin_for(std::chrono::microseconds d) {
    const auto until = std::chrono::steady_clock::now() + d;
    while (std::chrono::steady_clock::now() < until) {
    }
}

} // namespace

TEST_F(ObsTest, SpanNestingBuildsPaths) {
    {
        PGSI_TRACE_SCOPE("outer");
        {
            PGSI_TRACE_SCOPE("inner");
            { PGSI_TRACE_SCOPE("leaf"); }
        }
        { PGSI_TRACE_SCOPE("sibling"); }
    }
    const auto recs = obs::trace_records();
    ASSERT_EQ(recs.size(), 4u);
    EXPECT_NE(find_span(recs, "outer"), nullptr);
    EXPECT_NE(find_span(recs, "outer/inner"), nullptr);
    EXPECT_NE(find_span(recs, "outer/inner/leaf"), nullptr);
    EXPECT_NE(find_span(recs, "outer/sibling"), nullptr);
    EXPECT_EQ(find_span(recs, "outer")->depth, 0u);
    EXPECT_EQ(find_span(recs, "outer/inner/leaf")->depth, 2u);
}

TEST_F(ObsTest, ParentEnclosesChildTiming) {
    {
        PGSI_TRACE_SCOPE("parent");
        spin_for(std::chrono::microseconds(200));
        {
            PGSI_TRACE_SCOPE("child");
            spin_for(std::chrono::microseconds(200));
        }
        spin_for(std::chrono::microseconds(200));
    }
    const auto recs = obs::trace_records();
    const obs::SpanRecord* parent = find_span(recs, "parent");
    const obs::SpanRecord* child = find_span(recs, "parent/child");
    ASSERT_NE(parent, nullptr);
    ASSERT_NE(child, nullptr);
    // The child's interval nests inside the parent's.
    EXPECT_GE(child->start_ns, parent->start_ns);
    EXPECT_LE(child->start_ns + child->dur_ns, parent->start_ns + parent->dur_ns);
    EXPECT_LT(child->dur_ns, parent->dur_ns);
}

TEST_F(ObsTest, CurrentSpanPathTracksInnermost) {
    EXPECT_EQ(obs::current_span_path(), "");
    {
        PGSI_TRACE_SCOPE("a");
        {
            PGSI_TRACE_SCOPE("b");
            EXPECT_EQ(obs::current_span_path(), "a/b");
        }
        EXPECT_EQ(obs::current_span_path(), "a");
    }
    EXPECT_EQ(obs::current_span_path(), "");
}

TEST_F(ObsTest, DisabledModeRecordsNothing) {
    obs::set_trace_enabled(false);
    {
        PGSI_TRACE_SCOPE("invisible");
        { PGSI_TRACE_SCOPE("also_invisible"); }
    }
    EXPECT_TRUE(obs::trace_records().empty());
    EXPECT_EQ(obs::current_span_path(), "");
}

TEST_F(ObsTest, SpansFromWorkerThreadsAreRecorded) {
    std::vector<std::thread> pool;
    for (int t = 0; t < 4; ++t)
        pool.emplace_back([] {
            for (int i = 0; i < 50; ++i) { PGSI_TRACE_SCOPE("worker"); }
        });
    for (std::thread& th : pool) th.join();
    const auto recs = obs::trace_records();
    EXPECT_EQ(recs.size(), 200u);
    for (const obs::SpanRecord& r : recs) EXPECT_EQ(r.path, "worker");
}

TEST_F(ObsTest, ChromeTraceJsonIsWellFormed) {
    {
        PGSI_TRACE_SCOPE("alpha");
        { PGSI_TRACE_SCOPE("beta"); }
    }
    const std::string json = obs::chrome_trace_json();
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');
    EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"beta\""), std::string::npos);
    EXPECT_NE(json.find("\"path\":\"alpha/beta\""), std::string::npos);
    // Balanced braces/brackets outside of strings (no string content here
    // contains either).
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
    EXPECT_EQ(std::count(json.begin(), json.end(), '['),
              std::count(json.begin(), json.end(), ']'));
}

TEST(ObsJson, EscapesSpecialCharacters) {
    EXPECT_EQ(obs::json_escape("plain"), "plain");
    EXPECT_EQ(obs::json_escape("q\"q"), "q\\\"q");
    EXPECT_EQ(obs::json_escape("b\\s"), "b\\\\s");
    EXPECT_EQ(obs::json_escape("n\nr\rt\t"), "n\\nr\\rt\\t");
    EXPECT_EQ(obs::json_escape(std::string_view("\x01\x1f", 2)),
              "\\u0001\\u001f");
    EXPECT_EQ(obs::json_escape("\b\f"), "\\b\\f");
}

TEST(ObsJson, PassesThroughMultiByteUtf8) {
    // json_escape must leave valid UTF-8 sequences byte-for-byte intact:
    // 2-byte (é), 3-byte (∑), and 4-byte (𝛑) code points.
    const std::string utf8 = "\xC3\xA9 \xE2\x88\x91 \xF0\x9D\x9B\x91";
    EXPECT_EQ(obs::json_escape(utf8), utf8);
    // DEL (0x7f) is above the JSON control range and passes through.
    EXPECT_EQ(obs::json_escape("\x7f"), "\x7f");
    // Control characters embedded between multi-byte sequences still escape.
    EXPECT_EQ(obs::json_escape(std::string("\xC3\xA9\x01\xC3\xA9")),
              "\xC3\xA9\\u0001\xC3\xA9");
}

TEST(ObsMetrics, CounterIsAtomicUnderContention) {
    obs::Counter& c = obs::counter("test.contended");
    c.reset();
    constexpr int kThreads = 8;
    constexpr int kIters = 20000;
    std::vector<std::thread> pool;
    for (int t = 0; t < kThreads; ++t)
        pool.emplace_back([&c] {
            for (int i = 0; i < kIters; ++i) ++c;
        });
    for (std::thread& th : pool) th.join();
    EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST(ObsMetrics, RegistryReturnsStableReferences) {
    obs::Counter& a = obs::counter("test.stable");
    obs::Counter& b = obs::counter("test.stable");
    EXPECT_EQ(&a, &b);
    a.reset();
    ++a;
    EXPECT_EQ(b.value(), 1u);
}

TEST(ObsMetrics, GaugeAndHistogram) {
    obs::Gauge& g = obs::gauge("test.gauge");
    g.set(42.5);
    EXPECT_DOUBLE_EQ(g.value(), 42.5);

    obs::Histogram& h = obs::histogram("test.hist");
    h.reset();
    h.record(1.0);
    h.record(3.0);
    h.record(8.0);
    const obs::Histogram::Snapshot s = h.snapshot();
    EXPECT_EQ(s.count, 3u);
    EXPECT_DOUBLE_EQ(s.sum, 12.0);
    EXPECT_DOUBLE_EQ(s.min, 1.0);
    EXPECT_DOUBLE_EQ(s.max, 8.0);
    EXPECT_DOUBLE_EQ(s.mean(), 4.0);
    // Buckets: 1.0 -> [1,2) = bucket 1, 3.0 -> [2,4) = bucket 2,
    // 8.0 -> [8,16) = bucket 4.
    EXPECT_EQ(s.buckets[1], 1u);
    EXPECT_EQ(s.buckets[2], 1u);
    EXPECT_EQ(s.buckets[4], 1u);
}

TEST(ObsMetrics, HistogramConcurrentRecordAndSnapshot) {
    // Writers hammer record() while a reader snapshots; every snapshot must
    // be internally consistent (bucket sum == count) because the histogram
    // is mutex-protected, and the final totals must be exact.
    obs::Histogram& h = obs::histogram("test.hist.concurrent");
    h.reset();
    constexpr int kThreads = 4;
    constexpr int kIters = 5000;
    std::atomic<bool> stop{false};
    std::thread reader([&] {
        while (!stop.load(std::memory_order_relaxed)) {
            const obs::Histogram::Snapshot s = h.snapshot();
            std::uint64_t in_buckets = 0;
            for (const std::uint64_t b : s.buckets) in_buckets += b;
            ASSERT_EQ(in_buckets, s.count);
        }
    });
    std::vector<std::thread> writers;
    for (int t = 0; t < kThreads; ++t)
        writers.emplace_back([&h] {
            for (int i = 1; i <= kIters; ++i) h.record(double(i));
        });
    for (std::thread& th : writers) th.join();
    stop.store(true);
    reader.join();
    const obs::Histogram::Snapshot s = h.snapshot();
    EXPECT_EQ(s.count, std::uint64_t(kThreads) * kIters);
    EXPECT_DOUBLE_EQ(s.min, 1.0);
    EXPECT_DOUBLE_EQ(s.max, double(kIters));
}

TEST(ObsMetrics, FormatMetricsListsRegisteredNames) {
    obs::counter("test.formatted").reset();
    obs::counter("test.formatted").add(7);
    const std::string s = obs::format_metrics();
    EXPECT_NE(s.find("test.formatted"), std::string::npos);
    EXPECT_NE(s.find("7"), std::string::npos);
}

TEST_F(ObsTest, ChromeTraceCarriesProcessAndThreadNames) {
    obs::set_thread_name("main-test-thread");
    { PGSI_TRACE_SCOPE("named_span"); }
    std::thread worker([] {
        obs::set_thread_name("obs-worker-7");
        PGSI_TRACE_SCOPE("worker_span");
    });
    worker.join();
    const std::string json = obs::chrome_trace_json();
    // Metadata events name the process and both threads for the viewer.
    EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"process_name\""), std::string::npos);
    EXPECT_NE(json.find("\"args\":{\"name\":\"pgsi\"}"), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"thread_name\""), std::string::npos);
    EXPECT_NE(json.find("main-test-thread"), std::string::npos);
    EXPECT_NE(json.find("obs-worker-7"), std::string::npos);
    // The whole trace must be well-formed JSON, not just contain the
    // expected substrings (a truncated metadata event once passed the
    // substring checks above).
    const JsonValue doc = parse_json(json);
    ASSERT_TRUE(doc.is_object());
    const JsonValue* events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);
    EXPECT_GE(events->array.size(), 3u);
}

TEST(ObsError, ContextChainFormatsAndPreservesType) {
    NumericalError err("base failure");
    err.with_context("while factoring MNA at t=1.2ns");
    err.with_context("in span ssn.simulate/transient.run");
    const std::string w = err.what();
    EXPECT_NE(w.find("base failure"), std::string::npos);
    EXPECT_NE(w.find("while factoring MNA at t=1.2ns"), std::string::npos);
    EXPECT_NE(w.find("in span ssn.simulate/transient.run"), std::string::npos);
    EXPECT_EQ(err.message(), "base failure");
    ASSERT_EQ(err.context().size(), 2u);

    // Catch-annotate-rethrow keeps the dynamic type.
    try {
        try {
            throw NumericalError("inner");
        } catch (Error& e) {
            e.with_context("layer context");
            throw;
        }
    } catch (const NumericalError& e) {
        EXPECT_NE(std::string(e.what()).find("layer context"), std::string::npos);
    } catch (...) {
        FAIL() << "dynamic exception type was not preserved";
    }
}

TEST_F(ObsTest, TraceSummaryAggregatesByPath) {
    for (int i = 0; i < 3; ++i) {
        PGSI_TRACE_SCOPE("stage");
        { PGSI_TRACE_SCOPE("sub"); }
    }
    const std::string s = obs::trace_summary();
    EXPECT_NE(s.find("stage"), std::string::npos);
    EXPECT_NE(s.find("sub"), std::string::npos);
    EXPECT_NE(s.find("x3"), std::string::npos);
}

TEST_F(ObsTest, TransientRunEmitsSpansAndStats) {
    // Simple RC step: linear, so zero Newton iterations and one
    // factorization per integrator (BE on the first step, trapezoidal after).
    Netlist nl;
    const NodeId in = nl.node("in");
    const NodeId out = nl.node("out");
    nl.add_vsource("V1", in, nl.ground(), Source::dc(1.0));
    nl.add_resistor("R1", in, out, 1e3);
    nl.add_capacitor("C1", out, nl.ground(), 1e-12);

    TransientOptions opt;
    opt.dt = 1e-11;
    opt.tstop = 1e-9;
    const TransientResult r = transient_analyze(nl, opt);

    // The stepper advances until t >= tstop, so the count is ceil(tstop/dt)
    // up to rounding; one LU solve per (linear) step.
    EXPECT_GE(r.stats.steps, 100u);
    EXPECT_LE(r.stats.steps, 101u);
    EXPECT_EQ(r.stats.newton_iterations, 0u);
    EXPECT_EQ(r.stats.step_rejections, 0u);
    EXPECT_EQ(r.stats.lu_factorizations, 2u);
    EXPECT_EQ(r.stats.lu_solves, r.stats.steps);
    EXPECT_GT(r.stats.wall_seconds, 0.0);

    const auto recs = obs::trace_records();
    EXPECT_NE(find_span(recs, "transient.run"), nullptr);
    EXPECT_NE(find_span(recs, "transient.run/transient.dcop"), nullptr);
    EXPECT_NE(find_span(recs, "transient.run/transient.factor"), nullptr);
}

TEST(ObsTelemetry, NonlinearTransientCountsNewtonIterations) {
    // Diode clamp driven by a pulse: every step runs the Newton relaxation
    // over the table element, so the iteration count must exceed the step
    // count while rejections stay zero for this well-behaved circuit.
    Netlist nl;
    const NodeId in = nl.node("in");
    const NodeId d = nl.node("d");
    nl.add_vsource("V1", in, nl.ground(),
                   Source::pulse(0.0, 5.0, 0.0, 1e-10, 1e-10, 1e-9, 2e-9));
    nl.add_resistor("R1", in, d, 100.0);
    VectorD v, i;
    for (double x = -5.0; x <= 0.6; x += 0.2) {
        v.push_back(x);
        i.push_back(0.0);
    }
    for (double x = 0.8; x <= 6.0; x += 0.2) {
        v.push_back(x);
        i.push_back((x - 0.6) * 0.1);
    }
    nl.add_table_conductance("D1", d, nl.ground(), std::move(v), std::move(i));

    TransientOptions opt;
    opt.dt = 2.5e-11;
    opt.tstop = 2e-9;
    const TransientResult r = transient_analyze(nl, opt);

    EXPECT_GE(r.stats.steps, 80u);
    EXPECT_LE(r.stats.steps, 81u);
    EXPECT_GE(r.stats.newton_iterations, r.stats.steps);
    EXPECT_EQ(r.stats.step_rejections, 0u);
    EXPECT_GE(r.stats.lu_solves, r.stats.newton_iterations);
    EXPECT_GE(r.stats.lu_factorizations, 1u);
}
