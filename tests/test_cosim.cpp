// Tests for the SSN co-simulation layer: plane-model construction,
// monolithic simulation sanity, and the partitioned scheme against the
// monolithic one. Uses a small synthetic board so the suite stays fast.
#include <gtest/gtest.h>

#include <cmath>

#include "si/cosim.hpp"

using namespace pgsi;

namespace {

Board tiny_board(int switching) {
    BoardStackup st;
    st.plane_separation = 0.5e-3;
    st.eps_r = 4.5;
    st.sheet_resistance = 1e-3;
    Board b(0.08, 0.06, st, 5.0);
    b.set_vrm_location({0.005, 0.005});
    for (int d = 0; d < 2; ++d) {
        DriverSite s;
        s.name = "d" + std::to_string(d);
        s.vcc_pin = {0.05 + 0.01 * d, 0.035};
        s.gnd_pin = {0.05 + 0.01 * d, 0.025};
        s.load_c = 20e-12;
        if (d < switching)
            s.driver.input = Source::pulse(0, 1, 0.5e-9, 0.5e-9, 0.5e-9, 4e-9);
        b.add_driver_site(s);
    }
    return b;
}

SsnModelOptions fast_options() {
    SsnModelOptions o;
    o.mesh_pitch = 0.01;
    o.interior_nodes = 6;
    o.prune_rel_tol = 0.02;
    return o;
}

} // namespace

TEST(Cosim, PlaneModelBuilds) {
    const Board b = tiny_board(1);
    const PlaneModel pm(b, fast_options());
    EXPECT_GT(pm.circuit().node_count(), 6u);
    // Site ports land on the meshed power plane at the stackup height, and
    // the model carries a reference (the ground plane through image theory).
    const EquivalentCircuit& ec = pm.circuit();
    EXPECT_TRUE(ec.has_reference);
    EXPECT_NEAR(ec.node_z[pm.site_vcc_node(0)], 0.5e-3, 1e-12);
    EXPECT_NE(pm.site_vcc_node(0), pm.site_vcc_node(1));
    EXPECT_GT(ec.total_reference_capacitance(), 0.0);
}

TEST(Cosim, DcOperatingPointIsVdd) {
    auto plane = std::make_shared<PlaneModel>(tiny_board(0), fast_options());
    const SsnModel model(plane);
    const DcSolution dc = dc_operating_point(model.netlist());
    // Quiet board: every die Vcc sits near Vdd, die Gnd near 0. The DC point
    // of a reduced plane model carries a sub-percent offset from the
    // inductor-loop regularization interacting with branch pruning.
    for (std::size_t s = 0; s < 2; ++s) {
        EXPECT_NEAR(dc.v(model.die_vcc(s)), 5.0, 0.05);
        EXPECT_NEAR(dc.v(model.die_gnd(s)), 0.0, 0.05);
        EXPECT_NEAR(dc.v(model.out(s)), 0.0, 0.05);
    }
}

TEST(Cosim, SwitchingCreatesNoiseQuietDoesNot) {
    const SsnModelOptions opt = fast_options();
    auto quiet_plane = std::make_shared<PlaneModel>(tiny_board(0), opt);
    auto loud_plane = std::make_shared<PlaneModel>(tiny_board(2), opt);
    const double dt = 20e-12, tstop = 4e-9;

    const SsnModel quiet(quiet_plane);
    const TransientResult rq = quiet.simulate(dt, tstop);
    EXPECT_LT(rq.peak_excursion(quiet.die_gnd(0)), 1e-6);

    const SsnModel loud(loud_plane);
    const TransientResult rl = loud.simulate(dt, tstop);
    EXPECT_GT(rl.peak_excursion(loud.die_gnd(0)), 0.01);
    // Outputs actually switch high.
    EXPECT_GT(rl.waveform(loud.out(0)).back(), 4.0);
}

TEST(Cosim, MoreSwitchingMorePlaneNoise) {
    // Die-level ground bounce is dominated by each site's own pin inductance
    // and saturates; the *shared* power-plane noise scales with how many
    // drivers switch — that is the SSN effect of §6.2.
    const SsnModelOptions opt = fast_options();
    const double dt = 20e-12, tstop = 4e-9;
    auto plane_noise = [&](int switching) {
        auto p = std::make_shared<PlaneModel>(tiny_board(switching), opt);
        const SsnModel m(p);
        const TransientResult r = m.simulate(dt, tstop);
        return std::max(r.peak_excursion(m.board_vcc(0)),
                        r.peak_excursion(m.board_vcc(1)));
    };
    const double noise1 = plane_noise(1);
    const double noise2 = plane_noise(2);
    EXPECT_GT(noise2, 1.2 * noise1);
}

TEST(Cosim, PartitionedTracksMonolithic) {
    const SsnModelOptions opt = fast_options();
    auto plane = std::make_shared<PlaneModel>(tiny_board(2), opt);
    const double dt = 10e-12, tstop = 4e-9;

    const SsnModel mono(plane);
    const TransientResult rm = mono.simulate(dt, tstop);
    const double mono_peak = rm.peak_excursion(mono.die_gnd(0));

    PartitionedCosim part(plane, dt);
    const PartitionedCosim::Result rp = part.run(tstop);
    double part_peak = 0;
    for (double v : rp.die_gnd[0])
        part_peak = std::max(part_peak, std::abs(v - rp.die_gnd[0].front()));

    // The per-step relaxation lags one dt; peaks agree to ~25%.
    EXPECT_NEAR(part_peak, mono_peak, 0.25 * mono_peak + 1e-3);
}

TEST(Cosim, DecapReducesPlaneNoise) {
    Board with = tiny_board(2);
    Decap d;
    d.pos = {0.05, 0.03};
    d.c = 100e-9;
    d.esr = 20e-3;
    d.esl = 0.6e-9;
    with.add_decap(d);
    const SsnModelOptions opt = fast_options();
    auto plane = std::make_shared<PlaneModel>(with, opt);
    const double dt = 20e-12, tstop = 4e-9;

    const SsnModel no_decap(plane, 0);
    const SsnModel yes_decap(plane, 1);
    const TransientResult r0 = no_decap.simulate(dt, tstop);
    const TransientResult r1 = yes_decap.simulate(dt, tstop);
    const double n0 = r0.peak_excursion(no_decap.board_vcc(0));
    const double n1 = r1.peak_excursion(yes_decap.board_vcc(0));
    EXPECT_LT(n1, n0);
}

TEST(Cosim, SignalNetDeliversEdgeAndCouplesNoise) {
    // Fourth subsystem (Fig. 3): a 50-ohm, 0.5 ns net carries the switching
    // edge from driver 0's output to a terminated receiver, while the
    // driver keeps drawing its supply current from the plane.
    Board b = tiny_board(1);
    SignalNet net;
    net.driver_site = 0;
    net.z0 = 50.0;
    net.delay = 0.5e-9;
    net.receiver_c = 4e-12;
    net.term_r = 50.0;
    b.add_signal_net(net);
    auto plane = std::make_shared<PlaneModel>(b, fast_options());
    const SsnModel m(plane);

    TransientOptions opt;
    opt.dt = 20e-12;
    opt.tstop = 6e-9;
    opt.probes = {m.out(0), m.receiver(0), m.die_gnd(0)};
    const TransientResult r = transient_analyze(m.netlist(), opt);

    const VectorD w_out = r.waveform(m.out(0));
    const VectorD w_rx = r.waveform(m.receiver(0));
    // The edge arrives at the receiver about one delay after the output
    // crosses mid-rail.
    auto crossing = [&](const VectorD& w, double level) {
        for (std::size_t i = 0; i < w.size(); ++i)
            if (w[i] > level) return r.time[i];
        return -1.0;
    };
    const double t_out = crossing(w_out, 1.0);
    const double t_rx = crossing(w_rx, 1.0);
    ASSERT_GT(t_out, 0.0);
    ASSERT_GT(t_rx, 0.0);
    EXPECT_NEAR(t_rx - t_out, 0.5e-9, 0.2e-9);
    // Terminated line settles near half the drive? No: 50-ohm parallel
    // termination against the driver pull-up divider - just check the
    // receiver sees a healthy swing and the supply still bounces.
    EXPECT_GT(max_abs(w_rx), 1.5);
    EXPECT_GT(r.peak_excursion(m.die_gnd(0)), 0.01);
}
