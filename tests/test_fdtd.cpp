// Tests for the 2-D plane-pair FDTD solver: cavity-resonance physics, loss
// decay, and source behaviour.
#include <gtest/gtest.h>

#include <cmath>

#include "common/constants.hpp"
#include "fdtd/plane_fdtd.hpp"

using namespace pgsi;

namespace {

PlaneFdtdOptions small_plane() {
    PlaneFdtdOptions o;
    o.lx = 0.05;
    o.ly = 0.04;
    o.separation = 0.5e-3;
    o.eps_r = 4.5;
    o.nx = 25;
    o.ny = 20;
    return o;
}

// Dominant frequency by scanning a single-bin DFT over a band.
double dft_peak_frequency(const pgsi::VectorD& t, const pgsi::VectorD& v,
                          double t_start, double f_lo, double f_hi, int nf) {
    double best_f = f_lo, best_m = -1;
    for (int k = 0; k <= nf; ++k) {
        const double f = f_lo + (f_hi - f_lo) * k / nf;
        double re = 0, im = 0;
        for (std::size_t i = 0; i < t.size(); ++i) {
            if (t[i] < t_start) continue;
            const double ph = 2 * pgsi::pi * f * t[i];
            re += v[i] * std::cos(ph);
            im -= v[i] * std::sin(ph);
        }
        const double mag = re * re + im * im;
        if (mag > best_m) {
            best_m = mag;
            best_f = f;
        }
    }
    return best_f;
}

} // namespace

TEST(PlaneFdtd, CflRespected) {
    PlaneFdtdOptions o = small_plane();
    const PlaneFdtd sim(o);
    const double v = c0 / std::sqrt(o.eps_r);
    const double dx = o.lx / o.nx, dy = o.ly / o.ny;
    const double cfl = 1.0 / (v * std::sqrt(1 / (dx * dx) + 1 / (dy * dy)));
    EXPECT_LE(sim.dt(), cfl);
    o.dt = 2 * cfl;
    EXPECT_THROW(PlaneFdtd{o}, InvalidArgument);
}

TEST(PlaneFdtd, CavityResonanceFrequency) {
    // First resonance of an open-boundary plane pair along x:
    // f10 = c / (2·lx·sqrt(εr)).
    PlaneFdtdOptions o = small_plane();
    PlaneFdtd sim(o);
    sim.add_port({0.002, 0.02}, 50.0,
                 Source::pulse(0, 1, 0, 0.05e-9, 0.05e-9, 0.1e-9));
    const std::size_t probe =
        sim.add_port({0.048, 0.02}, 1e6, Source::dc(0.0)); // ~open probe
    const PlaneFdtdResult r = sim.run(8e-9);
    const double f10 = c0 / (2 * o.lx * std::sqrt(o.eps_r));
    const double f_est = dft_peak_frequency(r.time, r.port_voltage[probe], 2e-9,
                                            0.4 * f10, 1.8 * f10, 120);
    EXPECT_NEAR(f_est, f10, 0.15 * f10);
}

TEST(PlaneFdtd, PropagationDelayAcrossPlane) {
    PlaneFdtdOptions o = small_plane();
    PlaneFdtd sim(o);
    sim.add_port({0.002, 0.02}, 50.0,
                 Source::pulse(0, 5, 0, 0.1e-9, 0.1e-9, 3e-9));
    const std::size_t probe = sim.add_port({0.048, 0.02}, 50.0, Source::dc(0.0));
    const PlaneFdtdResult r = sim.run(2e-9);
    const double v = c0 / std::sqrt(o.eps_r);
    const double t_expected = 0.046 / v; // ~0.33 ns
    // Find the first time the far port rises above 10% of its max.
    const VectorD& w = r.port_voltage[probe];
    const double thresh = 0.1 * max_abs(w);
    double t_arrival = 0;
    for (std::size_t i = 0; i < w.size(); ++i)
        if (std::abs(w[i]) > thresh) {
            t_arrival = r.time[i];
            break;
        }
    EXPECT_NEAR(t_arrival, t_expected, 0.5 * t_expected);
}

TEST(PlaneFdtd, SheetLossDampsRinging) {
    PlaneFdtdOptions lossless = small_plane();
    PlaneFdtdOptions lossy = small_plane();
    lossy.sheet_resistance = 0.5; // exaggerated loss
    auto run_tail = [&](const PlaneFdtdOptions& o) {
        PlaneFdtd sim(o);
        sim.add_port({0.002, 0.02}, 50.0,
                     Source::pulse(0, 1, 0, 0.05e-9, 0.05e-9, 0.1e-9));
        const std::size_t probe =
            sim.add_port({0.048, 0.02}, 1e6, Source::dc(0.0));
        const PlaneFdtdResult r = sim.run(10e-9);
        double tail = 0;
        for (std::size_t i = 0; i < r.time.size(); ++i)
            if (r.time[i] > 8e-9)
                tail = std::max(tail, std::abs(r.port_voltage[probe][i]));
        return tail;
    };
    EXPECT_LT(run_tail(lossy), 0.3 * run_tail(lossless));
}

TEST(PlaneFdtd, QuiescentWithoutSource) {
    PlaneFdtd sim(small_plane());
    const std::size_t p = sim.add_port({0.02, 0.02}, 50.0, Source::dc(0.0));
    const PlaneFdtdResult r = sim.run(1e-9);
    EXPECT_DOUBLE_EQ(max_abs(r.port_voltage[p]), 0.0);
}

TEST(PlaneFdtd, RejectsBadGeometry) {
    PlaneFdtdOptions o = small_plane();
    o.nx = 2;
    EXPECT_THROW(PlaneFdtd{o}, InvalidArgument);
    o = small_plane();
    o.separation = 0;
    EXPECT_THROW(PlaneFdtd{o}, InvalidArgument);
}

TEST(PlaneFdtd, StableWithSmallCellsAndStiffPorts) {
    // Regression: the lumped-port term must be integrated simultaneously
    // with the field update. With small cells and a 50-ohm port the port
    // stiffness beta = dt/(Ca*dA*R) exceeds 2 and a split update explodes.
    PlaneFdtdOptions o;
    o.lx = 8e-3;
    o.ly = 8e-3;
    o.separation = 280e-6;
    o.eps_r = 9.6;
    o.sheet_resistance = 6e-3;
    o.nx = 48;
    o.ny = 48;
    PlaneFdtd sim(o);
    sim.add_port({1e-3, 4e-3}, 50.0,
                 Source::pulse(0, 1, 0, 0.03e-9, 0.03e-9, 0.06e-9));
    const std::size_t probe = sim.add_port({7e-3, 4e-3}, 50.0, Source::dc(0.0));
    const PlaneFdtdResult r = sim.run(3e-9);
    EXPECT_LT(max_abs(r.port_voltage[probe]), 2.0);
    EXPECT_GT(max_abs(r.port_voltage[probe]), 1e-3); // signal actually arrives
}
