// Tests for the AC small-signal analysis.
#include <gtest/gtest.h>

#include <cmath>

#include "circuit/ac.hpp"
#include "common/constants.hpp"

using namespace pgsi;

TEST(Ac, RcLowpass) {
    Netlist nl;
    const NodeId in = nl.node("in");
    const NodeId out = nl.node("out");
    nl.add_vsource("V1", in, nl.ground(), Source::dc(0.0).set_ac(1.0));
    const double r = 1e3, c = 1e-9;
    nl.add_resistor("R1", in, out, r);
    nl.add_capacitor("C1", out, nl.ground(), c);
    const double f3db = 1.0 / (2 * pi * r * c);
    const AcSolution s = ac_analyze(nl, f3db);
    EXPECT_NEAR(std::abs(s.v(out)), 1.0 / std::sqrt(2.0), 1e-6);
    EXPECT_NEAR(std::arg(s.v(out)), -pi / 4, 1e-6);
}

TEST(Ac, SeriesRlcResonance) {
    Netlist nl;
    const NodeId in = nl.node("in");
    const NodeId m = nl.node("m");
    const NodeId out = nl.node("out");
    nl.add_vsource("V1", in, nl.ground(), Source::dc(0.0).set_ac(1.0));
    const double r = 10.0, l = 100e-9, c = 100e-12;
    nl.add_resistor("R1", in, m, r);
    nl.add_inductor("L1", m, out, l);
    nl.add_capacitor("C1", out, nl.ground(), c);
    const double f0 = 1.0 / (2 * pi * std::sqrt(l * c));
    // At resonance the current is limited only by R: I = 1/R, and the
    // voltage across the capacitor is Q = (1/R)·sqrt(L/C).
    const AcSolution s = ac_analyze(nl, f0);
    const double q = std::sqrt(l / c) / r;
    EXPECT_NEAR(std::abs(s.v(out)), q, 0.01 * q);
}

TEST(Ac, InductorSeriesResistance) {
    Netlist nl;
    const NodeId in = nl.node("in");
    nl.add_vsource("V1", in, nl.ground(), Source::dc(0.0).set_ac(1.0));
    nl.add_inductor("L1", in, nl.ground(), 1e-6, 50.0);
    const AcSolution s = ac_analyze(nl, 1e3); // ωL tiny: current ≈ 1/50
    EXPECT_NEAR(std::abs(s.vsource_current[0]), 1.0 / 50.0, 1e-4);
}

TEST(Ac, MutualCouplingTransformer) {
    // Perfect-ish transformer: k = 0.999, equal L. Secondary open: V2 ≈ k·V1.
    Netlist nl;
    const NodeId p = nl.node("p");
    const NodeId s2 = nl.node("s");
    nl.add_vsource("V1", p, nl.ground(), Source::dc(0.0).set_ac(1.0));
    nl.add_inductor("Lp", p, nl.ground(), 1e-6);
    nl.add_inductor("Ls", s2, nl.ground(), 1e-6);
    nl.add_mutual("K1", "Lp", "Ls", 0.999);
    // Tiny load so the secondary node is not floating.
    nl.add_resistor("Rl", s2, nl.ground(), 1e9);
    const AcSolution sol = ac_analyze(nl, 10e6);
    EXPECT_NEAR(std::abs(sol.v(s2)), 0.999, 5e-3);
}

TEST(Ac, CurrentSourceIntoR) {
    Netlist nl;
    const NodeId a = nl.node("a");
    nl.add_isource("I1", nl.ground(), a, Source::dc(0.0).set_ac(2e-3));
    nl.add_resistor("R1", a, nl.ground(), 500.0);
    const AcSolution s = ac_analyze(nl, 1e6);
    EXPECT_NEAR(std::abs(s.v(a)), 1.0, 1e-9);
}

TEST(Ac, SweepGrids) {
    const VectorD lg = log_space(1e6, 1e9, 10);
    EXPECT_NEAR(lg.front(), 1e6, 1.0);
    EXPECT_NEAR(lg.back(), 1e9, 1.0);
    EXPECT_EQ(lg.size(), 31u);
    const VectorD ln = lin_space(0.0, 10.0, 11);
    EXPECT_DOUBLE_EQ(ln[5], 5.0);
}

TEST(Ac, TlineQuarterWaveTransformer) {
    // A quarter-wave line of impedance Z0 transforms a load R_L to Z0²/R_L.
    Netlist nl;
    const NodeId in = nl.node("in");
    const NodeId out = nl.node("out");
    MtlParameters p;
    p.l = MatrixD{{250e-9}};
    p.c = MatrixD{{100e-12}}; // Z0 = 50 Ω, v = 2e8 m/s
    const double len = 0.5;   // delay 2.5 ns -> quarter wave at 100 MHz
    auto model = std::make_shared<ModalTline>(p, len);
    nl.add_tline("T1", {in}, {out}, model);
    nl.add_resistor("Rload", out, nl.ground(), 100.0);
    // Drive with 1 A AC current, measure input impedance as V(in).
    nl.add_isource("I1", nl.ground(), in, Source::dc(0.0).set_ac(1.0));
    const AcSolution s = ac_analyze(nl, 100e6);
    EXPECT_NEAR(std::abs(s.v(in)), 2500.0 / 100.0, 0.5);
}
