// Restarted GMRES against dense LU on complex systems.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "common/error.hpp"
#include "common/robust.hpp"
#include "numeric/gmres.hpp"
#include "numeric/lu.hpp"

using namespace pgsi;

namespace {

// Random diagonally dominant (hence well-conditioned) complex matrix.
MatrixC random_system(std::size_t n, unsigned seed) {
    std::mt19937 rng(seed);
    std::uniform_real_distribution<double> u(-1.0, 1.0);
    MatrixC a(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) a(i, j) = Complex(u(rng), u(rng));
        a(i, i) += Complex(2.0 * static_cast<double>(n), 0.5);
    }
    return a;
}

VectorC random_vec(std::size_t n, unsigned seed) {
    std::mt19937 rng(seed);
    std::uniform_real_distribution<double> u(-1.0, 1.0);
    VectorC b(n);
    for (std::size_t i = 0; i < n; ++i) b[i] = Complex(u(rng), u(rng));
    return b;
}

LinearOpC matrix_op(const MatrixC& a) {
    return [&a](const VectorC& x, VectorC& y) {
        const std::size_t n = a.rows();
        y.resize(n);
        for (std::size_t i = 0; i < n; ++i) {
            Complex s{};
            for (std::size_t j = 0; j < n; ++j) s += a(i, j) * x[j];
            y[i] = s;
        }
    };
}

double max_abs_diff(const VectorC& a, const std::vector<Complex>& b) {
    double m = 0;
    for (std::size_t i = 0; i < a.size(); ++i)
        m = std::max(m, std::abs(a[i] - b[i]));
    return m;
}

} // namespace

TEST(Gmres, MatchesLuOnWellConditionedSystems) {
    for (const std::size_t n : {5u, 20u, 60u}) {
        const MatrixC a = random_system(n, 11u + static_cast<unsigned>(n));
        const VectorC b = random_vec(n, 5u + static_cast<unsigned>(n));
        const std::vector<Complex> ref = Lu<Complex>(a).solve(b);

        VectorC x(n, Complex{});
        GmresOptions opt;
        opt.tol = 1e-12;
        const GmresResult res = gmres(matrix_op(a), b, x, opt);
        EXPECT_TRUE(res.converged);
        EXPECT_LE(res.residual, opt.tol);
        EXPECT_LT(max_abs_diff(x, ref), 1e-10);
    }
}

TEST(Gmres, RestartCyclesStillConverge) {
    const std::size_t n = 40;
    const MatrixC a = random_system(n, 3u);
    const VectorC b = random_vec(n, 4u);
    const std::vector<Complex> ref = Lu<Complex>(a).solve(b);

    VectorC x(n, Complex{});
    GmresOptions opt;
    opt.restart = 5; // force many cycles
    opt.tol = 1e-11;
    const GmresResult res = gmres(matrix_op(a), b, x, opt);
    EXPECT_TRUE(res.converged);
    EXPECT_GE(res.restarts, 2u);
    EXPECT_LT(max_abs_diff(x, ref), 1e-9);
}

TEST(Gmres, DiagonalPreconditionerReducesIterations) {
    // Strongly scaled diagonal: unpreconditioned GMRES needs many more
    // iterations than Jacobi-preconditioned GMRES.
    const std::size_t n = 50;
    MatrixC a = random_system(n, 9u);
    for (std::size_t i = 0; i < n; ++i) {
        const double s = 1.0 + 1e3 * static_cast<double>(i) / n;
        for (std::size_t j = 0; j < n; ++j) a(i, j) *= s;
    }
    const VectorC b = random_vec(n, 10u);
    const std::vector<Complex> ref = Lu<Complex>(a).solve(b);

    VectorC dinv(n);
    for (std::size_t i = 0; i < n; ++i) dinv[i] = 1.0 / a(i, i);
    const LinearOpC jacobi = [&dinv](const VectorC& x, VectorC& y) {
        y.resize(x.size());
        for (std::size_t i = 0; i < x.size(); ++i) y[i] = dinv[i] * x[i];
    };

    GmresOptions opt;
    opt.tol = 1e-11;
    VectorC xp(n, Complex{}), xu(n, Complex{});
    const GmresResult plain = gmres(matrix_op(a), b, xu, opt);
    const GmresResult prec = gmres(matrix_op(a), b, xp, opt, jacobi);
    EXPECT_TRUE(prec.converged);
    EXPECT_LT(max_abs_diff(xp, ref), 1e-9);
    if (plain.converged) {
        EXPECT_LE(prec.iterations, plain.iterations);
    }
}

TEST(Gmres, WarmStartFromExactSolutionTakesNoIterations) {
    const std::size_t n = 12;
    const MatrixC a = random_system(n, 21u);
    const VectorC b = random_vec(n, 22u);
    const std::vector<Complex> ref = Lu<Complex>(a).solve(b);

    VectorC x(ref.begin(), ref.end());
    const GmresResult res = gmres(matrix_op(a), b, x, {});
    EXPECT_TRUE(res.converged);
    EXPECT_EQ(res.iterations, 0u);
    // One operator application establishes the warm guess is already exact.
    EXPECT_EQ(res.matvecs, 1u);
}

TEST(Gmres, ZeroRhsReturnsZero) {
    const MatrixC a = random_system(6, 2u);
    const VectorC b(6, Complex{});
    VectorC x = random_vec(6, 1u); // nonzero initial guess must be discarded
    const GmresResult res = gmres(matrix_op(a), b, x, {});
    EXPECT_TRUE(res.converged);
    EXPECT_EQ(res.matvecs, 0u);
    for (const Complex& v : x) EXPECT_EQ(v, Complex{});
}

TEST(Gmres, ZeroInitialGuessSkipsInitialResidualMatvec) {
    // With x0 == 0 the initial residual is b and the relative residual is
    // exactly 1 — no operator application is needed to start. Every matvec
    // is then accounted for by Arnoldi steps plus one true-residual
    // recomputation per cycle (and per estimate retry).
    const std::size_t n = 24;
    const MatrixC a = random_system(n, 41u);
    const VectorC b = random_vec(n, 42u);

    VectorC x(n, Complex{});
    GmresOptions opt;
    opt.tol = 1e-12;
    const GmresResult cold = gmres(matrix_op(a), b, x, opt);
    EXPECT_TRUE(cold.converged);
    EXPECT_EQ(cold.matvecs,
              cold.iterations + cold.restarts + cold.estimate_retries);

    // A nonzero (inexact) warm start pays exactly one extra matvec for the
    // initial true residual.
    VectorC xw(n, Complex(0.1, 0.0));
    const GmresResult warm = gmres(matrix_op(a), b, xw, opt);
    EXPECT_TRUE(warm.converged);
    EXPECT_EQ(warm.matvecs,
              warm.iterations + warm.restarts + warm.estimate_retries + 1);
}

TEST(Gmres, IterationBudgetExhaustionReportsNotConverged) {
    const std::size_t n = 30;
    const MatrixC a = random_system(n, 33u);
    const VectorC b = random_vec(n, 34u);
    VectorC x(n, Complex{});
    GmresOptions opt;
    opt.restart = 2;
    opt.max_iterations = 2;
    opt.tol = 1e-14;
    const GmresResult res = gmres(matrix_op(a), b, x, opt);
    EXPECT_FALSE(res.converged);
    EXPECT_GT(res.residual, opt.tol);
}

TEST(Gmres, RejectsInvalidArguments) {
    const MatrixC a = random_system(4, 1u);
    const VectorC b = random_vec(4, 2u);
    VectorC x(3, Complex{});
    EXPECT_THROW(gmres(matrix_op(a), b, x, {}), InvalidArgument);
    x.assign(4, Complex{});
    GmresOptions opt;
    opt.restart = 0;
    EXPECT_THROW(gmres(matrix_op(a), b, x, opt), InvalidArgument);
}

TEST(Gmres, IllConditionedOperatorTriggersEstimateRetryAndStillConverges) {
    // Geometrically graded diagonal spanning 8 decades with weak random
    // coupling: round-off in the Arnoldi recurrence makes the Givens
    // residual estimate claim convergence before the true residual agrees.
    // The solver must detect the disagreement, keep iterating within its
    // budget, and converge for real — not return an optimistic result.
    const std::size_t n = 60;
    std::mt19937 rng(7);
    std::uniform_real_distribution<double> u(-1.0, 1.0);
    MatrixC a(n, n);
    const double span = 1e8;
    for (std::size_t i = 0; i < n; ++i) {
        const double d = std::pow(span, -double(i) / double(n - 1));
        for (std::size_t j = 0; j < n; ++j)
            a(i, j) = Complex(u(rng), u(rng)) * 1e-3 * d;
        a(i, i) += Complex(d, 0.0);
    }
    VectorC b(n);
    for (std::size_t i = 0; i < n; ++i) b[i] = Complex(u(rng), u(rng));

    GmresOptions opt;
    opt.restart = 80;
    opt.max_iterations = 400;
    opt.tol = 1e-9;
    VectorC x(n, Complex{});
    const GmresResult res = gmres(matrix_op(a), b, x, opt);

    EXPECT_TRUE(res.converged);
    EXPECT_GE(res.estimate_retries, 1u);
    EXPECT_LE(res.residual, opt.tol);

    // Independently recompute |b - A x| / |b|: the reported residual must be
    // the true one.
    VectorC ax(n);
    matrix_op(a)(x, ax);
    double num = 0, den = 0;
    for (std::size_t i = 0; i < n; ++i) {
        num += std::norm(b[i] - ax[i]);
        den += std::norm(b[i]);
    }
    EXPECT_LE(std::sqrt(num / den), opt.tol * 1.01);
}

namespace {

// Correlated right-hand sides: a shared base vector plus small per-column
// perturbations, the shape warm-started sweep residuals take in practice.
std::vector<VectorC> correlated_rhs(std::size_t n, std::size_t p,
                                    unsigned seed, double spread) {
    const VectorC base = random_vec(n, seed);
    std::vector<VectorC> b(p, base);
    for (std::size_t i = 1; i < p; ++i) {
        const VectorC d = random_vec(n, seed + 100u * static_cast<unsigned>(i));
        for (std::size_t t = 0; t < n; ++t) b[i][t] += spread * d[t];
    }
    return b;
}

} // namespace

TEST(BlockGmres, MatchesColumnByColumnSolvesAndLu) {
    const std::size_t n = 40, p = 4;
    const MatrixC a = random_system(n, 51u);
    const std::vector<VectorC> b = correlated_rhs(n, p, 52u, 1e-6);

    GmresOptions opt;
    opt.tol = 1e-12;
    std::vector<VectorC> x(p, VectorC(n, Complex{}));
    const BlockGmresResult blk = block_gmres(matrix_op(a), b, x, opt);
    EXPECT_TRUE(blk.converged);
    ASSERT_EQ(blk.residuals.size(), p);

    const Lu<Complex> lu(a);
    std::size_t column_matvecs = 0;
    for (std::size_t i = 0; i < p; ++i) {
        EXPECT_LE(blk.residuals[i], opt.tol);
        EXPECT_LT(max_abs_diff(x[i], lu.solve(b[i])), 1e-10);

        VectorC xc(n, Complex{});
        const GmresResult col = gmres(matrix_op(a), b[i], xc, opt);
        EXPECT_TRUE(col.converged);
        EXPECT_LT(max_abs_diff(xc, lu.solve(b[i])), 1e-10);
        column_matvecs += col.matvecs;
    }
    EXPECT_EQ(blk.worst_residual,
              *std::max_element(blk.residuals.begin(), blk.residuals.end()));
    // Correlated columns share the Arnoldi work: the block solve must beat
    // solving each column on its own.
    EXPECT_LT(blk.matvecs, column_matvecs);
}

TEST(BlockGmres, DeflatesEasyColumnsBeforeTheLastCycle) {
    // Force several seed cycles with a small restart window; the correlated
    // columns converge at different points, so at least one retires early.
    const std::size_t n = 40, p = 3;
    const MatrixC a = random_system(n, 61u);
    const std::vector<VectorC> b = correlated_rhs(n, p, 62u, 1e-5);

    GmresOptions opt;
    opt.restart = 8;
    opt.tol = 1e-11;
    std::vector<VectorC> x(p, VectorC(n, Complex{}));
    const BlockGmresResult res = block_gmres(matrix_op(a), b, x, opt);
    EXPECT_TRUE(res.converged);
    EXPECT_GE(res.cycles, 2u);
    EXPECT_GE(res.deflated, 1u);
}

TEST(BlockGmres, ZeroRhsColumnReturnsZeroWithoutWork) {
    const std::size_t n = 20;
    const MatrixC a = random_system(n, 71u);
    std::vector<VectorC> b{random_vec(n, 72u), VectorC(n, Complex{})};
    std::vector<VectorC> x{VectorC(n, Complex{}), random_vec(n, 73u)};
    const BlockGmresResult res = block_gmres(matrix_op(a), b, x, {});
    EXPECT_TRUE(res.converged);
    EXPECT_EQ(res.residuals[1], 0.0);
    for (const Complex& v : x[1]) EXPECT_EQ(v, Complex{});
    EXPECT_LT(max_abs_diff(x[0], Lu<Complex>(a).solve(b[0])), 1e-9);
}

TEST(BlockGmres, InjectedStallReportsFailureWithoutTouchingX) {
    const std::size_t n = 12, p = 2;
    const MatrixC a = random_system(n, 81u);
    const std::vector<VectorC> b = correlated_rhs(n, p, 82u, 0.1);
    std::vector<VectorC> x(p, VectorC(n, Complex(0.25, -0.5)));
    const std::vector<VectorC> x_before = x;

    robust::FaultInjector::arm("gmres.stall", 1);
    const BlockGmresResult res = block_gmres(matrix_op(a), b, x, {});
    robust::FaultInjector::disarm_all();

    EXPECT_FALSE(res.converged);
    EXPECT_EQ(res.worst_residual, 1.0);
    EXPECT_EQ(res.iterations, 0u);
    EXPECT_EQ(res.matvecs, 0u);
    for (std::size_t i = 0; i < p; ++i)
        for (std::size_t t = 0; t < n; ++t)
            EXPECT_EQ(x[i][t], x_before[i][t]);
}

TEST(BlockGmres, RejectsInvalidArguments) {
    const MatrixC a = random_system(4, 91u);
    std::vector<VectorC> b{random_vec(4, 92u), random_vec(4, 93u)};
    std::vector<VectorC> x(2, VectorC(4, Complex{}));
    EXPECT_THROW(block_gmres(matrix_op(a), {}, x, {}), InvalidArgument);

    std::vector<VectorC> x_short(1, VectorC(4, Complex{}));
    EXPECT_THROW(block_gmres(matrix_op(a), b, x_short, {}), InvalidArgument);

    std::vector<VectorC> b_ragged{random_vec(4, 92u), random_vec(3, 93u)};
    EXPECT_THROW(block_gmres(matrix_op(a), b_ragged, x, {}), InvalidArgument);

    GmresOptions opt;
    opt.restart = 0;
    EXPECT_THROW(block_gmres(matrix_op(a), b, x, opt), InvalidArgument);
}
