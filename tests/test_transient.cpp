// Tests for the transient engine: analytic RC/RL/LC responses, integrator
// behaviour, drivers, and the resumable stepper.
#include <gtest/gtest.h>

#include <cmath>

#include "circuit/transient.hpp"
#include "common/constants.hpp"

using namespace pgsi;

namespace {

Netlist rc_step_circuit(double r, double c) {
    Netlist nl;
    const NodeId in = nl.node("in");
    const NodeId out = nl.node("out");
    nl.add_vsource("V1", in, nl.ground(),
                   Source::pulse(0, 1, 0.0, 1e-12, 1e-12, 1.0));
    nl.add_resistor("R1", in, out, r);
    nl.add_capacitor("C1", out, nl.ground(), c);
    return nl;
}

} // namespace

TEST(Transient, RcStepResponse) {
    const double r = 1e3, c = 1e-9, tau = r * c;
    const Netlist nl = rc_step_circuit(r, c);
    TransientOptions opt;
    opt.dt = tau / 200;
    opt.tstop = 3 * tau;
    const TransientResult res = transient_analyze(nl, opt);
    const NodeId out = nl.find_node("out");
    const VectorD w = res.waveform(out);
    for (std::size_t i = 0; i < res.time.size(); ++i) {
        const double expect = 1.0 - std::exp(-res.time[i] / tau);
        EXPECT_NEAR(w[i], expect, 0.01) << "t=" << res.time[i];
    }
}

TEST(Transient, BackwardEulerAlsoConverges) {
    const double r = 1e3, c = 1e-9, tau = r * c;
    const Netlist nl = rc_step_circuit(r, c);
    TransientOptions opt;
    opt.dt = tau / 400;
    opt.tstop = 2 * tau;
    opt.method = Integrator::BackwardEuler;
    const TransientResult res = transient_analyze(nl, opt);
    const VectorD w = res.waveform(nl.find_node("out"));
    const double expect = 1.0 - std::exp(-res.time.back() / tau);
    EXPECT_NEAR(w.back(), expect, 0.02);
}

TEST(Transient, LcOscillationFrequencyAndAmplitude) {
    // Charged C discharging into L: v(t) = cos(ω0 t), lossless.
    Netlist nl;
    const NodeId a = nl.node("a");
    const double l = 1e-6, c = 1e-9;
    // Charge through a source that steps 1 -> stays (DC init at 1 V), then
    // oscillates after the source is isolated by a large R.
    nl.add_vsource("V1", nl.node("src"), nl.ground(), Source::dc(1.0));
    nl.add_resistor("Riso", nl.find_node("src"), a, 1e-3);
    nl.add_capacitor("C1", a, nl.ground(), c);
    nl.add_inductor("L1", a, nl.ground(), l);
    // DC: inductor shorts a to ground; current = 1/1e-3 = 1000 A... that is
    // not the oscillator we want. Instead: start from a current step.
    Netlist nl2;
    const NodeId b = nl2.node("b");
    nl2.add_capacitor("C1", b, nl2.ground(), c);
    nl2.add_inductor("L1", b, nl2.ground(), l);
    nl2.add_isource("I1", nl2.ground(), b,
                    Source::pulse(0, 1e-3, 0, 1e-12, 1e-12, 1.0));
    const double w0 = 1.0 / std::sqrt(l * c);
    TransientOptions opt;
    opt.dt = 2 * pi / w0 / 400;
    opt.tstop = 3 * 2 * pi / w0;
    const TransientResult res = transient_analyze(nl2, opt);
    const VectorD w = res.waveform(b);
    // Peak of the sine: I0·sqrt(L/C).
    const double vpk = 1e-3 * std::sqrt(l / c);
    EXPECT_NEAR(max_abs(w), vpk, 0.03 * vpk);
    // Estimate the frequency from the span between first and last zero
    // crossing (robust to where the window starts/ends).
    int crossings = 0;
    double t_first = 0, t_last = 0;
    for (std::size_t i = 1; i < w.size(); ++i)
        if ((w[i - 1] < 0) != (w[i] < 0)) {
            if (crossings == 0) t_first = res.time[i];
            t_last = res.time[i];
            ++crossings;
        }
    ASSERT_GT(crossings, 3);
    const double f_est = (crossings - 1) / 2.0 / (t_last - t_first);
    EXPECT_NEAR(f_est, w0 / (2 * pi), 0.05 * w0 / (2 * pi));
}

TEST(Transient, TrapezoidalEnergyConservation) {
    // Trapezoidal integration of a lossless LC must not gain or lose
    // amplitude appreciably over many cycles.
    Netlist nl;
    const NodeId b = nl.node("b");
    const double l = 1e-6, c = 1e-9;
    nl.add_capacitor("C1", b, nl.ground(), c);
    nl.add_inductor("L1", b, nl.ground(), l);
    nl.add_isource("I1", nl.ground(), b,
                   Source::pulse(0, 1e-3, 0, 1e-12, 1e-12, 1.0));
    const double period = 2 * pi * std::sqrt(l * c);
    TransientOptions opt;
    opt.dt = period / 200;
    opt.tstop = 20 * period;
    const TransientResult res = transient_analyze(nl, opt);
    const VectorD w = res.waveform(b);
    // Compare the peak in the final two periods with the global peak.
    double late_peak = 0;
    const std::size_t tail = w.size() - static_cast<std::size_t>(2 * 200);
    for (std::size_t i = tail; i < w.size(); ++i)
        late_peak = std::max(late_peak, std::abs(w[i]));
    EXPECT_NEAR(late_peak, max_abs(w), 0.02 * max_abs(w));
}

TEST(Transient, MutualInductorsShareFlux) {
    // Two coupled inductors driven differentially: k -> response scales.
    Netlist nl;
    const NodeId a = nl.node("a");
    const NodeId b = nl.node("b");
    const NodeId asrc = nl.node("asrc");
    nl.add_vsource("V1", asrc, nl.ground(),
                   Source::pulse(0, 1, 0, 1e-9, 1e-9, 10e-9));
    nl.add_resistor("Rs", asrc, a, 1.0);
    nl.add_inductor("La", a, nl.ground(), 10e-9);
    nl.add_inductor("Lb", b, nl.ground(), 10e-9);
    nl.add_mutual("K", "La", "Lb", 0.5);
    nl.add_resistor("Rb", b, nl.ground(), 50.0);
    TransientOptions opt;
    opt.dt = 10e-12;
    opt.tstop = 5e-9;
    const TransientResult res = transient_analyze(nl, opt);
    // Induced voltage appears on the victim inductor during the edge.
    EXPECT_GT(res.peak_abs(b), 0.05);
}

TEST(Transient, DriverSwitchingDrawsSupplyCurrent) {
    Netlist nl;
    const NodeId vcc = nl.node("vcc");
    const NodeId out = nl.node("out");
    nl.add_vsource("Vdd", nl.node("vdd"), nl.ground(), Source::dc(5.0));
    nl.add_inductor("Lpkg", nl.find_node("vdd"), vcc, 5e-9);
    DriverParams p;
    p.input = Source::pulse(0, 1, 1e-9, 0.5e-9, 0.5e-9, 5e-9);
    p.c_out = 2e-12;
    nl.add_driver("D1", out, vcc, nl.ground(), p);
    nl.add_capacitor("Cload", out, nl.ground(), 20e-12);
    TransientOptions opt;
    opt.dt = 10e-12;
    opt.tstop = 8e-9;
    const TransientResult res = transient_analyze(nl, opt);
    // Output swings up toward Vdd during the pulse...
    const VectorD w_out = res.waveform(out);
    EXPECT_GT(w_out[static_cast<std::size_t>(4e-9 / opt.dt)], 4.0);
    // ...and the local Vcc shows inductive droop during the edge.
    EXPECT_GT(res.peak_excursion(vcc), 0.05);
}

TEST(Transient, StepperMatchesBatchAnalysis) {
    const Netlist nl = rc_step_circuit(1e3, 1e-9);
    TransientOptions opt;
    opt.dt = 5e-9;
    opt.tstop = 2e-6;
    const TransientResult res = transient_analyze(nl, opt);

    TransientStepper st(nl, opt.dt);
    const NodeId out = nl.find_node("out");
    const VectorD w = res.waveform(out);
    for (std::size_t i = 1; i < res.time.size(); ++i) {
        st.step();
        EXPECT_NEAR(st.node_voltage(out), w[i], 1e-12);
    }
}

TEST(Transient, ProbeSubsetAndErrors) {
    const Netlist nl = rc_step_circuit(1e3, 1e-9);
    TransientOptions opt;
    opt.dt = 1e-8;
    opt.tstop = 1e-6;
    opt.probes = {nl.find_node("out")};
    const TransientResult res = transient_analyze(nl, opt);
    EXPECT_EQ(res.probes.size(), 1u);
    EXPECT_THROW(res.waveform(nl.find_node("in")), InvalidArgument);
}

TEST(Transient, RejectsBadOptions) {
    const Netlist nl = rc_step_circuit(1e3, 1e-9);
    TransientOptions opt;
    opt.dt = 0;
    opt.tstop = 1e-6;
    EXPECT_THROW(transient_analyze(nl, opt), InvalidArgument);
}

TEST(Transient, ExactMultipleStopTimePinsSampleCount) {
    // Regression: tstop = 1e-8 with dt = 1e-9 divides to 10.000000000000002;
    // ceil() used to add an 11th step past tstop. Exactly 10 steps (11
    // samples counting t = 0) must be taken.
    const Netlist nl = rc_step_circuit(1e3, 1e-9);
    TransientOptions opt;
    opt.dt = 1e-9;
    opt.tstop = 1e-8;
    const TransientResult res = transient_analyze(nl, opt);
    ASSERT_EQ(res.time.size(), 11u);
    EXPECT_NEAR(res.time.back(), 1e-8, 1e-20);
    EXPECT_LE(res.time.back(), 1e-8 * (1.0 + 1e-12));
}

TEST(Transient, NonMultipleStopTimeStillCoversTstop) {
    // A tstop that is not a multiple of dt keeps the covering ceil behavior.
    const Netlist nl = rc_step_circuit(1e3, 1e-9);
    TransientOptions opt;
    opt.dt = 3e-9;
    opt.tstop = 1e-8; // 3.33 steps -> 4 steps, 5 samples
    const TransientResult res = transient_analyze(nl, opt);
    ASSERT_EQ(res.time.size(), 5u);
    EXPECT_GE(res.time.back(), opt.tstop);
}
