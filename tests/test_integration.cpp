// Cross-module integration tests: the full extraction → simulation pipeline
// on small structures, checking physics end to end.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "circuit/parser.hpp"
#include "circuit/sparams.hpp"
#include "circuit/transient.hpp"
#include "common/constants.hpp"
#include "em/solver.hpp"
#include "extract/equivalent_circuit.hpp"
#include "fdtd/plane_fdtd.hpp"
#include "tline2d/mtl_extract.hpp"

using namespace pgsi;

namespace {
// Dominant frequency by scanning a single-bin DFT over a band.
double dft_peak_frequency(const pgsi::VectorD& t, const pgsi::VectorD& v,
                          double t_start, double f_lo, double f_hi, int nf) {
    double best_f = f_lo, best_m = -1;
    for (int k = 0; k <= nf; ++k) {
        const double f = f_lo + (f_hi - f_lo) * k / nf;
        double re = 0, im = 0;
        for (std::size_t i = 0; i < t.size(); ++i) {
            if (t[i] < t_start) continue;
            const double ph = 2 * pgsi::pi * f * t[i];
            re += v[i] * std::cos(ph);
            im -= v[i] * std::sin(ph);
        }
        const double mag = re * re + im * im;
        if (mag > best_m) {
            best_m = mag;
            best_f = f;
        }
    }
    return best_f;
}

// std::to_string truncates small element values; use full precision.
std::string num(double v) {
    std::ostringstream os;
    os.precision(15);
    os << v;
    return os.str();
}
} // namespace

TEST(Integration, PlaneResonanceCircuitVsFdtd) {
    // Same plane pair through two independent engines: the extracted RLC
    // circuit and the FDTD solver must ring at the same cavity frequency.
    const double lx = 0.05, ly = 0.04, d = 0.5e-3, er = 4.5;

    // --- extracted circuit path ---
    ConductorShape s;
    s.outline = Polygon::rectangle(0, 0, lx, ly);
    s.z = d;
    const PlaneBem bem(RectMesh({s}, 0.005), Greens::homogeneous(er, true),
                       BemOptions{});
    // Frequency-domain scan: exact element-wise map.
    const EquivalentCircuit ec =
        CircuitExtractor(bem, ExtractionOptions{0.0, true, false}).extract_full();
    const std::size_t port = bem.mesh().nearest_node({0.002, 0.02}, 0);
    // Input impedance peaks near the first cavity resonance.
    const double f10 = c0 / (2 * lx * std::sqrt(er));
    double best_f = 0, best_z = 0;
    for (double f = 0.4 * f10; f < 1.6 * f10; f += f10 / 100) {
        const double z = std::abs(ec.impedance(f, {port})(0, 0));
        if (z > best_z) {
            best_z = z;
            best_f = f;
        }
    }
    EXPECT_NEAR(best_f, f10, 0.12 * f10);

    // --- FDTD path ---
    PlaneFdtdOptions fo;
    fo.lx = lx;
    fo.ly = ly;
    fo.separation = d;
    fo.eps_r = er;
    fo.nx = 25;
    fo.ny = 20;
    PlaneFdtd sim(fo);
    sim.add_port({0.002, 0.02}, 50.0,
                 Source::pulse(0, 1, 0, 0.05e-9, 0.05e-9, 0.1e-9));
    const std::size_t probe = sim.add_port({0.048, 0.02}, 1e6, Source::dc(0.0));
    const PlaneFdtdResult r = sim.run(8e-9);
    const double f_fdtd = dft_peak_frequency(r.time, r.port_voltage[probe],
                                             2e-9, 0.4 * f10, 1.8 * f10, 120);
    EXPECT_NEAR(f_fdtd, best_f, 0.15 * best_f);
}

TEST(Integration, ExtractedMicrostripDelayInTransient) {
    // 2-D extraction feeds the modal line; the far-end edge must arrive at
    // the extracted delay.
    const MtlParameters p = extract_microstrip({{0.0, 1e-3}}, 4.5, 1e-3);
    const LineFigures f = line_figures(p);
    const double len = 0.15;
    auto model = std::make_shared<ModalTline>(p, len);
    const double tau = f.delay_per_m * len;

    Netlist nl;
    const NodeId src = nl.node("src");
    const NodeId in = nl.node("in");
    const NodeId out = nl.node("out");
    nl.add_vsource("V1", src, nl.ground(),
                   Source::pulse(0, 2, 0, 0.05e-9, 0.05e-9, 3e-9));
    nl.add_resistor("Rs", src, in, f.z0);
    nl.add_tline("T1", {in}, {out}, model);
    nl.add_resistor("Rl", out, nl.ground(), f.z0);
    TransientOptions opt;
    opt.dt = 5e-12;
    opt.tstop = 3 * tau;
    const TransientResult res = transient_analyze(nl, opt);
    const VectorD w = res.waveform(out);
    double t_arrival = 0;
    for (std::size_t i = 0; i < w.size(); ++i)
        if (w[i] > 0.5) {
            t_arrival = res.time[i];
            break;
        }
    EXPECT_NEAR(t_arrival, tau, 0.1 * tau);
}

TEST(Integration, SParamsOfExtractedPlaneReciprocalAndPassive) {
    ConductorShape s;
    s.outline = Polygon::rectangle(0, 0, 0.04, 0.03);
    s.z = 0.5e-3;
    s.sheet_resistance = 6e-3;
    const PlaneBem bem(RectMesh({s}, 0.005), Greens::homogeneous(4.5, true),
                       BemOptions{});
    const std::size_t p1 = bem.mesh().nearest_node({0.005, 0.005}, 0);
    const std::size_t p2 = bem.mesh().nearest_node({0.035, 0.025}, 0);
    const EquivalentCircuit ec = CircuitExtractor(bem).extract_full();
    for (double f : {50e6, 500e6, 2e9}) {
        const MatrixC z = ec.impedance(f, {p1, p2});
        const MatrixC sm = z_to_s(z, 50.0);
        EXPECT_NEAR(std::abs(sm(0, 1) - sm(1, 0)), 0.0, 1e-8) << f;
        for (int i = 0; i < 2; ++i)
            for (int j = 0; j < 2; ++j)
                EXPECT_LT(std::abs(sm(i, j)), 1.0 + 1e-9) << f;
    }
}

TEST(Integration, SpiceRoundTripOfEquivalentCircuit) {
    // Export the extracted circuit as SPICE text and re-simulate through the
    // parser: port impedance must match the in-memory model.
    ConductorShape s;
    s.outline = Polygon::rectangle(0, 0, 0.03, 0.02);
    s.z = 0.5e-3;
    s.sheet_resistance = 6e-3;
    const PlaneBem bem(RectMesh({s}, 0.01), Greens::homogeneous(4.5, true),
                       BemOptions{});
    const EquivalentCircuit ec = CircuitExtractor(bem).extract_full();

    // Build the deck: subckt flattened by hand (our parser has no .subckt),
    // so emit element cards directly.
    std::string deck = "extracted plane\n";
    {
        // Reuse the netlist stamping and then serialize through the circuit.
        Netlist nl;
        std::vector<NodeId> map;
        for (std::size_t k = 0; k < ec.node_count(); ++k)
            map.push_back(nl.add_node("n" + std::to_string(k)));
        ec.stamp(nl, map, nl.ground(), "pg");
        for (const Resistor& r : nl.resistors())
            deck += r.name + " " + nl.node_name(r.a) + " " + nl.node_name(r.b) +
                    " " + num(r.r) + "\n";
        for (const Capacitor& c : nl.capacitors())
            deck += c.name + " " + nl.node_name(c.a) + " " + nl.node_name(c.b) +
                    " " + num(c.c) + "\n";
        for (const Inductor& l : nl.inductors()) {
            // Split series R+L into two cards for SPICE compatibility.
            if (l.r > 0) {
                deck += "R" + l.name + " " + nl.node_name(l.a) + " mid" + l.name +
                        " " + num(l.r) + "\n";
                deck += l.name + " mid" + l.name + " " + nl.node_name(l.b) + " " +
                        num(l.l) + "\n";
            } else {
                deck += l.name + " " + nl.node_name(l.a) + " " +
                        nl.node_name(l.b) + " " + num(l.l) + "\n";
            }
        }
    }
    deck += "I1 0 n0 AC 1\n.end\n";

    const ParsedDeck parsed = parse_spice(deck);
    const double f = 80e6;
    const AcSolution sol = ac_analyze(parsed.netlist, f);
    const Complex z_deck = sol.v(parsed.netlist.find_node("n0"));
    const Complex z_model = ec.impedance(f, {0})(0, 0);
    EXPECT_NEAR(std::abs(z_deck), std::abs(z_model), 0.02 * std::abs(z_model));
}
