// Tests for the nonlinear table-conductance element and the Newton solvers
// (DC, transient, AC linearization).
#include <gtest/gtest.h>

#include <cmath>

#include "circuit/ac.hpp"
#include "circuit/transient.hpp"
#include "common/constants.hpp"

using namespace pgsi;

namespace {

// Piecewise "diode": off below 0.6 V, then 0.1 S slope.
void add_diode(Netlist& nl, const std::string& name, NodeId a, NodeId b) {
    VectorD v, i;
    for (double x = -5.0; x <= 0.6; x += 0.2) {
        v.push_back(x);
        i.push_back(0.0);
    }
    for (double x = 0.8; x <= 6.0; x += 0.2) {
        v.push_back(x);
        i.push_back((x - 0.6) * 0.1);
    }
    nl.add_table_conductance(name, a, b, std::move(v), std::move(i));
}

} // namespace

TEST(Nonlinear, DcDiodeResistorDivider) {
    // 5 V source, 100 ohm, diode to ground: i = (v-0.6)*0.1 above 0.6 V.
    // KCL: (5 - v)/100 = 0.1 (v - 0.6)  ->  v = (0.05 + 0.06) / 0.11 = 1.0 V.
    Netlist nl;
    const NodeId in = nl.node("in");
    const NodeId d = nl.node("d");
    nl.add_vsource("V1", in, nl.ground(), Source::dc(5.0));
    nl.add_resistor("R1", in, d, 100.0);
    add_diode(nl, "D1", d, nl.ground());
    const DcSolution s = dc_operating_point(nl);
    EXPECT_NEAR(s.v(d), 1.0, 1e-6);
}

TEST(Nonlinear, DcDiodeOffRegion) {
    // 0.3 V drive: diode off, node floats to the source value through R.
    Netlist nl;
    const NodeId in = nl.node("in");
    const NodeId d = nl.node("d");
    nl.add_vsource("V1", in, nl.ground(), Source::dc(0.3));
    nl.add_resistor("R1", in, d, 100.0);
    add_diode(nl, "D1", d, nl.ground());
    nl.add_resistor("Rleak", d, nl.ground(), 1e7);
    const DcSolution s = dc_operating_point(nl);
    EXPECT_NEAR(s.v(d), 0.3, 1e-3);
}

TEST(Nonlinear, TransientClampLimitsOvershoot) {
    // Unterminated 50-ohm line doubles the incident wave to ~4 V; a clamp
    // diode to a 3.3 V rail holds the receiver near rail + 0.6 V.
    auto make = [&](bool clamped) {
        Netlist nl;
        const NodeId src = nl.node("src");
        const NodeId in = nl.node("in");
        const NodeId out = nl.node("out");
        nl.add_vsource("V1", src, nl.ground(),
                       Source::pulse(0, 4, 0, 0.2e-9, 0.2e-9, 6e-9));
        nl.add_resistor("Rs", src, in, 50.0);
        MtlParameters p;
        p.l = MatrixD{{250e-9}};
        p.c = MatrixD{{100e-12}};
        nl.add_tline("T1", {in}, {out},
                     std::make_shared<ModalTline>(p, 0.2));
        nl.add_resistor("Rl", out, nl.ground(), 1e6);
        if (clamped) {
            const NodeId rail = nl.node("rail");
            nl.add_vsource("Vrail", rail, nl.ground(), Source::dc(3.3));
            add_diode(nl, "Dclamp", out, rail);
        }
        TransientOptions opt;
        opt.dt = 20e-12;
        opt.tstop = 5e-9;
        opt.probes = {out};
        return transient_analyze(nl, opt).peak_abs(out);
    };
    const double open_peak = make(false);
    const double clamped_peak = make(true);
    EXPECT_GT(open_peak, 3.8);       // full doubling
    EXPECT_LT(clamped_peak, 3.95);   // clamp absorbs the overshoot
    EXPECT_GT(open_peak, clamped_peak + 0.05);
}

TEST(Nonlinear, AcLinearizesAtOperatingPoint) {
    // Bias the diode at 1.0 V (from the DC test): small-signal conductance
    // is the 0.1 S table slope, so a 1 mA AC probe sees R1 || 10 ohm.
    Netlist nl;
    const NodeId in = nl.node("in");
    const NodeId d = nl.node("d");
    nl.add_vsource("V1", in, nl.ground(), Source::dc(5.0));
    nl.add_resistor("R1", in, d, 100.0);
    add_diode(nl, "D1", d, nl.ground());
    nl.add_isource("Iprobe", nl.ground(), d, Source::dc(0.0).set_ac(1e-3));
    const AcSolution s = ac_analyze(nl, 1e6);
    const double r_expected = 1.0 / (1.0 / 100.0 + 0.1);
    EXPECT_NEAR(std::abs(s.v(d)), 1e-3 * r_expected, 1e-6);
}

TEST(Nonlinear, StepperHandlesTables) {
    Netlist nl;
    const NodeId in = nl.node("in");
    const NodeId d = nl.node("d");
    nl.add_vsource("V1", in, nl.ground(),
                   Source::pulse(0, 5, 0, 0.5e-9, 0.5e-9, 4e-9));
    nl.add_resistor("R1", in, d, 100.0);
    add_diode(nl, "D1", d, nl.ground());
    nl.add_capacitor("C1", d, nl.ground(), 5e-12);
    TransientStepper st(nl, 20e-12);
    double peak = 0;
    for (int k = 0; k < 200; ++k) {
        st.step();
        peak = std::max(peak, st.node_voltage(d));
    }
    // Clamped near the 1.0 V operating point (plus dynamics).
    EXPECT_GT(peak, 0.8);
    EXPECT_LT(peak, 1.5);
}

TEST(Nonlinear, TableValidation) {
    Netlist nl;
    const NodeId a = nl.node("a");
    EXPECT_THROW(
        nl.add_table_conductance("bad", a, nl.ground(), {1.0, 0.5}, {0.0, 1.0}),
        InvalidArgument); // non-monotone abscissae
}
