// Tests for the direct PEEC netlist realization: AC agreement with the
// field solver and unconditional transient stability on multi-net
// structures (where the element-wise branch circuit is not usable).
#include <gtest/gtest.h>

#include <cmath>

#include "circuit/ac.hpp"
#include "circuit/transient.hpp"
#include "em/solver.hpp"
#include "extract/peec_stamp.hpp"

using namespace pgsi;

namespace {

PlaneBem strip_pair() {
    // Two coplanar strips over a reference plane — a two-net structure.
    ConductorShape a, b;
    a.outline = Polygon::rectangle(0, 0, 0.06, 0.006);
    a.z = 1e-3;
    a.sheet_resistance = 5e-3;
    a.name = "a";
    b = a;
    b.outline = Polygon::rectangle(0, 0.012, 0.06, 0.018);
    b.name = "b";
    return PlaneBem(RectMesh({a, b}, 0.006), Greens::homogeneous(4.5, true),
                    BemOptions{});
}

} // namespace

TEST(Peec, AcMatchesDirectSolver) {
    const PlaneBem bem = strip_pair();
    Netlist nl;
    std::vector<NodeId> map;
    for (std::size_t k = 0; k < bem.node_count(); ++k)
        map.push_back(nl.add_node("m" + std::to_string(k)));
    stamp_peec(nl, bem, map, nl.ground(), "p", PeecOptions{0.0, 0.0});

    const std::size_t port = bem.mesh().nearest_node({0.003, 0.003}, 0);
    nl.add_isource("I1", nl.ground(), map[port], Source::dc(0.0).set_ac(1.0));

    const DirectSolver ref(bem, SurfaceImpedance::from_sheet_resistance(5e-3));
    for (double f : {10e6, 100e6, 1e9}) {
        const AcSolution sol = ac_analyze(nl, f);
        const Complex z_peec = sol.v(map[port]);
        const Complex z_ref = ref.port_impedance(f, {port})(0, 0);
        EXPECT_NEAR(std::abs(z_peec), std::abs(z_ref), 0.03 * std::abs(z_ref))
            << "f=" << f;
    }
}

TEST(Peec, TransientStableOnTwoNets) {
    const PlaneBem bem = strip_pair();
    Netlist nl;
    std::vector<NodeId> map;
    for (std::size_t k = 0; k < bem.node_count(); ++k)
        map.push_back(nl.add_node("m" + std::to_string(k)));
    stamp_peec(nl, bem, map, nl.ground(), "p");

    // Kick net a with a fast pulse through 50 ohms; watch net b.
    const std::size_t drive = bem.mesh().nearest_node({0.003, 0.003}, 0);
    const std::size_t victim = bem.mesh().nearest_node({0.003, 0.015}, 1);
    const NodeId src = nl.add_node("src");
    nl.add_vsource("V1", src, nl.ground(),
                   Source::pulse(0, 2, 0, 0.2e-9, 0.2e-9, 2e-9));
    nl.add_resistor("Rs", src, map[drive], 50.0);
    nl.add_resistor("Rv", map[victim], nl.ground(), 50.0);

    TransientOptions opt;
    opt.dt = 20e-12;
    opt.tstop = 10e-9;
    opt.probes = {map[drive], map[victim]};
    const TransientResult res = transient_analyze(nl, opt);
    // Bounded (stable) response, with real inductive crosstalk on the victim.
    EXPECT_LT(res.peak_abs(map[drive]), 5.0);
    EXPECT_LT(res.peak_abs(map[victim]), 5.0);
    EXPECT_GT(res.peak_abs(map[victim]), 1e-4);
    // The tail has decayed (no growing internal mode).
    const VectorD w = res.waveform(map[victim]);
    double tail = 0;
    for (std::size_t i = w.size() - 20; i < w.size(); ++i)
        tail = std::max(tail, std::abs(w[i]));
    EXPECT_LT(tail, 0.5 * res.peak_abs(map[victim]) + 1e-6);
}

TEST(Peec, CouplingFloorPrunes) {
    const PlaneBem bem = strip_pair();
    Netlist all, pruned;
    std::vector<NodeId> m1, m2;
    for (std::size_t k = 0; k < bem.node_count(); ++k) {
        m1.push_back(all.add_node("m" + std::to_string(k)));
        m2.push_back(pruned.add_node("m" + std::to_string(k)));
    }
    stamp_peec(all, bem, m1, all.ground(), "p", PeecOptions{0.0, 0.0});
    stamp_peec(pruned, bem, m2, pruned.ground(), "p", PeecOptions{0.05, 0.01});
    EXPECT_LT(pruned.mutuals().size(), all.mutuals().size());
    EXPECT_LT(pruned.capacitors().size(), all.capacitors().size());
    EXPECT_EQ(pruned.inductors().size(), all.inductors().size());
}

TEST(Peec, RejectsBadNodeMap) {
    const PlaneBem bem = strip_pair();
    Netlist nl;
    std::vector<NodeId> map(3, nl.ground());
    EXPECT_THROW(stamp_peec(nl, bem, map, nl.ground(), "p"), InvalidArgument);
}
