// Tests for the SPICE-subset parser.
#include <gtest/gtest.h>

#include "circuit/ac.hpp"
#include "circuit/parser.hpp"
#include "circuit/mna.hpp"
#include "circuit/transient.hpp"

using namespace pgsi;

TEST(SpiceValue, Suffixes) {
    EXPECT_DOUBLE_EQ(parse_spice_value("2.2k"), 2200.0);
    EXPECT_DOUBLE_EQ(parse_spice_value("10p"), 10e-12);
    EXPECT_DOUBLE_EQ(parse_spice_value("10pF"), 10e-12);
    EXPECT_DOUBLE_EQ(parse_spice_value("3meg"), 3e6);
    EXPECT_DOUBLE_EQ(parse_spice_value("5u"), 5e-6);
    EXPECT_DOUBLE_EQ(parse_spice_value("7n"), 7e-9);
    EXPECT_DOUBLE_EQ(parse_spice_value("1.5"), 1.5);
    EXPECT_DOUBLE_EQ(parse_spice_value("-3m"), -3e-3);
    EXPECT_DOUBLE_EQ(parse_spice_value("2G"), 2e9);
    EXPECT_DOUBLE_EQ(parse_spice_value("4V"), 4.0);
    EXPECT_THROW(parse_spice_value("abc"), InvalidArgument);
}

TEST(Parser, RcDeckWithAnalyses) {
    const std::string deck = R"(rc lowpass test deck
* comment line
V1 in 0 DC 0 AC 1 PULSE(0 1 0 1n 1n 10n 0)
R1 in out 1k
C1 out 0 1n
.tran 0.1n 100n
.ac dec 10 1meg 1g
.end
)";
    const ParsedDeck d = parse_spice(deck);
    EXPECT_EQ(d.title, "rc lowpass test deck");
    EXPECT_EQ(d.netlist.resistors().size(), 1u);
    EXPECT_EQ(d.netlist.capacitors().size(), 1u);
    EXPECT_EQ(d.netlist.vsources().size(), 1u);
    EXPECT_TRUE(d.analyses.has_tran);
    EXPECT_DOUBLE_EQ(d.analyses.tran_stop, 100e-9);
    EXPECT_TRUE(d.analyses.has_ac);
    EXPECT_EQ(d.analyses.ac_points_per_decade, 10);

    // The parsed deck actually runs.
    const AcSolution s = ac_analyze(d.netlist, 1e3); // far below f3db = 159 kHz
    EXPECT_NEAR(std::abs(s.v(d.netlist.find_node("out"))), 1.0, 0.01);
}

TEST(Parser, ContinuationLines) {
    const std::string deck = R"(title
V1 a 0 PULSE(0 5
+ 1n 0.3n 0.3n
+ 1n 0)
R1 a 0 50
.end
)";
    const ParsedDeck d = parse_spice(deck);
    EXPECT_EQ(d.netlist.vsources().size(), 1u);
    EXPECT_DOUBLE_EQ(d.netlist.vsources()[0].src.value(1.15e-9), 2.5);
}

TEST(Parser, CoupledInductors) {
    const std::string deck = R"(transformer
V1 p 0 AC 1
L1 p 0 1u
L2 s 0 1u
K1 L1 L2 0.9
R1 s 0 1k
.end
)";
    const ParsedDeck d = parse_spice(deck);
    EXPECT_EQ(d.netlist.mutuals().size(), 1u);
    EXPECT_DOUBLE_EQ(d.netlist.mutuals()[0].k, 0.9);
}

TEST(Parser, CurrentSourceAndSin) {
    const std::string deck = R"(sin drive
I1 0 n1 SIN(0 1m 10meg)
R1 n1 0 75
.end
)";
    const ParsedDeck d = parse_spice(deck);
    ASSERT_EQ(d.netlist.isources().size(), 1u);
    EXPECT_NEAR(d.netlist.isources()[0].src.value(0.25e-7 / 1.0), 0.0, 1.1e-3);
}

TEST(Parser, PwlSource) {
    const std::string deck = R"(pwl
V1 a 0 PWL(0 0 1n 1 2n 0)
R1 a 0 50
.end
)";
    const ParsedDeck d = parse_spice(deck);
    EXPECT_DOUBLE_EQ(d.netlist.vsources()[0].src.value(0.5e-9), 0.5);
}

TEST(Parser, ErrorsCarryLineNumbers) {
    const std::string deck = R"(bad deck
R1 a
.end
)";
    try {
        parse_spice(deck);
        FAIL() << "expected parse error";
    } catch (const InvalidArgument& e) {
        // True file line: line 1 is the title, the bad card is line 2.
        EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
    }
}

TEST(Parser, SubcktFlattening) {
    const std::string deck = R"(hierarchy
.subckt divider in out
R1 in out 1k
R2 out 0 1k
.ends
V1 a 0 DC 8
X1 a m divider
X2 m b divider
Rload b 0 1meg
.end
)";
    const ParsedDeck d = parse_spice(deck);
    // 2 instances x 2 resistors + Rload.
    EXPECT_EQ(d.netlist.resistors().size(), 5u);
    const DcSolution s = dc_operating_point(d.netlist);
    // Second divider loads the first: m = 8 * (1k||2k)/(1k + 1k||2k) = 3.2 V,
    // b = m/2 = 1.6 V.
    EXPECT_NEAR(s.v(d.netlist.find_node("m")), 3.2, 0.01);
    EXPECT_NEAR(s.v(d.netlist.find_node("b")), 1.6, 0.01);
}

TEST(Parser, SubcktInternalNodesAreNamespaced) {
    const std::string deck = R"(ns
.subckt rc a b
R1 a mid 1k
C1 mid b 1n
.ends
X1 in 0 rc
X2 in 0 rc
V1 in 0 DC 1
.end
)";
    const ParsedDeck d = parse_spice(deck);
    EXPECT_EQ(d.netlist.capacitors().size(), 2u);
    // Each instance owns its private 'mid' node.
    EXPECT_NO_THROW(d.netlist.find_node("X1.mid"));
    EXPECT_NO_THROW(d.netlist.find_node("X2.mid"));
}

TEST(Parser, SubcktErrors) {
    EXPECT_THROW(parse_spice("t\nX1 a b nosuch\n.end\n"), InvalidArgument);
    EXPECT_THROW(
        parse_spice("t\n.subckt s a b\nR1 a b 1\n.ends\nX1 a s\n.end\n"),
        InvalidArgument); // pin count mismatch
    EXPECT_THROW(parse_spice("t\n.subckt s a b\nR1 a b 1\n.end\n"),
                 InvalidArgument); // unterminated
}

TEST(Parser, UnsupportedElementThrows) {
    EXPECT_THROW(parse_spice("t\nQ1 a b c model\n.end\n"), InvalidArgument);
}

namespace {

// Expects parse_spice(deck) to throw InvalidArgument whose message carries
// both the expected line number and a message fragment.
void expect_parse_error(const std::string& deck, int line,
                        const std::string& fragment) {
    try {
        parse_spice(deck);
        FAIL() << "expected parse error containing '" << fragment << "'";
    } catch (const InvalidArgument& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("line " + std::to_string(line)), std::string::npos)
            << what;
        EXPECT_NE(what.find(fragment), std::string::npos) << what;
    }
}

} // namespace

TEST(Parser, BadNumericValueCarriesLine) {
    expect_parse_error("deck\nR1 a 0 1k\nC1 a 0 tenpf\n.end\n", 3,
                       "bad numeric token");
}

TEST(Parser, OutOfRangeValuesCarryLine) {
    // Netlist-level validation surfaces with the offending line attached.
    expect_parse_error("deck\nR1 a 0 0\n.end\n", 2, "must be nonzero");
    expect_parse_error("deck\nC1 a 0 0\n.end\n", 2, "must be nonzero");
    expect_parse_error("deck\nL1 a 0 1n\nL2 a 0 1n\nK1 L1 L2 1.5\n.end\n", 4,
                       "|k| must be < 1");
}

TEST(Parser, DuplicateElementNamesRejected) {
    expect_parse_error("deck\nR1 a 0 1k\nR1 a 0 2k\n.end\n", 3,
                       "duplicate element name 'R1'");
    // Case-insensitive: SPICE element names are not case sensitive.
    expect_parse_error("deck\nC3 a 0 1p\nc3 b 0 2p\n.end\n", 3,
                       "duplicate element name");
}

TEST(Parser, DuplicateNamesAcrossSubcktInstancesAllowed) {
    // Each instance gets its own namespace prefix; the same local name in
    // two instances must not collide.
    const std::string deck = R"(hierarchy
.subckt cell a b
R1 a b 1k
.ends
X1 in mid cell
X2 mid out cell
.end
)";
    const ParsedDeck d = parse_spice(deck);
    EXPECT_EQ(d.netlist.resistors().size(), 2u);
}

TEST(Parser, UnterminatedSubcktCarriesLine) {
    expect_parse_error("deck\n.subckt cell a b\nR1 a b 1k\n.end\n", 4,
                       "unterminated .subckt 'cell'");
}

TEST(Parser, MalformedCardsCarryLine) {
    expect_parse_error("deck\nV1 in\n.end\n", 2, "V needs");
    expect_parse_error("deck\nR1 a 0 1k\nQ1 a b c\n.end\n", 3,
                       "unsupported element");
    expect_parse_error("deck\nV1 in 0 PULSE(0 1 0 1n)\n.end\n", 2,
                       "PULSE needs 7 values");
}
