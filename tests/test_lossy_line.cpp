// Tests for the segmented lossy transmission line.
#include <gtest/gtest.h>

#include <cmath>

#include "circuit/ac.hpp"
#include "circuit/lossy_line.hpp"
#include "circuit/transient.hpp"
#include "common/constants.hpp"

using namespace pgsi;

namespace {

LossyMtlParameters line50(double r_per_m, double g_per_m = 0) {
    MtlParameters p;
    p.l = MatrixD{{250e-9}};
    p.c = MatrixD{{100e-12}}; // Z0 = 50, v = 2e8
    return LossyMtlParameters::from_lossless(p, r_per_m, g_per_m);
}

// Matched AC transfer magnitude through a stamped ladder.
double matched_transfer(const LossyMtlParameters& p, double length,
                        int sections, double freq) {
    Netlist nl;
    const NodeId src = nl.node("src");
    const NodeId in = nl.node("in");
    const NodeId out = nl.node("out");
    nl.add_vsource("V1", src, nl.ground(), Source::dc(0.0).set_ac(2.0));
    nl.add_resistor("Rs", src, in, 50.0);
    stamp_lossy_line(nl, "T", {in}, {out}, nl.ground(), p, length, sections);
    nl.add_resistor("Rl", out, nl.ground(), 50.0);
    const AcSolution s = ac_analyze(nl, freq);
    // Incident wave is 1 V; |V(out)| / 1 V is the attenuation.
    return std::abs(s.v(out));
}

} // namespace

TEST(LossyLine, MatchedAttenuationTracksAnalytic) {
    const LossyMtlParameters p = line50(20.0); // α·len = 0.2·len/… mild loss
    const double len = 0.5;
    const double expect = matched_line_attenuation(p, len);
    const double got = matched_transfer(p, len, 40, 50e6);
    EXPECT_NEAR(got, expect, 0.03 * expect);
}

TEST(LossyLine, DielectricLossAlsoAttenuates) {
    const double len = 0.5;
    const LossyMtlParameters p = line50(0.0, 1e-3);
    const double expect = matched_line_attenuation(p, len);
    const double got = matched_transfer(p, len, 40, 50e6);
    EXPECT_NEAR(got, expect, 0.03 * expect);
    EXPECT_LT(expect, 1.0);
}

TEST(LossyLine, LosslessLadderMatchesModalDelay) {
    // Zero loss: the ladder's transient must reproduce the modal line's
    // delayed edge.
    const LossyMtlParameters p = line50(0.0);
    const double len = 0.2; // 1 ns

    Netlist nl;
    const NodeId src = nl.node("src");
    const NodeId in = nl.node("in");
    const NodeId out = nl.node("out");
    nl.add_vsource("V1", src, nl.ground(),
                   Source::pulse(0, 2, 0, 0.2e-9, 0.2e-9, 4e-9));
    nl.add_resistor("Rs", src, in, 50.0);
    stamp_lossy_line(nl, "T", {in}, {out}, nl.ground(), p, len, 40);
    nl.add_resistor("Rl", out, nl.ground(), 50.0);
    TransientOptions opt;
    opt.dt = 10e-12;
    opt.tstop = 4e-9;
    const TransientResult r = transient_analyze(nl, opt);
    const VectorD w = r.waveform(out);
    double arrival = 0;
    for (std::size_t i = 0; i < w.size(); ++i)
        if (w[i] > 0.5) {
            arrival = r.time[i];
            break;
        }
    EXPECT_NEAR(arrival, 1e-9 + 0.1e-9, 0.15e-9); // delay + half the edge
    EXPECT_NEAR(w[static_cast<std::size_t>(2e-9 / opt.dt)], 1.0, 0.08);
}

TEST(LossyLine, CoupledSectionsCarryCrosstalk) {
    MtlParameters base;
    base.l = MatrixD{{300e-9, 60e-9}, {60e-9, 300e-9}};
    base.c = MatrixD{{120e-12, -15e-12}, {-15e-12, 120e-12}};
    LossyMtlParameters p;
    p.l = base.l;
    p.c = base.c;
    p.r = {5.0, 5.0};
    p.g = {0.0, 0.0};

    Netlist nl;
    const NodeId src = nl.node("src");
    const NodeId a_in = nl.node("a_in");
    const NodeId a_out = nl.node("a_out");
    const NodeId b_in = nl.node("b_in");
    const NodeId b_out = nl.node("b_out");
    nl.add_vsource("V1", src, nl.ground(),
                   Source::pulse(0, 2, 0, 0.3e-9, 0.3e-9, 3e-9));
    nl.add_resistor("Rs", src, a_in, 50.0);
    nl.add_resistor("Rbn", b_in, nl.ground(), 50.0);
    stamp_lossy_line(nl, "T", {a_in, b_in}, {a_out, b_out}, nl.ground(), p,
                     0.15, 30);
    nl.add_resistor("Ral", a_out, nl.ground(), 50.0);
    nl.add_resistor("Rbl", b_out, nl.ground(), 50.0);
    TransientOptions opt;
    opt.dt = 10e-12;
    opt.tstop = 5e-9;
    const TransientResult r = transient_analyze(nl, opt);
    EXPECT_GT(r.peak_abs(b_in), 0.01);
    EXPECT_GT(r.peak_abs(b_out), 0.01);
    EXPECT_LT(r.peak_abs(b_out), 0.6);
}

TEST(LossyLine, SegmentationGuard) {
    const LossyMtlParameters p = line50(1.0);
    Netlist nl;
    const NodeId in = nl.node("in");
    const NodeId out = nl.node("out");
    // 5 sections over 1 m resolves ~0.1 GHz, not 5 GHz.
    EXPECT_THROW(stamp_lossy_line(nl, "T", {in}, {out}, nl.ground(), p, 1.0, 5,
                                  5e9),
                 InvalidArgument);
    EXPECT_NO_THROW(stamp_lossy_line(nl, "T", {in}, {out}, nl.ground(), p, 1.0,
                                     5, 0.0));
}

TEST(LossyLine, InputValidation) {
    const LossyMtlParameters p = line50(1.0);
    Netlist nl;
    const NodeId a = nl.node("a");
    EXPECT_THROW(stamp_lossy_line(nl, "T", {a, a}, {a}, nl.ground(), p, 1.0, 4),
                 InvalidArgument);
    EXPECT_THROW(stamp_lossy_line(nl, "T", {a}, {a}, nl.ground(), p, -1.0, 4),
                 InvalidArgument);
}
