// Tests for the Schur/Kron node reduction.
#include <gtest/gtest.h>

#include "extract/reduction.hpp"

using namespace pgsi;

TEST(Reduction, ComplementIndices) {
    const auto c = complement_indices(5, {1, 3});
    ASSERT_EQ(c.size(), 3u);
    EXPECT_EQ(c[0], 0u);
    EXPECT_EQ(c[1], 2u);
    EXPECT_EQ(c[2], 4u);
    EXPECT_THROW(complement_indices(3, {5}), InvalidArgument);
    EXPECT_THROW(complement_indices(3, {1, 1}), InvalidArgument);
}

TEST(Reduction, KeepAllIsIdentity) {
    const MatrixD m{{2, -1}, {-1, 2}};
    const MatrixD r = schur_reduce(m, {0, 1});
    EXPECT_DOUBLE_EQ(r(0, 0), 2);
    EXPECT_DOUBLE_EQ(r(0, 1), -1);
}

TEST(Reduction, SeriesResistorsKron) {
    // Path graph 0-1-2 with conductances g01 = 1, g12 = 2. Eliminating node
    // 1 leaves the series combination 1·2/(1+2) = 2/3 between 0 and 2.
    MatrixD g(3, 3);
    auto add = [&](int a, int b, double c) {
        g(a, a) += c;
        g(b, b) += c;
        g(a, b) -= c;
        g(b, a) -= c;
    };
    add(0, 1, 1.0);
    add(1, 2, 2.0);
    const MatrixD r = schur_reduce(g, {0, 2});
    EXPECT_NEAR(-r(0, 1), 2.0 / 3.0, 1e-12);
    // Still a Laplacian: rows sum to zero.
    EXPECT_NEAR(r(0, 0) + r(0, 1), 0.0, 1e-12);
}

TEST(Reduction, StarToPolygon) {
    // A 4-leaf star with unit conductances reduces to a complete graph on
    // the leaves with conductance 1/4 per pair (star-mesh transform).
    MatrixD g(5, 5);
    auto add = [&](int a, int b, double c) {
        g(a, a) += c;
        g(b, b) += c;
        g(a, b) -= c;
        g(b, a) -= c;
    };
    for (int leaf = 1; leaf <= 4; ++leaf) add(0, leaf, 1.0);
    const MatrixD r = schur_reduce(g, {1, 2, 3, 4});
    for (int i = 0; i < 4; ++i)
        for (int j = 0; j < 4; ++j)
            if (i != j) {
                EXPECT_NEAR(-r(i, j), 0.25, 1e-12);
            }
}

TEST(Reduction, PreservesSymmetry) {
    MatrixD m(4, 4);
    for (int i = 0; i < 4; ++i)
        for (int j = 0; j < 4; ++j) m(i, j) = 1.0 / (1 + i + j);
    for (int i = 0; i < 4; ++i) m(i, i) += 2.0;
    const MatrixD r = schur_reduce(m, {0, 2});
    EXPECT_LT(r.asymmetry(), 1e-14);
}

TEST(Reduction, FloatingCapacitorReduction) {
    // Two caps in series through an internal node: C1 = 2, C2 = 2 -> 1.
    MatrixD c(3, 3);
    auto add = [&](int a, int b, double v) {
        c(a, a) += v;
        c(b, b) += v;
        c(a, b) -= v;
        c(b, a) -= v;
    };
    add(0, 1, 2.0);
    add(1, 2, 2.0);
    const MatrixD r = schur_reduce(c, {0, 2});
    EXPECT_NEAR(-r(0, 1), 1.0, 1e-12);
}

TEST(Reduction, RejectsEmptyKeep) {
    const MatrixD m{{1, 0}, {0, 1}};
    EXPECT_THROW(schur_reduce(m, {}), InvalidArgument);
}
