// Tests for the SSN study helpers: switching sweeps, decap sweeps and the
// worst-pattern search (run on reduced settings for speed).
#include <gtest/gtest.h>

#include "si/ssn.hpp"

using namespace pgsi;

namespace {

SsnModelOptions coarse() {
    SsnModelOptions o;
    o.mesh_pitch = 25e-3;
    o.interior_nodes = 6;
    o.prune_rel_tol = 0.05;
    return o;
}

} // namespace

TEST(Ssn, SwitchingSweepMonotonePlaneNoise) {
    const auto rows =
        sweep_switching_drivers({1, 4, 16}, coarse(), 50e-12, 4e-9);
    ASSERT_EQ(rows.size(), 3u);
    EXPECT_EQ(rows[0].n_switching, 1);
    EXPECT_GT(rows[1].peak_plane_noise, rows[0].peak_plane_noise);
    EXPECT_GT(rows[2].peak_plane_noise, rows[1].peak_plane_noise);
}

TEST(Ssn, DecapSweepReducesNoise) {
    Decap proto;
    proto.c = 100e-9;
    proto.esr = 30e-3;
    proto.esl = 1e-9;
    const auto rows = sweep_decap_count(4, proto, coarse(), 50e-12, 4e-9);
    ASSERT_GE(rows.size(), 3u);
    EXPECT_EQ(rows.front().n_decaps, 0u);
    EXPECT_EQ(rows.back().n_decaps, 4u);
    EXPECT_LT(rows.back().peak_plane_noise, rows.front().peak_plane_noise);
}

TEST(Ssn, WorstPatternGrowsMonotonically) {
    auto plane = std::make_shared<PlaneModel>(make_ssn_eval_board(0), coarse());
    const Source input = Source::pulse(0, 1, 1e-9, 1e-9, 1e-9, 4e-9);
    const SwitchingPatternResult res =
        find_worst_switching_pattern(plane, 3, input, 50e-12, 4e-9);
    ASSERT_EQ(res.pattern.size(), 3u);
    // Distinct sites, monotone worst-case noise.
    EXPECT_NE(res.pattern[0], res.pattern[1]);
    EXPECT_NE(res.pattern[1], res.pattern[2]);
    EXPECT_GE(res.noise_after[1], res.noise_after[0] * 0.999);
    EXPECT_GE(res.noise_after[2], res.noise_after[1] * 0.999);
}

TEST(Ssn, WorstPatternValidation) {
    auto plane = std::make_shared<PlaneModel>(make_ssn_eval_board(0), coarse());
    const Source input = Source::pulse(0, 1, 1e-9, 1e-9, 1e-9, 4e-9);
    EXPECT_THROW(find_worst_switching_pattern(plane, 0, input, 50e-12, 2e-9),
                 InvalidArgument);
    EXPECT_THROW(find_worst_switching_pattern(plane, 99, input, 50e-12, 2e-9),
                 InvalidArgument);
}
