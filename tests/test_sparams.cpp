// Tests for S-parameter conversions and circuit-level extraction.
#include <gtest/gtest.h>

#include <cmath>

#include "circuit/sparams.hpp"
#include "common/constants.hpp"

using namespace pgsi;

TEST(SParams, ZtoSMatchedLoad) {
    // A 1-port of exactly Z0 has S11 = 0.
    MatrixC z(1, 1);
    z(0, 0) = Complex(50.0, 0.0);
    const MatrixC s = z_to_s(z, 50.0);
    EXPECT_NEAR(std::abs(s(0, 0)), 0.0, 1e-12);
}

TEST(SParams, ZtoSOpenAndShort) {
    MatrixC open(1, 1), shrt(1, 1);
    open(0, 0) = Complex(1e12, 0.0);
    shrt(0, 0) = Complex(1e-9, 0.0);
    EXPECT_NEAR(z_to_s(open, 50.0)(0, 0).real(), 1.0, 1e-9);
    EXPECT_NEAR(z_to_s(shrt, 50.0)(0, 0).real(), -1.0, 1e-9);
}

TEST(SParams, YtoSConsistentWithZtoS) {
    MatrixC z(2, 2);
    z(0, 0) = Complex(60, 10);
    z(0, 1) = Complex(20, -5);
    z(1, 0) = Complex(20, -5);
    z(1, 1) = Complex(80, 0);
    const MatrixC sz = z_to_s(z, 50.0);
    // Y = Z^{-1}
    MatrixC y = Lu<Complex>(z).inverse();
    const MatrixC sy = y_to_s(y, 50.0);
    for (int i = 0; i < 2; ++i)
        for (int j = 0; j < 2; ++j)
            EXPECT_NEAR(std::abs(sz(i, j) - sy(i, j)), 0.0, 1e-10);
}

TEST(SParams, SeriesResistorTwoPort) {
    // Series R between two ports: S21 = 2Z0/(2Z0+R), S11 = R/(2Z0+R).
    Netlist nl;
    const NodeId p1 = nl.node("p1");
    const NodeId p2 = nl.node("p2");
    const double r = 100.0;
    nl.add_resistor("R1", p1, p2, r);
    SParamExtractor ex(nl, {{p1, 0, 50.0}, {p2, 0, 50.0}});
    const MatrixC s = ex.at(1e6);
    EXPECT_NEAR(s(1, 0).real(), 100.0 / 200.0, 1e-6);
    EXPECT_NEAR(s(0, 0).real(), 100.0 / 200.0, 1e-6);
    // Reciprocity.
    EXPECT_NEAR(std::abs(s(0, 1) - s(1, 0)), 0.0, 1e-9);
}

TEST(SParams, ShuntCapacitorReflectsLosslessly) {
    // A lossless 1-port always has |S11| = 1; the phase rotates from the
    // open (+1) at low frequency toward the short (−1) at high frequency.
    Netlist nl;
    const NodeId p = nl.node("p");
    nl.add_capacitor("C1", p, nl.ground(), 10e-12);
    SParamExtractor ex(nl, {{p, 0, 50.0}});
    const double fc = 1.0 / (2 * pi * 50.0 * 10e-12);
    const MatrixC lo = ex.at(fc / 100);
    const MatrixC hi = ex.at(fc * 100);
    EXPECT_NEAR(std::abs(lo(0, 0)), 1.0, 1e-6);
    EXPECT_NEAR(std::abs(hi(0, 0)), 1.0, 1e-6);
    EXPECT_GT(lo(0, 0).real(), 0.99);
    EXPECT_LT(hi(0, 0).real(), -0.99);
}

TEST(SParams, PassivityOfResistiveNetwork) {
    // |S| entries of a passive resistive attenuator are all < 1.
    Netlist nl;
    const NodeId a = nl.node("a");
    const NodeId b = nl.node("b");
    nl.add_resistor("R1", a, b, 30.0);
    nl.add_resistor("R2", a, nl.ground(), 100.0);
    nl.add_resistor("R3", b, nl.ground(), 100.0);
    SParamExtractor ex(nl, {{a, 0, 50.0}, {b, 0, 50.0}});
    const MatrixC s = ex.at(1e8);
    for (int i = 0; i < 2; ++i)
        for (int j = 0; j < 2; ++j) EXPECT_LT(std::abs(s(i, j)), 1.0);
}

TEST(SParams, RejectsMixedReferenceImpedance) {
    Netlist nl;
    const NodeId a = nl.node("a");
    nl.add_resistor("R1", a, nl.ground(), 10.0);
    EXPECT_THROW(SParamExtractor(nl, {{a, 0, 50.0}, {a, 0, 75.0}}),
                 InvalidArgument);
}
