// Tests for polygons and the rectangular surface mesh.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "geometry/polygon.hpp"
#include "geometry/rectmesh.hpp"

using namespace pgsi;

TEST(Polygon, RectangleContainment) {
    const Polygon r = Polygon::rectangle(0, 0, 2, 1);
    EXPECT_TRUE(r.contains({1.0, 0.5}));
    EXPECT_FALSE(r.contains({3.0, 0.5}));
    EXPECT_FALSE(r.contains({1.0, -0.1}));
    EXPECT_NEAR(r.area(), 2.0, 1e-12);
}

TEST(Polygon, LShape) {
    const Polygon l = Polygon::lshape(2.0, 2.0, 1.0, 1.0);
    EXPECT_TRUE(l.contains({0.5, 1.5}));   // vertical arm
    EXPECT_TRUE(l.contains({1.5, 0.5}));   // horizontal arm
    EXPECT_FALSE(l.contains({1.5, 1.5}));  // cut corner
    EXPECT_NEAR(l.area(), 3.0, 1e-12);
}

TEST(Polygon, RejectsDegenerate) {
    EXPECT_THROW((Polygon({{0, 0}, {1, 1}})), InvalidArgument);
    EXPECT_THROW(Polygon::rectangle(1, 0, 0, 1), InvalidArgument);
    EXPECT_THROW(Polygon::lshape(1, 1, 2, 0.5), InvalidArgument);
}

TEST(RectMesh, FullRectangleCounts) {
    ConductorShape s;
    s.outline = Polygon::rectangle(0, 0, 0.04, 0.02);
    RectMesh mesh({s}, 0.01);
    EXPECT_EQ(mesh.node_count(), 8u); // 4 x 2 cells
    // branches: 3*2 horizontal + 4*1 vertical = 10
    EXPECT_EQ(mesh.branch_count(), 10u);
    EXPECT_EQ(mesh.component_count(), 1u);
}

TEST(RectMesh, HoleRemovesCells) {
    ConductorShape s;
    s.outline = Polygon::rectangle(0, 0, 0.03, 0.03);
    s.holes.push_back(Polygon::rectangle(0.01, 0.01, 0.02, 0.02));
    RectMesh mesh({s}, 0.01);
    EXPECT_EQ(mesh.node_count(), 8u); // 9 cells minus center
}

TEST(RectMesh, SplitPlanesAreTwoComponents) {
    ConductorShape a, b;
    a.outline = Polygon::rectangle(0, 0, 0.02, 0.02);
    a.name = "vcc0";
    b.outline = Polygon::rectangle(0.03, 0, 0.05, 0.02);
    b.name = "vcc1";
    RectMesh mesh({a, b}, 0.01);
    EXPECT_EQ(mesh.component_count(), 2u);
    EXPECT_EQ(mesh.node_count(), 8u);
}

TEST(RectMesh, NearestNodeRespectsShape) {
    ConductorShape a, b;
    a.outline = Polygon::rectangle(0, 0, 0.02, 0.02);
    b.outline = Polygon::rectangle(0.03, 0, 0.05, 0.02);
    b.z = 1e-3;
    RectMesh mesh({a, b}, 0.01);
    const std::size_t n = mesh.nearest_node({0.04, 0.01}, 1);
    EXPECT_EQ(mesh.nodes()[n].shape, 1u);
    const std::size_t m = mesh.nearest_node({0.04, 0.01}, 0);
    EXPECT_EQ(mesh.nodes()[m].shape, 0u);
}

TEST(RectMesh, BranchGeometry) {
    ConductorShape s;
    s.outline = Polygon::rectangle(0, 0, 0.02, 0.01);
    RectMesh mesh({s}, 0.01);
    ASSERT_EQ(mesh.branch_count(), 1u);
    const MeshBranch& b = mesh.branches()[0];
    EXPECT_EQ(b.dir, BranchDir::X);
    EXPECT_NEAR(b.length(), 0.01, 1e-12);
    EXPECT_NEAR(b.width(), 0.01, 1e-12);
}

TEST(RectMesh, RejectsTooCoarse) {
    ConductorShape s;
    s.outline = Polygon::rectangle(0, 0, 0.001, 0.001);
    EXPECT_NO_THROW(RectMesh({s}, 0.01)); // stretches to 1 cell
    EXPECT_EQ(RectMesh({s}, 0.01).node_count(), 1u);
}

// Property sweep: total meshed area approximates the polygon area as the
// pitch shrinks.
class MeshAreaConvergence : public ::testing::TestWithParam<double> {};

TEST_P(MeshAreaConvergence, LShapeArea) {
    const double pitch = GetParam();
    ConductorShape s;
    s.outline = Polygon::lshape(0.06, 0.06, 0.03, 0.03);
    RectMesh mesh({s}, pitch);
    double area = 0;
    for (const MeshNode& n : mesh.nodes()) area += n.dx * n.dy;
    EXPECT_NEAR(area, s.outline.area(), 0.12 * s.outline.area());
}

INSTANTIATE_TEST_SUITE_P(Pitches, MeshAreaConvergence,
                         ::testing::Values(0.01, 0.005, 0.003, 0.002));
