// Tests for the board-description file format.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "si/board_file.hpp"

using namespace pgsi;

namespace {

const char* kDeck = R"(# demo board
board 0.12 0.08
stackup sep 0.5m eps 4.5 sheet 0.6m
vdd 3.3
vrm 0.01 0.012
cutout 0.02 0.02 0.04 0.03
driver d0 vcc 0.08 0.05 gnd 0.08 0.04 ron_up 22 ron_dn 18 load 25p switch rise 0.8n delay 1n width 5n
driver d1 vcc 0.09 0.05 gnd 0.09 0.04
decap 0.085 0.045 c 100n esr 30m esl 1n
stitch 0.05 0.05
)";

} // namespace

TEST(BoardFile, ParsesAllDirectives) {
    const Board b = parse_board_file(kDeck);
    EXPECT_DOUBLE_EQ(b.width(), 0.12);
    EXPECT_DOUBLE_EQ(b.height(), 0.08);
    EXPECT_DOUBLE_EQ(b.stackup().plane_separation, 0.5e-3);
    EXPECT_DOUBLE_EQ(b.stackup().eps_r, 4.5);
    EXPECT_DOUBLE_EQ(b.vdd(), 3.3);
    EXPECT_DOUBLE_EQ(b.vrm_location().y, 0.012);
    ASSERT_EQ(b.power_plane_cutouts().size(), 1u);
    ASSERT_EQ(b.driver_sites().size(), 2u);
    ASSERT_EQ(b.decaps().size(), 1u);
    ASSERT_EQ(b.gnd_stitches().size(), 1u);

    const DriverSite& d0 = b.driver_sites()[0];
    EXPECT_DOUBLE_EQ(d0.driver.ron_up, 22.0);
    EXPECT_DOUBLE_EQ(d0.load_c, 25e-12);
    // Switching stimulus parsed: logic high mid pulse.
    EXPECT_DOUBLE_EQ(d0.driver.input.value(3e-9), 1.0);
    // d1 stays quiet.
    EXPECT_DOUBLE_EQ(b.driver_sites()[1].driver.input.value(3e-9), 0.0);

    EXPECT_DOUBLE_EQ(b.decaps()[0].c, 100e-9);
    EXPECT_DOUBLE_EQ(b.decaps()[0].esl, 1e-9);
}

TEST(BoardFile, RoundTripsThroughWriter) {
    const Board a = parse_board_file(kDeck);
    const Board b = parse_board_file(board_file_string(a));
    EXPECT_DOUBLE_EQ(a.width(), b.width());
    EXPECT_DOUBLE_EQ(a.stackup().plane_separation, b.stackup().plane_separation);
    ASSERT_EQ(a.driver_sites().size(), b.driver_sites().size());
    for (std::size_t i = 0; i < a.driver_sites().size(); ++i) {
        EXPECT_DOUBLE_EQ(a.driver_sites()[i].vcc_pin.x,
                         b.driver_sites()[i].vcc_pin.x);
        EXPECT_DOUBLE_EQ(a.driver_sites()[i].driver.ron_up,
                         b.driver_sites()[i].driver.ron_up);
    }
    ASSERT_EQ(a.decaps().size(), b.decaps().size());
    EXPECT_DOUBLE_EQ(a.decaps()[0].esr, b.decaps()[0].esr);
}

TEST(BoardFile, RoundTripsSwitchingStimulus) {
    const Board a = parse_board_file(kDeck);
    const Board b = parse_board_file(board_file_string(a));
    // d0's pulse survives: logic high mid-pulse, low before the delay.
    EXPECT_DOUBLE_EQ(b.driver_sites()[0].driver.input.value(3e-9), 1.0);
    EXPECT_DOUBLE_EQ(b.driver_sites()[0].driver.input.value(0.5e-9), 0.0);
    const Source::PulseParams p = b.driver_sites()[0].driver.input.pulse_params();
    EXPECT_DOUBLE_EQ(p.rise, 0.8e-9);
    EXPECT_DOUBLE_EQ(p.delay, 1e-9);
    EXPECT_DOUBLE_EQ(p.width, 5e-9);
    // d1 stays DC.
    EXPECT_EQ(b.driver_sites()[1].driver.input.kind(), Source::Kind::Dc);
}

TEST(BoardFile, ErrorsCarryLineNumbers) {
    try {
        parse_board_file("board 0.1 0.1\nstackup sep 1m\nbogus 1 2\n");
        FAIL() << "expected parse error";
    } catch (const InvalidArgument& e) {
        EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
    }
}

TEST(BoardFile, MissingMandatoryLines) {
    EXPECT_THROW(parse_board_file("vdd 5\n"), InvalidArgument);
    EXPECT_THROW(parse_board_file("board 0.1 0.1\nvdd 5\n"), InvalidArgument);
}

TEST(BoardFile, DriverValidation) {
    EXPECT_THROW(
        parse_board_file("board .1 .1\nstackup sep 1m\n"
                         "driver d0 vcc 0.05 0.05 ron_up 20 x y z\n"),
        InvalidArgument);
}

namespace {

void expect_board_error(const std::string& text, int line,
                        const std::string& fragment) {
    try {
        parse_board_file(text);
        FAIL() << "expected board file error containing '" << fragment << "'";
    } catch (const InvalidArgument& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("line " + std::to_string(line)), std::string::npos)
            << what;
        EXPECT_NE(what.find(fragment), std::string::npos) << what;
    }
}

} // namespace

TEST(BoardFile, RejectsNonPositiveDimensions) {
    expect_board_error("board 0 0.1\nstackup sep 1m\n", 1,
                       "board width must be positive");
    expect_board_error("board 0.1 -0.1\nstackup sep 1m\n", 1,
                       "board height must be positive");
}

TEST(BoardFile, RejectsNonPositiveStackupValues) {
    expect_board_error("board 0.1 0.1\nstackup sep -1m\n", 2,
                       "stackup sep must be positive");
    expect_board_error("board 0.1 0.1\nstackup sep 1m eps 0\n", 2,
                       "stackup eps must be positive");
    expect_board_error("board 0.1 0.1\nstackup sep 1m sheet -2m\n", 2,
                       "stackup sheet must be positive");
}

TEST(BoardFile, RejectsNonPositiveDecapCapacitance) {
    expect_board_error(
        "board 0.1 0.1\nstackup sep 1m\ndecap 0.05 0.05 c -100n\n", 3,
        "decap c must be positive");
}

TEST(BoardFile, RejectsDuplicateDriverNames) {
    expect_board_error("board 0.1 0.1\nstackup sep 1m\n"
                       "driver d0 vcc 0.02 0.02 gnd 0.03 0.02\n"
                       "driver d0 vcc 0.06 0.06 gnd 0.07 0.06\n",
                       4, "duplicate driver name 'd0'");
}

TEST(BoardFile, BadNumberCarriesLine) {
    expect_board_error("board 0.1 0.1\nstackup sep 1m\nstitch 0.05 mid\n", 3,
                       "bad number 'mid'");
}
