// Tests for the via parasitic model.
#include <gtest/gtest.h>

#include <cmath>

#include "circuit/ac.hpp"
#include "common/constants.hpp"
#include "em/via.hpp"

using namespace pgsi;

TEST(Via, ReferenceGeometryValues) {
    // A 1.6 mm / 0.3 mm drill via: the classic rule of thumb gives roughly
    // 1 - 1.5 nH of barrel inductance.
    const ViaSpec v;
    EXPECT_GT(v.inductance(), 0.7e-9);
    EXPECT_LT(v.inductance(), 1.6e-9);
    // Plated barrel resistance: sub-milliohm range.
    EXPECT_GT(v.resistance(), 0.2e-3);
    EXPECT_LT(v.resistance(), 3e-3);
    // Pad/antipad capacitance: a fraction of a pF.
    EXPECT_GT(v.capacitance(), 0.1e-12);
    EXPECT_LT(v.capacitance(), 2e-12);
}

TEST(Via, Monotonicity) {
    ViaSpec base;
    ViaSpec longer = base;
    longer.length = 2 * base.length;
    EXPECT_GT(longer.inductance(), 2 * base.inductance() * 0.99);
    EXPECT_NEAR(longer.resistance(), 2 * base.resistance(), 1e-9);

    ViaSpec fatter = base;
    fatter.drill = 2 * base.drill;
    EXPECT_LT(fatter.inductance(), base.inductance());

    ViaSpec tighter = base;
    tighter.antipad = 0.8e-3;
    EXPECT_GT(tighter.capacitance(), base.capacitance());
}

TEST(Via, StampBehavesAsSeriesRL) {
    Netlist nl;
    const NodeId a = nl.node("a");
    const NodeId b = nl.node("b");
    const ViaSpec v;
    stamp_via(nl, "via1", a, b, nl.ground(), v);
    nl.add_isource("I1", nl.ground(), a, Source::dc(0.0).set_ac(1.0));
    nl.add_resistor("Rload", b, nl.ground(), 1e-3);

    // At 1 GHz the barrel reactance dominates: |V(a)| ≈ ωL.
    const double f = 1e9;
    const AcSolution s = ac_analyze(nl, f);
    const double expect = 2 * pi * f * v.inductance();
    EXPECT_NEAR(std::abs(s.v(a)), expect, 0.05 * expect);
}

TEST(Via, Validation) {
    ViaSpec bad;
    bad.plating = 1e-3; // thicker than the drill
    EXPECT_THROW(bad.resistance(), InvalidArgument);
    bad = ViaSpec{};
    bad.antipad = bad.pad;
    EXPECT_THROW(bad.capacitance(), InvalidArgument);
    bad = ViaSpec{};
    bad.length = 0;
    EXPECT_THROW(bad.inductance(), InvalidArgument);
}
