// Unit tests for the shared thread pool (pgsi::par).
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/parallel.hpp"

using namespace pgsi;

namespace {

// Restore the automatic thread count after each test so ordering does not
// leak configuration between suites.
class ParallelTest : public ::testing::Test {
protected:
    ~ParallelTest() override { par::set_thread_count(0); }
};

} // namespace

TEST_F(ParallelTest, CoversEveryIndexExactlyOnce) {
    for (std::size_t threads : {1u, 2u, 8u}) {
        par::set_thread_count(threads);
        std::vector<std::atomic<int>> hits(1000);
        par::parallel_for(hits.size(), [&](std::size_t i) {
            hits[i].fetch_add(1, std::memory_order_relaxed);
        });
        for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
    }
}

TEST_F(ParallelTest, ChunkedRangesPartitionTheIterationSpace) {
    par::set_thread_count(4);
    std::vector<std::atomic<int>> hits(777);
    par::parallel_for_chunked(hits.size(), 13,
                              [&](std::size_t b, std::size_t e) {
                                  EXPECT_LT(b, e);
                                  EXPECT_LE(e, hits.size());
                                  EXPECT_LE(e - b, 13u);
                                  for (std::size_t i = b; i < e; ++i)
                                      hits[i].fetch_add(1,
                                                        std::memory_order_relaxed);
                              });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST_F(ParallelTest, EmptyAndSingleElementRanges) {
    par::set_thread_count(4);
    int calls = 0;
    par::parallel_for(0, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls, 0);
    par::parallel_for(1, [&](std::size_t i) {
        EXPECT_EQ(i, 0u);
        ++calls;
    });
    EXPECT_EQ(calls, 1);
}

TEST_F(ParallelTest, NestedSubmitRunsInlineWithoutDeadlock) {
    par::set_thread_count(4);
    std::vector<std::atomic<int>> hits(64 * 32);
    par::parallel_for(64, [&](std::size_t outer) {
        EXPECT_TRUE(par::in_parallel_region());
        // A nested parallel_for must execute inline on this worker.
        par::parallel_for(32, [&](std::size_t inner) {
            hits[outer * 32 + inner].fetch_add(1, std::memory_order_relaxed);
        });
    });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
    EXPECT_FALSE(par::in_parallel_region());
}

TEST_F(ParallelTest, ExceptionPropagatesToCaller) {
    par::set_thread_count(4);
    EXPECT_THROW(par::parallel_for(100,
                                   [&](std::size_t i) {
                                       if (i == 57)
                                           throw std::runtime_error("body failed");
                                   }),
                 std::runtime_error);
    // The pool must stay usable after a failed region.
    std::atomic<int> count{0};
    par::parallel_for(100, [&](std::size_t) {
        count.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(count.load(), 100);
}

TEST_F(ParallelTest, SetThreadCountReconfigures) {
    par::set_thread_count(2);
    EXPECT_EQ(par::thread_count(), 2u);
    par::set_thread_count(8);
    EXPECT_EQ(par::thread_count(), 8u);
    par::set_thread_count(0);
    EXPECT_GE(par::thread_count(), 1u);
}

TEST(ParallelEnv, ParseThreadCount) {
    EXPECT_EQ(par::parse_thread_count(nullptr, 7), 7u);
    EXPECT_EQ(par::parse_thread_count("", 7), 7u);
    EXPECT_EQ(par::parse_thread_count("8", 7), 8u);
    EXPECT_EQ(par::parse_thread_count("1", 7), 1u);
    EXPECT_EQ(par::parse_thread_count("abc", 7), 7u);
    EXPECT_EQ(par::parse_thread_count("4x", 7), 7u);
    EXPECT_EQ(par::parse_thread_count("0", 7), 7u);
    EXPECT_EQ(par::parse_thread_count("-3", 7), 7u);
    EXPECT_EQ(par::parse_thread_count("99999", 7), 1024u); // clamped
}
