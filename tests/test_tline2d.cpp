// Tests for the 2-D transmission-line parameter extractor against classic
// closed-form microstrip design formulas (Hammerstad).
#include <gtest/gtest.h>

#include <cmath>

#include "common/constants.hpp"
#include "numeric/cholesky.hpp"
#include "tline2d/mtl_extract.hpp"

using namespace pgsi;

namespace {

// Hammerstad's synthesis formulas for a single microstrip.
double hammerstad_eps_eff(double w_over_h, double eps_r) {
    return 0.5 * (eps_r + 1) +
           0.5 * (eps_r - 1) / std::sqrt(1.0 + 12.0 / w_over_h);
}

double hammerstad_z0(double w_over_h, double eps_r) {
    const double ee = hammerstad_eps_eff(w_over_h, eps_r);
    if (w_over_h <= 1.0)
        return 60.0 / std::sqrt(ee) *
               std::log(8.0 / w_over_h + 0.25 * w_over_h);
    return 120.0 * pi /
           (std::sqrt(ee) *
            (w_over_h + 1.393 + 0.667 * std::log(w_over_h + 1.444)));
}

} // namespace

class MicrostripSweep
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(MicrostripSweep, MatchesHammerstad) {
    const double w_over_h = std::get<0>(GetParam());
    const double eps_r = std::get<1>(GetParam());
    const double h = 1e-3;
    const MtlParameters p =
        extract_microstrip({{0.0, w_over_h * h}}, eps_r, h);
    const LineFigures f = line_figures(p);
    const double z_ref = hammerstad_z0(w_over_h, eps_r);
    const double e_ref = hammerstad_eps_eff(w_over_h, eps_r);
    // A thin-strip BEM against an empirical closed form: agree within ~8%.
    EXPECT_NEAR(f.z0, z_ref, 0.08 * z_ref) << "w/h=" << w_over_h;
    EXPECT_NEAR(f.eps_eff, e_ref, 0.08 * e_ref) << "w/h=" << w_over_h;
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, MicrostripSweep,
    ::testing::Values(std::make_tuple(0.5, 4.5), std::make_tuple(1.0, 4.5),
                      std::make_tuple(2.0, 4.5), std::make_tuple(1.0, 9.6),
                      std::make_tuple(1.0, 2.2), std::make_tuple(3.0, 4.5)));

TEST(Mtl2d, AirLinePropagatesAtC) {
    const MtlParameters p = extract_microstrip({{0.0, 1e-3}}, 1.0, 1e-3);
    const LineFigures f = line_figures(p);
    EXPECT_NEAR(f.eps_eff, 1.0, 0.01);
    EXPECT_NEAR(f.delay_per_m, 1.0 / c0, 0.01 / c0);
}

TEST(Mtl2d, CoupledPairStructure) {
    // Symmetric pair: matrices symmetric, diagonal dominant, proper signs.
    const double h = 1e-3, w = 1e-3, s = 1e-3;
    const MtlParameters p = extract_microstrip(
        {{-0.5 * (w + s), w}, {0.5 * (w + s), w}}, 4.5, h);
    EXPECT_LT(p.c.asymmetry(), 1e-15);
    EXPECT_LT(p.l.asymmetry(), 1e-15);
    EXPECT_GT(p.c(0, 0), 0.0);
    EXPECT_LT(p.c(0, 1), 0.0);     // Maxwell off-diagonal is negative
    EXPECT_GT(p.l(0, 1), 0.0);     // mutual inductance is positive
    EXPECT_LT(p.l(0, 1), p.l(0, 0));
    EXPECT_NEAR(p.c(0, 0), p.c(1, 1), 1e-15); // symmetric pair
    EXPECT_TRUE(is_spd(p.l));
    EXPECT_TRUE(is_spd(p.c));
}

TEST(Mtl2d, CouplingDecaysWithSeparation) {
    const double h = 1e-3, w = 1e-3;
    auto coupling = [&](double s) {
        const MtlParameters p = extract_microstrip(
            {{-0.5 * (w + s), w}, {0.5 * (w + s), w}}, 4.5, h);
        return -p.c(0, 1) / p.c(0, 0);
    };
    const double near = coupling(0.5e-3);
    const double far = coupling(4e-3);
    EXPECT_GT(near, 3.0 * far);
}

TEST(Mtl2d, SegmentConvergence) {
    Mtl2dOptions coarse;
    coarse.segments_per_strip = 8;
    Mtl2dOptions fine;
    fine.segments_per_strip = 64;
    const LineFigures fc =
        line_figures(extract_microstrip({{0.0, 1e-3}}, 4.5, 1e-3, coarse));
    const LineFigures ff =
        line_figures(extract_microstrip({{0.0, 1e-3}}, 4.5, 1e-3, fine));
    EXPECT_NEAR(fc.z0, ff.z0, 0.02 * ff.z0);
}

TEST(Mtl2d, RejectsBadInputs) {
    EXPECT_THROW(extract_microstrip({}, 4.5, 1e-3), InvalidArgument);
    EXPECT_THROW(extract_microstrip({{0.0, 0.0}}, 4.5, 1e-3), InvalidArgument);
    EXPECT_THROW(extract_microstrip({{0.0, 1e-3}}, 0.5, 1e-3), InvalidArgument);
}
