// Batch job engine (pgsi::serve): job-file parsing, the shared model cache,
// fault containment (injected failures, deadlines, cancellation), and
// journal-based crash resume. The campaign tests pin the pool to one thread
// where fault-site call ordering must be deterministic; the resume test
// sweeps 1/2/8 threads to hold the bit-identity guarantee where it matters.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/robust.hpp"
#include "em/surface_impedance.hpp"
#include "obs/metrics.hpp"
#include "serve/engine.hpp"
#include "serve/journal.hpp"
#include "si/board_file.hpp"
#include "tests/test_util.hpp"

using namespace pgsi;

namespace {

// One small board per variant: the decap position moves with the variant, so
// each variant is a distinct geometry (a distinct ModelCache key) while all
// variants cost the same. Mirrors the bench_batch campaign.
std::string board_text(int variant) {
    char buf[512];
    std::snprintf(
        buf, sizeof buf,
        "board 0.06 0.05\n"
        "stackup sep 0.4m eps 4.5 sheet 0.6m\n"
        "vrm 0.005 0.005\n"
        "driver d0 vcc 0.03 0.025 gnd 0.03 0.02 switch rise 1n delay 1n "
        "width 4n\n"
        "decap %.4f 0.035\n",
        0.010 + 0.008 * variant);
    return buf;
}

serve::JobSpec base_spec(const std::string& id, int variant) {
    serve::JobSpec spec;
    spec.id = id;
    spec.board_text = board_text(variant);
    spec.model.mesh_pitch = 0.01;
    spec.model.interior_nodes = 8;
    return spec;
}

serve::JobSpec sweep_spec(const std::string& id, int variant,
                          std::size_t nfreqs = 4) {
    serve::JobSpec spec = base_spec(id, variant);
    spec.kind = serve::JobKind::Sweep;
    spec.freqs_hz.resize(nfreqs);
    for (std::size_t k = 0; k < nfreqs; ++k)
        spec.freqs_hz[k] = 1e8 * static_cast<double>(k + 1);
    return spec;
}

serve::JobSpec transient_spec(const std::string& id, int variant) {
    serve::JobSpec spec = base_spec(id, variant);
    spec.kind = serve::JobKind::Transient;
    spec.dt = 200e-12;
    spec.tstop = 4e-9;
    return spec;
}

// The same solve a JobSpec denotes, run directly against the library — no
// queue, no cache, no containment. The digest is the comparison handle.
std::uint64_t direct_digest(const serve::JobSpec& spec) {
    const Board board = parse_board_file(spec.board_text);
    const auto model = std::make_shared<const PlaneModel>(board, spec.model);
    if (spec.kind == serve::JobKind::Sweep) {
        const SurfaceImpedance zs = SurfaceImpedance::from_sheet_resistance(
            board.stackup().sheet_resistance);
        SolverOptions sopt;
        sopt.backend = spec.backend;
        const std::unique_ptr<PlaneSolver> solver =
            make_solver(model->bem(), zs, sopt);
        std::vector<std::size_t> nodes;
        for (const Point2& p : spec.ports)
            nodes.push_back(model->bem().mesh().nearest_node_any(p));
        return serve::digest_matrices(
            solver->sweep_impedance(spec.freqs_hz, nodes));
    }
    const SsnModel ssn(model);
    return serve::digest_transient(ssn.simulate(spec.dt, spec.tstop, {}, {}));
}

std::string temp_path(const std::string& name) {
    return ::testing::TempDir() + name;
}

void write_file(const std::string& path, const std::string& text) {
    std::ofstream f(path, std::ios::trunc | std::ios::binary);
    ASSERT_TRUE(f.good()) << path;
    f << text;
}

std::string read_file(const std::string& path) {
    std::ifstream f(path, std::ios::binary);
    EXPECT_TRUE(f.good()) << path;
    return {std::istreambuf_iterator<char>(f),
            std::istreambuf_iterator<char>()};
}

class ServeEnv : public ::testing::Test {
protected:
    void SetUp() override { robust::FaultInjector::disarm_all(); }
    void TearDown() override { robust::FaultInjector::disarm_all(); }
};

// --- job files ---------------------------------------------------------------

TEST(JobFile, DefaultsOverlayDerivedGridsAndBoardFileInlining) {
    const std::string board_path = temp_path("jobfile_board.brd");
    write_file(board_path, board_text(1));
    const std::string doc_text = R"({
      "schema": "pgsi.jobs/1",
      "defaults": { "pitch": 0.01, "interior": 8, "deadline_s": 30,
                    "max_retries": 2, "backend": "iterative" },
      "jobs": [
        { "id": "sweep-a", "type": "sweep", "board": "board 0.06 0.05\nstackup sep 0.4m eps 4.5 sheet 0.6m\nvrm 0.005 0.005\n",
          "fmin": 1e7, "fmax": 1e9, "points": 5,
          "ports": [[0.02, 0.02], [0.05, 0.04]] },
        { "id": "tran-a", "type": "transient", "board_file": "jobfile_board.brd",
          "dt": 1e-10, "tstop": 5e-9, "max_retries": 0, "backend": "direct" }
      ]
    })";
    const serve::JobFile jf =
        serve::parse_jobs(parse_json(doc_text), ::testing::TempDir());
    ASSERT_EQ(jf.jobs.size(), 2u);

    const serve::JobSpec& a = jf.jobs[0];
    EXPECT_EQ(a.kind, serve::JobKind::Sweep);
    EXPECT_DOUBLE_EQ(a.model.mesh_pitch, 0.01);     // from defaults
    EXPECT_EQ(a.model.interior_nodes, 8u);
    EXPECT_DOUBLE_EQ(a.deadline_s, 30);
    EXPECT_EQ(a.max_retries, 2);
    EXPECT_EQ(a.backend, SolverBackend::Iterative);
    ASSERT_EQ(a.freqs_hz.size(), 5u);               // log grid, exact endpoints
    EXPECT_DOUBLE_EQ(a.freqs_hz.front(), 1e7);
    EXPECT_DOUBLE_EQ(a.freqs_hz.back(), 1e9);
    for (std::size_t i = 1; i < a.freqs_hz.size(); ++i)
        EXPECT_GT(a.freqs_hz[i], a.freqs_hz[i - 1]);
    ASSERT_EQ(a.ports.size(), 2u);
    EXPECT_DOUBLE_EQ(a.ports[1].x, 0.05);
    EXPECT_DOUBLE_EQ(a.ports[1].y, 0.04);

    const serve::JobSpec& b = jf.jobs[1];
    EXPECT_EQ(b.kind, serve::JobKind::Transient);
    EXPECT_EQ(b.max_retries, 0);                    // per-job beats defaults
    EXPECT_EQ(b.backend, SolverBackend::Direct);
    EXPECT_EQ(b.board_text, board_text(1));         // inlined at parse time
    EXPECT_DOUBLE_EQ(b.dt, 1e-10);
    EXPECT_DOUBLE_EQ(b.tstop, 5e-9);
}

TEST(JobFile, RejectsUnknownFieldsDuplicateIdsAndBadBoards) {
    const std::string good_board =
        "\"board 0.06 0.05\\nstackup sep 0.4m eps 4.5 sheet 0.6m\\n"
        "vrm 0.005 0.005\\n\"";
    EXPECT_THROW(
        serve::parse_jobs(parse_json(
            R"({"jobs": [{"id": "a", "board": )" + good_board +
            R"(, "freqs": [1e8], "pich": 0.01}]})")),
        InvalidArgument);
    EXPECT_THROW(
        serve::parse_jobs(parse_json(
            R"({"jobs": [{"id": "a", "board": )" + good_board +
            R"(, "freqs": [1e8]},
                {"id": "a", "board": )" + good_board +
            R"(, "freqs": [1e8]}]})")),
        InvalidArgument);
    // A malformed board fails at parse time, naming the job.
    try {
        serve::parse_jobs(parse_json(
            R"({"jobs": [{"id": "bad-board", "board": "bogus 1 2\n",
                          "freqs": [1e8]}]})"));
        FAIL() << "malformed board accepted";
    } catch (const Error& e) {
        EXPECT_NE(std::string(e.what()).find("bad-board"), std::string::npos);
    }
}

// --- model cache -------------------------------------------------------------

TEST(ModelCache, SharesOneModelPerGeometryAndForksOnOptions) {
    serve::ModelCache cache;
    const Board board = parse_board_file(board_text(0));
    SsnModelOptions opt;
    opt.mesh_pitch = 0.01;
    opt.interior_nodes = 8;

    bool hit = true;
    const auto m1 = cache.acquire(board, opt, &hit);
    EXPECT_FALSE(hit);
    const auto m2 = cache.acquire(board, opt, &hit);
    EXPECT_TRUE(hit);
    EXPECT_EQ(m1.get(), m2.get()); // literally the same model

    // Any knob that changes the extraction forks the key.
    SsnModelOptions coarser = opt;
    coarser.mesh_pitch = 0.012;
    (void)cache.acquire(board, coarser, &hit);
    EXPECT_FALSE(hit);
    // ...and so does a different geometry.
    (void)cache.acquire(parse_board_file(board_text(1)), opt, &hit);
    EXPECT_FALSE(hit);

    const serve::ModelCache::Stats st = cache.stats();
    EXPECT_EQ(st.hits, 1u);
    EXPECT_EQ(st.misses, 3u);
    EXPECT_EQ(st.entries, 3u);
    EXPECT_GT(st.bytes, 0u);
}

TEST(ModelCache, EvictsLeastRecentlyUsedUnderByteBudget) {
    serve::ModelCache cache;
    const SsnModelOptions opt = base_spec("x", 0).model;
    const Board a = parse_board_file(board_text(0));
    const Board b = parse_board_file(board_text(1));

    bool hit = false;
    (void)cache.acquire(a, opt, &hit);
    const std::size_t one_entry = cache.stats().bytes;
    ASSERT_GT(one_entry, 0u);

    // Budget for one entry: caching B must push A out (B itself is
    // protected as the entry just inserted).
    cache.set_budget_bytes(one_entry);
    (void)cache.acquire(b, opt, &hit);
    EXPECT_FALSE(hit);
    EXPECT_EQ(cache.stats().evictions, 1u);
    EXPECT_EQ(cache.stats().entries, 1u);
    (void)cache.acquire(b, opt, &hit);
    EXPECT_TRUE(hit); // B survived
    (void)cache.acquire(a, opt, &hit);
    EXPECT_FALSE(hit); // A was the eviction victim

    cache.clear();
    EXPECT_EQ(cache.stats().entries, 0u);
    EXPECT_EQ(cache.stats().bytes, 0u);
    EXPECT_GE(cache.stats().evictions, 1u); // cumulative stats survive clear()
}

TEST_F(ServeEnv, ModelCacheFaultForcedEviction) {
    serve::ModelCache cache;
    const SsnModelOptions opt = base_spec("x", 0).model;
    bool hit = false;
    (void)cache.acquire(parse_board_file(board_text(0)), opt, &hit);
    EXPECT_EQ(cache.stats().evictions, 0u);

    // "cache.evict" forces one LRU eviction on the acquire where it fires,
    // so the eviction path is exercised without gigabyte fixtures.
    robust::FaultInjector::arm("cache.evict", 1, 1);
    (void)cache.acquire(parse_board_file(board_text(1)), opt, &hit);
    EXPECT_EQ(robust::FaultInjector::fire_count("cache.evict"), 1u);
    EXPECT_EQ(cache.stats().evictions, 1u);
    EXPECT_EQ(cache.stats().entries, 1u);
    (void)cache.acquire(parse_board_file(board_text(0)), opt, &hit);
    EXPECT_FALSE(hit); // the older entry was the victim
}

TEST(ModelCache, SingleFlightBuildsEachGeometryOnce) {
    serve::ModelCache cache;
    const Board board = parse_board_file(board_text(0));
    const SsnModelOptions opt = base_spec("x", 0).model;

    constexpr int kThreads = 4;
    std::atomic<int> ready{0};
    std::atomic<bool> go{false};
    std::vector<std::shared_ptr<const PlaneModel>> models(kThreads);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&, t] {
            ++ready;
            while (!go.load()) std::this_thread::yield();
            models[t] = cache.acquire(board, opt);
        });
    while (ready.load() < kThreads) std::this_thread::yield();
    go.store(true);
    for (std::thread& t : threads) t.join();

    // Exactly one build, everyone sharing its result — whether a caller won
    // the build race or waited behind the builder.
    const serve::ModelCache::Stats st = cache.stats();
    EXPECT_EQ(st.misses, 1u);
    EXPECT_EQ(st.hits, static_cast<std::uint64_t>(kThreads - 1));
    EXPECT_EQ(st.entries, 1u);
    for (int t = 1; t < kThreads; ++t)
        EXPECT_EQ(models[t].get(), models[0].get());
}

// --- journal -----------------------------------------------------------------

TEST(Journal, RoundTripsRecordsAndToleratesTornTail) {
    const std::string path = temp_path("journal_torn.jsonl");
    std::remove(path.c_str());
    {
        serve::Journal journal(path);
        serve::JournalRecord rec;
        rec.id = "sweep-a";
        rec.state = serve::JobState::Completed;
        rec.attempts = 2;
        rec.cache_hit = true;
        rec.digest = 0x9f86d081884c7d65ull;
        rec.summary = 1.25e-2;
        rec.wall_seconds = 0.034;
        journal.append(rec);
        rec.id = "tran-a";
        rec.state = serve::JobState::Failed;
        rec.error = "fault injected \"quoted\"";
        journal.append(rec);
    }
    // Simulate a kill mid-append: a torn final line.
    write_file(path, read_file(path) + "{\"id\":\"tran-b\",\"sta");

    const std::uint64_t torn_before =
        obs::counter("serve.journal.torn_lines").value();
    const std::vector<serve::JournalRecord> back = serve::Journal::load(path);
    ASSERT_EQ(back.size(), 2u);
    EXPECT_EQ(back[0].id, "sweep-a");
    EXPECT_EQ(back[0].state, serve::JobState::Completed);
    EXPECT_EQ(back[0].attempts, 2);
    EXPECT_TRUE(back[0].cache_hit);
    EXPECT_EQ(back[0].digest, 0x9f86d081884c7d65ull); // hex round trip
    EXPECT_DOUBLE_EQ(back[0].summary, 1.25e-2);
    EXPECT_EQ(back[1].state, serve::JobState::Failed);
    EXPECT_EQ(back[1].error, "fault injected \"quoted\"");
    EXPECT_EQ(obs::counter("serve.journal.torn_lines").value(),
              torn_before + 1);

    EXPECT_TRUE(serve::Journal::load(temp_path("no_such_journal.jsonl"))
                    .empty());
}

// --- engine ------------------------------------------------------------------

TEST_F(ServeEnv, CampaignResultsAreBitIdenticalToDirectSolves) {
    std::vector<serve::JobSpec> jobs;
    for (int i = 0; i < 4; ++i) {
        serve::JobSpec spec = sweep_spec("sweep" + std::to_string(i), i % 2);
        spec.ports = {{0.02, 0.02}, {0.05, 0.04}};
        jobs.push_back(std::move(spec));
    }
    jobs.push_back(transient_spec("tran0", 0));
    jobs.push_back(transient_spec("tran1", 1));

    serve::ModelCache cache;
    serve::BatchOptions opt;
    opt.cache = &cache;
    serve::JobQueue queue(opt);
    const serve::BatchResult res = queue.run(jobs);

    ASSERT_TRUE(res.all_completed());
    EXPECT_EQ(res.stats.completed, jobs.size());
    EXPECT_EQ(res.stats.cache_misses, 2u); // two distinct geometries
    EXPECT_EQ(res.stats.cache_hits, jobs.size() - 2);
    for (const serve::JobSpec& spec : jobs) {
        const serve::JobReport& rep = res.report(spec.id);
        EXPECT_EQ(rep.attempts, 1);
        EXPECT_EQ(rep.digest, direct_digest(spec)) << spec.id;
        EXPECT_GT(rep.summary, 0.0);
        if (spec.kind == serve::JobKind::Sweep) {
            EXPECT_EQ(rep.z.size(), spec.freqs_hz.size());
        }
    }
}

// The ISSUE acceptance campaign: 50 mixed jobs, "serve.job" armed to fail
// calls 3 and 4, plus one job whose deadline expires. Pinned to one thread
// so the fault lands on a known job: jobs run in order, job "sweep2"'s first
// attempt is site call 3 (fires), its retry is call 4 (fires again), and
// with max_retries = 1 it fails. Everything else must be untouched — and
// bit-identical to direct solves.
TEST_F(ServeEnv, AcceptanceCampaignContainsFaultsAndDeadlines) {
    test::ScopedThreadCount pin(1);
    constexpr int kGeometries = 5;
    std::vector<serve::JobSpec> jobs;
    for (int i = 0; i < 40; ++i) {
        serve::JobSpec spec = sweep_spec("sweep" + std::to_string(i),
                                         i % kGeometries);
        spec.ports = {{0.03, 0.025}};
        spec.max_retries = 1;
        jobs.push_back(std::move(spec));
    }
    for (int i = 0; i < 10; ++i) {
        serve::JobSpec spec = transient_spec("tran" + std::to_string(i), i % 2);
        spec.max_retries = 1;
        jobs.push_back(std::move(spec));
    }
    serve::JobSpec doomed = sweep_spec("deadline-job", 0);
    doomed.ports = {{0.03, 0.025}};
    doomed.deadline_s = 1e-7; // expires before the first cancellation point
    jobs.push_back(std::move(doomed));

    robust::FaultInjector::arm("serve.job", 3, 2);
    serve::ModelCache cache;
    serve::BatchOptions opt;
    opt.cache = &cache;
    serve::JobQueue queue(opt);
    const serve::BatchResult res = queue.run(jobs);

    // (disarm happens in TearDown — disarm_all also resets fire counts.)
    EXPECT_EQ(robust::FaultInjector::fire_count("serve.job"), 2u);

    // Exactly the faulted job failed (both its attempts absorbed the fault).
    const serve::JobReport& faulted = res.report("sweep2");
    EXPECT_EQ(faulted.state, serve::JobState::Failed);
    EXPECT_EQ(faulted.attempts, 2);
    EXPECT_EQ(faulted.recovery.count("serve.retry"), 1u);
    EXPECT_NE(faulted.error.find("fault injected"), std::string::npos);

    // Exactly the deadline job expired, with the recovery trail to prove it.
    const serve::JobReport& expired = res.report("deadline-job");
    EXPECT_EQ(expired.state, serve::JobState::DeadlineExpired);
    EXPECT_EQ(expired.recovery.count("serve.deadline"), 1u);

    // Every other job: clean first attempt, bit-identical to a direct solve.
    EXPECT_EQ(res.stats.failed, 1u);
    EXPECT_EQ(res.stats.deadline_expired, 1u);
    EXPECT_EQ(res.stats.completed, jobs.size() - 2);
    EXPECT_EQ(res.stats.retries, 1u);
    std::uint64_t checked = 0;
    for (const serve::JobSpec& spec : jobs) {
        const serve::JobReport& rep = res.report(spec.id);
        if (spec.id == "sweep2" || spec.id == "deadline-job") continue;
        EXPECT_EQ(rep.state, serve::JobState::Completed) << spec.id;
        EXPECT_EQ(rep.attempts, 1) << spec.id;
        EXPECT_FALSE(rep.recovery.any()) << spec.id;
        // Digest-check a sample (direct solves are the expensive part).
        if (checked < 5) {
            EXPECT_EQ(rep.digest, direct_digest(spec)) << spec.id;
            ++checked;
        }
    }

    // The campaign hammers 5 geometries, so the cache carries it: hit rate
    // well past the 50% acceptance bar even with the faulted job counting
    // as a miss.
    const double total = static_cast<double>(res.stats.cache_hits +
                                             res.stats.cache_misses);
    ASSERT_GT(total, 0.0);
    EXPECT_GT(static_cast<double>(res.stats.cache_hits) / total, 0.5);
}

TEST_F(ServeEnv, RetryLadderRecoversAFlakyJob) {
    // One fault on the first "serve.job" call: the only job's first attempt
    // fails, the retry (one recovery rung up) succeeds, and the result is
    // still bit-identical to a direct solve — escalated rungs leave healthy
    // code paths untouched.
    serve::JobSpec spec = sweep_spec("flaky", 0);
    spec.ports = {{0.03, 0.025}};
    spec.max_retries = 2;
    spec.backoff_s = 1e-3;
    robust::FaultInjector::arm("serve.job", 1, 1);

    serve::ModelCache cache;
    serve::BatchOptions opt;
    opt.cache = &cache;
    serve::JobQueue queue(opt);
    const serve::BatchResult res = queue.run({spec});

    const serve::JobReport& rep = res.report("flaky");
    EXPECT_EQ(rep.state, serve::JobState::Completed);
    EXPECT_EQ(rep.attempts, 2);
    EXPECT_EQ(rep.recovery.count("serve.retry"), 1u);
    EXPECT_EQ(res.stats.retries, 1u);
    EXPECT_EQ(rep.digest, direct_digest(spec));
}

TEST_F(ServeEnv, CancelAllAbandonsTheCampaign) {
    std::vector<serve::JobSpec> jobs;
    for (int i = 0; i < 8; ++i)
        jobs.push_back(transient_spec("tran" + std::to_string(i), i % 2));

    serve::ModelCache cache;
    serve::BatchOptions opt;
    opt.cache = &cache;
    serve::JobQueue queue(opt);

    // Hammer cancel_all from another thread for the whole run: every job
    // reaches a terminal state (containment), and — since the canceller
    // starts before any job can finish a full transient — at least one job
    // is abandoned at a cancellation point.
    std::atomic<bool> done{false};
    std::thread canceller([&] {
        while (!done.load()) {
            queue.cancel_all("operator abort");
            std::this_thread::yield();
        }
    });
    const serve::BatchResult res = queue.run(jobs);
    done.store(true);
    canceller.join();

    EXPECT_EQ(res.stats.cancelled + res.stats.completed, jobs.size());
    EXPECT_GE(res.stats.cancelled, 1u);
    for (const serve::JobReport& rep : res.reports) {
        if (rep.state == serve::JobState::Completed) continue;
        EXPECT_EQ(rep.state, serve::JobState::Cancelled) << rep.id;
        EXPECT_EQ(rep.recovery.count("serve.cancelled"), 1u) << rep.id;
        EXPECT_NE(rep.error.find("operator abort"), std::string::npos)
            << rep.id;
    }
}

TEST(ServeEngine, RunRejectsBadCampaigns) {
    serve::JobQueue queue;
    EXPECT_THROW(queue.run({serve::JobSpec{}}), InvalidArgument); // empty id
    std::vector<serve::JobSpec> dup{sweep_spec("a", 0), sweep_spec("a", 1)};
    EXPECT_THROW(queue.run(dup), InvalidArgument);

    serve::BatchOptions opt;
    opt.resume = true; // resume without a journal path
    serve::JobQueue bad(opt);
    EXPECT_THROW(bad.run({sweep_spec("a", 0)}), InvalidArgument);
}

// Satellite of the ISSUE acceptance: a campaign killed mid-journal (here:
// the journal truncated after a prefix of fsync'd records plus a torn final
// line) and resumed must merge to exactly the digests of an uninterrupted
// run — at 1, 2, and 8 threads.
TEST_F(ServeEnv, CrashResumeMergesBitIdenticalAtAnyThreadCount) {
    std::vector<serve::JobSpec> jobs;
    for (int i = 0; i < 6; ++i) {
        serve::JobSpec spec = sweep_spec("sweep" + std::to_string(i), i % 2);
        spec.ports = {{0.03, 0.025}};
        jobs.push_back(std::move(spec));
    }
    jobs.push_back(transient_spec("tran0", 0));
    jobs.push_back(transient_spec("tran1", 1));

    // Reference: the uninterrupted campaign.
    std::vector<std::uint64_t> want;
    {
        serve::ModelCache cache;
        serve::BatchOptions opt;
        opt.cache = &cache;
        const serve::BatchResult res = serve::JobQueue(opt).run(jobs);
        ASSERT_TRUE(res.all_completed());
        for (const serve::JobReport& rep : res.reports)
            want.push_back(rep.digest);
    }

    // The "crashed" journal: a full run's journal cut after 4 records, with
    // a torn tail byte-for-byte like a writer killed mid-append.
    const std::string full_path = temp_path("resume_full.jsonl");
    std::remove(full_path.c_str());
    {
        test::ScopedThreadCount pin(1); // journal order = job order
        serve::ModelCache cache;
        serve::BatchOptions opt;
        opt.cache = &cache;
        opt.journal_path = full_path;
        ASSERT_TRUE(serve::JobQueue(opt).run(jobs).all_completed());
    }
    std::string torn;
    {
        const std::string text = read_file(full_path);
        std::size_t pos = 0;
        for (int lines = 0; lines < 4; ++lines)
            pos = text.find('\n', pos) + 1;
        torn = text.substr(0, pos) + "{\"id\":\"sweep4\",\"state\":\"comp";
    }

    for (const std::size_t threads : {1u, 2u, 8u}) {
        SCOPED_TRACE("threads=" + std::to_string(threads));
        test::ScopedThreadCount pin(threads);
        const std::string path =
            temp_path("resume_t" + std::to_string(threads) + ".jsonl");
        write_file(path, torn);

        serve::ModelCache cache;
        serve::BatchOptions opt;
        opt.cache = &cache;
        opt.journal_path = path;
        opt.resume = true;
        const serve::BatchResult res = serve::JobQueue(opt).run(jobs);

        ASSERT_TRUE(res.all_completed());
        EXPECT_EQ(res.stats.resumed, 4u); // the intact journal prefix
        EXPECT_EQ(res.stats.completed, jobs.size() - 4);
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            EXPECT_EQ(res.reports[i].digest, want[i]) << jobs[i].id;
            EXPECT_EQ(res.reports[i].state, i < 4
                                                ? serve::JobState::Resumed
                                                : serve::JobState::Completed);
        }

        // Resuming again from the (now complete) journal runs nothing.
        const serve::BatchResult again = serve::JobQueue(opt).run(jobs);
        EXPECT_EQ(again.stats.resumed, jobs.size());
        for (std::size_t i = 0; i < jobs.size(); ++i)
            EXPECT_EQ(again.reports[i].digest, want[i]);
    }
}

} // namespace
