// Tests for the CSV and Touchstone writers.
#include <gtest/gtest.h>

#include <sstream>

#include "io/csv.hpp"
#include "io/touchstone.hpp"

using namespace pgsi;

TEST(Csv, WritesHeaderAndRows) {
    std::ostringstream os;
    write_csv(os, {"t", "v"}, {{0.0, 1.0}, {5.0, 6.0}});
    const std::string s = os.str();
    EXPECT_NE(s.find("t,v\n"), std::string::npos);
    EXPECT_NE(s.find("0,5\n"), std::string::npos);
    EXPECT_NE(s.find("1,6\n"), std::string::npos);
}

TEST(Csv, RejectsRagged) {
    std::ostringstream os;
    EXPECT_THROW(write_csv(os, {"a", "b"}, {{1.0}, {1.0, 2.0}}), InvalidArgument);
    EXPECT_THROW(write_csv(os, {"a"}, {{1.0}, {2.0}}), InvalidArgument);
}

TEST(Touchstone, TwoPortColumnOrder) {
    MatrixC s(2, 2);
    s(0, 0) = Complex(0.1, 0.0);
    s(1, 0) = Complex(0.9, 0.0);
    s(0, 1) = Complex(0.8, 0.0);
    s(1, 1) = Complex(0.2, 0.0);
    std::ostringstream os;
    write_touchstone(os, {1e9}, {s});
    const std::string out = os.str();
    EXPECT_NE(out.find("# Hz S RI R 50"), std::string::npos);
    // 2-port order: S11 S21 S12 S22.
    EXPECT_NE(out.find("1000000000 0.1 0 0.9 0 0.8 0 0.2 0"), std::string::npos);
}

TEST(Touchstone, RejectsMismatch) {
    std::ostringstream os;
    EXPECT_THROW(write_touchstone(os, {1e9, 2e9}, {MatrixC(1, 1)}),
                 InvalidArgument);
}

TEST(Touchstone, MultiPortRowMajor) {
    MatrixC s(3, 3);
    for (int i = 0; i < 3; ++i)
        for (int j = 0; j < 3; ++j) s(i, j) = Complex(i + 1, j + 1);
    std::ostringstream os;
    write_touchstone(os, {5e8}, {s});
    // First entries after the frequency: S11 then S12.
    EXPECT_NE(os.str().find("500000000 1 1 1 2"), std::string::npos);
}

TEST(Touchstone, RoundTripRi) {
    MatrixC s1(2, 2), s2(2, 2);
    s1(0, 0) = Complex(0.1, -0.2);
    s1(1, 0) = Complex(0.8, 0.1);
    s1(0, 1) = Complex(0.8, 0.1);
    s1(1, 1) = Complex(0.05, 0.3);
    s2 = s1;
    s2(0, 0) = Complex(-0.4, 0.0);
    std::ostringstream os;
    write_touchstone(os, {1e9, 2e9}, {s1, s2}, 75.0);
    const TouchstoneData d = read_touchstone(os.str());
    ASSERT_EQ(d.s.size(), 2u);
    EXPECT_DOUBLE_EQ(d.z0, 75.0);
    EXPECT_NEAR(d.freqs_hz[1], 2e9, 1.0);
    for (int i = 0; i < 2; ++i)
        for (int j = 0; j < 2; ++j)
            EXPECT_NEAR(std::abs(d.s[0](i, j) - s1(i, j)), 0.0, 1e-9);
    EXPECT_NEAR(d.s[1](0, 0).real(), -0.4, 1e-9);
}

TEST(Touchstone, ReadsMaAndGhzDefaults) {
    // Default option line: GHz, S, MA, 50 ohm.
    const std::string text =
        "! comment\n# GHz S MA R 50\n1.0 0.5 90\n";
    const TouchstoneData d = read_touchstone(text);
    ASSERT_EQ(d.s.size(), 1u);
    EXPECT_NEAR(d.freqs_hz[0], 1e9, 1.0);
    EXPECT_NEAR(d.s[0](0, 0).real(), 0.0, 1e-12);
    EXPECT_NEAR(d.s[0](0, 0).imag(), 0.5, 1e-12);
}

TEST(Touchstone, ReadsDbFormat) {
    const std::string text = "# MHz S DB R 50\n100 -6.0206 180\n";
    const TouchstoneData d = read_touchstone(text, 1);
    // -6.0206 dB = 0.5 magnitude, at 180 degrees.
    EXPECT_NEAR(d.s[0](0, 0).real(), -0.5, 1e-4);
    EXPECT_NEAR(d.freqs_hz[0], 100e6, 1.0);
}

TEST(Touchstone, WrappedDataLines) {
    // A 2-port record split across two lines.
    const std::string text =
        "# Hz S RI R 50\n1000 0.1 0 0.9 0\n0.8 0 0.2 0\n";
    const TouchstoneData d = read_touchstone(text, 2);
    ASSERT_EQ(d.s.size(), 1u);
    EXPECT_NEAR(d.s[0](1, 0).real(), 0.9, 1e-12);
    EXPECT_NEAR(d.s[0](0, 1).real(), 0.8, 1e-12);
}

TEST(Touchstone, MultiPortRecordsWrapWithFourPairsPerLine) {
    // Regression: n >= 3 records used to be written as one giant line. The
    // spec wants one matrix row per line, at most four complex pairs each.
    MatrixC s(5, 5);
    for (int i = 0; i < 5; ++i)
        for (int j = 0; j < 5; ++j) s(i, j) = Complex(i + 1, -(j + 1));
    std::ostringstream os;
    write_touchstone(os, {1e9}, {s});

    std::istringstream is(os.str());
    std::string line;
    std::size_t data_lines = 0;
    while (std::getline(is, line)) {
        if (line.empty() || line[0] == '!' || line[0] == '#') continue;
        ++data_lines;
        std::istringstream ls(line);
        double v;
        std::size_t count = 0;
        while (ls >> v) ++count;
        // freq + up to 4 pairs on the first line, pairs only afterwards.
        EXPECT_LE(count, 9u) << "line: " << line;
    }
    // 5 rows of 5 pairs, wrapped at 4 -> 2 lines per row.
    EXPECT_EQ(data_lines, 10u);
}

TEST(Touchstone, MultiPortWrappedRoundTrip) {
    for (const std::size_t n : {3u, 5u}) {
        std::vector<MatrixC> sweep;
        for (int rec = 0; rec < 2; ++rec) {
            MatrixC s(n, n);
            for (std::size_t i = 0; i < n; ++i)
                for (std::size_t j = 0; j < n; ++j)
                    s(i, j) = Complex(0.01 * static_cast<double>(i * n + j),
                                      0.1 * static_cast<double>(rec + 1));
            sweep.push_back(std::move(s));
        }
        std::ostringstream os;
        write_touchstone(os, {1e9, 2e9}, sweep, 50.0);
        const TouchstoneData d = read_touchstone(os.str(), n);
        ASSERT_EQ(d.s.size(), 2u);
        for (int rec = 0; rec < 2; ++rec)
            for (std::size_t i = 0; i < n; ++i)
                for (std::size_t j = 0; j < n; ++j)
                    EXPECT_NEAR(std::abs(d.s[rec](i, j) - sweep[rec](i, j)),
                                0.0, 1e-9)
                        << "n " << n << " rec " << rec;
    }
}

TEST(Touchstone, BadReferenceResistanceThrows) {
    // Regression: a malformed R value used to crash via unguarded std::stod.
    EXPECT_THROW(read_touchstone("# Hz S RI R fifty\n1000 0.1 0\n", 1),
                 InvalidArgument);
    EXPECT_THROW(read_touchstone("# Hz S RI R 50x\n1000 0.1 0\n", 1),
                 InvalidArgument);
    // Missing value after R is an error, not a silent default.
    EXPECT_THROW(read_touchstone("# Hz S RI R\n1000 0.1 0\n", 1),
                 InvalidArgument);
}

TEST(Touchstone, ReaderErrors) {
    EXPECT_THROW(read_touchstone("# Hz S RI R 50\n"), InvalidArgument);
    EXPECT_THROW(read_touchstone("# Hz S RI R 50\n1000 0.1\n", 2),
                 InvalidArgument);
    EXPECT_THROW(read_touchstone("# Hz S XX R 50\n1000 0.1 0\n", 1),
                 InvalidArgument);
}
