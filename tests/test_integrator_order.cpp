// Numerical-order property tests for the transient integrators (§5.1:
// "both first order and second order integration methods are used ...
// providing good stability and accuracy with speed").
//
// On an RC step response with exact solution v(t) = 1 - exp(-t/τ), halving
// dt must cut the endpoint error ~4x for trapezoidal (2nd order) and ~2x for
// backward Euler (1st order).
#include <gtest/gtest.h>

#include <cmath>

#include "circuit/transient.hpp"

using namespace pgsi;

namespace {

double endpoint_error(Integrator method, double dt) {
    const double r = 1e3, c = 1e-9, tau = r * c;
    Netlist nl;
    const NodeId in = nl.node("in");
    const NodeId out = nl.node("out");
    nl.add_vsource("V1", in, nl.ground(),
                   Source::pulse(0, 1, 0.0, dt / 100, dt / 100, 1.0));
    nl.add_resistor("R1", in, out, r);
    nl.add_capacitor("C1", out, nl.ground(), c);
    TransientOptions opt;
    opt.dt = dt;
    opt.tstop = tau;
    opt.method = method;
    opt.probes = {out};
    const TransientResult res = transient_analyze(nl, opt);
    const double exact = 1.0 - std::exp(-res.time.back() / tau);
    return std::abs(res.waveform(out).back() - exact);
}

} // namespace

class IntegratorOrder : public ::testing::TestWithParam<double> {};

TEST_P(IntegratorOrder, TrapezoidalIsSecondOrder) {
    const double dt = GetParam();
    const double e1 = endpoint_error(Integrator::Trapezoidal, dt);
    const double e2 = endpoint_error(Integrator::Trapezoidal, dt / 2);
    // Order 2: ratio ~4. Allow 2.8..6 (the BE first step pollutes slightly).
    EXPECT_GT(e1 / e2, 2.8) << "dt=" << dt;
    EXPECT_LT(e1 / e2, 6.5) << "dt=" << dt;
}

TEST_P(IntegratorOrder, BackwardEulerIsFirstOrder) {
    const double dt = GetParam();
    const double e1 = endpoint_error(Integrator::BackwardEuler, dt);
    const double e2 = endpoint_error(Integrator::BackwardEuler, dt / 2);
    EXPECT_GT(e1 / e2, 1.6) << "dt=" << dt;
    EXPECT_LT(e1 / e2, 2.6) << "dt=" << dt;
}

TEST_P(IntegratorOrder, TrapezoidalBeatsBackwardEuler) {
    const double dt = GetParam();
    EXPECT_LT(endpoint_error(Integrator::Trapezoidal, dt),
              endpoint_error(Integrator::BackwardEuler, dt));
}

INSTANTIATE_TEST_SUITE_P(Steps, IntegratorOrder,
                         ::testing::Values(1e-8, 5e-9, 2.5e-9));
