// Tests for the property-based verification harness itself: generator
// determinism and coverage, the invariant checkers on known-good and
// deliberately corrupted inputs, the greedy shrinker, repro emission, and
// campaign/manifest determinism. The 20-iteration recovery campaign doubles
// as the PR 4 recovery-ladder coverage requirement: every random netlist run
// under an injected transient.newton fault must converge back to the
// unfaulted golden.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "si/board_file.hpp"
#include "verify/invariants.hpp"
#include "verify/scenario.hpp"
#include "verify/shrink.hpp"
#include "verify/verify.hpp"

using namespace pgsi;
using namespace pgsi::verify;

namespace {

PlaneScenario rect_scenario() {
    PlaneScenario s;
    s.kind = "rectangle";
    s.pitch = 1e-3;
    s.sheet_resistance = 1e-3;
    s.eps_r = 4.2;
    ShapeSpec sh;
    sh.nx = 10;
    sh.ny = 8;
    sh.z = 0.3e-3;
    s.shapes.push_back(sh);
    s.ports.push_back(PortSpec{0, 0.25, 0.3});
    s.ports.push_back(PortSpec{0, 0.75, 0.7});
    return s;
}

} // namespace

TEST(VerifyRng, StreamsAreDeterministicAndIndependent) {
    Rng a = Rng::stream(7, 3);
    Rng b = Rng::stream(7, 3);
    Rng c = Rng::stream(7, 4);
    bool any_differs = false;
    for (int i = 0; i < 16; ++i) {
        const std::uint64_t va = a.next_u64();
        EXPECT_EQ(va, b.next_u64());
        any_differs = any_differs || va != c.next_u64();
    }
    EXPECT_TRUE(any_differs);
}

TEST(VerifyGenerator, PlaneScenariosAreDeterministic) {
    for (int iter = 0; iter < 8; ++iter) {
        Rng r1 = Rng::stream(42, iter);
        Rng r2 = Rng::stream(42, iter);
        EXPECT_EQ(generate_plane(r1).describe(), generate_plane(r2).describe());
    }
}

TEST(VerifyGenerator, CoversEveryScenarioKind) {
    std::set<std::string> kinds;
    for (int iter = 0; iter < 60; ++iter) {
        Rng rng = Rng::stream(1, iter);
        const PlaneScenario s = generate_plane(rng);
        EXPECT_NO_THROW(s.validate()) << s.describe();
        kinds.insert(s.kind);
    }
    for (const char* want : {"rectangle", "lshape", "holey", "split",
                             "multilayer", "nonuniform"})
        EXPECT_TRUE(kinds.count(want)) << "kind never generated: " << want;
}

TEST(VerifyGenerator, NonuniformScenariosForceDenseFallback) {
    for (int iter = 0; iter < 60; ++iter) {
        Rng rng = Rng::stream(1, iter);
        const PlaneScenario s = generate_plane(rng);
        if (s.kind != "nonuniform") continue;
        EXPECT_FALSE(s.make_bem().uniform_lattice()) << s.describe();
        return;
    }
    FAIL() << "no nonuniform scenario in 60 draws";
}

TEST(VerifyGenerator, NetlistScenariosAreDeterministicAndSolvable) {
    for (int iter = 0; iter < 4; ++iter) {
        Rng r1 = Rng::stream(9, iter);
        Rng r2 = Rng::stream(9, iter);
        const NetlistScenario a = generate_netlist(r1);
        const NetlistScenario b = generate_netlist(r2);
        EXPECT_EQ(a.summary, b.summary);
        EXPECT_GT(a.netlist.node_count(), 0u);
    }
}

TEST(VerifyCheckers, ReciprocityCatchesAsymmetry) {
    MatrixC z(2, 2);
    z(0, 0) = z(1, 1) = Complex(1.0, 0.5);
    z(0, 1) = Complex(0.2, 0.1);
    z(1, 0) = Complex(0.2, 0.1);
    EXPECT_TRUE(check_reciprocity(z, 1e-9).pass);
    z(1, 0) += Complex(1e-3, 0.0);
    const CheckResult r = check_reciprocity(z, 1e-9);
    EXPECT_FALSE(r.pass);
    EXPECT_GT(r.error, 1e-4);
}

TEST(VerifyCheckers, PassivityCatchesNegativeRealPart) {
    MatrixC z(2, 2);
    z(0, 0) = z(1, 1) = Complex(1.0, -3.0);
    z(0, 1) = z(1, 0) = Complex(0.1, -0.4);
    EXPECT_TRUE(check_passivity(z, 1e-10).pass);
    z(0, 0) = Complex(-0.05, -3.0); // active entry -> indefinite Hermitian part
    const CheckResult r = check_passivity(z, 1e-10);
    EXPECT_FALSE(r.pass);
    EXPECT_GT(r.error, 1e-3);
}

TEST(VerifyCheckers, DcLimitsHoldOnKnownRectangle) {
    const PlaneScenario s = rect_scenario();
    const CheckResult cap = run_plane_invariant(s, "dc_capacitance", {});
    EXPECT_TRUE(cap.pass) << cap.detail;
    const CheckResult res = run_plane_invariant(s, "dc_resistance", {});
    EXPECT_TRUE(res.pass) << res.detail;
}

TEST(VerifyCheckers, SweepRecycleHoldsOnKnownRectangle) {
    // The sweep-engine invariant: a warm-started, subspace-recycled
    // multi-frequency sweep must match cold direct solves point by point.
    const PlaneScenario s = rect_scenario();
    const CheckResult r = run_plane_invariant(s, "sweep_recycle", {});
    EXPECT_TRUE(r.pass) << r.detail;
    EXPECT_FALSE(r.skipped);
    EXPECT_LE(r.error, r.tolerance);
}

TEST(VerifyCheckers, EnergyBalanceHoldsOnGeneratedNetlists) {
    for (int iter = 0; iter < 5; ++iter) {
        Rng rng = Rng::stream(11, iter);
        const NetlistScenario ns = generate_netlist(rng);
        const CheckResult r =
            check_energy_balance(ns.netlist, ns.dt, ns.tstop, 0.03);
        EXPECT_TRUE(r.pass) << ns.summary << ": " << r.detail;
    }
}

TEST(VerifyShrink, MinimizesUnderSyntheticPredicate) {
    // Find a multilayer scenario with >= 2 layers and shrink under "still
    // has >= 2 layers". The minimum under the move set is 2 layers of 2x2
    // shapes with one port.
    for (int iter = 0; iter < 60; ++iter) {
        Rng rng = Rng::stream(1, iter);
        const PlaneScenario s = generate_plane(rng);
        if (s.layer_count() < 2) continue;
        const ShrinkResult sr = shrink_scenario(
            s, [](const PlaneScenario& c) { return c.layer_count() >= 2; });
        EXPECT_EQ(sr.scenario.layer_count(), 2u) << sr.scenario.describe();
        EXPECT_LE(sr.scenario.cell_count(), 8u) << sr.scenario.describe();
        EXPECT_EQ(sr.scenario.ports.size(), 1u);
        EXPECT_GT(sr.moves_kept, 0);
        EXPECT_NO_THROW(sr.scenario.validate());
        return;
    }
    FAIL() << "no multilayer scenario in 60 draws";
}

TEST(VerifyShrink, ReproFilesAreSelfContained) {
    const PlaneScenario s = rect_scenario();
    CheckResult failure;
    failure.invariant = "reciprocity";
    failure.pass = false;
    failure.error = 0.5;
    failure.tolerance = 1e-9;
    const std::string dir =
        (std::filesystem::temp_directory_path() / "pgsi_verify_test").string();
    const ReproPaths paths = write_repro(dir, "demo_seed1_iter0", s, failure);

    std::ifstream cpp(paths.cpp_path);
    ASSERT_TRUE(cpp.good());
    std::stringstream cs;
    cs << cpp.rdbuf();
    EXPECT_NE(cs.str().find("TEST(VerifyRepro,"), std::string::npos);
    EXPECT_NE(cs.str().find("run_plane_invariant"), std::string::npos);
    EXPECT_NE(cs.str().find("reciprocity"), std::string::npos);

    std::ifstream brd(paths.board_path);
    ASSERT_TRUE(brd.good());
    std::stringstream bs;
    bs << brd.rdbuf();
    // The emitted footprint must be loadable by the board-file parser.
    EXPECT_NO_THROW(parse_board_file(bs.str()));

    std::filesystem::remove_all(dir);
}

TEST(VerifyCampaign, SmokeRunHoldsAndIsDeterministic) {
    VerifyOptions opt;
    opt.seed = 3;
    opt.iterations = 3;
    const CampaignResult a = run_campaign(opt);
    EXPECT_TRUE(a.ok()) << manifest_json(a);
    const CampaignResult b = run_campaign(opt);
    EXPECT_EQ(manifest_json(a), manifest_json(b));
}

TEST(VerifyCampaign, SuiteSelectionIsolatesStreams) {
    // Netlist scenarios must not shift when the plane suites are deselected.
    VerifyOptions all;
    all.seed = 5;
    all.iterations = 2;
    VerifyOptions rec;
    rec.seed = 5;
    rec.iterations = 2;
    rec.suites = {Suite::Recovery};
    const CampaignResult a = run_campaign(all);
    const CampaignResult b = run_campaign(rec);
    const auto stats = [](const CampaignResult& r, const char* name) {
        for (const InvariantStats& s : r.invariants)
            if (s.invariant == name) return s;
        return InvariantStats{};
    };
    EXPECT_EQ(stats(a, "fault_recovery").worst_error,
              stats(b, "fault_recovery").worst_error);
}

TEST(VerifyCampaign, ParseSuites) {
    EXPECT_EQ(parse_suites("all").size(), all_suites().size());
    const std::vector<Suite> two = parse_suites("backends,energy");
    ASSERT_EQ(two.size(), 2u);
    EXPECT_EQ(two[0], Suite::Backends);
    EXPECT_EQ(two[1], Suite::Energy);
    EXPECT_THROW(parse_suites("bogus"), InvalidArgument);
}

// PR 4 recovery-ladder coverage: with a transient.newton fault injected on
// the first step attempts, 20 random netlists must all converge back to the
// unfaulted golden within the recovery tolerance.
TEST(VerifyRecovery, TwentyRandomNetlistsConvergeUnderInjectedFault) {
    VerifyOptions opt;
    opt.seed = 1;
    opt.iterations = 20;
    opt.suites = {Suite::Recovery};
    const CampaignResult r = run_campaign(opt);
    EXPECT_TRUE(r.ok()) << manifest_json(r);
    ASSERT_EQ(r.invariants.size(), 1u);
    EXPECT_EQ(r.invariants[0].checks, 20u);
    EXPECT_EQ(r.invariants[0].failures, 0u);
}
