// Passivity property sweeps: a passive structure must never generate energy
// in any of our representations. Checked via the real part of the port
// admittance (positive semidefinite up to numerical noise) and via
// long-horizon transient energy decay.
#include <gtest/gtest.h>

#include <cmath>

#include "pgsi.hpp"

using namespace pgsi;

namespace {

PlaneBem lossy_plane(double pitch) {
    ConductorShape s;
    s.outline = Polygon::rectangle(0, 0, 0.04, 0.03);
    s.z = 0.5e-3;
    s.sheet_resistance = 3e-3;
    return PlaneBem(RectMesh({s}, pitch), Greens::homogeneous(4.5, true),
                    BemOptions{});
}

// Smallest eigenvalue of the symmetrized real part of a complex matrix.
double min_real_part_eig(const MatrixC& y) {
    const std::size_t n = y.rows();
    MatrixD re(n, n);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j)
            re(i, j) = 0.5 * (y(i, j).real() + y(j, i).real());
    const SymmetricEigen e = eigen_symmetric(re);
    return e.values.front();
}

} // namespace

class PassivitySweep : public ::testing::TestWithParam<double> {};

TEST_P(PassivitySweep, EnforcedCircuitAdmittanceIsDissipative) {
    const double freq = GetParam();
    const PlaneBem bem = lossy_plane(0.01);
    // enforce_passive = true (default): all-positive R/L/C network.
    const EquivalentCircuit ec = CircuitExtractor(bem).extract_full();
    const MatrixC y = ec.admittance(freq);
    const double scale = y.max_abs();
    EXPECT_GE(min_real_part_eig(y), -1e-9 * scale) << freq;
}

TEST_P(PassivitySweep, DirectSolverAdmittanceIsDissipative) {
    const double freq = GetParam();
    const PlaneBem bem = lossy_plane(0.01);
    const DirectSolver solver(bem, SurfaceImpedance::from_sheet_resistance(3e-3));
    const MatrixC y = solver.nodal_admittance(freq);
    EXPECT_GE(min_real_part_eig(y), -1e-9 * y.max_abs()) << freq;
}

INSTANTIATE_TEST_SUITE_P(Freqs, PassivitySweep,
                         ::testing::Values(10e6, 100e6, 1e9, 5e9));

TEST(Passivity, TransientEnergyDecaysAfterExcitation) {
    // Kick the enforced-passive circuit and verify the ringdown decays —
    // the time-domain face of the same property.
    const PlaneBem bem = lossy_plane(0.01);
    const EquivalentCircuit ec = CircuitExtractor(bem).extract_full();
    Netlist nl;
    std::vector<NodeId> map;
    for (std::size_t k = 0; k < ec.node_count(); ++k)
        map.push_back(nl.add_node("n" + std::to_string(k)));
    ec.stamp(nl, map, nl.ground(), "pg");
    nl.add_isource("I1", nl.ground(), map[0],
                   Source::pulse(0, 1, 0, 0.05e-9, 0.05e-9, 0.1e-9));
    // 50-ohm termination at the driven port: provides the DC reference
    // (otherwise the capacitively-coupled island floats) and a realistic
    // damping path — the plane's own mΩ sheet loss has a ~µs decay constant,
    // far beyond this window.
    nl.add_resistor("Rterm", map[0], nl.ground(), 50.0);
    TransientOptions opt;
    opt.dt = 10e-12;
    opt.tstop = 20e-9;
    opt.probes = {map[0], map[map.size() / 2]};
    const TransientResult r = transient_analyze(nl, opt);
    for (NodeId n : opt.probes) {
        const VectorD w = r.waveform(n);
        double early = 0, late = 0;
        for (std::size_t i = 0; i < w.size(); ++i) {
            if (r.time[i] < 5e-9) early = std::max(early, std::abs(w[i]));
            if (r.time[i] > 15e-9) late = std::max(late, std::abs(w[i]));
        }
        EXPECT_LT(late, 0.5 * early);
    }
}

TEST(Passivity, UmbrellaHeaderCompiles) {
    // The umbrella include pulled everything above in; touch a few symbols
    // across modules so the translation unit exercises them together.
    EXPECT_GT(pi, 3.14);
    EXPECT_GT(ViaSpec{}.inductance(), 0.0);
    EXPECT_NO_THROW(Source::pulse(0, 1, 0, 1e-9, 1e-9, 1e-9));
}
