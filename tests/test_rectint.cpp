// Tests for the closed-form rectangle 1/r integrals — the primitive under
// every BEM matrix entry. Verified against brute-force numerical quadrature.
#include <gtest/gtest.h>

#include <cmath>

#include "em/rectint.hpp"
#include "numeric/quadrature.hpp"

using namespace pgsi;

namespace {

// Composite numerical reference: the rectangle is tiled into panels so the
// near-singular peak (small z above the rectangle) is resolved. Valid when
// the observation point is not *in* the source plane region (z > 0 or p
// outside).
double brute_force(Point2 p, const Rect& r, double z) {
    constexpr int panels = 16;
    const double px = (r.x1 - r.x0) / panels, py = (r.y1 - r.y0) / panels;
    double sum = 0;
    for (int i = 0; i < panels; ++i)
        for (int j = 0; j < panels; ++j)
            sum += integrate2d(
                [&](double x, double y) {
                    const double dx = p.x - x, dy = p.y - y;
                    return 1.0 / std::sqrt(dx * dx + dy * dy + z * z);
                },
                r.x0 + i * px, r.x0 + (i + 1) * px, r.y0 + j * py,
                r.y0 + (j + 1) * py, 8);
    return sum;
}

} // namespace

TEST(RectInt, CenterOfSquareKnownValue) {
    // Potential integral at the center of an a×a square: the four quadrant
    // corner integrals 2·(a/2)·ln(1+√2) sum to 4a·ln(1+√2) (classic result).
    const double a = 2.0;
    const Rect r{-1, 1, -1, 1};
    const double v = rect_inv_r_integral({0, 0}, r, 0.0);
    EXPECT_NEAR(v, 4.0 * a * std::log(1.0 + std::sqrt(2.0)), 1e-10);
}

TEST(RectInt, MatchesQuadratureOutside) {
    const Rect r{0, 0.02, 0, 0.01};
    const Point2 p{0.05, 0.03};
    EXPECT_NEAR(rect_inv_r_integral(p, r, 0.0), brute_force(p, r, 0.0),
                1e-9 * brute_force(p, r, 0.0));
}

TEST(RectInt, MatchesQuadratureWithZOffset) {
    const Rect r{0, 0.02, 0, 0.01};
    const Point2 p{0.01, 0.005}; // directly above the rectangle
    for (double z : {0.0005, 0.002, 0.01, 0.05}) {
        const double ref = brute_force(p, r, z);
        EXPECT_NEAR(rect_inv_r_integral(p, r, z), ref, 1e-5 * ref) << "z=" << z;
    }
}

TEST(RectInt, ContinuousAcrossEdge) {
    // The integral is continuous as the observation point crosses the
    // rectangle edge.
    const Rect r{0, 1, 0, 1};
    const double inside = rect_inv_r_integral({1.0 - 1e-9, 0.5}, r, 0.0);
    const double outside = rect_inv_r_integral({1.0 + 1e-9, 0.5}, r, 0.0);
    EXPECT_NEAR(inside, outside, 1e-6 * inside);
}

TEST(RectInt, OnCornerFinite) {
    const Rect r{0, 1, 0, 1};
    const double v = rect_inv_r_integral({0, 0}, r, 0.0);
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_GT(v, 0.0);
    // Corner value of unit square: a·ln((b+d)/a)+b·ln((a+d)/b), a=b=1, d=√2.
    EXPECT_NEAR(v, 2.0 * std::log(1.0 + std::sqrt(2.0)), 1e-10);
}

TEST(RectInt, ScalesLinearly) {
    // I(s·geometry) = s·I(geometry) for the 1/r kernel.
    const Rect r{0, 0.01, 0, 0.02};
    const Rect rs{0, 1.0, 0, 2.0};
    const double v = rect_inv_r_integral({0.005, 0.01}, r, 0.0);
    const double vs = rect_inv_r_integral({0.5, 1.0}, rs, 0.0);
    EXPECT_NEAR(vs, 100.0 * v, 1e-9 * vs);
}

TEST(RectInt, PointApproxConvergesFar) {
    const Rect r{0, 0.01, 0, 0.01};
    const Point2 far{0.3, 0.2};
    const double exact = rect_inv_r_integral(far, r, 0.0);
    const double approx = rect_inv_r_point_approx(far, r, 0.0);
    EXPECT_NEAR(approx, exact, 2e-4 * exact);
}

// Property sweep: random rectangles and observation points agree with
// quadrature whenever the point is safely outside.
class RectIntProperty : public ::testing::TestWithParam<int> {};

TEST_P(RectIntProperty, AgreesWithQuadrature) {
    const int k = GetParam();
    const double w = 0.005 * (1 + k % 4);
    const double h = 0.003 * (1 + k % 3);
    const Rect r{0.0, w, 0.0, h};
    const double ang = 0.7 * k;
    const Point2 p{w / 2 + 3 * w * std::cos(ang), h / 2 + 3 * h * std::sin(ang)};
    const double z = 0.001 * (k % 5);
    const double ref = brute_force(p, r, z);
    EXPECT_NEAR(rect_inv_r_integral(p, r, z), ref, 1e-6 * ref);
}

INSTANTIATE_TEST_SUITE_P(Cases, RectIntProperty, ::testing::Range(0, 20));

TEST(RectInt, EvenInZ) {
    // Regression: 1/R depends on z only through z^2, but the corner
    // antiderivative's atan2 term silently assumed z >= 0. Observation
    // points below the source plane returned wrong values, which broke any
    // consumer evaluating both displacement signs (the interaction tables).
    const Rect r{-0.5e-3, 0.5e-3, -0.5e-3, 0.5e-3};
    for (const double z : {0.1e-3, 0.5e-3, 2e-3}) {
        for (const Point2 p : {Point2{0, 0}, Point2{0.3e-3, -0.2e-3},
                               Point2{4e-3, 1e-3}}) {
            const double up = rect_inv_r_integral(p, r, z);
            const double down = rect_inv_r_integral(p, r, -z);
            EXPECT_DOUBLE_EQ(up, down) << "z " << z;
            EXPECT_GT(up, 0.0);
        }
    }
}
