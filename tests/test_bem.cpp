// Physics tests for the BEM assembly: capacitance against classic reference
// values, matrix structure (SPD, Laplacian), testing-scheme agreement, and
// partial-inductance behaviour.
#include <gtest/gtest.h>

#include <cmath>

#include "common/constants.hpp"
#include "em/bem_plane.hpp"
#include "extract/reduction.hpp"
#include "numeric/cholesky.hpp"

using namespace pgsi;

namespace {

PlaneBem make_square_plate(double side, double pitch, const Greens& g,
                           Testing testing = Testing::PointMatching,
                           double rs = 0.0) {
    ConductorShape s;
    s.outline = Polygon::rectangle(0, 0, side, side);
    s.sheet_resistance = rs;
    s.z = 0.0;
    return PlaneBem(RectMesh({s}, pitch), g, BemOptions{testing, 2, 4});
}

double total_capacitance(const PlaneBem& bem) {
    const MatrixD& c = bem.maxwell_capacitance();
    double s = 0;
    for (std::size_t i = 0; i < c.rows(); ++i)
        for (std::size_t j = 0; j < c.cols(); ++j) s += c(i, j);
    return s;
}

} // namespace

TEST(Bem, FreeSquarePlateCapacitance) {
    // Capacitance of an isolated square plate of side a: C ≈ 0.367·4πε0·a
    // ≈ 40.8 pF for a = 1 m (classic electrostatic benchmark).
    const PlaneBem bem =
        make_square_plate(1.0, 1.0 / 13.0, Greens::homogeneous(1.0, false));
    const double c = total_capacitance(bem);
    EXPECT_NEAR(c, 40.8e-12, 0.08 * 40.8e-12);
}

TEST(Bem, GalerkinMatchesPointMatchingOnPlate) {
    const Greens g = Greens::homogeneous(1.0, false);
    const double cp =
        total_capacitance(make_square_plate(1.0, 0.1, g, Testing::PointMatching));
    const double cg =
        total_capacitance(make_square_plate(1.0, 0.1, g, Testing::Galerkin));
    EXPECT_NEAR(cp, cg, 0.03 * cg);
    // Galerkin should land closer to the converged value from above.
    EXPECT_NEAR(cg, 40.8e-12, 0.08 * 40.8e-12);
}

TEST(Bem, ParallelPlateCapacitance) {
    // Plate over an infinite reference plane at h << side: C ≈ ε0·A/h with a
    // few percent of fringing on top.
    const double side = 0.1, h = 1e-3;
    ConductorShape s;
    s.outline = Polygon::rectangle(0, 0, side, side);
    s.z = h;
    const PlaneBem bem(RectMesh({s}, side / 10), Greens::homogeneous(1.0, true),
                       BemOptions{});
    const double c = total_capacitance(bem);
    const double cpp = eps0 * side * side / h;
    EXPECT_GT(c, cpp);            // fringing adds capacitance
    EXPECT_LT(c, 1.25 * cpp);     // ...but only a modest amount at h/side = 1%
}

TEST(Bem, DielectricScalesParallelPlate) {
    const double side = 0.05, h = 0.5e-3;
    ConductorShape s;
    s.outline = Polygon::rectangle(0, 0, side, side);
    s.z = h;
    const PlaneBem b1(RectMesh({s}, side / 8), Greens::homogeneous(1.0, true),
                      BemOptions{});
    const PlaneBem b45(RectMesh({s}, side / 8), Greens::homogeneous(4.5, true),
                       BemOptions{});
    EXPECT_NEAR(total_capacitance(b45), 4.5 * total_capacitance(b1),
                1e-6 * total_capacitance(b45));
}

TEST(Bem, PotentialMatrixSpdAndSymmetric) {
    const PlaneBem bem =
        make_square_plate(0.04, 0.01, Greens::homogeneous(1.0, false));
    const MatrixD& p = bem.potential_matrix();
    EXPECT_LT(p.asymmetry(), 1e-12 * p.max_abs());
    EXPECT_TRUE(is_spd(p));
}

TEST(Bem, InductanceMatrixSpdSymmetricOrthogonalDecoupled) {
    const PlaneBem bem =
        make_square_plate(0.04, 0.01, Greens::homogeneous(1.0, false));
    const MatrixD& l = bem.inductance_matrix();
    EXPECT_LT(l.asymmetry(), 1e-10 * l.max_abs());
    EXPECT_TRUE(is_spd(l));
    const auto& branches = bem.mesh().branches();
    for (std::size_t a = 0; a < branches.size(); ++a)
        for (std::size_t b = 0; b < branches.size(); ++b)
            if (branches[a].dir != branches[b].dir) {
                EXPECT_DOUBLE_EQ(l(a, b), 0.0);
            }
}

TEST(Bem, GammaIsSymmetricLaplacian) {
    const PlaneBem bem =
        make_square_plate(0.04, 0.01, Greens::homogeneous(1.0, false));
    const MatrixD& g = bem.gamma();
    EXPECT_LT(g.asymmetry(), 1e-9 * g.max_abs());
    for (std::size_t i = 0; i < g.rows(); ++i) {
        double row = 0;
        for (std::size_t j = 0; j < g.cols(); ++j) row += g(i, j);
        EXPECT_NEAR(row, 0.0, 1e-9 * g.max_abs()) << "row " << i;
    }
}

TEST(Bem, DcConductanceMatchesSheetResistance) {
    // A 3x1 strip of squares: end-to-end resistance = 2 squares × Rs.
    ConductorShape s;
    s.outline = Polygon::rectangle(0, 0, 0.03, 0.01);
    s.sheet_resistance = 6e-3;
    const PlaneBem bem(RectMesh({s}, 0.01), Greens::homogeneous(1.0, false),
                       BemOptions{});
    const MatrixD& g = bem.dc_conductance();
    // Kron-reduce onto the two end nodes: R = -1/G01 must equal 2·Rs.
    const MatrixD gr = schur_reduce(g, {0, 2});
    EXPECT_NEAR(-1.0 / gr(0, 1), 2.0 * 6e-3, 1e-9);
}

TEST(Bem, DcConductanceRequiresLoss) {
    const PlaneBem bem =
        make_square_plate(0.02, 0.01, Greens::homogeneous(1.0, false));
    EXPECT_THROW(bem.dc_conductance(), InvalidArgument);
}

TEST(Bem, RibbonPartialInductanceMatchesFormula) {
    // Partial self-inductance of a flat ribbon (return at infinity):
    // L ≈ (µ0·l/2π)(ln(2l/w) + 0.5 + w/(3l)).
    ConductorShape s;
    s.outline = Polygon::rectangle(0, 0, 0.10, 0.01);
    const PlaneBem bem(RectMesh({s}, 0.01), Greens::homogeneous(1.0, false),
                       BemOptions{});
    // Reduce Γ to the two end nodes; the effective branch inductance is the
    // ribbon between the end cell centers (length 90 mm).
    const MatrixD gr = schur_reduce(bem.gamma(), {0, 9});
    const double l_num = -1.0 / gr(0, 1);
    const double len = 0.09, w = 0.01;
    const double l_ref =
        mu0 * len / (2 * pi) * (std::log(2 * len / w) + 0.5 + w / (3 * len));
    EXPECT_NEAR(l_num, l_ref, 0.2 * l_ref);
}

TEST(Bem, GroundImageReducesInductance) {
    ConductorShape s;
    s.outline = Polygon::rectangle(0, 0, 0.04, 0.01);
    s.z = 0.5e-3;
    const PlaneBem free(RectMesh({s}, 0.01), Greens::homogeneous(1.0, false),
                        BemOptions{});
    const PlaneBem img(RectMesh({s}, 0.01), Greens::homogeneous(1.0, true),
                       BemOptions{});
    EXPECT_LT(img.inductance_matrix()(0, 0), 0.3 * free.inductance_matrix()(0, 0));
}

TEST(Bem, BranchResistanceGeometry) {
    ConductorShape s;
    s.outline = Polygon::rectangle(0, 0, 0.02, 0.01);
    s.sheet_resistance = 1e-2;
    const PlaneBem bem(RectMesh({s}, 0.01), Greens::homogeneous(1.0, false),
                       BemOptions{});
    // One x branch of one square: R = Rs.
    ASSERT_EQ(bem.branch_resistance().size(), 1u);
    EXPECT_NEAR(bem.branch_resistance()[0], 1e-2, 1e-12);
}

// Mesh-convergence property: plate capacitance settles as pitch shrinks.
class BemConvergence : public ::testing::TestWithParam<int> {};

TEST_P(BemConvergence, PlateCapacitanceWithinBand) {
    const int n = GetParam();
    const PlaneBem bem =
        make_square_plate(1.0, 1.0 / n, Greens::homogeneous(1.0, false));
    EXPECT_NEAR(total_capacitance(bem), 40.8e-12, 0.12 * 40.8e-12) << n;
}

INSTANTIATE_TEST_SUITE_P(Meshes, BemConvergence, ::testing::Values(6, 8, 10, 14));
