// Tests for the DC operating point.
#include <gtest/gtest.h>

#include "circuit/mna.hpp"

using namespace pgsi;

TEST(DcOp, VoltageDivider) {
    Netlist nl;
    const NodeId vin = nl.node("in");
    const NodeId mid = nl.node("mid");
    nl.add_vsource("V1", vin, nl.ground(), Source::dc(10.0));
    nl.add_resistor("R1", vin, mid, 1e3);
    nl.add_resistor("R2", mid, nl.ground(), 3e3);
    const DcSolution s = dc_operating_point(nl);
    EXPECT_NEAR(s.v(mid), 7.5, 1e-9);
    EXPECT_NEAR(s.vsource_current[0], -10.0 / 4e3, 1e-12);
}

TEST(DcOp, CapacitorIsOpen) {
    Netlist nl;
    const NodeId a = nl.node("a");
    const NodeId b = nl.node("b");
    nl.add_vsource("V1", a, nl.ground(), Source::dc(5.0));
    nl.add_resistor("R1", a, b, 1e3);
    nl.add_capacitor("C1", b, nl.ground(), 1e-9);
    // Pull-down so b is well-defined.
    nl.add_resistor("R2", b, nl.ground(), 1e6);
    const DcSolution s = dc_operating_point(nl);
    EXPECT_NEAR(s.v(b), 5.0 * 1e6 / (1e6 + 1e3), 1e-6);
}

TEST(DcOp, InductorIsShort) {
    Netlist nl;
    const NodeId a = nl.node("a");
    const NodeId b = nl.node("b");
    nl.add_vsource("V1", a, nl.ground(), Source::dc(2.0));
    nl.add_inductor("L1", a, b, 1e-9);
    nl.add_resistor("R1", b, nl.ground(), 100.0);
    const DcSolution s = dc_operating_point(nl);
    EXPECT_NEAR(s.v(b), 2.0, 1e-9);
    EXPECT_NEAR(s.inductor_current[0], 0.02, 1e-12);
}

TEST(DcOp, InductorSeriesResistance) {
    Netlist nl;
    const NodeId a = nl.node("a");
    const NodeId b = nl.node("b");
    nl.add_vsource("V1", a, nl.ground(), Source::dc(2.0));
    nl.add_inductor("L1", a, b, 1e-9, 100.0);
    nl.add_resistor("R1", b, nl.ground(), 100.0);
    const DcSolution s = dc_operating_point(nl);
    EXPECT_NEAR(s.v(b), 1.0, 1e-9);
    EXPECT_NEAR(s.inductor_current[0], 0.01, 1e-12);
}

TEST(DcOp, CurrentSource) {
    Netlist nl;
    const NodeId a = nl.node("a");
    nl.add_isource("I1", nl.ground(), a, Source::dc(1e-3));
    nl.add_resistor("R1", a, nl.ground(), 1e3);
    const DcSolution s = dc_operating_point(nl);
    EXPECT_NEAR(s.v(a), 1.0, 1e-9); // 1 mA into 1 kΩ
}

TEST(DcOp, DriverHighAtT0) {
    Netlist nl;
    const NodeId vcc = nl.node("vcc");
    const NodeId out = nl.node("out");
    nl.add_vsource("Vdd", vcc, nl.ground(), Source::dc(5.0));
    DriverParams p;
    p.ron_up = 25;
    p.ron_dn = 20;
    p.c_out = 0; // no cap in DC anyway
    p.input = Source::dc(1.0); // driving high
    nl.add_driver("D1", out, vcc, nl.ground(), p);
    nl.add_resistor("Rload", out, nl.ground(), 100.0);
    const DcSolution s = dc_operating_point(nl);
    // Output = 5 * 100/(100+25) with the off pull-down negligible.
    EXPECT_NEAR(s.v(out), 5.0 * 100.0 / 125.0, 0.01);
}

TEST(DcOp, TlineIsDcShort) {
    Netlist nl;
    const NodeId a = nl.node("a");
    const NodeId b = nl.node("b");
    nl.add_vsource("V1", a, nl.ground(), Source::dc(1.0));
    MtlParameters p;
    p.l = MatrixD{{250e-9}};
    p.c = MatrixD{{100e-12}};
    auto model = std::make_shared<ModalTline>(p, 0.1);
    nl.add_tline("T1", {a}, {b}, model);
    nl.add_resistor("Rload", b, nl.ground(), 50.0);
    const DcSolution s = dc_operating_point(nl);
    EXPECT_NEAR(s.v(b), 1.0, 1e-3);
}

TEST(DcOp, FloatingCircuitThrows) {
    Netlist nl;
    const NodeId a = nl.node("a");
    const NodeId b = nl.node("b");
    nl.add_resistor("R1", a, b, 1e3); // no path to ground
    EXPECT_THROW(dc_operating_point(nl), NumericalError);
}

TEST(DcOp, IdealInductorLoopIsDiagnosedByName) {
    // Two (R = 0, L = 0) jumpers in parallel: the circulating DC current is
    // undetermined, and no continuation can fix a structural singularity —
    // the solver must name the loop instead of retrying.
    Netlist nl;
    const NodeId a = nl.node("via_a");
    const NodeId b = nl.node("via_b");
    nl.add_vsource("V1", a, nl.ground(), Source::dc(1.0));
    nl.add_inductor("L1", a, b, 0.0);
    nl.add_inductor("L2", a, b, 0.0);
    nl.add_resistor("R1", b, nl.ground(), 10.0);
    try {
        dc_operating_point(nl);
        FAIL() << "expected InvalidArgument for the ideal-inductor loop";
    } catch (const InvalidArgument& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("loop of ideal"), std::string::npos) << msg;
        EXPECT_NE(msg.find("via_a"), std::string::npos) << msg;
        EXPECT_NE(msg.find("via_b"), std::string::npos) << msg;
    }
}

TEST(DcOp, SingleIdealJumperIsJustAShort) {
    // One zero-impedance inductor is an ideal via model, not an error.
    Netlist nl;
    const NodeId a = nl.node("a");
    const NodeId b = nl.node("b");
    nl.add_vsource("V1", a, nl.ground(), Source::dc(2.0));
    nl.add_inductor("L1", a, b, 0.0);
    nl.add_resistor("R1", b, nl.ground(), 100.0);
    const DcSolution s = dc_operating_point(nl);
    EXPECT_NEAR(s.v(b), 2.0, 1e-9);
    EXPECT_NEAR(s.inductor_current[0], 0.02, 1e-12);
}
