// Cached (translation-invariant interaction table) vs direct BEM assembly.
#include <gtest/gtest.h>

#include "common/parallel.hpp"
#include "em/bem_plane.hpp"
#include "tests/test_util.hpp"

using namespace pgsi;

namespace {

// 20 x 16 mm plane with an off-center 4 x 3 mm antipad hole: uniform pitch,
// irregular occupancy — the case the displacement table must reproduce.
RectMesh holey_mesh() {
    ConductorShape s;
    s.outline = Polygon::rectangle(0, 0, 0.020, 0.016);
    s.holes.push_back(Polygon::rectangle(0.006, 0.005, 0.010, 0.008));
    s.z = 0.4e-3;
    s.sheet_resistance = 1e-3;
    return RectMesh({s}, 0.001);
}

// Two congruent planes at different heights whose grids share one lattice:
// exercises the (z, z') dimension of the table.
RectMesh stacked_mesh() {
    ConductorShape a;
    a.outline = Polygon::rectangle(0, 0, 0.010, 0.008);
    a.z = 0.3e-3;
    ConductorShape b = a;
    b.z = 0.8e-3;
    return RectMesh({a, b}, 0.001);
}

// Shapes of incommensurate widths get different stretched pitches: the
// lattice test must reject this mesh.
RectMesh nonuniform_mesh() {
    ConductorShape a;
    a.outline = Polygon::rectangle(0, 0, 0.010, 0.008);
    a.z = 0.4e-3;
    ConductorShape b;
    b.outline = Polygon::rectangle(0.015, 0, 0.015 + 0.0073, 0.0073);
    b.z = 0.4e-3;
    return RectMesh({a, b}, 0.001);
}

double max_rel_diff(const MatrixD& a, const MatrixD& b) {
    EXPECT_EQ(a.rows(), b.rows());
    EXPECT_EQ(a.cols(), b.cols());
    const double scale = std::max(a.max_abs(), 1e-300);
    double m = 0;
    for (std::size_t i = 0; i < a.rows(); ++i)
        for (std::size_t j = 0; j < a.cols(); ++j)
            m = std::max(m, std::abs(a(i, j) - b(i, j)) / scale);
    return m;
}

PlaneBem make(RectMesh mesh, AssemblyMode mode,
              Testing testing = Testing::PointMatching) {
    BemOptions opt;
    opt.testing = testing;
    opt.assembly = mode;
    return PlaneBem(std::move(mesh), Greens::homogeneous(4.2, true), opt);
}

} // namespace

TEST(BemCache, CachedMatchesDirectOnHoleyMesh) {
    const PlaneBem direct = make(holey_mesh(), AssemblyMode::Direct);
    const PlaneBem cached = make(holey_mesh(), AssemblyMode::Cached);
    EXPECT_LT(max_rel_diff(cached.potential_matrix(), direct.potential_matrix()),
              1e-12);
    EXPECT_LT(max_rel_diff(cached.inductance_matrix(), direct.inductance_matrix()),
              1e-12);
    EXPECT_TRUE(cached.stats().potential_cached);
    EXPECT_TRUE(cached.stats().inductance_cached);
    EXPECT_GT(cached.stats().cache_entries, 0u);
    EXPECT_FALSE(direct.stats().potential_cached);
    EXPECT_FALSE(direct.stats().inductance_cached);
}

TEST(BemCache, CachedMatchesDirectWithGalerkinTesting) {
    const PlaneBem direct =
        make(holey_mesh(), AssemblyMode::Direct, Testing::Galerkin);
    const PlaneBem cached =
        make(holey_mesh(), AssemblyMode::Cached, Testing::Galerkin);
    EXPECT_LT(max_rel_diff(cached.potential_matrix(), direct.potential_matrix()),
              1e-12);
    EXPECT_TRUE(cached.stats().potential_cached);
}

TEST(BemCache, CachedMatchesDirectAcrossStackedLayers) {
    const PlaneBem direct = make(stacked_mesh(), AssemblyMode::Direct);
    const PlaneBem cached = make(stacked_mesh(), AssemblyMode::Cached);
    EXPECT_LT(max_rel_diff(cached.potential_matrix(), direct.potential_matrix()),
              1e-12);
    EXPECT_LT(max_rel_diff(cached.inductance_matrix(), direct.inductance_matrix()),
              1e-12);
}

TEST(BemCache, AutoFallsBackOnNonUniformMesh) {
    const PlaneBem bem = make(nonuniform_mesh(), AssemblyMode::Auto);
    bem.potential_matrix();
    bem.inductance_matrix();
    EXPECT_FALSE(bem.stats().potential_cached);
    EXPECT_FALSE(bem.stats().inductance_cached);
}

TEST(BemCache, AutoUsesCacheOnUniformMesh) {
    const PlaneBem bem = make(holey_mesh(), AssemblyMode::Auto);
    bem.potential_matrix();
    bem.inductance_matrix();
    EXPECT_TRUE(bem.stats().potential_cached);
    EXPECT_TRUE(bem.stats().inductance_cached);
}

TEST(BemCache, ForcedCacheOnNonUniformMeshThrows) {
    const PlaneBem bem = make(nonuniform_mesh(), AssemblyMode::Cached);
    EXPECT_THROW(bem.potential_matrix(), Error);
    EXPECT_THROW(bem.inductance_matrix(), Error);
}

// Assembly results must be bit-identical at any thread count: work is
// partitioned over disjoint outputs with a fixed per-entry evaluation order.
TEST(BemCache, ResultsInvariantAcrossThreadCounts) {
    pgsi::test::ScopedThreadCount pin(1);
    for (const AssemblyMode mode : {AssemblyMode::Direct, AssemblyMode::Cached}) {
        pin.repin(1);
        const PlaneBem one = make(holey_mesh(), mode);
        const MatrixD p1 = one.potential_matrix();
        const MatrixD l1 = one.inductance_matrix();
        for (const std::size_t threads : {2u, 8u}) {
            pin.repin(threads);
            const PlaneBem many = make(holey_mesh(), mode);
            const MatrixD& pn = many.potential_matrix();
            const MatrixD& ln = many.inductance_matrix();
            double dp = 0, dl = 0;
            for (std::size_t i = 0; i < p1.rows(); ++i)
                for (std::size_t j = 0; j < p1.cols(); ++j)
                    dp = std::max(dp, std::abs(p1(i, j) - pn(i, j)));
            for (std::size_t i = 0; i < l1.rows(); ++i)
                for (std::size_t j = 0; j < l1.cols(); ++j)
                    dl = std::max(dl, std::abs(l1(i, j) - ln(i, j)));
            EXPECT_EQ(dp, 0.0) << "mode=" << static_cast<int>(mode)
                               << " threads=" << threads;
            EXPECT_EQ(dl, 0.0) << "mode=" << static_cast<int>(mode)
                               << " threads=" << threads;
        }
    }
}
