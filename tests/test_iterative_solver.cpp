// Matrix-free FFT/GMRES solver path against the dense direct solver.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "common/robust.hpp"
#include "em/iterative_solver.hpp"
#include "tests/test_util.hpp"
#include "em/solver.hpp"

using namespace pgsi;

namespace {

// Uniform pitch with an off-center antipad hole (same as test_bem_cache).
RectMesh holey_mesh() {
    ConductorShape s;
    s.outline = Polygon::rectangle(0, 0, 0.020, 0.016);
    s.holes.push_back(Polygon::rectangle(0.006, 0.005, 0.010, 0.008));
    s.z = 0.4e-3;
    s.sheet_resistance = 1e-3;
    return RectMesh({s}, 0.001);
}

// One power island split in two congruent pieces on a shared lattice plus a
// second layer: multiple connected components and a (z, z') table dimension.
RectMesh split_plane_mesh() {
    ConductorShape a;
    a.outline = Polygon::rectangle(0, 0, 0.008, 0.008);
    a.z = 0.3e-3;
    a.sheet_resistance = 1e-3;
    ConductorShape b = a;
    b.outline = Polygon::rectangle(0.010, 0, 0.018, 0.008);
    ConductorShape c = a;
    c.outline = Polygon::rectangle(0, 0, 0.018, 0.008);
    c.z = 0.8e-3;
    return RectMesh({a, b, c}, 0.001);
}

// Shapes of incommensurate widths: no common lattice, forcing the operators
// onto the exact dense fallback.
RectMesh nonuniform_mesh() {
    ConductorShape a;
    a.outline = Polygon::rectangle(0, 0, 0.010, 0.008);
    a.z = 0.4e-3;
    a.sheet_resistance = 1e-3;
    ConductorShape b = a;
    b.outline = Polygon::rectangle(0.015, 0, 0.015 + 0.0073, 0.0073);
    return RectMesh({a, b}, 0.001);
}

PlaneBem make_bem(RectMesh mesh, AssemblyMode mode = AssemblyMode::Auto) {
    BemOptions opt;
    opt.assembly = mode;
    return PlaneBem(std::move(mesh), Greens::homogeneous(4.2, true), opt);
}

double max_rel_diff(const MatrixC& a, const MatrixC& b) {
    EXPECT_EQ(a.rows(), b.rows());
    EXPECT_EQ(a.cols(), b.cols());
    double scale = 1e-300;
    for (std::size_t i = 0; i < a.rows(); ++i)
        for (std::size_t j = 0; j < a.cols(); ++j)
            scale = std::max(scale, std::abs(a(i, j)));
    double m = 0;
    for (std::size_t i = 0; i < a.rows(); ++i)
        for (std::size_t j = 0; j < a.cols(); ++j)
            m = std::max(m, std::abs(a(i, j) - b(i, j)) / scale);
    return m;
}

SolverOptions iterative_options(
    PreconditionerKind pc = PreconditionerKind::NearFieldBlock) {
    SolverOptions opt;
    opt.backend = SolverBackend::Iterative;
    opt.preconditioner = pc;
    return opt;
}

} // namespace

TEST(IterativeSolver, MatchesDirectOnHoleyMesh) {
    const PlaneBem bem = make_bem(holey_mesh());
    const SurfaceImpedance zs = SurfaceImpedance::from_sheet_resistance(1e-3);
    const DirectSolver direct(bem, zs);
    const IterativeSolver iterative(bem, zs, iterative_options());

    const std::vector<std::size_t> ports{
        bem.mesh().nearest_node({0.002, 0.002}, 0),
        bem.mesh().nearest_node({0.018, 0.014}, 0)};
    const VectorD freqs{1e8, 1e9};
    const auto zd = direct.sweep_impedance(freqs, ports);
    const auto zi = iterative.sweep_impedance(freqs, ports);
    for (std::size_t i = 0; i < freqs.size(); ++i)
        EXPECT_LT(max_rel_diff(zi[i], zd[i]), 1e-8) << "f = " << freqs[i];
    EXPECT_GT(iterative.stats().iterations, 0u);
    EXPECT_LE(iterative.stats().worst_residual,
              iterative.options().fail_tol);
}

TEST(IterativeSolver, MatchesDirectOnSplitPlanes) {
    const PlaneBem bem = make_bem(split_plane_mesh());
    const SurfaceImpedance zs = SurfaceImpedance::from_sheet_resistance(1e-3);
    const DirectSolver direct(bem, zs);
    const IterativeSolver iterative(bem, zs, iterative_options());

    const std::vector<std::size_t> ports{
        bem.mesh().nearest_node({0.002, 0.004}, 0),
        bem.mesh().nearest_node({0.016, 0.004}, 1),
        bem.mesh().nearest_node({0.009, 0.004}, 2)};
    const VectorD freqs{3e8};
    const auto zd = direct.sweep_impedance(freqs, ports);
    const auto zi = iterative.sweep_impedance(freqs, ports);
    EXPECT_LT(max_rel_diff(zi[0], zd[0]), 1e-8);
}

TEST(IterativeSolver, DiagonalPreconditionerAlsoConverges) {
    const PlaneBem bem = make_bem(holey_mesh());
    const SurfaceImpedance zs = SurfaceImpedance::from_sheet_resistance(1e-3);
    const DirectSolver direct(bem, zs);
    SolverOptions opt = iterative_options(PreconditionerKind::Diagonal);
    opt.gmres.max_iterations = 20000;
    const IterativeSolver iterative(bem, zs, opt);

    const std::vector<std::size_t> ports{
        bem.mesh().nearest_node({0.002, 0.002}, 0)};
    const MatrixC zd = direct.port_impedance(1e9, ports);
    const MatrixC zi = iterative.port_impedance(1e9, ports);
    EXPECT_LT(max_rel_diff(zi, zd), 1e-8);
}

TEST(IterativeSolver, DenseFallbackOnNonUniformMesh) {
    const PlaneBem bem = make_bem(nonuniform_mesh());
    EXPECT_FALSE(bem.uniform_lattice());
    EXPECT_FALSE(bem.potential_operator().matrix_free());
    EXPECT_FALSE(bem.inductance_operator().matrix_free());

    const SurfaceImpedance zs = SurfaceImpedance::from_sheet_resistance(1e-3);
    const DirectSolver direct(bem, zs);
    const IterativeSolver iterative(bem, zs, iterative_options());
    const std::vector<std::size_t> ports{
        bem.mesh().nearest_node({0.002, 0.004}, 0),
        bem.mesh().nearest_node({0.018, 0.004}, 1)};
    const MatrixC zd = direct.port_impedance(5e8, ports);
    const MatrixC zi = iterative.port_impedance(5e8, ports);
    EXPECT_LT(max_rel_diff(zi, zd), 1e-8);
}

TEST(IterativeSolver, UniformMeshUsesMatrixFreeOperators) {
    const PlaneBem bem = make_bem(holey_mesh());
    EXPECT_TRUE(bem.uniform_lattice());
    EXPECT_TRUE(bem.potential_operator().matrix_free());
    EXPECT_TRUE(bem.inductance_operator().matrix_free());
}

TEST(IterativeSolver, ResultsInvariantAcrossThreadCounts) {
    const SurfaceImpedance zs = SurfaceImpedance::from_sheet_resistance(1e-3);
    const VectorD freqs{1e8, 1e9};

    pgsi::test::ScopedThreadCount pin(1);
    std::vector<MatrixC> base;
    {
        const PlaneBem bem = make_bem(holey_mesh());
        const std::vector<std::size_t> ports{
            bem.mesh().nearest_node({0.002, 0.002}, 0),
            bem.mesh().nearest_node({0.018, 0.014}, 0)};
        base = IterativeSolver(bem, zs, iterative_options())
                   .sweep_impedance(freqs, ports);
    }
    for (const unsigned threads : {2u, 8u}) {
        pin.repin(threads);
        const PlaneBem bem = make_bem(holey_mesh());
        const std::vector<std::size_t> ports{
            bem.mesh().nearest_node({0.002, 0.002}, 0),
            bem.mesh().nearest_node({0.018, 0.014}, 0)};
        const auto got = IterativeSolver(bem, zs, iterative_options())
                             .sweep_impedance(freqs, ports);
        for (std::size_t i = 0; i < freqs.size(); ++i)
            for (std::size_t r = 0; r < got[i].rows(); ++r)
                for (std::size_t c = 0; c < got[i].cols(); ++c)
                    EXPECT_EQ(got[i](r, c), base[i](r, c))
                        << "threads " << threads << " f " << freqs[i];
    }
}

TEST(MakeSolver, AutoSelectsBySizeAndLattice) {
    const SurfaceImpedance zs;
    {
        // Small uniform mesh: below the node threshold -> direct.
        const PlaneBem bem = make_bem(holey_mesh());
        SolverOptions opt;
        opt.auto_node_threshold = 100000;
        EXPECT_STREQ(make_solver(bem, zs, opt)->backend_name(), "direct");
    }
    {
        // Threshold of 1: any uniform mesh -> iterative.
        const PlaneBem bem = make_bem(holey_mesh());
        SolverOptions opt;
        opt.auto_node_threshold = 1;
        EXPECT_STREQ(make_solver(bem, zs, opt)->backend_name(), "iterative");
    }
    {
        // Non-uniform mesh never auto-selects the matrix-free path.
        const PlaneBem bem = make_bem(nonuniform_mesh());
        SolverOptions opt;
        opt.auto_node_threshold = 1;
        EXPECT_STREQ(make_solver(bem, zs, opt)->backend_name(), "direct");
    }
    {
        // Direct-only assembly disables the operator path.
        const PlaneBem bem = make_bem(holey_mesh(), AssemblyMode::Direct);
        SolverOptions opt;
        opt.auto_node_threshold = 1;
        EXPECT_STREQ(make_solver(bem, zs, opt)->backend_name(), "direct");
    }
    {
        // Explicit backend requests are honored regardless of size.
        const PlaneBem bem = make_bem(holey_mesh());
        SolverOptions opt;
        opt.backend = SolverBackend::Iterative;
        EXPECT_STREQ(make_solver(bem, zs, opt)->backend_name(), "iterative");
    }
}

TEST(IterativeSolver, StalledSolveThrowsInsteadOfReturningGarbage) {
    const PlaneBem bem = make_bem(holey_mesh());
    const SurfaceImpedance zs = SurfaceImpedance::from_sheet_resistance(1e-3);
    SolverOptions opt = iterative_options();
    opt.gmres.max_iterations = 1;
    opt.gmres.restart = 1;
    opt.gmres.tol = 1e-14;
    opt.fail_tol = 1e-14;
    opt.recovery.policy = robust::RecoveryPolicy::Strict;
    const IterativeSolver iterative(bem, zs, opt);
    const std::vector<std::size_t> ports{
        bem.mesh().nearest_node({0.002, 0.002}, 0)};
    EXPECT_THROW(iterative.port_impedance(1e9, ports), NumericalError);
}

TEST(IterativeSolver, StalledSolveRecoversThroughDenseFallback) {
    const PlaneBem bem = make_bem(holey_mesh());
    const SurfaceImpedance zs = SurfaceImpedance::from_sheet_resistance(1e-3);
    SolverOptions opt = iterative_options();
    opt.gmres.max_iterations = 1;
    opt.gmres.restart = 1;
    opt.gmres.tol = 1e-14;
    opt.fail_tol = 1e-14;
    const IterativeSolver iterative(bem, zs, opt);
    const std::vector<std::size_t> ports{
        bem.mesh().nearest_node({0.002, 0.002}, 0)};
    const MatrixC z = iterative.port_impedance(1e9, ports);
    EXPECT_GE(iterative.stats().dense_fallbacks, 1u);
    EXPECT_TRUE(iterative.recovery_report().any());

    const DirectSolver direct(bem, zs);
    const MatrixC zd = direct.port_impedance(1e9, ports);
    EXPECT_LT(max_rel_diff(z, zd), 1e-8);
}

// Regression: a dense fallback used to charge the stats with the full port
// count of column solves (even the columns GMRES never reached after the
// stall) and dropped the residuals of the columns that *did* complete from
// the worst-residual telemetry. With the stall injected on the second of
// three per-column solves, only the two attempted columns may count, and the
// first (completed) column's residual must survive into worst_residual.
TEST(IterativeSolver, DenseFallbackAttributesOnlyAttemptedSolves) {
    const PlaneBem bem = make_bem(holey_mesh());
    const SurfaceImpedance zs = SurfaceImpedance::from_sheet_resistance(1e-3);
    SolverOptions opt = iterative_options();
    opt.sweep.block_solve = false; // per-column path: one gmres() per port
    const IterativeSolver iterative(bem, zs, opt);
    const std::vector<std::size_t> ports{
        bem.mesh().nearest_node({0.002, 0.002}, 0),
        bem.mesh().nearest_node({0.018, 0.014}, 0),
        bem.mesh().nearest_node({0.002, 0.014}, 0)};

    robust::FaultInjector::arm("gmres.stall", 2);
    const MatrixC z = iterative.port_impedance(1e9, ports);
    robust::FaultInjector::disarm_all();

    const IterativeSolverStats& st = iterative.stats();
    EXPECT_EQ(st.dense_fallbacks, 1u);
    // Column 1 completed, column 2 stalled, column 3 was never attempted
    // (the attempt aborts to escalate); the ladder had no Diagonal rung to
    // escalate from, so the dense fallback ran immediately.
    EXPECT_EQ(st.solves, 2u);
    EXPECT_EQ(st.precond_escalations, 0u);
    // The completed column's true residual is real work that happened; it
    // must fold into the telemetry even though dense results replaced it.
    EXPECT_GT(st.worst_residual, 0.0);
    EXPECT_LE(st.worst_residual, opt.fail_tol);

    const DirectSolver direct(bem, zs);
    EXPECT_LT(max_rel_diff(z, direct.port_impedance(1e9, ports)), 1e-8);
}

// A stall-driven Diagonal -> NearFieldBlock escalation is sticky: later
// frequencies of the same solver start on the stronger preconditioner
// instead of re-stalling, and the recovery report records the promotion
// exactly once for the solver's lifetime.
TEST(IterativeSolver, PrecondEscalationIsStickyAcrossSweep) {
    const PlaneBem bem = make_bem(holey_mesh());
    const SurfaceImpedance zs = SurfaceImpedance::from_sheet_resistance(1e-3);
    SolverOptions opt = iterative_options(PreconditionerKind::Diagonal);
    // A budget Diagonal cannot meet on this mesh (~600 iterations for the
    // two-column block) but NearFieldBlock (~160) meets easily.
    opt.gmres.max_iterations = 150;
    const IterativeSolver iterative(bem, zs, opt);
    const std::vector<std::size_t> ports{
        bem.mesh().nearest_node({0.002, 0.002}, 0),
        bem.mesh().nearest_node({0.018, 0.014}, 0)};
    const VectorD freqs{8e8, 9e8, 1e9};
    const auto zi = iterative.sweep_impedance(freqs, ports);

    const IterativeSolverStats& st = iterative.stats();
    EXPECT_EQ(st.precond_escalations, 1u); // only the first point stalls
    EXPECT_EQ(st.dense_fallbacks, 0u);
    EXPECT_EQ(iterative.recovery_report().count("em.precond_escalation"), 1u);

    const DirectSolver direct(bem, zs);
    const auto zd = direct.sweep_impedance(freqs, ports);
    for (std::size_t i = 0; i < freqs.size(); ++i)
        EXPECT_LT(max_rel_diff(zi[i], zd[i]), 1e-8) << "f = " << freqs[i];
}

TEST(IterativeSolver, RejectsInvalidPorts) {
    const PlaneBem bem = make_bem(holey_mesh());
    const IterativeSolver solver(bem, SurfaceImpedance{}, iterative_options());
    EXPECT_THROW(solver.port_impedance(1e9, {}), InvalidArgument);
    EXPECT_THROW(solver.port_impedance(1e9, {bem.node_count()}),
                 InvalidArgument);
    EXPECT_THROW(solver.port_impedance(-1.0, {0}), InvalidArgument);
}
