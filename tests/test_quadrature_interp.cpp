// Tests for Gauss-Legendre quadrature and sampled-waveform utilities.
#include <gtest/gtest.h>

#include <cmath>

#include "common/constants.hpp"
#include "numeric/quadrature.hpp"
#include "numeric/interp.hpp"

using namespace pgsi;

TEST(Quadrature, WeightsSumToTwo) {
    for (int n = 1; n <= 16; ++n) {
        const QuadratureRule& r = gauss_legendre(n);
        double s = 0;
        for (double w : r.weights) s += w;
        EXPECT_NEAR(s, 2.0, 1e-13) << "order " << n;
    }
}

TEST(Quadrature, ExactForPolynomials) {
    // n-point Gauss is exact for degree 2n-1.
    for (int n = 2; n <= 8; ++n) {
        const int deg = 2 * n - 1;
        const double val = integrate(
            [deg](double x) { return std::pow(x, deg) + std::pow(x, deg - 1); },
            -1.0, 1.0, n);
        // Odd power integrates to 0; even power (deg-1) to 2/deg.
        EXPECT_NEAR(val, 2.0 / deg, 1e-12) << "order " << n;
    }
}

TEST(Quadrature, SinIntegral) {
    const double v = integrate([](double x) { return std::sin(x); }, 0.0, pi, 12);
    EXPECT_NEAR(v, 2.0, 1e-12);
}

TEST(Quadrature, TwoDimensional) {
    // ∬ x²y over [0,1]×[0,2] = (1/3)(2) = 2/3... ∫y dy 0..2 = 2.
    const double v = integrate2d([](double x, double y) { return x * x * y; }, 0,
                                 1, 0, 2, 4);
    EXPECT_NEAR(v, 2.0 / 3.0, 1e-12);
}

TEST(Quadrature, RejectsBadOrder) {
    EXPECT_THROW(gauss_legendre(0), InvalidArgument);
    EXPECT_THROW(gauss_legendre(17), InvalidArgument);
}

TEST(PiecewiseLinear, InterpolatesAndClamps) {
    const PiecewiseLinear f({0.0, 1.0, 2.0}, {0.0, 10.0, 0.0});
    EXPECT_DOUBLE_EQ(f(0.5), 5.0);
    EXPECT_DOUBLE_EQ(f(1.5), 5.0);
    EXPECT_DOUBLE_EQ(f(-1.0), 0.0);
    EXPECT_DOUBLE_EQ(f(5.0), 0.0);
}

TEST(PiecewiseLinear, RejectsNonMonotone) {
    EXPECT_THROW(PiecewiseLinear({0.0, 0.0}, {1.0, 2.0}), InvalidArgument);
}

TEST(DelayLine, ExactAtSampleBoundaries) {
    DelayLine d(1.0, 5.0, 0.0);
    for (int i = 1; i <= 6; ++i) d.push(i);
    // Latest sample is 6.
    EXPECT_DOUBLE_EQ(d.value_before_last(0.0), 6.0);
    EXPECT_DOUBLE_EQ(d.value_before_last(1.0), 5.0);
    EXPECT_DOUBLE_EQ(d.value_before_last(3.0), 3.0);
}

TEST(DelayLine, InterpolatesBetweenSamples) {
    DelayLine d(1.0, 4.0, 0.0);
    for (int i = 1; i <= 5; ++i) d.push(i);
    EXPECT_DOUBLE_EQ(d.value_before_last(0.5), 4.5);
    EXPECT_DOUBLE_EQ(d.value_before_last(2.25), 2.75);
}

TEST(DelayLine, InitialFill) {
    DelayLine d(0.1, 1.0, 7.0);
    EXPECT_DOUBLE_EQ(d.value_before_last(0.95), 7.0);
}

TEST(DelayLine, RejectsExcessDelay) {
    DelayLine d(1.0, 2.0, 0.0);
    EXPECT_THROW(d.value_before_last(10.0), InvalidArgument);
}
