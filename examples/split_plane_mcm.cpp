// Split MCM power planes (the paper's Fig. 1): a 3.3 V net and a 5 V net
// tile the same layer as complementary shapes over a common ground plane,
// 0.5 mm below. The two nets are galvanically separate but couple through
// the fields — this example extracts both nets in one model and quantifies
// the coupling and how switching noise on one net leaks into the other.
//
// Build & run:  ./example_split_plane_mcm
#include <cmath>
#include <cstdio>

#include "circuit/ac.hpp"
#include "circuit/transient.hpp"
#include "em/bem_plane.hpp"
#include "extract/peec_stamp.hpp"

using namespace pgsi;

int main() {
    // Complementary L-shaped split: VCC0 (3.3 V) takes the left/bottom L,
    // VCC1 (5 V) the upper-right rectangle, with a 2 mm gap, over a common
    // ground (image) plane 0.5 mm below.
    const double wx = 0.05, wy = 0.04, split_x = 0.028, split_y = 0.022;
    ConductorShape vcc0;
    vcc0.outline = Polygon::lshape(wx, wy, split_x, split_y);
    vcc0.z = 0.5e-3;
    vcc0.sheet_resistance = 0.6e-3;
    vcc0.name = "vcc0_3v3";
    ConductorShape vcc1;
    vcc1.outline =
        Polygon::rectangle(split_x + 2e-3, split_y + 2e-3, wx, wy);
    vcc1.z = 0.5e-3;
    vcc1.sheet_resistance = 0.6e-3;
    vcc1.name = "vcc1_5v";

    const RectMesh mesh({vcc0, vcc1}, 2.5e-3);
    std::printf("split planes: %zu cells across %zu nets\n", mesh.node_count(),
                mesh.component_count());
    const PlaneBem bem(mesh, Greens::homogeneous(4.2, true), BemOptions{});

    // PEEC realization (passive for multi-net structures).
    Netlist nl;
    std::vector<NodeId> map;
    for (std::size_t k = 0; k < bem.node_count(); ++k)
        map.push_back(nl.add_node("m" + std::to_string(k)));
    stamp_peec(nl, bem, map, nl.ground(), "mcm", PeecOptions{5e-3, 5e-3});

    const std::size_t pin0 = mesh.nearest_node({0.008, 0.008}, 0);
    const std::size_t pin1 = mesh.nearest_node({0.045, 0.035}, 1);

    // Frequency-domain coupling: drive net 0, measure transfer to net 1.
    Netlist ac_nl = nl;
    ac_nl.add_isource("I1", ac_nl.ground(), map[pin0],
                      Source::dc(0.0).set_ac(1.0));
    ac_nl.add_resistor("Rterm", map[pin1], ac_nl.ground(), 50.0);
    std::printf("\n%-12s %-14s %-16s\n", "f [MHz]", "|Z11| [ohm]",
                "|Z21->50ohm| [ohm]");
    for (double f : {10e6, 50e6, 200e6, 500e6, 1e9, 2e9}) {
        const AcSolution s = ac_analyze(ac_nl, f);
        std::printf("%-12.0f %-14.3f %-16.4f\n", f / 1e6,
                    std::abs(s.v(map[pin0])), std::abs(s.v(map[pin1])));
    }

    // Time domain: inject a switching-current spike into the 3.3 V net and
    // watch the 5 V net bounce across the split.
    Netlist tr_nl = nl;
    tr_nl.add_isource("Isw", map[pin0], tr_nl.ground(),
                      Source::pulse(0, 0.5, 0.2e-9, 0.3e-9, 0.3e-9, 1e-9));
    tr_nl.add_resistor("R0", map[pin0], tr_nl.ground(), 1e3);
    tr_nl.add_resistor("R1", map[pin1], tr_nl.ground(), 1e3);
    TransientOptions opt;
    opt.dt = 20e-12;
    opt.tstop = 5e-9;
    opt.probes = {map[pin0], map[pin1]};
    const TransientResult res = transient_analyze(tr_nl, opt);
    std::printf("\n0.5 A switching spike on the 3.3 V net:\n");
    std::printf("  noise on the aggressor net : %7.1f mV\n",
                res.peak_abs(map[pin0]) * 1e3);
    std::printf("  coupled across the split   : %7.1f mV  (%.1f%%)\n",
                res.peak_abs(map[pin1]) * 1e3,
                100.0 * res.peak_abs(map[pin1]) / res.peak_abs(map[pin0]));
    std::printf("\nThe split limits but does not eliminate coupling — the "
                "shared ground return and fringing fields carry noise across, "
                "the 'ground discontinuity' effect the paper calls out.\n");
    return 0;
}
