// Decoupling-capacitor placement study (the paper's headline application,
// §6.2: "optimize the decoupling strategy which includes the placement,
// number, and value of de-caps necessary for noise reduction against design
// margin" — replacing the "play it safe and put as much as you could"
// practice with simulation).
//
// A small board with four switching drivers is simulated with one 100 nF
// decap placed (a) nowhere, (b) at the regulator, (c) at the board edge,
// (d) next to the chip — and then with a value sweep at the best location.
//
// Build & run:  ./example_decap_placement
#include <cstdio>
#include <memory>

#include "si/ssn.hpp"

using namespace pgsi;

namespace {

Board study_board() {
    BoardStackup st;
    st.plane_separation = 0.5e-3;
    st.eps_r = 4.5;
    st.sheet_resistance = 0.6e-3;
    Board b(0.12, 0.08, st, 3.3);
    b.set_vrm_location({0.01, 0.01});
    for (int d = 0; d < 4; ++d) {
        DriverSite s;
        s.name = "d" + std::to_string(d);
        s.vcc_pin = {0.085 + 0.004 * d, 0.055};
        s.gnd_pin = {0.085 + 0.004 * d, 0.045};
        s.driver.ron_up = 20;
        s.driver.ron_dn = 15;
        s.load_c = 25e-12;
        s.driver.input = Source::pulse(0, 1, 0.5e-9, 0.8e-9, 0.8e-9, 5e-9);
        b.add_driver_site(s);
    }
    return b;
}

double plane_noise_with_decap(const Board& base, const Decap* decap,
                              const SsnModelOptions& opt) {
    Board b = base;
    if (decap) b.add_decap(*decap);
    auto plane = std::make_shared<PlaneModel>(b, opt);
    const SsnModel model(plane);
    const SwitchingSweepRow r = measure_noise(model, 25e-12, 6e-9);
    return r.peak_plane_noise;
}

} // namespace

int main() {
    const Board base = study_board();
    SsnModelOptions opt;
    opt.mesh_pitch = 8e-3;
    opt.interior_nodes = 10;
    opt.prune_rel_tol = 0.03;

    Decap proto;
    proto.c = 100e-9;
    proto.esr = 25e-3;
    proto.esl = 0.8e-9;

    std::printf("four 3.3 V drivers switching together on a 120 x 80 mm "
                "board\n\n");
    std::printf("%-28s %-18s\n", "decap placement", "peak plane noise [mV]");
    const double none = plane_noise_with_decap(base, nullptr, opt);
    std::printf("%-28s %-18.1f\n", "(none)", none * 1e3);
    Decap d = proto;
    d.pos = {0.012, 0.012};
    std::printf("%-28s %-18.1f\n", "at the regulator",
                plane_noise_with_decap(base, &d, opt) * 1e3);
    d.pos = {0.06, 0.07};
    std::printf("%-28s %-18.1f\n", "far board edge",
                plane_noise_with_decap(base, &d, opt) * 1e3);
    d.pos = {0.092, 0.05};
    const double best = plane_noise_with_decap(base, &d, opt);
    std::printf("%-28s %-18.1f\n", "next to the chip", best * 1e3);

    std::printf("\n%-28s %-18s\n", "value at best location",
                "peak plane noise [mV]");
    for (double c : {10e-9, 47e-9, 100e-9, 470e-9, 1e-6}) {
        Decap v = proto;
        v.c = c;
        v.pos = {0.092, 0.05};
        std::printf("%-25.0f nF %-18.1f\n", c * 1e9,
                    plane_noise_with_decap(base, &v, opt) * 1e3);
    }
    std::printf("\nPlacement dominates: a decap at the chip beats the same "
                "part anywhere else, and beyond its ESL-limited value more "
                "capacitance buys little — the paper's argument for simulating "
                "rather than carpeting the board.\n");
    return 0;
}
