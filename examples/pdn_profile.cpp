// PDN impedance profile and target impedance (the modern frequency-domain
// view of the paper's decoupling problem): compute |Z(f)| seen from a die
// between Vcc and Gnd, compare against a target impedance line, and show how
// a decap reshapes the profile.
//
// Build & run:  ./example_pdn_profile
#include <cmath>
#include <cstdio>
#include <memory>

#include "circuit/ac.hpp"
#include "si/decap_opt.hpp"

using namespace pgsi;

int main() {
    BoardStackup st;
    st.plane_separation = 0.4e-3;
    st.eps_r = 4.5;
    st.sheet_resistance = 0.6e-3;
    Board board(0.10, 0.08, st, 1.8);
    board.set_vrm_location({0.01, 0.01});
    DriverSite s;
    s.name = "cpu";
    s.vcc_pin = {0.07, 0.05};
    s.gnd_pin = {0.07, 0.04};
    s.driver.c_out = 10e-12;
    s.load_c = 30e-12;
    board.add_driver_site(s);
    Decap d;
    d.pos = {0.074, 0.045};
    d.c = 220e-9;
    d.esr = 20e-3;
    d.esl = 0.7e-9;
    board.add_decap(d);

    SsnModelOptions opt;
    opt.mesh_pitch = 8e-3;
    opt.interior_nodes = 10;
    opt.prune_rel_tol = 0.03;
    auto plane = std::make_shared<PlaneModel>(board, opt);

    const SsnModel bare(plane, std::size_t{0});
    const SsnModel with(plane, std::size_t{1});

    // Target impedance at the board pins: Z_t = Vdd·ripple% / I_transient.
    const double z_target = 1.8 * 0.05 / 2.0; // 45 mΩ for a 2 A transient
    const VectorD freqs = log_space(1e6, 1e9, 4);
    const VectorD zb_bare = pdn_impedance_profile_board(bare, 0, freqs);
    const VectorD zb_with = pdn_impedance_profile_board(with, 0, freqs);
    const VectorD zd_with = pdn_impedance_profile(with, 0, freqs);

    std::printf("PDN impedance, 1.8 V rail (board-pin target %.0f mohm):\n\n",
                z_target * 1e3);
    std::printf("%-10s %-16s %-16s %-8s %-16s\n", "f [MHz]",
                "board, no decap", "board, 220n", "meets?", "die, 220n");
    for (std::size_t i = 0; i < freqs.size(); ++i)
        std::printf("%-10.1f %-16.1f %-16.1f %-8s %-16.1f\n", freqs[i] / 1e6,
                    zb_bare[i] * 1e3, zb_with[i] * 1e3,
                    zb_with[i] <= z_target ? "yes" : "NO", zd_with[i] * 1e3);

    std::printf("\nThe decap holds the board-level impedance near the target "
                "through the mid band; the die-level profile still climbs "
                "with frequency — that residue is the package-pin inductance, "
                "which only die/interposer capacitance can address. Exactly "
                "the hierarchy behind the paper's decoupling discussion.\n");
    return 0;
}
