// Quickstart: extract a power-plane equivalent circuit and look at it.
//
// This walks the paper's core flow end to end on a small board:
//   1. describe the plane geometry and stackup,
//   2. mesh it and assemble the boundary-element operators (§3),
//   3. extract the distributed RLC equivalent circuit (§4),
//   4. inspect the port impedance across frequency and find the first plane
//      resonance,
//   5. export the macromodel as a SPICE subcircuit for use elsewhere.
//
// Build & run:  ./example_quickstart
#include <cmath>
#include <cstdio>

#include "common/constants.hpp"
#include "em/bem_plane.hpp"
#include "extract/equivalent_circuit.hpp"
#include "extract/spice_export.hpp"

using namespace pgsi;

int main() {
    // 1. A 60 x 40 mm power plane, 0.4 mm above its ground plane in FR4,
    //    1 oz copper.
    ConductorShape plane;
    plane.outline = Polygon::rectangle(0, 0, 0.06, 0.04);
    plane.z = 0.4e-3;
    plane.sheet_resistance = 0.6e-3;
    plane.name = "vdd";

    // 2. Mesh at 4 mm pitch; ground plane enters through image theory.
    const RectMesh mesh({plane}, 4e-3);
    const PlaneBem bem(mesh, Greens::homogeneous(4.5, true), BemOptions{});
    std::printf("mesh: %zu charge cells, %zu current cells\n",
                bem.node_count(), bem.branch_count());

    // 3. Extract the equivalent circuit: two pins plus a coarse interior.
    const std::size_t pin_a = mesh.nearest_node({0.008, 0.008}, 0);
    const std::size_t pin_b = mesh.nearest_node({0.052, 0.032}, 0);
    const CircuitExtractor extractor(bem);
    const auto keep = extractor.select_nodes({pin_a, pin_b}, 12);
    const EquivalentCircuit circuit = extractor.extract(keep);
    std::printf("equivalent circuit: %zu nodes, %zu branches, C_total = %.1f pF\n",
                circuit.node_count(), circuit.branches.size(),
                circuit.total_reference_capacitance() * 1e12);

    // 4. Port impedance |Z11| sweep and the first plane resonance.
    const std::size_t port = 0; // pin_a is the first kept node
    std::printf("\n%-12s %-12s\n", "f [MHz]", "|Z11| [ohm]");
    for (double f = 50e6; f <= 4e9; f *= 1.6) {
        const double z = std::abs(circuit.impedance(f, {port})(0, 0));
        std::printf("%-12.1f %-12.4f\n", f / 1e6, z);
    }
    // Largest |Z11| on a fine grid around the first cavity band gives the
    // first plane resonance (below it the plane is a plain capacitor).
    double first_peak = 0, best = 0;
    for (double f = 0.5e9; f <= 1.5e9; f += 10e6) {
        const double z = std::abs(circuit.impedance(f, {port})(0, 0));
        if (z > best) {
            best = z;
            first_peak = f;
        }
    }
    const double f10 = c0 / (2 * 0.06 * std::sqrt(4.5));
    std::printf("\nfirst impedance peak at %.2f GHz (analytic first cavity "
                "mode: %.2f GHz)\n",
                first_peak / 1e9, f10 / 1e9);

    // 5. SPICE export.
    std::printf("\n--- SPICE macromodel (truncated) ---\n");
    const std::string spice = spice_subckt_string(circuit, "pdn_plane");
    std::printf("%.600s...\n", spice.c_str());
    return 0;
}
