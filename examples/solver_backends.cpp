// Solver backend comparison: dense direct LU vs the matrix-free FFT/GMRES
// path over one power plane.
//
// On a uniform-pitch mesh the BEM interaction matrices are block-Toeplitz,
// so the iterative backend never forms them: each GMRES matvec applies the
// potential and inductance operators through circulant embedding + FFT in
// O(N log N). This example sweeps the same two-pin plane with both backends
// at increasing mesh density, prints the wall time and the worst relative
// deviation between the two impedance sweeps, and shows what the Auto
// backend would have picked at each size.
//
// Build & run:  ./example_solver_backends
#include <chrono>
#include <cmath>
#include <cstdio>

#include "em/iterative_solver.hpp"
#include "em/solver.hpp"

using namespace pgsi;

namespace {

PlaneBem make_plane(int n) {
    ConductorShape s;
    s.outline = Polygon::rectangle(0, 0, 0.1, 0.08);
    s.z = 0.5e-3;
    s.sheet_resistance = 0.6e-3;
    return PlaneBem(RectMesh({s}, 0.1 / n), Greens::homogeneous(4.5, true),
                    BemOptions{});
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
        .count();
}

} // namespace

int main() {
    std::printf("dense direct LU vs matrix-free FFT/GMRES, 100x80 mm plane, "
                "two corner pins, f = {100, 300} MHz\n\n");
    std::printf("%-6s %-8s %-10s %-12s %-10s %-12s %-8s\n", "mesh", "nodes",
                "direct[s]", "iterative[s]", "speedup", "max rel dev", "auto");

    const SurfaceImpedance zs = SurfaceImpedance::from_sheet_resistance(0.6e-3);
    const VectorD freqs{1e8, 3e8};
    for (const int n : {12, 18, 24, 34}) {
        const PlaneBem bem = make_plane(n);
        const std::vector<std::size_t> ports = {
            bem.mesh().nearest_node({0.005, 0.005}, 0),
            bem.mesh().nearest_node({0.095, 0.075}, 0)};

        const DirectSolver direct(bem, zs);
        auto t0 = std::chrono::steady_clock::now();
        const auto zd = direct.sweep_impedance(freqs, ports);
        const double direct_s = seconds_since(t0);

        SolverOptions opt;
        opt.backend = SolverBackend::Iterative;
        const IterativeSolver iterative(bem, zs, opt);
        t0 = std::chrono::steady_clock::now();
        const auto zi = iterative.sweep_impedance(freqs, ports);
        const double iterative_s = seconds_since(t0);

        double dev = 0, scale = 1e-300;
        for (std::size_t k = 0; k < freqs.size(); ++k)
            for (std::size_t i = 0; i < ports.size(); ++i)
                for (std::size_t j = 0; j < ports.size(); ++j) {
                    scale = std::max(scale, std::abs(zd[k](i, j)));
                    dev = std::max(dev, std::abs(zi[k](i, j) - zd[k](i, j)));
                }

        // What would Auto have picked here (default node threshold)?
        const auto auto_solver = make_solver(bem, zs);
        std::printf("%-6d %-8zu %-10.3f %-12.3f %-10.1f %-12.2e %-8s\n", n,
                    bem.node_count(), direct_s, iterative_s,
                    direct_s / std::max(iterative_s, 1e-9), dev / scale,
                    auto_solver->backend_name());
    }
    std::printf("\nBoth backends solve the same MPIE system; deviations are "
                "pure linear-algebra round-off (target <= 1e-8). The Auto "
                "backend switches to the matrix-free path once the mesh is "
                "large and uniform enough to profit.\n");
    return 0;
}
