// Crosstalk study on coupled microstrips (the paper's §6.1 example-2 class
// of problems): extract per-unit-length parameters with the 2-D field
// solver, build modal transmission-line models, and sweep trace spacing to
// see near/far-end crosstalk move.
//
// Build & run:  ./example_crosstalk_study
#include <cmath>
#include <cstdio>
#include <memory>

#include "circuit/transient.hpp"
#include "tline2d/mtl_extract.hpp"

using namespace pgsi;

namespace {

struct CrosstalkResult {
    double z0 = 0, delay_ns = 0, near_pct = 0, far_pct = 0;
};

CrosstalkResult run_pair(double w, double s, double h, double eps_r,
                         double length) {
    const MtlParameters p = extract_microstrip(
        {{-0.5 * (w + s), w}, {0.5 * (w + s), w}}, eps_r, h);
    auto model = std::make_shared<ModalTline>(p, length);

    Netlist nl;
    const NodeId src = nl.node("src");
    const NodeId a_in = nl.node("a_in");
    const NodeId a_out = nl.node("a_out");
    const NodeId b_in = nl.node("b_in");
    const NodeId b_out = nl.node("b_out");
    nl.add_vsource("V1", src, nl.ground(),
                   Source::pulse(0, 2, 0, 0.1e-9, 0.1e-9, 4e-9));
    nl.add_resistor("Rs", src, a_in, 50.0);
    nl.add_resistor("Rbn", b_in, nl.ground(), 50.0);
    nl.add_tline("T1", {a_in, b_in}, {a_out, b_out}, model);
    nl.add_resistor("Ral", a_out, nl.ground(), 50.0);
    nl.add_resistor("Rbl", b_out, nl.ground(), 50.0);

    TransientOptions opt;
    opt.dt = 10e-12;
    opt.tstop = 6e-9;
    const TransientResult res = transient_analyze(nl, opt);

    CrosstalkResult out;
    const MtlParameters single = extract_microstrip({{0.0, w}}, eps_r, h);
    const LineFigures f = line_figures(single);
    out.z0 = f.z0;
    out.delay_ns = f.delay_per_m * length * 1e9;
    out.near_pct = 100.0 * res.peak_abs(b_in);       // aggressor step = 1 V
    out.far_pct = 100.0 * res.peak_abs(b_out);
    return out;
}

} // namespace

int main() {
    const double w = 0.2e-3, h = 0.15e-3, eps_r = 4.5, length = 0.1;
    std::printf("coupled microstrip pair, w = %.0f um, h = %.0f um, er = %.1f, "
                "len = %.0f mm\n\n",
                w * 1e6, h * 1e6, eps_r, length * 1e3);
    std::printf("%-12s %-10s %-12s %-12s %-12s\n", "s/w", "Z0 [ohm]",
                "delay [ns]", "NEXT [%]", "FEXT [%]");
    for (double s_over_w : {0.5, 1.0, 2.0, 3.0, 5.0}) {
        const CrosstalkResult r =
            run_pair(w, s_over_w * w, h, eps_r, length);
        std::printf("%-12.1f %-10.1f %-12.3f %-12.2f %-12.2f\n", s_over_w, r.z0,
                    r.delay_ns, r.near_pct, r.far_pct);
    }
    std::printf("\nCrosstalk falls rapidly with spacing; the far-end kick "
                "scales with the coupled length derivative, as expected for "
                "inhomogeneous (microstrip) dielectrics.\n");
    return 0;
}
