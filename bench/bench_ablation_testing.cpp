// A1 — ablation: point matching vs Galerkin testing (§3.2).
//
// The paper implemented both testing procedures: point matching
// ("computationally fast and simple, but exhibits accuracy and stability
// problems") and Galerkin ("improved accuracy and stability at the expense
// of computational requirement"). This ablation quantifies both claims on
// the classic isolated-square-plate capacitance benchmark (converged value
// ≈ 40.8 pF for a 1 m plate) and on the extracted plane inductance, as a
// function of mesh density.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "em/bem_plane.hpp"
#include "extract/reduction.hpp"

using namespace pgsi;

namespace {

PlaneBem plate(int n, Testing testing) {
    ConductorShape s;
    s.outline = Polygon::rectangle(0, 0, 1.0, 1.0);
    return PlaneBem(RectMesh({s}, 1.0 / n), Greens::homogeneous(1.0, false),
                    BemOptions{testing, 2, 4});
}

double plate_capacitance(const PlaneBem& bem) {
    const MatrixD& c = bem.maxwell_capacitance();
    double t = 0;
    for (std::size_t i = 0; i < c.rows(); ++i)
        for (std::size_t j = 0; j < c.cols(); ++j) t += c(i, j);
    return t;
}

void print_experiment() {
    std::printf("=== A1: point matching vs Galerkin testing (paper §3.2) "
                "===\n");
    std::printf("isolated 1 m square plate; reference capacitance 40.8 pF\n\n");
    std::printf("%-8s %-22s %-22s\n", "mesh", "point matching [pF] (err)",
                "Galerkin [pF] (err)");
    for (int n : {4, 6, 8, 12, 16}) {
        const double cp = plate_capacitance(plate(n, Testing::PointMatching));
        const double cg = plate_capacitance(plate(n, Testing::Galerkin));
        std::printf("%2dx%-5d %8.2f (%+5.1f%%)      %8.2f (%+5.1f%%)\n", n, n,
                    cp * 1e12, 100 * (cp - 40.8e-12) / 40.8e-12, cg * 1e12,
                    100 * (cg - 40.8e-12) / 40.8e-12);
    }
    std::printf("\nexpected shape: Galerkin converges from a closer starting "
                "point at every density — the paper's accuracy claim — while "
                "the timing benchmarks below show its assembly premium.\n\n");
}

void BM_assembly(benchmark::State& state) {
    const auto testing =
        state.range(1) == 0 ? Testing::PointMatching : Testing::Galerkin;
    const int n = static_cast<int>(state.range(0));
    for (auto _ : state) {
        const PlaneBem bem = plate(n, testing);
        benchmark::DoNotOptimize(bem.potential_matrix().max_abs());
    }
    state.SetLabel(state.range(1) == 0 ? "point-matching" : "galerkin");
}
BENCHMARK(BM_assembly)
    ->Args({8, 0})
    ->Args({8, 1})
    ->Args({16, 0})
    ->Args({16, 1})
    ->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char** argv) {
    print_experiment();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
