// E2 — §6.1 example 2 / Figs. 4–5: coupled microstrip transient and
// crosstalk.
//
// The paper's structure (Fig. 4): two 6 mm traces with a 6 mm gap on an
// εr = 4.5, 5 mm substrate. A 5 V pulse with 0.3 ns rise/fall and 1.0 ns
// width drives the active line from a 50 Ω source; all other ends carry
// 50 Ω loads. Fig. 5(a) shows the near/far-end waveforms on the active line,
// Fig. 5(b) the near/far-end crosstalk on the passive line. The paper
// compared its 16-node BEM equivalent circuit against a commercial
// transmission-line simulator and reported good agreement.
//
// Here both of the paper's methods are rebuilt and compared against each
// other:
//   (1) the analytic modal multiconductor line (2-D extraction + method of
//       characteristics) — standing in for the commercial MTL simulator,
//   (2) the full 3-D BEM of the two traces realized as a passive PEEC
//       circuit — the field-solver path.
// The line length is not stated in the paper; 0.30 m gives the ~2 ns flight
// time consistent with Fig. 5's axes.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <memory>

#include "circuit/transient.hpp"
#include "extract/peec_stamp.hpp"
#include "tline2d/mtl_extract.hpp"

using namespace pgsi;

namespace {

constexpr double kW = 6e-3, kGap = 6e-3, kH = 5e-3, kEr = 4.5, kLen = 0.30;

Source drive_pulse() {
    return Source::pulse(0, 5, 0.2e-9, 0.3e-9, 0.3e-9, 1.0e-9);
}

struct Waves {
    VectorD time, near_active, far_active, near_quiet, far_quiet;
};

// Method (1): modal MTL from the 2-D field solver.
Waves run_mtl(double dt, double tstop) {
    const MtlParameters p = extract_microstrip(
        {{-0.5 * (kW + kGap), kW}, {0.5 * (kW + kGap), kW}}, kEr, kH);
    auto model = std::make_shared<ModalTline>(p, kLen);

    Netlist nl;
    const NodeId src = nl.node("src");
    const NodeId a_in = nl.node("a_in");
    const NodeId a_out = nl.node("a_out");
    const NodeId b_in = nl.node("b_in");
    const NodeId b_out = nl.node("b_out");
    nl.add_vsource("V1", src, nl.ground(), drive_pulse());
    nl.add_resistor("Rs", src, a_in, 50.0);
    nl.add_resistor("Rbn", b_in, nl.ground(), 50.0);
    nl.add_tline("T1", {a_in, b_in}, {a_out, b_out}, model);
    nl.add_resistor("Ral", a_out, nl.ground(), 50.0);
    nl.add_resistor("Rbl", b_out, nl.ground(), 50.0);

    TransientOptions opt;
    opt.dt = dt;
    opt.tstop = tstop;
    opt.probes = {a_in, a_out, b_in, b_out};
    const TransientResult r = transient_analyze(nl, opt);
    return {r.time, r.waveform(a_in), r.waveform(a_out), r.waveform(b_in),
            r.waveform(b_out)};
}

// Method (2): 3-D BEM of the traces, PEEC realization.
Waves run_bem(double dt, double tstop, double pitch) {
    ConductorShape a, b;
    a.outline = Polygon::rectangle(0, 0, kLen, kW);
    a.z = kH;
    a.name = "active";
    b = a;
    b.outline = Polygon::rectangle(0, kW + kGap, kLen, 2 * kW + kGap);
    b.name = "quiet";
    const PlaneBem bem(RectMesh({a, b}, pitch), Greens::grounded_slab(kEr, kH),
                       BemOptions{});

    Netlist nl;
    std::vector<NodeId> map;
    for (std::size_t k = 0; k < bem.node_count(); ++k)
        map.push_back(nl.add_node("m" + std::to_string(k)));
    stamp_peec(nl, bem, map, nl.ground(), "ms", PeecOptions{2e-3, 2e-3});

    const RectMesh& mesh = bem.mesh();
    const NodeId a_in = map[mesh.nearest_node({0.0, 0.5 * kW}, 0)];
    const NodeId a_out = map[mesh.nearest_node({kLen, 0.5 * kW}, 0)];
    const NodeId b_in = map[mesh.nearest_node({0.0, 1.5 * kW + kGap}, 1)];
    const NodeId b_out = map[mesh.nearest_node({kLen, 1.5 * kW + kGap}, 1)];

    const NodeId src = nl.add_node("src");
    nl.add_vsource("V1", src, nl.ground(), drive_pulse());
    nl.add_resistor("Rs", src, a_in, 50.0);
    nl.add_resistor("Rbn", b_in, nl.ground(), 50.0);
    nl.add_resistor("Ral", a_out, nl.ground(), 50.0);
    nl.add_resistor("Rbl", b_out, nl.ground(), 50.0);

    TransientOptions opt;
    opt.dt = dt;
    opt.tstop = tstop;
    opt.probes = {a_in, a_out, b_in, b_out};
    const TransientResult r = transient_analyze(nl, opt);
    return {r.time, r.waveform(a_in), r.waveform(a_out), r.waveform(b_in),
            r.waveform(b_out)};
}

double value_at(const Waves& w, const VectorD& series, double t) {
    for (std::size_t i = 0; i < w.time.size(); ++i)
        if (w.time[i] >= t) return series[i];
    return series.back();
}

void print_experiment() {
    std::printf("=== E2: coupled microstrip transient (paper §6.1 ex. 2, "
                "Figs. 4-5) ===\n");
    std::printf("w = 6 mm, gap = 6 mm, h = 5 mm, er = 4.5, len = 0.30 m; "
                "5 V / 0.3 ns / 1 ns pulse, 50-ohm everywhere\n\n");

    const double dt = 25e-12, tstop = 8e-9;
    const Waves mtl = run_mtl(dt, tstop);
    const Waves bem = run_bem(dt, tstop, kLen / 40);

    // Fig. 5 series (subsampled).
    std::printf("Fig. 5(a)/(b) series — modal MTL (the reference method):\n");
    std::printf("%-8s %-10s %-10s %-10s %-10s\n", "t [ns]", "near(act)",
                "far(act)", "near(xt)", "far(xt)");
    for (double t = 0; t <= tstop; t += 0.5e-9)
        std::printf("%-8.1f %-10.3f %-10.3f %-10.3f %-10.3f\n", t * 1e9,
                    value_at(mtl, mtl.near_active, t),
                    value_at(mtl, mtl.far_active, t),
                    value_at(mtl, mtl.near_quiet, t),
                    value_at(mtl, mtl.far_quiet, t));

    // Headline comparisons between the two independent engines.
    auto arrival = [&](const Waves& w) {
        for (std::size_t i = 0; i < w.time.size(); ++i)
            if (w.far_active[i] > 1.25) return w.time[i]; // half the 2.5 V step
        return 0.0;
    };
    std::printf("\n%-34s %-14s %-14s\n", "metric", "modal MTL", "3-D BEM/PEEC");
    std::printf("%-34s %-14.2f %-14.2f\n", "flight time [ns]",
                (arrival(mtl) - 0.35e-9) * 1e9, (arrival(bem) - 0.35e-9) * 1e9);
    std::printf("%-34s %-14.2f %-14.2f\n", "incident step at near end [V]",
                value_at(mtl, mtl.near_active, 1.0e-9),
                value_at(bem, bem.near_active, 1.0e-9));
    std::printf("%-34s %-14.3f %-14.3f\n", "peak near-end crosstalk [V]",
                max_abs(mtl.near_quiet), max_abs(bem.near_quiet));
    std::printf("%-34s %-14.3f %-14.3f\n", "peak far-end crosstalk [V]",
                max_abs(mtl.far_quiet), max_abs(bem.far_quiet));
    std::printf("\nExpected shape: matched line -> clean 2.5 V incident step "
                "delayed by the flight time; near-end crosstalk is a long low "
                "shelf, far-end crosstalk a sharp spike at arrival — the two "
                "independent methods agreeing is the paper's Fig. 5 "
                "check.\n\n");
}

void BM_mtl_transient(benchmark::State& state) {
    for (auto _ : state) {
        const Waves w = run_mtl(25e-12, 8e-9);
        benchmark::DoNotOptimize(w.far_quiet.back());
    }
}
BENCHMARK(BM_mtl_transient)->Unit(benchmark::kMillisecond);

void BM_mtl_extraction_2d(benchmark::State& state) {
    for (auto _ : state) {
        const MtlParameters p = extract_microstrip(
            {{-0.5 * (kW + kGap), kW}, {0.5 * (kW + kGap), kW}}, kEr, kH);
        benchmark::DoNotOptimize(p.l(0, 0));
    }
}
BENCHMARK(BM_mtl_extraction_2d)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char** argv) {
    print_experiment();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
