// Batch-engine throughput benchmark: a 50-job mixed campaign (frequency
// sweeps + SSN transients) over a handful of distinct geometries, run
// through pgsi::serve with a fresh ModelCache. The headline numbers are
// jobs/sec, the cache hit rate (the cache is why a campaign over few
// geometries is cheap), and the p50/p99 job latency read back from the
// "serve.job.latency_us" obs histogram.
//
// Writes BENCH_batch.json (PGSI_BENCH_JSON overrides the path); the
// bench-smoke target gates it against bench/golden/BENCH_batch.json with
// tools/bench_compare. Counts (jobs, distinct geometries, cache hits and
// misses, retries) are deterministic; the ratio keys jobs_per_s and
// cache_hit_rate are skipped by the gate's key classifier.
#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/parallel.hpp"
#include "obs/metrics.hpp"
#include "obs/resource.hpp"
#include "serve/engine.hpp"

using namespace pgsi;

namespace {

constexpr int kGeometries = 5;

// One small board per variant: the decap position moves with the variant so
// each variant is a distinct geometry (a distinct ModelCache key) while all
// variants cost the same.
std::string board_text(int variant) {
    char buf[512];
    std::snprintf(
        buf, sizeof buf,
        "board 0.06 0.05\n"
        "stackup sep 0.4m eps 4.5 sheet 0.6m\n"
        "vrm 0.005 0.005\n"
        "driver d0 vcc 0.03 0.025 gnd 0.03 0.02 switch rise 1n delay 1n "
        "width 4n\n"
        "decap %.4f 0.035\n",
        0.010 + 0.008 * variant);
    return buf;
}

serve::JobSpec base_spec(const std::string& id, int variant) {
    serve::JobSpec spec;
    spec.id = id;
    spec.board_text = board_text(variant);
    spec.model.mesh_pitch = 0.01;
    spec.model.interior_nodes = 8;
    return spec;
}

std::vector<serve::JobSpec> make_campaign() {
    std::vector<serve::JobSpec> jobs;
    // 40 sweep jobs cycling over the 5 geometries: 5 misses, 35 hits.
    for (int i = 0; i < 40; ++i) {
        serve::JobSpec spec =
            base_spec("sweep" + std::to_string(i), i % kGeometries);
        spec.kind = serve::JobKind::Sweep;
        const std::size_t nf = 12;
        spec.freqs_hz.resize(nf);
        for (std::size_t k = 0; k < nf; ++k)
            spec.freqs_hz[k] =
                1e7 * std::pow(100.0, static_cast<double>(k) /
                                          static_cast<double>(nf - 1));
        jobs.push_back(std::move(spec));
    }
    // 10 transient jobs over the first two geometries: all cache hits (the
    // sweeps above already built those models).
    for (int i = 0; i < 10; ++i) {
        serve::JobSpec spec = base_spec("tran" + std::to_string(i), i % 2);
        spec.kind = serve::JobKind::Transient;
        spec.dt = 100e-12;
        spec.tstop = 10e-9;
        jobs.push_back(std::move(spec));
    }
    return jobs;
}

} // namespace

int main() {
    obs::set_resources_enabled(true);
    obs::histogram("serve.job.latency_us").reset();

    const std::vector<serve::JobSpec> jobs = make_campaign();
    serve::ModelCache cache; // fresh: hit/miss counts are the campaign's own
    serve::BatchOptions opt;
    opt.cache = &cache;
    serve::JobQueue queue(opt);

    const auto t0 = std::chrono::steady_clock::now();
    const serve::BatchResult result = queue.run(jobs);
    const double total_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();

    const serve::BatchStats& st = result.stats;
    const obs::Histogram::Snapshot lat =
        obs::histogram("serve.job.latency_us").snapshot();
    const double p50_s = obs::histogram_quantile(lat, 0.50) * 1e-6;
    const double p99_s = obs::histogram_quantile(lat, 0.99) * 1e-6;
    const double jobs_per_s =
        static_cast<double>(jobs.size()) / std::max(total_s, 1e-9);
    const double hit_rate =
        static_cast<double>(st.cache_hits) /
        std::max(1.0, static_cast<double>(st.cache_hits + st.cache_misses));

    std::printf("batch: %zu jobs in %.3f s (%.1f jobs/s), cache %" PRIu64
                "/%" PRIu64 " hits (%.0f%%), p50 %.1f ms, p99 %.1f ms\n",
                jobs.size(), total_s, jobs_per_s, st.cache_hits,
                st.cache_hits + st.cache_misses, 100 * hit_rate, p50_s * 1e3,
                p99_s * 1e3);
    if (!result.all_completed()) {
        std::fprintf(stderr, "batch: %zu jobs failed\n", st.failed);
        return 1;
    }

    const char* json_path = std::getenv("PGSI_BENCH_JSON");
    const char* path = json_path != nullptr ? json_path : "BENCH_batch.json";
    std::FILE* f = std::fopen(path, "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot open %s for writing\n", path);
        return 1;
    }
    std::fprintf(
        f,
        "{\n  \"bench\": \"batch\",\n  \"threads\": %zu,\n"
        "  \"jobs\": %zu, \"distinct_geometries\": %d,\n"
        "  \"completed\": %zu, \"failed\": %zu, \"retries\": %zu,\n"
        "  \"cache_hits\": %" PRIu64 ", \"cache_misses\": %" PRIu64
        ", \"cache_hit_rate\": %.4f,\n"
        "  \"total_s\": %.6f, \"jobs_per_s\": %.2f,\n"
        "  \"p50_latency_s\": %.6f, \"p99_latency_s\": %.6f,\n"
        "  \"resources\": {\"peak_rss_bytes\": %llu}\n}\n",
        par::thread_count(), jobs.size(), kGeometries, st.completed, st.failed,
        st.retries, st.cache_hits, st.cache_misses, hit_rate, total_s,
        jobs_per_s, p50_s, p99_s,
        static_cast<unsigned long long>(obs::peak_rss_bytes()));
    std::fclose(f);
    std::printf("wrote %s\n", path);
    return 0;
}
