// E6 — §6.2 example 2: post-layout system SSN evaluation.
//
// The paper's customer design: a four-layer board, twenty-six chips, two
// power/ground planes separated by 10 mil, 55 Vcc and 80 Gnd pins, evaluated
// with the integrated co-simulation. The real layout is proprietary; a
// seeded synthetic board with the same quoted parameters stands in (see
// DESIGN.md substitutions). The experiment runs the full flow — plane
// extraction with every pin a circuit node, package models, 55 drivers —
// and reports the worst-case supply noise over the board plus its spatial
// distribution.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>

#include "si/ssn.hpp"

using namespace pgsi;

namespace {

SsnModelOptions board_options() {
    SsnModelOptions o;
    o.mesh_pitch = 8e-3;
    o.interior_nodes = 8;
    o.prune_rel_tol = 0.08;
    return o;
}

void print_experiment() {
    std::printf("=== E6: post-layout SSN of a 26-chip board (paper §6.2 ex. "
                "2) ===\n");
    const Board board = make_postlayout_board(1998);
    std::printf("four-layer board, 10 mil plane pair, %zu chips' worth of "
                "driver sites (55 Vcc pins), %zu extra Gnd stitches "
                "(80 Gnd pins total), %zu decaps\n\n",
                std::size_t{26}, board.gnd_stitches().size(),
                board.decaps().size());

    auto plane = std::make_shared<PlaneModel>(board, board_options());
    std::printf("plane model: %zu mesh cells -> %zu circuit nodes, %zu "
                "branches\n(pins closer than the mesh pitch share a plane "
                "node, as they share the local plane potential)\n",
                plane->bem().node_count(), plane->circuit().node_count(),
                plane->circuit().branches.size());

    const SsnModel model(plane);
    const double dt = 50e-12, tstop = 8e-9;
    const TransientResult r = model.simulate(dt, tstop);

    // Worst and per-quadrant supply noise.
    const std::size_t nsites = board.driver_sites().size();
    double worst_gnd = 0, worst_vcc = 0, worst_plane = 0;
    std::size_t worst_site = 0;
    VectorD quadrant_noise(4, 0.0);
    for (std::size_t s = 0; s < nsites; ++s) {
        const double g = r.peak_excursion(model.die_gnd(s));
        const double v = r.peak_excursion(model.die_vcc(s));
        const double p = r.peak_excursion(model.board_vcc(s));
        if (p > worst_plane) {
            worst_plane = p;
            worst_site = s;
        }
        worst_gnd = std::max(worst_gnd, g);
        worst_vcc = std::max(worst_vcc, v);
        const Point2 pin = board.driver_sites()[s].vcc_pin;
        const int q = (pin.x > 0.5 * board.width() ? 1 : 0) +
                      (pin.y > 0.5 * board.height() ? 2 : 0);
        quadrant_noise[q] = std::max(quadrant_noise[q], p);
    }

    std::printf("\n%-36s %-12s\n", "metric", "value");
    std::printf("%-36s %-12.0f\n", "worst die ground bounce [mV]",
                worst_gnd * 1e3);
    std::printf("%-36s %-12.0f\n", "worst die Vcc droop [mV]", worst_vcc * 1e3);
    std::printf("%-36s %-12.0f\n", "worst plane noise at a pin [mV]",
                worst_plane * 1e3);
    std::printf("%-36s %s\n", "worst-noise site",
                board.driver_sites()[worst_site].name.c_str());
    std::printf("\nplane-noise map by board quadrant [mV]:\n");
    std::printf("  upper-left %6.0f   upper-right %6.0f\n",
                quadrant_noise[2] * 1e3, quadrant_noise[3] * 1e3);
    std::printf("  lower-left %6.0f   lower-right %6.0f\n",
                quadrant_noise[0] * 1e3, quadrant_noise[1] * 1e3);
    std::printf("\n(the paper omits its customer numbers; the deliverable is "
                "the capability: a full-board post-layout SSN sweep in one "
                "run on a workstation.)\n\n");
}

void BM_postlayout_extraction(benchmark::State& state) {
    const Board board = make_postlayout_board(1998);
    for (auto _ : state) {
        const PlaneModel plane(board, board_options());
        benchmark::DoNotOptimize(plane.circuit().node_count());
    }
}
BENCHMARK(BM_postlayout_extraction)->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_postlayout_transient(benchmark::State& state) {
    auto plane = std::make_shared<PlaneModel>(make_postlayout_board(1998),
                                              board_options());
    const SsnModel model(plane);
    for (auto _ : state) {
        const TransientResult r = model.simulate(50e-12, 4e-9);
        benchmark::DoNotOptimize(r.time.back());
    }
}
BENCHMARK(BM_postlayout_transient)->Unit(benchmark::kMillisecond)->Iterations(1);

} // namespace

int main(int argc, char** argv) {
    print_experiment();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
