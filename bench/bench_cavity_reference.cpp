// V1 — supplementary validation: three independent engines on one plane
// pair.
//
// The paper validates its extraction against measurement, a full-wave
// reference, and FDTD. With the measurement unavailable, this bench lines up
// the three *mutually independent* engines built in this repository on the
// alumina test-plane geometry:
//
//   1. the analytic cavity-resonator double series (em/cavity_model),
//   2. the BEM extraction + equivalent circuit (the paper's method),
//   3. the 2-D FDTD solver (the paper's transient reference).
//
// Agreement across all three pins down the common quasi-TEM physics and
// bounds the numerical error of each implementation.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "common/constants.hpp"
#include "em/cavity_model.hpp"
#include "extract/equivalent_circuit.hpp"
#include "fdtd/plane_fdtd.hpp"

using namespace pgsi;

namespace {

constexpr double kSide = 8e-3, kSep = 280e-6, kEr = 9.6, kRs = 6e-3;

CavityModel cavity() {
    CavityModel c;
    c.a = kSide;
    c.b = kSide;
    c.d = kSep;
    c.eps_r = kEr;
    c.rs_total = 2 * kRs;
    c.max_modes = 60;
    c.port_w = kSide / 14;
    c.port_h = kSide / 14;
    return c;
}

void print_experiment() {
    std::printf("=== V1: three-way engine validation on the test plane ===\n");
    std::printf("8x8 mm alumina plane pair; |Z11| at a corner pad\n\n");

    const CavityModel cav = cavity();

    ConductorShape s;
    s.outline = Polygon::rectangle(0, 0, kSide, kSide);
    s.z = kSep;
    s.sheet_resistance = kRs;
    const PlaneBem bem(RectMesh({s}, kSide / 14), Greens::homogeneous(kEr, true),
                       BemOptions{});
    const EquivalentCircuit ec =
        CircuitExtractor(bem, ExtractionOptions{0.0, true, false}).extract_full();
    const std::size_t port = bem.mesh().nearest_node({1e-3, 1e-3}, 0);
    const Point2 pad = bem.mesh().nodes()[port].center;

    std::printf("%-10s %-14s %-14s\n", "f [GHz]", "cavity [ohm]",
                "BEM circuit [ohm]");
    for (double f : {0.5e9, 1e9, 2e9, 3e9, 4e9, 5e9}) {
        const double za = std::abs(cav.impedance(pad, pad, f));
        const double zb = std::abs(ec.impedance(f, {port})(0, 0));
        std::printf("%-10.1f %-14.3f %-14.3f\n", f / 1e9, za, zb);
    }

    // First-mode frequencies from all three engines.
    const double f10 = cav.mode_frequency(1, 0);
    double best_f = 0, best = 0;
    for (double f = 0.6 * f10; f <= 1.4 * f10; f += f10 / 200) {
        const double z = std::abs(ec.impedance(f, {port})(0, 0));
        if (z > best) {
            best = z;
            best_f = f;
        }
    }

    PlaneFdtdOptions fo;
    fo.lx = kSide;
    fo.ly = kSide;
    fo.separation = kSep;
    fo.eps_r = kEr;
    fo.sheet_resistance = kRs;
    fo.nx = 48;
    fo.ny = 48;
    PlaneFdtd sim(fo);
    // Source/probe on the y mid-line: kills the degenerate (0,1) and the
    // (1,1) modes so the DFT peak isolates (1,0).
    sim.add_port({1e-3, 4e-3}, 50.0,
                 Source::pulse(0, 1, 0, 0.03e-9, 0.03e-9, 0.06e-9));
    const std::size_t probe = sim.add_port({7e-3, 4e-3}, 1e6, Source::dc(0.0));
    const PlaneFdtdResult r = sim.run(4e-9);
    // DFT of the mean-removed tail (the decaying (0,0) charge otherwise
    // leaks into the lowest scanned bin).
    double mean = 0;
    std::size_t nwin = 0;
    for (std::size_t i = 0; i < r.time.size(); ++i)
        if (r.time[i] >= 0.5e-9) {
            mean += r.port_voltage[probe][i];
            ++nwin;
        }
    mean /= static_cast<double>(nwin);
    double fd_best = 0, fd_mag = -1;
    for (double f = 0.6 * f10; f <= 1.4 * f10; f += f10 / 100) {
        double re = 0, im = 0;
        for (std::size_t i = 0; i < r.time.size(); ++i) {
            if (r.time[i] < 0.5e-9) continue;
            const double ph = 2 * pi * f * r.time[i];
            re += (r.port_voltage[probe][i] - mean) * std::cos(ph);
            im -= (r.port_voltage[probe][i] - mean) * std::sin(ph);
        }
        if (re * re + im * im > fd_mag) {
            fd_mag = re * re + im * im;
            fd_best = f;
        }
    }

    std::printf("\nfirst (1,0) plane mode:\n");
    std::printf("  analytic cavity : %.3f GHz\n", f10 / 1e9);
    std::printf("  BEM circuit     : %.3f GHz  (%+.1f%%)\n", best_f / 1e9,
                100 * (best_f - f10) / f10);
    std::printf("  2-D FDTD        : %.3f GHz  (%+.1f%%)\n", fd_best / 1e9,
                100 * (fd_best - f10) / f10);
    std::printf("\nexpected shape: all three engines agree on the capacitive "
                "slope and the first mode within a few percent.\n\n");
}

void BM_cavity_impedance(benchmark::State& state) {
    const CavityModel cav = cavity();
    for (auto _ : state)
        benchmark::DoNotOptimize(
            cav.impedance({1e-3, 1e-3}, {1e-3, 1e-3}, 2e9));
}
BENCHMARK(BM_cavity_impedance)->Unit(benchmark::kMicrosecond);

} // namespace

int main(int argc, char** argv) {
    print_experiment();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
