// A3 — ablation: mesh convergence and solver scaling (§2: the method must
// "handle the complexity of real IC/MCM/PCB designs within the practical
// computational constraints of an engineering workstation environment").
//
// Reports (a) convergence of the extracted port quantities with mesh
// density and (b) wall-time scaling of the assembly + extraction pipeline,
// which is dominated by the dense partial-inductance factorization.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include <vector>

#include "common/parallel.hpp"
#include "em/iterative_solver.hpp"
#include "em/solver.hpp"
#include "em/sweep.hpp"
#include "extract/equivalent_circuit.hpp"
#include "obs/metrics.hpp"
#include "obs/resource.hpp"

using namespace pgsi;

namespace {

PlaneBem make_plane(int n, AssemblyMode assembly = AssemblyMode::Auto) {
    ConductorShape s;
    s.outline = Polygon::rectangle(0, 0, 0.1, 0.08);
    s.z = 0.5e-3;
    s.sheet_resistance = 0.6e-3;
    BemOptions opt;
    opt.assembly = assembly;
    return PlaneBem(RectMesh({s}, 0.1 / n), Greens::homogeneous(4.5, true),
                    opt);
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
        .count();
}

double max_rel_diff(const MatrixD& a, const MatrixD& b) {
    const double scale = std::max(a.max_abs(), 1e-300);
    double m = 0;
    for (std::size_t i = 0; i < a.rows(); ++i)
        for (std::size_t j = 0; j < a.cols(); ++j)
            m = std::max(m, std::abs(a(i, j) - b(i, j)) / scale);
    return m;
}

double max_rel_diff(const std::vector<MatrixC>& a,
                    const std::vector<MatrixC>& b) {
    double scale = 1e-300, m = 0;
    for (std::size_t k = 0; k < a.size(); ++k)
        for (std::size_t i = 0; i < a[k].rows(); ++i)
            for (std::size_t j = 0; j < a[k].cols(); ++j)
                scale = std::max(scale, std::abs(a[k](i, j)));
    for (std::size_t k = 0; k < a.size(); ++k)
        for (std::size_t i = 0; i < a[k].rows(); ++i)
            for (std::size_t j = 0; j < a[k].cols(); ++j)
                m = std::max(m, std::abs(a[k](i, j) - b[k](i, j)) / scale);
    return m;
}

// Machine-readable scaling record: per mesh density, the direct vs cached
// fill time, the cached-reconstruction error (must stay <= 1e-10), the
// downstream dense-solver stages, and a short DirectSolver frequency sweep.
// Committed as BENCH_scaling.json so trajectories across commits resolve
// which stage moved.
void write_scaling_json(const char* path, bool smoke) {
    std::FILE* f = std::fopen(path, "w");
    if (!f) {
        std::fprintf(stderr, "cannot open %s for writing\n", path);
        return;
    }
    std::printf("=== scaling record -> %s (threads=%zu%s) ===\n", path,
                par::thread_count(), smoke ? ", smoke" : "");
    std::fprintf(f, "{\n  \"bench\": \"scaling\",\n  \"threads\": %zu,\n",
                 par::thread_count());
    std::fprintf(f, "  \"cases\": [\n");
    // The smoke subset (PGSI_BENCH_SMOKE) keeps the per-size labels of the
    // full run so bench_compare matches its cases against the golden by "n".
    const std::vector<int> sizes =
        smoke ? std::vector<int>{6, 10, 14} : std::vector<int>{6, 10, 14, 18, 24};
    const std::size_t nsizes = sizes.size();
    for (std::size_t si = 0; si < nsizes; ++si) {
        const int n = sizes[si];

        auto t0 = std::chrono::steady_clock::now();
        const PlaneBem direct = make_plane(n, AssemblyMode::Direct);
        direct.potential_matrix();
        direct.inductance_matrix();
        const double fill_direct_s = seconds_since(t0);

        t0 = std::chrono::steady_clock::now();
        const PlaneBem cached = make_plane(n, AssemblyMode::Cached);
        cached.potential_matrix();
        cached.inductance_matrix();
        const double fill_cached_s = seconds_since(t0);

        const double rel_err = std::max(
            max_rel_diff(cached.potential_matrix(), direct.potential_matrix()),
            max_rel_diff(cached.inductance_matrix(),
                         direct.inductance_matrix()));

        t0 = std::chrono::steady_clock::now();
        cached.maxwell_capacitance();
        const double invert_s = seconds_since(t0);
        t0 = std::chrono::steady_clock::now();
        cached.gamma();
        const double gamma_s = seconds_since(t0);

        // Short parallel frequency sweep at two corner pins.
        const DirectSolver solver(cached, SurfaceImpedance{});
        const std::vector<std::size_t> ports = {
            cached.mesh().nearest_node({0.005, 0.005}, 0),
            cached.mesh().nearest_node({0.095, 0.075}, 0)};
        const VectorD freqs{1e8, 3e8, 1e9};
        t0 = std::chrono::steady_clock::now();
        const auto z = solver.sweep_impedance(freqs, ports);
        const double sweep_s = seconds_since(t0);
        benchmark::DoNotOptimize(z.size());

        std::fprintf(f,
                     "    {\"n\": %d, \"nodes\": %zu, \"branches\": %zu, "
                     "\"cache_entries\": %zu,\n"
                     "     \"fill_direct_s\": %.6f, \"fill_cached_s\": %.6f, "
                     "\"fill_speedup\": %.2f, \"cached_rel_err\": %.3e,\n"
                     "     \"invert_s\": %.6f, \"gamma_s\": %.6f, "
                     "\"sweep_freqs\": %zu, \"sweep_s\": %.6f}%s\n",
                     n, cached.node_count(), cached.mesh().branch_count(),
                     cached.stats().cache_entries, fill_direct_s, fill_cached_s,
                     fill_direct_s / std::max(fill_cached_s, 1e-9), rel_err,
                     invert_s, gamma_s, freqs.size(), sweep_s,
                     si + 1 < nsizes ? "," : "");
        std::printf("  n=%2d: fill %.3fs direct / %.3fs cached (%.1fx), "
                    "rel err %.1e, sweep(%zu f) %.3fs\n",
                    n, fill_direct_s, fill_cached_s,
                    fill_direct_s / std::max(fill_cached_s, 1e-9), rel_err,
                    freqs.size(), sweep_s);
    }
    std::fprintf(f, "  ],\n");

    // Dense-LU vs matrix-free FFT/GMRES frequency sweeps over the same mesh
    // family: where the iterative backend's O(N log N) matvecs overtake the
    // direct backend's dense factorizations (the crossover the Auto backend
    // selection is tuned against).
    std::fprintf(f, "  \"backends\": [\n");
    const std::vector<int> bsizes =
        smoke ? std::vector<int>{12, 18} : std::vector<int>{12, 18, 24, 34, 48};
    const std::size_t nb = bsizes.size();
    for (std::size_t si = 0; si < nb; ++si) {
        const int n = bsizes[si];
        const PlaneBem bem = make_plane(n);
        const SurfaceImpedance zs = SurfaceImpedance::from_sheet_resistance(
            0.6e-3);
        const std::vector<std::size_t> ports = {
            bem.mesh().nearest_node({0.005, 0.005}, 0),
            bem.mesh().nearest_node({0.095, 0.075}, 0)};
        const VectorD freqs{1e8, 3e8};

        const DirectSolver direct(bem, zs);
        auto t0 = std::chrono::steady_clock::now();
        const auto zd = direct.sweep_impedance(freqs, ports);
        const double direct_s = seconds_since(t0);

        SolverOptions iopt;
        iopt.backend = SolverBackend::Iterative;
        const IterativeSolver iterative(bem, zs, iopt);
        const std::uint64_t restarts0 = obs::counter("gmres.restarts").value();
        t0 = std::chrono::steady_clock::now();
        const auto zi = iterative.sweep_impedance(freqs, ports);
        const double iterative_s = seconds_since(t0);
        const std::uint64_t restarts =
            obs::counter("gmres.restarts").value() - restarts0;

        const double rel_err = max_rel_diff(zi, zd);
        const IterativeSolverStats& st = iterative.stats();
        std::fprintf(f,
                     "    {\"n\": %d, \"nodes\": %zu, \"branches\": %zu, "
                     "\"sweep_freqs\": %zu,\n"
                     "     \"direct_s\": %.6f, \"iterative_s\": %.6f, "
                     "\"speedup\": %.2f, \"z_rel_err\": %.3e,\n"
                     "     \"gmres_iterations\": %zu, \"gmres_matvecs\": %zu, "
                     "\"gmres_restarts\": %llu, \"worst_residual\": %.3e}%s\n",
                     n, bem.node_count(), bem.mesh().branch_count(),
                     freqs.size(), direct_s, iterative_s,
                     direct_s / std::max(iterative_s, 1e-9), rel_err,
                     st.iterations, st.matvecs,
                     static_cast<unsigned long long>(restarts),
                     st.worst_residual, si + 1 < nb ? "," : "");
        std::printf("  n=%2d backends: direct %.3fs / iterative %.3fs "
                    "(%.1fx), z rel err %.1e, %zu gmres iters\n",
                    n, direct_s, iterative_s,
                    direct_s / std::max(iterative_s, 1e-9), rel_err,
                    st.iterations);
    }
    std::fprintf(f, "  ],\n");

    // Dense-grid frequency sweeps through the iterative backend's sweep
    // engine (block multi-RHS GMRES, warm starts, subspace recycling) vs the
    // same grid solved per-column cold, plus the adaptive driver that solves
    // only where rational interpolation cannot be validated. The matvec
    // reduction is the headline number the engine exists for.
    std::fprintf(f, "  \"sweep\": [\n");
    const std::vector<int> ssizes =
        smoke ? std::vector<int>{18} : std::vector<int>{18, 48};
    const std::size_t ns = ssizes.size();
    for (std::size_t si = 0; si < ns; ++si) {
        const int n = ssizes[si];
        const PlaneBem bem = make_plane(n);
        const SurfaceImpedance zs = SurfaceImpedance::from_sheet_resistance(
            0.6e-3);
        const std::vector<std::size_t> ports = {
            bem.mesh().nearest_node({0.005, 0.005}, 0),
            bem.mesh().nearest_node({0.095, 0.075}, 0)};
        // 64 points up to the plane's first resonances: the warm-start
        // regime a production PDN impedance scan actually runs in.
        const std::size_t nf = 64;
        VectorD freqs(nf);
        for (std::size_t i = 0; i < nf; ++i)
            freqs[i] = 1e8 + (9e8 - 1e8) * static_cast<double>(i) /
                                 static_cast<double>(nf - 1);

        SolverOptions copt;
        copt.backend = SolverBackend::Iterative;
        copt.sweep.engine = false;
        copt.sweep.block_solve = false;
        copt.sweep.warm_start = false;
        const IterativeSolver cold(bem, zs, copt);
        auto t0 = std::chrono::steady_clock::now();
        const auto zc = cold.sweep_impedance(freqs, ports);
        const double cold_s = seconds_since(t0);

        SolverOptions eopt;
        eopt.backend = SolverBackend::Iterative;
        const IterativeSolver engine(bem, zs, eopt);
        t0 = std::chrono::steady_clock::now();
        const auto ze = engine.sweep_impedance(freqs, ports);
        const double engine_s = seconds_since(t0);

        const double rel_err = max_rel_diff(ze, zc);
        const IterativeSolverStats& est = engine.stats();
        const double reduction =
            static_cast<double>(cold.stats().matvecs) /
            static_cast<double>(std::max<std::size_t>(est.matvecs, 1));

        // Adaptive driver over the same grid, on a fresh engine solver.
        const IterativeSolver ada(bem, zs, eopt);
        t0 = std::chrono::steady_clock::now();
        const AdaptiveSweepResult ar =
            adaptive_sweep_impedance(ada, freqs, ports, {});
        const double adaptive_s = seconds_since(t0);
        const double ada_err = max_rel_diff(ar.z, zc);

        std::fprintf(f,
                     "    {\"n\": %d, \"nodes\": %zu, \"sweep_freqs\": %zu,\n"
                     "     \"cold_s\": %.6f, \"engine_s\": %.6f, "
                     "\"cold_matvecs\": %zu, \"engine_matvecs\": %zu, "
                     "\"matvec_reduction\": %.2f,\n"
                     "     \"engine_z_rel_err\": %.3e, \"warm_starts\": %zu, "
                     "\"recycle_hits\": %zu, \"saved_iterations\": %zu,\n"
                     "     \"adaptive_s\": %.6f, \"adaptive_solves\": %zu, "
                     "\"adaptive_refinements\": %zu, "
                     "\"adaptive_z_rel_err\": %.3e}%s\n",
                     n, bem.node_count(), nf, cold_s, engine_s,
                     cold.stats().matvecs, est.matvecs, reduction, rel_err,
                     est.warm_starts, est.recycle_hits, est.saved_iterations,
                     adaptive_s, ar.solves, ar.refinements, ada_err,
                     si + 1 < ns ? "," : "");
        std::printf("  n=%2d sweep(%zu f): cold %.3fs/%zu matvecs, engine "
                    "%.3fs/%zu matvecs (%.1fx fewer), z rel err %.1e; "
                    "adaptive %zu solves, err %.1e\n",
                    n, nf, cold_s, cold.stats().matvecs, engine_s, est.matvecs,
                    reduction, rel_err, ar.solves, ada_err);
    }
    std::fprintf(f, "  ],\n");

    // Process-level resource accounting (obs/resource): allocation pressure
    // and pool dispatch counts are deterministic per build and gate cheaply;
    // peak RSS is recorded for trending but skipped by the gate (it depends
    // on the machine).
    const obs::MetricsSnapshot ms = obs::metrics_snapshot();
    const par::PoolStats ps = par::pool_stats();
    std::fprintf(f,
                 "  \"resources\": {\"peak_rss_bytes\": %llu, "
                 "\"matrix_alloc_count\": %llu, \"matrix_alloc_bytes\": %llu, "
                 "\"par_jobs\": %llu}\n}\n",
                 static_cast<unsigned long long>(obs::peak_rss_bytes()),
                 static_cast<unsigned long long>(
                     ms.counter_value("alloc.matrix.count")),
                 static_cast<unsigned long long>(
                     ms.counter_value("alloc.matrix.bytes")),
                 static_cast<unsigned long long>(ps.jobs));
    std::fclose(f);
    std::printf("\n");
}

void print_experiment() {
    std::printf("=== A3: mesh convergence and scaling (paper §2 workstation "
                "claim) ===\n");
    std::printf("100x80 mm plane, two corner pins; extracted port values and "
                "wall time vs mesh density\n\n");
    std::printf("%-8s %-8s %-12s %-14s %-16s %-10s %-24s\n", "mesh", "cells",
                "C_tot [nF]", "L_pin [nH]", "Z(100MHz) [mohm]", "time [s]",
                "fill/invert/gamma [s]");
    for (int n : {6, 10, 14, 18, 24}) {
        const auto t0 = std::chrono::steady_clock::now();
        const PlaneBem bem = make_plane(n);
        const std::size_t p1 = bem.mesh().nearest_node({0.005, 0.005}, 0);
        const std::size_t p2 = bem.mesh().nearest_node({0.095, 0.075}, 0);
        const CircuitExtractor ex(bem, ExtractionOptions{0.0, true, false});
        const EquivalentCircuit ec = ex.extract(ex.select_nodes({p1, p2}, 12));
        std::size_t i1 = 0;
        const auto keep = ex.select_nodes({p1, p2}, 12);
        for (std::size_t i = 0; i < keep.size(); ++i)
            if (keep[i] == p1) i1 = i;
        // Pin-to-pin loop inductance: Kron-reduce Γ onto the two pins alone.
        const EquivalentCircuit two =
            ex.extract(std::vector<std::size_t>{std::min(p1, p2), std::max(p1, p2)});
        double lpin = 0;
        for (const RlcBranch& b : two.branches)
            if (b.l != 0) lpin = b.l;
        const double z100 = std::abs(ec.impedance(100e6, {i1})(0, 0));
        const auto t1 = std::chrono::steady_clock::now();
        const double secs =
            std::chrono::duration<double>(t1 - t0).count();
        const BemAssemblyStats& st = bem.stats();
        std::printf("%2dx%-5d %-8zu %-12.3f %-14.3f %-16.1f %-10.2f "
                    "%.3f/%.3f/%.3f\n",
                    n, (n * 8) / 10, bem.node_count(),
                    ec.total_reference_capacitance() * 1e9, lpin * 1e9,
                    z100 * 1e3, secs,
                    st.potential_seconds + st.inductance_seconds,
                    st.capacitance_seconds, st.gamma_seconds);
    }
    std::printf("\nexpected shape: port quantities settle within a few %% by "
                "moderate densities while cost grows ~N^3 (dense "
                "factorizations) — the engineering trade the paper's "
                "quasi-static method is built around.\n\n");
}

void BM_full_pipeline(benchmark::State& state) {
    const int n = static_cast<int>(state.range(0));
    // Per-stage wall time accumulated across iterations; exported as rate
    // counters so BENCH_*.json trajectories resolve which stage moved.
    double fill_s = 0, invert_s = 0, gamma_s = 0, extract_s = 0;
    for (auto _ : state) {
        const PlaneBem bem = make_plane(n);
        // Force the lazy assembly stages up front so the extract window below
        // times pure Kron reduction, not hidden fills.
        bem.maxwell_capacitance();
        bem.gamma();
        const CircuitExtractor ex(bem);
        const auto t0 = std::chrono::steady_clock::now();
        const EquivalentCircuit ec = ex.extract(ex.select_nodes(
            {bem.mesh().nearest_node({0.005, 0.005}, 0)}, 12));
        const auto t1 = std::chrono::steady_clock::now();
        benchmark::DoNotOptimize(ec.branches.size());
        const BemAssemblyStats& st = bem.stats();
        fill_s += st.potential_seconds + st.inductance_seconds;
        invert_s += st.capacitance_seconds;
        gamma_s += st.gamma_seconds;
        extract_s += std::chrono::duration<double>(t1 - t0).count();
    }
    state.counters["fill_s"] =
        benchmark::Counter(fill_s, benchmark::Counter::kAvgIterations);
    state.counters["invert_s"] =
        benchmark::Counter(invert_s, benchmark::Counter::kAvgIterations);
    state.counters["gamma_s"] =
        benchmark::Counter(gamma_s, benchmark::Counter::kAvgIterations);
    state.counters["extract_s"] =
        benchmark::Counter(extract_s, benchmark::Counter::kAvgIterations);
    state.SetComplexityN(n * n);
}
BENCHMARK(BM_full_pipeline)->Arg(6)->Arg(10)->Arg(14)->Arg(18)
    ->Unit(benchmark::kMillisecond)->Complexity();

} // namespace

int main(int argc, char** argv) {
    // Feeds the "resources" section of the JSON record.
    obs::set_resources_enabled(true);
    // PGSI_BENCH_SMOKE runs a reduced size subset and skips the exploratory
    // output — just enough signal for bench_compare to gate a commit.
    const bool smoke = std::getenv("PGSI_BENCH_SMOKE") != nullptr;
    if (!smoke) print_experiment();
    // PGSI_BENCH_JSON overrides the output path (default: cwd).
    const char* json_path = std::getenv("PGSI_BENCH_JSON");
    write_scaling_json(json_path ? json_path : "BENCH_scaling.json", smoke);
    if (smoke) return 0;
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
