// E4 — §6.1 example 3 / Fig. 8: test-plane transient, equivalent RLC
// circuit vs 2-D FDTD.
//
// The paper applies a 5 V pulse (0.2 ns rise/fall, 1.0 ns width) at Port 1
// of the alumina test plane with all five ports terminated in 50 Ω, and
// overlays the Port-2 waveform computed from the extracted RLC circuit with
// a 2-D FDTD solution (1 mm grid, 10 ps steps in the paper): "good agreement
// again is evident".
//
// Both engines are rebuilt here and the Port-2 waveforms compared sample by
// sample, plus summary metrics (peak value, arrival time, RMS difference).
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "circuit/transient.hpp"
#include "extract/equivalent_circuit.hpp"
#include "fdtd/plane_fdtd.hpp"
#include "io/csv.hpp"

using namespace pgsi;

namespace {

constexpr double kSide = 8e-3, kSep = 280e-6, kEr = 9.6, kRs = 6e-3;
constexpr double kTstop = 4e-9;

std::vector<Point2> pads() {
    return {{1e-3, 1e-3}, {7e-3, 7e-3}, {4e-3, 4e-3}, {1e-3, 7e-3},
            {7e-3, 1e-3}};
}

Source fig8_pulse() {
    return Source::pulse(0, 5, 0.1e-9, 0.2e-9, 0.2e-9, 1.0e-9);
}

// Engine 1: extracted equivalent RLC circuit, all ports 50 ohm.
VectorD run_circuit(double dt, VectorD& time) {
    ConductorShape s;
    s.outline = Polygon::rectangle(0, 0, kSide, kSide);
    s.z = kSep;
    s.sheet_resistance = kRs;
    const PlaneBem bem(RectMesh({s}, kSide / 14), Greens::homogeneous(kEr, true),
                       BemOptions{});
    std::vector<std::size_t> ports;
    for (const Point2& p : pads()) ports.push_back(bem.mesh().nearest_node(p, 0));
    const CircuitExtractor ex(bem);
    const auto keep = ex.select_nodes(ports, 37);
    const EquivalentCircuit ec = ex.extract(keep);

    Netlist nl;
    std::vector<NodeId> map;
    for (std::size_t k = 0; k < ec.node_count(); ++k)
        map.push_back(nl.add_node("n" + std::to_string(k)));
    ec.stamp(nl, map, nl.ground(), "pg");

    std::vector<NodeId> port_nodes;
    for (std::size_t p : ports)
        for (std::size_t i = 0; i < keep.size(); ++i)
            if (keep[i] == p) port_nodes.push_back(map[i]);
    // Port 1: 5 V source behind 50 ohm; ports 2..5: 50 ohm loads.
    const NodeId src = nl.add_node("src");
    nl.add_vsource("V1", src, nl.ground(), fig8_pulse());
    nl.add_resistor("Rs", src, port_nodes[0], 50.0);
    for (std::size_t p = 1; p < port_nodes.size(); ++p)
        nl.add_resistor("Rl" + std::to_string(p), port_nodes[p], nl.ground(),
                        50.0);

    TransientOptions opt;
    opt.dt = dt;
    opt.tstop = kTstop;
    opt.probes = {port_nodes[1]};
    const TransientResult r = transient_analyze(nl, opt);
    time = r.time;
    return r.waveform(port_nodes[1]);
}

// Engine 2: 2-D FDTD on the same structure.
PlaneFdtdResult run_fdtd() {
    PlaneFdtdOptions o;
    o.lx = kSide;
    o.ly = kSide;
    o.separation = kSep;
    o.eps_r = kEr;
    o.sheet_resistance = kRs;
    o.nx = 32;
    o.ny = 32; // 0.25 mm grid
    PlaneFdtd sim(o);
    sim.add_port(pads()[0], 50.0, fig8_pulse());
    for (std::size_t p = 1; p < pads().size(); ++p)
        sim.add_port(pads()[p], 50.0, Source::dc(0.0));
    return sim.run(kTstop);
}

double sample(const VectorD& t, const VectorD& v, double when) {
    for (std::size_t i = 0; i < t.size(); ++i)
        if (t[i] >= when) return v[i];
    return v.back();
}

void print_experiment() {
    std::printf("=== E4: test-plane transient at Port 2 — RLC circuit vs "
                "2-D FDTD (paper Fig. 8) ===\n");
    std::printf("5 V / 0.2 ns / 1 ns pulse at Port 1, all ports 50 ohm\n\n");

    VectorD t_c;
    const VectorD v_c = run_circuit(5e-12, t_c);
    const PlaneFdtdResult fd = run_fdtd();
    const VectorD& v_f = fd.port_voltage[1];

    std::printf("%-8s %-14s %-14s\n", "t [ns]", "RLC circuit [V]",
                "FDTD [V]");
    double rms = 0, rms_ref = 0;
    int n = 0;
    for (double t = 0.1e-9; t <= kTstop; t += 0.1e-9) {
        const double a = sample(t_c, v_c, t);
        const double b = sample(fd.time, v_f, t);
        if (std::fmod(std::round(t * 1e10), 2.0) == 0.0)
            std::printf("%-8.1f %-14.3f %-14.3f\n", t * 1e9, a, b);
        rms += (a - b) * (a - b);
        rms_ref += b * b;
        ++n;
    }
    write_csv_file("bench_plane_transient.csv",
                   {"t_s", "v_circuit", "v_fdtd"},
                   {t_c, v_c,
                    [&] {
                        VectorD out(t_c.size());
                        for (std::size_t i = 0; i < t_c.size(); ++i)
                            out[i] = sample(fd.time, v_f, t_c[i]);
                        return out;
                    }()});

    auto arrival = [](const VectorD& t, const VectorD& v) {
        const double thresh = 0.2 * max_abs(v);
        for (std::size_t i = 0; i < v.size(); ++i)
            if (std::abs(v[i]) > thresh) return t[i];
        return 0.0;
    };
    std::printf("\n%-30s %-12s %-12s\n", "metric", "RLC", "FDTD");
    std::printf("%-30s %-12.3f %-12.3f\n", "peak at Port 2 [V]", max_abs(v_c),
                max_abs(v_f));
    std::printf("%-30s %-12.3f %-12.3f\n", "arrival (20%% of peak) [ns]",
                arrival(t_c, v_c) * 1e9, arrival(fd.time, v_f) * 1e9);
    std::printf("%-30s %.1f %%\n", "relative RMS difference",
                100.0 * std::sqrt(rms / std::max(rms_ref, 1e-30)));
    std::printf("(paper: 'good agreement again is evident'; waveforms in "
                "bench_plane_transient.csv)\n\n");
}

void BM_circuit_transient(benchmark::State& state) {
    for (auto _ : state) {
        VectorD t;
        benchmark::DoNotOptimize(run_circuit(10e-12, t).back());
    }
}
BENCHMARK(BM_circuit_transient)->Unit(benchmark::kMillisecond);

void BM_fdtd_transient(benchmark::State& state) {
    for (auto _ : state) benchmark::DoNotOptimize(run_fdtd().time.back());
}
BENCHMARK(BM_fdtd_transient)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char** argv) {
    print_experiment();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
