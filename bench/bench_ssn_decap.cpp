// E5 — §6.2 example 1: pre-layout SSN and decoupling study.
//
// The paper's board: 7 × 10 inch, six layers, FR4, power and ground planes
// separated by 30 mil, one chip with sixteen CMOS drivers. "The ground
// noises were simulated with different combination of drivers switching, and
// the effectiveness of decoupling capacitance were observed."
//
// Two tables are produced:
//   (a) peak noise vs how many of the sixteen drivers switch together,
//   (b) peak noise vs populated decap count (100 nF parts ringed around the
//       chip, populated nearest-first) with all sixteen switching.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "si/ssn.hpp"

using namespace pgsi;

namespace {

SsnModelOptions board_options() {
    SsnModelOptions o;
    o.mesh_pitch = 14e-3;
    o.interior_nodes = 12;
    o.prune_rel_tol = 0.05;
    return o;
}

constexpr double kDt = 25e-12;
constexpr double kTstop = 8e-9;

void print_experiment() {
    std::printf("=== E5: pre-layout SSN + decoupling study (paper §6.2 ex. 1) "
                "===\n");
    std::printf("7x10 inch FR4 board, 30 mil plane separation, one chip with "
                "16 CMOS drivers (1 ns edges)\n\n");

    std::printf("(a) noise vs number of switching drivers\n");
    std::printf("%-12s %-18s %-18s %-18s\n", "switching", "gnd bounce [mV]",
                "Vcc droop [mV]", "plane noise [mV]");
    const auto rows = sweep_switching_drivers({1, 2, 4, 8, 16},
                                              board_options(), kDt, kTstop);
    for (const SwitchingSweepRow& r : rows)
        std::printf("%-12d %-18.1f %-18.1f %-18.1f\n", r.n_switching,
                    r.peak_gnd_bounce * 1e3, r.peak_vcc_droop * 1e3,
                    r.peak_plane_noise * 1e3);
    std::printf("expected shape: plane noise grows with the switching count "
                "(the SSN mechanism); per-die ground bounce is pin-limited "
                "and saturates.\n\n");

    std::printf("(b) noise vs populated 100 nF decaps (16 drivers "
                "switching)\n");
    std::printf("%-12s %-14s %-18s %-18s\n", "decaps", "total [uF]",
                "Vcc droop [mV]", "plane noise [mV]");
    Decap proto;
    proto.c = 100e-9;
    proto.esr = 30e-3;
    proto.esl = 1e-9;
    const auto drows =
        sweep_decap_count(16, proto, board_options(), kDt, kTstop);
    for (const DecapSweepRow& r : drows)
        std::printf("%-12zu %-14.2f %-18.1f %-18.1f\n", r.n_decaps,
                    r.total_capacitance * 1e6, r.peak_vcc_droop * 1e3,
                    r.peak_plane_noise * 1e3);
    std::printf("expected shape: the first few well-placed decaps cut the "
                "plane noise hard; returns diminish as ESL dominates — the "
                "paper's argument for simulated (not 'play it safe') "
                "decoupling.\n\n");

    std::printf("(c) worst-case switching pattern (greedy search over "
                "'different combinations of drivers switching')\n");
    auto plane =
        std::make_shared<PlaneModel>(make_ssn_eval_board(0), board_options());
    const Source input = Source::pulse(0, 1, 1e-9, 1e-9, 1e-9, 6e-9);
    const SwitchingPatternResult pat =
        find_worst_switching_pattern(plane, 4, input, kDt, 6e-9);
    std::printf("%-8s %-10s %-20s\n", "pick", "driver", "worst noise [mV]");
    for (std::size_t k = 0; k < pat.pattern.size(); ++k)
        std::printf("%-8zu drv%-7zu %-20.1f\n", k + 1, pat.pattern[k],
                    pat.noise_after[k] * 1e3);
    std::printf("expected shape: the search clusters adjacent drivers (their "
                "pin currents share plane inductance), and noise grows with "
                "every added aggressor.\n\n");
}

void BM_board_extraction(benchmark::State& state) {
    for (auto _ : state) {
        const PlaneModel plane(make_ssn_eval_board(16), board_options());
        benchmark::DoNotOptimize(plane.circuit().node_count());
    }
}
BENCHMARK(BM_board_extraction)->Unit(benchmark::kMillisecond);

void BM_ssn_transient(benchmark::State& state) {
    auto plane =
        std::make_shared<PlaneModel>(make_ssn_eval_board(16), board_options());
    const SsnModel model(plane);
    for (auto _ : state) {
        const SwitchingSweepRow r = measure_noise(model, kDt, 4e-9);
        benchmark::DoNotOptimize(r.peak_plane_noise);
    }
}
BENCHMARK(BM_ssn_transient)->Unit(benchmark::kMillisecond)->Iterations(1);

} // namespace

int main(int argc, char** argv) {
    print_experiment();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
