// A4 — ablation: monolithic MNA vs partitioned Gauss–Seidel co-simulation
// (§5.2).
//
// The paper couples its four subsystems "dynamically ... at every time step"
// — a partitioned relaxation scheme. This ablation compares that scheme
// against solving everything in one MNA system: waveform agreement (the
// relaxation lags the coupling by one step) and the runtime trade.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <memory>

#include "si/cosim.hpp"

using namespace pgsi;

namespace {

Board small_board() {
    BoardStackup st;
    st.plane_separation = 0.5e-3;
    st.eps_r = 4.5;
    st.sheet_resistance = 0.6e-3;
    Board b(0.10, 0.08, st, 5.0);
    b.set_vrm_location({0.01, 0.01});
    for (int d = 0; d < 4; ++d) {
        DriverSite s;
        s.name = "d" + std::to_string(d);
        s.vcc_pin = {0.06 + 0.006 * d, 0.05};
        s.gnd_pin = {0.06 + 0.006 * d, 0.04};
        s.load_c = 25e-12;
        s.driver.input = Source::pulse(0, 1, 0.5e-9, 0.8e-9, 0.8e-9, 4e-9);
        b.add_driver_site(s);
    }
    return b;
}

SsnModelOptions options() {
    SsnModelOptions o;
    o.mesh_pitch = 10e-3;
    o.interior_nodes = 8;
    o.prune_rel_tol = 0.03;
    return o;
}

void print_experiment() {
    std::printf("=== A4: monolithic vs partitioned co-simulation (paper "
                "§5.2) ===\n");
    std::printf("four switching drivers on a 100x80 mm board\n\n");

    auto plane = std::make_shared<PlaneModel>(small_board(), options());
    const double tstop = 6e-9;

    std::printf("%-10s %-16s %-16s %-12s\n", "dt [ps]", "mono peak [mV]",
                "part peak [mV]", "delta [%]");
    for (double dt : {50e-12, 25e-12, 10e-12}) {
        const SsnModel mono(plane);
        const TransientResult rm = mono.simulate(dt, tstop);
        double mono_peak = 0;
        for (std::size_t s = 0; s < 4; ++s)
            mono_peak = std::max(mono_peak, rm.peak_excursion(mono.die_gnd(s)));

        PartitionedCosim part(plane, dt);
        const PartitionedCosim::Result rp = part.run(tstop);
        double part_peak = 0;
        for (std::size_t s = 0; s < 4; ++s)
            for (double v : rp.die_gnd[s])
                part_peak =
                    std::max(part_peak, std::abs(v - rp.die_gnd[s].front()));

        std::printf("%-10.0f %-16.1f %-16.1f %-12.1f\n", dt * 1e12,
                    mono_peak * 1e3, part_peak * 1e3,
                    100.0 * std::abs(part_peak - mono_peak) / mono_peak);
    }
    std::printf("\nexpected shape: the partitioned scheme converges on the "
                "monolithic answer as dt shrinks (its coupling error is "
                "O(dt)); the benchmarks below give the runtime per step of "
                "each engine.\n\n");
}

void BM_monolithic(benchmark::State& state) {
    auto plane = std::make_shared<PlaneModel>(small_board(), options());
    const SsnModel mono(plane);
    for (auto _ : state) {
        const TransientResult r = mono.simulate(25e-12, 4e-9);
        benchmark::DoNotOptimize(r.time.back());
    }
}
BENCHMARK(BM_monolithic)->Unit(benchmark::kMillisecond)->Iterations(3);

void BM_partitioned(benchmark::State& state) {
    auto plane = std::make_shared<PlaneModel>(small_board(), options());
    for (auto _ : state) {
        PartitionedCosim part(plane, 25e-12);
        const PartitionedCosim::Result r = part.run(4e-9);
        benchmark::DoNotOptimize(r.time.back());
    }
}
BENCHMARK(BM_partitioned)->Unit(benchmark::kMillisecond)->Iterations(3);

} // namespace

int main(int argc, char** argv) {
    print_experiment();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
