// A2 — ablation: validity limit of the quasi-static equivalent circuit
// (§4.1).
//
// The paper argues the frequency-independent RLC circuit "gives accurate
// high frequency characteristics up to a certain frequency limit well above
// most digital signal bandwidth" and demonstrates (Fig. 7) a systematic
// departure past ~10 GHz on the alumina test plane. This ablation measures
// that limit directly: transfer impedance error of the *reduced* 42-node
// circuit against the full (unreduced) quasi-static solution across
// frequency, for two reduction levels.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "em/solver.hpp"
#include "extract/equivalent_circuit.hpp"

using namespace pgsi;

namespace {

constexpr double kSide = 8e-3, kSep = 280e-6, kEr = 9.6, kRs = 6e-3;

PlaneBem make_plane() {
    ConductorShape s;
    s.outline = Polygon::rectangle(0, 0, kSide, kSide);
    s.z = kSep;
    s.sheet_resistance = kRs;
    return PlaneBem(RectMesh({s}, kSide / 16), Greens::homogeneous(kEr, true),
                    BemOptions{});
}

void print_experiment() {
    std::printf("=== A2: quasi-static equivalent-circuit validity vs node "
                "count (paper §4.1, Fig. 7 discussion) ===\n");
    std::printf("alumina test plane; |Z21| between opposite corner pads; "
                "reference = direct MPIE solve on the full mesh\n\n");

    const PlaneBem bem = make_plane();
    const std::size_t p1 = bem.mesh().nearest_node({1e-3, 1e-3}, 0);
    const std::size_t p2 = bem.mesh().nearest_node({7e-3, 7e-3}, 0);
    const DirectSolver ref(bem, SurfaceImpedance::from_sheet_resistance(kRs));

    const CircuitExtractor ex(bem, ExtractionOptions{0.0, true, false});
    struct Model {
        const char* name;
        EquivalentCircuit ec;
        std::vector<std::size_t> ports;
    };
    std::vector<Model> models;
    for (const std::size_t interior : {2, 16, 40}) {
        const auto keep = ex.select_nodes({p1, p2}, interior);
        Model m;
        m.name = interior == 2 ? "tiny" : (interior == 16 ? "small" : "42-node");
        m.ec = ex.extract(keep);
        for (std::size_t p : {p1, p2})
            for (std::size_t i = 0; i < keep.size(); ++i)
                if (keep[i] == p) m.ports.push_back(i);
        models.push_back(std::move(m));
    }

    std::printf("%-10s", "f [GHz]");
    for (const Model& m : models)
        std::printf(" %6s(%2zu) [dB]", m.name, m.ec.node_count());
    std::printf("\n");
    for (double f : {1e9, 2e9, 4e9, 6e9, 8e9, 10e9, 14e9, 18e9}) {
        const double zr = std::abs(ref.port_impedance(f, {p1, p2})(0, 1));
        std::printf("%-10.0f", f / 1e9);
        for (const Model& m : models) {
            const double ze = std::abs(m.ec.impedance(f, m.ports)(0, 1));
            std::printf(" %14.1f", std::abs(20.0 * std::log10(ze / zr)));
        }
        std::printf("\n");
    }
    std::printf("\nexpected shape: more retained nodes push the validity "
                "limit up in frequency; every model eventually departs as "
                "the retained-node spacing approaches the wavelength — the "
                "paper's quasi-static limit.\n\n");
}

void BM_reduction(benchmark::State& state) {
    const PlaneBem bem = make_plane();
    const std::size_t p1 = bem.mesh().nearest_node({1e-3, 1e-3}, 0);
    const std::size_t p2 = bem.mesh().nearest_node({7e-3, 7e-3}, 0);
    const CircuitExtractor ex(bem);
    const auto keep = ex.select_nodes({p1, p2}, state.range(0));
    // Force assembly outside the loop.
    benchmark::DoNotOptimize(bem.gamma().max_abs());
    benchmark::DoNotOptimize(bem.maxwell_capacitance().max_abs());
    for (auto _ : state) {
        const EquivalentCircuit ec = ex.extract(keep);
        benchmark::DoNotOptimize(ec.branches.size());
    }
}
BENCHMARK(BM_reduction)->Arg(8)->Arg(40)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char** argv) {
    print_experiment();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
