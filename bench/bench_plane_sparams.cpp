// E3 — §6.1 example 3 / Figs. 6–7: test plane S-parameters.
//
// The paper models the HP Labs test structure: a plane pair on 280 µm
// alumina (εr = 9.6) with 6 mΩ/sq tungsten metallization and five probing
// pads (Fig. 6, 8 mm square), extracts a 42-node equivalent circuit, and
// compares simulated S21 with the measurement up to ~10 GHz: "the agreement
// is quite good up to about 10 GHz ... towards higher frequency the
// simulated result shifted away from the measurement in a systematic
// fashion" — the quasi-static limit.
//
// The measurement is not available; its role as an independent check is
// played by the direct MPIE sweep on a finer mesh with the exact frequency-
// dependent surface impedance (the only shared approximation is the
// quasi-static Green's function). The experiment reports |S21| from the
// 42-node circuit vs the reference, and the systematic divergence of a
// deliberately *retardation-blind* coarse model at high frequency.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "circuit/sparams.hpp"
#include "common/constants.hpp"
#include "em/solver.hpp"
#include "extract/equivalent_circuit.hpp"
#include "io/touchstone.hpp"

using namespace pgsi;

namespace {

constexpr double kSide = 8e-3;     // plane edge
constexpr double kSep = 280e-6;    // alumina thickness
constexpr double kEr = 9.6;
constexpr double kRs = 6e-3;       // tungsten sheet resistance

PlaneBem make_plane(double pitch) {
    ConductorShape s;
    s.outline = Polygon::rectangle(0, 0, kSide, kSide);
    s.z = kSep;
    s.sheet_resistance = kRs;
    s.name = "plane";
    return PlaneBem(RectMesh({s}, pitch), Greens::homogeneous(kEr, true),
                    BemOptions{});
}

// The five probing pads of Fig. 6: corners and center.
std::vector<Point2> pads() {
    return {{1e-3, 1e-3}, {7e-3, 7e-3}, {4e-3, 4e-3}, {1e-3, 7e-3},
            {7e-3, 1e-3}};
}

double db(double x) { return 20.0 * std::log10(std::max(x, 1e-12)); }

void print_experiment() {
    std::printf("=== E3: test-plane S-parameters (paper §6.1 ex. 3, Figs. "
                "6-7) ===\n");
    std::printf("8x8 mm plane pair, 280 um alumina (er = 9.6), 6 mOhm/sq "
                "tungsten, 5 probing pads, 50-ohm ports\n\n");

    // 42-node equivalent circuit: 5 pads + 37 interior nodes.
    const PlaneBem bem(make_plane(kSide / 14));
    std::vector<std::size_t> ports;
    for (const Point2& p : pads())
        ports.push_back(bem.mesh().nearest_node(p, 0));
    // Frequency-domain use keeps the exact element-wise map (the paper uses
    // the admittance matrix directly in frequency domain); passivity
    // enforcement is for time-domain realizations.
    const CircuitExtractor ex(bem, ExtractionOptions{0.0, true, false});
    const auto keep = ex.select_nodes(ports, 37);
    const EquivalentCircuit ec = ex.extract(keep);
    std::vector<std::size_t> port_idx;
    for (std::size_t p : ports)
        for (std::size_t i = 0; i < keep.size(); ++i)
            if (keep[i] == p) {
                port_idx.push_back(i);
                break;
            }
    std::printf("equivalent circuit: %zu nodes (paper: 42)\n\n",
                ec.node_count());

    // Reference: direct MPIE sweep on a finer mesh with exact Zs(ω).
    const PlaneBem fine(make_plane(kSide / 20));
    std::vector<std::size_t> fine_ports;
    for (const Point2& p : pads())
        fine_ports.push_back(fine.mesh().nearest_node(p, 0));
    // Tungsten: σ ≈ 1.8e7 S/m; thickness from the 6 mΩ/sq sheet value.
    const DirectSolver ref(fine,
                           SurfaceImpedance::from_conductor(1.8e7, 1.0 / (1.8e7 * kRs)));

    std::printf("%-10s %-16s %-16s %-10s\n", "f [GHz]", "|S21| circuit [dB]",
                "|S21| direct [dB]", "delta [dB]");
    VectorD freqs;
    std::vector<MatrixC> s_circuit;
    double max_dev_lo = 0, max_dev_hi = 0;
    for (double f = 1e9; f <= 16e9; f += 1e9) {
        const MatrixC z_ec = ec.impedance(f, port_idx);
        const MatrixC s_ec = z_to_s(z_ec, 50.0);
        const MatrixC z_ref = ref.port_impedance(f, fine_ports);
        const MatrixC s_ref = z_to_s(z_ref, 50.0);
        const double a = db(std::abs(s_ec(1, 0)));
        const double b = db(std::abs(s_ref(1, 0)));
        std::printf("%-10.1f %-16.2f %-16.2f %-10.2f\n", f / 1e9, a, b, a - b);
        freqs.push_back(f);
        s_circuit.push_back(s_ec);
        if (f <= 10e9)
            max_dev_lo = std::max(max_dev_lo, std::abs(a - b));
        else
            max_dev_hi = std::max(max_dev_hi, std::abs(a - b));
    }
    write_touchstone_file("bench_plane_sparams.s5p", freqs, s_circuit, 50.0);
    std::printf("\nmax |S21| deviation up to 10 GHz : %.2f dB\n", max_dev_lo);
    std::printf("max |S21| deviation above 10 GHz : %.2f dB\n", max_dev_hi);
    std::printf("(paper: good agreement to ~10 GHz, systematic shift "
                "beyond — the quasi-static limit)\n");
    std::printf("full 5-port sweep written to bench_plane_sparams.s5p\n\n");
}

void BM_equivalent_circuit_sparams(benchmark::State& state) {
    const PlaneBem bem(make_plane(kSide / 14));
    std::vector<std::size_t> ports;
    for (const Point2& p : pads()) ports.push_back(bem.mesh().nearest_node(p, 0));
    const CircuitExtractor ex(bem);
    const auto keep = ex.select_nodes(ports, 37);
    const EquivalentCircuit ec = ex.extract(keep);
    std::vector<std::size_t> port_idx;
    for (std::size_t p : ports)
        for (std::size_t i = 0; i < keep.size(); ++i)
            if (keep[i] == p) port_idx.push_back(i);
    for (auto _ : state) {
        const MatrixC s = z_to_s(ec.impedance(5e9, port_idx), 50.0);
        benchmark::DoNotOptimize(s(1, 0));
    }
}
BENCHMARK(BM_equivalent_circuit_sparams)->Unit(benchmark::kMicrosecond);

void BM_direct_sweep_point(benchmark::State& state) {
    const PlaneBem bem(make_plane(kSide / 14));
    const DirectSolver ref(bem, SurfaceImpedance::from_sheet_resistance(kRs));
    const std::vector<std::size_t> p{bem.mesh().nearest_node(pads()[0], 0),
                                     bem.mesh().nearest_node(pads()[1], 0)};
    for (auto _ : state)
        benchmark::DoNotOptimize(ref.port_impedance(5e9, p)(1, 0));
}
BENCHMARK(BM_direct_sweep_point)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char** argv) {
    print_experiment();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
