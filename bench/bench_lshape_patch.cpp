// E1 — §6.1 example 1: L-shaped microstrip patch resonances.
//
// The paper extracts an equivalent circuit for the L-shaped patch of Mosig
// [4] and reports the first two resonant modes of the input impedance at
// node A:  f0 = 1.02 GHz, f1 = 1.65 GHz from the equivalent circuit, versus
// f0 = 0.98 GHz, f1 = 1.56 GHz from the reference full-wave solution — i.e.
// the quasi-static circuit runs a few percent high but tracks the modes.
//
// Mosig's exact geometry is not given in the DAC paper, so an L-patch is
// chosen whose first two modes land in the published band: 120 × 120 mm
// outer, 60 × 60 mm cut, εr = 2.33, h = 0.787 mm. The experiment checks that
// the extraction pipeline (full mesh AND a compact 4-node circuit, as in the
// paper) reproduces the modal structure, and that the first mode sits a few
// percent above the half-wave estimate — the paper's signature quasi-static
// behaviour.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "common/constants.hpp"
#include "em/bem_plane.hpp"
#include "extract/equivalent_circuit.hpp"

using namespace pgsi;

namespace {

PlaneBem make_patch(double pitch) {
    ConductorShape patch;
    patch.outline = Polygon::lshape(0.120, 0.120, 0.060, 0.060);
    patch.z = 0.787e-3; // on top of the slab
    patch.name = "patch";
    return PlaneBem(RectMesh({patch}, pitch),
                    Greens::grounded_slab(2.33, 0.787e-3), BemOptions{});
}

// First `count` local maxima of |Z11(f)| on a uniform grid.
std::vector<double> impedance_peaks(const EquivalentCircuit& ec,
                                    std::size_t port, double f_lo, double f_hi,
                                    double df, int count) {
    std::vector<double> fs, zs;
    for (double f = f_lo; f <= f_hi; f += df) {
        fs.push_back(f);
        zs.push_back(std::abs(ec.impedance(f, {port})(0, 0)));
    }
    std::vector<double> peaks;
    for (std::size_t i = 1; i + 1 < zs.size(); ++i)
        if (zs[i] > zs[i - 1] && zs[i] > zs[i + 1]) {
            peaks.push_back(fs[i]);
            if (static_cast<int>(peaks.size()) == count) break;
        }
    return peaks;
}

void print_experiment() {
    std::printf("=== E1: L-shaped microstrip patch — input-impedance "
                "resonances (paper §6.1 ex. 1) ===\n");
    std::printf("patch: 120x120 mm L (60x60 cut), er = 2.33, h = 0.787 mm; "
                "node A at the lower-left corner\n\n");

    const PlaneBem bem = make_patch(120e-3 / 16);
    const std::size_t node_a = bem.mesh().nearest_node({0.005, 0.005}, 0);
    const CircuitExtractor ex(bem);

    const EquivalentCircuit full = ex.extract_full();
    const auto full_peaks =
        impedance_peaks(full, node_a, 0.5e9, 2.2e9, 5e6, 2);

    // The paper's compact "4-node equivalent circuit": node A plus three
    // nodes spread over the patch arms.
    const std::vector<std::size_t> keep4 = ex.select_nodes(
        {node_a, bem.mesh().nearest_node({0.105, 0.030}, 0),
         bem.mesh().nearest_node({0.030, 0.105}, 0),
         bem.mesh().nearest_node({0.030, 0.030}, 0)},
        0);
    const EquivalentCircuit four = ex.extract(keep4);
    std::size_t port4 = 0;
    for (std::size_t i = 0; i < keep4.size(); ++i)
        if (keep4[i] == node_a) port4 = i;
    const auto four_peaks =
        impedance_peaks(four, port4, 0.5e9, 2.6e9, 5e6, 2);

    std::printf("%-34s %-10s %-10s\n", "model", "f0 [GHz]", "f1 [GHz]");
    std::printf("%-34s %-10s %-10s\n", "paper: full-wave reference [4]",
                "0.98", "1.56");
    std::printf("%-34s %-10s %-10s\n", "paper: equivalent circuit", "1.02",
                "1.65");
    std::printf("%-34s %-10.2f %-10.2f\n",
                "pgsi: full-mesh equivalent circuit",
                full_peaks.size() > 0 ? full_peaks[0] / 1e9 : 0.0,
                full_peaks.size() > 1 ? full_peaks[1] / 1e9 : 0.0);
    if (four_peaks.size() > 1)
        std::printf("%-34s %-10.2f %-10.2f\n",
                    "pgsi: 4-node equivalent circuit", four_peaks[0] / 1e9,
                    four_peaks[1] / 1e9);
    else
        std::printf("%-34s %-10.2f %-10s\n", "pgsi: 4-node equivalent circuit",
                    four_peaks.empty() ? 0.0 : four_peaks[0] / 1e9, "n/a");
    const double analytic = c0 / (2 * 0.120 * std::sqrt(2.33));
    std::printf("%-34s %-10.2f %-10s\n", "analytic half-wave estimate",
                analytic / 1e9, "-");
    std::printf("\nExpected shape: circuit modes a few %% above the full-wave "
                "values, first mode near 1 GHz, second within the paper's "
                "1.5-1.7 GHz band.\n\n");
}

void BM_patch_extraction(benchmark::State& state) {
    const double pitch = 120e-3 / static_cast<double>(state.range(0));
    for (auto _ : state) {
        const PlaneBem bem = make_patch(pitch);
        benchmark::DoNotOptimize(bem.gamma().max_abs());
        benchmark::DoNotOptimize(bem.maxwell_capacitance().max_abs());
    }
}
BENCHMARK(BM_patch_extraction)->Arg(8)->Arg(12)->Arg(14)->Unit(benchmark::kMillisecond);

void BM_patch_impedance_point(benchmark::State& state) {
    const PlaneBem bem = make_patch(120e-3 / 12);
    const EquivalentCircuit ec = CircuitExtractor(bem).extract_full();
    const std::size_t port = bem.mesh().nearest_node({0.005, 0.005}, 0);
    for (auto _ : state)
        benchmark::DoNotOptimize(std::abs(ec.impedance(1e9, {port})(0, 0)));
}
BENCHMARK(BM_patch_impedance_point)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char** argv) {
    print_experiment();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
