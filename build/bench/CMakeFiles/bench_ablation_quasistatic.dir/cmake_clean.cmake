file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_quasistatic.dir/bench_ablation_quasistatic.cpp.o"
  "CMakeFiles/bench_ablation_quasistatic.dir/bench_ablation_quasistatic.cpp.o.d"
  "bench_ablation_quasistatic"
  "bench_ablation_quasistatic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_quasistatic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
