# Empty compiler generated dependencies file for bench_ablation_quasistatic.
# This may be replaced when dependencies are built.
