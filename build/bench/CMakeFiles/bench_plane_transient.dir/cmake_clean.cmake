file(REMOVE_RECURSE
  "CMakeFiles/bench_plane_transient.dir/bench_plane_transient.cpp.o"
  "CMakeFiles/bench_plane_transient.dir/bench_plane_transient.cpp.o.d"
  "bench_plane_transient"
  "bench_plane_transient.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_plane_transient.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
