# Empty compiler generated dependencies file for bench_plane_transient.
# This may be replaced when dependencies are built.
