# Empty dependencies file for bench_ssn_decap.
# This may be replaced when dependencies are built.
