file(REMOVE_RECURSE
  "CMakeFiles/bench_ssn_decap.dir/bench_ssn_decap.cpp.o"
  "CMakeFiles/bench_ssn_decap.dir/bench_ssn_decap.cpp.o.d"
  "bench_ssn_decap"
  "bench_ssn_decap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ssn_decap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
