file(REMOVE_RECURSE
  "CMakeFiles/bench_cavity_reference.dir/bench_cavity_reference.cpp.o"
  "CMakeFiles/bench_cavity_reference.dir/bench_cavity_reference.cpp.o.d"
  "bench_cavity_reference"
  "bench_cavity_reference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cavity_reference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
