# Empty compiler generated dependencies file for bench_cavity_reference.
# This may be replaced when dependencies are built.
