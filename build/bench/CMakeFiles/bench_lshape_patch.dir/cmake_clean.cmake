file(REMOVE_RECURSE
  "CMakeFiles/bench_lshape_patch.dir/bench_lshape_patch.cpp.o"
  "CMakeFiles/bench_lshape_patch.dir/bench_lshape_patch.cpp.o.d"
  "bench_lshape_patch"
  "bench_lshape_patch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lshape_patch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
