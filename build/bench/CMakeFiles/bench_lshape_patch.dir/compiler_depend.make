# Empty compiler generated dependencies file for bench_lshape_patch.
# This may be replaced when dependencies are built.
