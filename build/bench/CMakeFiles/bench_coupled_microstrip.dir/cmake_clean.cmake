file(REMOVE_RECURSE
  "CMakeFiles/bench_coupled_microstrip.dir/bench_coupled_microstrip.cpp.o"
  "CMakeFiles/bench_coupled_microstrip.dir/bench_coupled_microstrip.cpp.o.d"
  "bench_coupled_microstrip"
  "bench_coupled_microstrip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_coupled_microstrip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
