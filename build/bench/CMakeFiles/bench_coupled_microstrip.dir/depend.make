# Empty dependencies file for bench_coupled_microstrip.
# This may be replaced when dependencies are built.
