file(REMOVE_RECURSE
  "CMakeFiles/bench_plane_sparams.dir/bench_plane_sparams.cpp.o"
  "CMakeFiles/bench_plane_sparams.dir/bench_plane_sparams.cpp.o.d"
  "bench_plane_sparams"
  "bench_plane_sparams.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_plane_sparams.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
