# Empty dependencies file for bench_plane_sparams.
# This may be replaced when dependencies are built.
