# Empty dependencies file for bench_ablation_cosim.
# This may be replaced when dependencies are built.
