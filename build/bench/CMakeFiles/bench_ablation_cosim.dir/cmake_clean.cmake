file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_cosim.dir/bench_ablation_cosim.cpp.o"
  "CMakeFiles/bench_ablation_cosim.dir/bench_ablation_cosim.cpp.o.d"
  "bench_ablation_cosim"
  "bench_ablation_cosim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_cosim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
