# Empty dependencies file for bench_postlayout_board.
# This may be replaced when dependencies are built.
