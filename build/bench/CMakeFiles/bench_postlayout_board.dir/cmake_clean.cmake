file(REMOVE_RECURSE
  "CMakeFiles/bench_postlayout_board.dir/bench_postlayout_board.cpp.o"
  "CMakeFiles/bench_postlayout_board.dir/bench_postlayout_board.cpp.o.d"
  "bench_postlayout_board"
  "bench_postlayout_board.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_postlayout_board.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
