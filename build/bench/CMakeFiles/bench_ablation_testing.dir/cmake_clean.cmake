file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_testing.dir/bench_ablation_testing.cpp.o"
  "CMakeFiles/bench_ablation_testing.dir/bench_ablation_testing.cpp.o.d"
  "bench_ablation_testing"
  "bench_ablation_testing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_testing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
