# Empty compiler generated dependencies file for bench_ablation_testing.
# This may be replaced when dependencies are built.
