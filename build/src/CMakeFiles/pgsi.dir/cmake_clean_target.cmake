file(REMOVE_RECURSE
  "libpgsi.a"
)
