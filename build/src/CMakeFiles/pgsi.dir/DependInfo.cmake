
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/circuit/ac.cpp" "src/CMakeFiles/pgsi.dir/circuit/ac.cpp.o" "gcc" "src/CMakeFiles/pgsi.dir/circuit/ac.cpp.o.d"
  "/root/repo/src/circuit/dcop.cpp" "src/CMakeFiles/pgsi.dir/circuit/dcop.cpp.o" "gcc" "src/CMakeFiles/pgsi.dir/circuit/dcop.cpp.o.d"
  "/root/repo/src/circuit/lossy_line.cpp" "src/CMakeFiles/pgsi.dir/circuit/lossy_line.cpp.o" "gcc" "src/CMakeFiles/pgsi.dir/circuit/lossy_line.cpp.o.d"
  "/root/repo/src/circuit/mna.cpp" "src/CMakeFiles/pgsi.dir/circuit/mna.cpp.o" "gcc" "src/CMakeFiles/pgsi.dir/circuit/mna.cpp.o.d"
  "/root/repo/src/circuit/netlist.cpp" "src/CMakeFiles/pgsi.dir/circuit/netlist.cpp.o" "gcc" "src/CMakeFiles/pgsi.dir/circuit/netlist.cpp.o.d"
  "/root/repo/src/circuit/parser.cpp" "src/CMakeFiles/pgsi.dir/circuit/parser.cpp.o" "gcc" "src/CMakeFiles/pgsi.dir/circuit/parser.cpp.o.d"
  "/root/repo/src/circuit/sources.cpp" "src/CMakeFiles/pgsi.dir/circuit/sources.cpp.o" "gcc" "src/CMakeFiles/pgsi.dir/circuit/sources.cpp.o.d"
  "/root/repo/src/circuit/sparams.cpp" "src/CMakeFiles/pgsi.dir/circuit/sparams.cpp.o" "gcc" "src/CMakeFiles/pgsi.dir/circuit/sparams.cpp.o.d"
  "/root/repo/src/circuit/tline.cpp" "src/CMakeFiles/pgsi.dir/circuit/tline.cpp.o" "gcc" "src/CMakeFiles/pgsi.dir/circuit/tline.cpp.o.d"
  "/root/repo/src/circuit/transient.cpp" "src/CMakeFiles/pgsi.dir/circuit/transient.cpp.o" "gcc" "src/CMakeFiles/pgsi.dir/circuit/transient.cpp.o.d"
  "/root/repo/src/em/bem_plane.cpp" "src/CMakeFiles/pgsi.dir/em/bem_plane.cpp.o" "gcc" "src/CMakeFiles/pgsi.dir/em/bem_plane.cpp.o.d"
  "/root/repo/src/em/cavity_model.cpp" "src/CMakeFiles/pgsi.dir/em/cavity_model.cpp.o" "gcc" "src/CMakeFiles/pgsi.dir/em/cavity_model.cpp.o.d"
  "/root/repo/src/em/greens.cpp" "src/CMakeFiles/pgsi.dir/em/greens.cpp.o" "gcc" "src/CMakeFiles/pgsi.dir/em/greens.cpp.o.d"
  "/root/repo/src/em/rectint.cpp" "src/CMakeFiles/pgsi.dir/em/rectint.cpp.o" "gcc" "src/CMakeFiles/pgsi.dir/em/rectint.cpp.o.d"
  "/root/repo/src/em/solver.cpp" "src/CMakeFiles/pgsi.dir/em/solver.cpp.o" "gcc" "src/CMakeFiles/pgsi.dir/em/solver.cpp.o.d"
  "/root/repo/src/em/surface_impedance.cpp" "src/CMakeFiles/pgsi.dir/em/surface_impedance.cpp.o" "gcc" "src/CMakeFiles/pgsi.dir/em/surface_impedance.cpp.o.d"
  "/root/repo/src/em/via.cpp" "src/CMakeFiles/pgsi.dir/em/via.cpp.o" "gcc" "src/CMakeFiles/pgsi.dir/em/via.cpp.o.d"
  "/root/repo/src/extract/equivalent_circuit.cpp" "src/CMakeFiles/pgsi.dir/extract/equivalent_circuit.cpp.o" "gcc" "src/CMakeFiles/pgsi.dir/extract/equivalent_circuit.cpp.o.d"
  "/root/repo/src/extract/peec_stamp.cpp" "src/CMakeFiles/pgsi.dir/extract/peec_stamp.cpp.o" "gcc" "src/CMakeFiles/pgsi.dir/extract/peec_stamp.cpp.o.d"
  "/root/repo/src/extract/reduction.cpp" "src/CMakeFiles/pgsi.dir/extract/reduction.cpp.o" "gcc" "src/CMakeFiles/pgsi.dir/extract/reduction.cpp.o.d"
  "/root/repo/src/extract/spice_export.cpp" "src/CMakeFiles/pgsi.dir/extract/spice_export.cpp.o" "gcc" "src/CMakeFiles/pgsi.dir/extract/spice_export.cpp.o.d"
  "/root/repo/src/extract/vector_fit.cpp" "src/CMakeFiles/pgsi.dir/extract/vector_fit.cpp.o" "gcc" "src/CMakeFiles/pgsi.dir/extract/vector_fit.cpp.o.d"
  "/root/repo/src/fdtd/plane_fdtd.cpp" "src/CMakeFiles/pgsi.dir/fdtd/plane_fdtd.cpp.o" "gcc" "src/CMakeFiles/pgsi.dir/fdtd/plane_fdtd.cpp.o.d"
  "/root/repo/src/geometry/polygon.cpp" "src/CMakeFiles/pgsi.dir/geometry/polygon.cpp.o" "gcc" "src/CMakeFiles/pgsi.dir/geometry/polygon.cpp.o.d"
  "/root/repo/src/geometry/rectmesh.cpp" "src/CMakeFiles/pgsi.dir/geometry/rectmesh.cpp.o" "gcc" "src/CMakeFiles/pgsi.dir/geometry/rectmesh.cpp.o.d"
  "/root/repo/src/io/csv.cpp" "src/CMakeFiles/pgsi.dir/io/csv.cpp.o" "gcc" "src/CMakeFiles/pgsi.dir/io/csv.cpp.o.d"
  "/root/repo/src/io/touchstone.cpp" "src/CMakeFiles/pgsi.dir/io/touchstone.cpp.o" "gcc" "src/CMakeFiles/pgsi.dir/io/touchstone.cpp.o.d"
  "/root/repo/src/numeric/cholesky.cpp" "src/CMakeFiles/pgsi.dir/numeric/cholesky.cpp.o" "gcc" "src/CMakeFiles/pgsi.dir/numeric/cholesky.cpp.o.d"
  "/root/repo/src/numeric/eigen.cpp" "src/CMakeFiles/pgsi.dir/numeric/eigen.cpp.o" "gcc" "src/CMakeFiles/pgsi.dir/numeric/eigen.cpp.o.d"
  "/root/repo/src/numeric/interp.cpp" "src/CMakeFiles/pgsi.dir/numeric/interp.cpp.o" "gcc" "src/CMakeFiles/pgsi.dir/numeric/interp.cpp.o.d"
  "/root/repo/src/numeric/lu.cpp" "src/CMakeFiles/pgsi.dir/numeric/lu.cpp.o" "gcc" "src/CMakeFiles/pgsi.dir/numeric/lu.cpp.o.d"
  "/root/repo/src/numeric/matrix.cpp" "src/CMakeFiles/pgsi.dir/numeric/matrix.cpp.o" "gcc" "src/CMakeFiles/pgsi.dir/numeric/matrix.cpp.o.d"
  "/root/repo/src/numeric/quadrature.cpp" "src/CMakeFiles/pgsi.dir/numeric/quadrature.cpp.o" "gcc" "src/CMakeFiles/pgsi.dir/numeric/quadrature.cpp.o.d"
  "/root/repo/src/si/board.cpp" "src/CMakeFiles/pgsi.dir/si/board.cpp.o" "gcc" "src/CMakeFiles/pgsi.dir/si/board.cpp.o.d"
  "/root/repo/src/si/board_file.cpp" "src/CMakeFiles/pgsi.dir/si/board_file.cpp.o" "gcc" "src/CMakeFiles/pgsi.dir/si/board_file.cpp.o.d"
  "/root/repo/src/si/cosim.cpp" "src/CMakeFiles/pgsi.dir/si/cosim.cpp.o" "gcc" "src/CMakeFiles/pgsi.dir/si/cosim.cpp.o.d"
  "/root/repo/src/si/decap_opt.cpp" "src/CMakeFiles/pgsi.dir/si/decap_opt.cpp.o" "gcc" "src/CMakeFiles/pgsi.dir/si/decap_opt.cpp.o.d"
  "/root/repo/src/si/package.cpp" "src/CMakeFiles/pgsi.dir/si/package.cpp.o" "gcc" "src/CMakeFiles/pgsi.dir/si/package.cpp.o.d"
  "/root/repo/src/si/ssn.cpp" "src/CMakeFiles/pgsi.dir/si/ssn.cpp.o" "gcc" "src/CMakeFiles/pgsi.dir/si/ssn.cpp.o.d"
  "/root/repo/src/tline2d/mtl_extract.cpp" "src/CMakeFiles/pgsi.dir/tline2d/mtl_extract.cpp.o" "gcc" "src/CMakeFiles/pgsi.dir/tline2d/mtl_extract.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
