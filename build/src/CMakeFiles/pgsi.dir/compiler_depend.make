# Empty compiler generated dependencies file for pgsi.
# This may be replaced when dependencies are built.
