# Empty dependencies file for pgsi_ssn.
# This may be replaced when dependencies are built.
