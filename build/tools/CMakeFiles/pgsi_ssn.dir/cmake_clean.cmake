file(REMOVE_RECURSE
  "CMakeFiles/pgsi_ssn.dir/pgsi_ssn.cpp.o"
  "CMakeFiles/pgsi_ssn.dir/pgsi_ssn.cpp.o.d"
  "pgsi_ssn"
  "pgsi_ssn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgsi_ssn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
