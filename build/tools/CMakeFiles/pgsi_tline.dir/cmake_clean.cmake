file(REMOVE_RECURSE
  "CMakeFiles/pgsi_tline.dir/pgsi_tline.cpp.o"
  "CMakeFiles/pgsi_tline.dir/pgsi_tline.cpp.o.d"
  "pgsi_tline"
  "pgsi_tline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgsi_tline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
