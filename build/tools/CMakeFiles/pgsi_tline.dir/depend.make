# Empty dependencies file for pgsi_tline.
# This may be replaced when dependencies are built.
