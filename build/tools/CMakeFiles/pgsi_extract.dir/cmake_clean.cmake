file(REMOVE_RECURSE
  "CMakeFiles/pgsi_extract.dir/pgsi_extract.cpp.o"
  "CMakeFiles/pgsi_extract.dir/pgsi_extract.cpp.o.d"
  "pgsi_extract"
  "pgsi_extract.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgsi_extract.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
