# Empty dependencies file for pgsi_extract.
# This may be replaced when dependencies are built.
