# Empty compiler generated dependencies file for test_integrator_order.
# This may be replaced when dependencies are built.
