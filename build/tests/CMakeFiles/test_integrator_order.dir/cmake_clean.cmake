file(REMOVE_RECURSE
  "CMakeFiles/test_integrator_order.dir/test_integrator_order.cpp.o"
  "CMakeFiles/test_integrator_order.dir/test_integrator_order.cpp.o.d"
  "test_integrator_order"
  "test_integrator_order.pdb"
  "test_integrator_order[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integrator_order.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
