file(REMOVE_RECURSE
  "CMakeFiles/test_direct_solver.dir/test_direct_solver.cpp.o"
  "CMakeFiles/test_direct_solver.dir/test_direct_solver.cpp.o.d"
  "test_direct_solver"
  "test_direct_solver.pdb"
  "test_direct_solver[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_direct_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
