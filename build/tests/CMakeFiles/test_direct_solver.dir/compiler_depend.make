# Empty compiler generated dependencies file for test_direct_solver.
# This may be replaced when dependencies are built.
