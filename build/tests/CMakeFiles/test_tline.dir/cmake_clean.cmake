file(REMOVE_RECURSE
  "CMakeFiles/test_tline.dir/test_tline.cpp.o"
  "CMakeFiles/test_tline.dir/test_tline.cpp.o.d"
  "test_tline"
  "test_tline.pdb"
  "test_tline[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
