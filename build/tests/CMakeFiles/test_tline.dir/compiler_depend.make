# Empty compiler generated dependencies file for test_tline.
# This may be replaced when dependencies are built.
