# Empty dependencies file for test_via.
# This may be replaced when dependencies are built.
