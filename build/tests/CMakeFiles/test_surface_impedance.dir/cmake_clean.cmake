file(REMOVE_RECURSE
  "CMakeFiles/test_surface_impedance.dir/test_surface_impedance.cpp.o"
  "CMakeFiles/test_surface_impedance.dir/test_surface_impedance.cpp.o.d"
  "test_surface_impedance"
  "test_surface_impedance.pdb"
  "test_surface_impedance[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_surface_impedance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
