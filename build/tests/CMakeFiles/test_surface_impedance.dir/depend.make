# Empty dependencies file for test_surface_impedance.
# This may be replaced when dependencies are built.
