file(REMOVE_RECURSE
  "CMakeFiles/test_sources.dir/test_sources.cpp.o"
  "CMakeFiles/test_sources.dir/test_sources.cpp.o.d"
  "test_sources"
  "test_sources.pdb"
  "test_sources[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
