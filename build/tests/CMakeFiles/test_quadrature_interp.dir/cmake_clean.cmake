file(REMOVE_RECURSE
  "CMakeFiles/test_quadrature_interp.dir/test_quadrature_interp.cpp.o"
  "CMakeFiles/test_quadrature_interp.dir/test_quadrature_interp.cpp.o.d"
  "test_quadrature_interp"
  "test_quadrature_interp.pdb"
  "test_quadrature_interp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_quadrature_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
