# Empty dependencies file for test_quadrature_interp.
# This may be replaced when dependencies are built.
