file(REMOVE_RECURSE
  "CMakeFiles/test_decap_opt.dir/test_decap_opt.cpp.o"
  "CMakeFiles/test_decap_opt.dir/test_decap_opt.cpp.o.d"
  "test_decap_opt"
  "test_decap_opt.pdb"
  "test_decap_opt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_decap_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
