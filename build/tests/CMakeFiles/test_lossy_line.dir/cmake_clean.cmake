file(REMOVE_RECURSE
  "CMakeFiles/test_lossy_line.dir/test_lossy_line.cpp.o"
  "CMakeFiles/test_lossy_line.dir/test_lossy_line.cpp.o.d"
  "test_lossy_line"
  "test_lossy_line.pdb"
  "test_lossy_line[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lossy_line.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
