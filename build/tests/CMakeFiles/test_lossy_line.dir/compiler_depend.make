# Empty compiler generated dependencies file for test_lossy_line.
# This may be replaced when dependencies are built.
