file(REMOVE_RECURSE
  "CMakeFiles/test_passivity.dir/test_passivity.cpp.o"
  "CMakeFiles/test_passivity.dir/test_passivity.cpp.o.d"
  "test_passivity"
  "test_passivity.pdb"
  "test_passivity[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_passivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
