# Empty compiler generated dependencies file for test_passivity.
# This may be replaced when dependencies are built.
