# Empty dependencies file for test_cavity.
# This may be replaced when dependencies are built.
