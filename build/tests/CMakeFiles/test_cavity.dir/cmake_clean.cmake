file(REMOVE_RECURSE
  "CMakeFiles/test_cavity.dir/test_cavity.cpp.o"
  "CMakeFiles/test_cavity.dir/test_cavity.cpp.o.d"
  "test_cavity"
  "test_cavity.pdb"
  "test_cavity[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cavity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
