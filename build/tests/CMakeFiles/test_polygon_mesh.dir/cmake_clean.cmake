file(REMOVE_RECURSE
  "CMakeFiles/test_polygon_mesh.dir/test_polygon_mesh.cpp.o"
  "CMakeFiles/test_polygon_mesh.dir/test_polygon_mesh.cpp.o.d"
  "test_polygon_mesh"
  "test_polygon_mesh.pdb"
  "test_polygon_mesh[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_polygon_mesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
