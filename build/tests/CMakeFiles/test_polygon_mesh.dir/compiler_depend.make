# Empty compiler generated dependencies file for test_polygon_mesh.
# This may be replaced when dependencies are built.
