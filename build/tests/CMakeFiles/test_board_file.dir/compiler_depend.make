# Empty compiler generated dependencies file for test_board_file.
# This may be replaced when dependencies are built.
