file(REMOVE_RECURSE
  "CMakeFiles/test_board_file.dir/test_board_file.cpp.o"
  "CMakeFiles/test_board_file.dir/test_board_file.cpp.o.d"
  "test_board_file"
  "test_board_file.pdb"
  "test_board_file[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_board_file.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
