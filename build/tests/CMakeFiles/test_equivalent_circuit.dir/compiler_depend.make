# Empty compiler generated dependencies file for test_equivalent_circuit.
# This may be replaced when dependencies are built.
