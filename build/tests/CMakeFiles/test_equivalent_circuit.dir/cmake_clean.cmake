file(REMOVE_RECURSE
  "CMakeFiles/test_equivalent_circuit.dir/test_equivalent_circuit.cpp.o"
  "CMakeFiles/test_equivalent_circuit.dir/test_equivalent_circuit.cpp.o.d"
  "test_equivalent_circuit"
  "test_equivalent_circuit.pdb"
  "test_equivalent_circuit[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_equivalent_circuit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
