# Empty dependencies file for test_sparams.
# This may be replaced when dependencies are built.
