# Empty compiler generated dependencies file for test_sparams.
# This may be replaced when dependencies are built.
