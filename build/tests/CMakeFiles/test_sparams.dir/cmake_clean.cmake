file(REMOVE_RECURSE
  "CMakeFiles/test_sparams.dir/test_sparams.cpp.o"
  "CMakeFiles/test_sparams.dir/test_sparams.cpp.o.d"
  "test_sparams"
  "test_sparams.pdb"
  "test_sparams[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sparams.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
