file(REMOVE_RECURSE
  "CMakeFiles/test_nonlinear.dir/test_nonlinear.cpp.o"
  "CMakeFiles/test_nonlinear.dir/test_nonlinear.cpp.o.d"
  "test_nonlinear"
  "test_nonlinear.pdb"
  "test_nonlinear[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nonlinear.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
