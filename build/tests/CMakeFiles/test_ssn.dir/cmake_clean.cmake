file(REMOVE_RECURSE
  "CMakeFiles/test_ssn.dir/test_ssn.cpp.o"
  "CMakeFiles/test_ssn.dir/test_ssn.cpp.o.d"
  "test_ssn"
  "test_ssn.pdb"
  "test_ssn[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ssn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
