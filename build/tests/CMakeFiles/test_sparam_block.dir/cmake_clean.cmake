file(REMOVE_RECURSE
  "CMakeFiles/test_sparam_block.dir/test_sparam_block.cpp.o"
  "CMakeFiles/test_sparam_block.dir/test_sparam_block.cpp.o.d"
  "test_sparam_block"
  "test_sparam_block.pdb"
  "test_sparam_block[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sparam_block.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
