# Empty dependencies file for test_fdtd.
# This may be replaced when dependencies are built.
