file(REMOVE_RECURSE
  "CMakeFiles/test_fdtd.dir/test_fdtd.cpp.o"
  "CMakeFiles/test_fdtd.dir/test_fdtd.cpp.o.d"
  "test_fdtd"
  "test_fdtd.pdb"
  "test_fdtd[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fdtd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
