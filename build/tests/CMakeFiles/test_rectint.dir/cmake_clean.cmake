file(REMOVE_RECURSE
  "CMakeFiles/test_rectint.dir/test_rectint.cpp.o"
  "CMakeFiles/test_rectint.dir/test_rectint.cpp.o.d"
  "test_rectint"
  "test_rectint.pdb"
  "test_rectint[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rectint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
