# Empty dependencies file for test_rectint.
# This may be replaced when dependencies are built.
