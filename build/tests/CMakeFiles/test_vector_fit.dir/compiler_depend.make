# Empty compiler generated dependencies file for test_vector_fit.
# This may be replaced when dependencies are built.
