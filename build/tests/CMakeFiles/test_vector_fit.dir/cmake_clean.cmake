file(REMOVE_RECURSE
  "CMakeFiles/test_vector_fit.dir/test_vector_fit.cpp.o"
  "CMakeFiles/test_vector_fit.dir/test_vector_fit.cpp.o.d"
  "test_vector_fit"
  "test_vector_fit.pdb"
  "test_vector_fit[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vector_fit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
