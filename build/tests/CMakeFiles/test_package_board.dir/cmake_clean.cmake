file(REMOVE_RECURSE
  "CMakeFiles/test_package_board.dir/test_package_board.cpp.o"
  "CMakeFiles/test_package_board.dir/test_package_board.cpp.o.d"
  "test_package_board"
  "test_package_board.pdb"
  "test_package_board[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_package_board.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
