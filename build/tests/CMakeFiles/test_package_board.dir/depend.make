# Empty dependencies file for test_package_board.
# This may be replaced when dependencies are built.
