file(REMOVE_RECURSE
  "CMakeFiles/test_cholesky_eigen.dir/test_cholesky_eigen.cpp.o"
  "CMakeFiles/test_cholesky_eigen.dir/test_cholesky_eigen.cpp.o.d"
  "test_cholesky_eigen"
  "test_cholesky_eigen.pdb"
  "test_cholesky_eigen[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cholesky_eigen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
