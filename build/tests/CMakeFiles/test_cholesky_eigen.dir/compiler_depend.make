# Empty compiler generated dependencies file for test_cholesky_eigen.
# This may be replaced when dependencies are built.
