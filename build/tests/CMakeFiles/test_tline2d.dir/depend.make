# Empty dependencies file for test_tline2d.
# This may be replaced when dependencies are built.
