file(REMOVE_RECURSE
  "CMakeFiles/test_tline2d.dir/test_tline2d.cpp.o"
  "CMakeFiles/test_tline2d.dir/test_tline2d.cpp.o.d"
  "test_tline2d"
  "test_tline2d.pdb"
  "test_tline2d[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tline2d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
