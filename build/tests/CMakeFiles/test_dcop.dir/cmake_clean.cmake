file(REMOVE_RECURSE
  "CMakeFiles/test_dcop.dir/test_dcop.cpp.o"
  "CMakeFiles/test_dcop.dir/test_dcop.cpp.o.d"
  "test_dcop"
  "test_dcop.pdb"
  "test_dcop[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dcop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
