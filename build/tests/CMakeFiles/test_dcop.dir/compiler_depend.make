# Empty compiler generated dependencies file for test_dcop.
# This may be replaced when dependencies are built.
