file(REMOVE_RECURSE
  "CMakeFiles/test_greens.dir/test_greens.cpp.o"
  "CMakeFiles/test_greens.dir/test_greens.cpp.o.d"
  "test_greens"
  "test_greens.pdb"
  "test_greens[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_greens.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
