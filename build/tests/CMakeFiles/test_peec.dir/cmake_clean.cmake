file(REMOVE_RECURSE
  "CMakeFiles/test_peec.dir/test_peec.cpp.o"
  "CMakeFiles/test_peec.dir/test_peec.cpp.o.d"
  "test_peec"
  "test_peec.pdb"
  "test_peec[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_peec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
