# Empty dependencies file for test_peec.
# This may be replaced when dependencies are built.
