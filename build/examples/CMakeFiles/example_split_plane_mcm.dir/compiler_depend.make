# Empty compiler generated dependencies file for example_split_plane_mcm.
# This may be replaced when dependencies are built.
