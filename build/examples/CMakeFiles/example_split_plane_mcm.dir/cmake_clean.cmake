file(REMOVE_RECURSE
  "CMakeFiles/example_split_plane_mcm.dir/split_plane_mcm.cpp.o"
  "CMakeFiles/example_split_plane_mcm.dir/split_plane_mcm.cpp.o.d"
  "example_split_plane_mcm"
  "example_split_plane_mcm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_split_plane_mcm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
