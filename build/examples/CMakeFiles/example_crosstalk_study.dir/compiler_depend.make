# Empty compiler generated dependencies file for example_crosstalk_study.
# This may be replaced when dependencies are built.
