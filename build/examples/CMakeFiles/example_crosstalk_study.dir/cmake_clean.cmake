file(REMOVE_RECURSE
  "CMakeFiles/example_crosstalk_study.dir/crosstalk_study.cpp.o"
  "CMakeFiles/example_crosstalk_study.dir/crosstalk_study.cpp.o.d"
  "example_crosstalk_study"
  "example_crosstalk_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_crosstalk_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
