file(REMOVE_RECURSE
  "CMakeFiles/example_decap_placement.dir/decap_placement.cpp.o"
  "CMakeFiles/example_decap_placement.dir/decap_placement.cpp.o.d"
  "example_decap_placement"
  "example_decap_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_decap_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
