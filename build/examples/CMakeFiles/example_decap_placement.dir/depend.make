# Empty dependencies file for example_decap_placement.
# This may be replaced when dependencies are built.
