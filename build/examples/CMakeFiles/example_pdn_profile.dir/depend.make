# Empty dependencies file for example_pdn_profile.
# This may be replaced when dependencies are built.
