file(REMOVE_RECURSE
  "CMakeFiles/example_pdn_profile.dir/pdn_profile.cpp.o"
  "CMakeFiles/example_pdn_profile.dir/pdn_profile.cpp.o.d"
  "example_pdn_profile"
  "example_pdn_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_pdn_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
