#include "obs/bench_gate.hpp"

#include <algorithm>
#include <cstdio>

#include "io/json.hpp"

namespace pgsi::obs {

namespace {

enum class MetricClass { Time, Count, Error, Skip };

bool ends_with(std::string_view s, std::string_view suffix) {
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

MetricClass classify(std::string_view key) {
    // Structural descriptors and derived ratios: shape, configuration, and
    // speedups (a speedup drop already shows up as a time regression).
    static constexpr std::string_view kSkip[] = {
        "n",       "nodes",   "branches",      "threads",
        "schema",  "sweep_freqs", "cache_entries", "fill_speedup",
        "speedup", "peak_rss_bytes", "matvec_reduction",
        // Higher-is-better ratios of the batch bench: a faster machine
        // would fail the count class's fresh > golden check.
        "jobs_per_s", "cache_hit_rate",
    };
    for (const std::string_view s : kSkip)
        if (key == s) return MetricClass::Skip;
    if (ends_with(key, "_s") || ends_with(key, "_seconds"))
        return MetricClass::Time;
    if (ends_with(key, "_err") || key.find("residual") != std::string_view::npos)
        return MetricClass::Error;
    return MetricClass::Count;
}

struct Walker {
    const BenchGateOptions& opt;
    BenchGateResult& out;

    void leaf(const std::string& path, const std::string& key, double golden,
              double fresh) {
        const MetricClass cls = classify(key);
        if (cls == MetricClass::Skip) {
            out.skipped.push_back(path + " (descriptor)");
            return;
        }
        double threshold = opt.count_ratio;
        double floor = opt.min_count;
        if (cls == MetricClass::Time) {
            threshold = opt.time_ratio;
            floor = opt.min_seconds;
        } else if (cls == MetricClass::Error) {
            threshold = opt.error_ratio;
            floor = 0; // errors gate at any magnitude (relative only)
        }
        if (golden < floor && fresh < floor) {
            out.skipped.push_back(path + " (below noise floor)");
            return;
        }
        BenchDelta d;
        d.path = path;
        d.golden = golden;
        d.fresh = fresh;
        d.threshold = threshold;
        d.ratio = golden > 0 ? fresh / golden : (fresh > 0 ? 1e300 : 1.0);
        d.regression = d.ratio > threshold;
        out.compared.push_back(std::move(d));
    }

    void object(const std::string& path, const JsonValue& golden,
                const JsonValue& fresh) {
        for (const auto& [key, gv] : golden.object) {
            const JsonValue* fv = fresh.find(key);
            const std::string child =
                path.empty() ? key : path + "." + key;
            if (fv == nullptr) {
                out.skipped.push_back(child + " (missing in fresh)");
                continue;
            }
            value(child, key, gv, *fv);
        }
        for (const auto& [key, fv] : fresh.object) {
            (void)fv;
            if (golden.find(key) == nullptr)
                out.skipped.push_back(
                    (path.empty() ? key : path + "." + key) +
                    " (missing in golden)");
        }
    }

    void array(const std::string& path, const JsonValue& golden,
               const JsonValue& fresh) {
        // Arrays of objects with an "n" member (the scaling cases) match by
        // label; a smoke run covering fewer sizes still gates its subset.
        const auto label = [](const JsonValue& v) -> const JsonValue* {
            return v.is_object() ? v.find("n") : nullptr;
        };
        for (const JsonValue& fv : fresh.array) {
            const JsonValue* fn = label(fv);
            const JsonValue* match = nullptr;
            std::string tag;
            if (fn != nullptr && fn->is_number()) {
                for (const JsonValue& gv : golden.array) {
                    const JsonValue* gn = label(gv);
                    if (gn != nullptr && gn->is_number() &&
                        gn->number == fn->number) {
                        match = &gv;
                        break;
                    }
                }
                char buf[48];
                std::snprintf(buf, sizeof buf, "[n=%g]", fn->number);
                tag = buf;
            } else {
                const std::size_t i =
                    static_cast<std::size_t>(&fv - fresh.array.data());
                if (i < golden.array.size()) match = &golden.array[i];
                tag = "[" + std::to_string(&fv - fresh.array.data()) + "]";
            }
            if (match == nullptr) {
                out.skipped.push_back(path + tag + " (no golden entry)");
                continue;
            }
            value(path + tag, "", *match, fv);
        }
    }

    void value(const std::string& path, const std::string& key,
               const JsonValue& golden, const JsonValue& fresh) {
        if (golden.is_number() && fresh.is_number()) {
            leaf(path, key, golden.number, fresh.number);
        } else if (golden.is_object() && fresh.is_object()) {
            object(path, golden, fresh);
        } else if (golden.is_array() && fresh.is_array()) {
            array(path, golden, fresh);
        } else if (golden.kind != fresh.kind) {
            out.skipped.push_back(path + " (type mismatch)");
        }
        // Strings/bools/nulls carry no perf signal.
    }
};

} // namespace

BenchGateResult compare_bench(const JsonValue& fresh, const JsonValue& golden,
                              const BenchGateOptions& opt) {
    BenchGateResult out;
    Walker w{opt, out};
    w.value("", "", golden, fresh);
    // Regressions first, largest overshoot first, for the report.
    std::stable_sort(out.compared.begin(), out.compared.end(),
                     [](const BenchDelta& a, const BenchDelta& b) {
                         if (a.regression != b.regression) return a.regression;
                         return a.ratio / a.threshold > b.ratio / b.threshold;
                     });
    return out;
}

std::string format_bench_gate(const BenchGateResult& result) {
    std::string out;
    char line[256];
    std::snprintf(line, sizeof line,
                  "bench gate: %zu metric(s) compared, %zu regression(s), "
                  "%zu skipped\n",
                  result.compared.size(), result.regression_count(),
                  result.skipped.size());
    out += line;
    std::snprintf(line, sizeof line, "  %-44s %12s %12s %7s %7s\n", "metric",
                  "golden", "fresh", "ratio", "limit");
    out += line;
    for (const BenchDelta& d : result.compared) {
        std::snprintf(line, sizeof line, "%s %-44s %12.6g %12.6g %7.2f %7.2f\n",
                      d.regression ? "!" : " ", d.path.c_str(), d.golden,
                      d.fresh, d.ratio, d.threshold);
        out += line;
    }
    return out;
}

} // namespace pgsi::obs
