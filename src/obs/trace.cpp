#include "obs/trace.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <mutex>
#include <thread>

#include "common/error.hpp"

namespace pgsi::obs {

namespace detail {
std::atomic_int g_trace_state{-1};
} // namespace detail

namespace {

using Clock = std::chrono::steady_clock;

// Trace epoch: all span timestamps are relative to the first clock read so
// Chrome-trace microsecond timestamps stay small.
std::uint64_t now_ns() {
    static const Clock::time_point epoch = Clock::now();
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - epoch)
            .count());
}

// Dense per-process thread index (Chrome trace "tid").
std::uint32_t thread_index() {
    static std::atomic_uint32_t next{0};
    thread_local const std::uint32_t id = next.fetch_add(1);
    return id;
}

// Per-thread stack of open spans.
struct OpenSpan {
    std::string path;
};
thread_local std::vector<OpenSpan> t_open;

std::mutex g_records_mu;
std::vector<SpanRecord> g_records;

// Thread labels for the Chrome-trace "thread_name" metadata events, keyed
// by dense thread index. Leaked like the metric registries: pool workers
// may register names while static destructors run elsewhere.
std::mutex g_thread_names_mu;
std::map<std::uint32_t, std::string>& thread_names() {
    static auto* m = new std::map<std::uint32_t, std::string>();
    return *m;
}

// When PGSI_TRACE names a .json file, the trace is flushed there at exit.
std::string& exit_trace_path() {
    static std::string path;
    return path;
}

void flush_exit_trace() {
    const std::string& path = exit_trace_path();
    if (path.empty()) return;
    try {
        write_chrome_trace_file(path);
    } catch (const Error& e) {
        std::fprintf(stderr, "pgsi::obs: %s\n", e.what());
    }
}

} // namespace

namespace detail {

int trace_state_slow() noexcept {
    // Racing first calls both read the same environment; the state they
    // store is identical, so the race is benign.
    int on = 0;
    if (const char* env = std::getenv("PGSI_TRACE")) {
        if (env[0] != '\0' && std::strcmp(env, "0") != 0) {
            on = 1;
            const std::size_t len = std::strlen(env);
            if (len > 5 && std::strcmp(env + len - 5, ".json") == 0) {
                exit_trace_path() = env;
                std::atexit(flush_exit_trace);
            }
        }
    }
    g_trace_state.store(on, std::memory_order_relaxed);
    return on;
}

} // namespace detail

void set_trace_enabled(bool on) noexcept {
    detail::g_trace_state.store(on ? 1 : 0, std::memory_order_relaxed);
}

std::vector<SpanRecord> trace_records() {
    std::lock_guard<std::mutex> lock(g_records_mu);
    return g_records;
}

void reset_trace() {
    std::lock_guard<std::mutex> lock(g_records_mu);
    g_records.clear();
}

std::string current_span_path() {
    return t_open.empty() ? std::string() : t_open.back().path;
}

void set_thread_name(std::string_view name) noexcept {
    try {
        const std::uint32_t tid = thread_index();
        const std::lock_guard<std::mutex> lock(g_thread_names_mu);
        thread_names()[tid] = std::string(name);
    } catch (...) {
        // Allocation failure: the thread stays unnamed.
    }
}

void SpanScope::begin(const char* name) noexcept {
    try {
        std::string path;
        if (!t_open.empty()) {
            path.reserve(t_open.back().path.size() + 1 + std::strlen(name));
            path = t_open.back().path;
            path += '/';
            path += name;
        } else {
            path = name;
        }
        t_open.push_back({std::move(path)});
        active_ = true;
        t0_ = now_ns(); // last: exclude the bookkeeping above from the span
    } catch (...) {
        active_ = false; // allocation failure: drop the span, never throw
    }
}

void SpanScope::end() noexcept {
    const std::uint64_t t1 = now_ns();
    try {
        SpanRecord rec;
        rec.path = std::move(t_open.back().path);
        rec.start_ns = t0_;
        rec.dur_ns = t1 - t0_;
        rec.thread = thread_index();
        rec.depth = static_cast<std::uint32_t>(t_open.size() - 1);
        t_open.pop_back();
        std::lock_guard<std::mutex> lock(g_records_mu);
        g_records.push_back(std::move(rec));
    } catch (...) {
        if (!t_open.empty()) t_open.pop_back();
    }
}

namespace {

struct PathAgg {
    std::size_t count = 0;
    std::uint64_t total_ns = 0;
};

std::string format_duration(double ns) {
    char buf[64];
    if (ns >= 1e9)
        std::snprintf(buf, sizeof buf, "%.3f s", ns * 1e-9);
    else if (ns >= 1e6)
        std::snprintf(buf, sizeof buf, "%.3f ms", ns * 1e-6);
    else
        std::snprintf(buf, sizeof buf, "%.1f us", ns * 1e-3);
    return buf;
}

} // namespace

std::string trace_summary() {
    // Aggregate by full path; std::map keeps "a" < "a/b" < "a/c" so the
    // sorted order is already a preorder tree walk.
    std::map<std::string, PathAgg> agg;
    {
        std::lock_guard<std::mutex> lock(g_records_mu);
        for (const SpanRecord& r : g_records) {
            PathAgg& a = agg[r.path];
            ++a.count;
            a.total_ns += r.dur_ns;
        }
    }
    std::string out = "trace summary (inclusive wall time):\n";
    if (agg.empty()) {
        out += "  (no spans recorded; is PGSI_TRACE set?)\n";
        return out;
    }
    for (const auto& [path, a] : agg) {
        std::size_t depth = 0;
        std::size_t last = 0;
        for (std::size_t i = 0; i < path.size(); ++i)
            if (path[i] == '/') {
                ++depth;
                last = i + 1;
            }
        // Share of the parent path's inclusive time, when the parent exists.
        double share = -1.0;
        if (depth > 0) {
            const auto it = agg.find(path.substr(0, last - 1));
            if (it != agg.end() && it->second.total_ns > 0)
                share = 100.0 * static_cast<double>(a.total_ns) /
                        static_cast<double>(it->second.total_ns);
        }
        char line[256];
        if (share >= 0)
            std::snprintf(line, sizeof line, "  %*s%-*s %10s  x%-6zu %5.1f%%\n",
                          static_cast<int>(2 * depth), "",
                          static_cast<int>(40 - 2 * depth > 8 ? 40 - 2 * depth : 8),
                          path.c_str() + last,
                          format_duration(static_cast<double>(a.total_ns)).c_str(),
                          a.count, share);
        else
            std::snprintf(line, sizeof line, "  %*s%-*s %10s  x%-6zu\n",
                          static_cast<int>(2 * depth), "",
                          static_cast<int>(40 - 2 * depth > 8 ? 40 - 2 * depth : 8),
                          path.c_str() + last,
                          format_duration(static_cast<double>(a.total_ns)).c_str(),
                          a.count);
        out += line;
    }
    return out;
}

std::string json_escape(std::string_view s) {
    std::string out;
    out.reserve(s.size());
    for (const char ch : s) {
        switch (ch) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\b': out += "\\b"; break;
        case '\f': out += "\\f"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(ch) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(static_cast<unsigned char>(ch)));
                out += buf;
            } else {
                out += ch;
            }
        }
    }
    return out;
}

std::string chrome_trace_json() {
    const std::vector<SpanRecord> records = trace_records();
    std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first = true;

    // Metadata events first: the process label, then a thread_name for
    // every registered thread (and every thread that recorded a span), so
    // Perfetto shows "par.worker-3" instead of a bare tid.
    out += "{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\","
           "\"args\":{\"name\":\"pgsi\"}}";
    first = false;
    {
        std::map<std::uint32_t, std::string> names;
        {
            const std::lock_guard<std::mutex> lock(g_thread_names_mu);
            names = thread_names();
        }
        for (const SpanRecord& r : records)
            names.emplace(r.thread, "thread-" + std::to_string(r.thread));
        for (const auto& [tid, name] : names) {
            char head[96];
            std::snprintf(head, sizeof head,
                          ",{\"ph\":\"M\",\"pid\":1,\"tid\":%u,"
                          "\"name\":\"thread_name\",\"args\":{\"name\":\"",
                          tid);
            out += head;
            out += json_escape(name);
            out += "\"}}";
        }
    }

    for (const SpanRecord& r : records) {
        // The event name is the leaf; the full path rides in args for
        // Perfetto's detail pane.
        const std::size_t slash = r.path.rfind('/');
        const std::string_view leaf =
            slash == std::string::npos
                ? std::string_view(r.path)
                : std::string_view(r.path).substr(slash + 1);
        char head[128];
        std::snprintf(head, sizeof head,
                      "%s{\"ph\":\"X\",\"pid\":1,\"tid\":%u,\"ts\":%.3f,"
                      "\"dur\":%.3f,\"name\":\"",
                      first ? "" : ",", r.thread,
                      static_cast<double>(r.start_ns) * 1e-3,
                      static_cast<double>(r.dur_ns) * 1e-3);
        out += head;
        out += json_escape(leaf);
        out += "\",\"args\":{\"path\":\"";
        out += json_escape(r.path);
        out += "\"}}";
        first = false;
    }
    out += "]}";
    return out;
}

void write_chrome_trace_file(const std::string& path) {
    std::ofstream f(path);
    if (!f.good())
        throw Error("cannot open trace output file: " + path);
    f << chrome_trace_json();
    if (!f.good()) throw Error("failed writing trace output file: " + path);
}

} // namespace pgsi::obs
