// Resource accounting: allocation attribution and peak RSS (obs subsystem).
//
// When enabled, every pgsi::Matrix construction reports its payload size
// here and the recorder ticks process-wide counters plus a per-subsystem
// byte counter ("alloc.em.assembly.bytes", ...). The subsystem is a
// thread-local tag set by an AllocScope at pipeline entry points; work done
// on pool workers outside any scope lands in "untagged". The counters are
// cumulative construction totals, not live occupancy — Matrix keeps its
// rule-of-zero and destruction is never tracked. A histogram of per-matrix
// bytes ("alloc.matrix.bytes_per_alloc") makes the largest single
// allocation visible.
//
// Cost model (mirrors trace.hpp / stream.hpp): off unless PGSI_RESOURCES is
// set or set_resources_enabled(true) is called. When off, a Matrix
// construction pays exactly one relaxed atomic load; AllocScope is two
// thread-local pointer writes either way (it sits at entry points, not in
// loops).
#pragma once

#include <atomic>
#include <cstddef>

namespace pgsi::obs {

namespace detail {
// -1 = not yet initialized from the environment, 0 = off, 1 = on.
int resource_state_slow() noexcept;
extern std::atomic_int g_resource_state;
void note_matrix_alloc_slow(std::size_t bytes) noexcept;
extern thread_local const char* t_alloc_tag;
} // namespace detail

/// True when resource accounting is active. The hot path is a single
/// relaxed atomic load; the first call per process consults PGSI_RESOURCES.
inline bool resources_enabled() noexcept {
    const int s = detail::g_resource_state.load(std::memory_order_relaxed);
    return s < 0 ? detail::resource_state_slow() != 0 : s != 0;
}

/// Programmatic override of PGSI_RESOURCES (tools use this for --report).
void set_resources_enabled(bool on) noexcept;

/// Called by Matrix constructors. One relaxed atomic load when disabled.
inline void note_matrix_alloc(std::size_t bytes) noexcept {
    if (resources_enabled()) detail::note_matrix_alloc_slow(bytes);
}

/// RAII thread-local subsystem tag for allocation attribution. The tag must
/// be a string literal (or otherwise outlive the scope); scopes nest, inner
/// tags win.
class AllocScope {
public:
    explicit AllocScope(const char* subsystem) noexcept
        : prev_(detail::t_alloc_tag) {
        detail::t_alloc_tag = subsystem;
    }
    ~AllocScope() { detail::t_alloc_tag = prev_; }
    AllocScope(const AllocScope&) = delete;
    AllocScope& operator=(const AllocScope&) = delete;

private:
    const char* prev_;
};

/// Peak resident set size of this process in bytes (VmHWM on Linux);
/// 0 when the platform does not expose it. Never throws.
std::size_t peak_rss_bytes() noexcept;

} // namespace pgsi::obs

#ifdef PGSI_OBS_DISABLED
#define PGSI_ALLOC_SCOPE(tag) ((void)0)
#else
#ifndef PGSI_OBS_CONCAT
#define PGSI_OBS_CONCAT2(a, b) a##b
#define PGSI_OBS_CONCAT(a, b) PGSI_OBS_CONCAT2(a, b)
#endif
#define PGSI_ALLOC_SCOPE(tag) \
    ::pgsi::obs::AllocScope PGSI_OBS_CONCAT(pgsi_obs_alloc_, __LINE__)(tag)
#endif
