// Convergence streams: bounded per-iteration time series (obs subsystem).
//
// A stream is one series of (x, y) points recorded by a solver hot loop —
// the GMRES residual per inner iteration, the Newton iteration count per
// transient timestep, the recovery-ladder timeline. Alongside points a
// series carries labeled marks ("restart", "timestep_cut") pinned to an x
// position. Solvers open a series per solve, append as they iterate, and
// the flight recorder snapshots everything when a SolveReport is built.
//
// Cost model (mirrors trace.hpp): recording is off unless PGSI_STREAMS is
// set or set_streams_enabled(true) is called. When off, streams_enabled()
// is one relaxed atomic load, stream_open() returns kStreamNone, and the
// per-iteration append sites compile down to a single integer compare
// against kStreamNone — no clock, no lock, no allocation, and bitwise
// identical numerical results (instrumentation only reads solver state).
//
// Bounds: at most kMaxSeries live series; each series keeps the first
// kMaxPoints points and kMaxMarks marks and counts the rest in `dropped`,
// so a pathological million-iteration solve cannot balloon the recorder.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace pgsi::obs {

namespace detail {
// -1 = not yet initialized from the environment, 0 = off, 1 = on.
int stream_state_slow() noexcept;
extern std::atomic_int g_stream_state;
} // namespace detail

/// True when stream recording is active. The hot path is a single relaxed
/// atomic load; the first call per process consults PGSI_STREAMS.
inline bool streams_enabled() noexcept {
    const int s = detail::g_stream_state.load(std::memory_order_relaxed);
    return s < 0 ? detail::stream_state_slow() != 0 : s != 0;
}

/// Programmatic override of PGSI_STREAMS (tools use this for --report).
void set_streams_enabled(bool on) noexcept;

/// Sentinel series id: recording disabled or the series cap was hit.
/// Append/mark calls with this id are no-ops.
inline constexpr std::size_t kStreamNone = static_cast<std::size_t>(-1);

/// A labeled event pinned to an x position ("restart", "escalate:block").
struct StreamMark {
    double x = 0;
    std::string label;
};

/// One recorded series.
struct StreamSeries {
    std::string name;               ///< "gmres.residual", "transient.newton"
    std::vector<double> x;          ///< iteration index, time, ...
    std::vector<double> y;          ///< residual, iteration count, ...
    std::vector<StreamMark> marks;  ///< labeled events along the series
    std::uint64_t dropped = 0;      ///< points + marks discarded past the caps
};

inline constexpr std::size_t kMaxSeries = 512;
inline constexpr std::size_t kMaxPoints = 4096;
inline constexpr std::size_t kMaxMarks = 256;

/// Open a new series named `name`. Returns kStreamNone when recording is
/// disabled or kMaxSeries are already live. The id stays valid until
/// reset_streams(); appends through a stale id are dropped silently.
std::size_t stream_open(std::string_view name);

/// Append one point; no-op for kStreamNone / stale ids. Never throws.
void stream_append(std::size_t series, double x, double y) noexcept;

/// Attach a labeled mark; no-op for kStreamNone / stale ids.
void stream_mark(std::size_t series, double x, std::string_view label);

/// True when `id` still resolves to a live series (false for kStreamNone
/// and ids issued before the last reset_streams()).
bool stream_live(std::size_t id);

/// Copy of every recorded series, in open order.
std::vector<StreamSeries> stream_snapshot();

/// Drop all recorded series and invalidate outstanding ids (the enabled
/// state is unchanged).
void reset_streams();

} // namespace pgsi::obs
