#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>

#include "obs/trace.hpp"

namespace pgsi::obs {

void Histogram::record(double v) noexcept {
    std::lock_guard<std::mutex> lock(mu_);
    if (s_.count == 0) {
        s_.min = v;
        s_.max = v;
    } else {
        s_.min = std::min(s_.min, v);
        s_.max = std::max(s_.max, v);
    }
    ++s_.count;
    s_.sum += v;
    std::size_t b = 0;
    if (v >= 1.0) {
        const int e = std::ilogb(v) + 1;
        b = std::min<std::size_t>(static_cast<std::size_t>(e), kBuckets - 1);
    }
    ++s_.buckets[b];
}

Histogram::Snapshot Histogram::snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return s_;
}

void Histogram::reset() {
    std::lock_guard<std::mutex> lock(mu_);
    s_ = Snapshot{0, 0, 0, 0, std::vector<std::uint64_t>(kBuckets, 0)};
}

double histogram_quantile(const Histogram::Snapshot& s, double q) {
    if (s.count == 0 || s.buckets.empty()) return 0;
    q = std::min(1.0, std::max(0.0, q));
    const double rank = q * static_cast<double>(s.count);
    std::uint64_t cum = 0;
    for (std::size_t b = 0; b < s.buckets.size(); ++b) {
        if (s.buckets[b] == 0) continue;
        const std::uint64_t next = cum + s.buckets[b];
        if (static_cast<double>(next) >= rank) {
            // Bucket 0 holds [0, 1); bucket k >= 1 holds [2^(k-1), 2^k).
            const double lo = b == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(b) - 1);
            const double hi = std::ldexp(1.0, static_cast<int>(b));
            const double frac =
                (rank - static_cast<double>(cum)) /
                static_cast<double>(s.buckets[b]);
            const double v = lo + (hi - lo) * std::min(1.0, std::max(0.0, frac));
            return std::min(s.max, std::max(s.min, v));
        }
        cum = next;
    }
    return s.max;
}

namespace {

// One registry per metric kind. Values are leaked intentionally: metrics may
// be touched from atexit handlers and worker threads, so they must outlive
// every static destructor.
template <class M>
struct Registry {
    std::mutex mu;
    std::map<std::string, M*, std::less<>> items;

    M& get(std::string_view name) {
        std::lock_guard<std::mutex> lock(mu);
        const auto it = items.find(name);
        if (it != items.end()) return *it->second;
        M* m = new M();
        items.emplace(std::string(name), m);
        return *m;
    }
};

Registry<Counter>& counters() {
    static Registry<Counter>* r = new Registry<Counter>();
    return *r;
}
Registry<Gauge>& gauges() {
    static Registry<Gauge>* r = new Registry<Gauge>();
    return *r;
}
Registry<Histogram>& histograms() {
    static Registry<Histogram>* r = new Registry<Histogram>();
    return *r;
}

void print_metrics_at_exit() {
    const std::string s = format_metrics();
    std::fprintf(stderr, "%s", s.c_str());
}

bool init_metrics_env() {
    const char* env = std::getenv("PGSI_METRICS");
    const bool on = env != nullptr && env[0] != '\0' && env[0] != '0';
    if (on) std::atexit(print_metrics_at_exit);
    return on;
}

} // namespace

Counter& counter(std::string_view name) {
    metrics_print_requested(); // arm the PGSI_METRICS exit dump once
    return counters().get(name);
}
Gauge& gauge(std::string_view name) {
    metrics_print_requested();
    return gauges().get(name);
}
Histogram& histogram(std::string_view name) {
    metrics_print_requested();
    return histograms().get(name);
}

bool metrics_print_requested() noexcept {
    static const bool on = init_metrics_env();
    return on;
}

std::string format_metrics() {
    std::string out = "metrics:\n";
    char line[256];
    {
        Registry<Counter>& r = counters();
        std::lock_guard<std::mutex> lock(r.mu);
        for (const auto& [name, c] : r.items) {
            std::snprintf(line, sizeof line, "  %-40s %llu\n", name.c_str(),
                          static_cast<unsigned long long>(c->value()));
            out += line;
        }
    }
    {
        Registry<Gauge>& r = gauges();
        std::lock_guard<std::mutex> lock(r.mu);
        for (const auto& [name, g] : r.items) {
            std::snprintf(line, sizeof line, "  %-40s %.6g\n", name.c_str(),
                          g->value());
            out += line;
        }
    }
    {
        Registry<Histogram>& r = histograms();
        std::lock_guard<std::mutex> lock(r.mu);
        for (const auto& [name, h] : r.items) {
            const Histogram::Snapshot s = h->snapshot();
            std::snprintf(line, sizeof line,
                          "  %-40s n=%llu mean=%.6g min=%.6g max=%.6g\n",
                          name.c_str(),
                          static_cast<unsigned long long>(s.count), s.mean(),
                          s.min, s.max);
            out += line;
        }
    }
    return out;
}

std::uint64_t MetricsSnapshot::counter_value(std::string_view name) const noexcept {
    for (const auto& [n, v] : counters)
        if (n == name) return v;
    return 0;
}

MetricsSnapshot metrics_snapshot() {
    MetricsSnapshot out;
    {
        Registry<Counter>& r = counters();
        std::lock_guard<std::mutex> lock(r.mu);
        out.counters.reserve(r.items.size());
        for (const auto& [name, c] : r.items)
            out.counters.emplace_back(name, c->value());
    }
    {
        Registry<Gauge>& r = gauges();
        std::lock_guard<std::mutex> lock(r.mu);
        out.gauges.reserve(r.items.size());
        for (const auto& [name, g] : r.items)
            out.gauges.emplace_back(name, g->value());
    }
    {
        Registry<Histogram>& r = histograms();
        std::lock_guard<std::mutex> lock(r.mu);
        out.histograms.reserve(r.items.size());
        for (const auto& [name, h] : r.items)
            out.histograms.emplace_back(name, h->snapshot());
    }
    return out;
}

namespace {

// Shortest double representation that round-trips; avoids "1e+06" noise for
// integral values.
std::string json_num(double v) {
    char buf[64];
    if (v == static_cast<double>(static_cast<long long>(v)) &&
        std::abs(v) < 1e15) {
        std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
    } else {
        std::snprintf(buf, sizeof buf, "%.17g", v);
    }
    return buf;
}

} // namespace

std::string metrics_json() {
    const MetricsSnapshot snap = metrics_snapshot();
    std::string out = "{\"counters\":{";
    bool first = true;
    for (const auto& [name, v] : snap.counters) {
        out += first ? "\"" : ",\"";
        out += json_escape(name);
        out += "\":";
        out += json_num(static_cast<double>(v));
        first = false;
    }
    out += "},\"gauges\":{";
    first = true;
    for (const auto& [name, v] : snap.gauges) {
        out += first ? "\"" : ",\"";
        out += json_escape(name);
        out += "\":";
        out += json_num(v);
        first = false;
    }
    out += "},\"histograms\":{";
    first = true;
    for (const auto& [name, s] : snap.histograms) {
        out += first ? "\"" : ",\"";
        out += json_escape(name);
        out += "\":{\"count\":";
        out += json_num(static_cast<double>(s.count));
        out += ",\"sum\":";
        out += json_num(s.sum);
        out += ",\"min\":";
        out += json_num(s.min);
        out += ",\"max\":";
        out += json_num(s.max);
        out += ",\"buckets\":{";
        bool bfirst = true;
        for (std::size_t k = 0; k < s.buckets.size(); ++k) {
            if (s.buckets[k] == 0) continue;
            char b[64];
            std::snprintf(b, sizeof b, "%s\"%zu\":%llu", bfirst ? "" : ",", k,
                          static_cast<unsigned long long>(s.buckets[k]));
            out += b;
            bfirst = false;
        }
        out += "}}";
        first = false;
    }
    out += "}}";
    return out;
}

void reset_metrics() {
    {
        Registry<Counter>& r = counters();
        std::lock_guard<std::mutex> lock(r.mu);
        for (auto& [name, c] : r.items) c->reset();
    }
    {
        Registry<Gauge>& r = gauges();
        std::lock_guard<std::mutex> lock(r.mu);
        for (auto& [name, g] : r.items) g->reset();
    }
    {
        Registry<Histogram>& r = histograms();
        std::lock_guard<std::mutex> lock(r.mu);
        for (auto& [name, h] : r.items) h->reset();
    }
}

} // namespace pgsi::obs
