// Named counters, gauges, and histograms (obs subsystem).
//
// The registry maps a stable name ("lu.factorizations") to a metric object
// that lives for the whole process. Lookup takes a mutex, so hot paths cache
// the reference once:
//
//     static obs::Counter& c = obs::counter("lu.factorizations");
//     ++c;
//
// After that, a counter increment is one relaxed atomic add — safe and cheap
// from any thread, including the BEM assembly workers. Histograms record
// into power-of-two buckets under a per-histogram mutex; they are meant for
// low-rate events (one record per factorization, not per matrix element).
//
// With PGSI_METRICS set in the environment, a formatted metrics table is
// printed to stderr when the process exits; format_metrics() serves tools
// that want the same table on demand (--profile).
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace pgsi::obs {

/// Monotonic event count.
class Counter {
public:
    void add(std::uint64_t n) noexcept { v_.fetch_add(n, std::memory_order_relaxed); }
    Counter& operator++() noexcept {
        add(1);
        return *this;
    }
    void operator++(int) noexcept { add(1); }
    std::uint64_t value() const noexcept { return v_.load(std::memory_order_relaxed); }
    void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

private:
    std::atomic_uint64_t v_{0};
};

/// Last-written instantaneous value.
class Gauge {
public:
    void set(double v) noexcept { v_.store(v, std::memory_order_relaxed); }
    double value() const noexcept { return v_.load(std::memory_order_relaxed); }
    void reset() noexcept { set(0.0); }

private:
    std::atomic<double> v_{0.0};
};

/// Distribution summary: count/sum/min/max plus power-of-two buckets.
class Histogram {
public:
    static constexpr std::size_t kBuckets = 64; // bucket k: [2^(k-1), 2^k)

    void record(double v) noexcept;

    struct Snapshot {
        std::uint64_t count = 0;
        double sum = 0, min = 0, max = 0;
        std::vector<std::uint64_t> buckets; ///< kBuckets entries
        double mean() const { return count ? sum / static_cast<double>(count) : 0; }
    };
    Snapshot snapshot() const;
    void reset();

private:
    mutable std::mutex mu_;
    Snapshot s_{0, 0, 0, 0, std::vector<std::uint64_t>(kBuckets, 0)};
};

/// Approximate q-quantile (q in [0, 1]) of a histogram snapshot: the rank
/// is located in the power-of-two buckets and interpolated linearly inside
/// its bucket, clamped to the observed [min, max]. Returns 0 for an empty
/// histogram. Resolution is the bucket width (a factor of 2), which is what
/// latency percentiles for dashboards and bench records need.
double histogram_quantile(const Histogram::Snapshot& s, double q);

/// Find-or-create; the returned reference is valid for the process lifetime.
Counter& counter(std::string_view name);
Gauge& gauge(std::string_view name);
Histogram& histogram(std::string_view name);

/// True when PGSI_METRICS is set (the exit-time table will be printed).
bool metrics_print_requested() noexcept;

/// Formatted table of every registered metric, sorted by name.
std::string format_metrics();

/// Point-in-time copy of every registered metric, sorted by name within
/// each kind (counters/gauges/histograms).
struct MetricsSnapshot {
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<std::pair<std::string, Histogram::Snapshot>> histograms;

    /// Value of a named counter in this snapshot (0 when absent).
    std::uint64_t counter_value(std::string_view name) const noexcept;
};
MetricsSnapshot metrics_snapshot();

/// Machine-readable snapshot of every registered metric:
///   {"counters":{name:value,...},"gauges":{...},
///    "histograms":{name:{"count":..,"sum":..,"min":..,"max":..,
///                        "buckets":{"<k>":n,...}},...}}
/// Histogram buckets are sparse: only non-empty power-of-two buckets
/// appear, keyed by bucket index. Feeds the SolveReport metrics section.
std::string metrics_json();

/// Zero every registered metric (registry entries survive; tests use this).
void reset_metrics();

} // namespace pgsi::obs
