// Perf-regression gate over BENCH_*.json records (obs subsystem).
//
// compare_bench() walks a fresh benchmark record against a committed
// golden and flags every metric that regressed past a per-class relative
// threshold. Only "worse" directions fail: slower times, more iterations,
// larger errors; improvements pass silently. Metrics present in only one
// of the two documents are skipped (the format may grow), as are
// structural descriptors (sizes, thread counts) and sub-noise timings.
//
// Classification is by key name, matching the conventions of
// bench/bench_scaling.cpp:
//   * "*_s"                     wall time      -> time_ratio
//   * "*_err" / "*residual*"    accuracy       -> error_ratio
//   * other numeric keys        counters       -> count_ratio
//   * skip list                 descriptors    -> never compared
// Arrays of objects are matched element-wise by their "n" member when
// present (so a smoke run covering a subset of sizes still gates).
//
// The tools/bench_compare CLI wraps this; tests drive it with synthetic
// documents.
#pragma once

#include <string>
#include <vector>

namespace pgsi {
class JsonValue;
}

namespace pgsi::obs {

struct BenchGateOptions {
    double time_ratio = 1.8;   ///< fail when fresh > golden * ratio
    double count_ratio = 1.5;  ///< iteration/matvec growth allowance
    double error_ratio = 20.0; ///< accuracy metrics are noisy across BLAS paths
    double min_seconds = 0.02; ///< times below this on both sides are noise
    double min_count = 16;     ///< counters below this on both sides are noise
};

struct BenchDelta {
    std::string path;   ///< e.g. "cases[n=14].fill_cached_s"
    double golden = 0;
    double fresh = 0;
    double ratio = 0;     ///< fresh / golden
    double threshold = 0; ///< the ratio limit that applied
    bool regression = false;
};

struct BenchGateResult {
    std::vector<BenchDelta> compared; ///< every metric that was gated
    std::vector<std::string> skipped; ///< paths skipped (missing/descriptor)

    bool ok() const {
        for (const BenchDelta& d : compared)
            if (d.regression) return false;
        return true;
    }
    std::size_t regression_count() const {
        std::size_t n = 0;
        for (const BenchDelta& d : compared) n += d.regression ? 1 : 0;
        return n;
    }
};

/// Diff `fresh` against `golden` under the thresholds.
BenchGateResult compare_bench(const JsonValue& fresh, const JsonValue& golden,
                              const BenchGateOptions& opt = {});

/// Human-readable table of the comparison (regressions first).
std::string format_bench_gate(const BenchGateResult& result);

} // namespace pgsi::obs
