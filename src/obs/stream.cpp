#include "obs/stream.hpp"

#include <cstdlib>
#include <cstring>
#include <mutex>

namespace pgsi::obs {

namespace detail {
std::atomic_int g_stream_state{-1};

int stream_state_slow() noexcept {
    // Racing first calls both read the same environment; the state they
    // store is identical, so the race is benign (same as trace_state_slow).
    int on = 0;
    if (const char* env = std::getenv("PGSI_STREAMS"))
        if (env[0] != '\0' && std::strcmp(env, "0") != 0) on = 1;
    g_stream_state.store(on, std::memory_order_relaxed);
    return on;
}
} // namespace detail

void set_streams_enabled(bool on) noexcept {
    detail::g_stream_state.store(on ? 1 : 0, std::memory_order_relaxed);
}

namespace {

// Series ids encode a reset epoch in the high bits so an id cached across
// reset_streams() (e.g. the robust timeline's function-local static) drops
// its appends instead of writing into an unrelated fresh series.
constexpr std::size_t kEpochShift = 32;
constexpr std::size_t kIndexMask = (std::size_t(1) << kEpochShift) - 1;

std::mutex g_mu;
std::vector<StreamSeries> g_series;
std::size_t g_epoch = 0;

// Resolve an id to a live series under g_mu; nullptr when stale/none.
StreamSeries* resolve(std::size_t id) {
    if (id == kStreamNone) return nullptr;
    if ((id >> kEpochShift) != g_epoch) return nullptr;
    const std::size_t idx = id & kIndexMask;
    return idx < g_series.size() ? &g_series[idx] : nullptr;
}

} // namespace

std::size_t stream_open(std::string_view name) {
    if (!streams_enabled()) return kStreamNone;
    const std::lock_guard<std::mutex> lock(g_mu);
    if (g_series.size() >= kMaxSeries) return kStreamNone;
    StreamSeries s;
    s.name = name;
    g_series.push_back(std::move(s));
    return (g_epoch << kEpochShift) | (g_series.size() - 1);
}

void stream_append(std::size_t series, double x, double y) noexcept {
    if (series == kStreamNone) return;
    try {
        const std::lock_guard<std::mutex> lock(g_mu);
        StreamSeries* s = resolve(series);
        if (s == nullptr) return;
        if (s->x.size() >= kMaxPoints) {
            ++s->dropped;
            return;
        }
        s->x.push_back(x);
        s->y.push_back(y);
    } catch (...) {
        // Allocation failure: drop the point; instrumentation never throws.
    }
}

void stream_mark(std::size_t series, double x, std::string_view label) {
    if (series == kStreamNone) return;
    try {
        const std::lock_guard<std::mutex> lock(g_mu);
        StreamSeries* s = resolve(series);
        if (s == nullptr) return;
        if (s->marks.size() >= kMaxMarks) {
            ++s->dropped;
            return;
        }
        s->marks.push_back({x, std::string(label)});
    } catch (...) {
    }
}

bool stream_live(std::size_t id) {
    if (id == kStreamNone) return false;
    const std::lock_guard<std::mutex> lock(g_mu);
    return resolve(id) != nullptr;
}

std::vector<StreamSeries> stream_snapshot() {
    const std::lock_guard<std::mutex> lock(g_mu);
    return g_series;
}

void reset_streams() {
    const std::lock_guard<std::mutex> lock(g_mu);
    g_series.clear();
    ++g_epoch;
}

} // namespace pgsi::obs
