// SolveReport: the flight-recorder artifact (obs subsystem).
//
// One schema-versioned JSON document per solve, merging everything the
// observability stack knows at the end of a run: aggregated spans, the
// metrics snapshot, convergence streams, recovery events, resource
// accounting (peak RSS, matrix-allocation counters, pool utilization), an
// environment/config fingerprint, and free-form per-tool sections. Tools
// emit it with `--report <path>` (see tools/cli_common.hpp); the
// tools/pgsi_report renderer turns it into a Markdown summary.
//
// The builder is passive until build_json(): recording itself is done by
// the trace/metrics/stream/resource modules, which the --report flag turns
// on. Building snapshots their state at that moment.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/robust.hpp"

namespace pgsi::obs {

/// Schema identifier embedded in every report ("schema" member).
inline constexpr const char* kSolveReportSchema = "pgsi.solve_report/1";

class SolveReportBuilder {
public:
    /// `tool` names the producer ("pgsi_ssn", "test", ...).
    explicit SolveReportBuilder(std::string tool);

    /// Record the command line for the fingerprint.
    void set_argv(int argc, const char* const* argv);

    /// Add one value to a named free-form section ("transient", "zprofile",
    /// ...). Sections and keys keep insertion order in the JSON.
    void add_number(std::string_view section, std::string_view key,
                    double value);
    void add_text(std::string_view section, std::string_view key,
                  std::string_view value);

    /// Merge a run's recovery events into the report's "recoveries" array
    /// (the process-wide robust.* counters are in the metrics section
    /// either way; this carries the per-event detail strings).
    void add_recoveries(const robust::RecoveryReport& report);

    /// Assemble the JSON document, snapshotting metrics, spans, streams,
    /// pool stats, and peak RSS now.
    std::string build_json() const;

    /// build_json() to a file. Throws pgsi::Error on I/O failure.
    void write_file(const std::string& path) const;

private:
    std::string tool_;
    std::vector<std::string> argv_;
    std::uint64_t start_ns_ = 0;
    std::vector<robust::RecoveryEvent> recoveries_;
    using Section = std::vector<std::pair<std::string, std::string>>;
    std::vector<std::pair<std::string, Section>> sections_; // value = JSON
    Section& section(std::string_view name);
};

} // namespace pgsi::obs

namespace pgsi {
class JsonValue;
namespace obs {
/// Markdown summary of a parsed SolveReport: slowest span paths, solver
/// iteration statistics, recoveries, allocation peaks, pool utilization,
/// and per-stream summaries. `top_spans` bounds the span table.
std::string render_solve_report_markdown(const JsonValue& report,
                                         std::size_t top_spans = 12);
} // namespace obs
} // namespace pgsi
