// Hierarchical tracing for the pgsi pipeline (obs subsystem).
//
// A span is one timed region of the EM -> circuit -> cosim flow
// ("bem.fill.potential", "transient.run", ...). Spans opened with
// PGSI_TRACE_SCOPE nest lexically: the recorder keeps a per-thread stack, so
// every completed span carries its full path ("ssn.simulate/transient.run/
// transient.factor") plus wall-clock start and duration. Two exporters are
// provided — a human-readable summary tree aggregated by path, and Chrome
// trace-event JSON that loads directly in chrome://tracing or Perfetto.
//
// Cost model: tracing is off unless PGSI_TRACE is set in the environment (or
// set_trace_enabled(true) is called). When off, a PGSI_TRACE_SCOPE costs one
// relaxed atomic load and nothing else — no clock read, no allocation, no
// lock. Defining PGSI_OBS_DISABLED at compile time removes even that.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace pgsi::obs {

namespace detail {
// -1 = not yet initialized from the environment, 0 = off, 1 = on.
int trace_state_slow() noexcept;
extern std::atomic_int g_trace_state;
} // namespace detail

/// True when span recording is active. The hot path is a single relaxed
/// atomic load; the first call per process consults the PGSI_TRACE
/// environment variable.
inline bool trace_enabled() noexcept {
    const int s = detail::g_trace_state.load(std::memory_order_relaxed);
    return s < 0 ? detail::trace_state_slow() != 0 : s != 0;
}

/// Programmatic override of PGSI_TRACE (tools use this for --profile).
void set_trace_enabled(bool on) noexcept;

/// One completed span.
struct SpanRecord {
    std::string path;       ///< "parent/child/..." full nesting path
    std::uint64_t start_ns; ///< wall time since the trace epoch
    std::uint64_t dur_ns;   ///< wall duration
    std::uint32_t thread;   ///< dense per-process thread index
    std::uint32_t depth;    ///< nesting depth (0 = root)
};

/// Snapshot of every span completed so far (any thread).
std::vector<SpanRecord> trace_records();

/// Drop all recorded spans (enabled state is unchanged).
void reset_trace();

/// Path of the innermost span open on the calling thread ("" when none or
/// tracing is off) — used to attach span context to escaping errors.
std::string current_span_path();

/// RAII scope that records one span; prefer the PGSI_TRACE_SCOPE macro.
class SpanScope {
public:
    explicit SpanScope(const char* name) noexcept {
        if (trace_enabled()) begin(name);
    }
    ~SpanScope() {
        if (active_) end();
    }
    SpanScope(const SpanScope&) = delete;
    SpanScope& operator=(const SpanScope&) = delete;

private:
    void begin(const char* name) noexcept;
    void end() noexcept;
    bool active_ = false;
    std::uint64_t t0_ = 0;
};

/// Label the calling thread for the Chrome-trace export ("main",
/// "par.worker-3"). Cheap (one mutex-guarded map insert); callable any
/// time, also before tracing is enabled. Never throws.
void set_thread_name(std::string_view name) noexcept;

/// Human-readable summary: one line per distinct path with call count,
/// inclusive wall time, and share of the enclosing span, indented as a tree.
std::string trace_summary();

/// Chrome trace-event JSON ("traceEvents" array of complete "X" events);
/// loads in chrome://tracing and Perfetto.
std::string chrome_trace_json();

/// Write chrome_trace_json() to a file. Throws pgsi::Error on I/O failure.
void write_chrome_trace_file(const std::string& path);

/// Escape a string for embedding in a JSON string literal (exposed for the
/// exporters and their tests).
std::string json_escape(std::string_view s);

} // namespace pgsi::obs

#ifdef PGSI_OBS_DISABLED
#define PGSI_TRACE_SCOPE(name) ((void)0)
#else
#define PGSI_OBS_CONCAT2(a, b) a##b
#define PGSI_OBS_CONCAT(a, b) PGSI_OBS_CONCAT2(a, b)
#define PGSI_TRACE_SCOPE(name) \
    ::pgsi::obs::SpanScope PGSI_OBS_CONCAT(pgsi_obs_span_, __LINE__)(name)
#endif
