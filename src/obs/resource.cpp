#include "obs/resource.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "obs/metrics.hpp"

namespace pgsi::obs {

namespace detail {
std::atomic_int g_resource_state{-1};
thread_local const char* t_alloc_tag = nullptr;

int resource_state_slow() noexcept {
    // Racing first calls store identical state; the race is benign.
    int on = 0;
    if (const char* env = std::getenv("PGSI_RESOURCES"))
        if (env[0] != '\0' && std::strcmp(env, "0") != 0) on = 1;
    g_resource_state.store(on, std::memory_order_relaxed);
    return on;
}

void note_matrix_alloc_slow(std::size_t bytes) noexcept {
    try {
        static Counter& count = counter("alloc.matrix.count");
        static Counter& total = counter("alloc.matrix.bytes");
        static Histogram& hist = histogram("alloc.matrix.bytes_per_alloc");
        ++count;
        total.add(bytes);
        hist.record(static_cast<double>(bytes));

        // Per-subsystem attribution. Tags are string literals, so caching
        // the last (tag pointer -> counter) pair per thread turns the
        // registry lookup into a pointer compare on the hot path.
        const char* tag = t_alloc_tag != nullptr ? t_alloc_tag : "untagged";
        thread_local const char* cached_tag = nullptr;
        thread_local Counter* cached_counter = nullptr;
        if (tag != cached_tag) {
            cached_counter = &counter(std::string("alloc.") + tag + ".bytes");
            cached_tag = tag;
        }
        cached_counter->add(bytes);
    } catch (...) {
        // Registry allocation failure: drop the sample, never throw.
    }
}
} // namespace detail

void set_resources_enabled(bool on) noexcept {
    detail::g_resource_state.store(on ? 1 : 0, std::memory_order_relaxed);
}

std::size_t peak_rss_bytes() noexcept {
#ifdef __linux__
    // VmHWM ("high water mark") is the peak resident set in kB.
    std::FILE* f = std::fopen("/proc/self/status", "r");
    if (f == nullptr) return 0;
    char line[256];
    std::size_t kb = 0;
    while (std::fgets(line, sizeof line, f) != nullptr) {
        if (std::strncmp(line, "VmHWM:", 6) == 0) {
            kb = static_cast<std::size_t>(std::strtoull(line + 6, nullptr, 10));
            break;
        }
    }
    std::fclose(f);
    return kb * 1024;
#else
    return 0;
#endif
}

} // namespace pgsi::obs
