#include "obs/report.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <thread>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "io/json.hpp"
#include "obs/metrics.hpp"
#include "obs/resource.hpp"
#include "obs/stream.hpp"
#include "obs/trace.hpp"

namespace pgsi::obs {

namespace {

std::uint64_t steady_now_ns() {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

std::string jnum(double v) {
    if (!std::isfinite(v)) return "null";
    char buf[64];
    if (v == static_cast<double>(static_cast<long long>(v)) &&
        std::abs(v) < 1e15)
        std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
    else
        std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

std::string jstr(std::string_view s) {
    return "\"" + json_escape(s) + "\"";
}

// The PGSI_* knobs that change behavior; recorded when set so a report can
// be tied back to the environment that produced it.
constexpr const char* kEnvKeys[] = {
    "PGSI_THREADS", "PGSI_TRACE",     "PGSI_STREAMS", "PGSI_RESOURCES",
    "PGSI_METRICS", "PGSI_FAULT",     "PGSI_BENCH_JSON",
};

} // namespace

SolveReportBuilder::SolveReportBuilder(std::string tool)
    : tool_(std::move(tool)), start_ns_(steady_now_ns()) {}

void SolveReportBuilder::set_argv(int argc, const char* const* argv) {
    argv_.assign(argv, argv + argc);
}

SolveReportBuilder::Section& SolveReportBuilder::section(std::string_view name) {
    for (auto& [n, s] : sections_)
        if (n == name) return s;
    sections_.emplace_back(std::string(name), Section{});
    return sections_.back().second;
}

void SolveReportBuilder::add_number(std::string_view sec, std::string_view key,
                                    double value) {
    section(sec).emplace_back(std::string(key), jnum(value));
}

void SolveReportBuilder::add_text(std::string_view sec, std::string_view key,
                                  std::string_view value) {
    section(sec).emplace_back(std::string(key), jstr(value));
}

void SolveReportBuilder::add_recoveries(const robust::RecoveryReport& report) {
    recoveries_.insert(recoveries_.end(), report.events.begin(),
                       report.events.end());
}

std::string SolveReportBuilder::build_json() const {
    std::string out = "{\"schema\":";
    out += jstr(kSolveReportSchema);
    out += ",\"tool\":";
    out += jstr(tool_);
    out += ",\"wall_seconds\":";
    out += jnum(static_cast<double>(steady_now_ns() - start_ns_) * 1e-9);

    out += ",\"argv\":[";
    for (std::size_t i = 0; i < argv_.size(); ++i) {
        if (i) out += ',';
        out += jstr(argv_[i]);
    }
    out += "]";

    // Environment / config fingerprint.
    out += ",\"environment\":{\"threads\":";
    out += jnum(static_cast<double>(par::thread_count()));
    out += ",\"hardware_concurrency\":";
    out += jnum(static_cast<double>(std::thread::hardware_concurrency()));
    out += ",\"compiler\":";
#if defined(__VERSION__)
    out += jstr(__VERSION__);
#else
    out += jstr("unknown");
#endif
    out += ",\"build\":";
#ifdef NDEBUG
    out += jstr("release");
#else
    out += jstr("debug");
#endif
    out += ",\"env\":{";
    {
        bool first = true;
        for (const char* key : kEnvKeys) {
            const char* v = std::getenv(key);
            if (v == nullptr) continue;
            if (!first) out += ',';
            out += jstr(key);
            out += ':';
            out += jstr(v);
            first = false;
        }
    }
    out += "}}";

    // Resources: peak RSS, allocation counters, pool utilization.
    const MetricsSnapshot snap = metrics_snapshot();
    out += ",\"resources\":{\"peak_rss_bytes\":";
    out += jnum(static_cast<double>(peak_rss_bytes()));
    out += ",\"matrix_alloc_count\":";
    out += jnum(static_cast<double>(snap.counter_value("alloc.matrix.count")));
    out += ",\"matrix_alloc_bytes\":";
    out += jnum(static_cast<double>(snap.counter_value("alloc.matrix.bytes")));
    double largest = 0;
    for (const auto& [name, h] : snap.histograms)
        if (name == "alloc.matrix.bytes_per_alloc") largest = h.max;
    out += ",\"largest_matrix_bytes\":";
    out += jnum(largest);
    out += ",\"subsystem_bytes\":{";
    {
        bool first = true;
        for (const auto& [name, v] : snap.counters) {
            // alloc.<tag>.bytes, excluding the process-wide total.
            if (name.rfind("alloc.", 0) != 0 || name == "alloc.matrix.bytes")
                continue;
            if (name.size() < 7 + 6 ||
                name.compare(name.size() - 6, 6, ".bytes") != 0)
                continue;
            const std::string tag = name.substr(6, name.size() - 6 - 6);
            if (!first) out += ',';
            out += jstr(tag);
            out += ':';
            out += jnum(static_cast<double>(v));
            first = false;
        }
    }
    out += "}}";

    // Pool utilization: busy ns per slot over the covered wall time.
    const par::PoolStats pool = par::pool_stats();
    out += ",\"pool\":{\"threads\":";
    out += jnum(static_cast<double>(pool.threads));
    out += ",\"jobs\":";
    out += jnum(static_cast<double>(pool.jobs));
    out += ",\"items\":";
    out += jnum(static_cast<double>(pool.items));
    out += ",\"wall_ns\":";
    out += jnum(static_cast<double>(pool.wall_ns));
    out += ",\"busy_ns\":[";
    for (std::size_t i = 0; i < pool.busy_ns.size(); ++i) {
        if (i) out += ',';
        out += jnum(static_cast<double>(pool.busy_ns[i]));
    }
    out += "]";
    if (pool.wall_ns > 0 && !pool.busy_ns.empty()) {
        double busy = 0;
        for (const std::uint64_t b : pool.busy_ns)
            busy += static_cast<double>(b);
        out += ",\"utilization\":";
        out += jnum(busy / (static_cast<double>(pool.wall_ns) *
                            static_cast<double>(pool.busy_ns.size())));
    }
    out += "}";

    // Spans, aggregated by path (count + inclusive total), slowest first.
    {
        std::map<std::string, std::pair<std::size_t, std::uint64_t>> agg;
        for (const SpanRecord& r : trace_records()) {
            auto& [count, total] = agg[r.path];
            ++count;
            total += r.dur_ns;
        }
        std::vector<std::pair<std::string, std::pair<std::size_t, std::uint64_t>>>
            rows(agg.begin(), agg.end());
        std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
            return a.second.second > b.second.second;
        });
        out += ",\"spans\":[";
        bool first = true;
        for (const auto& [path, ct] : rows) {
            if (!first) out += ',';
            out += "{\"path\":";
            out += jstr(path);
            out += ",\"count\":";
            out += jnum(static_cast<double>(ct.first));
            out += ",\"total_ns\":";
            out += jnum(static_cast<double>(ct.second));
            out += "}";
            first = false;
        }
        out += "]";
    }

    // Convergence streams.
    out += ",\"streams\":[";
    {
        bool first = true;
        for (const StreamSeries& s : stream_snapshot()) {
            if (!first) out += ',';
            out += "{\"name\":";
            out += jstr(s.name);
            out += ",\"points\":[";
            for (std::size_t i = 0; i < s.x.size(); ++i) {
                if (i) out += ',';
                out += '[';
                out += jnum(s.x[i]);
                out += ',';
                out += jnum(s.y[i]);
                out += ']';
            }
            out += "],\"marks\":[";
            for (std::size_t i = 0; i < s.marks.size(); ++i) {
                if (i) out += ',';
                out += "{\"x\":";
                out += jnum(s.marks[i].x);
                out += ",\"label\":";
                out += jstr(s.marks[i].label);
                out += '}';
            }
            out += "],\"dropped\":";
            out += jnum(static_cast<double>(s.dropped));
            out += '}';
            first = false;
        }
    }
    out += "]";

    // Recovery events with their detail strings.
    out += ",\"recoveries\":[";
    for (std::size_t i = 0; i < recoveries_.size(); ++i) {
        if (i) out += ',';
        out += "{\"site\":";
        out += jstr(recoveries_[i].site);
        out += ",\"detail\":";
        out += jstr(recoveries_[i].detail);
        out += '}';
    }
    out += "]";

    // Full metrics snapshot (machine-readable mirror of format_metrics()).
    out += ",\"metrics\":";
    out += metrics_json();

    // Free-form per-tool sections.
    out += ",\"sections\":{";
    {
        bool first = true;
        for (const auto& [name, sec] : sections_) {
            if (!first) out += ',';
            out += jstr(name);
            out += ":{";
            for (std::size_t i = 0; i < sec.size(); ++i) {
                if (i) out += ',';
                out += jstr(sec[i].first);
                out += ':';
                out += sec[i].second;
            }
            out += '}';
            first = false;
        }
    }
    out += "}}";
    return out;
}

void SolveReportBuilder::write_file(const std::string& path) const {
    std::ofstream f(path);
    if (!f.good()) throw Error("cannot open report output file: " + path);
    f << build_json();
    if (!f.good()) throw Error("failed writing report output file: " + path);
}

namespace {

std::string fmt_ns(double ns) {
    char buf[64];
    if (ns >= 1e9)
        std::snprintf(buf, sizeof buf, "%.3f s", ns * 1e-9);
    else if (ns >= 1e6)
        std::snprintf(buf, sizeof buf, "%.3f ms", ns * 1e-6);
    else
        std::snprintf(buf, sizeof buf, "%.1f us", ns * 1e-3);
    return buf;
}

std::string fmt_bytes(double b) {
    char buf[64];
    if (b >= 1024.0 * 1024.0 * 1024.0)
        std::snprintf(buf, sizeof buf, "%.2f GiB", b / (1024.0 * 1024.0 * 1024.0));
    else if (b >= 1024.0 * 1024.0)
        std::snprintf(buf, sizeof buf, "%.2f MiB", b / (1024.0 * 1024.0));
    else if (b >= 1024.0)
        std::snprintf(buf, sizeof buf, "%.1f KiB", b / 1024.0);
    else
        std::snprintf(buf, sizeof buf, "%.0f B", b);
    return buf;
}

std::string fmt_g(double v) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.4g", v);
    return buf;
}

} // namespace

std::string render_solve_report_markdown(const JsonValue& report,
                                         std::size_t top_spans) {
    std::string md = "# SolveReport: " + report.str_or("tool", "?") + "\n\n";
    md += "- schema: `" + report.str_or("schema", "?") + "`\n";
    md += "- wall time: " + fmt_g(report.num_or("wall_seconds", 0)) + " s\n";
    if (const JsonValue* env = report.find("environment")) {
        md += "- threads: " + fmt_g(env->num_or("threads", 0)) +
              ", compiler: " + env->str_or("compiler", "?") + " (" +
              env->str_or("build", "?") + ")\n";
    }
    if (const JsonValue* res = report.find("resources")) {
        md += "- peak RSS: " + fmt_bytes(res->num_or("peak_rss_bytes", 0)) +
              "\n";
    }
    md += "\n";

    if (const JsonValue* spans = report.find("spans");
        spans != nullptr && spans->is_array() && !spans->array.empty()) {
        md += "## Slowest span paths\n\n";
        md += "| path | count | total |\n|---|---:|---:|\n";
        std::size_t shown = 0;
        for (const JsonValue& s : spans->array) {
            if (shown++ >= top_spans) break;
            md += "| `" + s.str_or("path", "?") + "` | " +
                  fmt_g(s.num_or("count", 0)) + " | " +
                  fmt_ns(s.num_or("total_ns", 0)) + " |\n";
        }
        md += "\n";
    }

    if (const JsonValue* metrics = report.find("metrics")) {
        if (const JsonValue* counters = metrics->find("counters")) {
            const double solves = counters->num_or("gmres.solves", 0);
            const double iters = counters->num_or("gmres.iterations", 0);
            if (solves > 0) {
                md += "## Solver activity\n\n";
                md += "- GMRES: " + fmt_g(solves) + " solves, " +
                      fmt_g(iters) + " iterations (" +
                      fmt_g(iters / solves) + " per solve), " +
                      fmt_g(counters->num_or("gmres.matvecs", 0)) +
                      " matvecs, " +
                      fmt_g(counters->num_or("gmres.restarts", 0)) +
                      " restarts\n";
                const double retries =
                    counters->num_or("gmres.estimate_retries", 0);
                if (retries > 0)
                    md += "- GMRES estimate retries: " + fmt_g(retries) + "\n";
            }
            const double lu = counters->num_or("lu.factorizations", 0);
            if (lu > 0) md += "- LU factorizations: " + fmt_g(lu) + "\n";
            md += "\n";
        }
    }

    if (const JsonValue* secs = report.find("sections");
        secs != nullptr && !secs->object.empty()) {
        md += "## Tool sections\n\n";
        for (const auto& [name, sec] : secs->object) {
            md += "### " + name + "\n\n";
            for (const auto& [key, val] : sec.object) {
                md += "- " + key + ": ";
                if (val.is_number()) md += fmt_g(val.number);
                else if (val.is_string()) md += val.string;
                else md += "…";
                md += "\n";
            }
            md += "\n";
        }
    }

    if (const JsonValue* recov = report.find("recoveries");
        recov != nullptr && recov->is_array()) {
        md += "## Recoveries\n\n";
        if (recov->array.empty()) {
            md += "none\n\n";
        } else {
            for (const JsonValue& e : recov->array)
                md += "- `" + e.str_or("site", "?") + "`: " +
                      e.str_or("detail", "") + "\n";
            md += "\n";
        }
    }

    if (const JsonValue* res = report.find("resources")) {
        md += "## Resource accounting\n\n";
        md += "- matrix allocations: " +
              fmt_g(res->num_or("matrix_alloc_count", 0)) + " totalling " +
              fmt_bytes(res->num_or("matrix_alloc_bytes", 0)) +
              " (largest " + fmt_bytes(res->num_or("largest_matrix_bytes", 0)) +
              ")\n";
        if (const JsonValue* sub = res->find("subsystem_bytes");
            sub != nullptr && !sub->object.empty()) {
            for (const auto& [tag, v] : sub->object)
                md += "  - " + tag + ": " + fmt_bytes(v.number) + "\n";
        }
        md += "\n";
    }

    if (const JsonValue* pool = report.find("pool")) {
        md += "## Pool utilization\n\n";
        md += "- " + fmt_g(pool->num_or("threads", 0)) + " threads, " +
              fmt_g(pool->num_or("jobs", 0)) + " jobs, " +
              fmt_g(pool->num_or("items", 0)) + " items\n";
        if (const JsonValue* u = pool->find("utilization"))
            md += "- utilization: " + fmt_g(u->number * 100.0) + " %\n";
        if (const JsonValue* busy = pool->find("busy_ns");
            busy != nullptr && busy->is_array()) {
            const double wall = pool->num_or("wall_ns", 0);
            for (std::size_t i = 0; i < busy->array.size(); ++i) {
                const char* who = i == 0 ? "callers" : "worker";
                md += "  - " + std::string(who) +
                      (i == 0 ? std::string() : "-" + std::to_string(i)) +
                      ": busy " + fmt_ns(busy->array[i].number);
                if (wall > 0)
                    md += " (" + fmt_g(100.0 * busy->array[i].number / wall) +
                          " % of wall)";
                md += "\n";
            }
        }
        md += "\n";
    }

    if (const JsonValue* streams = report.find("streams");
        streams != nullptr && streams->is_array() && !streams->array.empty()) {
        md += "## Convergence streams\n\n";
        md += "| series | points | first | last | marks | dropped |\n"
              "|---|---:|---:|---:|---:|---:|\n";
        for (const JsonValue& s : streams->array) {
            const JsonValue* pts = s.find("points");
            const std::size_t n =
                pts != nullptr && pts->is_array() ? pts->array.size() : 0;
            std::string first = "-", last = "-";
            if (n > 0 && pts->array.front().is_array() &&
                pts->array.front().array.size() == 2) {
                first = fmt_g(pts->array.front().array[1].number);
                last = fmt_g(pts->array.back().array[1].number);
            }
            const JsonValue* marks = s.find("marks");
            const std::size_t nm =
                marks != nullptr && marks->is_array() ? marks->array.size() : 0;
            md += "| `" + s.str_or("name", "?") + "` | " + fmt_g(double(n)) +
                  " | " + first + " | " + last + " | " + fmt_g(double(nm)) +
                  " | " + fmt_g(s.num_or("dropped", 0)) + " |\n";
        }
        md += "\n";
    }

    return md;
}

} // namespace pgsi::obs
