// 2-D FDTD solver for parallel-plane pairs (§6.1: "time domain simulations
// using both the equivalent RLC circuit and 2-D FDTD are carried out on this
// test structure", Fig. 8).
//
// A plane pair of separation d filled with dielectric εr behaves as a 2-D
// transmission plane: voltage V(x,y) between the planes and surface current
// density J(x,y) [A/m] obey
//
//     Ls ∂J/∂t = −∇V − Rs·J,       Ls = μ0·d      [H per square]
//     Ca ∂V/∂t = −∇·J + i_inj/ΔA,  Ca = ε0 εr / d [F per area]
//
// (wave speed 1/sqrt(Ls·Ca) = c0/sqrt(εr) as required). The solver uses the
// standard staggered leapfrog grid — V at cell centers, Jx/Jy on cell edges —
// with open (magnetic-wall) boundaries at the plane edge, sheet loss Rs from
// both conductor planes, and lumped resistive ports handled semi-implicitly
// for unconditional port stability.
#pragma once

#include <vector>

#include "circuit/sources.hpp"
#include "geometry/point2.hpp"
#include "numeric/matrix.hpp"

namespace pgsi {

/// Configuration of a rectangular plane pair.
struct PlaneFdtdOptions {
    double lx = 0;           ///< plane extent in x [m]
    double ly = 0;           ///< plane extent in y [m]
    double separation = 0;   ///< dielectric thickness d [m]
    double eps_r = 1.0;      ///< relative permittivity
    double sheet_resistance = 0; ///< combined Rs of both planes [ohm/sq]
    std::size_t nx = 0;      ///< cells in x
    std::size_t ny = 0;      ///< cells in y
    double dt = 0;           ///< time step [s]; 0 = 0.9 × CFL limit
};

/// Throughput telemetry of an FDTD run.
struct PlaneFdtdStats {
    std::size_t steps = 0;           ///< leapfrog steps executed
    std::size_t cells = 0;           ///< nx × ny voltage cells
    double wall_seconds = 0;         ///< wall time of run()
    double steps_per_second = 0;     ///< steps / wall_seconds
    double cell_updates_per_second = 0; ///< steps × cells / wall_seconds
};

/// Recorded port waveforms of an FDTD run.
struct PlaneFdtdResult {
    VectorD time;
    std::vector<VectorD> port_voltage; ///< per port, one sample per step
    PlaneFdtdStats stats;              ///< throughput telemetry
};

/// Leapfrog simulator for one plane pair with lumped resistive ports.
class PlaneFdtd {
public:
    explicit PlaneFdtd(const PlaneFdtdOptions& options);

    /// Attach a port at board position p: a series resistance r to an ideal
    /// source (set a 0 V DC source for a pure termination). Returns the port
    /// index.
    std::size_t add_port(Point2 p, double r, Source src);

    /// Run for tstop seconds, recording all port voltages.
    PlaneFdtdResult run(double tstop);

    /// The actual time step in use.
    double dt() const { return dt_; }

private:
    PlaneFdtdOptions opt_;
    double dx_, dy_, dt_;
    double ls_, ca_;

    struct FdtdPort {
        std::size_t ix = 0, iy = 0;
        double r = 0;
        Source src;
    };
    std::vector<FdtdPort> ports_;
};

} // namespace pgsi
