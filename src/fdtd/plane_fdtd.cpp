#include "fdtd/plane_fdtd.hpp"

#include <chrono>
#include <cmath>

#include "common/constants.hpp"
#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace pgsi {

PlaneFdtd::PlaneFdtd(const PlaneFdtdOptions& options) : opt_(options) {
    PGSI_REQUIRE(opt_.lx > 0 && opt_.ly > 0, "PlaneFdtd: plane extents must be > 0");
    PGSI_REQUIRE(opt_.separation > 0, "PlaneFdtd: separation must be > 0");
    PGSI_REQUIRE(opt_.nx >= 4 && opt_.ny >= 4, "PlaneFdtd: grid too coarse");
    dx_ = opt_.lx / static_cast<double>(opt_.nx);
    dy_ = opt_.ly / static_cast<double>(opt_.ny);
    ls_ = mu0 * opt_.separation;
    ca_ = eps0 * opt_.eps_r / opt_.separation;
    const double v = 1.0 / std::sqrt(ls_ * ca_);
    const double cfl = 1.0 / (v * std::sqrt(1.0 / (dx_ * dx_) + 1.0 / (dy_ * dy_)));
    dt_ = opt_.dt > 0 ? opt_.dt : 0.9 * cfl;
    PGSI_REQUIRE(dt_ <= cfl, "PlaneFdtd: dt violates the CFL limit");
}

std::size_t PlaneFdtd::add_port(Point2 p, double r, Source src) {
    PGSI_REQUIRE(r > 0, "PlaneFdtd: port resistance must be positive");
    const auto ix = static_cast<std::size_t>(
        std::min(opt_.nx - 1.0, std::max(0.0, std::floor(p.x / dx_))));
    const auto iy = static_cast<std::size_t>(
        std::min(opt_.ny - 1.0, std::max(0.0, std::floor(p.y / dy_))));
    ports_.push_back({ix, iy, r, std::move(src)});
    return ports_.size() - 1;
}

PlaneFdtdResult PlaneFdtd::run(double tstop) {
    PGSI_REQUIRE(tstop > dt_, "PlaneFdtd: tstop must exceed dt");
    PGSI_TRACE_SCOPE("fdtd.run");
    const auto wall0 = std::chrono::steady_clock::now();
    const std::size_t nx = opt_.nx, ny = opt_.ny;
    // V at cell centers; Jx on vertical edges between x-neighbours
    // (nx-1)*ny; Jy on horizontal edges nx*(ny-1). Edge currents at the plane
    // boundary stay zero (open boundary).
    std::vector<double> v(nx * ny, 0.0);
    std::vector<double> jx((nx - 1) * ny, 0.0);
    std::vector<double> jy(nx * (ny - 1), 0.0);
    auto vid = [nx](std::size_t i, std::size_t j) { return j * nx + i; };
    auto xid = [nx](std::size_t i, std::size_t j) { return j * (nx - 1) + i; };
    auto yid = [nx](std::size_t i, std::size_t j) { return j * nx + i; };

    const double rs = opt_.sheet_resistance;
    // Current update with loss folded in semi-implicitly:
    //   J_new = ((1 - a)·J_old - (dt/Ls)·dV/dx) / (1 + a),  a = Rs·dt/(2·Ls).
    const double a = rs * dt_ / (2.0 * ls_);
    const double c1 = (1.0 - a) / (1.0 + a);
    const double c2 = (dt_ / ls_) / (1.0 + a);
    const double area = dx_ * dy_;

    PlaneFdtdResult res;
    res.port_voltage.resize(ports_.size());

    const auto steps = static_cast<std::size_t>(std::ceil(tstop / dt_));
    for (std::size_t step = 0; step < steps; ++step) {
        const double t = step * dt_;

        // Update currents from the voltage gradient (leapfrog half step).
        for (std::size_t j = 0; j < ny; ++j)
            for (std::size_t i = 0; i + 1 < nx; ++i) {
                const double dv = (v[vid(i + 1, j)] - v[vid(i, j)]) / dx_;
                double& cur = jx[xid(i, j)];
                cur = c1 * cur - c2 * dv;
            }
        for (std::size_t j = 0; j + 1 < ny; ++j)
            for (std::size_t i = 0; i < nx; ++i) {
                const double dv = (v[vid(i, j + 1)] - v[vid(i, j)]) / dy_;
                double& cur = jy[yid(i, j)];
                cur = c1 * cur - c2 * dv;
            }

        // Save the pre-update voltage of port cells: the lumped-port term
        // must be integrated *simultaneously* with the field divergence
        // (Piket-May form). Applying it as a separate pass after the field
        // update effectively scales the divergence by (1-β/2)/(1+β/2) and
        // goes unstable once β = dt/(Ca·ΔA·R) exceeds 2 (small cells, low R).
        std::vector<double> v_before(ports_.size());
        for (std::size_t p = 0; p < ports_.size(); ++p)
            v_before[p] = v[vid(ports_[p].ix, ports_[p].iy)];

        // Update voltages from the current divergence.
        for (std::size_t j = 0; j < ny; ++j)
            for (std::size_t i = 0; i < nx; ++i) {
                double div = 0;
                if (i + 1 < nx) div += jx[xid(i, j)] / dx_;
                if (i > 0) div -= jx[xid(i - 1, j)] / dx_;
                if (j + 1 < ny) div += jy[yid(i, j)] / dy_;
                if (j > 0) div -= jy[yid(i, j - 1)] / dy_;
                v[vid(i, j)] -= dt_ / ca_ * div;
            }

        // Lumped ports: Ca·ΔA·dV/dt = -divJ·ΔA + (Vs - (V_old+V_new)/2)/R,
        // solved simultaneously for V_new:
        //   V_new = [ V_old·(1-β/2) + D + β·Vs ] / (1+β/2),
        // where D is the divergence increment already applied above.
        for (std::size_t p = 0; p < ports_.size(); ++p) {
            const FdtdPort& port = ports_[p];
            double& vn = v[vid(port.ix, port.iy)];
            const double d = vn - v_before[p];
            const double vs = port.src.value(t + dt_);
            const double beta = dt_ / (ca_ * area * port.r);
            vn = (v_before[p] * (1.0 - 0.5 * beta) + d + beta * vs) /
                 (1.0 + 0.5 * beta);
        }

        res.time.push_back(t + dt_);
        for (std::size_t p = 0; p < ports_.size(); ++p)
            res.port_voltage[p].push_back(v[vid(ports_[p].ix, ports_[p].iy)]);
    }
    res.stats.steps = steps;
    res.stats.cells = nx * ny;
    res.stats.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - wall0)
            .count();
    if (res.stats.wall_seconds > 0) {
        res.stats.steps_per_second =
            static_cast<double>(steps) / res.stats.wall_seconds;
        res.stats.cell_updates_per_second =
            res.stats.steps_per_second * static_cast<double>(res.stats.cells);
    }
    static obs::Counter& step_counter = obs::counter("fdtd.steps");
    step_counter.add(steps);
    obs::gauge("fdtd.cell_updates_per_second")
        .set(res.stats.cell_updates_per_second);
    return res;
}

} // namespace pgsi
