#include "serve/model_cache.hpp"

#include <cstdio>
#include <cstring>

#include "common/error.hpp"
#include "common/robust.hpp"
#include "obs/metrics.hpp"
#include "obs/resource.hpp"
#include "obs/trace.hpp"
#include "si/board_file.hpp"

namespace pgsi::serve {

namespace {

std::uint64_t fnv_bytes(const void* data, std::size_t size,
                        std::uint64_t h) noexcept {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < size; ++i) {
        h ^= p[i];
        h *= 1099511628211ull;
    }
    return h;
}

std::uint64_t fnv_str(const std::string& s, std::uint64_t h) noexcept {
    return fnv_bytes(s.data(), s.size(), h);
}

obs::Counter& c_hits() {
    static obs::Counter& c = obs::counter("serve.cache.hits");
    return c;
}
obs::Counter& c_misses() {
    static obs::Counter& c = obs::counter("serve.cache.misses");
    return c;
}
obs::Counter& c_evictions() {
    static obs::Counter& c = obs::counter("serve.cache.evictions");
    return c;
}
obs::Counter& c_waits() {
    static obs::Counter& c = obs::counter("serve.cache.single_flight_waits");
    return c;
}
obs::Gauge& g_bytes() {
    static obs::Gauge& g = obs::gauge("serve.cache.bytes");
    return g;
}

} // namespace

std::uint64_t model_key(const Board& board, const SsnModelOptions& options) {
    std::uint64_t h = fnv_str(board_file_string(board), 1469598103934665603ull);
    // The board-file format carries no signal nets, but SsnModel stamps them
    // off the cached board — two boards differing only in nets must not
    // share an entry.
    for (const SignalNet& net : board.signal_nets()) {
        char buf[160];
        std::snprintf(buf, sizeof buf,
                      "|net %zu z0=%.17g delay=%.17g rxc=%.17g term=%.17g",
                      net.driver_site, net.z0, net.delay, net.receiver_c,
                      net.term_r);
        h = fnv_bytes(buf, std::strlen(buf), h);
    }
    char buf[200];
    std::snprintf(buf, sizeof buf,
                  "|opt pitch=%.17g interior=%zu testing=%d prune=%.17g "
                  "vrm_r=%.17g vrm_l=%.17g",
                  options.mesh_pitch, options.interior_nodes,
                  static_cast<int>(options.testing), options.prune_rel_tol,
                  options.vrm_r, options.vrm_l);
    return fnv_bytes(buf, std::strlen(buf), h);
}

std::size_t estimated_model_bytes(const PlaneModel& model) {
    const std::size_t n = model.bem().node_count();
    const std::size_t b = model.bem().mesh().branch_count();
    const std::size_t c = model.circuit().node_count();
    // Dominant dense payloads: potential + Maxwell capacitance (n² each),
    // branch inductance (b²), and the extraction's reduced dense blocks
    // (a few c² scratch/result matrices). The branch list and node arrays
    // are charged linearly; a small constant covers mesh bookkeeping.
    return sizeof(double) * (2 * n * n + b * b + 4 * c * c) +
           sizeof(RlcBranch) * model.circuit().branches.size() + (1u << 14);
}

ModelCache::ModelCache(std::size_t budget_bytes) : budget_(budget_bytes) {}

ModelCache& ModelCache::instance() {
    static ModelCache cache;
    return cache;
}

bool ModelCache::evict_lru_locked(std::uint64_t protect) {
    std::uint64_t victim = 0;
    std::uint64_t oldest = 0;
    bool found = false;
    for (const auto& [key, entry] : entries_) {
        if (entry->building || key == protect) continue;
        if (!found || entry->tick < oldest) {
            victim = key;
            oldest = entry->tick;
            found = true;
        }
    }
    if (!found) return false;
    const auto it = entries_.find(victim);
    bytes_ -= it->second->bytes;
    entries_.erase(it);
    ++stats_.evictions;
    ++c_evictions();
    g_bytes().set(static_cast<double>(bytes_));
    return true;
}

void ModelCache::evict_to_budget_locked(std::uint64_t protect) {
    while (bytes_ > budget_)
        if (!evict_lru_locked(protect)) break;
}

std::shared_ptr<const PlaneModel> ModelCache::acquire(
    const Board& board, const SsnModelOptions& options, bool* cache_hit) {
    PGSI_TRACE_SCOPE("serve.cache.acquire");
    const std::uint64_t key = model_key(board, options);
    std::shared_ptr<Entry> mine;
    {
        std::unique_lock<std::mutex> lock(mu_);
        for (;;) {
            const auto it = entries_.find(key);
            if (it == entries_.end()) break;
            const std::shared_ptr<Entry> entry = it->second;
            if (!entry->building) {
                entry->tick = ++tick_;
                ++stats_.hits;
                ++c_hits();
                if (cache_hit != nullptr) *cache_hit = true;
                return entry->model;
            }
            // Someone else is building this geometry right now: wait for
            // them instead of duplicating the most expensive step. A failed
            // build erases the entry and we fall through to build ourselves.
            ++stats_.single_flight_waits;
            ++c_waits();
            cv_.wait(lock);
        }
        mine = std::make_shared<Entry>();
        entries_.emplace(key, mine);
        ++stats_.misses;
        ++c_misses();
        if (cache_hit != nullptr) *cache_hit = false;
    }

    std::shared_ptr<const PlaneModel> model;
    try {
        PGSI_ALLOC_SCOPE("serve.model_build");
        model = std::make_shared<const PlaneModel>(board, options);
    } catch (...) {
        const std::lock_guard<std::mutex> lock(mu_);
        const auto it = entries_.find(key);
        if (it != entries_.end() && it->second == mine) entries_.erase(it);
        cv_.notify_all();
        throw;
    }

    const std::lock_guard<std::mutex> lock(mu_);
    mine->model = model;
    mine->bytes = estimated_model_bytes(*model);
    mine->building = false;
    mine->tick = ++tick_;
    bytes_ += mine->bytes;
    // Deterministic eviction hook: lets tests drive the eviction path on
    // kilobyte-sized fixtures instead of filling a real byte budget.
    if (robust::FaultInjector::should_fire("cache.evict"))
        evict_lru_locked(key);
    evict_to_budget_locked(key);
    g_bytes().set(static_cast<double>(bytes_));
    cv_.notify_all();
    return model;
}

ModelCache::Stats ModelCache::stats() const {
    const std::lock_guard<std::mutex> lock(mu_);
    Stats s = stats_;
    s.entries = entries_.size();
    s.bytes = bytes_;
    return s;
}

std::size_t ModelCache::budget_bytes() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return budget_;
}

void ModelCache::set_budget_bytes(std::size_t bytes) {
    const std::lock_guard<std::mutex> lock(mu_);
    budget_ = bytes;
    evict_to_budget_locked(0);
}

void ModelCache::clear() {
    const std::lock_guard<std::mutex> lock(mu_);
    for (auto it = entries_.begin(); it != entries_.end();) {
        if (it->second->building) {
            ++it;
            continue;
        }
        bytes_ -= it->second->bytes;
        it = entries_.erase(it);
    }
    g_bytes().set(static_cast<double>(bytes_));
}

} // namespace pgsi::serve
