// Fault-contained batch job engine (pgsi::serve).
//
// A JobQueue takes a campaign of solve requests and runs them across the
// shared pgsi::par pool, each job inside its own containment boundary:
//
//  * Deadlines — a per-job CancelToken armed at job start, threaded through
//    RecoveryOptions into every engine underneath (sweep backends per
//    frequency / GMRES column, transient stepper per step, DC continuation
//    per pass). A watchdog thread forces lazy deadline evaluation so a job
//    stuck between polls is still detected promptly. Expiry surfaces as
//    JobState::DeadlineExpired with a "serve.deadline" recovery event —
//    never as a hung batch.
//  * Exception capture — anything a job throws becomes its JobReport
//    (state, error text, recovery trail). One poisoned geometry cannot take
//    down the other 49 jobs of a campaign.
//  * Retry ladder — a failed attempt retries up to JobSpec::max_retries
//    times, sleeping backoff_s·multiplier^k between attempts, each retry one
//    rung up the robust::escalate_one_rung ladder (deeper timestep cutting,
//    wider DC continuation, iterative escalation forced open). Healthy code
//    paths are rung-invariant, so retried jobs stay bit-identical to clean
//    ones.
//  * Journal + resume — with a journal path set, every finished job is
//    appended (fsync'd) to jobs.jsonl; BatchOptions::resume skips jobs whose
//    completed records are already journaled. Job results are bit-reproducible
//    (pgsi kernels are thread-count invariant), so a killed-and-resumed
//    campaign merges to exactly the digests of an uninterrupted one.
//
// Underneath, every job acquires its plane model through a shared ModelCache
// (single-flight, LRU under a byte budget), so a campaign over a handful of
// geometries pays for each extraction once.
//
// Fault sites: "serve.job" (an attempt fails at dispatch), "serve.deadline"
// (a job's deadline expires immediately). Recovery sites noted on reports:
// "serve.retry", "serve.deadline", "serve.cancelled".
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/robust.hpp"
#include "serve/job.hpp"
#include "serve/model_cache.hpp"

namespace pgsi::serve {

/// Campaign-level knobs of a JobQueue.
struct BatchOptions {
    /// Model cache to share; nullptr uses the process-wide instance.
    ModelCache* cache = nullptr;
    /// Append one fsync'd JSON line per finished job here; "" disables.
    std::string journal_path;
    /// Skip jobs with a completed record already in the journal (requires
    /// journal_path). Their reports come back as JobState::Resumed with the
    /// journaled digest but no payload.
    bool resume = false;
    /// Watchdog poll period for deadline detection [s].
    double watchdog_period_s = 2e-3;
    /// Rung-0 recovery options every attempt starts from; retries escalate
    /// from here.
    robust::RecoveryOptions recovery;
};

/// Campaign-level outcome counts.
struct BatchStats {
    std::size_t completed = 0;
    std::size_t failed = 0;
    std::size_t deadline_expired = 0;
    std::size_t cancelled = 0;
    std::size_t resumed = 0;         ///< skipped via the journal
    std::size_t retries = 0;         ///< attempts beyond each job's first
    std::uint64_t cache_hits = 0;    ///< among jobs executed this run
    std::uint64_t cache_misses = 0;
    double wall_seconds = 0;         ///< whole-campaign wall time
};

/// Everything a campaign produced, reports in input order.
struct BatchResult {
    std::vector<JobReport> reports;
    BatchStats stats;

    /// True when every job either completed this run or was resumed.
    bool all_completed() const noexcept;
    /// Report of one job by id; throws InvalidArgument when absent.
    const JobReport& report(std::string_view id) const;
};

/// Batch scheduler with per-job fault containment. One run() at a time per
/// queue; cancel_all() may be called concurrently from another thread.
class JobQueue {
public:
    explicit JobQueue(BatchOptions options = {});
    ~JobQueue();
    JobQueue(const JobQueue&) = delete;
    JobQueue& operator=(const JobQueue&) = delete;

    /// Run the campaign to completion (every job reaches a terminal state).
    /// Throws InvalidArgument on duplicate/empty job ids or resume without a
    /// journal; job-level failures never throw — they come back as reports.
    BatchResult run(const std::vector<JobSpec>& jobs);

    /// Trip every in-flight job's CancelToken. Jobs stop at their next
    /// cancellation point with JobState::Cancelled; queued jobs that have
    /// not started yet are cancelled before doing any work. No-op outside
    /// run().
    void cancel_all(const std::string& reason);

private:
    struct Active;
    BatchOptions opt_;
    std::mutex active_mu_;
    std::shared_ptr<Active> active_; ///< tokens of the run in flight
};

} // namespace pgsi::serve
