// Batch-job vocabulary of the pgsi::serve engine: what one solve request
// looks like, what its outcome record carries, and the deterministic digests
// that make outcomes comparable across runs.
//
// A JobSpec is self-contained: it embeds the board description *text* (not a
// path), the extraction knobs, and either a frequency grid (sweep jobs) or a
// transient window. Self-containment is what makes the engine's guarantees
// simple — the same JobSpec always denotes the same computation, the model
// cache can key on the spec's geometry alone, and a resumed campaign re-runs
// exactly the jobs whose specs it re-reads.
//
// Job files are JSON (parsed with the io/json reader):
//
//   {
//     "schema": "pgsi.jobs/1",
//     "defaults": { "pitch": 12e-3, "deadline_s": 30, "max_retries": 2 },
//     "jobs": [
//       { "id": "sweep-a", "type": "sweep", "board": "<board-file text>",
//         "fmin": 1e7, "fmax": 1e9, "points": 24,
//         "ports": [[0.02, 0.02], [0.1, 0.05]], "backend": "auto" },
//       { "id": "tran-a", "type": "transient", "board_file": "eval.brd",
//         "dt": 5e-11, "tstop": 2e-8 }
//     ]
//   }
//
// Every job field may appear in "defaults"; per-job values win. "board_file"
// paths resolve relative to the job file and are inlined at parse time, so
// the parsed JobSpec is again self-contained.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "circuit/transient.hpp"
#include "common/robust.hpp"
#include "em/solver.hpp"
#include "geometry/point2.hpp"
#include "io/json.hpp"
#include "si/cosim.hpp"

namespace pgsi::serve {

/// What kind of solve a job requests.
enum class JobKind {
    Sweep,    ///< frequency-domain Z(f) at the job's ports
    Transient ///< time-domain SSN simulation of the board
};

/// One self-contained solve request.
struct JobSpec {
    std::string id;               ///< unique within a campaign
    JobKind kind = JobKind::Sweep;
    std::string board_text;       ///< board description (si/board_file format)
    SsnModelOptions model;        ///< extraction knobs (part of the cache key)

    // Sweep jobs.
    VectorD freqs_hz;             ///< strictly increasing frequency grid
    /// Port locations on the board; empty falls back to the driver Vcc pins,
    /// then to the regulator location.
    std::vector<Point2> ports;
    SolverBackend backend = SolverBackend::Auto;

    // Transient jobs.
    double dt = 50e-12;
    double tstop = 20e-9;

    // Fault containment.
    double deadline_s = 0;        ///< wall-clock budget from job start; 0 = none
    int max_retries = 0;          ///< extra attempts after a failed first one
    double backoff_s = 0;         ///< sleep before retry k: backoff_s * mult^k
    double backoff_multiplier = 2.0;
};

/// Terminal state of one job.
enum class JobState {
    Pending,         ///< not yet run (only seen mid-batch)
    Completed,       ///< solved; payload and digest are valid
    Failed,          ///< every attempt raised; error holds the last message
    DeadlineExpired, ///< abandoned at a cancellation point past its deadline
    Cancelled,       ///< abandoned after an explicit cancel_all()
    Resumed          ///< skipped: the journal already holds a completed record
};

const char* to_string(JobState state) noexcept;
/// Inverse of to_string; throws InvalidArgument on an unknown name.
JobState job_state_from_string(std::string_view name);

/// Outcome of one job: terminal state, containment bookkeeping, and (for
/// jobs executed in this process) the solve payload itself.
struct JobReport {
    std::string id;
    JobState state = JobState::Pending;
    int attempts = 0;          ///< 1 = clean first try
    bool cache_hit = false;    ///< plane model came from the ModelCache
    double wall_seconds = 0;   ///< job wall time including retries/backoff
    /// FNV-1a digest over the raw result bits (digest_matrices /
    /// digest_transient) — the bit-identity handle used by the journal,
    /// resume verification, and the serve_equivalence invariant.
    std::uint64_t digest = 0;
    /// One scalar headline: peak |Z| entry (sweep) or worst supply-node
    /// excursion from DC (transient).
    double summary = 0;
    std::string error;         ///< last failure message ("" when clean)
    robust::RecoveryReport recovery; ///< serve.* events + engine recoveries

    // Payloads. Empty for Resumed jobs (the journal stores digests, not
    // waveforms — re-run without --resume to regenerate data).
    std::vector<MatrixC> z;    ///< sweep: Z at each requested frequency
    TransientResult transient; ///< transient: recorded waveforms
};

/// A parsed job file.
struct JobFile {
    std::vector<JobSpec> jobs;
};

/// Parse a job-file document. `base_dir` resolves relative "board_file"
/// references (pass the job file's directory). Throws InvalidArgument on
/// malformed documents, unknown fields' values, or duplicate ids.
JobFile parse_jobs(const JsonValue& doc, const std::string& base_dir = "");

/// Read and parse a job file from disk.
JobFile parse_job_file(const std::string& path);

// --- deterministic digests ---------------------------------------------------

inline constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;

/// FNV-1a over a byte range, seedable for chaining.
std::uint64_t fnv1a64(const void* data, std::size_t size,
                      std::uint64_t seed = kFnvOffset) noexcept;

/// Digest of a sweep result: the IEEE-754 bits of every matrix entry, in
/// (frequency, row, column) order. Bit-identical results — and only those —
/// produce equal digests.
std::uint64_t digest_matrices(const std::vector<MatrixC>& z) noexcept;

/// Digest of a transient result: sample times then every probe sample.
std::uint64_t digest_transient(const TransientResult& r) noexcept;

} // namespace pgsi::serve
