#include "serve/job.hpp"

#include <cmath>
#include <cstring>
#include <fstream>
#include <set>
#include <sstream>

#include "common/error.hpp"
#include "si/board_file.hpp"

namespace pgsi::serve {

namespace {

std::string read_text_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw Error("serve: cannot open file: " + path);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

/// Per-job field lookup with "defaults" overlay: the job object wins, the
/// campaign defaults fill the gaps.
class FieldView {
public:
    FieldView(const JsonValue& job, const JsonValue* defaults)
        : job_(job), defaults_(defaults) {}

    const JsonValue* find(std::string_view key) const {
        if (const JsonValue* v = job_.find(key)) return v;
        return defaults_ != nullptr ? defaults_->find(key) : nullptr;
    }
    double num(std::string_view key, double fallback) const {
        const JsonValue* v = find(key);
        return v != nullptr && v->is_number() ? v->number : fallback;
    }
    std::string str(std::string_view key, std::string_view fallback) const {
        const JsonValue* v = find(key);
        return v != nullptr && v->is_string() ? v->string
                                              : std::string(fallback);
    }

private:
    const JsonValue& job_;
    const JsonValue* defaults_;
};

const std::set<std::string, std::less<>> kKnownFields = {
    "id",       "type",    "board",       "board_file", "pitch",
    "interior", "prune",   "vrm_r",       "vrm_l",      "freqs",
    "fmin",     "fmax",    "points",      "ports",      "backend",
    "dt",       "tstop",   "deadline_s",  "max_retries", "backoff_s",
    "backoff_multiplier"};

void check_known_fields(const JsonValue& obj, const std::string& where) {
    for (const auto& [key, value] : obj.object) {
        (void)value;
        if (kKnownFields.find(key) == kKnownFields.end())
            throw InvalidArgument("job file: unknown field \"" + key +
                                  "\" in " + where);
    }
}

SolverBackend parse_backend(const std::string& name, const std::string& id) {
    if (name == "auto") return SolverBackend::Auto;
    if (name == "direct") return SolverBackend::Direct;
    if (name == "iterative") return SolverBackend::Iterative;
    throw InvalidArgument("job " + id + ": unknown backend \"" + name +
                          "\" (auto/direct/iterative)");
}

VectorD parse_freqs(const FieldView& f, const std::string& id) {
    if (const JsonValue* fr = f.find("freqs")) {
        if (!fr->is_array() || fr->array.empty())
            throw InvalidArgument("job " + id +
                                  ": \"freqs\" must be a non-empty array");
        VectorD out;
        out.reserve(fr->array.size());
        for (const JsonValue& v : fr->array) {
            if (!v.is_number())
                throw InvalidArgument("job " + id + ": non-numeric frequency");
            out.push_back(v.number);
        }
        return out;
    }
    const double fmin = f.num("fmin", 1e7);
    const double fmax = f.num("fmax", 1e9);
    const std::size_t points =
        static_cast<std::size_t>(f.num("points", 16));
    if (fmin <= 0 || fmax < fmin || points == 0)
        throw InvalidArgument("job " + id + ": need 0 < fmin <= fmax and "
                              "points >= 1");
    VectorD out(points);
    if (points == 1) {
        out[0] = fmin;
        return out;
    }
    // Log-spaced grid; the exact same expression every time keeps job
    // digests reproducible across platforms with the same libm.
    const double ratio = fmax / fmin;
    for (std::size_t i = 0; i < points; ++i)
        out[i] = fmin * std::pow(ratio, static_cast<double>(i) /
                                            static_cast<double>(points - 1));
    out.back() = fmax;
    return out;
}

std::vector<Point2> parse_ports(const FieldView& f, const std::string& id) {
    const JsonValue* ports = f.find("ports");
    if (ports == nullptr) return {};
    if (!ports->is_array())
        throw InvalidArgument("job " + id + ": \"ports\" must be an array of "
                              "[x, y] pairs");
    std::vector<Point2> out;
    out.reserve(ports->array.size());
    for (const JsonValue& p : ports->array) {
        if (!p.is_array() || p.array.size() != 2 || !p.array[0].is_number() ||
            !p.array[1].is_number())
            throw InvalidArgument("job " + id +
                                  ": each port must be an [x, y] pair");
        out.push_back({p.array[0].number, p.array[1].number});
    }
    return out;
}

JobSpec parse_one_job(const JsonValue& obj, const JsonValue* defaults,
                      const std::string& base_dir, std::size_t index) {
    if (!obj.is_object())
        throw InvalidArgument("job file: each job must be an object");
    check_known_fields(obj, "job " + std::to_string(index));
    const FieldView f(obj, defaults);

    JobSpec spec;
    spec.id = obj.str_or("id", "job" + std::to_string(index + 1));

    const std::string type = f.str("type", "sweep");
    if (type == "sweep")
        spec.kind = JobKind::Sweep;
    else if (type == "transient")
        spec.kind = JobKind::Transient;
    else
        throw InvalidArgument("job " + spec.id + ": unknown type \"" + type +
                              "\" (sweep/transient)");

    if (const JsonValue* board = f.find("board")) {
        if (!board->is_string())
            throw InvalidArgument("job " + spec.id +
                                  ": \"board\" must be a string");
        spec.board_text = board->string;
    } else if (const JsonValue* file = f.find("board_file")) {
        if (!file->is_string())
            throw InvalidArgument("job " + spec.id +
                                  ": \"board_file\" must be a string");
        std::string path = file->string;
        if (!base_dir.empty() && !path.empty() && path[0] != '/')
            path = base_dir + "/" + path;
        spec.board_text = read_text_file(path);
    } else {
        throw InvalidArgument("job " + spec.id +
                              ": needs \"board\" or \"board_file\"");
    }
    // Validate the geometry now: a bad board should fail the parse, not a
    // worker thread deep inside the batch.
    try {
        (void)parse_board_file(spec.board_text);
    } catch (Error& e) {
        e.with_context("in the board of job " + spec.id);
        throw;
    }

    spec.model.mesh_pitch = f.num("pitch", spec.model.mesh_pitch);
    spec.model.interior_nodes = static_cast<std::size_t>(
        f.num("interior", static_cast<double>(spec.model.interior_nodes)));
    spec.model.prune_rel_tol = f.num("prune", spec.model.prune_rel_tol);
    spec.model.vrm_r = f.num("vrm_r", spec.model.vrm_r);
    spec.model.vrm_l = f.num("vrm_l", spec.model.vrm_l);

    if (spec.kind == JobKind::Sweep) {
        spec.freqs_hz = parse_freqs(f, spec.id);
        for (std::size_t i = 0; i + 1 < spec.freqs_hz.size(); ++i)
            if (!(spec.freqs_hz[i] < spec.freqs_hz[i + 1]))
                throw InvalidArgument("job " + spec.id +
                                      ": frequencies must be strictly "
                                      "increasing");
        spec.ports = parse_ports(f, spec.id);
    } else {
        spec.dt = f.num("dt", spec.dt);
        spec.tstop = f.num("tstop", spec.tstop);
        if (spec.dt <= 0 || spec.tstop <= spec.dt)
            throw InvalidArgument("job " + spec.id +
                                  ": need 0 < dt < tstop");
    }

    spec.backend = parse_backend(f.str("backend", "auto"), spec.id);
    spec.deadline_s = f.num("deadline_s", 0);
    spec.max_retries = static_cast<int>(f.num("max_retries", 0));
    spec.backoff_s = f.num("backoff_s", 0);
    spec.backoff_multiplier = f.num("backoff_multiplier", 2.0);
    if (spec.max_retries < 0 || spec.backoff_s < 0 ||
        spec.backoff_multiplier < 1.0)
        throw InvalidArgument("job " + spec.id +
                              ": retry knobs must be non-negative "
                              "(multiplier >= 1)");
    return spec;
}

} // namespace

const char* to_string(JobState state) noexcept {
    switch (state) {
    case JobState::Pending: return "pending";
    case JobState::Completed: return "completed";
    case JobState::Failed: return "failed";
    case JobState::DeadlineExpired: return "deadline_expired";
    case JobState::Cancelled: return "cancelled";
    case JobState::Resumed: return "resumed";
    }
    return "unknown";
}

JobState job_state_from_string(std::string_view name) {
    for (const JobState s :
         {JobState::Pending, JobState::Completed, JobState::Failed,
          JobState::DeadlineExpired, JobState::Cancelled, JobState::Resumed})
        if (name == to_string(s)) return s;
    throw InvalidArgument("unknown job state \"" + std::string(name) + "\"");
}

JobFile parse_jobs(const JsonValue& doc, const std::string& base_dir) {
    if (!doc.is_object())
        throw InvalidArgument("job file: top level must be an object");
    const JsonValue* jobs = doc.find("jobs");
    if (jobs == nullptr || !jobs->is_array() || jobs->array.empty())
        throw InvalidArgument("job file: needs a non-empty \"jobs\" array");
    const JsonValue* defaults = doc.find("defaults");
    if (defaults != nullptr) {
        if (!defaults->is_object())
            throw InvalidArgument("job file: \"defaults\" must be an object");
        check_known_fields(*defaults, "defaults");
    }

    JobFile out;
    out.jobs.reserve(jobs->array.size());
    std::set<std::string> ids;
    for (std::size_t i = 0; i < jobs->array.size(); ++i) {
        JobSpec spec = parse_one_job(jobs->array[i], defaults, base_dir, i);
        if (!ids.insert(spec.id).second)
            throw InvalidArgument("job file: duplicate job id \"" + spec.id +
                                  "\"");
        out.jobs.push_back(std::move(spec));
    }
    return out;
}

JobFile parse_job_file(const std::string& path) {
    const std::size_t slash = path.find_last_of('/');
    const std::string base_dir =
        slash == std::string::npos ? std::string() : path.substr(0, slash);
    return parse_jobs(parse_json_file(path), base_dir);
}

std::uint64_t fnv1a64(const void* data, std::size_t size,
                      std::uint64_t seed) noexcept {
    const auto* p = static_cast<const unsigned char*>(data);
    std::uint64_t h = seed;
    for (std::size_t i = 0; i < size; ++i) {
        h ^= p[i];
        h *= 1099511628211ull;
    }
    return h;
}

std::uint64_t digest_matrices(const std::vector<MatrixC>& z) noexcept {
    std::uint64_t h = kFnvOffset;
    const std::uint64_t n = z.size();
    h = fnv1a64(&n, sizeof n, h);
    for (const MatrixC& m : z) {
        const std::uint64_t dims[2] = {m.rows(), m.cols()};
        h = fnv1a64(dims, sizeof dims, h);
        // std::complex<double> is two contiguous doubles; hashing the raw
        // storage hashes the exact IEEE-754 bits of every entry.
        h = fnv1a64(m.data(), m.rows() * m.cols() * sizeof(Complex), h);
    }
    return h;
}

std::uint64_t digest_transient(const TransientResult& r) noexcept {
    std::uint64_t h = kFnvOffset;
    const std::uint64_t dims[2] = {r.time.size(), r.probes.size()};
    h = fnv1a64(dims, sizeof dims, h);
    h = fnv1a64(r.time.data(), r.time.size() * sizeof(double), h);
    for (const VectorD& s : r.samples)
        h = fnv1a64(s.data(), s.size() * sizeof(double), h);
    return h;
}

} // namespace pgsi::serve
