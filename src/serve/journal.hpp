// Crash-safe batch journal (pgsi::serve): one JSON line per finished job,
// appended and fsync'd before the engine moves on, so a campaign killed at
// any instant can resume with `--resume` and skip exactly the jobs whose
// records reached the disk.
//
// Line format (jobs.jsonl):
//
//   {"id":"sweep-a","state":"completed","attempts":1,"cache_hit":true,
//    "digest":"9f86d081884c7d65","summary":1.25e-2,"wall_s":0.034,
//    "error":""}
//
// The digest is the job's result digest (serve/job.hpp) rendered as 16 hex
// digits — JSON numbers cannot carry 64 bits losslessly. load() tolerates a
// torn final line (the signature of a kill mid-append) and counts skipped
// lines in the "serve.journal.torn_lines" counter; every well-formed line
// is returned in file order, later records for the same id superseding
// earlier ones at the consumer's discretion (the engine keeps the last).
#pragma once

#include <mutex>
#include <string>
#include <vector>

#include "serve/job.hpp"

namespace pgsi::serve {

/// One journal line, schema-stable across sessions.
struct JournalRecord {
    std::string id;
    JobState state = JobState::Pending;
    int attempts = 0;
    bool cache_hit = false;
    std::uint64_t digest = 0;
    double summary = 0;
    double wall_seconds = 0;
    std::string error;
};

/// Project a finished job onto its journal line.
JournalRecord to_journal_record(const JobReport& report);

/// Append-only journal writer. Opens (creating if needed) on construction;
/// every append() writes one line and fsyncs before returning, so a record
/// the caller saw appended survives a crash.
class Journal {
public:
    explicit Journal(const std::string& path);
    ~Journal();
    Journal(const Journal&) = delete;
    Journal& operator=(const Journal&) = delete;

    /// Serialize, write, fsync. Throws pgsi::Error on I/O failure. Safe to
    /// call from multiple threads.
    void append(const JournalRecord& record);

    const std::string& path() const { return path_; }

    /// Parse a journal back. Missing file yields an empty vector; malformed
    /// lines (the torn tail of a killed writer) are skipped and counted in
    /// "serve.journal.torn_lines".
    static std::vector<JournalRecord> load(const std::string& path);

private:
    std::string path_;
    int fd_ = -1;
    std::mutex mu_;
};

} // namespace pgsi::serve
