// Shared plane-model cache of the batch engine (pgsi::serve).
//
// Building a PlaneModel — meshing the board, assembling the BEM operators,
// extracting the equivalent circuit — dominates the cost of small jobs, and
// real campaigns hammer the same few geometries (a decap study sweeps
// placements over one board; a what-if sweep perturbs one parameter at a
// time). The cache shares one immutable PlaneModel per distinct
// (geometry, extraction options) across every job in the process:
//
//  * Keying — model_key() hashes the canonical board-file serialization of
//    the geometry plus the extraction knobs, so two Board objects built
//    through different code paths but describing the same plane share an
//    entry, while any knob that changes the extraction (pitch, interior
//    nodes, pruning, regulator parasitics) forks one.
//  * Byte budget — each entry is charged a structural estimate of its dense
//    payloads (the same Matrix-payload accounting the obs resource recorder
//    audits); when the total passes the budget the least-recently-used
//    entries are evicted. Eviction only drops the cache's reference:
//    jobs still holding the shared_ptr keep their model alive.
//  * Single-flight — concurrent requests for the same key block on the one
//    builder instead of duplicating the most expensive step in the system;
//    a failed build wakes the waiters and the next one retries.
//
// Counters: serve.cache.hits / misses / evictions / single_flight_waits,
// gauge serve.cache.bytes. Fault site "cache.evict" forces an LRU eviction
// on the call where it fires, so eviction is testable without gigabyte
// fixtures.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>

#include "si/cosim.hpp"

namespace pgsi::serve {

/// Cache key of (board geometry, extraction options): FNV-1a over the
/// canonical board-file serialization, the signal-net descriptors (the file
/// format does not carry them, but SsnModel reads them off the cached
/// board), and every SsnModelOptions field.
std::uint64_t model_key(const Board& board, const SsnModelOptions& options);

/// Structural estimate of one model's resident bytes: the dense BEM
/// interaction tables (potential n², inductance b², Maxwell capacitance n²)
/// plus the reduced circuit's dense blocks and branch list.
std::size_t estimated_model_bytes(const PlaneModel& model);

/// Process-shared LRU cache of immutable plane models. All methods are
/// thread safe.
class ModelCache {
public:
    static constexpr std::size_t kDefaultBudget = 256ull << 20;

    explicit ModelCache(std::size_t budget_bytes = kDefaultBudget);

    /// Cumulative counters plus the current footprint.
    struct Stats {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t evictions = 0;
        std::uint64_t single_flight_waits = 0; ///< waits behind a builder
        std::size_t entries = 0;               ///< resident entries now
        std::size_t bytes = 0;                 ///< charged bytes now
        double hit_rate() const noexcept {
            const double total = static_cast<double>(hits + misses);
            return total > 0 ? static_cast<double>(hits) / total : 0.0;
        }
    };

    /// The model for this geometry: cached when present, built (once, even
    /// under concurrent requests) when not. `cache_hit`, when non-null, is
    /// set to whether the model came from the cache. Build failures
    /// propagate to the caller that was building; blocked waiters retry.
    std::shared_ptr<const PlaneModel> acquire(const Board& board,
                                              const SsnModelOptions& options,
                                              bool* cache_hit = nullptr);

    Stats stats() const;
    std::size_t budget_bytes() const;
    /// Re-budget; evicts immediately when the new budget is tighter.
    void set_budget_bytes(std::size_t bytes);
    /// Drop every resident entry (cumulative stats survive).
    void clear();

    /// The process-wide instance batch engines share by default.
    static ModelCache& instance();

private:
    struct Entry {
        std::shared_ptr<const PlaneModel> model; ///< null while building
        std::size_t bytes = 0;
        std::uint64_t tick = 0; ///< last-use stamp for LRU ordering
        bool building = true;
    };

    /// Evict the least-recently-used ready entry other than `protect`
    /// (0 = nothing protected). Returns false when no entry is evictable.
    bool evict_lru_locked(std::uint64_t protect);
    void evict_to_budget_locked(std::uint64_t protect);

    mutable std::mutex mu_;
    std::condition_variable cv_;
    std::map<std::uint64_t, std::shared_ptr<Entry>> entries_;
    std::size_t budget_ = kDefaultBudget;
    std::size_t bytes_ = 0;
    std::uint64_t tick_ = 0;
    Stats stats_;
};

} // namespace pgsi::serve
