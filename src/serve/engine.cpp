#include "serve/engine.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <map>
#include <thread>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "em/surface_impedance.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/journal.hpp"
#include "si/board_file.hpp"

namespace pgsi::serve {

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
        .count();
}

/// Mesh nodes the sweep measures at: explicit port locations, else the
/// driver Vcc pins, else the regulator tie-in.
std::vector<std::size_t> sweep_port_nodes(const PlaneModel& model,
                                          const JobSpec& spec) {
    std::vector<Point2> positions = spec.ports;
    if (positions.empty())
        for (const DriverSite& site : model.board().driver_sites())
            positions.push_back(site.vcc_pin);
    if (positions.empty()) positions.push_back(model.board().vrm_location());
    std::vector<std::size_t> nodes;
    nodes.reserve(positions.size());
    for (const Point2& p : positions)
        nodes.push_back(model.bem().mesh().nearest_node_any(p));
    return nodes;
}

/// One attempt of one job: acquire the model, solve, fill the payload.
/// Throws on failure; cancellation points cover every stage boundary plus
/// whatever the engines poll internally.
void execute_job(const JobSpec& spec, const robust::RecoveryOptions& ropt,
                 ModelCache& cache, JobReport& rep) {
    PGSI_TRACE_SCOPE("serve.job");
    if (ropt.cancel != nullptr) ropt.cancel->poll("serve.job.start");
    const Board board = parse_board_file(spec.board_text);
    bool hit = false;
    const std::shared_ptr<const PlaneModel> model =
        cache.acquire(board, spec.model, &hit);
    rep.cache_hit = hit;
    if (ropt.cancel != nullptr) ropt.cancel->poll("serve.job.model");

    if (spec.kind == JobKind::Sweep) {
        const SurfaceImpedance zs = SurfaceImpedance::from_sheet_resistance(
            board.stackup().sheet_resistance);
        SolverOptions sopt;
        sopt.backend = spec.backend;
        sopt.recovery = ropt;
        const std::unique_ptr<PlaneSolver> solver =
            make_solver(model->bem(), zs, sopt);
        rep.z = solver->sweep_impedance(spec.freqs_hz,
                                        sweep_port_nodes(*model, spec));
        rep.digest = digest_matrices(rep.z);
        double zmax = 0;
        for (const MatrixC& m : rep.z)
            for (std::size_t r = 0; r < m.rows(); ++r)
                for (std::size_t c = 0; c < m.cols(); ++c)
                    zmax = std::max(zmax, std::abs(m(r, c)));
        rep.summary = zmax;
    } else {
        const SsnModel ssn(model);
        TransientResult tr = ssn.simulate(spec.dt, spec.tstop, {}, ropt);
        rep.recovery.merge(tr.recovery);
        rep.digest = digest_transient(tr);
        double excursion = 0;
        for (const NodeId node : tr.probes)
            excursion = std::max(excursion, tr.peak_excursion(node));
        rep.summary = excursion;
        rep.transient = std::move(tr);
    }
}

/// Retry backoff that stays responsive to cancellation: sleeps in short
/// slices, bailing as soon as the token trips.
void backoff_sleep(double seconds, const robust::CancelToken& token) {
    const auto until = std::chrono::steady_clock::now() +
                       std::chrono::duration<double>(seconds);
    while (std::chrono::steady_clock::now() < until) {
        if (token.cancelled()) return;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
}

/// Run one job to a terminal state. Never throws: every outcome, including
/// injected faults and deadline expiry, lands in the report.
void run_one(const JobSpec& spec, robust::CancelToken& token,
             const robust::RecoveryOptions& base, ModelCache& cache,
             JobReport& rep) {
    static obs::Histogram& h_latency = obs::histogram("serve.job.latency_us");
    const auto t0 = std::chrono::steady_clock::now();
    rep.id = spec.id;

    // Deadline containment. The injected variant ("serve.deadline") arms a
    // token that is already expired, which exercises exactly the real
    // expiry path: the first cancellation point aborts the job.
    if (robust::FaultInjector::should_fire("serve.deadline")) {
        token.set_deadline_after(1e-9);
        token.expire_deadline();
    } else if (spec.deadline_s > 0) {
        token.set_deadline_after(spec.deadline_s);
    }

    robust::RecoveryOptions rung = base;
    for (int attempt = 0;; ++attempt) {
        rep.attempts = attempt + 1;
        robust::RecoveryOptions ropt = rung;
        ropt.cancel = &token;
        try {
            if (robust::FaultInjector::should_fire("serve.job"))
                throw NumericalError("fault injected at serve.job (job " +
                                     spec.id + ", attempt " +
                                     std::to_string(attempt + 1) + ")");
            token.poll("serve.job");
            execute_job(spec, ropt, cache, rep);
            rep.state = JobState::Completed;
            break;
        } catch (const Cancelled& e) {
            rep.error = e.what();
            if (token.deadline_expired()) {
                rep.state = JobState::DeadlineExpired;
                robust::note_recovery(&rep.recovery, "serve.deadline",
                                      "job " + spec.id + " abandoned on "
                                      "attempt " +
                                          std::to_string(attempt + 1) + ": " +
                                          token.reason());
            } else {
                rep.state = JobState::Cancelled;
                robust::note_recovery(&rep.recovery, "serve.cancelled",
                                      "job " + spec.id + " cancelled: " +
                                          token.reason());
            }
            break;
        } catch (const std::exception& e) {
            rep.error = e.what();
            if (attempt >= spec.max_retries) {
                rep.state = JobState::Failed;
                break;
            }
            robust::note_recovery(
                &rep.recovery, "serve.retry",
                "attempt " + std::to_string(attempt + 1) + " of job " +
                    spec.id + " failed (" + rep.error +
                    "); retrying at recovery rung " +
                    std::to_string(attempt + 1));
            rung = robust::escalate_one_rung(rung);
            const double backoff =
                spec.backoff_s *
                std::pow(spec.backoff_multiplier, static_cast<double>(attempt));
            if (backoff > 0) backoff_sleep(backoff, token);
        } catch (...) {
            rep.error = "unknown exception";
            rep.state = JobState::Failed;
            break;
        }
    }
    rep.wall_seconds = seconds_since(t0);
    h_latency.record(rep.wall_seconds * 1e6);
    switch (rep.state) {
    case JobState::Completed: ++obs::counter("serve.jobs.completed"); break;
    case JobState::Failed: ++obs::counter("serve.jobs.failed"); break;
    case JobState::DeadlineExpired:
        ++obs::counter("serve.jobs.deadline_expired");
        break;
    case JobState::Cancelled: ++obs::counter("serve.jobs.cancelled"); break;
    default: break;
    }
}

} // namespace

bool BatchResult::all_completed() const noexcept {
    for (const JobReport& r : reports)
        if (r.state != JobState::Completed && r.state != JobState::Resumed)
            return false;
    return true;
}

const JobReport& BatchResult::report(std::string_view id) const {
    for (const JobReport& r : reports)
        if (r.id == id) return r;
    throw InvalidArgument("BatchResult: no job named \"" + std::string(id) +
                          "\"");
}

/// Shared state between run(), the watchdog, and cancel_all(): the live
/// tokens of the campaign in flight.
struct JobQueue::Active {
    std::vector<std::unique_ptr<robust::CancelToken>> tokens; ///< per job
    std::mutex mu;                ///< guards done + cv
    std::condition_variable cv;   ///< wakes the watchdog for shutdown
    bool done = false;
};

JobQueue::JobQueue(BatchOptions options) : opt_(std::move(options)) {}

JobQueue::~JobQueue() = default;

void JobQueue::cancel_all(const std::string& reason) {
    std::shared_ptr<Active> active;
    {
        const std::lock_guard<std::mutex> lock(active_mu_);
        active = active_;
    }
    if (active == nullptr) return;
    for (const auto& token : active->tokens)
        if (token != nullptr) token->cancel(reason);
}

BatchResult JobQueue::run(const std::vector<JobSpec>& jobs) {
    PGSI_TRACE_SCOPE("serve.batch");
    const auto t0 = std::chrono::steady_clock::now();
    {
        std::map<std::string, std::size_t> seen;
        for (const JobSpec& spec : jobs) {
            PGSI_REQUIRE(!spec.id.empty(), "JobQueue: job with empty id");
            PGSI_REQUIRE(seen.emplace(spec.id, 1).second,
                         "JobQueue: duplicate job id \"" + spec.id + "\"");
        }
    }
    PGSI_REQUIRE(!opt_.resume || !opt_.journal_path.empty(),
                 "JobQueue: resume requires a journal path");
    ModelCache& cache =
        opt_.cache != nullptr ? *opt_.cache : ModelCache::instance();

    const std::size_t n = jobs.size();
    BatchResult res;
    res.reports.resize(n);

    // Resume: the last completed journal record per id wins; failed or
    // abandoned records leave the job eligible to run again.
    std::map<std::string, JournalRecord> done;
    if (opt_.resume)
        for (JournalRecord& rec : Journal::load(opt_.journal_path))
            if (rec.state == JobState::Completed) done[rec.id] = std::move(rec);

    std::vector<std::size_t> to_run;
    for (std::size_t i = 0; i < n; ++i) {
        JobReport& rep = res.reports[i];
        rep.id = jobs[i].id;
        const auto it = done.find(rep.id);
        if (it == done.end()) {
            to_run.push_back(i);
            continue;
        }
        const JournalRecord& rec = it->second;
        rep.state = JobState::Resumed;
        rep.attempts = rec.attempts;
        rep.cache_hit = rec.cache_hit;
        rep.digest = rec.digest;
        rep.summary = rec.summary;
        rep.wall_seconds = rec.wall_seconds;
        ++res.stats.resumed;
        ++obs::counter("serve.jobs.resumed");
    }

    std::unique_ptr<Journal> journal;
    if (!opt_.journal_path.empty())
        journal = std::make_unique<Journal>(opt_.journal_path);

    const auto active = std::make_shared<Active>();
    active->tokens.resize(n);
    for (const std::size_t i : to_run)
        active->tokens[i] = std::make_unique<robust::CancelToken>();
    {
        const std::lock_guard<std::mutex> lock(active_mu_);
        active_ = active;
    }

    // The watchdog forces lazy deadline evaluation on every live token so a
    // job stuck inside a long kernel between cancellation points is still
    // marked expired the moment it reaches the next poll — and so that
    // deadline detection latency is bounded by this period, not by the
    // slowest kernel.
    std::thread watchdog([&active, period = opt_.watchdog_period_s] {
        static obs::Counter& c_polls = obs::counter("serve.watchdog.polls");
        std::unique_lock<std::mutex> lock(active->mu);
        while (!active->done) {
            active->cv.wait_for(lock,
                                std::chrono::duration<double>(period));
            if (active->done) break;
            for (const auto& token : active->tokens)
                if (token != nullptr) (void)token->cancelled();
            ++c_polls;
        }
    });

    // The campaign fans out over the shared pool; each job's own kernels
    // run inline on the worker that owns it (nested parallel_for), which is
    // what keeps job results bit-identical to direct single-job solves.
    par::parallel_for(to_run.size(), [&](std::size_t k) {
        const std::size_t i = to_run[k];
        run_one(jobs[i], *active->tokens[i], opt_.recovery, cache,
                res.reports[i]);
        if (journal != nullptr)
            journal->append(to_journal_record(res.reports[i]));
    });

    {
        const std::lock_guard<std::mutex> lock(active->mu);
        active->done = true;
    }
    active->cv.notify_all();
    watchdog.join();
    {
        const std::lock_guard<std::mutex> lock(active_mu_);
        active_.reset();
    }

    for (const std::size_t i : to_run) {
        const JobReport& rep = res.reports[i];
        switch (rep.state) {
        case JobState::Completed: ++res.stats.completed; break;
        case JobState::Failed: ++res.stats.failed; break;
        case JobState::DeadlineExpired: ++res.stats.deadline_expired; break;
        case JobState::Cancelled: ++res.stats.cancelled; break;
        default: break;
        }
        if (rep.attempts > 1)
            res.stats.retries += static_cast<std::size_t>(rep.attempts - 1);
        if (rep.state == JobState::Completed ||
            rep.state == JobState::Failed) {
            if (rep.cache_hit)
                ++res.stats.cache_hits;
            else
                ++res.stats.cache_misses;
        }
    }
    res.stats.wall_seconds = seconds_since(t0);
    return res;
}

} // namespace pgsi::serve
