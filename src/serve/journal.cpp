#include "serve/journal.hpp"

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "common/error.hpp"
#include "obs/metrics.hpp"

namespace pgsi::serve {

namespace {

void append_escaped(std::string& out, const std::string& s) {
    for (const char ch : s) {
        switch (ch) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(ch) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(ch) & 0xff);
                out += buf;
            } else {
                out += ch;
            }
        }
    }
}

} // namespace

JournalRecord to_journal_record(const JobReport& report) {
    JournalRecord rec;
    rec.id = report.id;
    rec.state = report.state;
    rec.attempts = report.attempts;
    rec.cache_hit = report.cache_hit;
    rec.digest = report.digest;
    rec.summary = report.summary;
    rec.wall_seconds = report.wall_seconds;
    rec.error = report.error;
    return rec;
}

Journal::Journal(const std::string& path) : path_(path) {
    // O_RDWR (not O_WRONLY): the torn-tail probe below needs to read the
    // last byte back; O_APPEND still pins every write to the end.
    fd_ = ::open(path.c_str(), O_CREAT | O_RDWR | O_APPEND, 0644);
    if (fd_ < 0)
        throw Error("journal: cannot open " + path + ": " +
                    std::strerror(errno));
    // Heal a torn tail: a writer killed mid-append leaves a final line with
    // no newline, and appending straight after it would glue the next record
    // onto the torn fragment — losing a record that *was* fsync'd. Terminate
    // the fragment so it stays one (skippable) torn line.
    struct ::stat st{};
    char last = '\n';
    if (::fstat(fd_, &st) == 0 && st.st_size > 0 &&
        ::pread(fd_, &last, 1, st.st_size - 1) == 1 && last != '\n') {
        if (::write(fd_, "\n", 1) != 1)
            throw Error("journal: cannot terminate torn tail of " + path +
                        ": " + std::strerror(errno));
    }
}

Journal::~Journal() {
    if (fd_ >= 0) ::close(fd_);
}

void Journal::append(const JournalRecord& record) {
    std::string line = "{\"id\":\"";
    append_escaped(line, record.id);
    line += "\",\"state\":\"";
    line += to_string(record.state);
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "\",\"attempts\":%d,\"cache_hit\":%s,\"digest\":\"%016" PRIx64
                  "\",\"summary\":%.17g,\"wall_s\":%.6g,\"error\":\"",
                  record.attempts, record.cache_hit ? "true" : "false",
                  record.digest, record.summary, record.wall_seconds);
    line += buf;
    append_escaped(line, record.error);
    line += "\"}\n";

    const std::lock_guard<std::mutex> lock(mu_);
    std::size_t off = 0;
    while (off < line.size()) {
        const ssize_t n = ::write(fd_, line.data() + off, line.size() - off);
        if (n < 0) {
            if (errno == EINTR) continue;
            throw Error("journal: write to " + path_ + " failed: " +
                        std::strerror(errno));
        }
        off += static_cast<std::size_t>(n);
    }
    // The durability contract: a record the engine saw appended survives a
    // kill. One fsync per job is noise next to the solve it records.
    if (::fsync(fd_) != 0)
        throw Error("journal: fsync of " + path_ + " failed: " +
                    std::strerror(errno));
}

std::vector<JournalRecord> Journal::load(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) return {};
    std::vector<JournalRecord> out;
    std::string line;
    std::uint64_t torn = 0;
    while (std::getline(in, line)) {
        if (line.empty()) continue;
        JournalRecord rec;
        try {
            const JsonValue v = parse_json(line);
            rec.id = v.at("id").string;
            rec.state = job_state_from_string(v.at("state").string);
            rec.attempts = static_cast<int>(v.num_or("attempts", 0));
            const JsonValue* hit = v.find("cache_hit");
            rec.cache_hit = hit != nullptr && hit->is_bool() && hit->boolean;
            rec.digest = std::strtoull(v.str_or("digest", "0").c_str(),
                                       nullptr, 16);
            rec.summary = v.num_or("summary", 0);
            rec.wall_seconds = v.num_or("wall_s", 0);
            rec.error = v.str_or("error", "");
            if (rec.id.empty()) throw Error("journal record without id");
        } catch (const Error&) {
            // A torn line is the expected signature of a kill mid-append;
            // anything after it is unreachable by the append-only writer,
            // but stay line-tolerant and keep scanning.
            ++torn;
            continue;
        }
        out.push_back(std::move(rec));
    }
    if (torn > 0) obs::counter("serve.journal.torn_lines").add(torn);
    return out;
}

} // namespace pgsi::serve
