// Adaptive frequency-sweep driver: solve few, interpolate the rest.
//
// A plane's Z(f) is smooth between resonances and sharply peaked at them, so
// a uniform fine grid wastes most of its solves on featureless stretches.
// This driver solves a coarse subset of the requested grid, fits each Z
// entry with a rational model (the vector-fitting engine of
// extract/vector_fit), and then *validates* the model where it claims to
// interpolate: the midpoint of every unvalidated gap between solved points
// is solved for real and compared against the model's prediction. Where they
// agree within tolerance the gap is accepted and its remaining points come
// from the model; where they disagree the probe becomes a new sample, the
// model is refit, and the two half-gaps queue for their own probes. The
// refinement therefore concentrates solves exactly where the rational
// interpolant is wrong — around resonances — and the returned error bound
// is backed by actual solves, not by the fit's self-reported residual.
//
// Probes of one round are batched into a single sweep_impedance call so the
// iterative backend's sweep engine (block solves, warm starts, recycling)
// amortizes across them.
#pragma once

#include <vector>

#include "em/solver.hpp"
#include "extract/vector_fit.hpp"

namespace pgsi {

/// Controls for adaptive_sweep_impedance.
struct AdaptiveSweepOptions {
    /// Size of the initial coarse subset (endpoints always included). The
    /// coarse points are spread evenly over the requested grid indices.
    std::size_t coarse_points = 9;
    /// Acceptance threshold for a validation probe: worst entrywise
    /// |Z_model − Z_solved| / scale over the port matrix, where scale floors
    /// at 1e-3 of the largest solved |Z| entry so near-zeros of Z do not
    /// demand absurd relative accuracy.
    double tol = 1e-3;
    /// Hard cap on the number of actual solves (0 = no cap). When the cap
    /// binds, remaining unvalidated gaps are filled from the model anyway;
    /// check AdaptiveSweepResult::solved to see which points are real.
    std::size_t max_solves = 0;
    /// Rational-fit controls. n_poles is clamped to what the current sample
    /// count supports; a degenerate fit retries with fewer poles.
    VectorFitOptions fit;
};

/// Outcome of an adaptive sweep over a requested frequency grid.
struct AdaptiveSweepResult {
    /// Z at every requested frequency: solved points verbatim, the rest
    /// evaluated from the final rational model.
    std::vector<MatrixC> z;
    /// Per requested frequency: true when that point was actually solved.
    std::vector<bool> solved;
    std::size_t solves = 0;      ///< actual solver evaluations performed
    std::size_t refinements = 0; ///< probes that failed validation
    /// Largest validation-probe error among the *accepted* gaps — an
    /// actually-measured bound on the model's interpolation error, not the
    /// fit's own residual.
    double worst_validated_error = 0;
    /// Points filled from the rational model WITHOUT a validating probe
    /// because the max_solves budget ran out first. These carry no measured
    /// error bound; worst_validated_error does not speak for them.
    std::size_t unvalidated_points = 0;
    /// Degradations taken during the sweep ("sweep.budget_exhausted" when
    /// unvalidated_points > 0), so callers see the unvalidated fill without
    /// scraping the solved mask.
    robust::RecoveryReport recovery;
};

/// Adaptively sweep Z(f) over `freqs_hz` (strictly increasing) at the given
/// port nodes, solving only where rational interpolation cannot be
/// validated. Falls back to solving every point when the grid is too small
/// to profit or the rational fit degenerates. Throws InvalidArgument on an
/// empty/unsorted grid or empty port list.
AdaptiveSweepResult adaptive_sweep_impedance(
    const PlaneSolver& solver, const VectorD& freqs_hz,
    const std::vector<std::size_t>& port_nodes,
    const AdaptiveSweepOptions& options = {});

} // namespace pgsi
