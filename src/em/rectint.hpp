// Closed-form potential integrals over rectangles (§3.2, "special techniques
// such as closed form formulas").
//
// The workhorse is
//
//     I(p, R, z) = ∬_R dA' / sqrt((px-x')^2 + (py-y')^2 + z^2)
//
// — the 1/r kernel of the quasi-static Green's functions integrated exactly
// over a source rectangle R, observed from point p offset by z out of the
// source plane. Both the potential-coefficient matrix (charge cells) and the
// partial-inductance matrix (current cells), including all image terms of the
// layered Green's functions, reduce to this primitive.
//
// The corner antiderivative of 1/r is
//     F(u, v) = u·ln(v + r) + v·ln(u + r) − z·atan2(u·v, z·r),   r = |(u,v,z)|
// and the integral is the four-corner alternating sum of F. The logarithms
// are evaluated in a numerically stable form for negative arguments.
#pragma once

#include "geometry/point2.hpp"

namespace pgsi {

/// An axis-aligned rectangle in a conductor plane.
struct Rect {
    double x0 = 0, x1 = 0, y0 = 0, y1 = 0;

    double width() const { return x1 - x0; }
    double height() const { return y1 - y0; }
    double area() const { return width() * height(); }
    Point2 center() const { return {0.5 * (x0 + x1), 0.5 * (y0 + y1)}; }
};

/// Exact ∬_R dA' / r with r = sqrt((px-x')^2+(py-y')^2+z^2). Valid for any
/// observation point, including points inside R (z = 0 included).
double rect_inv_r_integral(Point2 p, const Rect& r, double z);

/// Far-field (point-source) approximation: area / distance-to-center. Used
/// when the observation point is many rectangle diagonals away, where it is
/// accurate to O((d/dist)^2).
double rect_inv_r_point_approx(Point2 p, const Rect& r, double z);

} // namespace pgsi
