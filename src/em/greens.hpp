// Quasi-static layered-media Green's functions (§3.1, §4.1).
//
// Under the quasi-static approximation of §4.1 the retardation factor in the
// exponential kernels is dropped and the scalar/vector potential Green's
// functions become real, frequency-independent image series. Two layered
// configurations cover the paper's structures:
//
//  * Homogeneous(εr) with an optional PEC reference plane at z = 0:
//    conductors embedded in one dielectric over an (optionally infinite)
//    ground plane. Used for power-plane pairs, where the field is confined
//    between the planes (test plane of Fig. 6, the SSN boards of §6.2, the
//    split MCM planes of Fig. 1).
//
//      Gφ(r, r') = 1/(4πε) [ 1/R − 1/R_img ]          (image charge −q at −z')
//      GA(r, r') = μ0/(4π) [ 1/R − 1/R_img ]          (image of a horizontal
//                                                      current is antiparallel)
//
//  * GroundedSlab(εr, h): conductors on the surface of a dielectric slab of
//    thickness h backed by a PEC ground plane — the microstrip configuration
//    (L-shaped patch of §6.1 ex. 1, the coupled microstrip of Fig. 4).
//    Solving Laplace's equation in the spectral domain for a charge on the
//    interface and expanding in powers of e^{-2kh} gives the exact image
//    series
//
//      Gφ(ρ) = 1/(4π ε̄) [ 1/ρ + Σ_{n≥1} a_n / sqrt(ρ² + (2nh)²) ],
//      ε̄ = ε0 (1+εr)/2,   a_n = −(1+K) (−K)^{n−1},   K = (εr−1)/(εr+1).
//
//    Sanity limits: εr = 1 reduces to a single −1 image at depth 2h (plain
//    charge over ground); εr → ∞ gives Gφ → 0 (buried in a conductor).
//    The magnetostatic vector potential does not see the dielectric:
//      GA(ρ) = μ0/(4π) [ 1/ρ − 1/sqrt(ρ² + (2h)²) ].
//
// The class exposes the kernels *integrated over source rectangles* (using
// the closed forms of rectint.hpp), which is what the BEM assembly consumes,
// plus pointwise and 2-D (logarithmic) variants for the transmission-line
// cross-section extractor.
#pragma once

#include <vector>

#include "em/rectint.hpp"
#include "numeric/matrix.hpp"

namespace pgsi {

/// Quasi-static Green's functions for one layered configuration.
class Greens {
public:
    /// Homogeneous dielectric εr; if pec_reference, an infinite ground plane
    /// lies at z = 0 and image terms are added.
    static Greens homogeneous(double eps_r, bool pec_reference);

    /// Microstrip configuration: conductors on a grounded dielectric slab of
    /// thickness h [m]. The image series is truncated when the coefficient
    /// magnitude falls below tol (or at max_images terms).
    static Greens grounded_slab(double eps_r, double h, int max_images = 64,
                                double tol = 1e-7);

    /// ∬_src Gφ dA': scalar-potential kernel integrated over a source
    /// rectangle at height src_z, observed at (obs, obs_z). Units V·m²/C such
    /// that V = Gφ_int · (charge density); multiply by total charge / area
    /// externally as needed.
    double phi_integral(Point2 obs, double obs_z, const Rect& src,
                        double src_z) const;

    /// ∬_src GA dA' for parallel horizontal currents (x-x or y-y); currents
    /// along orthogonal directions do not couple in this geometry.
    double a_integral(Point2 obs, double obs_z, const Rect& src,
                      double src_z) const;

    /// Pointwise 2-D scalar kernel for infinitely long line charges (used by
    /// the transmission-line cross-section extractor): potential per unit
    /// line charge density between lateral positions, up to a common additive
    /// constant. For the slab configuration both points must lie on the
    /// interface.
    double phi_2d(double dx, double obs_z, double src_z) const;

    /// True if this configuration has a PEC reference plane (so capacitance
    /// to the reference exists and the potential is gauge-fixed).
    bool has_reference() const { return pec_reference_; }

    /// Relative permittivity of the (primary) dielectric.
    double eps_r() const { return eps_r_; }

    /// Slab thickness, 0 for homogeneous configurations.
    double slab_h() const { return slab_h_; }

private:
    enum class Kind { Homogeneous, GroundedSlab };
    Kind kind_ = Kind::Homogeneous;
    double eps_r_ = 1.0;
    double slab_h_ = 0.0;
    bool pec_reference_ = false;
    // Image series for the slab scalar potential: offsets 2nh with
    // coefficients a_n (direct term handled separately).
    std::vector<double> slab_coeff_;

    Greens() = default;
};

} // namespace pgsi
