// Analytic cavity-resonator model of a rectangular plane pair.
//
// A rectangular power/ground plane pair (a × b, separation d, dielectric εr)
// with open (magnetic-wall) edges is a 2-D resonant cavity; its port
// impedance has the classic double-cosine modal expansion
//
//   Z_ij(ω) = jωμ0 d / (a·b) · Σ_{m,n} [ χm χn · f_mn(x_i,y_i) · f_mn(x_j,y_j)
//                                        · s_mn(port sizes) ] / (k_mn² − k²)
//
//   f_mn(x,y)  = cos(mπx/a)·cos(nπy/b)
//   k_mn²      = (mπ/a)² + (nπ/b)²
//   k²         = ω² μ0 ε0 εr (1 − j·tanδ_eff)
//   χ0 = 1, χm = 2 (m ≥ 1);   s_mn = sinc-factors of the finite port size
//
// with an effective loss tangent combining the dielectric loss and the
// conductor surface resistance of both planes:
//   tanδ_eff = tanδ + Rs_total / (ω μ0 d).
//
// This closed form is the standard independent reference for plane-pair
// extraction tools; here it cross-checks the BEM + equivalent-circuit flow
// (three-way with the FDTD engine). It is exact for the ideal rectangular
// pair within the same quasi-TEM assumptions as the rest of the library.
#pragma once

#include "geometry/point2.hpp"
#include "numeric/matrix.hpp"

namespace pgsi {

/// Rectangular plane-pair cavity description.
struct CavityModel {
    double a = 0;          ///< plane extent in x [m]
    double b = 0;          ///< plane extent in y [m]
    double d = 0;          ///< plane separation [m]
    double eps_r = 1.0;    ///< relative permittivity
    double tan_delta = 0;  ///< dielectric loss tangent
    double rs_total = 0;   ///< combined sheet resistance of both planes [ohm/sq]
    int max_modes = 40;    ///< modal truncation per axis
    double port_w = 0.5e-3; ///< port patch size in x [m]
    double port_h = 0.5e-3; ///< port patch size in y [m]

    /// Transfer impedance between two port locations at frequency f [Hz];
    /// use p == q for the input impedance.
    Complex impedance(Point2 p, Point2 q, double freq_hz) const;

    /// Full port impedance matrix for a set of port locations.
    MatrixC impedance_matrix(const std::vector<Point2>& ports,
                             double freq_hz) const;

    /// Resonant frequency of the (m, n) mode of the lossless cavity [Hz].
    double mode_frequency(int m, int n) const;

    /// Static plane capacitance ε·a·b/d [F] (the (0,0) mode).
    double static_capacitance() const;
};

} // namespace pgsi
