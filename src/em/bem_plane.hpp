// Boundary-element assembly of the mixed-potential integral equation for
// plane structures (§3.2, eqs (6)–(11)).
//
// Discretization (see geometry/rectmesh.hpp): N charge cells (nodes) and M
// current cells (branches between adjacent nodes). The MPIE becomes
//
//     (Zs + jωL) I − P V = 0            (eq 10)
//     Pᵀ I + jω C V     = J_i           (eq 11)
//
// with
//   * L  — M×M dense partial-inductance matrix of the current cells
//          (vector-potential Green's function integrated over cell pairs),
//   * Zs — M×M diagonal surface-impedance resistance,
//   * C  — N×N Maxwell capacitance = Ppot⁻¹, where Ppot is the dense
//          potential-coefficient matrix (scalar-potential Green's function),
//   * P  — M×N branch-node incidence operator (+1 tail, −1 head): the
//          discrete gradient that turns node potentials into branch EMFs.
//
// Two testing procedures are provided, as in the paper: point matching
// (collocation at cell centers — fast) and Galerkin (test with the basis
// functions — more accurate and stable at higher assembly cost).
#pragma once

#include <array>
#include <optional>
#include <vector>

#include "em/greens.hpp"
#include "em/surface_impedance.hpp"
#include "em/toeplitz_operator.hpp"
#include "geometry/rectmesh.hpp"
#include "numeric/matrix.hpp"

namespace pgsi {

/// Testing (sampling) procedure for the integral equations (§3.2).
enum class Testing {
    PointMatching, ///< delta test functions at cell centers
    Galerkin       ///< test functions equal to the basis functions
};

/// How the P and L fills evaluate the Green's-function integrals.
///
/// The quasi-static kernels depend only on the observation-source
/// displacement and the (z, z') pair, so on a uniform-pitch mesh (congruent
/// cells on one integer lattice) every matrix entry is a lookup into a table
/// with one entry per *distinct displacement* — O(#offsets) ≈ O(N) expensive
/// quadrature/image-series evaluations instead of O(N²).
enum class AssemblyMode {
    Auto,   ///< cache when the mesh is uniform and the table is smaller
            ///< than the direct evaluation count; direct otherwise
    Direct, ///< always evaluate every pair (reference path)
    Cached  ///< require the cache; throws if the mesh is not uniform
};

/// Assembly options.
struct BemOptions {
    Testing testing = Testing::PointMatching;
    /// Gauss order per axis for Galerkin observation integrals.
    int galerkin_order = 2;
    /// Gauss order per axis for the outer integral of partial inductances.
    int l_quad_order = 4;
    /// Displacement-keyed interaction-table policy for the P and L fills.
    AssemblyMode assembly = AssemblyMode::Auto;
};

/// Wall-time telemetry of the lazy BEM assembly steps (seconds; zero until
/// the corresponding matrix is first requested).
struct BemAssemblyStats {
    double potential_seconds = 0;    ///< Ppot fill
    double inductance_seconds = 0;   ///< L fill
    double capacitance_seconds = 0;  ///< C = Ppot⁻¹ factorization/inverse
    double gamma_seconds = 0;        ///< Γ = Pᵀ L⁻¹ P
    bool potential_cached = false;   ///< Ppot fill used the interaction table
    bool inductance_cached = false;  ///< L fill used the interaction table
    std::size_t cache_entries = 0;   ///< distinct offset-table entries evaluated
};

/// Assembled BEM operator for one meshed plane structure. Matrices are
/// assembled lazily and cached; all are frequency independent under the
/// quasi-static approximation of §4.1.
class PlaneBem {
public:
    PlaneBem(RectMesh mesh, Greens greens, BemOptions options = {});

    const RectMesh& mesh() const { return mesh_; }
    const Greens& greens() const { return greens_; }
    const BemOptions& options() const { return options_; }

    std::size_t node_count() const { return mesh_.node_count(); }
    std::size_t branch_count() const { return mesh_.branch_count(); }

    /// Potential-coefficient matrix Ppot (N×N): V = Ppot · Q for total cell
    /// charges Q. Symmetric positive definite.
    const MatrixD& potential_matrix() const;

    /// Maxwell capacitance matrix C = Ppot⁻¹ (N×N).
    const MatrixD& maxwell_capacitance() const;

    /// Partial-inductance matrix L (M×M) of the current cells. Symmetric
    /// positive definite; orthogonal (x/y) cells do not couple.
    const MatrixD& inductance_matrix() const;

    /// DC branch resistances [ohm]: sheet resistance × length / width.
    const VectorD& branch_resistance() const;

    /// Dense incidence matrix P (M×N): row b has +1 at n1(b), −1 at n2(b).
    MatrixD incidence_dense() const;

    /// Nodal inverse-inductance matrix Γ = Pᵀ L⁻¹ P (N×N). Laplacian-like:
    /// symmetric, rows sum to zero. The paper's (Pᵀ L⁻¹ P) of eq (16).
    const MatrixD& gamma() const;

    /// Nodal DC conductance Laplacian G = Pᵀ Zs⁻¹ P (N×N). Requires a lossy
    /// sheet (nonzero sheet resistance on every meshed shape).
    const MatrixD& dc_conductance() const;

    /// Whether every element family (charge cells plus both current-cell
    /// directions) sits on a uniform integer lattice — the structural
    /// precondition for the matrix-free block-Toeplitz operators.
    bool uniform_lattice() const;

    /// Applier of Ppot behind the InteractionOperator interface: FFT-based
    /// matrix-free when uniform_lattice() and the assembly mode is not
    /// Direct, dense fallback (forcing the Ppot fill) otherwise.
    const InteractionOperator& potential_operator() const;

    /// Applier of L (same policy as potential_operator()). The two branch
    /// directions form separate Toeplitz families; cross-direction entries
    /// are structurally zero.
    const InteractionOperator& inductance_operator() const;

    /// Per-stage assembly wall times observed so far.
    const BemAssemblyStats& stats() const { return stats_; }

private:
    /// Branch indices and lattices of the two current-cell directions.
    struct BranchFamilies {
        std::array<std::vector<std::size_t>, 2> idx; ///< global branch ids
        std::array<Lattice, 2> lat;
        bool uniform = false;
    };

    RectMesh mesh_;
    Greens greens_;
    BemOptions options_;

    mutable std::optional<MatrixD> ppot_;
    mutable std::optional<MatrixD> cmax_;
    mutable std::optional<MatrixD> l_;
    mutable std::optional<VectorD> rbranch_;
    mutable std::optional<MatrixD> gamma_;
    mutable std::optional<MatrixD> gdc_;
    mutable std::optional<Lattice> node_lat_;
    mutable std::optional<BranchFamilies> branch_fam_;
    mutable std::optional<std::vector<double>> ptable_;
    mutable std::optional<std::vector<double>> ltable_[2];
    mutable std::optional<InteractionOperator> pop_;
    mutable std::optional<InteractionOperator> lop_;
    mutable BemAssemblyStats stats_;

    void assemble_potential() const;
    void assemble_inductance() const;
    const Lattice& node_lattice() const;
    const BranchFamilies& branch_families() const;
    const std::vector<double>& potential_table() const;
    const std::vector<double>& inductance_table(int d) const;
};

} // namespace pgsi
