// Matrix-free application of the BEM interaction matrices (P and L) via
// circulant embedding of the displacement table plus FFT.
//
// On a uniform-pitch mesh the potential-coefficient and partial-inductance
// matrices are (multilevel) block-Toeplitz: entry (obs, src) depends only on
// the integer lattice displacement and the (z, z') layer pair — exactly the
// structure the displacement-keyed assembly cache exploits. Instead of
// expanding the table into a dense N×N matrix (O(N²) storage) and applying
// it in O(N²), each z-layer pair's offset table is embedded into a circulant
// kernel on an Nx×Ny grid (power-of-two dims ≥ 2·span+1 so circular
// convolution never wraps into occupied sites) whose FFT is precomputed
// once. A matrix-vector product is then
//
//     scatter x to the grid → FFT → multiply by the kernel spectrum →
//     inverse FFT → gather at the element sites
//
// per layer pair: O(N log N) work and O(grid) memory. Meshes with holes or
// irregular outlines simply leave grid sites unoccupied. The result equals
// the dense product up to FFT rounding (~1e-14 relative).
//
// InteractionOperator is the uniform front the solvers consume: it applies
// either a set of Toeplitz element families (x/y current cells are separate,
// mutually uncoupled families) or a plain dense matrix on meshes without the
// lattice structure.
#pragma once

#include <vector>

#include "em/interaction_lattice.hpp"
#include "numeric/fft.hpp"
#include "numeric/matrix.hpp"

namespace pgsi {

/// O(N log N) applier for one congruent element family on a uniform lattice.
class ToeplitzFamily {
public:
    /// lat must be uniform; table is the build_interaction_table layout.
    ToeplitzFamily(Lattice lat, std::vector<double> table);

    std::size_t count() const { return lat_.count(); }

    /// y = T x over the family's elements (both of size count()).
    void apply(const Complex* x, Complex* y) const;

    /// Exact table entry of the (obs, src) element pair.
    double entry(std::size_t obs, std::size_t src) const {
        return table_[table_index(lat_, obs, src)];
    }

    /// Grid memory (complex entries) one application allocates.
    std::size_t grid_size() const { return nx_ * ny_ * lat_.zs.size(); }

private:
    Lattice lat_;
    std::vector<double> table_;
    std::size_t nx_ = 1, ny_ = 1, nz_ = 1;
    std::vector<std::size_t> site_;   ///< element → grid slot
    std::vector<VectorC> kernel_hat_; ///< spectra, indexed zo * nz + zsrc
    Fft fx_, fy_;
};

/// One assembled interaction matrix behind a uniform apply/entry interface:
/// matrix-free (Toeplitz families) on uniform meshes, dense fallback
/// otherwise. Cross-family entries are structurally zero.
class InteractionOperator {
public:
    /// Matrix-free form. idx[f] maps family-f-local element order to global
    /// indices; the families must partition [0, size).
    static InteractionOperator toeplitz(std::vector<ToeplitzFamily> families,
                                        std::vector<std::vector<std::size_t>> idx,
                                        std::size_t size);

    /// Dense form over an externally owned matrix (must outlive the operator).
    static InteractionOperator dense(const MatrixD* m);

    std::size_t size() const { return size_; }
    bool matrix_free() const { return dense_ == nullptr; }

    /// y = A x (y is resized and overwritten).
    void apply(const VectorC& x, VectorC& y) const;

    /// Exact matrix entry (table lookup or dense read).
    double entry(std::size_t i, std::size_t j) const;

private:
    InteractionOperator() = default;

    std::size_t size_ = 0;
    const MatrixD* dense_ = nullptr;
    std::vector<ToeplitzFamily> families_;
    std::vector<std::vector<std::size_t>> idx_;
    std::vector<int> family_of_;         ///< global index → family
    std::vector<std::size_t> local_of_;  ///< global index → family-local index
};

} // namespace pgsi
