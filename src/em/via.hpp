// Via parasitics (§3.1: "the planes and signal traces are connected to each
// other and to external power supplies through vias or ground pins").
//
// Engineering closed forms for a plated through-via crossing a plane pair:
//
//   L ≈ (µ0/2π) · h · [ ln(4h/d) + 1 ]          barrel partial inductance
//   R = ρ · h / (π · t · (d − t))               plated-barrel DC resistance
//   C ≈ 2π ε0 εr · h / ln(D_antipad / D_pad)    coaxial pad/antipad capacitance
//
// with h the barrel length, d the drill diameter, t the plating thickness.
// These are the standard first-order models used in PDN tools; the stamp
// helper realizes the via as a series R–L with half the capacitance at each
// end.
#pragma once

#include "circuit/netlist.hpp"

namespace pgsi {

/// Geometry/material description of a plated via.
struct ViaSpec {
    double length = 1.6e-3;        ///< barrel length h [m]
    double drill = 0.3e-3;         ///< drill diameter d [m]
    double plating = 25e-6;        ///< plating thickness t [m]
    double pad = 0.6e-3;           ///< pad diameter [m]
    double antipad = 1.0e-3;       ///< antipad (clearance) diameter [m]
    double eps_r = 4.5;            ///< dielectric around the barrel
    double resistivity = 1.72e-8;  ///< barrel metal resistivity [ohm·m] (Cu)

    /// Barrel partial inductance [H].
    double inductance() const;
    /// Barrel DC resistance [ohm].
    double resistance() const;
    /// Total pad/antipad capacitance [F].
    double capacitance() const;
};

/// Stamp a via between `top` and `bottom`, with the pad capacitances
/// returned to `ref`. Element names are prefixed by `name`.
void stamp_via(Netlist& nl, const std::string& name, NodeId top, NodeId bottom,
               NodeId ref, const ViaSpec& via);

} // namespace pgsi
