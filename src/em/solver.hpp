// Direct frequency-domain solution of the discretized MPIE system (§3.2).
//
// At each frequency the full coupled system
//     (Zs(ω) + jωL) I = P V,    Pᵀ I + jω C V = J
// is solved without the equivalent-circuit reduction of §4: the only
// approximation retained is the quasi-static (non-retarded) Green's function.
// This is the in-house reference against which the extracted RLC macromodel
// is validated (the role the measurement and full-wave data play in §6.1).
#pragma once

#include <vector>

#include "em/bem_plane.hpp"

namespace pgsi {

/// Direct sweep solver over an assembled PlaneBem.
class DirectSolver {
public:
    /// zs: frequency-dependent surface impedance applied to all branches
    /// (scaled by each branch's length/width). Pass a default-constructed
    /// SurfaceImpedance for the lossless case.
    DirectSolver(const PlaneBem& bem, SurfaceImpedance zs);

    /// Full N×N nodal admittance matrix Y(ω) = jωC + Pᵀ(Zs+jωL)⁻¹P.
    MatrixC nodal_admittance(double freq_hz) const;

    /// Impedance matrix seen at the given mesh nodes (all other nodes open):
    /// the port submatrix of Y(ω)⁻¹.
    MatrixC port_impedance(double freq_hz,
                           const std::vector<std::size_t>& port_nodes) const;

    /// Convenience sweep: Z(f) for each frequency in freqs_hz.
    std::vector<MatrixC> sweep_impedance(
        const VectorD& freqs_hz, const std::vector<std::size_t>& port_nodes) const;

private:
    const PlaneBem& bem_;
    SurfaceImpedance zs_;
};

} // namespace pgsi
