// Direct frequency-domain solution of the discretized MPIE system (§3.2).
//
// At each frequency the full coupled system
//     (Zs(ω) + jωL) I = P V,    Pᵀ I + jω C V = J
// is solved without the equivalent-circuit reduction of §4: the only
// approximation retained is the quasi-static (non-retarded) Green's function.
// This is the in-house reference against which the extracted RLC macromodel
// is validated (the role the measurement and full-wave data play in §6.1).
#pragma once

#include <memory>
#include <mutex>
#include <vector>

#include "common/robust.hpp"
#include "em/bem_plane.hpp"
#include "numeric/gmres.hpp"

namespace pgsi {

/// Which frequency-domain solver implementation runs a sweep.
enum class SolverBackend {
    Auto,     ///< Iterative when the mesh supports the matrix-free operators
              ///< and is large enough to profit; Direct otherwise
    Direct,   ///< dense LU per frequency (reference path)
    Iterative ///< FFT-accelerated matrix-free GMRES per port column
};

/// Preconditioner applied inside the iterative backend's GMRES.
enum class PreconditionerKind {
    Diagonal,      ///< Jacobi on the branch system (cheapest, weak)
    NearFieldBlock ///< block-Jacobi over geometric tiles of current cells
};

/// Backend selection and iterative-path tuning knobs.
struct SolverOptions {
    SolverBackend backend = SolverBackend::Auto;
    /// Auto picks Iterative at or above this many mesh nodes (when the mesh
    /// is uniform-lattice and assembly is not Direct).
    std::size_t auto_node_threshold = 400;
    PreconditionerKind preconditioner = PreconditionerKind::NearFieldBlock;
    /// Edge length of a near-field preconditioner tile, in mesh cells. Each
    /// tile gathers the current cells whose midpoints fall in a square this
    /// many pitches wide and factors their dense coupling block. Tiles must
    /// be large enough to capture the local plaquette loop currents; below
    /// ~8 cells the block approximation degrades visibly on stacked or
    /// multi-island meshes.
    std::size_t precond_tile_cells = 10;
    GmresOptions gmres; ///< restart / iteration budget / target residual
    /// An iterative solve whose final true relative residual exceeds this
    /// is either recovered (preconditioner escalation, then dense-LU
    /// fallback, per `recovery`) or raises NumericalError instead of
    /// returning a silently inaccurate Z.
    double fail_tol = 1e-8;
    /// Recovery policy of the iterative backend. Under Recover (default) a
    /// stalled GMRES column escalates Diagonal → NearFieldBlock and finally
    /// falls back to the dense direct solver for that frequency; Strict
    /// preserves the throw-on-stall behavior.
    robust::RecoveryOptions recovery;
};

/// Common interface of the frequency-domain plane solvers: Z-parameters at
/// chosen mesh nodes, one frequency at a time or swept in parallel.
class PlaneSolver {
public:
    virtual ~PlaneSolver() = default;

    /// Short stable identifier ("direct" / "iterative") for logs and JSON.
    virtual const char* backend_name() const = 0;

    /// Impedance matrix seen at the given mesh nodes (all other nodes open).
    virtual MatrixC port_impedance(
        double freq_hz, const std::vector<std::size_t>& port_nodes) const = 0;

    /// Z(f) for each frequency; points are independent solves and run in
    /// parallel on the shared pgsi::par pool.
    virtual std::vector<MatrixC> sweep_impedance(
        const VectorD& freqs_hz,
        const std::vector<std::size_t>& port_nodes) const = 0;
};

/// Construct the backend selected by `options` (resolving Auto against the
/// mesh size and lattice structure). The PlaneBem and SurfaceImpedance must
/// outlive the returned solver.
std::unique_ptr<PlaneSolver> make_solver(const PlaneBem& bem,
                                         SurfaceImpedance zs,
                                         const SolverOptions& options = {});

/// Cumulative telemetry of a DirectSolver across every frequency point it
/// has processed (fill/factor/solve wall seconds plus work counts).
struct DirectSolverStats {
    std::size_t frequencies = 0;      ///< nodal_admittance evaluations
    std::size_t factorizations = 0;   ///< dense LU factorizations
    std::size_t solves = 0;           ///< triangular solves (one per column)
    double fill_seconds = 0;          ///< branch-impedance matrix fill
    double factor_seconds = 0;        ///< LU factorization
    double solve_seconds = 0;         ///< back-substitution + Y accumulation
};

/// Direct sweep solver over an assembled PlaneBem.
class DirectSolver : public PlaneSolver {
public:
    /// zs: frequency-dependent surface impedance applied to all branches
    /// (scaled by each branch's length/width). Pass a default-constructed
    /// SurfaceImpedance for the lossless case.
    DirectSolver(const PlaneBem& bem, SurfaceImpedance zs);

    const char* backend_name() const override { return "direct"; }

    /// Full N×N nodal admittance matrix Y(ω) = jωC + Pᵀ(Zs+jωL)⁻¹P.
    MatrixC nodal_admittance(double freq_hz) const;

    /// Impedance matrix seen at the given mesh nodes (all other nodes open):
    /// the port columns of Y(ω)⁻¹ restricted to the port rows, computed by a
    /// multi-RHS solve against the |ports| unit vectors (never the full
    /// inverse).
    MatrixC port_impedance(
        double freq_hz,
        const std::vector<std::size_t>& port_nodes) const override;

    /// Sweep: Z(f) for each frequency in freqs_hz. Frequency points are
    /// independent solves and run in parallel on the shared pgsi::par pool
    /// (the frequency-independent BEM matrices are assembled up front).
    std::vector<MatrixC> sweep_impedance(
        const VectorD& freqs_hz,
        const std::vector<std::size_t>& port_nodes) const override;

    /// Telemetry accumulated over every call on this solver so far. Do not
    /// read while a sweep is in flight.
    const DirectSolverStats& stats() const { return stats_; }

private:
    const PlaneBem& bem_;
    SurfaceImpedance zs_;
    mutable std::mutex stats_mu_; // sweeps update stats_ from pool workers
    mutable DirectSolverStats stats_;
};

} // namespace pgsi
