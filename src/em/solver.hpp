// Direct frequency-domain solution of the discretized MPIE system (§3.2).
//
// At each frequency the full coupled system
//     (Zs(ω) + jωL) I = P V,    Pᵀ I + jω C V = J
// is solved without the equivalent-circuit reduction of §4: the only
// approximation retained is the quasi-static (non-retarded) Green's function.
// This is the in-house reference against which the extracted RLC macromodel
// is validated (the role the measurement and full-wave data play in §6.1).
#pragma once

#include <memory>
#include <mutex>
#include <vector>

#include "common/robust.hpp"
#include "em/bem_plane.hpp"
#include "numeric/gmres.hpp"

namespace pgsi {

/// Which frequency-domain solver implementation runs a sweep.
enum class SolverBackend {
    Auto,     ///< Iterative when the mesh supports the matrix-free operators
              ///< and is large enough to profit; Direct otherwise
    Direct,   ///< dense LU per frequency (reference path)
    Iterative ///< FFT-accelerated matrix-free GMRES per port column
};

/// Preconditioner applied inside the iterative backend's GMRES.
enum class PreconditionerKind {
    Diagonal,      ///< Jacobi on the branch system (cheapest, weak)
    NearFieldBlock ///< block-Jacobi over geometric tiles of current cells
};

/// Sweep-engine knobs of the iterative backend. Multi-frequency sweeps run
/// sequentially in a multilevel (bisection) frequency order so each point
/// can reuse Krylov work from its predecessors: the port columns of one
/// frequency solve as a single block against a shared Arnoldi basis, and
/// each new frequency warm-starts from a recycled subspace spanning the
/// solutions at already-solved frequencies. Because the bisection order
/// brackets every later point between solved neighbors, the warm-start
/// least-squares projection interpolates the analytic solution manifold
/// x(ω) instead of extrapolating it, and A(ω) is affine in jω so the
/// subspace re-projects at any frequency with no operator applications
/// (the frequency-independent component products are cached). All
/// cross-frequency decisions are made serially, so sweep results stay
/// bitwise independent of the thread count; the FFT/tile kernels inside
/// each point still use the shared pool.
struct SweepOptions {
    /// Route sweep_impedance calls with 2+ points through the sweep engine.
    /// Off: every frequency is an independent cold solve fanned out over the
    /// pool (the pre-engine behavior).
    bool engine = true;
    /// Solve all port columns of a frequency as one multi-RHS block GMRES
    /// (shared Arnoldi basis, per-column convergence, deflation). Off: one
    /// restarted GMRES per column. Applies to single-point solves too.
    bool block_solve = true;
    /// Seed each frequency's columns from the recycled subspace (or, with
    /// recycle_dim == 0, from the previous frequency's solutions verbatim).
    bool warm_start = true;
    /// Retained recycled-subspace dimension: the most recent solution
    /// vectors, orthonormalized, with their operator component products
    /// cached so re-projecting at a new frequency costs no matvecs. Must
    /// sit above the solution manifold's numerical rank over the band
    /// (typically 20–40 for a decade-wide plane sweep) for deep warm
    /// starts; below it the eviction churn discards the bracketing
    /// solutions the projection needs.
    /// 0 disables recycling (plain previous-solution warm starts remain).
    std::size_t recycle_dim = 48;
};

/// Backend selection and iterative-path tuning knobs.
struct SolverOptions {
    SolverBackend backend = SolverBackend::Auto;
    /// Auto picks Iterative at or above this many mesh nodes (when the mesh
    /// is uniform-lattice and assembly is not Direct).
    std::size_t auto_node_threshold = 400;
    PreconditionerKind preconditioner = PreconditionerKind::NearFieldBlock;
    /// Edge length of a near-field preconditioner tile, in mesh cells. Each
    /// tile gathers the current cells whose midpoints fall in a square this
    /// many pitches wide and factors their dense coupling block. Tiles must
    /// be large enough to capture the local plaquette loop currents; below
    /// ~8 cells the block approximation degrades visibly on stacked or
    /// multi-island meshes.
    std::size_t precond_tile_cells = 10;
    GmresOptions gmres; ///< restart / iteration budget / target residual
    /// An iterative solve whose final true relative residual exceeds this
    /// is either recovered (preconditioner escalation, then dense-LU
    /// fallback, per `recovery`) or raises NumericalError instead of
    /// returning a silently inaccurate Z.
    double fail_tol = 1e-8;
    /// Recovery policy of the iterative backend. Under Recover (default) a
    /// stalled GMRES column escalates Diagonal → NearFieldBlock and finally
    /// falls back to the dense direct solver for that frequency; Strict
    /// preserves the throw-on-stall behavior. An escalated preconditioner is
    /// sticky: later frequencies on the same solver start from the stronger
    /// kind instead of re-paying the stall.
    robust::RecoveryOptions recovery;
    /// Sweep-engine behavior (block solves, warm starts, recycling).
    SweepOptions sweep;
};

/// Common interface of the frequency-domain plane solvers: Z-parameters at
/// chosen mesh nodes, one frequency at a time or swept in parallel.
class PlaneSolver {
public:
    virtual ~PlaneSolver() = default;

    /// Short stable identifier ("direct" / "iterative") for logs and JSON.
    virtual const char* backend_name() const = 0;

    /// Impedance matrix seen at the given mesh nodes (all other nodes open).
    virtual MatrixC port_impedance(
        double freq_hz, const std::vector<std::size_t>& port_nodes) const = 0;

    /// Z(f) for each frequency; points are independent solves and run in
    /// parallel on the shared pgsi::par pool.
    virtual std::vector<MatrixC> sweep_impedance(
        const VectorD& freqs_hz,
        const std::vector<std::size_t>& port_nodes) const = 0;
};

/// Construct the backend selected by `options` (resolving Auto against the
/// mesh size and lattice structure). The PlaneBem and SurfaceImpedance must
/// outlive the returned solver.
std::unique_ptr<PlaneSolver> make_solver(const PlaneBem& bem,
                                         SurfaceImpedance zs,
                                         const SolverOptions& options = {});

/// Cumulative telemetry of a DirectSolver across every frequency point it
/// has processed (fill/factor/solve wall seconds plus work counts).
struct DirectSolverStats {
    std::size_t frequencies = 0;      ///< nodal_admittance evaluations
    std::size_t factorizations = 0;   ///< dense LU factorizations
    std::size_t solves = 0;           ///< triangular solves (one per column)
    double fill_seconds = 0;          ///< branch-impedance matrix fill
    double factor_seconds = 0;        ///< LU factorization
    double solve_seconds = 0;         ///< back-substitution + Y accumulation
};

/// Direct sweep solver over an assembled PlaneBem.
class DirectSolver : public PlaneSolver {
public:
    /// zs: frequency-dependent surface impedance applied to all branches
    /// (scaled by each branch's length/width). Pass a default-constructed
    /// SurfaceImpedance for the lossless case. `recovery` carries the
    /// cooperative CancelToken (polled once per frequency point); the dense
    /// path has no numerical ladder of its own.
    DirectSolver(const PlaneBem& bem, SurfaceImpedance zs,
                 robust::RecoveryOptions recovery = {});

    const char* backend_name() const override { return "direct"; }

    /// Full N×N nodal admittance matrix Y(ω) = jωC + Pᵀ(Zs+jωL)⁻¹P.
    MatrixC nodal_admittance(double freq_hz) const;

    /// Impedance matrix seen at the given mesh nodes (all other nodes open):
    /// the port columns of Y(ω)⁻¹ restricted to the port rows, computed by a
    /// multi-RHS solve against the |ports| unit vectors (never the full
    /// inverse).
    MatrixC port_impedance(
        double freq_hz,
        const std::vector<std::size_t>& port_nodes) const override;

    /// Sweep: Z(f) for each frequency in freqs_hz. Frequency points are
    /// independent solves and run in parallel on the shared pgsi::par pool
    /// (the frequency-independent BEM matrices are assembled up front).
    std::vector<MatrixC> sweep_impedance(
        const VectorD& freqs_hz,
        const std::vector<std::size_t>& port_nodes) const override;

    /// Telemetry accumulated over every call on this solver so far. Do not
    /// read while a sweep is in flight.
    const DirectSolverStats& stats() const { return stats_; }

private:
    const PlaneBem& bem_;
    SurfaceImpedance zs_;
    robust::RecoveryOptions recovery_;
    mutable std::mutex stats_mu_; // sweeps update stats_ from pool workers
    mutable DirectSolverStats stats_;
};

} // namespace pgsi
