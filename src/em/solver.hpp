// Direct frequency-domain solution of the discretized MPIE system (§3.2).
//
// At each frequency the full coupled system
//     (Zs(ω) + jωL) I = P V,    Pᵀ I + jω C V = J
// is solved without the equivalent-circuit reduction of §4: the only
// approximation retained is the quasi-static (non-retarded) Green's function.
// This is the in-house reference against which the extracted RLC macromodel
// is validated (the role the measurement and full-wave data play in §6.1).
#pragma once

#include <mutex>
#include <vector>

#include "em/bem_plane.hpp"

namespace pgsi {

/// Cumulative telemetry of a DirectSolver across every frequency point it
/// has processed (fill/factor/solve wall seconds plus work counts).
struct DirectSolverStats {
    std::size_t frequencies = 0;      ///< nodal_admittance evaluations
    std::size_t factorizations = 0;   ///< dense LU factorizations
    std::size_t solves = 0;           ///< triangular solves (one per column)
    double fill_seconds = 0;          ///< branch-impedance matrix fill
    double factor_seconds = 0;        ///< LU factorization
    double solve_seconds = 0;         ///< back-substitution + Y accumulation
};

/// Direct sweep solver over an assembled PlaneBem.
class DirectSolver {
public:
    /// zs: frequency-dependent surface impedance applied to all branches
    /// (scaled by each branch's length/width). Pass a default-constructed
    /// SurfaceImpedance for the lossless case.
    DirectSolver(const PlaneBem& bem, SurfaceImpedance zs);

    /// Full N×N nodal admittance matrix Y(ω) = jωC + Pᵀ(Zs+jωL)⁻¹P.
    MatrixC nodal_admittance(double freq_hz) const;

    /// Impedance matrix seen at the given mesh nodes (all other nodes open):
    /// the port submatrix of Y(ω)⁻¹.
    MatrixC port_impedance(double freq_hz,
                           const std::vector<std::size_t>& port_nodes) const;

    /// Sweep: Z(f) for each frequency in freqs_hz. Frequency points are
    /// independent solves and run in parallel on the shared pgsi::par pool
    /// (the frequency-independent BEM matrices are assembled up front).
    std::vector<MatrixC> sweep_impedance(
        const VectorD& freqs_hz, const std::vector<std::size_t>& port_nodes) const;

    /// Telemetry accumulated over every call on this solver so far. Do not
    /// read while a sweep is in flight.
    const DirectSolverStats& stats() const { return stats_; }

private:
    const PlaneBem& bem_;
    SurfaceImpedance zs_;
    mutable std::mutex stats_mu_; // sweeps update stats_ from pool workers
    mutable DirectSolverStats stats_;
};

} // namespace pgsi
