#include "em/sweep.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/stream.hpp"
#include "obs/trace.hpp"

namespace pgsi {

namespace {

// Fit one Z entry over the solved samples. The fit order is clamped to what
// the sample count can support (each pole-relocation pass solves a least
// squares with ~3np/2 unknowns against 2ns real equations), and a degenerate
// system retries with fewer poles instead of giving up outright.
RationalFit fit_entry(const VectorD& fs, const VectorC& h,
                      const VectorFitOptions& base) {
    int np = std::min<int>(
        base.n_poles, static_cast<int>((2 * fs.size() - 2) / 3));
    np -= np % 2; // poles come in conjugate pairs
    for (; np >= 2; np -= 2) {
        VectorFitOptions o = base;
        o.n_poles = np;
        try {
            return vector_fit(fs, h, o);
        } catch (const NumericalError&) {
            // Singular least squares at this order; retry lower.
        }
    }
    throw NumericalError("adaptive_sweep: rational fit degenerated");
}

} // namespace

AdaptiveSweepResult adaptive_sweep_impedance(
    const PlaneSolver& solver, const VectorD& freqs_hz,
    const std::vector<std::size_t>& port_nodes,
    const AdaptiveSweepOptions& options) {
    PGSI_REQUIRE(!freqs_hz.empty(), "adaptive_sweep: no frequencies given");
    PGSI_REQUIRE(!port_nodes.empty(), "adaptive_sweep: no port nodes given");
    PGSI_REQUIRE(options.tol > 0, "adaptive_sweep: tol must be positive");
    for (std::size_t i = 0; i + 1 < freqs_hz.size(); ++i)
        PGSI_REQUIRE(freqs_hz[i] < freqs_hz[i + 1],
                     "adaptive_sweep: frequencies must be strictly increasing");
    PGSI_TRACE_SCOPE("em.sweep.adaptive");

    static obs::Counter& c_solves = obs::counter("em.sweep.adaptive_solves");
    static obs::Counter& c_refines =
        obs::counter("em.sweep.adaptive_refinements");
    const std::size_t sid = obs::streams_enabled()
                                ? obs::stream_open("em.sweep.adaptive")
                                : obs::kStreamNone;

    const std::size_t nf = freqs_hz.size();
    const std::size_t p = port_nodes.size();
    AdaptiveSweepResult res;
    res.z.resize(nf);
    res.solved.assign(nf, false);

    double zmax = 0; // largest solved |Z| entry, floors the error scale
    auto solve_batch = [&](const std::vector<std::size_t>& idx) {
        if (idx.empty()) return;
        VectorD fs(idx.size());
        for (std::size_t i = 0; i < idx.size(); ++i) fs[i] = freqs_hz[idx[i]];
        std::vector<MatrixC> zs = solver.sweep_impedance(fs, port_nodes);
        for (std::size_t i = 0; i < idx.size(); ++i) {
            for (std::size_t r = 0; r < p; ++r)
                for (std::size_t c = 0; c < p; ++c)
                    zmax = std::max(zmax, std::abs(zs[i](r, c)));
            res.z[idx[i]] = std::move(zs[i]);
            res.solved[idx[i]] = true;
        }
        res.solves += idx.size();
        c_solves.add(idx.size());
    };
    auto solve_all_remaining = [&]() {
        std::vector<std::size_t> idx;
        for (std::size_t i = 0; i < nf; ++i)
            if (!res.solved[i]) idx.push_back(i);
        solve_batch(idx);
    };

    // Grids too small for the coarse-plus-probes machinery to save anything
    // are solved outright (every probe would touch every point anyway).
    const std::size_t nc =
        std::max<std::size_t>(2, std::min(options.coarse_points, nf));
    if (nf <= nc + 2) {
        solve_all_remaining();
        return res;
    }

    // Coarse subset: evenly spread over the grid indices, endpoints pinned.
    std::vector<std::size_t> coarse;
    for (std::size_t i = 0; i < nc; ++i) {
        const std::size_t idx = static_cast<std::size_t>(std::llround(
            static_cast<double>(i) * static_cast<double>(nf - 1) /
            static_cast<double>(nc - 1)));
        if (coarse.empty() || idx != coarse.back()) coarse.push_back(idx);
    }
    solve_batch(coarse);

    // One rational model per upper-triangle Z entry (Z is reciprocal), refit
    // whenever a probe fails validation. A fit that degenerates even at the
    // lowest order abandons interpolation: everything left is solved.
    std::vector<RationalFit> model(p * (p + 1) / 2);
    auto refit = [&]() {
        std::vector<std::size_t> samples;
        for (std::size_t i = 0; i < nf; ++i)
            if (res.solved[i]) samples.push_back(i);
        VectorD fs(samples.size());
        for (std::size_t i = 0; i < samples.size(); ++i)
            fs[i] = freqs_hz[samples[i]];
        std::size_t e = 0;
        for (std::size_t r = 0; r < p; ++r)
            for (std::size_t c = r; c < p; ++c, ++e) {
                VectorC h(samples.size());
                for (std::size_t i = 0; i < samples.size(); ++i)
                    h[i] = res.z[samples[i]](r, c);
                model[e] = fit_entry(fs, h, options.fit);
            }
    };
    // Worst entrywise model-vs-solve mismatch at a solved grid point,
    // relative to the entry magnitude floored at 1e-3 of the global peak.
    auto probe_error = [&](std::size_t idx) {
        double worst = 0;
        std::size_t e = 0;
        for (std::size_t r = 0; r < p; ++r)
            for (std::size_t c = r; c < p; ++c, ++e) {
                const Complex zs = res.z[idx](r, c);
                const Complex zm = model[e].evaluate(freqs_hz[idx]);
                const double scale =
                    std::max(std::abs(zs), 1e-3 * std::max(zmax, 1e-300));
                worst = std::max(worst, std::abs(zm - zs) / scale);
            }
        return worst;
    };

    // Evaluate the current model into an unsolved grid point.
    std::vector<bool> filled(nf, false);
    auto fill_point = [&](std::size_t idx) {
        MatrixC z(p, p);
        std::size_t e = 0;
        for (std::size_t r = 0; r < p; ++r)
            for (std::size_t c = r; c < p; ++c, ++e)
                z(r, c) = z(c, r) = model[e].evaluate(freqs_hz[idx]);
        res.z[idx] = std::move(z);
        filled[idx] = true;
    };

    try {
        refit();
        // Gaps between consecutive solved points, probed at their midpoints.
        // An accepted probe validates its whole gap; a rejected probe splits
        // the gap and forces a refit with the new sample included.
        std::vector<std::pair<std::size_t, std::size_t>> pending;
        for (std::size_t i = 0; i + 1 < coarse.size(); ++i)
            if (coarse[i + 1] > coarse[i] + 1)
                pending.emplace_back(coarse[i], coarse[i + 1]);
        while (!pending.empty()) {
            if (options.max_solves && res.solves >= options.max_solves) break;
            std::size_t budget = pending.size();
            if (options.max_solves)
                budget = std::min<std::size_t>(
                    budget, options.max_solves - res.solves);
            std::vector<std::size_t> mids(budget);
            for (std::size_t i = 0; i < budget; ++i)
                mids[i] = (pending[i].first + pending[i].second) / 2;
            solve_batch(mids);

            std::vector<std::pair<std::size_t, std::size_t>> next(
                pending.begin() + static_cast<std::ptrdiff_t>(budget),
                pending.end());
            bool refined = false;
            for (std::size_t i = 0; i < budget; ++i) {
                const auto [lo, hi] = pending[i];
                const double err = probe_error(mids[i]);
                if (sid != obs::kStreamNone)
                    obs::stream_append(sid, freqs_hz[mids[i]], err);
                if (err <= options.tol) {
                    res.worst_validated_error =
                        std::max(res.worst_validated_error, err);
                    // Fill the gap's interior NOW, from the exact model
                    // instance the probe just validated. Later refits (driven
                    // by other gaps' refinements) can reshape the model away
                    // from this gap's validated behavior, so deferring the
                    // fill would disconnect it from the validation.
                    for (std::size_t j = lo + 1; j < hi; ++j)
                        if (!res.solved[j] && !filled[j]) fill_point(j);
                    continue;
                }
                ++res.refinements;
                ++c_refines;
                refined = true;
                if (sid != obs::kStreamNone)
                    obs::stream_mark(sid, freqs_hz[mids[i]], "refine");
                if (mids[i] > lo + 1) next.emplace_back(lo, mids[i]);
                if (hi > mids[i] + 1) next.emplace_back(mids[i], hi);
            }
            if (refined) refit();
            pending = std::move(next);
        }
        // Points left neither solved nor validated-filled (gaps dropped by
        // the max_solves cap) get the latest model — best effort. This is a
        // silent-degradation hazard, so it is surfaced three ways: the
        // unvalidated_points count, a "sweep.budget_exhausted" recovery
        // event, and an obs counter (plus the `solved` mask as before).
        static obs::Counter& c_unvalidated =
            obs::counter("em.sweep.unvalidated_fills");
        for (std::size_t i = 0; i < nf; ++i)
            if (!res.solved[i] && !filled[i]) {
                fill_point(i);
                ++res.unvalidated_points;
            }
        if (res.unvalidated_points > 0) {
            c_unvalidated.add(res.unvalidated_points);
            robust::note_recovery(
                &res.recovery, "sweep.budget_exhausted",
                "max_solves budget (" + std::to_string(options.max_solves) +
                    ") ran out with " + std::to_string(res.unvalidated_points) +
                    " of " + std::to_string(nf) +
                    " grid points filled from the rational model without a "
                    "validating probe");
        }
    } catch (const NumericalError&) {
        // Rational interpolation is not viable on this data; degrade to the
        // exhaustive sweep rather than returning model-shaped garbage.
        if (sid != obs::kStreamNone)
            obs::stream_mark(sid, 0.0, "fit_degenerate:solve_all");
        solve_all_remaining();
    }
    return res;
}

} // namespace pgsi
