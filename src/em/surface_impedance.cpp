#include "em/surface_impedance.hpp"

#include <cmath>

#include "common/constants.hpp"
#include "common/error.hpp"

namespace pgsi {

SurfaceImpedance SurfaceImpedance::from_sheet_resistance(double rs_dc) {
    PGSI_REQUIRE(rs_dc >= 0, "SurfaceImpedance: sheet resistance must be >= 0");
    SurfaceImpedance z;
    z.rs_dc_ = rs_dc;
    return z;
}

SurfaceImpedance SurfaceImpedance::from_conductor(double sigma, double thickness) {
    PGSI_REQUIRE(sigma > 0, "SurfaceImpedance: conductivity must be positive");
    PGSI_REQUIRE(thickness > 0, "SurfaceImpedance: thickness must be positive");
    SurfaceImpedance z;
    z.sigma_ = sigma;
    z.thickness_ = thickness;
    z.rs_dc_ = 1.0 / (sigma * thickness);
    return z;
}

Complex SurfaceImpedance::at(double omega) const {
    if (sigma_ == 0.0 || omega <= 0.0) return Complex(rs_dc_, 0.0);
    const double delta = std::sqrt(2.0 / (omega * mu0 * sigma_));
    const Complex gamma = Complex(1.0, 1.0) / delta; // (1+j)/δ
    const Complex gt = gamma * thickness_;
    // coth(gt) = cosh/sinh; for large |gt| this saturates to 1 (skin limit).
    if (std::abs(gt) > 30.0) return gamma / sigma_;
    const Complex coth = std::cosh(gt) / std::sinh(gt);
    return gamma / sigma_ * coth;
}

} // namespace pgsi
