#include "em/greens.hpp"

#include <cmath>

#include "common/constants.hpp"
#include "common/error.hpp"

namespace pgsi {

namespace {

// Exact closed form near the source rectangle, point-source approximation
// once the 3-D separation exceeds several source diagonals (relative error
// O((diag/dist)^2) < 1e-3 at the default threshold). The switch is blended
// over a narrow band rather than a hard cut: on a uniform mesh, offsets can
// land exactly on the threshold, where ulp-level coordinate differences
// between congruent pairs would otherwise flip the branch and expose the
// full approximation jump (~1e-4) between entries that must agree.
double inv_r_adaptive(Point2 obs, const Rect& src, double z) {
    constexpr double far_factor = 8.0;
    constexpr double blend_band = 0.02; // fraction of far2 blended linearly
    const Point2 c = src.center();
    const double dx = obs.x - c.x, dy = obs.y - c.y;
    const double dist2 = dx * dx + dy * dy + z * z;
    const double diag2 = src.width() * src.width() + src.height() * src.height();
    const double far2 = far_factor * far_factor * diag2;
    if (dist2 >= far2 * (1.0 + blend_band))
        return src.area() / std::sqrt(dist2);
    if (dist2 <= far2) return rect_inv_r_integral(obs, src, z);
    const double t = (dist2 - far2) / (far2 * blend_band);
    return (1.0 - t) * rect_inv_r_integral(obs, src, z) +
           t * src.area() / std::sqrt(dist2);
}

} // namespace

Greens Greens::homogeneous(double eps_r, bool pec_reference) {
    PGSI_REQUIRE(eps_r >= 1.0, "Greens: eps_r must be >= 1");
    Greens g;
    g.kind_ = Kind::Homogeneous;
    g.eps_r_ = eps_r;
    g.pec_reference_ = pec_reference;
    return g;
}

Greens Greens::grounded_slab(double eps_r, double h, int max_images, double tol) {
    PGSI_REQUIRE(eps_r >= 1.0, "Greens: eps_r must be >= 1");
    PGSI_REQUIRE(h > 0, "Greens: slab thickness must be positive");
    PGSI_REQUIRE(max_images >= 1, "Greens: need at least one image");
    Greens g;
    g.kind_ = Kind::GroundedSlab;
    g.eps_r_ = eps_r;
    g.slab_h_ = h;
    g.pec_reference_ = true;
    const double k = (eps_r - 1.0) / (eps_r + 1.0);
    // a_n = -(1+K)(-K)^{n-1}; always include n = 1 (the ground image) even
    // when K == 0.
    double coeff = -(1.0 + k);
    for (int n = 1; n <= max_images; ++n) {
        g.slab_coeff_.push_back(coeff);
        coeff *= -k;
        if (std::abs(coeff) < tol) break;
    }
    return g;
}

double Greens::phi_integral(Point2 obs, double obs_z, const Rect& src,
                            double src_z) const {
    if (kind_ == Kind::Homogeneous) {
        const double inv_eps = 1.0 / (4.0 * pi * eps0 * eps_r_);
        double v = inv_r_adaptive(obs, src, obs_z - src_z);
        if (pec_reference_) v -= inv_r_adaptive(obs, src, obs_z + src_z);
        return inv_eps * v;
    }
    // Grounded slab: source and observation live on the interface z = h.
    const double eps_bar = 0.5 * eps0 * (1.0 + eps_r_);
    const double scale = 1.0 / (4.0 * pi * eps_bar);
    double v = inv_r_adaptive(obs, src, 0.0);
    for (std::size_t n = 0; n < slab_coeff_.size(); ++n) {
        const double z = 2.0 * static_cast<double>(n + 1) * slab_h_;
        v += slab_coeff_[n] * inv_r_adaptive(obs, src, z);
    }
    return scale * v;
}

double Greens::a_integral(Point2 obs, double obs_z, const Rect& src,
                          double src_z) const {
    const double scale = mu0 / (4.0 * pi);
    if (kind_ == Kind::Homogeneous) {
        double v = inv_r_adaptive(obs, src, obs_z - src_z);
        if (pec_reference_) v -= inv_r_adaptive(obs, src, obs_z + src_z);
        return scale * v;
    }
    // Magnetostatics ignores the dielectric: direct term + single PEC image
    // at depth 2h below the interface.
    const double v = inv_r_adaptive(obs, src, 0.0) -
                     inv_r_adaptive(obs, src, 2.0 * slab_h_);
    return scale * v;
}

double Greens::phi_2d(double dx, double obs_z, double src_z) const {
    // 2-D potential of a unit line charge: φ = -ln(ρ) / (2πε) + const. The
    // additive constant cancels in potential *differences*, which is all the
    // capacitance extraction uses once a reference conductor exists.
    if (kind_ == Kind::Homogeneous) {
        const double scale = -1.0 / (2.0 * pi * eps0 * eps_r_);
        const double rho2 = dx * dx + (obs_z - src_z) * (obs_z - src_z);
        double v = 0.5 * std::log(rho2);
        if (pec_reference_) {
            const double rho2i = dx * dx + (obs_z + src_z) * (obs_z + src_z);
            v -= 0.5 * std::log(rho2i);
        }
        return scale * v;
    }
    const double eps_bar = 0.5 * eps0 * (1.0 + eps_r_);
    const double scale = -1.0 / (2.0 * pi * eps_bar);
    double v = std::log(std::abs(dx));
    for (std::size_t n = 0; n < slab_coeff_.size(); ++n) {
        const double z = 2.0 * static_cast<double>(n + 1) * slab_h_;
        v += slab_coeff_[n] * 0.5 * std::log(dx * dx + z * z);
    }
    return scale * v;
}

} // namespace pgsi
