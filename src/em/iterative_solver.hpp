// Matrix-free frequency-domain solution of the discretized MPIE system.
//
// The direct path factors the M×M branch impedance and inverts Ppot, which
// is O(M³) per frequency. This backend never forms a dense system: the
// branch currents solve
//
//     A(ω) I = b,   A = Zs·len/w + jωL + (1/jω) P Ppot Pᵀ,
//                   b = (1/jω) P Ppot J
//
// (the nodal unknowns V = Ppot·Q eliminated through charge conservation
// Q = (J − PᵀI)/jω), and L / Ppot act through the FFT-accelerated
// block-Toeplitz InteractionOperators of the PlaneBem — O(M log M) per
// application. The Krylov solver is restarted GMRES with a right
// preconditioner:
//
//   * Diagonal — Jacobi on A's diagonal; cheap but weak, because the nodal
//     term P Ppot Pᵀ annihilates mesh loop currents (its nullspace), where
//     A reduces to the off-diagonally dominated jωL;
//   * NearFieldBlock (default) — block-Jacobi over geometric tiles of
//     current cells. A tile spans both branch directions, so the local
//     plaquette loops that the diagonal cannot see are captured by the
//     tile's dense factorization.
//
// Port impedances follow from V = (1/jω) Ppot (J − Pᵀ I). Results agree
// with DirectSolver to the GMRES tolerance; a solve whose true residual
// exceeds SolverOptions::fail_tol throws instead of returning a silently
// inaccurate Z. On non-uniform meshes the InteractionOperators fall back to
// exact dense products, so the backend stays correct (just not O(M log M)).
#pragma once

#include <mutex>
#include <vector>

#include "em/solver.hpp"

namespace pgsi {

/// Cumulative telemetry of an IterativeSolver across every frequency point
/// it has processed.
struct IterativeSolverStats {
    std::size_t frequencies = 0; ///< port_impedance evaluations
    std::size_t solves = 0;      ///< GMRES solves (one per port column)
    std::size_t iterations = 0;  ///< total inner GMRES iterations
    std::size_t matvecs = 0;     ///< total operator applications
    std::size_t restarts = 0;    ///< total restart cycles
    /// Stalled columns recovered by escalating Diagonal → NearFieldBlock.
    std::size_t precond_escalations = 0;
    /// Frequency points recovered by falling back to the dense solver.
    std::size_t dense_fallbacks = 0;
    double setup_seconds = 0;    ///< operator build + tile partition
    double solve_seconds = 0;    ///< GMRES + recovery wall time
    double worst_residual = 0;   ///< largest final true relative residual
};

/// FFT/GMRES sweep solver over an assembled PlaneBem.
class IterativeSolver : public PlaneSolver {
public:
    IterativeSolver(const PlaneBem& bem, SurfaceImpedance zs,
                    SolverOptions options = {});

    const char* backend_name() const override { return "iterative"; }

    MatrixC port_impedance(
        double freq_hz,
        const std::vector<std::size_t>& port_nodes) const override;

    std::vector<MatrixC> sweep_impedance(
        const VectorD& freqs_hz,
        const std::vector<std::size_t>& port_nodes) const override;

    const SolverOptions& options() const { return options_; }

    /// Telemetry accumulated over every call on this solver so far. Do not
    /// read while a sweep is in flight.
    const IterativeSolverStats& stats() const { return stats_; }

    /// Recoveries performed so far (preconditioner escalations, dense
    /// fallbacks). Do not read while a sweep is in flight.
    const robust::RecoveryReport& recovery_report() const { return report_; }

private:
    void ensure_setup() const;
    MatrixC solve_ports(double freq_hz,
                        const std::vector<std::size_t>& port_nodes) const;
    const DirectSolver& dense_solver() const;

    const PlaneBem& bem_;
    SurfaceImpedance zs_;
    SolverOptions options_;

    mutable bool setup_done_ = false;
    mutable std::vector<double> zs_scale_;              ///< len/width per branch
    mutable std::vector<std::vector<std::size_t>> tiles_; ///< branch ids per tile
    mutable std::mutex stats_mu_; // sweeps update stats_ from pool workers
    mutable IterativeSolverStats stats_;
    mutable robust::RecoveryReport report_;
    mutable std::mutex dense_mu_; // lazy dense fallback construction
    mutable std::unique_ptr<DirectSolver> dense_;
};

} // namespace pgsi
