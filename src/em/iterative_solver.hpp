// Matrix-free frequency-domain solution of the discretized MPIE system.
//
// The direct path factors the M×M branch impedance and inverts Ppot, which
// is O(M³) per frequency. This backend never forms a dense system: the
// branch currents solve
//
//     A(ω) I = b,   A = Zs·len/w + jωL + (1/jω) P Ppot Pᵀ,
//                   b = (1/jω) P Ppot J
//
// (the nodal unknowns V = Ppot·Q eliminated through charge conservation
// Q = (J − PᵀI)/jω), and L / Ppot act through the FFT-accelerated
// block-Toeplitz InteractionOperators of the PlaneBem — O(M log M) per
// application. The Krylov solver is restarted GMRES with a right
// preconditioner:
//
//   * Diagonal — Jacobi on A's diagonal; cheap but weak, because the nodal
//     term P Ppot Pᵀ annihilates mesh loop currents (its nullspace), where
//     A reduces to the off-diagonally dominated jωL;
//   * NearFieldBlock (default) — block-Jacobi over geometric tiles of
//     current cells. A tile spans both branch directions, so the local
//     plaquette loops that the diagonal cannot see are captured by the
//     tile's dense factorization.
//
// Port impedances follow from V = (1/jω) Ppot (J − Pᵀ I). Results agree
// with DirectSolver to the GMRES tolerance; a solve whose true residual
// exceeds SolverOptions::fail_tol throws instead of returning a silently
// inaccurate Z. On non-uniform meshes the InteractionOperators fall back to
// exact dense products, so the backend stays correct (just not O(M log M)).
#pragma once

#include <atomic>
#include <mutex>
#include <vector>

#include "em/solver.hpp"

namespace pgsi {

/// Cumulative telemetry of an IterativeSolver across every frequency point
/// it has processed.
struct IterativeSolverStats {
    std::size_t frequencies = 0; ///< port_impedance evaluations
    /// Column solves actually attempted (one per port column per attempt in
    /// the per-column path; the full column count for a block solve). A
    /// frequency that fell back to the dense solver contributes only the
    /// columns GMRES actually worked on.
    std::size_t solves = 0;
    std::size_t block_solves = 0; ///< multi-RHS block GMRES calls
    std::size_t iterations = 0;  ///< total inner GMRES iterations
    std::size_t matvecs = 0;     ///< total operator applications
    std::size_t restarts = 0;    ///< total restart / seed cycles
    /// Stalled solves recovered by escalating Diagonal → NearFieldBlock.
    std::size_t precond_escalations = 0;
    /// Frequency points recovered by falling back to the dense solver.
    std::size_t dense_fallbacks = 0;
    /// Sweep-engine telemetry. sweep_points counts frequencies routed
    /// through the engine; warm_starts counts frequencies seeded from prior
    /// work; recycle_hits counts columns whose recycled-subspace projection
    /// reduced the initial residual; recycle_applies counts operator
    /// applications spent caching new recycled basis vectors (included in
    /// `matvecs`); saved_iterations estimates iterations avoided versus the
    /// sweep's own first (cold) frequency point.
    std::size_t sweep_points = 0;
    std::size_t warm_starts = 0;
    std::size_t recycle_hits = 0;
    std::size_t recycle_applies = 0;
    std::size_t saved_iterations = 0;
    double setup_seconds = 0;    ///< operator build + tile partition
    double solve_seconds = 0;    ///< GMRES + recovery wall time
    double worst_residual = 0;   ///< largest final true relative residual
};

/// FFT/GMRES sweep solver over an assembled PlaneBem.
class IterativeSolver : public PlaneSolver {
public:
    IterativeSolver(const PlaneBem& bem, SurfaceImpedance zs,
                    SolverOptions options = {});

    const char* backend_name() const override { return "iterative"; }

    MatrixC port_impedance(
        double freq_hz,
        const std::vector<std::size_t>& port_nodes) const override;

    std::vector<MatrixC> sweep_impedance(
        const VectorD& freqs_hz,
        const std::vector<std::size_t>& port_nodes) const override;

    const SolverOptions& options() const { return options_; }

    /// Telemetry accumulated over every call on this solver so far. Do not
    /// read while a sweep is in flight.
    const IterativeSolverStats& stats() const { return stats_; }

    /// Recoveries performed so far (preconditioner escalations, dense
    /// fallbacks). Do not read while a sweep is in flight.
    const robust::RecoveryReport& recovery_report() const { return report_; }

private:
    /// Cross-frequency state threaded through one sweep_impedance call when
    /// the sweep engine is on. Owned by the (sequential) sweep loop — never
    /// shared between threads.
    struct SweepState {
        /// Frequency-independent part of each port column's right-hand side
        /// (P Ppot e_port differences); the per-frequency rhs is 1/jω times
        /// this, so repeat frequencies skip the potential-operator apply.
        std::vector<VectorC> rhs_base;
        /// Previous frequency's solution columns, the warm-start seed when
        /// recycling is off.
        std::vector<VectorC> prev_solution;
        /// Recycled subspace: orthonormal basis u with the operator
        /// component products cached per vector (d = len/w scaling, l = L·u,
        /// s = P Ppot Pᵀ u), so A(ω)·u recombines at any ω without matvecs.
        std::vector<VectorC> basis_u, basis_d, basis_l, basis_s;
        /// Iterations the sweep's first (cold) frequency point needed — the
        /// baseline for the saved-iterations estimate.
        std::size_t cold_iterations = 0;
        bool have_cold = false;
    };

    void ensure_setup() const;
    MatrixC solve_ports(double freq_hz,
                        const std::vector<std::size_t>& port_nodes,
                        SweepState* sweep) const;
    const DirectSolver& dense_solver() const;

    const PlaneBem& bem_;
    SurfaceImpedance zs_;
    SolverOptions options_;

    mutable bool setup_done_ = false;
    mutable std::vector<double> zs_scale_;              ///< len/width per branch
    mutable std::vector<std::vector<std::size_t>> tiles_; ///< branch ids per tile
    /// Current preconditioner rung. Escalation is sticky for the lifetime of
    /// the solver: once a stall promoted Diagonal → NearFieldBlock, every
    /// later frequency starts from the stronger kind instead of re-paying
    /// the stall. Atomic because legacy (non-engine) sweeps solve
    /// frequencies on pool workers.
    mutable std::atomic<PreconditionerKind> active_precond_;
    mutable std::atomic<bool> escalation_noted_{false}; // report once
    mutable std::mutex stats_mu_; // sweeps update stats_ from pool workers
    mutable IterativeSolverStats stats_;
    mutable robust::RecoveryReport report_;
    mutable std::mutex dense_mu_; // lazy dense fallback construction
    mutable std::unique_ptr<DirectSolver> dense_;
};

} // namespace pgsi
