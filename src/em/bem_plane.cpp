#include "em/bem_plane.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <utility>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "numeric/cholesky.hpp"
#include "numeric/lu.hpp"
#include "numeric/quadrature.hpp"
#include "obs/metrics.hpp"
#include "obs/resource.hpp"
#include "obs/trace.hpp"

namespace pgsi {

namespace {

// Accumulate elapsed wall time into a stats field on scope exit.
class StageTimer {
public:
    explicit StageTimer(double& acc)
        : acc_(acc), t0_(std::chrono::steady_clock::now()) {}
    ~StageTimer() {
        acc_ += std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                              t0_)
                    .count();
    }

private:
    double& acc_;
    std::chrono::steady_clock::time_point t0_;
};

} // namespace

PlaneBem::PlaneBem(RectMesh mesh, Greens greens, BemOptions options)
    : mesh_(std::move(mesh)), greens_(std::move(greens)), options_(options) {
    PGSI_REQUIRE(options_.galerkin_order >= 1 && options_.galerkin_order <= 8,
                 "BemOptions: galerkin_order out of range");
    PGSI_REQUIRE(options_.l_quad_order >= 1 && options_.l_quad_order <= 8,
                 "BemOptions: l_quad_order out of range");
}

namespace {

Rect cell_rect(const MeshNode& n) {
    return Rect{n.center.x - 0.5 * n.dx, n.center.x + 0.5 * n.dx,
                n.center.y - 0.5 * n.dy, n.center.y + 0.5 * n.dy};
}

Rect branch_rect(const MeshBranch& b) { return Rect{b.x0, b.x1, b.y0, b.y1}; }

// Average of f over rect with the given (n-point per axis) Gauss rule. The
// rule is passed in so hot loops look it up once, outside the mutex-guarded
// rule cache.
template <class F>
double cell_average(const Rect& r, const QuadratureRule& rule, F&& f) {
    const std::size_t n = rule.nodes.size();
    const double mx = 0.5 * (r.x0 + r.x1), hx = 0.5 * (r.x1 - r.x0);
    const double my = 0.5 * (r.y0 + r.y1), hy = 0.5 * (r.y1 - r.y0);
    double s = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const double x = mx + hx * rule.nodes[i];
        double row = 0;
        for (std::size_t j = 0; j < n; ++j)
            row += rule.weights[j] * f(Point2{x, my + hy * rule.nodes[j]});
        s += rule.weights[i] * row;
    }
    return 0.25 * s; // Gauss weights sum to 2 per axis; /4 yields the average
}

// The translation-invariant interaction lattice/table machinery lives in
// em/interaction_lattice.hpp, shared with the block-Toeplitz operators.

obs::Counter& cached_fill_counter() {
    static obs::Counter& c = obs::counter("bem.assembly.cached_fills");
    return c;
}
obs::Counter& direct_fill_counter() {
    static obs::Counter& c = obs::counter("bem.assembly.direct_fills");
    return c;
}
obs::Counter& cache_entry_counter() {
    static obs::Counter& c = obs::counter("bem.cache.entries");
    return c;
}

} // namespace

void PlaneBem::assemble_potential() const {
    PGSI_TRACE_SCOPE("bem.fill.potential");
    PGSI_ALLOC_SCOPE("em.assembly");
    StageTimer timer(stats_.potential_seconds);
    const auto& nodes = mesh_.nodes();
    const std::size_t n = nodes.size();
    MatrixD p(n, n);
    const QuadratureRule& grule = gauss_legendre(options_.galerkin_order);

    Lattice lat;
    if (options_.assembly != AssemblyMode::Direct) lat = node_lattice();
    if (options_.assembly == AssemblyMode::Cached)
        PGSI_REQUIRE(lat.uniform,
                     "AssemblyMode::Cached requires a uniform-pitch mesh "
                     "(congruent cells on one lattice)");
    const bool cached = options_.assembly == AssemblyMode::Cached ||
                        (options_.assembly == AssemblyMode::Auto &&
                         cache_profitable(lat, n * (n + 1) / 2));

    if (cached) {
        const std::vector<double>& table = potential_table();
        par::parallel_for(n, [&](std::size_t j) {
            for (std::size_t i = j; i < n; ++i)
                p(i, j) = table[table_index(lat, i, j)];
        });
        stats_.potential_cached = true;
        ++cached_fill_counter();
    } else {
        // Column-parallel: each worker owns whole columns, so writes never
        // race (the symmetric mirror below runs after the fill).
        par::parallel_for(n, [&](std::size_t j) {
            const Rect src = cell_rect(nodes[j]);
            const double inv_area = 1.0 / src.area();
            for (std::size_t i = j; i < n; ++i) {
                double v;
                if (options_.testing == Testing::PointMatching) {
                    v = greens_.phi_integral(nodes[i].center, nodes[i].z, src,
                                             nodes[j].z) *
                        inv_area;
                } else {
                    const Rect obs = cell_rect(nodes[i]);
                    v = cell_average(obs, grule, [&](Point2 q) {
                            return greens_.phi_integral(q, nodes[i].z, src,
                                                        nodes[j].z);
                        }) *
                        inv_area;
                }
                p(i, j) = v;
            }
        });
        ++direct_fill_counter();
    }
    for (std::size_t j = 0; j < n; ++j)
        for (std::size_t i = j + 1; i < n; ++i) p(j, i) = p(i, j);
    ppot_ = std::move(p);
}

const MatrixD& PlaneBem::potential_matrix() const {
    if (!ppot_) assemble_potential();
    return *ppot_;
}

const MatrixD& PlaneBem::maxwell_capacitance() const {
    if (!cmax_) {
        const MatrixD& p = potential_matrix();
        PGSI_TRACE_SCOPE("bem.invert.potential");
        PGSI_ALLOC_SCOPE("em.assembly");
        StageTimer timer(stats_.capacitance_seconds);
        try {
            cmax_ = Cholesky(p).inverse();
        } catch (const NumericalError&) {
            // Ppot can lose definiteness to quadrature error on extreme
            // aspect-ratio meshes; fall back to a pivoted LU inverse.
            cmax_ = Lu<double>(p).inverse();
        }
    }
    return *cmax_;
}

void PlaneBem::assemble_inductance() const {
    PGSI_TRACE_SCOPE("bem.fill.inductance");
    PGSI_ALLOC_SCOPE("em.assembly");
    StageTimer timer(stats_.inductance_seconds);
    const auto& branches = mesh_.branches();
    const std::size_t m = branches.size();
    MatrixD l(m, m);
    const QuadratureRule& lrule = gauss_legendre(options_.l_quad_order);

    // x- and y-directed current cells are two separate congruent families
    // (and do not couple to each other), each with its own lattice/table.
    bool uniform = false;
    std::size_t entries = 0, direct_evals = 0;
    if (options_.assembly != AssemblyMode::Direct) {
        const BranchFamilies& bf = branch_families();
        uniform = bf.uniform;
        for (int d = 0; d < 2; ++d) {
            if (!bf.idx[d].empty()) entries += bf.lat[d].table_entries();
            direct_evals += bf.idx[d].size() * (bf.idx[d].size() + 1) / 2;
        }
    }
    if (options_.assembly == AssemblyMode::Cached)
        PGSI_REQUIRE(uniform,
                     "AssemblyMode::Cached requires a uniform-pitch mesh "
                     "(congruent current cells on one lattice per direction)");
    const bool cached =
        options_.assembly == AssemblyMode::Cached ||
        (options_.assembly == AssemblyMode::Auto && uniform &&
         entries < direct_evals);

    if (cached) {
        const BranchFamilies& bf = branch_families();
        for (int d = 0; d < 2; ++d) {
            const auto& idx = bf.idx[d];
            if (idx.empty()) continue;
            const Lattice& lg = bf.lat[d];
            const std::vector<double>& table = inductance_table(d);
            par::parallel_for(idx.size(), [&](std::size_t jj) {
                for (std::size_t ii = jj; ii < idx.size(); ++ii)
                    l(idx[ii], idx[jj]) = table[table_index(lg, ii, jj)];
            });
        }
        stats_.inductance_cached = true;
        ++cached_fill_counter();
    } else {
        par::parallel_for(m, [&](std::size_t b) {
            const Rect src = branch_rect(branches[b]);
            const double wb = branches[b].width();
            for (std::size_t a = b; a < m; ++a) {
                if (branches[a].dir != branches[b].dir)
                    continue; // orthogonal: no coupling
                const Rect obs = branch_rect(branches[a]);
                const double wa = branches[a].width();
                // Lp = (1/(wa·wb)) ∬_a GA-integral-over-src dA; the outer
                // integral is smooth (the inner one is exact) so a small
                // Gauss rule suffices.
                const double avg = cell_average(obs, lrule, [&](Point2 q) {
                    return greens_.a_integral(q, branches[a].z, src,
                                              branches[b].z);
                });
                l(a, b) = avg * obs.area() / (wa * wb);
            }
        });
        ++direct_fill_counter();
    }
    for (std::size_t b = 0; b < m; ++b)
        for (std::size_t a = b + 1; a < m; ++a) l(b, a) = l(a, b);
    l_ = std::move(l);
}

const MatrixD& PlaneBem::inductance_matrix() const {
    if (!l_) assemble_inductance();
    return *l_;
}

const VectorD& PlaneBem::branch_resistance() const {
    if (!rbranch_) {
        const auto& branches = mesh_.branches();
        VectorD r(branches.size());
        for (std::size_t b = 0; b < branches.size(); ++b) {
            const double rs = mesh_.shapes()[branches[b].shape].sheet_resistance;
            r[b] = rs * branches[b].length() / branches[b].width();
        }
        rbranch_ = std::move(r);
    }
    return *rbranch_;
}

MatrixD PlaneBem::incidence_dense() const {
    const auto& branches = mesh_.branches();
    MatrixD a(branches.size(), mesh_.node_count());
    for (std::size_t b = 0; b < branches.size(); ++b) {
        a(b, branches[b].n1) = 1.0;
        a(b, branches[b].n2) = -1.0;
    }
    return a;
}

const MatrixD& PlaneBem::gamma() const {
    if (!gamma_) {
        const MatrixD& l = inductance_matrix();
        PGSI_TRACE_SCOPE("bem.gamma");
        PGSI_ALLOC_SCOPE("em.assembly");
        StageTimer timer(stats_.gamma_seconds);
        const MatrixD a = incidence_dense();
        // X = L⁻¹ P, then Γ = Pᵀ X accumulated through the sparse incidence.
        MatrixD x;
        try {
            x = Cholesky(l).solve(a);
        } catch (const NumericalError&) {
            x = Lu<double>(l).solve(a);
        }
        const std::size_t n = mesh_.node_count();
        MatrixD g(n, n);
        const auto& branches = mesh_.branches();
        for (std::size_t b = 0; b < branches.size(); ++b) {
            const double* xrow = x.row(b);
            double* r1 = g.row(branches[b].n1);
            double* r2 = g.row(branches[b].n2);
            for (std::size_t j = 0; j < n; ++j) {
                r1[j] += xrow[j];
                r2[j] -= xrow[j];
            }
        }
        // Symmetrize away quadrature noise; Γ is analytically symmetric.
        for (std::size_t i = 0; i < n; ++i)
            for (std::size_t j = i + 1; j < n; ++j) {
                const double v = 0.5 * (g(i, j) + g(j, i));
                g(i, j) = v;
                g(j, i) = v;
            }
        gamma_ = std::move(g);
    }
    return *gamma_;
}

const MatrixD& PlaneBem::dc_conductance() const {
    if (!gdc_) {
        const VectorD& r = branch_resistance();
        const auto& branches = mesh_.branches();
        const std::size_t n = mesh_.node_count();
        MatrixD g(n, n);
        for (std::size_t b = 0; b < branches.size(); ++b) {
            PGSI_REQUIRE(r[b] > 0,
                         "dc_conductance requires a lossy sheet (nonzero "
                         "sheet_resistance) on every shape");
            const double gb = 1.0 / r[b];
            const std::size_t i = branches[b].n1, j = branches[b].n2;
            g(i, i) += gb;
            g(j, j) += gb;
            g(i, j) -= gb;
            g(j, i) -= gb;
        }
        gdc_ = std::move(g);
    }
    return *gdc_;
}

const Lattice& PlaneBem::node_lattice() const {
    if (!node_lat_) {
        const auto& nodes = mesh_.nodes();
        node_lat_ = detect_lattice(
            nodes.size(), [&](std::size_t e) { return nodes[e].center; },
            [&](std::size_t e) { return std::pair{nodes[e].dx, nodes[e].dy}; },
            [&](std::size_t e) { return nodes[e].z; });
    }
    return *node_lat_;
}

const PlaneBem::BranchFamilies& PlaneBem::branch_families() const {
    if (!branch_fam_) {
        const auto& branches = mesh_.branches();
        BranchFamilies bf;
        for (std::size_t b = 0; b < branches.size(); ++b)
            bf.idx[branches[b].dir == BranchDir::Y].push_back(b);
        bf.uniform = true;
        for (int d = 0; d < 2; ++d) {
            const auto& idx = bf.idx[d];
            bf.lat[d] = detect_lattice(
                idx.size(),
                [&](std::size_t e) {
                    return branch_rect(branches[idx[e]]).center();
                },
                [&](std::size_t e) {
                    const Rect r = branch_rect(branches[idx[e]]);
                    return std::pair{r.width(), r.height()};
                },
                [&](std::size_t e) { return branches[idx[e]].z; });
            bf.uniform = bf.uniform && bf.lat[d].uniform;
        }
        branch_fam_ = std::move(bf);
    }
    return *branch_fam_;
}

const std::vector<double>& PlaneBem::potential_table() const {
    if (!ptable_) {
        const Lattice& lat = node_lattice();
        PGSI_REQUIRE(lat.uniform,
                     "potential_table requires a uniform-pitch mesh");
        PGSI_TRACE_SCOPE("bem.fill.potential.table");
        const QuadratureRule& grule = gauss_legendre(options_.galerkin_order);
        const double sx = lat.sx, sy = lat.sy;
        const Rect src{-0.5 * sx, 0.5 * sx, -0.5 * sy, 0.5 * sy};
        const double inv_area = 1.0 / (sx * sy);
        std::vector<double> table = build_interaction_table(
            lat, [&](long di, long dj, double zo, double zs) {
                const Point2 obs{static_cast<double>(di) * sx,
                                 static_cast<double>(dj) * sy};
                if (options_.testing == Testing::PointMatching)
                    return greens_.phi_integral(obs, zo, src, zs) * inv_area;
                const Rect obsr{obs.x - 0.5 * sx, obs.x + 0.5 * sx,
                                obs.y - 0.5 * sy, obs.y + 0.5 * sy};
                return cell_average(obsr, grule, [&](Point2 q) {
                           return greens_.phi_integral(q, zo, src, zs);
                       }) *
                    inv_area;
            });
        stats_.cache_entries += table.size();
        cache_entry_counter().add(table.size());
        ptable_ = std::move(table);
    }
    return *ptable_;
}

const std::vector<double>& PlaneBem::inductance_table(int d) const {
    if (!ltable_[d]) {
        const BranchFamilies& bf = branch_families();
        const Lattice& lg = bf.lat[d];
        PGSI_REQUIRE(lg.uniform,
                     "inductance_table requires a uniform-pitch mesh");
        PGSI_TRACE_SCOPE("bem.fill.inductance.table");
        const QuadratureRule& lrule = gauss_legendre(options_.l_quad_order);
        const double sx = lg.sx, sy = lg.sy;
        const Rect src{-0.5 * sx, 0.5 * sx, -0.5 * sy, 0.5 * sy};
        // All cells in the family share one width (the current-transverse
        // dimension), so the 1/(wa·wb) normalization is constant.
        const double wdir = d == 0 ? sy : sx;
        const double scale = (sx * sy) / (wdir * wdir);
        std::vector<double> table = build_interaction_table(
            lg, [&](long di, long dj, double zo, double zs) {
                const Rect obs{static_cast<double>(di) * sx - 0.5 * sx,
                               static_cast<double>(di) * sx + 0.5 * sx,
                               static_cast<double>(dj) * sy - 0.5 * sy,
                               static_cast<double>(dj) * sy + 0.5 * sy};
                return cell_average(obs, lrule, [&](Point2 q) {
                           return greens_.a_integral(q, zo, src, zs);
                       }) *
                    scale;
            });
        stats_.cache_entries += table.size();
        cache_entry_counter().add(table.size());
        ltable_[d] = std::move(table);
    }
    return *ltable_[d];
}

bool PlaneBem::uniform_lattice() const {
    return node_lattice().uniform && branch_families().uniform;
}

const InteractionOperator& PlaneBem::potential_operator() const {
    if (!pop_) {
        const std::size_t n = mesh_.node_count();
        if (options_.assembly != AssemblyMode::Direct && uniform_lattice()) {
            std::vector<ToeplitzFamily> fams;
            fams.emplace_back(node_lattice(), potential_table());
            std::vector<std::size_t> ident(n);
            for (std::size_t i = 0; i < n; ++i) ident[i] = i;
            pop_ = InteractionOperator::toeplitz(std::move(fams), {std::move(ident)}, n);
        } else {
            pop_ = InteractionOperator::dense(&potential_matrix());
        }
    }
    return *pop_;
}

const InteractionOperator& PlaneBem::inductance_operator() const {
    if (!lop_) {
        const std::size_t m = mesh_.branch_count();
        if (options_.assembly != AssemblyMode::Direct && uniform_lattice()) {
            const BranchFamilies& bf = branch_families();
            std::vector<ToeplitzFamily> fams;
            std::vector<std::vector<std::size_t>> idx;
            for (int d = 0; d < 2; ++d) {
                fams.emplace_back(bf.lat[d], bf.idx[d].empty()
                                                 ? std::vector<double>{}
                                                 : inductance_table(d));
                idx.push_back(bf.idx[d]);
            }
            lop_ = InteractionOperator::toeplitz(std::move(fams), std::move(idx), m);
        } else {
            lop_ = InteractionOperator::dense(&inductance_matrix());
        }
    }
    return *lop_;
}

} // namespace pgsi
