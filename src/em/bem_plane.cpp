#include "em/bem_plane.hpp"

#include <chrono>
#include <cmath>
#include <thread>

#include "common/error.hpp"
#include "numeric/cholesky.hpp"
#include "numeric/lu.hpp"
#include "numeric/quadrature.hpp"
#include "obs/trace.hpp"

namespace pgsi {

namespace {

// Accumulate elapsed wall time into a stats field on scope exit.
class StageTimer {
public:
    explicit StageTimer(double& acc)
        : acc_(acc), t0_(std::chrono::steady_clock::now()) {}
    ~StageTimer() {
        acc_ += std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                              t0_)
                    .count();
    }

private:
    double& acc_;
    std::chrono::steady_clock::time_point t0_;
};

} // namespace

PlaneBem::PlaneBem(RectMesh mesh, Greens greens, BemOptions options)
    : mesh_(std::move(mesh)), greens_(std::move(greens)), options_(options) {
    PGSI_REQUIRE(options_.galerkin_order >= 1 && options_.galerkin_order <= 8,
                 "BemOptions: galerkin_order out of range");
    PGSI_REQUIRE(options_.l_quad_order >= 1 && options_.l_quad_order <= 8,
                 "BemOptions: l_quad_order out of range");
}

namespace {

Rect cell_rect(const MeshNode& n) {
    return Rect{n.center.x - 0.5 * n.dx, n.center.x + 0.5 * n.dx,
                n.center.y - 0.5 * n.dy, n.center.y + 0.5 * n.dy};
}

Rect branch_rect(const MeshBranch& b) { return Rect{b.x0, b.x1, b.y0, b.y1}; }

// Run fn(j) for j in [0, count) across hardware threads. Assembly work is
// embarrassingly parallel (independent matrix columns).
template <class F>
void parallel_for(std::size_t count, F&& fn) {
    const std::size_t hw = std::max(1u, std::thread::hardware_concurrency());
    const std::size_t nthreads = std::min<std::size_t>(hw, count);
    if (nthreads <= 1 || count < 16) {
        for (std::size_t j = 0; j < count; ++j) fn(j);
        return;
    }
    std::vector<std::thread> pool;
    pool.reserve(nthreads);
    for (std::size_t tid = 0; tid < nthreads; ++tid) {
        pool.emplace_back([&, tid] {
            for (std::size_t j = tid; j < count; j += nthreads) fn(j);
        });
    }
    for (std::thread& th : pool) th.join();
}

// Average of f over rect with an n×n Gauss rule.
template <class F>
double cell_average(const Rect& r, int n, F&& f) {
    const QuadratureRule& rule = gauss_legendre(n);
    const double mx = 0.5 * (r.x0 + r.x1), hx = 0.5 * (r.x1 - r.x0);
    const double my = 0.5 * (r.y0 + r.y1), hy = 0.5 * (r.y1 - r.y0);
    double s = 0;
    for (int i = 0; i < n; ++i) {
        const double x = mx + hx * rule.nodes[i];
        double row = 0;
        for (int j = 0; j < n; ++j)
            row += rule.weights[j] * f(Point2{x, my + hy * rule.nodes[j]});
        s += rule.weights[i] * row;
    }
    return 0.25 * s; // Gauss weights sum to 2 per axis; /4 yields the average
}

} // namespace

void PlaneBem::assemble_potential() const {
    PGSI_TRACE_SCOPE("bem.fill.potential");
    StageTimer timer(stats_.potential_seconds);
    const auto& nodes = mesh_.nodes();
    const std::size_t n = nodes.size();
    MatrixD p(n, n);
    // Column-parallel: each worker owns whole columns, so writes never race
    // (the symmetric mirror writes target the same column-pair partition).
    parallel_for(n, [&](std::size_t j) {
        const Rect src = cell_rect(nodes[j]);
        const double inv_area = 1.0 / src.area();
        for (std::size_t i = j; i < n; ++i) {
            double v;
            if (options_.testing == Testing::PointMatching) {
                v = greens_.phi_integral(nodes[i].center, nodes[i].z, src,
                                         nodes[j].z) *
                    inv_area;
            } else {
                const Rect obs = cell_rect(nodes[i]);
                v = cell_average(obs, options_.galerkin_order, [&](Point2 q) {
                        return greens_.phi_integral(q, nodes[i].z, src, nodes[j].z);
                    }) *
                    inv_area;
            }
            p(i, j) = v;
        }
    });
    for (std::size_t j = 0; j < n; ++j)
        for (std::size_t i = j + 1; i < n; ++i) p(j, i) = p(i, j);
    ppot_ = std::move(p);
}

const MatrixD& PlaneBem::potential_matrix() const {
    if (!ppot_) assemble_potential();
    return *ppot_;
}

const MatrixD& PlaneBem::maxwell_capacitance() const {
    if (!cmax_) {
        const MatrixD& p = potential_matrix();
        PGSI_TRACE_SCOPE("bem.invert.potential");
        StageTimer timer(stats_.capacitance_seconds);
        try {
            cmax_ = Cholesky(p).inverse();
        } catch (const NumericalError&) {
            // Ppot can lose definiteness to quadrature error on extreme
            // aspect-ratio meshes; fall back to a pivoted LU inverse.
            cmax_ = Lu<double>(p).inverse();
        }
    }
    return *cmax_;
}

void PlaneBem::assemble_inductance() const {
    PGSI_TRACE_SCOPE("bem.fill.inductance");
    StageTimer timer(stats_.inductance_seconds);
    const auto& branches = mesh_.branches();
    const std::size_t m = branches.size();
    MatrixD l(m, m);
    parallel_for(m, [&](std::size_t b) {
        const Rect src = branch_rect(branches[b]);
        const double wb = branches[b].width();
        for (std::size_t a = b; a < m; ++a) {
            if (branches[a].dir != branches[b].dir) continue; // orthogonal: no coupling
            const Rect obs = branch_rect(branches[a]);
            const double wa = branches[a].width();
            // Lp = (1/(wa·wb)) ∬_a GA-integral-over-src dA; the outer integral
            // is smooth (the inner one is exact) so a small Gauss rule suffices.
            const double avg =
                cell_average(obs, options_.l_quad_order, [&](Point2 q) {
                    return greens_.a_integral(q, branches[a].z, src, branches[b].z);
                });
            l(a, b) = avg * obs.area() / (wa * wb);
        }
    });
    for (std::size_t b = 0; b < m; ++b)
        for (std::size_t a = b + 1; a < m; ++a) l(b, a) = l(a, b);
    l_ = std::move(l);
}

const MatrixD& PlaneBem::inductance_matrix() const {
    if (!l_) assemble_inductance();
    return *l_;
}

const VectorD& PlaneBem::branch_resistance() const {
    if (!rbranch_) {
        const auto& branches = mesh_.branches();
        VectorD r(branches.size());
        for (std::size_t b = 0; b < branches.size(); ++b) {
            const double rs = mesh_.shapes()[branches[b].shape].sheet_resistance;
            r[b] = rs * branches[b].length() / branches[b].width();
        }
        rbranch_ = std::move(r);
    }
    return *rbranch_;
}

MatrixD PlaneBem::incidence_dense() const {
    const auto& branches = mesh_.branches();
    MatrixD a(branches.size(), mesh_.node_count());
    for (std::size_t b = 0; b < branches.size(); ++b) {
        a(b, branches[b].n1) = 1.0;
        a(b, branches[b].n2) = -1.0;
    }
    return a;
}

const MatrixD& PlaneBem::gamma() const {
    if (!gamma_) {
        const MatrixD& l = inductance_matrix();
        PGSI_TRACE_SCOPE("bem.gamma");
        StageTimer timer(stats_.gamma_seconds);
        const MatrixD a = incidence_dense();
        // X = L⁻¹ P, then Γ = Pᵀ X accumulated through the sparse incidence.
        MatrixD x;
        try {
            x = Cholesky(l).solve(a);
        } catch (const NumericalError&) {
            x = Lu<double>(l).solve(a);
        }
        const std::size_t n = mesh_.node_count();
        MatrixD g(n, n);
        const auto& branches = mesh_.branches();
        for (std::size_t b = 0; b < branches.size(); ++b) {
            const double* xrow = x.row(b);
            double* r1 = g.row(branches[b].n1);
            double* r2 = g.row(branches[b].n2);
            for (std::size_t j = 0; j < n; ++j) {
                r1[j] += xrow[j];
                r2[j] -= xrow[j];
            }
        }
        // Symmetrize away quadrature noise; Γ is analytically symmetric.
        for (std::size_t i = 0; i < n; ++i)
            for (std::size_t j = i + 1; j < n; ++j) {
                const double v = 0.5 * (g(i, j) + g(j, i));
                g(i, j) = v;
                g(j, i) = v;
            }
        gamma_ = std::move(g);
    }
    return *gamma_;
}

const MatrixD& PlaneBem::dc_conductance() const {
    if (!gdc_) {
        const VectorD& r = branch_resistance();
        const auto& branches = mesh_.branches();
        const std::size_t n = mesh_.node_count();
        MatrixD g(n, n);
        for (std::size_t b = 0; b < branches.size(); ++b) {
            PGSI_REQUIRE(r[b] > 0,
                         "dc_conductance requires a lossy sheet (nonzero "
                         "sheet_resistance) on every shape");
            const double gb = 1.0 / r[b];
            const std::size_t i = branches[b].n1, j = branches[b].n2;
            g(i, i) += gb;
            g(j, j) += gb;
            g(i, j) -= gb;
            g(j, i) -= gb;
        }
        gdc_ = std::move(g);
    }
    return *gdc_;
}

} // namespace pgsi
