#include "em/iterative_solver.hpp"

#include <chrono>
#include <cmath>
#include <map>
#include <memory>
#include <utility>

#include "common/constants.hpp"
#include "common/error.hpp"
#include "common/parallel.hpp"
#include "common/robust.hpp"
#include "numeric/lu.hpp"
#include "obs/metrics.hpp"
#include "obs/resource.hpp"
#include "obs/stream.hpp"
#include "obs/trace.hpp"

namespace pgsi {

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
        .count();
}

// Conjugated inner product, serial for thread-count-invariant results.
Complex cdot(const VectorC& a, const VectorC& b) {
    Complex s{};
    for (std::size_t i = 0; i < a.size(); ++i) s += std::conj(a[i]) * b[i];
    return s;
}

} // namespace

IterativeSolver::IterativeSolver(const PlaneBem& bem, SurfaceImpedance zs,
                                 SolverOptions options)
    : bem_(bem), zs_(zs), options_(options),
      active_precond_(options.preconditioner) {
    PGSI_REQUIRE(options_.precond_tile_cells >= 1,
                 "SolverOptions: precond_tile_cells must be >= 1");
    PGSI_REQUIRE(options_.fail_tol > 0, "SolverOptions: fail_tol must be positive");
}

void IterativeSolver::ensure_setup() const {
    if (setup_done_) return;
    PGSI_TRACE_SCOPE("em.iterative.setup");
    PGSI_ALLOC_SCOPE("em.iterative");
    const auto t0 = std::chrono::steady_clock::now();
    // Force the lazy operator builds (kernel spectra or dense fallbacks)
    // before any solve fans out over the pool.
    bem_.potential_operator();
    bem_.inductance_operator();

    const auto& branches = bem_.mesh().branches();
    zs_scale_.resize(branches.size());
    for (std::size_t b = 0; b < branches.size(); ++b)
        zs_scale_[b] = branches[b].length() / branches[b].width();

    // The tile partition is also needed when escalation may promote a
    // Diagonal run to NearFieldBlock mid-sweep.
    const bool want_tiles =
        options_.preconditioner == PreconditionerKind::NearFieldBlock ||
        (options_.recovery.policy == robust::RecoveryPolicy::Recover &&
         options_.recovery.allow_precond_escalation);
    if (want_tiles) {
        // Partition the current cells by midpoint into square geometric
        // tiles. A tile mixes x- and y-directed cells on purpose: the local
        // plaquette loop currents (the nullspace of the nodal term) only
        // appear in blocks that couple both directions. std::map keeps the
        // tile order deterministic.
        const double tw =
            static_cast<double>(options_.precond_tile_cells) * bem_.mesh().pitch();
        std::map<std::pair<long, long>, std::vector<std::size_t>> groups;
        for (std::size_t b = 0; b < branches.size(); ++b) {
            const double mx = 0.5 * (branches[b].x0 + branches[b].x1);
            const double my = 0.5 * (branches[b].y0 + branches[b].y1);
            const std::pair<long, long> key{
                static_cast<long>(std::floor(mx / tw)),
                static_cast<long>(std::floor(my / tw))};
            groups[key].push_back(b);
        }
        tiles_.clear();
        tiles_.reserve(groups.size());
        for (auto& [key, ids] : groups) tiles_.push_back(std::move(ids));
    }
    stats_.setup_seconds += seconds_since(t0);
    setup_done_ = true;
}

MatrixC IterativeSolver::solve_ports(
    double freq_hz, const std::vector<std::size_t>& port_nodes,
    SweepState* sweep) const {
    PGSI_ALLOC_SCOPE("em.iterative");
    // Cancellation point: one poll per frequency; run_attempt below polls
    // again per GMRES solve so a multi-column stall cancels mid-frequency.
    if (options_.recovery.cancel != nullptr)
        options_.recovery.cancel->poll("em.iterative.solve");
    const double omega = 2.0 * pi * freq_hz;
    const Complex jw(0.0, omega);
    const Complex inv_jw = 1.0 / jw;

    const InteractionOperator& pop = bem_.potential_operator();
    const InteractionOperator& lop = bem_.inductance_operator();
    const auto& branches = bem_.mesh().branches();
    const std::size_t m = branches.size();
    const std::size_t n = bem_.node_count();
    const std::size_t p = port_nodes.size();

    const Complex zsv = zs_.at(omega);
    VectorC zsb(m);
    for (std::size_t b = 0; b < m; ++b) zsb[b] = zsv * zs_scale_[b];

    // A x = Zs.x + jw (L x) + (1/jw) P Ppot Pᵀ x, all through the operators.
    VectorC tnode(n), unode(n), wbr(m);
    const LinearOpC apply = [&](const VectorC& x, VectorC& y) {
        std::fill(tnode.begin(), tnode.end(), Complex{});
        for (std::size_t b = 0; b < m; ++b) {
            tnode[branches[b].n1] += x[b];
            tnode[branches[b].n2] -= x[b];
        }
        pop.apply(tnode, unode);
        lop.apply(x, wbr);
        y.resize(m);
        for (std::size_t b = 0; b < m; ++b)
            y[b] = zsb[b] * x[b] + jw * wbr[b] +
                   inv_jw * (unode[branches[b].n1] - unode[branches[b].n2]);
    };

    // Exact A entries for the preconditioner blocks, via the operators'
    // displacement-table lookups (no dense matrix is ever formed).
    auto s_entry = [&](std::size_t a, std::size_t b) {
        return pop.entry(branches[a].n1, branches[b].n1) -
               pop.entry(branches[a].n1, branches[b].n2) -
               pop.entry(branches[a].n2, branches[b].n1) +
               pop.entry(branches[a].n2, branches[b].n2);
    };
    auto a_entry = [&](std::size_t a, std::size_t b) {
        Complex v = jw * lop.entry(a, b) + inv_jw * s_entry(a, b);
        if (a == b) v += zsb[a];
        return v;
    };

    // Preconditioner state is per-frequency (tile factors depend on ω); the
    // builder caches, so escalating Diagonal → NearFieldBlock mid-call only
    // pays for the blocks once.
    LinearOpC precond;
    std::vector<std::unique_ptr<const Lu<Complex>>> tile_lu;
    VectorC dinv;
    auto build_precond = [&](PreconditionerKind kind) {
        if (kind == PreconditionerKind::NearFieldBlock) {
            if (tile_lu.empty()) {
                tile_lu.resize(tiles_.size());
                par::parallel_for(tiles_.size(), [&](std::size_t ti) {
                    const auto& ids = tiles_[ti];
                    MatrixC blk(ids.size(), ids.size());
                    for (std::size_t r = 0; r < ids.size(); ++r)
                        for (std::size_t c = 0; c < ids.size(); ++c)
                            blk(r, c) = a_entry(ids[r], ids[c]);
                    tile_lu[ti] =
                        std::make_unique<const Lu<Complex>>(std::move(blk));
                });
            }
            precond = [&](const VectorC& x, VectorC& y) {
                y.resize(m); // every branch belongs to exactly one tile
                par::parallel_for(tiles_.size(), [&](std::size_t ti) {
                    const auto& ids = tiles_[ti];
                    VectorC rhs(ids.size());
                    for (std::size_t r = 0; r < ids.size(); ++r)
                        rhs[r] = x[ids[r]];
                    const VectorC sol = tile_lu[ti]->solve(rhs);
                    for (std::size_t r = 0; r < ids.size(); ++r)
                        y[ids[r]] = sol[r];
                });
            };
        } else {
            if (dinv.empty()) {
                dinv.resize(m);
                for (std::size_t b = 0; b < m; ++b)
                    dinv[b] = 1.0 / a_entry(b, b);
            }
            precond = [&](const VectorC& x, VectorC& y) {
                y.resize(m);
                for (std::size_t b = 0; b < m; ++b) y[b] = dinv[b] * x[b];
            };
        }
    };
    // Escalation is sticky: start from the strongest kind any earlier
    // frequency needed instead of re-paying the stall per point.
    PreconditionerKind kind = active_precond_.load(std::memory_order_relaxed);
    build_precond(kind);

    const bool recover =
        options_.recovery.policy == robust::RecoveryPolicy::Recover;
    robust::RecoveryReport local_report;
    MatrixC z(p, p);
    std::size_t iters = 0, matvecs = 0, restarts = 0;
    std::size_t escalations = 0, block_solves = 0, solves_attempted = 0;
    std::size_t recycle_hits = 0, recycle_applies = 0;
    bool warm_started = false;
    // Convergence stream: GMRES iterations per port column at this
    // frequency, with marks where the preconditioner ladder escalated.
    const std::size_t sid = obs::streams_enabled()
                                ? obs::stream_open("em.iterative.columns")
                                : obs::kStreamNone;
    if (sid != obs::kStreamNone)
        obs::stream_mark(sid, 0.0, "f=" + std::to_string(freq_hz) + "Hz");

    // Right-hand sides b_k = (1/jw) P Ppot e_port. The P Ppot e_port part is
    // frequency-independent, so a sweep computes it once and every later
    // frequency only rescales by 1/jw.
    std::vector<VectorC> rhs_base_local;
    const std::vector<VectorC>* rhs_base = nullptr;
    if (sweep && sweep->rhs_base.size() == p) {
        rhs_base = &sweep->rhs_base;
    } else {
        rhs_base_local.assign(p, VectorC(m));
        for (std::size_t k = 0; k < p; ++k) {
            std::fill(tnode.begin(), tnode.end(), Complex{});
            tnode[port_nodes[k]] = Complex(1.0, 0.0);
            pop.apply(tnode, unode);
            for (std::size_t b = 0; b < m; ++b)
                rhs_base_local[k][b] =
                    unode[branches[b].n1] - unode[branches[b].n2];
        }
        if (sweep) {
            sweep->rhs_base = std::move(rhs_base_local);
            rhs_base = &sweep->rhs_base;
        } else {
            rhs_base = &rhs_base_local;
        }
    }
    std::vector<VectorC> rhs(p, VectorC(m));
    for (std::size_t k = 0; k < p; ++k)
        for (std::size_t b = 0; b < m; ++b)
            rhs[k][b] = inv_jw * (*rhs_base)[k][b];

    // Initial guesses. With a recycled subspace U on hand, A(ω)·U recombines
    // from the cached component products (no operator applications), and
    // each column warm-starts from the least-squares projection
    // x0 = U argmin_y |b − A(ω) U y|. With recycling off, the previous
    // frequency's solutions seed verbatim.
    std::vector<VectorC> x0(p, VectorC(m, Complex{}));
    if (sweep && options_.sweep.warm_start) {
        const std::size_t d = sweep->basis_u.size();
        if (d > 0) {
            std::vector<VectorC> au(d, VectorC(m));
            for (std::size_t j = 0; j < d; ++j)
                for (std::size_t b = 0; b < m; ++b)
                    au[j][b] = zsv * sweep->basis_d[j][b] +
                               jw * sweep->basis_l[j][b] +
                               inv_jw * sweep->basis_s[j][b];
            // Thin QR of [A·u_1 … A·u_d] by modified Gram-Schmidt; the
            // least squares then solves through Qᴴ and back-substitution.
            // (Normal equations would square A's conditioning and cap the
            // projected residual orders of magnitude above what the
            // subspace actually supports — the warm start lives or dies on
            // that floor.) Columns A maps to near-dependence are dropped.
            MatrixC rq(d, d);
            std::vector<bool> keep(d, true);
            for (std::size_t j = 0; j < d; ++j) {
                const double an0 = norm2(au[j]);
                for (std::size_t i = 0; i < j; ++i) {
                    if (!keep[i]) continue;
                    const Complex rij = cdot(au[i], au[j]);
                    rq(i, j) = rij;
                    const VectorC& qi = au[i];
                    for (std::size_t b = 0; b < m; ++b)
                        au[j][b] -= rij * qi[b];
                }
                const double rjj = norm2(au[j]);
                if (!(rjj > 1e-13 * an0)) {
                    keep[j] = false;
                    rq(j, j) = Complex(1.0, 0.0);
                    continue;
                }
                rq(j, j) = rjj;
                for (std::size_t b = 0; b < m; ++b) au[j][b] /= rjj;
            }
            VectorC qb(d), y(d);
            for (std::size_t k = 0; k < p; ++k) {
                double rnum = 0, rden = 0;
                for (std::size_t b = 0; b < m; ++b)
                    rden += std::norm(rhs[k][b]);
                double captured = 0;
                for (std::size_t j = 0; j < d; ++j) {
                    qb[j] = keep[j] ? cdot(au[j], rhs[k]) : Complex{};
                    captured += std::norm(qb[j]);
                }
                rnum = std::max(0.0, rden - captured);
                if (rden > 0 && rnum < 0.98 * rden) {
                    // The subspace captures a meaningful part of this
                    // column: take the projected guess.
                    for (std::size_t j = d; j-- > 0;) {
                        if (!keep[j]) {
                            y[j] = Complex{};
                            continue;
                        }
                        Complex acc = qb[j];
                        for (std::size_t t = j + 1; t < d; ++t)
                            acc -= rq(j, t) * y[t];
                        y[j] = acc / rq(j, j);
                    }
                    for (std::size_t j = 0; j < d; ++j)
                        for (std::size_t b = 0; b < m; ++b)
                            x0[k][b] += y[j] * sweep->basis_u[j][b];
                    ++recycle_hits;
                }
            }
            warm_started = true;
        } else if (sweep->prev_solution.size() == p) {
            x0 = sweep->prev_solution;
            warm_started = true;
        }
    }

    // Column solves with recovery. `ok` / `colres` track each column's
    // state so escalation retries only the columns that actually stalled
    // and the stats attribute only work actually performed.
    std::vector<VectorC> cur(p);
    std::vector<double> colres(p, 1.0);
    std::vector<bool> ok(p, false);
    auto run_attempt = [&]() {
        if (options_.recovery.cancel != nullptr)
            options_.recovery.cancel->poll("em.iterative.gmres");
        std::vector<std::size_t> pend;
        for (std::size_t k = 0; k < p; ++k)
            if (!ok[k]) pend.push_back(k);
        if (options_.sweep.block_solve && pend.size() > 1) {
            std::vector<VectorC> bcols(pend.size()), xcols(pend.size());
            for (std::size_t i = 0; i < pend.size(); ++i) {
                bcols[i] = rhs[pend[i]];
                xcols[i] = x0[pend[i]];
            }
            // The block shares one inner-iteration budget across its
            // columns; scale it so each column keeps the same allowance the
            // per-column path would grant.
            GmresOptions bopt = options_.gmres;
            bopt.max_iterations *= pend.size();
            const BlockGmresResult br =
                block_gmres(apply, bcols, xcols, bopt, precond);
            ++block_solves;
            solves_attempted += pend.size();
            iters += br.iterations;
            matvecs += br.matvecs;
            restarts += br.cycles;
            for (std::size_t i = 0; i < pend.size(); ++i) {
                const std::size_t k = pend[i];
                colres[k] = br.residuals[i];
                cur[k] = std::move(xcols[i]);
                ok[k] = colres[k] <= options_.fail_tol &&
                        robust::all_finite(cur[k]);
            }
            if (sid != obs::kStreamNone)
                obs::stream_append(sid, static_cast<double>(pend.size()),
                                   static_cast<double>(br.iterations));
        } else {
            for (const std::size_t k : pend) {
                if (options_.recovery.cancel != nullptr)
                    options_.recovery.cancel->poll("em.iterative.gmres");
                VectorC v = x0[k];
                const GmresResult gr =
                    gmres(apply, rhs[k], v, options_.gmres, precond);
                ++solves_attempted;
                iters += gr.iterations;
                matvecs += gr.matvecs;
                restarts += gr.restarts;
                colres[k] = gr.residual;
                cur[k] = std::move(v);
                ok[k] = colres[k] <= options_.fail_tol &&
                        robust::all_finite(cur[k]);
                if (!ok[k]) break; // escalate before touching later columns
                if (sid != obs::kStreamNone)
                    obs::stream_append(sid, static_cast<double>(k),
                                       static_cast<double>(gr.iterations));
            }
        }
        for (std::size_t k = 0; k < p; ++k)
            if (!ok[k]) return false;
        return true;
    };

    bool all_ok = run_attempt();
    double worst_bad = 0;
    for (std::size_t k = 0; k < p; ++k)
        if (!ok[k]) worst_bad = std::max(worst_bad, colres[k]);

    // Escalation rung 1: the stronger block-Jacobi preconditioner, sticky
    // for the rest of this solver's lifetime.
    if (!all_ok && recover && options_.recovery.allow_precond_escalation &&
        kind == PreconditionerKind::Diagonal) {
        kind = PreconditionerKind::NearFieldBlock;
        active_precond_.store(kind, std::memory_order_relaxed);
        build_precond(kind);
        ++escalations;
        if (sid != obs::kStreamNone)
            obs::stream_mark(sid, 0.0, "escalate:near_field_block");
        if (!escalation_noted_.exchange(true))
            robust::note_recovery(
                &local_report, "em.precond_escalation",
                "GMRES stalled at residual " + std::to_string(worst_bad) +
                    " at f = " + std::to_string(freq_hz) +
                    " Hz; escalated Diagonal -> NearFieldBlock (sticky)");
        all_ok = run_attempt();
        worst_bad = 0;
        for (std::size_t k = 0; k < p; ++k)
            if (!ok[k]) worst_bad = std::max(worst_bad, colres[k]);
    }
    // Escalation rung 2: dense LU for the whole frequency point.
    if (!all_ok && recover && options_.recovery.allow_dense_fallback) {
        if (sid != obs::kStreamNone)
            obs::stream_mark(sid, 0.0, "escalate:dense_fallback");
        robust::note_recovery(
            &local_report, "em.dense_fallback",
            "GMRES stalled at residual " + std::to_string(worst_bad) +
                " at f = " + std::to_string(freq_hz) +
                " Hz; recomputed the frequency with the dense solver");
        MatrixC zd = dense_solver().port_impedance(freq_hz, port_nodes);
        const std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.frequencies;
        // Attribute only the column solves GMRES actually ran, and fold the
        // residuals of the columns that did complete into the worst-residual
        // telemetry — the dense recomputation replaces their results but not
        // the fact that the work happened.
        stats_.solves += solves_attempted;
        stats_.block_solves += block_solves;
        stats_.iterations += iters;
        stats_.matvecs += matvecs;
        stats_.restarts += restarts;
        stats_.precond_escalations += escalations;
        ++stats_.dense_fallbacks;
        for (std::size_t k = 0; k < p; ++k)
            if (ok[k])
                stats_.worst_residual =
                    std::max(stats_.worst_residual, colres[k]);
        if (sweep) {
            ++stats_.sweep_points;
            if (warm_started) ++stats_.warm_starts;
            stats_.recycle_hits += recycle_hits;
        }
        report_.merge(local_report);
        return zd;
    }
    if (!all_ok)
        throw NumericalError(
            "IterativeSolver: GMRES stalled at relative residual " +
            std::to_string(worst_bad) + " (fail_tol " +
            std::to_string(options_.fail_tol) + ") at f = " +
            std::to_string(freq_hz) + " Hz");

    // V = (1/jw) Ppot (J − Pᵀ I); Z(q, k) = V at port q.
    for (std::size_t k = 0; k < p; ++k) {
        std::fill(tnode.begin(), tnode.end(), Complex{});
        tnode[port_nodes[k]] = Complex(1.0, 0.0);
        for (std::size_t b = 0; b < m; ++b) {
            tnode[branches[b].n1] -= cur[k][b];
            tnode[branches[b].n2] += cur[k][b];
        }
        pop.apply(tnode, unode);
        for (std::size_t q = 0; q < p; ++q)
            z(q, k) = inv_jw * unode[port_nodes[q]];
    }

    // Grow the recycled subspace with this frequency's solutions: modified
    // Gram-Schmidt against the existing basis, then cache the operator
    // component products (one L and one P·Ppot·Pᵀ application per retained
    // vector) so any later frequency recombines A(ω)·u for free. Solutions
    // are the right thing to recycle — they sample the analytic solution
    // manifold x(ω), which the multilevel sweep order then lets every later
    // point interpolate; recycling raw Krylov directions instead floods the
    // basis with one point's fine corrections and evicts that manifold.
    // Oldest vectors are evicted first; dropping a vector from an
    // orthonormal set keeps it orthonormal.
    std::size_t saved_iters = 0;
    if (sweep) {
        if (options_.sweep.warm_start && options_.sweep.recycle_dim > 0) {
            for (std::size_t k = 0; k < p; ++k) {
                VectorC u = cur[k];
                const double xn = norm2(u);
                for (std::size_t j = 0; j < sweep->basis_u.size(); ++j) {
                    const Complex c = cdot(sweep->basis_u[j], u);
                    const VectorC& uj = sweep->basis_u[j];
                    for (std::size_t b = 0; b < m; ++b) u[b] -= c * uj[b];
                }
                const double un = norm2(u);
                if (!(un > 1e-10 * xn)) continue; // already spanned
                for (std::size_t b = 0; b < m; ++b) u[b] /= un;
                VectorC du(m), lu(m), su(m);
                for (std::size_t b = 0; b < m; ++b)
                    du[b] = zs_scale_[b] * u[b];
                lop.apply(u, lu);
                std::fill(tnode.begin(), tnode.end(), Complex{});
                for (std::size_t b = 0; b < m; ++b) {
                    tnode[branches[b].n1] += u[b];
                    tnode[branches[b].n2] -= u[b];
                }
                pop.apply(tnode, unode);
                for (std::size_t b = 0; b < m; ++b)
                    su[b] = unode[branches[b].n1] - unode[branches[b].n2];
                ++recycle_applies;
                ++matvecs; // one full A-component application
                sweep->basis_u.push_back(std::move(u));
                sweep->basis_d.push_back(std::move(du));
                sweep->basis_l.push_back(std::move(lu));
                sweep->basis_s.push_back(std::move(su));
            }
            while (sweep->basis_u.size() > options_.sweep.recycle_dim) {
                sweep->basis_u.erase(sweep->basis_u.begin());
                sweep->basis_d.erase(sweep->basis_d.begin());
                sweep->basis_l.erase(sweep->basis_l.begin());
                sweep->basis_s.erase(sweep->basis_s.begin());
            }
        }
        sweep->prev_solution = std::move(cur);
        if (!sweep->have_cold) {
            sweep->have_cold = true;
            sweep->cold_iterations = iters;
        } else if (iters < sweep->cold_iterations) {
            saved_iters = sweep->cold_iterations - iters;
        }
    }

    {
        static obs::Counter& c_warm = obs::counter("em.sweep.warm_starts");
        static obs::Counter& c_hits = obs::counter("em.sweep.recycle_hits");
        static obs::Counter& c_saved =
            obs::counter("em.sweep.saved_iterations");
        const std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.frequencies;
        stats_.solves += solves_attempted;
        stats_.block_solves += block_solves;
        stats_.iterations += iters;
        stats_.matvecs += matvecs;
        stats_.restarts += restarts;
        stats_.precond_escalations += escalations;
        for (std::size_t k = 0; k < p; ++k)
            stats_.worst_residual = std::max(stats_.worst_residual, colres[k]);
        if (sweep) {
            ++stats_.sweep_points;
            if (warm_started) {
                ++stats_.warm_starts;
                ++c_warm;
            }
            stats_.recycle_hits += recycle_hits;
            stats_.recycle_applies += recycle_applies;
            stats_.saved_iterations += saved_iters;
            c_hits.add(recycle_hits);
            c_saved.add(saved_iters);
        }
        report_.merge(local_report);
    }
    return z;
}

const DirectSolver& IterativeSolver::dense_solver() const {
    const std::lock_guard<std::mutex> lock(dense_mu_);
    if (!dense_) dense_ = std::make_unique<DirectSolver>(bem_, zs_);
    return *dense_;
}

MatrixC IterativeSolver::port_impedance(
    double freq_hz, const std::vector<std::size_t>& port_nodes) const {
    PGSI_REQUIRE(freq_hz > 0, "IterativeSolver: frequency must be positive");
    PGSI_REQUIRE(!port_nodes.empty(), "IterativeSolver: no port nodes given");
    for (const std::size_t node : port_nodes)
        PGSI_REQUIRE(node < bem_.node_count(),
                     "IterativeSolver: port node out of range");
    PGSI_TRACE_SCOPE("em.solve.port_impedance_iterative");
    ensure_setup();
    const auto t0 = std::chrono::steady_clock::now();
    MatrixC z = solve_ports(freq_hz, port_nodes, nullptr);
    const double dt = seconds_since(t0);
    {
        const std::lock_guard<std::mutex> lock(stats_mu_);
        stats_.solve_seconds += dt;
    }
    return z;
}

std::vector<MatrixC> IterativeSolver::sweep_impedance(
    const VectorD& freqs_hz, const std::vector<std::size_t>& port_nodes) const {
    PGSI_TRACE_SCOPE("em.solve.sweep");
    ensure_setup();
    std::vector<MatrixC> out(freqs_hz.size());
    if (!options_.sweep.engine || freqs_hz.size() < 2) {
        // Independent cold solves fanned out over the pool; the FFT/GMRES
        // kernels run inline inside pool workers (the sweep level owns the
        // parallelism).
        par::parallel_for(freqs_hz.size(), [&](std::size_t i) {
            out[i] = port_impedance(freqs_hz[i], port_nodes);
        });
        return out;
    }
    // Sweep engine: frequencies run sequentially so each point reuses the
    // previous points' Krylov work (warm starts, recycled subspace, cached
    // rhs bases). The kernels inside each point still use the pool, and all
    // cross-frequency decisions are serial, so results are bitwise
    // independent of the thread count. Validation of the inputs matches
    // port_impedance.
    PGSI_REQUIRE(!port_nodes.empty(), "IterativeSolver: no port nodes given");
    for (const std::size_t node : port_nodes)
        PGSI_REQUIRE(node < bem_.node_count(),
                     "IterativeSolver: port node out of range");
    const std::size_t sid = obs::streams_enabled()
                                ? obs::stream_open("em.sweep.iterations")
                                : obs::kStreamNone;
    // Multilevel solve order: endpoints first, then level-by-level segment
    // midpoints (breadth-first bisection). With subspace recycling on, each
    // later point is bracketed by already-solved frequencies, so the
    // warm-start projection interpolates instead of extrapolating — the
    // projected initial residual drops by orders of magnitude, which is
    // where the sweep's matvec savings come from. Without recycling the
    // natural order is kept: the previous-solution seed wants adjacency.
    std::vector<std::size_t> order;
    order.reserve(freqs_hz.size());
    if (options_.sweep.warm_start && options_.sweep.recycle_dim > 0) {
        order.push_back(0);
        order.push_back(freqs_hz.size() - 1);
        std::vector<std::pair<std::size_t, std::size_t>> level{
            {0, freqs_hz.size() - 1}};
        while (!level.empty()) {
            std::vector<std::pair<std::size_t, std::size_t>> next;
            for (const auto& [lo, hi] : level) {
                const std::size_t mid = lo + (hi - lo) / 2;
                if (mid == lo || mid == hi) continue;
                order.push_back(mid);
                next.emplace_back(lo, mid);
                next.emplace_back(mid, hi);
            }
            level = std::move(next);
        }
    } else {
        for (std::size_t i = 0; i < freqs_hz.size(); ++i) order.push_back(i);
    }
    SweepState sweep;
    for (const std::size_t i : order) {
        PGSI_REQUIRE(freqs_hz[i] > 0,
                     "IterativeSolver: frequency must be positive");
        const auto t0 = std::chrono::steady_clock::now();
        const std::size_t iters_before = stats_.iterations;
        out[i] = solve_ports(freqs_hz[i], port_nodes, &sweep);
        const double dt = seconds_since(t0);
        {
            const std::lock_guard<std::mutex> lock(stats_mu_);
            stats_.solve_seconds += dt;
        }
        if (sid != obs::kStreamNone)
            obs::stream_append(
                sid, freqs_hz[i],
                static_cast<double>(stats_.iterations - iters_before));
    }
    return out;
}

std::unique_ptr<PlaneSolver> make_solver(const PlaneBem& bem,
                                         SurfaceImpedance zs,
                                         const SolverOptions& options) {
    SolverBackend backend = options.backend;
    if (backend == SolverBackend::Auto) {
        const bool matrix_free =
            bem.options().assembly != AssemblyMode::Direct && bem.uniform_lattice();
        backend = (matrix_free && bem.node_count() >= options.auto_node_threshold)
                      ? SolverBackend::Iterative
                      : SolverBackend::Direct;
    }
    if (backend == SolverBackend::Iterative)
        return std::make_unique<IterativeSolver>(bem, zs, options);
    return std::make_unique<DirectSolver>(bem, zs, options.recovery);
}

} // namespace pgsi
