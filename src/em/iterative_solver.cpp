#include "em/iterative_solver.hpp"

#include <chrono>
#include <cmath>
#include <map>
#include <memory>
#include <utility>

#include "common/constants.hpp"
#include "common/error.hpp"
#include "common/parallel.hpp"
#include "common/robust.hpp"
#include "numeric/lu.hpp"
#include "obs/metrics.hpp"
#include "obs/resource.hpp"
#include "obs/stream.hpp"
#include "obs/trace.hpp"

namespace pgsi {

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
        .count();
}

} // namespace

IterativeSolver::IterativeSolver(const PlaneBem& bem, SurfaceImpedance zs,
                                 SolverOptions options)
    : bem_(bem), zs_(zs), options_(options) {
    PGSI_REQUIRE(options_.precond_tile_cells >= 1,
                 "SolverOptions: precond_tile_cells must be >= 1");
    PGSI_REQUIRE(options_.fail_tol > 0, "SolverOptions: fail_tol must be positive");
}

void IterativeSolver::ensure_setup() const {
    if (setup_done_) return;
    PGSI_TRACE_SCOPE("em.iterative.setup");
    PGSI_ALLOC_SCOPE("em.iterative");
    const auto t0 = std::chrono::steady_clock::now();
    // Force the lazy operator builds (kernel spectra or dense fallbacks)
    // before any solve fans out over the pool.
    bem_.potential_operator();
    bem_.inductance_operator();

    const auto& branches = bem_.mesh().branches();
    zs_scale_.resize(branches.size());
    for (std::size_t b = 0; b < branches.size(); ++b)
        zs_scale_[b] = branches[b].length() / branches[b].width();

    // The tile partition is also needed when escalation may promote a
    // Diagonal run to NearFieldBlock mid-sweep.
    const bool want_tiles =
        options_.preconditioner == PreconditionerKind::NearFieldBlock ||
        (options_.recovery.policy == robust::RecoveryPolicy::Recover &&
         options_.recovery.allow_precond_escalation);
    if (want_tiles) {
        // Partition the current cells by midpoint into square geometric
        // tiles. A tile mixes x- and y-directed cells on purpose: the local
        // plaquette loop currents (the nullspace of the nodal term) only
        // appear in blocks that couple both directions. std::map keeps the
        // tile order deterministic.
        const double tw =
            static_cast<double>(options_.precond_tile_cells) * bem_.mesh().pitch();
        std::map<std::pair<long, long>, std::vector<std::size_t>> groups;
        for (std::size_t b = 0; b < branches.size(); ++b) {
            const double mx = 0.5 * (branches[b].x0 + branches[b].x1);
            const double my = 0.5 * (branches[b].y0 + branches[b].y1);
            const std::pair<long, long> key{
                static_cast<long>(std::floor(mx / tw)),
                static_cast<long>(std::floor(my / tw))};
            groups[key].push_back(b);
        }
        tiles_.clear();
        tiles_.reserve(groups.size());
        for (auto& [key, ids] : groups) tiles_.push_back(std::move(ids));
    }
    stats_.setup_seconds += seconds_since(t0);
    setup_done_ = true;
}

MatrixC IterativeSolver::solve_ports(
    double freq_hz, const std::vector<std::size_t>& port_nodes) const {
    PGSI_ALLOC_SCOPE("em.iterative");
    const double omega = 2.0 * pi * freq_hz;
    const Complex jw(0.0, omega);
    const Complex inv_jw = 1.0 / jw;

    const InteractionOperator& pop = bem_.potential_operator();
    const InteractionOperator& lop = bem_.inductance_operator();
    const auto& branches = bem_.mesh().branches();
    const std::size_t m = branches.size();
    const std::size_t n = bem_.node_count();
    const std::size_t p = port_nodes.size();

    const Complex zsv = zs_.at(omega);
    VectorC zsb(m);
    for (std::size_t b = 0; b < m; ++b) zsb[b] = zsv * zs_scale_[b];

    // A x = Zs.x + jw (L x) + (1/jw) P Ppot Pᵀ x, all through the operators.
    VectorC tnode(n), unode(n), wbr(m);
    const LinearOpC apply = [&](const VectorC& x, VectorC& y) {
        std::fill(tnode.begin(), tnode.end(), Complex{});
        for (std::size_t b = 0; b < m; ++b) {
            tnode[branches[b].n1] += x[b];
            tnode[branches[b].n2] -= x[b];
        }
        pop.apply(tnode, unode);
        lop.apply(x, wbr);
        y.resize(m);
        for (std::size_t b = 0; b < m; ++b)
            y[b] = zsb[b] * x[b] + jw * wbr[b] +
                   inv_jw * (unode[branches[b].n1] - unode[branches[b].n2]);
    };

    // Exact A entries for the preconditioner blocks, via the operators'
    // displacement-table lookups (no dense matrix is ever formed).
    auto s_entry = [&](std::size_t a, std::size_t b) {
        return pop.entry(branches[a].n1, branches[b].n1) -
               pop.entry(branches[a].n1, branches[b].n2) -
               pop.entry(branches[a].n2, branches[b].n1) +
               pop.entry(branches[a].n2, branches[b].n2);
    };
    auto a_entry = [&](std::size_t a, std::size_t b) {
        Complex v = jw * lop.entry(a, b) + inv_jw * s_entry(a, b);
        if (a == b) v += zsb[a];
        return v;
    };

    // Preconditioner state is per-frequency (tile factors depend on ω); the
    // builder caches, so escalating Diagonal → NearFieldBlock mid-call only
    // pays for the blocks once.
    LinearOpC precond;
    std::vector<std::unique_ptr<const Lu<Complex>>> tile_lu;
    VectorC dinv;
    auto build_precond = [&](PreconditionerKind kind) {
        if (kind == PreconditionerKind::NearFieldBlock) {
            if (tile_lu.empty()) {
                tile_lu.resize(tiles_.size());
                par::parallel_for(tiles_.size(), [&](std::size_t ti) {
                    const auto& ids = tiles_[ti];
                    MatrixC blk(ids.size(), ids.size());
                    for (std::size_t r = 0; r < ids.size(); ++r)
                        for (std::size_t c = 0; c < ids.size(); ++c)
                            blk(r, c) = a_entry(ids[r], ids[c]);
                    tile_lu[ti] =
                        std::make_unique<const Lu<Complex>>(std::move(blk));
                });
            }
            precond = [&](const VectorC& x, VectorC& y) {
                y.resize(m); // every branch belongs to exactly one tile
                par::parallel_for(tiles_.size(), [&](std::size_t ti) {
                    const auto& ids = tiles_[ti];
                    VectorC rhs(ids.size());
                    for (std::size_t r = 0; r < ids.size(); ++r)
                        rhs[r] = x[ids[r]];
                    const VectorC sol = tile_lu[ti]->solve(rhs);
                    for (std::size_t r = 0; r < ids.size(); ++r)
                        y[ids[r]] = sol[r];
                });
            };
        } else {
            if (dinv.empty()) {
                dinv.resize(m);
                for (std::size_t b = 0; b < m; ++b)
                    dinv[b] = 1.0 / a_entry(b, b);
            }
            precond = [&](const VectorC& x, VectorC& y) {
                y.resize(m);
                for (std::size_t b = 0; b < m; ++b) y[b] = dinv[b] * x[b];
            };
        }
    };
    PreconditionerKind kind = options_.preconditioner;
    build_precond(kind);

    const bool recover =
        options_.recovery.policy == robust::RecoveryPolicy::Recover;
    robust::RecoveryReport local_report;
    MatrixC z(p, p);
    std::size_t iters = 0, matvecs = 0, restarts = 0;
    std::size_t escalations = 0;
    double worst = 0;
    // Convergence stream: GMRES iterations per port column at this
    // frequency, with marks where the preconditioner ladder escalated.
    const std::size_t sid = obs::streams_enabled()
                                ? obs::stream_open("em.iterative.columns")
                                : obs::kStreamNone;
    if (sid != obs::kStreamNone)
        obs::stream_mark(sid, 0.0, "f=" + std::to_string(freq_hz) + "Hz");
    for (std::size_t k = 0; k < p; ++k) {
        // b = (1/jw) P Ppot e_port — the port's unit current injection.
        std::fill(tnode.begin(), tnode.end(), Complex{});
        tnode[port_nodes[k]] = Complex(1.0, 0.0);
        pop.apply(tnode, unode);
        VectorC rhs(m);
        for (std::size_t b = 0; b < m; ++b)
            rhs[b] = inv_jw * (unode[branches[b].n1] - unode[branches[b].n2]);

        VectorC cur(m, Complex{});
        GmresResult gr = gmres(apply, rhs, cur, options_.gmres, precond);
        iters += gr.iterations;
        matvecs += gr.matvecs;
        restarts += gr.restarts;
        bool bad =
            gr.residual > options_.fail_tol || !robust::all_finite(cur);
        // Escalation rung 1: the stronger block-Jacobi preconditioner.
        if (bad && recover && options_.recovery.allow_precond_escalation &&
            kind == PreconditionerKind::Diagonal) {
            kind = PreconditionerKind::NearFieldBlock;
            build_precond(kind);
            ++escalations;
            if (sid != obs::kStreamNone)
                obs::stream_mark(sid, static_cast<double>(k),
                                 "escalate:near_field_block");
            robust::note_recovery(
                &local_report, "em.precond_escalation",
                "GMRES stalled at residual " + std::to_string(gr.residual) +
                    " at f = " + std::to_string(freq_hz) +
                    " Hz; escalated Diagonal -> NearFieldBlock");
            cur.assign(m, Complex{});
            gr = gmres(apply, rhs, cur, options_.gmres, precond);
            iters += gr.iterations;
            matvecs += gr.matvecs;
            restarts += gr.restarts;
            bad = gr.residual > options_.fail_tol ||
                  !robust::all_finite(cur);
        }
        // Escalation rung 2: dense LU for the whole frequency point.
        if (bad && recover && options_.recovery.allow_dense_fallback) {
            if (sid != obs::kStreamNone)
                obs::stream_mark(sid, static_cast<double>(k),
                                 "escalate:dense_fallback");
            robust::note_recovery(
                &local_report, "em.dense_fallback",
                "GMRES stalled at residual " + std::to_string(gr.residual) +
                    " at f = " + std::to_string(freq_hz) +
                    " Hz; recomputed the frequency with the dense solver");
            MatrixC zd = dense_solver().port_impedance(freq_hz, port_nodes);
            const std::lock_guard<std::mutex> lock(stats_mu_);
            ++stats_.frequencies;
            stats_.solves += p;
            stats_.iterations += iters;
            stats_.matvecs += matvecs;
            stats_.restarts += restarts;
            stats_.precond_escalations += escalations;
            ++stats_.dense_fallbacks;
            report_.merge(local_report);
            return zd;
        }
        if (bad)
            throw NumericalError(
                "IterativeSolver: GMRES stalled at relative residual " +
                std::to_string(gr.residual) + " (fail_tol " +
                std::to_string(options_.fail_tol) + ") at f = " +
                std::to_string(freq_hz) + " Hz, port node " +
                std::to_string(port_nodes[k]));
        worst = std::max(worst, gr.residual);
        if (sid != obs::kStreamNone)
            obs::stream_append(sid, static_cast<double>(k),
                               static_cast<double>(gr.iterations));

        // V = (1/jw) Ppot (J − Pᵀ I); Z(q, k) = V at port q.
        std::fill(tnode.begin(), tnode.end(), Complex{});
        tnode[port_nodes[k]] = Complex(1.0, 0.0);
        for (std::size_t b = 0; b < m; ++b) {
            tnode[branches[b].n1] -= cur[b];
            tnode[branches[b].n2] += cur[b];
        }
        pop.apply(tnode, unode);
        for (std::size_t q = 0; q < p; ++q)
            z(q, k) = inv_jw * unode[port_nodes[q]];
    }
    {
        const std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.frequencies;
        stats_.solves += p;
        stats_.iterations += iters;
        stats_.matvecs += matvecs;
        stats_.restarts += restarts;
        stats_.precond_escalations += escalations;
        stats_.worst_residual = std::max(stats_.worst_residual, worst);
        report_.merge(local_report);
    }
    return z;
}

const DirectSolver& IterativeSolver::dense_solver() const {
    const std::lock_guard<std::mutex> lock(dense_mu_);
    if (!dense_) dense_ = std::make_unique<DirectSolver>(bem_, zs_);
    return *dense_;
}

MatrixC IterativeSolver::port_impedance(
    double freq_hz, const std::vector<std::size_t>& port_nodes) const {
    PGSI_REQUIRE(freq_hz > 0, "IterativeSolver: frequency must be positive");
    PGSI_REQUIRE(!port_nodes.empty(), "IterativeSolver: no port nodes given");
    for (const std::size_t node : port_nodes)
        PGSI_REQUIRE(node < bem_.node_count(),
                     "IterativeSolver: port node out of range");
    PGSI_TRACE_SCOPE("em.solve.port_impedance_iterative");
    ensure_setup();
    const auto t0 = std::chrono::steady_clock::now();
    MatrixC z = solve_ports(freq_hz, port_nodes);
    const double dt = seconds_since(t0);
    {
        const std::lock_guard<std::mutex> lock(stats_mu_);
        stats_.solve_seconds += dt;
    }
    return z;
}

std::vector<MatrixC> IterativeSolver::sweep_impedance(
    const VectorD& freqs_hz, const std::vector<std::size_t>& port_nodes) const {
    PGSI_TRACE_SCOPE("em.solve.sweep");
    // Build the operators and tile partition once, then fan the independent
    // frequency points out over the pool; the FFT/GMRES kernels run inline
    // inside pool workers (the sweep level owns the parallelism).
    ensure_setup();
    std::vector<MatrixC> out(freqs_hz.size());
    par::parallel_for(freqs_hz.size(), [&](std::size_t i) {
        out[i] = port_impedance(freqs_hz[i], port_nodes);
    });
    return out;
}

std::unique_ptr<PlaneSolver> make_solver(const PlaneBem& bem,
                                         SurfaceImpedance zs,
                                         const SolverOptions& options) {
    SolverBackend backend = options.backend;
    if (backend == SolverBackend::Auto) {
        const bool matrix_free =
            bem.options().assembly != AssemblyMode::Direct && bem.uniform_lattice();
        backend = (matrix_free && bem.node_count() >= options.auto_node_threshold)
                      ? SolverBackend::Iterative
                      : SolverBackend::Direct;
    }
    if (backend == SolverBackend::Iterative)
        return std::make_unique<IterativeSolver>(bem, zs, options);
    return std::make_unique<DirectSolver>(bem, zs);
}

} // namespace pgsi
