// Translation-invariant interaction lattices and displacement tables.
//
// Every quasi-static Green's kind in greens.hpp depends on the observation
// point only through the in-plane displacement obs − src_center (the z
// arguments enter separately), so two element pairs with equal displacement,
// equal element shapes, and equal (z, z') produce equal matrix entries. A
// family of congruent elements whose centers sit on one integer lattice
// therefore needs one kernel evaluation per *distinct lattice offset and
// z-pair* instead of one per element pair.
//
// This header carries the shared machinery: lattice detection, the offset
// table build, and the pair → table-entry index map. Two consumers exist:
// the cached dense fills in bem_plane.cpp (every matrix entry becomes a
// table lookup) and the block-Toeplitz operators in toeplitz_operator.hpp
// (the same table, circulant-embedded, applies the matrix in O(N log N)
// without ever forming it).
#pragma once

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "common/parallel.hpp"
#include "geometry/point2.hpp"

namespace pgsi {

/// Integer-lattice description of one congruent element family.
struct Lattice {
    bool uniform = false;
    double sx = 0, sy = 0;        ///< lattice spacing = element dims [m]
    std::vector<long> ix, iy;     ///< integer coords per element
    std::vector<int> zid;         ///< per-element index into zs
    std::vector<double> zs;       ///< distinct element heights
    long span_x = 0, span_y = 0;  ///< max |ix_i − ix_j|, |iy_i − iy_j|
    long min_x = 0, min_y = 0;    ///< smallest integer coords in the family

    std::size_t count() const { return ix.size(); }

    /// Kernel evaluations a cached fill performs (full offset × z-pair box).
    std::size_t table_entries() const {
        return static_cast<std::size_t>(2 * span_x + 1) *
               static_cast<std::size_t>(2 * span_y + 1) * zs.size() * zs.size();
    }
};

/// Relative tolerance for element congruence (sizes differ only by rounding
/// of bbox/pitch arithmetic, ~1e-14) and for lattice integrality of the
/// center coordinates. Anything that deviates more is genuinely non-uniform
/// and must take the direct path — a pair accepted here is reconstructed
/// from the lattice to the same accuracy.
inline constexpr double kCongruenceTol = 1e-9;

/// Detect whether `count` elements with centers c(e), sizes (w(e), h(e)) and
/// heights z(e) form a uniform family: all sizes equal and all centers on an
/// integer lattice with spacing equal to the element size.
template <class CenterF, class SizeF, class ZF>
Lattice detect_lattice(std::size_t count, CenterF&& center, SizeF&& size,
                       ZF&& z) {
    Lattice lat;
    if (count == 0) {
        lat.uniform = true;
        return lat;
    }
    const auto [w0, h0] = size(0);
    if (w0 <= 0 || h0 <= 0) return lat;
    for (std::size_t e = 0; e < count; ++e) {
        const auto [w, h] = size(e);
        if (std::abs(w - w0) > kCongruenceTol * w0 ||
            std::abs(h - h0) > kCongruenceTol * h0)
            return lat;
    }
    const Point2 anchor = center(0);
    lat.ix.resize(count);
    lat.iy.resize(count);
    lat.zid.resize(count);
    for (std::size_t e = 0; e < count; ++e) {
        const Point2 c = center(e);
        const double tx = (c.x - anchor.x) / w0;
        const double ty = (c.y - anchor.y) / h0;
        const double rx = std::round(tx), ry = std::round(ty);
        if (std::abs(tx - rx) > kCongruenceTol || std::abs(ty - ry) > kCongruenceTol)
            return lat;
        lat.ix[e] = static_cast<long>(rx);
        lat.iy[e] = static_cast<long>(ry);
        const double ze = z(e);
        std::size_t zi = 0;
        while (zi < lat.zs.size() && lat.zs[zi] != ze) ++zi;
        if (zi == lat.zs.size()) lat.zs.push_back(ze);
        lat.zid[e] = static_cast<int>(zi);
    }
    const auto [ixmin, ixmax] = std::minmax_element(lat.ix.begin(), lat.ix.end());
    const auto [iymin, iymax] = std::minmax_element(lat.iy.begin(), lat.iy.end());
    lat.span_x = *ixmax - *ixmin;
    lat.span_y = *iymax - *iymin;
    lat.min_x = *ixmin;
    lat.min_y = *iymin;
    lat.sx = w0;
    lat.sy = h0;
    lat.uniform = true;
    return lat;
}

/// Evaluate the offset table for a lattice: entry(di, dj, z_obs, z_src) for
/// every offset in [-span, span]² and every ordered z pair, parallel over
/// entries. Indexing matches table_index below.
template <class EntryF>
std::vector<double> build_interaction_table(const Lattice& lat, EntryF&& entry) {
    const long w = 2 * lat.span_x + 1, h = 2 * lat.span_y + 1;
    const std::size_t nz = lat.zs.size();
    std::vector<double> table(static_cast<std::size_t>(w) * h * nz * nz);
    par::parallel_for_chunked(
        table.size(), 0, [&](std::size_t b, std::size_t e) {
            for (std::size_t idx = b; idx < e; ++idx) {
                std::size_t rest = idx;
                const long di = static_cast<long>(rest % w) - lat.span_x;
                rest /= w;
                const long dj = static_cast<long>(rest % h) - lat.span_y;
                rest /= h;
                const std::size_t zo = rest % nz;
                const std::size_t zsrc = rest / nz;
                table[idx] = entry(di, dj, lat.zs[zo], lat.zs[zsrc]);
            }
        });
    return table;
}

/// Table slot of the (obs, src) element pair.
inline std::size_t table_index(const Lattice& lat, std::size_t obs,
                               std::size_t src) {
    const long w = 2 * lat.span_x + 1, h = 2 * lat.span_y + 1;
    const std::size_t nz = lat.zs.size();
    const std::size_t di =
        static_cast<std::size_t>(lat.ix[obs] - lat.ix[src] + lat.span_x);
    const std::size_t dj =
        static_cast<std::size_t>(lat.iy[obs] - lat.iy[src] + lat.span_y);
    return ((static_cast<std::size_t>(lat.zid[src]) * nz +
             static_cast<std::size_t>(lat.zid[obs])) *
                static_cast<std::size_t>(h) +
            dj) *
               static_cast<std::size_t>(w) +
        di;
}

/// Table slot of a raw (displacement, z-layer pair) combination, with
/// di ∈ [−span_x, span_x], dj ∈ [−span_y, span_y] and zo/zsrc layer ids.
inline std::size_t table_offset_index(const Lattice& lat, long di, long dj,
                                      std::size_t zo, std::size_t zsrc) {
    const long w = 2 * lat.span_x + 1, h = 2 * lat.span_y + 1;
    const std::size_t nz = lat.zs.size();
    return ((zsrc * nz + zo) * static_cast<std::size_t>(h) +
            static_cast<std::size_t>(dj + lat.span_y)) *
               static_cast<std::size_t>(w) +
        static_cast<std::size_t>(di + lat.span_x);
}

/// Whether a cached fill is worthwhile: the table must be cheaper to
/// evaluate than the direct triangular fill it replaces.
inline bool cache_profitable(const Lattice& lat, std::size_t direct_evals) {
    return lat.uniform && lat.table_entries() < direct_evals;
}

} // namespace pgsi
