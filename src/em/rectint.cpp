#include "em/rectint.hpp"

#include <cmath>

namespace pgsi {

namespace {

// Corner antiderivative F(u,v) of 1/sqrt(u^2+v^2+z^2).
// ln(v + r) is rewritten as ln((u^2+z^2)/(r - v)) when v < 0; the two forms
// are identical analytically ((v+r)(r-v) = u^2+z^2) but the rewrite avoids
// catastrophic cancellation when v is negative and |v| ≈ r.
double corner(double u, double v, double z) {
    const double r = std::sqrt(u * u + v * v + z * z);
    if (r == 0.0) return 0.0;

    double t1 = 0.0;
    if (u != 0.0) {
        const double uz = u * u + z * z;
        const double arg = (v >= 0.0) ? (v + r) : uz / (r - v);
        // arg == 0 only when u^2+z^2 == 0, i.e. u == 0, handled above.
        t1 = u * std::log(arg);
    }
    double t2 = 0.0;
    if (v != 0.0) {
        const double vz = v * v + z * z;
        const double arg = (u >= 0.0) ? (u + r) : vz / (r - u);
        t2 = v * std::log(arg);
    }
    double t3 = 0.0;
    if (z != 0.0) t3 = z * std::atan2(u * v, z * r);
    return t1 + t2 - t3;
}

} // namespace

double rect_inv_r_integral(Point2 p, const Rect& r, double z) {
    // The integrand depends on z only through z^2, but the corner
    // antiderivative's atan2 term assumes z >= 0: feed it |z| so observation
    // points below the source plane get the same (even) value as above it.
    const double az = std::abs(z);
    const double u0 = r.x0 - p.x, u1 = r.x1 - p.x;
    const double v0 = r.y0 - p.y, v1 = r.y1 - p.y;
    return corner(u1, v1, az) - corner(u0, v1, az) - corner(u1, v0, az) +
           corner(u0, v0, az);
}

double rect_inv_r_point_approx(Point2 p, const Rect& r, double z) {
    const Point2 c = r.center();
    const double dx = p.x - c.x, dy = p.y - c.y;
    return r.area() / std::sqrt(dx * dx + dy * dy + z * z);
}

} // namespace pgsi
