#include "em/via.hpp"

#include <cmath>

#include "common/constants.hpp"
#include "common/error.hpp"

namespace pgsi {

double ViaSpec::inductance() const {
    PGSI_REQUIRE(length > 0 && drill > 0, "ViaSpec: degenerate geometry");
    PGSI_REQUIRE(4.0 * length > drill, "ViaSpec: barrel shorter than drill/4");
    return mu0 / (2.0 * pi) * length * (std::log(4.0 * length / drill) + 1.0);
}

double ViaSpec::resistance() const {
    PGSI_REQUIRE(plating > 0 && plating < drill,
                 "ViaSpec: plating must be positive and thinner than the drill");
    return resistivity * length / (pi * plating * (drill - plating));
}

double ViaSpec::capacitance() const {
    PGSI_REQUIRE(antipad > pad && pad > 0,
                 "ViaSpec: antipad must exceed the pad diameter");
    return 2.0 * pi * eps0 * eps_r * length / std::log(antipad / pad);
}

void stamp_via(Netlist& nl, const std::string& name, NodeId top, NodeId bottom,
               NodeId ref, const ViaSpec& via) {
    nl.add_inductor("L" + name, top, bottom, via.inductance(), via.resistance());
    const double c_half = 0.5 * via.capacitance();
    if (top != ref) nl.add_capacitor("C" + name + "_t", top, ref, c_half);
    if (bottom != ref) nl.add_capacitor("C" + name + "_b", bottom, ref, c_half);
}

} // namespace pgsi
