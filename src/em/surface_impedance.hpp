// Conductor surface impedance Zs(ω) (§3.1, impedance boundary condition).
//
// A finite-thickness conducting sheet has the exact internal impedance
//     Zs(ω) = (1+j)/(σ δ) · coth( (1+j) t / δ ),   δ = sqrt(2/(ω μ σ)),
// which limits to the DC sheet resistance 1/(σ t) at low frequency and to
// the skin-effect impedance (1+j)/(σ δ) once δ ≪ t. The quasi-static circuit
// extraction of §4 keeps only the DC value (the paper's first-order loss
// approximation); the exact Zs(ω) is available for the direct frequency
// sweep.
#pragma once

#include "numeric/matrix.hpp"

namespace pgsi {

/// Frequency-dependent surface impedance of a thin conducting sheet.
class SurfaceImpedance {
public:
    /// Ideal (lossless) conductor.
    SurfaceImpedance() = default;

    /// From a DC sheet resistance [ohm/square]; thickness unknown, so the
    /// skin-effect transition is unavailable and Zs(ω) stays at the DC value
    /// (adequate for the paper's examples, e.g. the 6 mΩ/sq tungsten planes).
    static SurfaceImpedance from_sheet_resistance(double rs_dc);

    /// From bulk conductivity σ [S/m] and sheet thickness t [m]; Zs(ω) uses
    /// the exact coth form.
    static SurfaceImpedance from_conductor(double sigma, double thickness);

    /// DC sheet resistance [ohm/square].
    double dc() const { return rs_dc_; }

    /// Surface impedance at angular frequency ω [ohm/square].
    Complex at(double omega) const;

    /// True for the default-constructed lossless sheet.
    bool lossless() const { return rs_dc_ == 0.0 && sigma_ == 0.0; }

private:
    double rs_dc_ = 0.0;
    double sigma_ = 0.0;      // 0 when constructed from sheet resistance only
    double thickness_ = 0.0;
};

} // namespace pgsi
