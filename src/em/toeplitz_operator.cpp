#include "em/toeplitz_operator.hpp"

#include <utility>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace pgsi {

namespace {

std::size_t grid_dim(long span) {
    return next_pow2(static_cast<std::size_t>(2 * span + 1));
}

} // namespace

ToeplitzFamily::ToeplitzFamily(Lattice lat, std::vector<double> table)
    : lat_(std::move(lat)),
      table_(std::move(table)),
      nx_(grid_dim(lat_.span_x)),
      ny_(grid_dim(lat_.span_y)),
      nz_(lat_.zs.empty() ? 1 : lat_.zs.size()),
      fx_(nx_),
      fy_(ny_) {
    PGSI_REQUIRE(lat_.uniform, "ToeplitzFamily: lattice is not uniform");
    if (lat_.count() == 0) return;
    PGSI_REQUIRE(table_.size() == lat_.table_entries(),
                 "ToeplitzFamily: table size does not match the lattice");
    PGSI_TRACE_SCOPE("toeplitz.family_setup");

    site_.resize(lat_.count());
    for (std::size_t e = 0; e < lat_.count(); ++e) {
        const std::size_t gx = static_cast<std::size_t>(lat_.ix[e] - lat_.min_x);
        const std::size_t gy = static_cast<std::size_t>(lat_.iy[e] - lat_.min_y);
        site_[e] = gy * nx_ + gx;
    }

    // One circulant kernel spectrum per ordered (z_obs, z_src) layer pair.
    // Offsets are wrapped onto the grid; because nx >= 2*span_x+1 (same in y)
    // the circular convolution of any two occupied sites lands on the true
    // displacement entry, never on a wrapped alias.
    const std::size_t nz = lat_.zs.size();
    kernel_hat_.assign(nz * nz, VectorC());
    for (std::size_t zo = 0; zo < nz; ++zo) {
        for (std::size_t zs = 0; zs < nz; ++zs) {
            VectorC k(nx_ * ny_, Complex{});
            for (long dj = -lat_.span_y; dj <= lat_.span_y; ++dj) {
                const std::size_t gj = static_cast<std::size_t>(
                    (dj + static_cast<long>(ny_)) % static_cast<long>(ny_));
                for (long di = -lat_.span_x; di <= lat_.span_x; ++di) {
                    const std::size_t gi = static_cast<std::size_t>(
                        (di + static_cast<long>(nx_)) % static_cast<long>(nx_));
                    k[gj * nx_ + gi] = table_[table_offset_index(lat_, di, dj, zo, zs)];
                }
            }
            fft_2d(k.data(), ny_, nx_, fy_, fx_, false);
            kernel_hat_[zo * nz + zs] = std::move(k);
        }
    }
}

void ToeplitzFamily::apply(const Complex* x, Complex* y) const {
    const std::size_t count = lat_.count();
    if (count == 0) return;
    const std::size_t nz = lat_.zs.size();
    const std::size_t cells = nx_ * ny_;

    // Scatter each source layer to its grid and transform it once.
    std::vector<VectorC> ghat(nz, VectorC(cells, Complex{}));
    for (std::size_t e = 0; e < count; ++e)
        ghat[static_cast<std::size_t>(lat_.zid[e])][site_[e]] = x[e];
    for (std::size_t zs = 0; zs < nz; ++zs)
        fft_2d(ghat[zs].data(), ny_, nx_, fy_, fx_, false);

    VectorC acc(cells);
    for (std::size_t zo = 0; zo < nz; ++zo) {
        // acc_hat = sum_zs K_hat(zo, zs) .* g_hat(zs), then back-transform.
        par::parallel_for_chunked(cells, 0, [&](std::size_t b, std::size_t e) {
            for (std::size_t k = b; k < e; ++k) {
                Complex s{};
                for (std::size_t zs = 0; zs < nz; ++zs)
                    s += kernel_hat_[zo * nz + zs][k] * ghat[zs][k];
                acc[k] = s;
            }
        });
        fft_2d(acc.data(), ny_, nx_, fy_, fx_, true);
        for (std::size_t e = 0; e < count; ++e)
            if (static_cast<std::size_t>(lat_.zid[e]) == zo) y[e] = acc[site_[e]];
    }
}

InteractionOperator InteractionOperator::toeplitz(
    std::vector<ToeplitzFamily> families,
    std::vector<std::vector<std::size_t>> idx, std::size_t size) {
    PGSI_REQUIRE(families.size() == idx.size(),
                 "InteractionOperator: one index map per family required");
    InteractionOperator op;
    op.size_ = size;
    op.families_ = std::move(families);
    op.idx_ = std::move(idx);
    op.family_of_.assign(size, -1);
    op.local_of_.assign(size, 0);
    for (std::size_t f = 0; f < op.families_.size(); ++f) {
        PGSI_REQUIRE(op.idx_[f].size() == op.families_[f].count(),
                     "InteractionOperator: index map size mismatch");
        for (std::size_t e = 0; e < op.idx_[f].size(); ++e) {
            const std::size_t g = op.idx_[f][e];
            PGSI_REQUIRE(g < size && op.family_of_[g] < 0,
                         "InteractionOperator: families must partition the index space");
            op.family_of_[g] = static_cast<int>(f);
            op.local_of_[g] = e;
        }
    }
    for (std::size_t g = 0; g < size; ++g)
        PGSI_REQUIRE(op.family_of_[g] >= 0,
                     "InteractionOperator: families must cover the index space");
    return op;
}

InteractionOperator InteractionOperator::dense(const MatrixD* m) {
    PGSI_REQUIRE(m != nullptr && m->rows() == m->cols(),
                 "InteractionOperator: dense matrix must be square");
    InteractionOperator op;
    op.size_ = m->rows();
    op.dense_ = m;
    return op;
}

void InteractionOperator::apply(const VectorC& x, VectorC& y) const {
    PGSI_REQUIRE(x.size() == size_, "InteractionOperator: size mismatch");
    y.assign(size_, Complex{});
    if (dense_) {
        static obs::Counter& c_dense = obs::counter("interaction_op.dense_applies");
        ++c_dense;
        par::parallel_for_chunked(size_, 0, [&](std::size_t r0, std::size_t r1) {
            for (std::size_t i = r0; i < r1; ++i) {
                const double* row = dense_->row(i);
                Complex s{};
                for (std::size_t j = 0; j < size_; ++j) s += row[j] * x[j];
                y[i] = s;
            }
        });
        return;
    }
    static obs::Counter& c_fft = obs::counter("interaction_op.fft_applies");
    ++c_fft;
    VectorC xf, yf;
    for (std::size_t f = 0; f < families_.size(); ++f) {
        const std::vector<std::size_t>& map = idx_[f];
        xf.resize(map.size());
        yf.assign(map.size(), Complex{});
        for (std::size_t e = 0; e < map.size(); ++e) xf[e] = x[map[e]];
        families_[f].apply(xf.data(), yf.data());
        for (std::size_t e = 0; e < map.size(); ++e) y[map[e]] = yf[e];
    }
}

double InteractionOperator::entry(std::size_t i, std::size_t j) const {
    PGSI_ASSERT(i < size_ && j < size_);
    if (dense_) return (*dense_)(i, j);
    if (family_of_[i] != family_of_[j]) return 0.0;
    const std::size_t f = static_cast<std::size_t>(family_of_[i]);
    return families_[f].entry(local_of_[i], local_of_[j]);
}

} // namespace pgsi
