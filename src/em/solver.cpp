#include "em/solver.hpp"

#include <chrono>
#include <memory>

#include "common/constants.hpp"
#include "common/error.hpp"
#include "common/parallel.hpp"
#include "numeric/lu.hpp"
#include "obs/resource.hpp"
#include "obs/trace.hpp"

namespace pgsi {

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
        .count();
}

} // namespace

DirectSolver::DirectSolver(const PlaneBem& bem, SurfaceImpedance zs,
                           robust::RecoveryOptions recovery)
    : bem_(bem), zs_(zs), recovery_(recovery) {}

MatrixC DirectSolver::nodal_admittance(double freq_hz) const {
    PGSI_REQUIRE(freq_hz > 0, "DirectSolver: frequency must be positive");
    PGSI_TRACE_SCOPE("em.solve.nodal_admittance");
    PGSI_ALLOC_SCOPE("em.solve");
    const double omega = 2.0 * pi * freq_hz;
    const Complex jw(0.0, omega);

    const MatrixD& l = bem_.inductance_matrix();
    const MatrixD& c = bem_.maxwell_capacitance();
    const auto& branches = bem_.mesh().branches();
    const std::size_t m = branches.size();
    const std::size_t n = bem_.node_count();

    // Branch impedance matrix Zb = Zs(ω)·len/width + jωL.
    auto t0 = std::chrono::steady_clock::now();
    MatrixC zb(m, m);
    par::parallel_for_chunked(m, 0, [&](std::size_t a0, std::size_t a1) {
        for (std::size_t a = a0; a < a1; ++a) {
            const double* lrow = l.row(a);
            Complex* zrow = zb.row(a);
            for (std::size_t b = 0; b < m; ++b) zrow[b] = jw * lrow[b];
        }
    });
    const Complex zs = zs_.at(omega);
    for (std::size_t b = 0; b < m; ++b)
        zb(b, b) += zs * branches[b].length() / branches[b].width();
    const double fill_s = seconds_since(t0);

    // X = Zb⁻¹ P through a single blocked multi-RHS solve against the dense
    // incidence; Y = Pᵀ X accumulated through the sparse incidence rows.
    t0 = std::chrono::steady_clock::now();
    std::unique_ptr<const Lu<Complex>> lu;
    try {
        lu = std::make_unique<const Lu<Complex>>(std::move(zb));
    } catch (Error& e) {
        e.with_context("while factoring the branch impedance at f = " +
                       std::to_string(freq_hz) + " Hz");
        throw;
    }
    const double factor_s = seconds_since(t0);

    t0 = std::chrono::steady_clock::now();
    MatrixC incidence(m, n);
    for (std::size_t b = 0; b < m; ++b) {
        incidence(b, branches[b].n1) = Complex(1.0, 0.0);
        incidence(b, branches[b].n2) = Complex(-1.0, 0.0);
    }
    const MatrixC x = lu->solve(incidence);
    MatrixC y(n, n);
    for (std::size_t b = 0; b < m; ++b) {
        const Complex* xrow = x.row(b);
        Complex* r1 = y.row(branches[b].n1);
        Complex* r2 = y.row(branches[b].n2);
        for (std::size_t j = 0; j < n; ++j) {
            r1[j] += xrow[j];
            r2[j] -= xrow[j];
        }
    }
    par::parallel_for_chunked(n, 0, [&](std::size_t i0, std::size_t i1) {
        for (std::size_t i = i0; i < i1; ++i) {
            const double* crow = c.row(i);
            Complex* yrow = y.row(i);
            for (std::size_t j = 0; j < n; ++j) yrow[j] += jw * crow[j];
        }
    });
    const double solve_s = seconds_since(t0);
    {
        const std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.frequencies;
        ++stats_.factorizations;
        stats_.solves += n;
        stats_.fill_seconds += fill_s;
        stats_.factor_seconds += factor_s;
        stats_.solve_seconds += solve_s;
    }
    return y;
}

MatrixC DirectSolver::port_impedance(
    double freq_hz, const std::vector<std::size_t>& port_nodes) const {
    PGSI_REQUIRE(!port_nodes.empty(), "DirectSolver: no port nodes given");
    // Cancellation point: one poll per frequency point (sweeps reach here
    // from pool workers; the first throw cancels the remaining chunks).
    if (recovery_.cancel != nullptr) recovery_.cancel->poll("em.direct.solve");
    PGSI_TRACE_SCOPE("em.solve.port_impedance");
    PGSI_ALLOC_SCOPE("em.solve");
    const MatrixC y = nodal_admittance(freq_hz);
    const std::size_t n = y.rows();
    const std::size_t p = port_nodes.size();
    for (const std::size_t node : port_nodes)
        PGSI_REQUIRE(node < n, "DirectSolver: port node out of range");

    // Only the port columns of Y⁻¹ are observable: solve Y X = [e_p ...]
    // (|ports| right-hand sides) instead of forming the full inverse, then
    // read the port rows of X.
    auto t0 = std::chrono::steady_clock::now();
    const Lu<Complex> lu(y);
    const double factor_s = seconds_since(t0);
    t0 = std::chrono::steady_clock::now();
    MatrixC rhs(n, p);
    for (std::size_t k = 0; k < p; ++k) rhs(port_nodes[k], k) = Complex(1.0, 0.0);
    const MatrixC cols = lu.solve(rhs);
    MatrixC z(p, p);
    for (std::size_t q = 0; q < p; ++q)
        for (std::size_t k = 0; k < p; ++k) z(q, k) = cols(port_nodes[q], k);
    const double solve_s = seconds_since(t0);
    {
        const std::lock_guard<std::mutex> lock(stats_mu_);
        stats_.factor_seconds += factor_s;
        stats_.solve_seconds += solve_s;
        ++stats_.factorizations;
        stats_.solves += p;
    }
    return z;
}

std::vector<MatrixC> DirectSolver::sweep_impedance(
    const VectorD& freqs_hz, const std::vector<std::size_t>& port_nodes) const {
    PGSI_TRACE_SCOPE("em.solve.sweep");
    PGSI_ALLOC_SCOPE("em.solve");
    // Force the lazy assemblies before fanning out: the frequency points are
    // embarrassingly parallel once the frequency-independent matrices exist,
    // and the per-frequency dense kernels run inline inside the pool workers
    // (the sweep level owns the parallelism).
    bem_.inductance_matrix();
    bem_.maxwell_capacitance();
    std::vector<MatrixC> out(freqs_hz.size());
    par::parallel_for(freqs_hz.size(), [&](std::size_t i) {
        out[i] = port_impedance(freqs_hz[i], port_nodes);
    });
    return out;
}

} // namespace pgsi
