#include "em/solver.hpp"

#include "common/constants.hpp"
#include "common/error.hpp"
#include "numeric/lu.hpp"

namespace pgsi {

DirectSolver::DirectSolver(const PlaneBem& bem, SurfaceImpedance zs)
    : bem_(bem), zs_(zs) {}

MatrixC DirectSolver::nodal_admittance(double freq_hz) const {
    PGSI_REQUIRE(freq_hz > 0, "DirectSolver: frequency must be positive");
    const double omega = 2.0 * pi * freq_hz;
    const Complex jw(0.0, omega);

    const MatrixD& l = bem_.inductance_matrix();
    const MatrixD& c = bem_.maxwell_capacitance();
    const auto& branches = bem_.mesh().branches();
    const std::size_t m = branches.size();
    const std::size_t n = bem_.node_count();

    // Branch impedance matrix Zb = Zs(ω)·len/width + jωL.
    MatrixC zb(m, m);
    for (std::size_t a = 0; a < m; ++a)
        for (std::size_t b = 0; b < m; ++b) zb(a, b) = jw * l(a, b);
    const Complex zs = zs_.at(omega);
    for (std::size_t b = 0; b < m; ++b)
        zb(b, b) += zs * branches[b].length() / branches[b].width();

    // X = Zb⁻¹ P, built column-by-column through the sparse incidence.
    const Lu<Complex> lu(std::move(zb));
    MatrixC y(n, n);
    VectorC col(m);
    for (std::size_t j = 0; j < n; ++j) {
        for (std::size_t b = 0; b < m; ++b) {
            double v = 0;
            if (branches[b].n1 == j) v += 1.0;
            if (branches[b].n2 == j) v -= 1.0;
            col[b] = Complex(v, 0.0);
        }
        const VectorC x = lu.solve(col);
        // Y(:,j) += Pᵀ x
        for (std::size_t b = 0; b < m; ++b) {
            y(branches[b].n1, j) += x[b];
            y(branches[b].n2, j) -= x[b];
        }
    }
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j) y(i, j) += jw * c(i, j);
    return y;
}

MatrixC DirectSolver::port_impedance(
    double freq_hz, const std::vector<std::size_t>& port_nodes) const {
    PGSI_REQUIRE(!port_nodes.empty(), "DirectSolver: no port nodes given");
    const MatrixC y = nodal_admittance(freq_hz);
    const MatrixC zfull = Lu<Complex>(y).inverse();
    return zfull.submatrix(port_nodes, port_nodes);
}

std::vector<MatrixC> DirectSolver::sweep_impedance(
    const VectorD& freqs_hz, const std::vector<std::size_t>& port_nodes) const {
    std::vector<MatrixC> out;
    out.reserve(freqs_hz.size());
    for (double f : freqs_hz) out.push_back(port_impedance(f, port_nodes));
    return out;
}

} // namespace pgsi
