#include "em/solver.hpp"

#include <chrono>
#include <memory>

#include "common/constants.hpp"
#include "common/error.hpp"
#include "numeric/lu.hpp"
#include "obs/trace.hpp"

namespace pgsi {

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
        .count();
}

} // namespace

DirectSolver::DirectSolver(const PlaneBem& bem, SurfaceImpedance zs)
    : bem_(bem), zs_(zs) {}

MatrixC DirectSolver::nodal_admittance(double freq_hz) const {
    PGSI_REQUIRE(freq_hz > 0, "DirectSolver: frequency must be positive");
    PGSI_TRACE_SCOPE("em.solve.nodal_admittance");
    ++stats_.frequencies;
    const double omega = 2.0 * pi * freq_hz;
    const Complex jw(0.0, omega);

    const MatrixD& l = bem_.inductance_matrix();
    const MatrixD& c = bem_.maxwell_capacitance();
    const auto& branches = bem_.mesh().branches();
    const std::size_t m = branches.size();
    const std::size_t n = bem_.node_count();

    // Branch impedance matrix Zb = Zs(ω)·len/width + jωL.
    auto t0 = std::chrono::steady_clock::now();
    MatrixC zb(m, m);
    for (std::size_t a = 0; a < m; ++a)
        for (std::size_t b = 0; b < m; ++b) zb(a, b) = jw * l(a, b);
    const Complex zs = zs_.at(omega);
    for (std::size_t b = 0; b < m; ++b)
        zb(b, b) += zs * branches[b].length() / branches[b].width();
    stats_.fill_seconds += seconds_since(t0);

    // X = Zb⁻¹ P, built column-by-column through the sparse incidence.
    t0 = std::chrono::steady_clock::now();
    std::unique_ptr<const Lu<Complex>> lu;
    try {
        lu = std::make_unique<const Lu<Complex>>(std::move(zb));
    } catch (Error& e) {
        e.with_context("while factoring the branch impedance at f = " +
                       std::to_string(freq_hz) + " Hz");
        throw;
    }
    stats_.factor_seconds += seconds_since(t0);
    ++stats_.factorizations;

    t0 = std::chrono::steady_clock::now();
    MatrixC y(n, n);
    VectorC col(m);
    for (std::size_t j = 0; j < n; ++j) {
        for (std::size_t b = 0; b < m; ++b) {
            double v = 0;
            if (branches[b].n1 == j) v += 1.0;
            if (branches[b].n2 == j) v -= 1.0;
            col[b] = Complex(v, 0.0);
        }
        const VectorC x = lu->solve(col);
        // Y(:,j) += Pᵀ x
        for (std::size_t b = 0; b < m; ++b) {
            y(branches[b].n1, j) += x[b];
            y(branches[b].n2, j) -= x[b];
        }
    }
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j) y(i, j) += jw * c(i, j);
    stats_.solve_seconds += seconds_since(t0);
    stats_.solves += n;
    return y;
}

MatrixC DirectSolver::port_impedance(
    double freq_hz, const std::vector<std::size_t>& port_nodes) const {
    PGSI_REQUIRE(!port_nodes.empty(), "DirectSolver: no port nodes given");
    PGSI_TRACE_SCOPE("em.solve.port_impedance");
    const MatrixC y = nodal_admittance(freq_hz);
    const auto t0 = std::chrono::steady_clock::now();
    const MatrixC zfull = Lu<Complex>(y).inverse();
    stats_.factor_seconds += seconds_since(t0);
    ++stats_.factorizations;
    stats_.solves += y.rows();
    return zfull.submatrix(port_nodes, port_nodes);
}

std::vector<MatrixC> DirectSolver::sweep_impedance(
    const VectorD& freqs_hz, const std::vector<std::size_t>& port_nodes) const {
    PGSI_TRACE_SCOPE("em.solve.sweep");
    std::vector<MatrixC> out;
    out.reserve(freqs_hz.size());
    for (double f : freqs_hz) out.push_back(port_impedance(f, port_nodes));
    return out;
}

} // namespace pgsi
