#include "em/cavity_model.hpp"

#include <cmath>

#include "common/constants.hpp"
#include "common/error.hpp"

namespace pgsi {

namespace {

double sinc(double x) { return x == 0.0 ? 1.0 : std::sin(x) / x; }

} // namespace

Complex CavityModel::impedance(Point2 p, Point2 q, double freq_hz) const {
    PGSI_REQUIRE(a > 0 && b > 0 && d > 0, "CavityModel: degenerate geometry");
    PGSI_REQUIRE(freq_hz > 0, "CavityModel: frequency must be positive");
    const double omega = 2.0 * pi * freq_hz;
    const double tand_eff =
        tan_delta + (rs_total > 0 ? rs_total / (omega * mu0 * d) : 0.0);
    const Complex k2 = omega * omega * mu0 * eps0 * eps_r *
                       Complex(1.0, -tand_eff);
    const Complex scale(0.0, omega * mu0 * d / (a * b));

    Complex z(0.0, 0.0);
    for (int m = 0; m <= max_modes; ++m) {
        const double km = m * pi / a;
        const double chim = (m == 0) ? 1.0 : 2.0;
        const double sm = sinc(0.5 * km * port_w);
        for (int n = 0; n <= max_modes; ++n) {
            const double kn = n * pi / b;
            const double chin = (n == 0) ? 1.0 : 2.0;
            const double sn = sinc(0.5 * kn * port_h);
            const double num = chim * chin * std::cos(km * p.x) *
                               std::cos(kn * p.y) * std::cos(km * q.x) *
                               std::cos(kn * q.y) * sm * sm * sn * sn;
            const double kmn2 = km * km + kn * kn;
            z += num / (Complex(kmn2, 0.0) - k2);
        }
    }
    return scale * z;
}

MatrixC CavityModel::impedance_matrix(const std::vector<Point2>& ports,
                                      double freq_hz) const {
    MatrixC z(ports.size(), ports.size());
    for (std::size_t i = 0; i < ports.size(); ++i)
        for (std::size_t j = i; j < ports.size(); ++j) {
            const Complex v = impedance(ports[i], ports[j], freq_hz);
            z(i, j) = v;
            z(j, i) = v;
        }
    return z;
}

double CavityModel::mode_frequency(int m, int n) const {
    PGSI_REQUIRE(m >= 0 && n >= 0 && (m + n) > 0,
                 "CavityModel: mode indices must be non-negative, not both 0");
    const double km = m * pi / a, kn = n * pi / b;
    return c0 / std::sqrt(eps_r) * std::sqrt(km * km + kn * kn) / (2.0 * pi);
}

double CavityModel::static_capacitance() const {
    return eps0 * eps_r * a * b / d;
}

} // namespace pgsi
