// Error handling primitives for the pgsi library.
//
// All library errors are reported as exceptions derived from pgsi::Error.
// PGSI_REQUIRE is used for precondition checks on public API boundaries;
// PGSI_ASSERT for internal invariants (still active in release builds --
// extraction bugs silently corrupting a circuit model are far more expensive
// than the branch).
#pragma once

#include <stdexcept>
#include <string>

namespace pgsi {

/// Base class for all errors thrown by the pgsi library.
class Error : public std::runtime_error {
public:
    explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a caller violates a documented precondition.
class InvalidArgument : public Error {
public:
    explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Thrown when a numerical routine cannot complete (singular matrix,
/// non-convergence, ...).
class NumericalError : public Error {
public:
    explicit NumericalError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void fail_require(const char* expr, const char* file, int line,
                                      const std::string& msg) {
    throw InvalidArgument(std::string(file) + ":" + std::to_string(line) +
                          ": requirement failed: " + expr + (msg.empty() ? "" : " — " + msg));
}
[[noreturn]] inline void fail_assert(const char* expr, const char* file, int line) {
    throw Error(std::string(file) + ":" + std::to_string(line) +
                ": internal invariant violated: " + expr);
}
} // namespace detail

} // namespace pgsi

#define PGSI_REQUIRE(expr, msg)                                                   \
    do {                                                                          \
        if (!(expr)) ::pgsi::detail::fail_require(#expr, __FILE__, __LINE__, msg); \
    } while (0)

#define PGSI_ASSERT(expr)                                                    \
    do {                                                                     \
        if (!(expr)) ::pgsi::detail::fail_assert(#expr, __FILE__, __LINE__); \
    } while (0)
