// Error handling primitives for the pgsi library.
//
// All library errors are reported as exceptions derived from pgsi::Error.
// PGSI_REQUIRE is used for precondition checks on public API boundaries;
// PGSI_ASSERT for internal invariants (still active in release builds --
// extraction bugs silently corrupting a circuit model are far more expensive
// than the branch).
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

namespace pgsi {

/// Base class for all errors thrown by the pgsi library.
///
/// Errors carry an optional context chain: layers that catch an escaping
/// error may annotate it with what they were doing and rethrow, so a Newton
/// failure deep in the transient engine surfaces as
///
///     transient: Newton iteration did not converge ...
///       while advancing the transient to t = 1.2e-09 s
///       in span ssn.simulate/transient.run
///
/// Catch by non-const reference, call with_context(), then `throw;` — the
/// in-flight exception object is annotated in place and its dynamic type is
/// preserved.
class Error : public std::runtime_error {
public:
    explicit Error(const std::string& what)
        : std::runtime_error(what), message_(what) {}

    /// Append one context line ("while factoring MNA at t=1.2ns").
    Error& with_context(std::string ctx) {
        context_.push_back(std::move(ctx));
        formatted_ = message_;
        for (const std::string& c : context_) {
            formatted_ += "\n  ";
            formatted_ += c;
        }
        return *this;
    }

    /// Context lines in the order they were attached (innermost first).
    const std::vector<std::string>& context() const noexcept { return context_; }

    /// Original message without the context chain.
    const std::string& message() const noexcept { return message_; }

    const char* what() const noexcept override {
        return context_.empty() ? std::runtime_error::what() : formatted_.c_str();
    }

private:
    std::string message_;
    std::vector<std::string> context_;
    std::string formatted_;
};

/// Thrown when a caller violates a documented precondition.
class InvalidArgument : public Error {
public:
    explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Thrown when a numerical routine cannot complete (singular matrix,
/// non-convergence, ...).
class NumericalError : public Error {
public:
    explicit NumericalError(const std::string& what) : Error(what) {}
};

/// Thrown when a cooperative cancellation point observes a tripped
/// CancelToken (job deadline expired, batch shutdown). Not a numerical
/// failure: the partial work is simply abandoned and must not be retried
/// with stronger numerics.
class Cancelled : public Error {
public:
    explicit Cancelled(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void fail_require(const char* expr, const char* file, int line,
                                      const std::string& msg) {
    throw InvalidArgument(std::string(file) + ":" + std::to_string(line) +
                          ": requirement failed: " + expr + (msg.empty() ? "" : " — " + msg));
}
[[noreturn]] inline void fail_assert(const char* expr, const char* file, int line) {
    throw Error(std::string(file) + ":" + std::to_string(line) +
                ": internal invariant violated: " + expr);
}
} // namespace detail

} // namespace pgsi

#define PGSI_REQUIRE(expr, msg)                                                   \
    do {                                                                          \
        if (!(expr)) ::pgsi::detail::fail_require(#expr, __FILE__, __LINE__, msg); \
    } while (0)

#define PGSI_ASSERT(expr)                                                    \
    do {                                                                     \
        if (!(expr)) ::pgsi::detail::fail_assert(#expr, __FILE__, __LINE__); \
    } while (0)
