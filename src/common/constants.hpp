// Physical constants and unit-conversion helpers (SI units everywhere).
#pragma once

namespace pgsi {

/// Vacuum permittivity [F/m].
inline constexpr double eps0 = 8.8541878128e-12;
/// Vacuum permeability [H/m].
inline constexpr double mu0 = 1.25663706212e-6;
/// Speed of light in vacuum [m/s].
inline constexpr double c0 = 2.99792458e8;
/// Pi.
inline constexpr double pi = 3.14159265358979323846;

namespace units {
/// Mil (1/1000 inch) to metres.
inline constexpr double mil = 25.4e-6;
/// Inch to metres.
inline constexpr double inch = 25.4e-3;
/// Millimetre to metres.
inline constexpr double mm = 1e-3;
/// Micrometre to metres.
inline constexpr double um = 1e-6;
/// Nanosecond to seconds.
inline constexpr double ns = 1e-9;
/// Picosecond to seconds.
inline constexpr double ps = 1e-12;
/// Gigahertz to hertz.
inline constexpr double GHz = 1e9;
/// Megahertz to hertz.
inline constexpr double MHz = 1e6;
/// Picofarad to farads.
inline constexpr double pF = 1e-12;
/// Nanofarad to farads.
inline constexpr double nF = 1e-9;
/// Microfarad to farads.
inline constexpr double uF = 1e-6;
/// Nanohenry to henries.
inline constexpr double nH = 1e-9;
/// Picohenry to henries.
inline constexpr double pH = 1e-12;
} // namespace units

} // namespace pgsi
