// Shared thread pool for every parallel hot path in pgsi (pgsi::par).
//
// The library previously spawned a fresh std::thread batch inside each BEM
// assembly call; with blocked dense kernels, parallel sweeps, and cached
// assembly all wanting workers, that per-call spawn becomes both a cost and a
// correctness hazard (nested spawning oversubscribes the machine). Instead a
// single process-wide pool of persistent workers serves every
// `parallel_for`:
//
//   * The worker count defaults to std::thread::hardware_concurrency() and
//     can be overridden with the PGSI_THREADS environment variable (read at
//     first use) or programmatically with set_thread_count() (tests use this
//     to check result invariance across thread counts).
//   * parallel_for(n, body) runs body(i) for i in [0, n); the chunked variant
//     parallel_for_chunked(n, grain, body) hands workers half-open ranges
//     [begin, end) — the form the blocked dense kernels want.
//   * Work is distributed by an atomic chunk counter, so the partition a
//     worker receives depends on thread count and timing — bodies must make
//     per-index work independent (all pgsi kernels write disjoint outputs,
//     which also keeps results bit-identical at any thread count).
//   * The calling thread participates, so parallel_for(1, f) costs one
//     function call and a pool of size 1 degenerates to a serial loop.
//   * Nested calls (a parallel_for issued from inside a worker) run inline
//     on the calling worker: the outermost level owns the parallelism. This
//     makes it safe to parallelize a frequency sweep whose per-frequency
//     solve itself uses parallel kernels.
//   * The first exception thrown by any body cancels the remaining chunks
//     and is rethrown on the calling thread.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace pgsi::par {

/// Number of threads the pool will use (callers + workers), >= 1. Reads
/// PGSI_THREADS on first use; never throws.
std::size_t thread_count();

/// Reconfigure the pool to n threads (n == 0 restores the automatic choice:
/// PGSI_THREADS if set, else hardware_concurrency). Joins existing workers;
/// must not be called from inside a parallel_for body.
void set_thread_count(std::size_t n);

/// True when the calling thread is currently executing inside a
/// parallel_for body (top-level calls from such a context run inline).
bool in_parallel_region() noexcept;

/// Parse a PGSI_THREADS-style value: returns the parsed count clamped to
/// [1, 1024], or `fallback` when value is null/empty/non-numeric/zero.
/// Exposed for tests.
std::size_t parse_thread_count(const char* value, std::size_t fallback) noexcept;

/// Pool utilization since the last reset_pool_stats() (or process start).
/// Busy time is accumulated per slot only while obs::resources_enabled()
/// — the flight recorder turns it on; it stays zero otherwise. Slot 0
/// aggregates the calling threads' share of every top-level parallel_for;
/// slots 1..threads-1 are the persistent workers. Idle time per worker is
/// wall_ns - busy_ns[slot].
struct PoolStats {
    std::size_t threads = 0;          ///< configured thread count
    std::uint64_t jobs = 0;           ///< top-level parallel_for dispatches
    std::uint64_t items = 0;          ///< total indices across those jobs
    std::uint64_t wall_ns = 0;        ///< wall time this snapshot covers
    std::vector<std::uint64_t> busy_ns; ///< per-slot busy time, size threads
};

/// Snapshot the pool utilization counters. Safe from any thread, but not
/// from inside a parallel_for body.
PoolStats pool_stats();

/// Zero the utilization counters and restart the wall clock.
void reset_pool_stats();

namespace detail {
/// Run body(begin, end) over a partition of [0, n) into chunks of size
/// `grain`, using the shared pool. Blocks until every chunk completed;
/// rethrows the first body exception.
void run_chunked(std::size_t n, std::size_t grain,
                 const std::function<void(std::size_t, std::size_t)>& body);
} // namespace detail

/// body(begin, end) over chunks of [0, n). grain == 0 picks a chunk size
/// that yields ~4 chunks per thread (dynamic load balancing without
/// excessive dispatch).
template <class F>
void parallel_for_chunked(std::size_t n, std::size_t grain, F&& body) {
    detail::run_chunked(n, grain, body);
}

/// body(i) for each i in [0, n), distributed across the pool.
template <class F>
void parallel_for(std::size_t n, F&& body) {
    detail::run_chunked(n, 1, [&body](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) body(i);
    });
}

} // namespace pgsi::par
