// Numerical-health guards, recovery policies, and deterministic fault
// injection (pgsi::robust).
//
// The solve pipeline chains fragile numerical stages — BEM assembly, dense
// and iterative port-impedance solves, equivalent-circuit extraction, and
// nonlinear transient / SSN co-simulation. Production PDN flows survive the
// events that make any one stage fail (a zero pivot, a stalled GMRES, a
// diverging Newton iteration) with *staged recovery* instead of aborting the
// whole run. This header is the shared vocabulary:
//
//  * RecoveryPolicy / RecoveryOptions — how hard each stage tries before
//    giving up. `Strict` preserves the historical throw-on-failure behavior
//    exactly (tests that assert failure semantics opt into it); `Recover`
//    (the default) enables the per-stage ladders:
//      - transient: Newton divergence → backward-Euler retry → timestep cut
//        (factor `timestep_cut_factor`, up to `max_timestep_cuts` levels);
//      - DC operating point: gmin stepping, then source ramping;
//      - iterative EM solver: preconditioner escalation Diagonal →
//        NearFieldBlock → dense-LU fallback.
//  * RecoveryReport — per-run record of every recovery taken, surfaced on
//    TransientResult / PartitionedCosim::Result so callers can see that a
//    result was rescued (and how) without scraping logs. Every recovery is
//    also counted in pgsi::obs ("robust.recoveries" plus one counter per
//    site), so recoveries show up in exported metrics.
//  * Finite guards — NaN/Inf checks at stage boundaries. A non-finite value
//    caught at a boundary names the stage instead of corrupting everything
//    downstream.
//  * CancelToken — poll-based cooperative cancellation with an optional
//    deadline, threaded through RecoveryOptions (and therefore through
//    SolverOptions / TransientOptions) so a batch engine can abandon a
//    stuck GMRES sweep or transient without killing the process. Engines
//    poll at their natural boundaries (per frequency, per GMRES column,
//    per time step) and throw pgsi::Cancelled.
//  * FaultInjector — deterministic fault injection compiled into the
//    library. `PGSI_FAULT=<site>:<nth>[:<count>]` (comma-separated list) or
//    the programmatic arm() force a failure at the N-th call of a site, so
//    every recovery path above is exercised by ordinary tests instead of
//    rotting as dead branches. Known sites: `lu.pivot`, `gmres.stall`,
//    `transient.newton`, `dcop.diverge`, `serve.job`, `serve.deadline`,
//    `cache.evict`.
#pragma once

#include <atomic>
#include <cmath>
#include <complex>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.hpp"

namespace pgsi::robust {

/// How a stage responds to a numerical failure.
enum class RecoveryPolicy {
    Recover, ///< staged fallbacks before declaring failure (default)
    Strict   ///< historical behavior: first failure throws
};

/// Poll-based cooperative cancellation. A token is armed with cancel() (or
/// an absolute deadline) by one thread — typically a batch watchdog — and
/// polled by the solve engines on another: poll() throws pgsi::Cancelled at
/// the next cancellation point. The deadline is evaluated lazily inside
/// cancelled(), so a token with a deadline needs no watchdog thread to trip;
/// the watchdog only shortens the detection latency of flag-only polls.
/// cancelled() is a relaxed atomic load (plus one clock read while an unhit
/// deadline is pending), cheap enough for per-iteration polling.
class CancelToken {
public:
    CancelToken() = default;
    CancelToken(const CancelToken&) = delete;
    CancelToken& operator=(const CancelToken&) = delete;

    /// Trip the token. The first reason sticks; later calls are no-ops.
    void cancel(std::string reason) noexcept;

    /// Arm (or clear, seconds <= 0) a deadline `seconds` from now on the
    /// steady clock. Tripping via deadline sets deadline_expired().
    void set_deadline_after(double seconds) noexcept;

    /// Force the pending deadline to count as expired now (the watchdog's
    /// "serve.deadline" fault-injection hook uses this). No-op without a
    /// pending deadline.
    void expire_deadline() noexcept;

    /// True once cancelled — explicitly or because the deadline passed.
    bool cancelled() const noexcept;

    /// True when the cancellation came from the deadline.
    bool deadline_expired() const noexcept {
        return deadline_hit_.load(std::memory_order_acquire);
    }

    /// Why the token tripped ("" while not cancelled).
    std::string reason() const;

    /// Cancellation point: throws pgsi::Cancelled("<where>: <reason>") once
    /// the token tripped; otherwise returns immediately.
    void poll(const char* where) const;

private:
    void trip(std::string reason, bool from_deadline) const noexcept;

    mutable std::atomic_bool flag_{false};
    mutable std::atomic_bool deadline_hit_{false};
    /// Steady-clock deadline in ns since epoch; 0 = none armed.
    std::atomic<std::int64_t> deadline_ns_{0};
    /// First-trip reason, guarded by the mutex in robust.cpp helpers.
    mutable std::mutex reason_mu_;
    mutable std::string reason_;
};

/// Per-run recovery tuning, threaded from the top-level entry points
/// (TransientOptions, SolverOptions, SsnModelOptions) down to the stages.
struct RecoveryOptions {
    RecoveryPolicy policy = RecoveryPolicy::Recover;

    // Transient: on Newton non-convergence, re-advance the step with
    // `timestep_cut_factor`^level backward-Euler substeps, up to
    // `max_timestep_cuts` levels. (Delay-line transmission lines lock the
    // step size, so netlists with tlines skip the cut and fail as before.)
    int max_timestep_cuts = 3;
    int timestep_cut_factor = 8;

    // DC operating point: gmin stepping (a shunt `gmin` on every node,
    // shrunk by 10x per level from gmin_start over gmin_steps levels, then
    // removed), then source ramping (sources scaled 1/source_steps ...1).
    int gmin_steps = 8;
    double gmin_start = 1e-2;
    int source_steps = 8;

    // Iterative EM solver: escalation chain on a GMRES solve that misses
    // SolverOptions::fail_tol.
    bool allow_precond_escalation = true;
    bool allow_dense_fallback = true;

    /// 1-norm condition-number estimate above which a factorization emits a
    /// "robust.condition_warnings" counter tick (0 disables the estimate).
    double condition_warn_threshold = 1e12;

    /// Cooperative cancellation, polled by the engines these options reach
    /// (transient stepper per step, DC continuation per pass, both sweep
    /// backends per frequency / GMRES column). Not owned; must outlive the
    /// run. nullptr (default) disables polling.
    const CancelToken* cancel = nullptr;
};

/// One rung up the job-retry ladder: a strictly-more-forgiving copy of
/// `base`. Each rung deepens the transient timestep cutting, the DC
/// continuation, and (from rung 1 on) forces the iterative-solver
/// escalation chain fully open. Used by the batch engine, which escalates a
/// failing job one rung per retry; a clean solve is unaffected by the rung,
/// so escalated retries of healthy code paths stay bit-identical.
RecoveryOptions escalate_one_rung(const RecoveryOptions& base);

/// One recovery (or health warning) taken during a run.
struct RecoveryEvent {
    std::string site;   ///< stable id, e.g. "transient.timestep_cut"
    std::string detail; ///< human-readable description
};

/// Everything pgsi::robust did to keep one run alive.
struct RecoveryReport {
    std::vector<RecoveryEvent> events;

    bool any() const noexcept { return !events.empty(); }
    std::size_t count(std::string_view site) const;
    void merge(const RecoveryReport& other);
    /// One line per event, for logs.
    std::string summary() const;
};

/// Record a recovery: appends to `report` (when non-null) and increments the
/// obs counters "robust.recoveries" and "robust.<site>".
void note_recovery(RecoveryReport* report, std::string_view site,
                   std::string detail);

/// Emit a condition warning when `kappa_estimate` exceeds the options
/// threshold: obs counter "robust.condition_warnings" plus a report event.
/// Returns true when the warning fired.
bool check_condition(double kappa_estimate, std::string_view what,
                     const RecoveryOptions& options, RecoveryReport* report);

// --- numerical-health guards ------------------------------------------------

inline bool is_finite(double v) noexcept { return std::isfinite(v); }
inline bool is_finite(const std::complex<double>& v) noexcept {
    return std::isfinite(v.real()) && std::isfinite(v.imag());
}

/// True when every element of the container is finite.
template <class Vec>
bool all_finite(const Vec& v) noexcept {
    for (const auto& e : v)
        if (!is_finite(e)) return false;
    return true;
}

namespace detail {
[[noreturn]] void fail_non_finite(const char* stage, std::size_t index);
} // namespace detail

/// Stage-boundary guard: throws NumericalError naming `stage` (and counts
/// "robust.nonfinite_detected") when the container holds a NaN or Inf.
template <class Vec>
void require_finite(const Vec& v, const char* stage) {
    std::size_t i = 0;
    for (const auto& e : v) {
        if (!is_finite(e)) detail::fail_non_finite(stage, i);
        ++i;
    }
}

// --- deterministic fault injection ------------------------------------------

/// Process-wide deterministic fault injection. Sites are compiled into the
/// library (`should_fire` at the point where the failure would originate);
/// arming happens either programmatically or through the PGSI_FAULT
/// environment variable, grammar
///
///     PGSI_FAULT=<site>:<nth>[:<count>][,<site>:<nth>[:<count>]...]
///
/// e.g. PGSI_FAULT=transient.newton:3:2 makes the 3rd and 4th calls of the
/// "transient.newton" site fail. `count` defaults to 1; 0 means every call
/// from the nth on. When nothing is armed, should_fire is one relaxed
/// atomic load.
class FaultInjector {
public:
    /// Arm `site` to fire on its nth call (1-based) and the `count - 1`
    /// following calls (count 0 = every call from the nth on). Re-arming a
    /// site resets its call count.
    static void arm(std::string_view site, std::uint64_t nth,
                    std::uint64_t count = 1);

    /// Disarm every site and reset all call counts (tests call this; the
    /// PGSI_FAULT environment variable is not re-read).
    static void disarm_all();

    /// Called at a fault site: counts the call and reports whether the
    /// injected fault fires here. Also ticks "robust.faults_injected" when
    /// it fires.
    static bool should_fire(const char* site);

    /// How many times `site` has fired so far.
    static std::uint64_t fire_count(std::string_view site);
};

} // namespace pgsi::robust
