// Numerical-health guards, recovery policies, and deterministic fault
// injection (pgsi::robust).
//
// The solve pipeline chains fragile numerical stages — BEM assembly, dense
// and iterative port-impedance solves, equivalent-circuit extraction, and
// nonlinear transient / SSN co-simulation. Production PDN flows survive the
// events that make any one stage fail (a zero pivot, a stalled GMRES, a
// diverging Newton iteration) with *staged recovery* instead of aborting the
// whole run. This header is the shared vocabulary:
//
//  * RecoveryPolicy / RecoveryOptions — how hard each stage tries before
//    giving up. `Strict` preserves the historical throw-on-failure behavior
//    exactly (tests that assert failure semantics opt into it); `Recover`
//    (the default) enables the per-stage ladders:
//      - transient: Newton divergence → backward-Euler retry → timestep cut
//        (factor `timestep_cut_factor`, up to `max_timestep_cuts` levels);
//      - DC operating point: gmin stepping, then source ramping;
//      - iterative EM solver: preconditioner escalation Diagonal →
//        NearFieldBlock → dense-LU fallback.
//  * RecoveryReport — per-run record of every recovery taken, surfaced on
//    TransientResult / PartitionedCosim::Result so callers can see that a
//    result was rescued (and how) without scraping logs. Every recovery is
//    also counted in pgsi::obs ("robust.recoveries" plus one counter per
//    site), so recoveries show up in exported metrics.
//  * Finite guards — NaN/Inf checks at stage boundaries. A non-finite value
//    caught at a boundary names the stage instead of corrupting everything
//    downstream.
//  * FaultInjector — deterministic fault injection compiled into the
//    library. `PGSI_FAULT=<site>:<nth>[:<count>]` (comma-separated list) or
//    the programmatic arm() force a failure at the N-th call of a site, so
//    every recovery path above is exercised by ordinary tests instead of
//    rotting as dead branches. Known sites: `lu.pivot`, `gmres.stall`,
//    `transient.newton`, `dcop.diverge`.
#pragma once

#include <cmath>
#include <complex>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.hpp"

namespace pgsi::robust {

/// How a stage responds to a numerical failure.
enum class RecoveryPolicy {
    Recover, ///< staged fallbacks before declaring failure (default)
    Strict   ///< historical behavior: first failure throws
};

/// Per-run recovery tuning, threaded from the top-level entry points
/// (TransientOptions, SolverOptions, SsnModelOptions) down to the stages.
struct RecoveryOptions {
    RecoveryPolicy policy = RecoveryPolicy::Recover;

    // Transient: on Newton non-convergence, re-advance the step with
    // `timestep_cut_factor`^level backward-Euler substeps, up to
    // `max_timestep_cuts` levels. (Delay-line transmission lines lock the
    // step size, so netlists with tlines skip the cut and fail as before.)
    int max_timestep_cuts = 3;
    int timestep_cut_factor = 8;

    // DC operating point: gmin stepping (a shunt `gmin` on every node,
    // shrunk by 10x per level from gmin_start over gmin_steps levels, then
    // removed), then source ramping (sources scaled 1/source_steps ...1).
    int gmin_steps = 8;
    double gmin_start = 1e-2;
    int source_steps = 8;

    // Iterative EM solver: escalation chain on a GMRES solve that misses
    // SolverOptions::fail_tol.
    bool allow_precond_escalation = true;
    bool allow_dense_fallback = true;

    /// 1-norm condition-number estimate above which a factorization emits a
    /// "robust.condition_warnings" counter tick (0 disables the estimate).
    double condition_warn_threshold = 1e12;
};

/// One recovery (or health warning) taken during a run.
struct RecoveryEvent {
    std::string site;   ///< stable id, e.g. "transient.timestep_cut"
    std::string detail; ///< human-readable description
};

/// Everything pgsi::robust did to keep one run alive.
struct RecoveryReport {
    std::vector<RecoveryEvent> events;

    bool any() const noexcept { return !events.empty(); }
    std::size_t count(std::string_view site) const;
    void merge(const RecoveryReport& other);
    /// One line per event, for logs.
    std::string summary() const;
};

/// Record a recovery: appends to `report` (when non-null) and increments the
/// obs counters "robust.recoveries" and "robust.<site>".
void note_recovery(RecoveryReport* report, std::string_view site,
                   std::string detail);

/// Emit a condition warning when `kappa_estimate` exceeds the options
/// threshold: obs counter "robust.condition_warnings" plus a report event.
/// Returns true when the warning fired.
bool check_condition(double kappa_estimate, std::string_view what,
                     const RecoveryOptions& options, RecoveryReport* report);

// --- numerical-health guards ------------------------------------------------

inline bool is_finite(double v) noexcept { return std::isfinite(v); }
inline bool is_finite(const std::complex<double>& v) noexcept {
    return std::isfinite(v.real()) && std::isfinite(v.imag());
}

/// True when every element of the container is finite.
template <class Vec>
bool all_finite(const Vec& v) noexcept {
    for (const auto& e : v)
        if (!is_finite(e)) return false;
    return true;
}

namespace detail {
[[noreturn]] void fail_non_finite(const char* stage, std::size_t index);
} // namespace detail

/// Stage-boundary guard: throws NumericalError naming `stage` (and counts
/// "robust.nonfinite_detected") when the container holds a NaN or Inf.
template <class Vec>
void require_finite(const Vec& v, const char* stage) {
    std::size_t i = 0;
    for (const auto& e : v) {
        if (!is_finite(e)) detail::fail_non_finite(stage, i);
        ++i;
    }
}

// --- deterministic fault injection ------------------------------------------

/// Process-wide deterministic fault injection. Sites are compiled into the
/// library (`should_fire` at the point where the failure would originate);
/// arming happens either programmatically or through the PGSI_FAULT
/// environment variable, grammar
///
///     PGSI_FAULT=<site>:<nth>[:<count>][,<site>:<nth>[:<count>]...]
///
/// e.g. PGSI_FAULT=transient.newton:3:2 makes the 3rd and 4th calls of the
/// "transient.newton" site fail. `count` defaults to 1; 0 means every call
/// from the nth on. When nothing is armed, should_fire is one relaxed
/// atomic load.
class FaultInjector {
public:
    /// Arm `site` to fire on its nth call (1-based) and the `count - 1`
    /// following calls (count 0 = every call from the nth on). Re-arming a
    /// site resets its call count.
    static void arm(std::string_view site, std::uint64_t nth,
                    std::uint64_t count = 1);

    /// Disarm every site and reset all call counts (tests call this; the
    /// PGSI_FAULT environment variable is not re-read).
    static void disarm_all();

    /// Called at a fault site: counts the call and reports whether the
    /// injected fault fires here. Also ticks "robust.faults_injected" when
    /// it fires.
    static bool should_fire(const char* site);

    /// How many times `site` has fired so far.
    static std::uint64_t fire_count(std::string_view site);
};

} // namespace pgsi::robust
