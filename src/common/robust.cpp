#include "common/robust.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <map>
#include <mutex>

#include "obs/metrics.hpp"
#include "obs/stream.hpp"

namespace pgsi::robust {

namespace {

std::int64_t steady_now_ns() noexcept {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

} // namespace

void CancelToken::trip(std::string reason, bool from_deadline) const noexcept {
    {
        const std::lock_guard<std::mutex> lock(reason_mu_);
        if (reason_.empty()) reason_ = std::move(reason);
    }
    if (from_deadline) deadline_hit_.store(true, std::memory_order_release);
    flag_.store(true, std::memory_order_release);
}

void CancelToken::cancel(std::string reason) noexcept {
    if (flag_.load(std::memory_order_acquire)) return;
    trip(std::move(reason), false);
}

void CancelToken::set_deadline_after(double seconds) noexcept {
    if (seconds <= 0) {
        deadline_ns_.store(0, std::memory_order_release);
        return;
    }
    const double ns = seconds * 1e9;
    deadline_ns_.store(
        steady_now_ns() + static_cast<std::int64_t>(std::min(ns, 9e18)),
        std::memory_order_release);
}

void CancelToken::expire_deadline() noexcept {
    if (deadline_ns_.load(std::memory_order_acquire) == 0) return;
    trip("deadline expired (forced)", true);
}

bool CancelToken::cancelled() const noexcept {
    if (flag_.load(std::memory_order_relaxed)) return true;
    const std::int64_t dl = deadline_ns_.load(std::memory_order_relaxed);
    if (dl != 0 && steady_now_ns() >= dl) {
        trip("deadline expired", true);
        return true;
    }
    return false;
}

std::string CancelToken::reason() const {
    if (!cancelled()) return {};
    const std::lock_guard<std::mutex> lock(reason_mu_);
    return reason_;
}

void CancelToken::poll(const char* where) const {
    if (!cancelled()) return;
    static obs::Counter& c = obs::counter("robust.cancellations");
    ++c;
    throw Cancelled(std::string(where) + ": cancelled — " + reason());
}

RecoveryOptions escalate_one_rung(const RecoveryOptions& base) {
    RecoveryOptions r = base;
    r.policy = RecoveryPolicy::Recover;
    r.max_timestep_cuts = base.max_timestep_cuts + 2;
    r.timestep_cut_factor = std::max(base.timestep_cut_factor, 8);
    r.gmin_steps = base.gmin_steps + 4;
    r.gmin_start = std::min(1e-1, base.gmin_start * 10);
    r.source_steps = base.source_steps * 2;
    r.allow_precond_escalation = true;
    r.allow_dense_fallback = true;
    return r;
}

std::size_t RecoveryReport::count(std::string_view site) const {
    std::size_t n = 0;
    for (const RecoveryEvent& e : events)
        if (e.site == site) ++n;
    return n;
}

void RecoveryReport::merge(const RecoveryReport& other) {
    events.insert(events.end(), other.events.begin(), other.events.end());
}

std::string RecoveryReport::summary() const {
    std::string out;
    for (const RecoveryEvent& e : events) {
        out += e.site;
        out += ": ";
        out += e.detail;
        out += '\n';
    }
    return out;
}

void note_recovery(RecoveryReport* report, std::string_view site,
                   std::string detail) {
    static obs::Counter& total = obs::counter("robust.recoveries");
    ++total;
    ++obs::counter(std::string("robust.") + std::string(site));
    if (obs::streams_enabled()) {
        // Flight-recorder timeline: every recovery in the process, in
        // order, as marks on one well-known series. The cached id goes
        // stale at reset_streams(); a fresh series is opened on the next
        // recovery after that.
        static std::mutex mu;
        static std::size_t sid = obs::kStreamNone;
        static std::uint64_t seq = 0;
        const std::lock_guard<std::mutex> lock(mu);
        if (!obs::stream_live(sid)) sid = obs::stream_open("robust.timeline");
        obs::stream_mark(sid, static_cast<double>(seq), site);
        ++seq;
    }
    if (report) report->events.push_back({std::string(site), std::move(detail)});
}

bool check_condition(double kappa_estimate, std::string_view what,
                     const RecoveryOptions& options, RecoveryReport* report) {
    if (options.condition_warn_threshold <= 0 ||
        !(kappa_estimate > options.condition_warn_threshold))
        return false;
    static obs::Counter& warnings = obs::counter("robust.condition_warnings");
    ++warnings;
    if (report)
        report->events.push_back(
            {"condition_warning",
             std::string(what) + ": estimated 1-norm condition number " +
                 std::to_string(kappa_estimate) + " exceeds " +
                 std::to_string(options.condition_warn_threshold)});
    return true;
}

namespace detail {

[[noreturn]] void fail_non_finite(const char* stage, std::size_t index) {
    static obs::Counter& detected = obs::counter("robust.nonfinite_detected");
    ++detected;
    throw NumericalError(std::string(stage) +
                         ": non-finite value at index " + std::to_string(index));
}

} // namespace detail

namespace {

struct FaultSite {
    std::uint64_t nth = 0;   // 1-based call index of the first firing
    std::uint64_t count = 1; // consecutive firings (0 = unbounded)
    std::uint64_t calls = 0;
    std::uint64_t fired = 0;
};

struct FaultState {
    std::mutex mu;
    std::map<std::string, FaultSite, std::less<>> sites;
    std::atomic_bool any_armed{false};
    std::atomic_bool env_checked{false};
};

FaultState& fault_state() {
    static FaultState s;
    return s;
}

// Parse PGSI_FAULT (once, under the state mutex). Malformed entries are
// ignored rather than fatal: fault injection is a test facility and must
// never take a production run down by itself.
void parse_env_locked(FaultState& s) {
    if (s.env_checked.load(std::memory_order_relaxed)) return;
    const char* env = std::getenv("PGSI_FAULT");
    if (!env || !*env) {
        s.env_checked.store(true, std::memory_order_release);
        return;
    }
    std::string_view rest(env);
    while (!rest.empty()) {
        const std::size_t comma = rest.find(',');
        std::string_view entry = rest.substr(0, comma);
        rest = comma == std::string_view::npos ? std::string_view{}
                                               : rest.substr(comma + 1);
        const std::size_t c1 = entry.find(':');
        if (c1 == std::string_view::npos || c1 == 0) continue;
        const std::string site(entry.substr(0, c1));
        std::string_view nums = entry.substr(c1 + 1);
        const std::size_t c2 = nums.find(':');
        FaultSite fs;
        try {
            fs.nth = std::stoull(std::string(nums.substr(0, c2)));
            if (c2 != std::string_view::npos)
                fs.count = std::stoull(std::string(nums.substr(c2 + 1)));
        } catch (const std::exception&) {
            continue;
        }
        if (fs.nth == 0) continue;
        s.sites[site] = fs;
    }
    s.any_armed.store(!s.sites.empty(), std::memory_order_release);
    s.env_checked.store(true, std::memory_order_release);
}

} // namespace

void FaultInjector::arm(std::string_view site, std::uint64_t nth,
                        std::uint64_t count) {
    PGSI_REQUIRE(nth >= 1, "FaultInjector: nth is 1-based");
    FaultState& s = fault_state();
    const std::lock_guard<std::mutex> lock(s.mu);
    parse_env_locked(s);
    s.sites[std::string(site)] = FaultSite{nth, count, 0, 0};
    s.any_armed.store(true, std::memory_order_release);
}

void FaultInjector::disarm_all() {
    FaultState& s = fault_state();
    const std::lock_guard<std::mutex> lock(s.mu);
    // An explicit disarm overrides the environment.
    s.env_checked.store(true, std::memory_order_release);
    s.sites.clear();
    s.any_armed.store(false, std::memory_order_release);
}

bool FaultInjector::should_fire(const char* site) {
    FaultState& s = fault_state();
    if (!s.env_checked.load(std::memory_order_acquire)) {
        const std::lock_guard<std::mutex> lock(s.mu);
        parse_env_locked(s);
    }
    // Fast path when nothing is armed: one relaxed atomic load per call.
    if (!s.any_armed.load(std::memory_order_acquire)) return false;
    const std::lock_guard<std::mutex> lock(s.mu);
    const auto it = s.sites.find(std::string_view(site));
    if (it == s.sites.end()) return false;
    FaultSite& fs = it->second;
    ++fs.calls;
    const bool fire = fs.calls >= fs.nth &&
                      (fs.count == 0 || fs.calls < fs.nth + fs.count);
    if (fire) {
        ++fs.fired;
        static obs::Counter& injected = obs::counter("robust.faults_injected");
        ++injected;
    }
    return fire;
}

std::uint64_t FaultInjector::fire_count(std::string_view site) {
    FaultState& s = fault_state();
    const std::lock_guard<std::mutex> lock(s.mu);
    const auto it = s.sites.find(site);
    return it == s.sites.end() ? 0 : it->second.fired;
}

} // namespace pgsi::robust
