#include "common/parallel.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/resource.hpp"
#include "obs/trace.hpp"

namespace pgsi::par {

namespace {

thread_local bool t_in_region = false;

std::uint64_t steady_now_ns() {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

// One parallel_for invocation: an atomic cursor over [0, n) plus completion
// bookkeeping. Workers (and the caller) pull chunks until the cursor passes
// n; the first exception parks the cursor at n so everyone drains fast.
struct Job {
    std::size_t n = 0;
    std::size_t grain = 1;
    const std::function<void(std::size_t, std::size_t)>* body = nullptr;
    std::atomic<std::size_t> cursor{0};
    std::exception_ptr error;
    std::mutex error_mu;

    void run_chunks() noexcept {
        for (;;) {
            const std::size_t begin = cursor.fetch_add(grain, std::memory_order_relaxed);
            if (begin >= n) return;
            const std::size_t end = std::min(begin + grain, n);
            try {
                (*body)(begin, end);
            } catch (...) {
                {
                    const std::lock_guard<std::mutex> lock(error_mu);
                    if (!error) error = std::current_exception();
                }
                cursor.store(n, std::memory_order_relaxed); // cancel the rest
                return;
            }
        }
    }
};

// Process-wide pool. Workers sleep on a condition variable between jobs; a
// job is published by bumping a generation counter. Only one job runs at a
// time (region_mu_ serializes top-level parallel_fors; nested calls never
// reach the pool).
class Pool {
public:
    static Pool& instance() {
        static Pool p;
        return p;
    }

    // Lock-free so kernels may ask for the count from inside a region.
    std::size_t threads() const {
        return threads_configured_.load(std::memory_order_relaxed);
    }

    void set_threads(std::size_t n) {
        const std::lock_guard<std::mutex> lock(region_mu_);
        if (n == 0) n = auto_thread_count();
        if (n == threads_configured_.load(std::memory_order_relaxed)) return;
        stop_workers();
        threads_configured_.store(n, std::memory_order_relaxed);
        start_workers();
    }

    void run(std::size_t n, std::size_t grain,
             const std::function<void(std::size_t, std::size_t)>& body) {
        if (n == 0) return;
        if (grain == 0) {
            // ~4 chunks per thread: coarse enough to amortize dispatch,
            // fine enough to balance uneven bodies.
            const std::size_t target = 4 * threads();
            grain = std::max<std::size_t>(1, (n + target - 1) / target);
        }
        // Nested (or recursive) use: the outer level owns the workers.
        if (t_in_region) {
            body(0, n);
            return;
        }
        const std::lock_guard<std::mutex> region(region_mu_);
        Job job;
        job.n = n;
        job.grain = grain;
        job.body = &body;
        const bool account = obs::resources_enabled();
        if (account) note_dispatch(n, grain);
        const std::size_t nworkers = workers_.size();
        if (nworkers > 0 && n > grain) {
            {
                const std::lock_guard<std::mutex> lock(mu_);
                job_ = &job;
                ++generation_;
                workers_done_ = 0;
            }
            work_cv_.notify_all();
            t_in_region = true;
            run_chunks_timed(job, 0, account);
            t_in_region = false;
            std::unique_lock<std::mutex> lock(mu_);
            done_cv_.wait(lock, [&] { return workers_done_ == nworkers; });
            job_ = nullptr;
        } else {
            t_in_region = true;
            run_chunks_timed(job, 0, account);
            t_in_region = false;
        }
        if (job.error) std::rethrow_exception(job.error);
    }

    PoolStats stats() {
        const std::lock_guard<std::mutex> lock(region_mu_);
        PoolStats s;
        s.threads = threads();
        s.jobs = jobs_.load(std::memory_order_relaxed);
        s.items = items_.load(std::memory_order_relaxed);
        s.wall_ns = steady_now_ns() - stats_epoch_ns_.load(std::memory_order_relaxed);
        s.busy_ns.resize(s.threads, 0);
        for (std::size_t i = 0; i < s.threads && i < kMaxSlots; ++i)
            s.busy_ns[i] = busy_ns_[i].load(std::memory_order_relaxed);
        return s;
    }

    void reset_stats() {
        const std::lock_guard<std::mutex> lock(region_mu_);
        jobs_.store(0, std::memory_order_relaxed);
        items_.store(0, std::memory_order_relaxed);
        for (std::size_t i = 0; i < kMaxSlots; ++i)
            busy_ns_[i].store(0, std::memory_order_relaxed);
        stats_epoch_ns_.store(steady_now_ns(), std::memory_order_relaxed);
    }

private:
    Pool() : busy_ns_(kMaxSlots) {
        stats_epoch_ns_.store(steady_now_ns(), std::memory_order_relaxed);
        threads_configured_.store(auto_thread_count(), std::memory_order_relaxed);
        start_workers();
    }

    // Slot-attributed busy time. Gated on the caller's resources_enabled()
    // check so the job-free hot path stays two clock reads at most.
    void run_chunks_timed(Job& job, std::size_t slot, bool account) noexcept {
        if (!account) {
            job.run_chunks();
            return;
        }
        const std::uint64_t t0 = steady_now_ns();
        job.run_chunks();
        const std::uint64_t t1 = steady_now_ns();
        if (slot < kMaxSlots)
            busy_ns_[slot].fetch_add(t1 - t0, std::memory_order_relaxed);
    }

    void note_dispatch(std::size_t n, std::size_t grain) noexcept {
        jobs_.fetch_add(1, std::memory_order_relaxed);
        items_.fetch_add(n, std::memory_order_relaxed);
        try {
            // Queue depth at dispatch = chunks this job fans out into.
            static obs::Counter& jobs = obs::counter("par.jobs");
            static obs::Histogram& chunks = obs::histogram("par.chunks_per_job");
            static obs::Histogram& items = obs::histogram("par.items_per_job");
            ++jobs;
            chunks.record(static_cast<double>((n + grain - 1) / grain));
            items.record(static_cast<double>(n));
        } catch (...) {
        }
    }

    ~Pool() {
        const std::lock_guard<std::mutex> lock(region_mu_);
        stop_workers();
    }

    static std::size_t auto_thread_count() {
        const std::size_t hw = std::max(1u, std::thread::hardware_concurrency());
        return parse_thread_count(std::getenv("PGSI_THREADS"), hw);
    }

    void start_workers() {
        std::uint64_t gen;
        {
            const std::lock_guard<std::mutex> lock(mu_);
            stop_ = false;
            gen = generation_;
        }
        const std::size_t configured = threads();
        const std::size_t nworkers = configured > 0 ? configured - 1 : 0;
        workers_.reserve(nworkers);
        for (std::size_t i = 0; i < nworkers; ++i)
            workers_.emplace_back([this, gen, i] { worker_loop(gen, i + 1); });
    }

    void stop_workers() {
        {
            const std::lock_guard<std::mutex> lock(mu_);
            stop_ = true;
        }
        work_cv_.notify_all();
        for (std::thread& t : workers_) t.join();
        workers_.clear();
    }

    // seen starts at the generation captured when this worker was spawned
    // (no job can be in flight then — reconfiguration holds region_mu_).
    // generation_ outlives reconfiguration, so starting from zero would make
    // a fresh worker mistake an already-retired job_ (nullptr) for new work.
    void worker_loop(std::uint64_t seen, std::size_t slot) {
        obs::set_thread_name("par.worker-" + std::to_string(slot));
        for (;;) {
            Job* job = nullptr;
            {
                std::unique_lock<std::mutex> lock(mu_);
                work_cv_.wait(lock,
                              [&] { return stop_ || generation_ != seen; });
                if (stop_) return;
                seen = generation_;
                job = job_;
            }
            t_in_region = true;
            run_chunks_timed(*job, slot, obs::resources_enabled());
            t_in_region = false;
            {
                const std::lock_guard<std::mutex> lock(mu_);
                ++workers_done_;
            }
            done_cv_.notify_one();
        }
    }

    std::mutex region_mu_; // serializes top-level parallel_fors + reconfig
    std::atomic<std::size_t> threads_configured_{1};
    std::vector<std::thread> workers_;

    // Utilization accounting (PoolStats). Sized once for the clamp limit of
    // parse_thread_count so reconfiguration never reallocates under foot.
    static constexpr std::size_t kMaxSlots = 1025; // caller slot + 1024 workers
    std::vector<std::atomic_uint64_t> busy_ns_;
    std::atomic_uint64_t jobs_{0};
    std::atomic_uint64_t items_{0};
    std::atomic_uint64_t stats_epoch_ns_{0};

    std::mutex mu_; // guards the fields below
    std::condition_variable work_cv_;
    std::condition_variable done_cv_;
    Job* job_ = nullptr;
    std::uint64_t generation_ = 0;
    std::size_t workers_done_ = 0;
    bool stop_ = false;
};

} // namespace

std::size_t parse_thread_count(const char* value, std::size_t fallback) noexcept {
    if (value == nullptr || *value == '\0') return fallback;
    char* end = nullptr;
    const long n = std::strtol(value, &end, 10);
    if (end == value || *end != '\0' || n <= 0) return fallback;
    return std::min<std::size_t>(static_cast<std::size_t>(n), 1024);
}

std::size_t thread_count() { return Pool::instance().threads(); }

void set_thread_count(std::size_t n) { Pool::instance().set_threads(n); }

bool in_parallel_region() noexcept { return t_in_region; }

PoolStats pool_stats() { return Pool::instance().stats(); }

void reset_pool_stats() { Pool::instance().reset_stats(); }

namespace detail {

void run_chunked(std::size_t n, std::size_t grain,
                 const std::function<void(std::size_t, std::size_t)>& body) {
    Pool::instance().run(n, grain, body);
}

} // namespace detail

} // namespace pgsi::par
