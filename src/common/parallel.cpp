#include "common/parallel.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace pgsi::par {

namespace {

thread_local bool t_in_region = false;

// One parallel_for invocation: an atomic cursor over [0, n) plus completion
// bookkeeping. Workers (and the caller) pull chunks until the cursor passes
// n; the first exception parks the cursor at n so everyone drains fast.
struct Job {
    std::size_t n = 0;
    std::size_t grain = 1;
    const std::function<void(std::size_t, std::size_t)>* body = nullptr;
    std::atomic<std::size_t> cursor{0};
    std::exception_ptr error;
    std::mutex error_mu;

    void run_chunks() noexcept {
        for (;;) {
            const std::size_t begin = cursor.fetch_add(grain, std::memory_order_relaxed);
            if (begin >= n) return;
            const std::size_t end = std::min(begin + grain, n);
            try {
                (*body)(begin, end);
            } catch (...) {
                {
                    const std::lock_guard<std::mutex> lock(error_mu);
                    if (!error) error = std::current_exception();
                }
                cursor.store(n, std::memory_order_relaxed); // cancel the rest
                return;
            }
        }
    }
};

// Process-wide pool. Workers sleep on a condition variable between jobs; a
// job is published by bumping a generation counter. Only one job runs at a
// time (region_mu_ serializes top-level parallel_fors; nested calls never
// reach the pool).
class Pool {
public:
    static Pool& instance() {
        static Pool p;
        return p;
    }

    // Lock-free so kernels may ask for the count from inside a region.
    std::size_t threads() const {
        return threads_configured_.load(std::memory_order_relaxed);
    }

    void set_threads(std::size_t n) {
        const std::lock_guard<std::mutex> lock(region_mu_);
        if (n == 0) n = auto_thread_count();
        if (n == threads_configured_.load(std::memory_order_relaxed)) return;
        stop_workers();
        threads_configured_.store(n, std::memory_order_relaxed);
        start_workers();
    }

    void run(std::size_t n, std::size_t grain,
             const std::function<void(std::size_t, std::size_t)>& body) {
        if (n == 0) return;
        if (grain == 0) {
            // ~4 chunks per thread: coarse enough to amortize dispatch,
            // fine enough to balance uneven bodies.
            const std::size_t target = 4 * threads();
            grain = std::max<std::size_t>(1, (n + target - 1) / target);
        }
        // Nested (or recursive) use: the outer level owns the workers.
        if (t_in_region) {
            body(0, n);
            return;
        }
        const std::lock_guard<std::mutex> region(region_mu_);
        Job job;
        job.n = n;
        job.grain = grain;
        job.body = &body;
        const std::size_t nworkers = workers_.size();
        if (nworkers > 0 && n > grain) {
            {
                const std::lock_guard<std::mutex> lock(mu_);
                job_ = &job;
                ++generation_;
                workers_done_ = 0;
            }
            work_cv_.notify_all();
            t_in_region = true;
            job.run_chunks();
            t_in_region = false;
            std::unique_lock<std::mutex> lock(mu_);
            done_cv_.wait(lock, [&] { return workers_done_ == nworkers; });
            job_ = nullptr;
        } else {
            t_in_region = true;
            job.run_chunks();
            t_in_region = false;
        }
        if (job.error) std::rethrow_exception(job.error);
    }

private:
    Pool() {
        threads_configured_.store(auto_thread_count(), std::memory_order_relaxed);
        start_workers();
    }

    ~Pool() {
        const std::lock_guard<std::mutex> lock(region_mu_);
        stop_workers();
    }

    static std::size_t auto_thread_count() {
        const std::size_t hw = std::max(1u, std::thread::hardware_concurrency());
        return parse_thread_count(std::getenv("PGSI_THREADS"), hw);
    }

    void start_workers() {
        std::uint64_t gen;
        {
            const std::lock_guard<std::mutex> lock(mu_);
            stop_ = false;
            gen = generation_;
        }
        const std::size_t configured = threads();
        const std::size_t nworkers = configured > 0 ? configured - 1 : 0;
        workers_.reserve(nworkers);
        for (std::size_t i = 0; i < nworkers; ++i)
            workers_.emplace_back([this, gen] { worker_loop(gen); });
    }

    void stop_workers() {
        {
            const std::lock_guard<std::mutex> lock(mu_);
            stop_ = true;
        }
        work_cv_.notify_all();
        for (std::thread& t : workers_) t.join();
        workers_.clear();
    }

    // seen starts at the generation captured when this worker was spawned
    // (no job can be in flight then — reconfiguration holds region_mu_).
    // generation_ outlives reconfiguration, so starting from zero would make
    // a fresh worker mistake an already-retired job_ (nullptr) for new work.
    void worker_loop(std::uint64_t seen) {
        for (;;) {
            Job* job = nullptr;
            {
                std::unique_lock<std::mutex> lock(mu_);
                work_cv_.wait(lock,
                              [&] { return stop_ || generation_ != seen; });
                if (stop_) return;
                seen = generation_;
                job = job_;
            }
            t_in_region = true;
            job->run_chunks();
            t_in_region = false;
            {
                const std::lock_guard<std::mutex> lock(mu_);
                ++workers_done_;
            }
            done_cv_.notify_one();
        }
    }

    std::mutex region_mu_; // serializes top-level parallel_fors + reconfig
    std::atomic<std::size_t> threads_configured_{1};
    std::vector<std::thread> workers_;

    std::mutex mu_; // guards the fields below
    std::condition_variable work_cv_;
    std::condition_variable done_cv_;
    Job* job_ = nullptr;
    std::uint64_t generation_ = 0;
    std::size_t workers_done_ = 0;
    bool stop_ = false;
};

} // namespace

std::size_t parse_thread_count(const char* value, std::size_t fallback) noexcept {
    if (value == nullptr || *value == '\0') return fallback;
    char* end = nullptr;
    const long n = std::strtol(value, &end, 10);
    if (end == value || *end != '\0' || n <= 0) return fallback;
    return std::min<std::size_t>(static_cast<std::size_t>(n), 1024);
}

std::size_t thread_count() { return Pool::instance().threads(); }

void set_thread_count(std::size_t n) { Pool::instance().set_threads(n); }

bool in_parallel_region() noexcept { return t_in_region; }

namespace detail {

void run_chunked(std::size_t n, std::size_t grain,
                 const std::function<void(std::size_t, std::size_t)>& body) {
    Pool::instance().run(n, grain, body);
}

} // namespace detail

} // namespace pgsi::par
