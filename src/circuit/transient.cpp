#include "circuit/transient.hpp"

#include <chrono>
#include <cmath>

#include "common/error.hpp"
#include "common/robust.hpp"
#include "numeric/lu.hpp"
#include "obs/metrics.hpp"
#include "obs/resource.hpp"
#include "obs/stream.hpp"
#include "obs/trace.hpp"

namespace pgsi {

VectorD TransientResult::waveform(NodeId node) const {
    for (std::size_t k = 0; k < probes.size(); ++k) {
        if (probes[k] != node) continue;
        VectorD w(samples.size());
        for (std::size_t s = 0; s < samples.size(); ++s) w[s] = samples[s][k];
        return w;
    }
    throw InvalidArgument("TransientResult: node was not recorded");
}

double TransientResult::peak_abs(NodeId node) const {
    const VectorD w = waveform(node);
    return max_abs(w);
}

double TransientResult::peak_excursion(NodeId node) const {
    const VectorD w = waveform(node);
    double m = 0;
    for (double v : w) m = std::max(m, std::abs(v - w.front()));
    return m;
}

namespace {

// Internal capacitor bookkeeping (netlist capacitors + driver output caps).
struct CapState {
    NodeId a = 0, b = 0;
    double c = 0;
    double v_prev = 0; // v(a) - v(b)
    double i_prev = 0;
};

} // namespace

struct TransientStepper::Impl {
    const Netlist& nl;
    double dt;
    Integrator method;
    robust::RecoveryOptions ropt;
    robust::RecoveryReport report;
    MnaLayout lay;

    std::vector<CapState> caps;
    MatrixD lfull; // inductor coupling matrix (self + mutual)
    std::vector<std::unique_ptr<TlineState>> tstates;
    VectorD ind_i_prev, ind_v_prev;
    VectorD driver_gu, driver_gd;
    VectorD table_v;       // table linearization voltages (per element)
    VectorD table_g_last;  // conductances stamped in the current factor
    MatrixD base_trap, base_be;
    bool have_trap = false, have_be = false;
    std::unique_ptr<Lu<double>> lu;
    Integrator lu_method = Integrator::BackwardEuler;
    bool lu_valid = false;

    std::size_t step_count = 0;

    // Convergence streams (kStreamNone while recording is off; the opened_
    // flag keeps a capped-out recorder from re-opening every step).
    std::size_t newton_sid = obs::kStreamNone;   // Newton iterations per step
    std::size_t residual_sid = obs::kStreamNone; // final Newton residual
    std::size_t dt_sid = obs::kStreamNone;       // effective step size
    bool streams_opened = false;
    double last_newton_worst = 0;     // residual at Newton termination
    std::size_t last_step_substeps = 1; // > 1 when recover_step cut the step
    VectorD x;           // last MNA solution
    VectorD node_v_now;  // indexed by NodeId
    TransientStats stats;

    Impl(const Netlist& netlist, double dt_in, Integrator method_in,
         const robust::RecoveryOptions& ropt_in)
        : nl(netlist), dt(dt_in), method(method_in), ropt(ropt_in),
          lay(netlist) {
        PGSI_ALLOC_SCOPE("circuit.transient");
        PGSI_REQUIRE(dt > 0, "TransientStepper: dt must be positive");
        PGSI_REQUIRE(nl.sparam_blocks().empty(),
                     "TransientStepper: S-parameter blocks are AC-only; fit "
                     "them with vector_fit + stamp_foster_impedance first");
        for (const Capacitor& c : nl.capacitors())
            caps.push_back({c.a, c.b, c.c, 0, 0});
        for (const DriverInstance& d : nl.drivers())
            if (d.params.c_out > 0)
                caps.push_back({d.out, d.gnd, d.params.c_out, 0, 0});

        const std::size_t ni = nl.inductors().size();
        lfull = MatrixD(ni, ni);
        for (std::size_t k = 0; k < ni; ++k) lfull(k, k) = nl.inductors()[k].l;
        for (const MutualCoupling& mu : nl.mutuals()) {
            const double m = mu.k * std::sqrt(std::abs(nl.inductors()[mu.l1].l) *
                                              std::abs(nl.inductors()[mu.l2].l));
            lfull(mu.l1, mu.l2) += m;
            lfull(mu.l2, mu.l1) += m;
        }
        ind_i_prev.assign(ni, 0.0);
        ind_v_prev.assign(ni, 0.0);
        driver_gu.assign(nl.drivers().size(), -1.0);
        driver_gd.assign(nl.drivers().size(), -1.0);
        table_v.assign(nl.table_conductances().size(), 0.0);
        table_g_last.assign(nl.table_conductances().size(), -1.0);

        initialize_dc();
    }

    void initialize_dc() {
        PGSI_TRACE_SCOPE("transient.dcop");
        const DcSolution dc = dc_operating_point(nl, ropt, &report);
        node_v_now = dc.node_voltage;
        for (std::size_t k = 0; k < nl.table_conductances().size(); ++k) {
            const TableConductance& tc = nl.table_conductances()[k];
            table_v[k] = dc.v(tc.a) - dc.v(tc.b);
        }
        x.assign(lay.dim(), 0.0);
        for (NodeId n = 1; n < nl.node_count(); ++n) x[lay.node(n)] = dc.v(n);
        for (std::size_t k = 0; k < nl.inductors().size(); ++k) {
            x[lay.inductor_current(k)] = dc.inductor_current[k];
            ind_i_prev[k] = dc.inductor_current[k];
            ind_v_prev[k] = 0.0;
        }
        for (std::size_t k = 0; k < nl.vsources().size(); ++k)
            x[lay.vsource_current(k)] = dc.vsource_current[k];
        for (CapState& c : caps) {
            c.v_prev = dc.v(c.a) - dc.v(c.b);
            c.i_prev = 0.0;
        }
        tstates.clear();
        for (const TlineInstance& t : nl.tlines()) {
            auto st = std::make_unique<TlineState>(*t.model, dt);
            const std::size_t n = t.near.size();
            VectorD vn(n), vf(n), in(n), inf(n);
            for (std::size_t c = 0; c < n; ++c) {
                vn[c] = dc.v(t.near[c]) - dc.v(t.near_ref);
                vf[c] = dc.v(t.far[c]) - dc.v(t.far_ref);
                const double i = kTlineDcShort * (dc.v(t.near[c]) - dc.v(t.far[c]));
                in[c] = i;
                inf[c] = -i;
            }
            st->initialize_dc(vn, in, vf, inf);
            tstates.push_back(std::move(st));
        }
    }

    double companion_scale(Integrator m) const {
        return m == Integrator::Trapezoidal ? 2.0 / dt : 1.0 / dt;
    }

    const MatrixD& base_matrix(Integrator m) {
        MatrixD& base = (m == Integrator::Trapezoidal) ? base_trap : base_be;
        bool& have = (m == Integrator::Trapezoidal) ? have_trap : have_be;
        if (have) return base;
        const double s = companion_scale(m);
        base = MatrixD(lay.dim(), lay.dim());

        for (const Resistor& r : nl.resistors())
            stamp_conductance(base, lay, r.a, r.b, 1.0 / r.r);
        for (const CapState& c : caps)
            stamp_conductance(base, lay, c.a, c.b, s * c.c);

        for (std::size_t k = 0; k < nl.inductors().size(); ++k) {
            const Inductor& l = nl.inductors()[k];
            const std::size_t cur = lay.inductor_current(k);
            stamp_branch_incidence(base, lay, l.a, l.b, cur);
            base(cur, cur) -= l.r;
            for (std::size_t j = 0; j < nl.inductors().size(); ++j)
                if (lfull(k, j) != 0.0)
                    base(cur, lay.inductor_current(j)) -= s * lfull(k, j);
        }

        for (std::size_t k = 0; k < nl.vsources().size(); ++k) {
            const VSource& v = nl.vsources()[k];
            stamp_branch_incidence(base, lay, v.a, v.b, lay.vsource_current(k));
        }

        for (const TlineInstance& t : nl.tlines()) {
            const MatrixD& yc = t.model->characteristic_admittance();
            const std::size_t n = t.near.size();
            auto stamp_end = [&](const std::vector<NodeId>& nodes, NodeId ref) {
                const std::size_t rr = lay.node(ref);
                for (std::size_t j = 0; j < n; ++j)
                    for (std::size_t k = 0; k < n; ++k) {
                        const double g = yc(j, k);
                        const std::size_t rj = lay.node(nodes[j]);
                        const std::size_t ck = lay.node(nodes[k]);
                        if (rj != MnaLayout::npos && ck != MnaLayout::npos)
                            base(rj, ck) += g;
                        if (rj != MnaLayout::npos && rr != MnaLayout::npos)
                            base(rj, rr) -= g;
                        if (rr != MnaLayout::npos && ck != MnaLayout::npos)
                            base(rr, ck) -= g;
                        if (rr != MnaLayout::npos) base(rr, rr) += g;
                    }
            };
            stamp_end(t.near, t.near_ref);
            stamp_end(t.far, t.far_ref);
        }
        have = true;
        return base;
    }

    void refresh_factor(Integrator m, double t, const VectorD& table_g) {
        bool drivers_moved = false;
        for (std::size_t d = 0; d < nl.drivers().size(); ++d) {
            const double gu = nl.drivers()[d].params.g_up(t);
            const double gd = nl.drivers()[d].params.g_dn(t);
            if (std::abs(gu - driver_gu[d]) > 1e-12 * (std::abs(gu) + 1e-12) ||
                std::abs(gd - driver_gd[d]) > 1e-12 * (std::abs(gd) + 1e-12))
                drivers_moved = true;
            driver_gu[d] = gu;
            driver_gd[d] = gd;
        }
        bool tables_moved = false;
        for (std::size_t k = 0; k < table_g.size(); ++k)
            if (std::abs(table_g[k] - table_g_last[k]) >
                1e-12 * (std::abs(table_g[k]) + 1e-12))
                tables_moved = true;
        table_g_last = table_g;
        if (lu_valid && m == lu_method && !drivers_moved && !tables_moved)
            return;
        PGSI_TRACE_SCOPE("transient.factor");
        ++stats.lu_factorizations;
        MatrixD mat = base_matrix(m);
        for (std::size_t d = 0; d < nl.drivers().size(); ++d) {
            const DriverInstance& dr = nl.drivers()[d];
            stamp_conductance(mat, lay, dr.out, dr.vcc, driver_gu[d]);
            stamp_conductance(mat, lay, dr.out, dr.gnd, driver_gd[d]);
        }
        for (std::size_t k = 0; k < table_g.size(); ++k) {
            const TableConductance& tc = nl.table_conductances()[k];
            stamp_conductance(mat, lay, tc.a, tc.b, table_g[k]);
        }
        lu = std::make_unique<Lu<double>>(std::move(mat));
        lu_method = m;
        lu_valid = true;
        // Conditioning spot-check: the estimator costs a handful of O(n²)
        // solves, so sample the first factor and every 64th thereafter
        // rather than every driver-edge refactorization.
        if (stats.lu_factorizations == 1 || stats.lu_factorizations % 64 == 0)
            robust::check_condition(lu->condition_estimate(),
                                    "transient MNA matrix", ropt, &report);
    }

    double node_v(const VectorD& sol, NodeId n) const {
        const std::size_t i = lay.node(n);
        return i == MnaLayout::npos ? 0.0 : sol[i];
    }

    // Everything try_step mutates, captured so a failed step (or a failed
    // cut-timestep re-advance) can be rolled back and retried.
    struct Snapshot {
        std::vector<CapState> caps;
        VectorD ind_i_prev, ind_v_prev;
        VectorD driver_gu, driver_gd;
        VectorD table_v, table_g_last;
        VectorD x, node_v_now;
    };

    Snapshot take_snapshot() const {
        return {caps,      ind_i_prev, ind_v_prev, driver_gu, driver_gd,
                table_v,   table_g_last, x,        node_v_now};
    }

    void restore(const Snapshot& s) {
        caps = s.caps;
        ind_i_prev = s.ind_i_prev;
        ind_v_prev = s.ind_v_prev;
        driver_gu = s.driver_gu;
        driver_gd = s.driver_gd;
        table_v = s.table_v;
        table_g_last = s.table_g_last;
        x = s.x;
        node_v_now = s.node_v_now;
    }

    // Change the step size, invalidating every dt-dependent cache.
    void set_dt(double new_dt) {
        if (new_dt == dt) return;
        dt = new_dt;
        have_trap = have_be = false;
        lu_valid = false;
    }

    // try_step plus the robustness envelope: the deterministic fault site
    // and, under Recover, conversion of a NumericalError (singular factor,
    // non-finite arithmetic) into a recoverable step failure.
    bool attempt(double t, Integrator m) {
        if (robust::FaultInjector::should_fire("transient.newton"))
            return false;
        try {
            return try_step(t, m);
        } catch (const NumericalError&) {
            if (ropt.policy == robust::RecoveryPolicy::Strict) throw;
            lu_valid = false; // the cached factor may be the one that failed
            return false;
        }
    }

    // Re-advance the failed step [t - dt, t] with a cut timestep: restore
    // the pre-step state and split the interval into timestep_cut_factor^L
    // backward-Euler substeps, deepening L up to max_timestep_cuts levels.
    // History values (capacitor/inductor voltages and currents) are physical
    // quantities at the substep times, so the step-size change is consistent.
    bool recover_step(const Snapshot& snap) {
        const double dt_full = dt;
        const double t0 = (step_count - 1) * dt_full;
        std::size_t nsub = 1;
        for (int level = 1; level <= ropt.max_timestep_cuts; ++level) {
            nsub *= static_cast<std::size_t>(ropt.timestep_cut_factor);
            restore(snap);
            set_dt(dt_full / static_cast<double>(nsub));
            bool ok = true;
            for (std::size_t i = 1; i <= nsub && ok; ++i)
                ok = attempt(t0 + dt_full * (static_cast<double>(i) /
                                             static_cast<double>(nsub)),
                             Integrator::BackwardEuler);
            if (ok) {
                set_dt(dt_full);
                ++stats.timestep_cuts;
                last_step_substeps = nsub;
                static obs::Counter& cuts =
                    obs::counter("transient.timestep_cuts");
                ++cuts;
                if (newton_sid != obs::kStreamNone)
                    obs::stream_mark(newton_sid, step_count * dt_full,
                                     "timestep_cut:" + std::to_string(nsub));
                robust::note_recovery(
                    &report, "transient.timestep_cut",
                    "step to t = " + std::to_string(step_count * dt_full) +
                        " s re-advanced with " + std::to_string(nsub) +
                        " backward-Euler substeps");
                return true;
            }
        }
        restore(snap);
        set_dt(dt_full);
        return false;
    }

    void advance() {
        // Cancellation point: one poll per time step, before any state of
        // this step is touched, so a cancelled run stops on a consistent
        // previous-step state.
        if (ropt.cancel != nullptr) ropt.cancel->poll("transient.step");
        const auto wall0 = std::chrono::steady_clock::now();
        PGSI_ALLOC_SCOPE("circuit.transient");
        if (!streams_opened && obs::streams_enabled()) {
            streams_opened = true;
            newton_sid = obs::stream_open("transient.newton");
            residual_sid = obs::stream_open("transient.residual");
            dt_sid = obs::stream_open("transient.dt");
        }
        const std::size_t newton0 = stats.newton_iterations;
        last_step_substeps = 1;
        ++step_count;
        const double t = step_count * dt;
        const Integrator m = (step_count == 1) ? Integrator::BackwardEuler : method;
        // Timestep cutting needs a rollback point, and is off for netlists
        // with transmission lines: their delay-line history is sampled at
        // the construction dt and cannot be re-gridded mid-run.
        const bool can_cut = ropt.policy == robust::RecoveryPolicy::Recover &&
                             ropt.max_timestep_cuts > 0 && tstates.empty();
        Snapshot snap;
        if (can_cut) snap = take_snapshot();
        if (!attempt(t, m)) {
            // Newton failure on a trapezoidal step: reject it and redo the
            // step with the maximally damped backward Euler companion before
            // cutting the timestep (the damped model is far less prone to
            // the oscillation that stalls the relaxation).
            bool recovered = false;
            if (m == Integrator::Trapezoidal) {
                ++stats.step_rejections;
                static obs::Counter& rejections =
                    obs::counter("transient.step_rejections");
                ++rejections;
                if (newton_sid != obs::kStreamNone)
                    obs::stream_mark(newton_sid, t, "be_retry");
                recovered = attempt(t, Integrator::BackwardEuler);
            }
            if (!recovered && can_cut) recovered = recover_step(snap);
            if (!recovered) {
                NumericalError err(
                    "transient: Newton iteration did not converge at t = " +
                    std::to_string(t));
                err.with_context("while advancing the transient to t = " +
                                 std::to_string(t) + " s");
                const std::string span = obs::current_span_path();
                if (!span.empty()) err.with_context("in span " + span);
                throw err;
            }
        }
        ++stats.steps;
        if (newton_sid != obs::kStreamNone)
            obs::stream_append(
                newton_sid, t,
                static_cast<double>(stats.newton_iterations - newton0));
        if (residual_sid != obs::kStreamNone)
            obs::stream_append(residual_sid, t, last_newton_worst);
        if (dt_sid != obs::kStreamNone)
            obs::stream_append(
                dt_sid, t,
                dt / static_cast<double>(last_step_substeps));
        stats.wall_seconds +=
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          wall0)
                .count();
    }

    // One attempt at the step ending at time t with integrator m. Returns
    // false when the Newton relaxation over the table elements does not
    // converge; stepper history is mutated only on success.
    bool try_step(double t, Integrator m) {
        const double s = companion_scale(m);
        const bool trap = m == Integrator::Trapezoidal;

        VectorD rhs(lay.dim(), 0.0);

        std::vector<double> cap_ihist(caps.size());
        for (std::size_t k = 0; k < caps.size(); ++k) {
            const CapState& c = caps[k];
            const double ihist =
                trap ? -(s * c.c * c.v_prev + c.i_prev) : -(s * c.c * c.v_prev);
            cap_ihist[k] = ihist;
            stamp_current(rhs, lay, c.a, -ihist);
            stamp_current(rhs, lay, c.b, +ihist);
        }

        for (std::size_t k = 0; k < nl.inductors().size(); ++k) {
            double acc = 0;
            for (std::size_t j = 0; j < nl.inductors().size(); ++j)
                if (lfull(k, j) != 0.0) acc += lfull(k, j) * ind_i_prev[j];
            double r = -s * acc;
            if (trap) r -= ind_v_prev[k];
            rhs[lay.inductor_current(k)] += r;
        }

        for (std::size_t k = 0; k < nl.vsources().size(); ++k)
            rhs[lay.vsource_current(k)] += nl.vsources()[k].src.value(t);

        for (const ISource& i : nl.isources()) {
            const double v = i.src.value(t);
            stamp_current(rhs, lay, i.a, -v);
            stamp_current(rhs, lay, i.b, +v);
        }

        std::vector<VectorD> jn_near(nl.tlines().size()), jn_far(nl.tlines().size());
        for (std::size_t ti = 0; ti < nl.tlines().size(); ++ti) {
            const TlineInstance& tl = nl.tlines()[ti];
            jn_near[ti] = tl.model->norton_from_modal_emf(tstates[ti]->near_emf());
            jn_far[ti] = tl.model->norton_from_modal_emf(tstates[ti]->far_emf());
            for (std::size_t c = 0; c < tl.near.size(); ++c) {
                stamp_current(rhs, lay, tl.near[c], jn_near[ti][c]);
                stamp_current(rhs, lay, tl.near_ref, -jn_near[ti][c]);
                stamp_current(rhs, lay, tl.far[c], jn_far[ti][c]);
                stamp_current(rhs, lay, tl.far_ref, -jn_far[ti][c]);
            }
        }

        // Solve, with Newton iteration over the table elements when present.
        const std::size_t ntab = nl.table_conductances().size();
        constexpr int kMaxNewton = 40;
        last_newton_worst = 0;
        for (int iter = 0;; ++iter) {
            VectorD table_g(ntab);
            VectorD rhs_nl = rhs;
            for (std::size_t k = 0; k < ntab; ++k) {
                const TableConductance& tc = nl.table_conductances()[k];
                const double v = table_v[k];
                table_g[k] = tc.iv.slope(v);
                const double ieq = tc.iv(v) - table_g[k] * v;
                stamp_current(rhs_nl, lay, tc.a, -ieq);
                stamp_current(rhs_nl, lay, tc.b, +ieq);
            }
            refresh_factor(m, t, table_g);
            x = lu->solve(rhs_nl);
            ++stats.lu_solves;
            if (!robust::all_finite(x)) {
                static obs::Counter& c_nonfinite =
                    obs::counter("robust.nonfinite_detected");
                ++c_nonfinite;
                if (ropt.policy == robust::RecoveryPolicy::Strict)
                    throw NumericalError(
                        "transient: non-finite MNA solution at t = " +
                        std::to_string(t));
                return false; // let the recovery ladder decide
            }
            if (ntab == 0) break;
            ++stats.newton_iterations;
            double worst = 0;
            for (std::size_t k = 0; k < ntab; ++k) {
                const TableConductance& tc = nl.table_conductances()[k];
                const double v = node_v(x, tc.a) - node_v(x, tc.b);
                worst = std::max(worst, std::abs(v - table_v[k]));
                table_v[k] += 0.8 * (v - table_v[k]);
            }
            last_newton_worst = worst;
            if (worst < 1e-9) break;
            if (iter >= kMaxNewton) return false;
        }

        for (std::size_t k = 0; k < caps.size(); ++k) {
            CapState& c = caps[k];
            const double v = node_v(x, c.a) - node_v(x, c.b);
            c.i_prev = s * c.c * v + cap_ihist[k];
            c.v_prev = v;
        }
        for (std::size_t k = 0; k < nl.inductors().size(); ++k) {
            const Inductor& l = nl.inductors()[k];
            ind_i_prev[k] = x[lay.inductor_current(k)];
            // Only the inductive part of the branch voltage enters the
            // trapezoidal history: v_L = (V_a - V_b) - R·I.
            ind_v_prev[k] =
                node_v(x, l.a) - node_v(x, l.b) - l.r * ind_i_prev[k];
        }
        for (std::size_t ti = 0; ti < nl.tlines().size(); ++ti) {
            const TlineInstance& tl = nl.tlines()[ti];
            const MatrixD& yc = tl.model->characteristic_admittance();
            const std::size_t n = tl.near.size();
            VectorD vn(n), vf(n);
            for (std::size_t c = 0; c < n; ++c) {
                vn[c] = node_v(x, tl.near[c]) - node_v(x, tl.near_ref);
                vf[c] = node_v(x, tl.far[c]) - node_v(x, tl.far_ref);
            }
            VectorD in = yc * vn;
            VectorD inf = yc * vf;
            for (std::size_t c = 0; c < n; ++c) {
                in[c] -= jn_near[ti][c];
                inf[c] -= jn_far[ti][c];
            }
            tstates[ti]->push(vn, in, vf, inf);
        }

        for (NodeId n = 1; n < nl.node_count(); ++n) node_v_now[n] = x[lay.node(n)];
        return true;
    }
};

TransientStepper::TransientStepper(const Netlist& nl, double dt,
                                   Integrator method,
                                   const robust::RecoveryOptions& recovery)
    : impl_(std::make_unique<Impl>(nl, dt, method, recovery)) {}

TransientStepper::~TransientStepper() = default;

void TransientStepper::step() { impl_->advance(); }

double TransientStepper::time() const { return impl_->step_count * impl_->dt; }

double TransientStepper::node_voltage(NodeId n) const {
    PGSI_REQUIRE(n < impl_->node_v_now.size(), "node_voltage: id out of range");
    return impl_->node_v_now[n];
}

double TransientStepper::vsource_current(std::size_t k) const {
    PGSI_REQUIRE(k < impl_->nl.vsources().size(), "vsource_current: bad index");
    return impl_->x[impl_->lay.vsource_current(k)];
}

double TransientStepper::inductor_current(std::size_t k) const {
    PGSI_REQUIRE(k < impl_->nl.inductors().size(), "inductor_current: bad index");
    return impl_->x[impl_->lay.inductor_current(k)];
}

const TransientStats& TransientStepper::stats() const { return impl_->stats; }

const robust::RecoveryReport& TransientStepper::recovery_report() const {
    return impl_->report;
}

TransientResult transient_analyze(const Netlist& nl, const TransientOptions& opt) {
    PGSI_REQUIRE(opt.dt > 0, "transient: dt must be positive");
    PGSI_REQUIRE(opt.tstop > opt.dt, "transient: tstop must exceed dt");
    PGSI_TRACE_SCOPE("transient.run");

    TransientStepper stepper(nl, opt.dt, opt.method, opt.recovery);

    std::vector<NodeId> probes = opt.probes;
    if (probes.empty())
        for (NodeId n = 0; n < nl.node_count(); ++n) probes.push_back(n);

    TransientResult res;
    res.probes = probes;
    auto record = [&]() {
        res.time.push_back(stepper.time());
        VectorD row(probes.size());
        for (std::size_t k = 0; k < probes.size(); ++k)
            row[k] = stepper.node_voltage(probes[k]);
        res.samples.push_back(std::move(row));
    };
    record();

    // Step count covering [0, tstop]: ceil(tstop/dt), except that when tstop
    // is an exact multiple of dt the quotient may land a hair above the
    // integer (1e-8/1e-9 = 10.000000000000002) and ceil would append a step
    // past tstop. Snap to the nearest integer when within a relative ulp-scale
    // tolerance of it.
    const double ratio = opt.tstop / opt.dt;
    const double nearest = std::round(ratio);
    const std::size_t steps = static_cast<std::size_t>(
        (nearest > 0 && std::abs(ratio - nearest) <= 1e-9 * nearest)
            ? nearest
            : std::ceil(ratio));
    for (std::size_t s = 1; s <= steps; ++s) {
        stepper.step();
        record();
    }
    res.stats = stepper.stats();
    res.recovery = stepper.recovery_report();
    return res;
}

} // namespace pgsi
