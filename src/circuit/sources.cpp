#include "circuit/sources.hpp"

#include <cmath>
#include <limits>

#include "common/constants.hpp"
#include "common/error.hpp"

namespace pgsi {

Source Source::dc(double value) {
    Source s;
    s.kind_ = Kind::Dc;
    s.v1_ = value;
    return s;
}

Source Source::pulse(double v1, double v2, double delay, double rise,
                     double fall, double width, double period) {
    PGSI_REQUIRE(rise > 0 && fall > 0, "pulse: rise/fall must be positive");
    PGSI_REQUIRE(width >= 0, "pulse: width must be non-negative");
    Source s;
    s.kind_ = Kind::Pulse;
    s.v1_ = v1;
    s.v2_ = v2;
    s.delay_ = delay;
    s.rise_ = rise;
    s.fall_ = fall;
    s.width_ = width;
    s.period_ = period;
    return s;
}

Source Source::sine(double offset, double amplitude, double freq_hz,
                    double delay, double damping) {
    PGSI_REQUIRE(freq_hz > 0, "sine: frequency must be positive");
    Source s;
    s.kind_ = Kind::Sin;
    s.v1_ = offset;
    s.v2_ = amplitude;
    s.freq_ = freq_hz;
    s.delay_ = delay;
    s.damping_ = damping;
    return s;
}

Source Source::pwl(VectorD times, VectorD values) {
    Source s;
    s.kind_ = Kind::Pwl;
    s.pwl_ = PiecewiseLinear(std::move(times), std::move(values));
    return s;
}

double Source::value(double t) const {
    switch (kind_) {
        case Kind::Dc:
            return v1_;
        case Kind::Pulse: {
            double tl = t - delay_;
            if (tl < 0) return v1_;
            if (period_ > 0) tl = std::fmod(tl, period_);
            if (tl < rise_) return v1_ + (v2_ - v1_) * tl / rise_;
            if (tl < rise_ + width_) return v2_;
            if (tl < rise_ + width_ + fall_)
                return v2_ + (v1_ - v2_) * (tl - rise_ - width_) / fall_;
            return v1_;
        }
        case Kind::Sin: {
            if (t < delay_) return v1_;
            const double tl = t - delay_;
            const double damp = damping_ > 0 ? std::exp(-damping_ * tl) : 1.0;
            return v1_ + v2_ * damp * std::sin(2.0 * pi * freq_ * tl);
        }
        case Kind::Pwl:
            return pwl_(t);
    }
    return 0.0;
}

Source::PulseParams Source::pulse_params() const {
    PGSI_REQUIRE(kind_ == Kind::Pulse, "Source: not a pulse waveform");
    return {v1_, v2_, delay_, rise_, fall_, width_, period_};
}

Source& Source::set_ac(double magnitude, double phase_deg) {
    ac_mag_ = magnitude;
    ac_phase_deg_ = phase_deg;
    return *this;
}

Complex Source::ac_phasor() const {
    const double ph = ac_phase_deg_ * pi / 180.0;
    return Complex(ac_mag_ * std::cos(ph), ac_mag_ * std::sin(ph));
}

double Source::settle_time() const {
    switch (kind_) {
        case Kind::Dc:
            return 0.0;
        case Kind::Pulse:
            if (period_ > 0) return std::numeric_limits<double>::infinity();
            return delay_ + rise_ + width_ + fall_;
        case Kind::Sin:
            return std::numeric_limits<double>::infinity();
        case Kind::Pwl:
            return pwl_.empty() ? 0.0 : pwl_.abscissae().back();
    }
    return 0.0;
}

} // namespace pgsi
