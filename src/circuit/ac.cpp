#include "circuit/ac.hpp"

#include <cmath>

#include <algorithm>

#include "common/constants.hpp"
#include "common/error.hpp"
#include "numeric/lu.hpp"
#include "obs/trace.hpp"

namespace pgsi {

namespace {

// Stamp a full admittance block between terminal (node, ref) pairs:
// I_into(term_j) = sum_k Y(j,k) * (V(node_k) - V(ref_k)).
void stamp_terminal_block(MatrixC& m, const MnaLayout& lay,
                          const std::vector<NodeId>& nodes,
                          const std::vector<NodeId>& refs, const MatrixC& y) {
    const std::size_t n = nodes.size();
    for (std::size_t j = 0; j < n; ++j) {
        const std::size_t rj = lay.node(nodes[j]);
        const std::size_t rrj = lay.node(refs[j]);
        for (std::size_t k = 0; k < n; ++k) {
            const std::size_t ck = lay.node(nodes[k]);
            const std::size_t crk = lay.node(refs[k]);
            const Complex g = y(j, k);
            if (rj != MnaLayout::npos && ck != MnaLayout::npos) m(rj, ck) += g;
            if (rj != MnaLayout::npos && crk != MnaLayout::npos) m(rj, crk) -= g;
            if (rrj != MnaLayout::npos && ck != MnaLayout::npos) m(rrj, ck) -= g;
            if (rrj != MnaLayout::npos && crk != MnaLayout::npos) m(rrj, crk) += g;
        }
    }
}

// Linear interpolation of the tabulated S matrix at freq (clamped at the
// sample ends), converted to the admittance Y = (1/z0)(I+S)^{-1}(I-S).
MatrixC sparam_block_admittance(const SParamBlock& blk, double freq) {
    const TouchstoneData& d = *blk.data;
    const std::size_t n = d.s.front().rows();
    MatrixC s(n, n);
    if (freq <= d.freqs_hz.front()) {
        s = d.s.front();
    } else if (freq >= d.freqs_hz.back()) {
        s = d.s.back();
    } else {
        const auto it =
            std::upper_bound(d.freqs_hz.begin(), d.freqs_hz.end(), freq);
        const std::size_t i = static_cast<std::size_t>(it - d.freqs_hz.begin());
        const double f0 = d.freqs_hz[i - 1], f1 = d.freqs_hz[i];
        const double w = (freq - f0) / (f1 - f0);
        for (std::size_t r = 0; r < n; ++r)
            for (std::size_t c = 0; c < n; ++c)
                s(r, c) = (1.0 - w) * d.s[i - 1](r, c) + w * d.s[i](r, c);
    }
    MatrixC a(n, n), b(n, n);
    for (std::size_t r = 0; r < n; ++r)
        for (std::size_t c = 0; c < n; ++c) {
            const Complex delta = (r == c) ? Complex(1, 0) : Complex(0, 0);
            a(r, c) = delta - s(r, c);
            b(r, c) = delta + s(r, c);
        }
    MatrixC y = Lu<Complex>(std::move(b)).solve(a);
    for (std::size_t r = 0; r < n; ++r)
        for (std::size_t c = 0; c < n; ++c) y(r, c) /= d.z0;
    return y;
}

} // namespace

AcSolution ac_analyze(const Netlist& nl, double freq_hz) {
    PGSI_REQUIRE(freq_hz > 0, "ac_analyze: frequency must be positive");
    PGSI_TRACE_SCOPE("ac.analyze");
    const double omega = 2.0 * pi * freq_hz;
    const Complex jw(0.0, omega);
    const MnaLayout lay(nl);
    MatrixC m(lay.dim(), lay.dim());
    VectorC b(lay.dim(), Complex{});

    for (const Resistor& r : nl.resistors())
        stamp_conductance(m, lay, r.a, r.b, Complex(1.0 / r.r, 0.0));

    if (nl.nonlinear()) {
        const DcSolution dc = dc_operating_point(nl);
        for (const TableConductance& tc : nl.table_conductances()) {
            const double v = dc.v(tc.a) - dc.v(tc.b);
            stamp_conductance(m, lay, tc.a, tc.b,
                              Complex(tc.iv.slope(v), 0.0));
        }
    }

    for (const DriverInstance& d : nl.drivers()) {
        stamp_conductance(m, lay, d.out, d.vcc, Complex(d.params.g_up(0.0), 0.0));
        stamp_conductance(m, lay, d.out, d.gnd, Complex(d.params.g_dn(0.0), 0.0));
        if (d.params.c_out > 0)
            stamp_conductance(m, lay, d.out, d.gnd, jw * d.params.c_out);
    }

    for (const Capacitor& c : nl.capacitors())
        stamp_conductance(m, lay, c.a, c.b, jw * c.c);

    // Inductors: V_a - V_b - (R + jωL) I - Σ jωM I_other = 0.
    for (std::size_t k = 0; k < nl.inductors().size(); ++k) {
        const Inductor& l = nl.inductors()[k];
        const std::size_t cur = lay.inductor_current(k);
        stamp_branch_incidence(m, lay, l.a, l.b, cur);
        m(cur, cur) -= jw * l.l + l.r;
    }
    for (const MutualCoupling& mu : nl.mutuals()) {
        const double mval = mu.k * std::sqrt(std::abs(nl.inductors()[mu.l1].l) *
                                             std::abs(nl.inductors()[mu.l2].l));
        const std::size_t c1 = lay.inductor_current(mu.l1);
        const std::size_t c2 = lay.inductor_current(mu.l2);
        m(c1, c2) -= jw * mval;
        m(c2, c1) -= jw * mval;
    }

    for (std::size_t k = 0; k < nl.vsources().size(); ++k) {
        const VSource& v = nl.vsources()[k];
        const std::size_t cur = lay.vsource_current(k);
        stamp_branch_incidence(m, lay, v.a, v.b, cur);
        b[cur] += v.src.ac_phasor();
    }

    for (const ISource& i : nl.isources()) {
        stamp_current(b, lay, i.a, -i.src.ac_phasor());
        stamp_current(b, lay, i.b, +i.src.ac_phasor());
    }

    for (const TlineInstance& t : nl.tlines()) {
        const std::size_t n = t.near.size();
        std::vector<NodeId> nodes(2 * n), refs(2 * n);
        for (std::size_t c = 0; c < n; ++c) {
            nodes[c] = t.near[c];
            nodes[n + c] = t.far[c];
            refs[c] = t.near_ref;
            refs[n + c] = t.far_ref;
        }
        stamp_terminal_block(m, lay, nodes, refs, t.model->ac_admittance(omega));
    }

    for (const SParamBlock& blk : nl.sparam_blocks()) {
        const std::vector<NodeId> refs(blk.nodes.size(), blk.ref);
        stamp_terminal_block(m, lay, blk.nodes, refs,
                             sparam_block_admittance(blk, freq_hz));
    }

    VectorC x;
    try {
        x = Lu<Complex>(std::move(m)).solve(b);
    } catch (Error& e) {
        e.with_context("while solving the AC MNA system at f = " +
                       std::to_string(freq_hz) + " Hz");
        throw;
    }

    AcSolution sol;
    sol.freq_hz = freq_hz;
    sol.node_voltage.assign(nl.node_count(), Complex{});
    for (NodeId n = 1; n < nl.node_count(); ++n) sol.node_voltage[n] = x[lay.node(n)];
    sol.vsource_current.resize(nl.vsources().size());
    for (std::size_t k = 0; k < nl.vsources().size(); ++k)
        sol.vsource_current[k] = x[lay.vsource_current(k)];
    return sol;
}

std::vector<AcSolution> ac_sweep(const Netlist& nl, const VectorD& freqs_hz) {
    PGSI_TRACE_SCOPE("ac.sweep");
    std::vector<AcSolution> out;
    out.reserve(freqs_hz.size());
    for (double f : freqs_hz) out.push_back(ac_analyze(nl, f));
    return out;
}

VectorD log_space(double f_start, double f_stop, int points_per_decade) {
    PGSI_REQUIRE(f_start > 0 && f_stop > f_start, "log_space: bad range");
    PGSI_REQUIRE(points_per_decade >= 1, "log_space: bad density");
    VectorD f;
    const double decades = std::log10(f_stop / f_start);
    const int n = static_cast<int>(std::ceil(decades * points_per_decade)) + 1;
    for (int i = 0; i < n; ++i)
        f.push_back(f_start * std::pow(10.0, decades * i / (n - 1)));
    return f;
}

VectorD lin_space(double a, double b, int n) {
    PGSI_REQUIRE(n >= 2 && b > a, "lin_space: bad range");
    VectorD f(n);
    for (int i = 0; i < n; ++i) f[i] = a + (b - a) * i / (n - 1);
    return f;
}

} // namespace pgsi
