// Circuit netlist model consumed by the MNA analyses (§5.1).
//
// A Netlist is a flat container of linear(ized) elements: R, L (with mutual
// coupling), C, independent V/I sources, behavioral drivers (time-varying
// conductance pairs) and lossless multiconductor transmission lines. Node 0
// is ground. Nodes can be created anonymously or looked up by name; names
// are what the SPICE-subset parser and exporters use.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "circuit/driver.hpp"
#include "circuit/sources.hpp"
#include "circuit/tline.hpp"
#include "io/touchstone.hpp"

namespace pgsi {

/// Node handle. 0 is ground.
using NodeId = std::size_t;

/// Linear resistor between nodes a and b.
struct Resistor {
    std::string name;
    NodeId a = 0, b = 0;
    double r = 0;
};

/// Linear capacitor between nodes a and b.
struct Capacitor {
    std::string name;
    NodeId a = 0, b = 0;
    double c = 0;
};

/// Linear inductor between nodes a and b, with an optional built-in series
/// resistance (so extracted R–L branches need no internal node). Carries its
/// own MNA current unknown, so mutual coupling and zero-resistance paths are
/// exact.
struct Inductor {
    std::string name;
    NodeId a = 0, b = 0;
    double l = 0;
    double r = 0; ///< series resistance [ohm]
};

/// Mutual coupling between two inductors, SPICE K-element semantics:
/// M = k·sqrt(L1·L2).
struct MutualCoupling {
    std::string name;
    std::size_t l1 = 0, l2 = 0; ///< indices into the inductor list
    double k = 0;
};

/// Independent voltage source (current unknown added), positive node a.
struct VSource {
    std::string name;
    NodeId a = 0, b = 0;
    Source src;
};

/// Independent current source; positive current flows from a through the
/// source to b (SPICE convention).
struct ISource {
    std::string name;
    NodeId a = 0, b = 0;
    Source src;
};

/// Nonlinear two-terminal element defined by an i(v) table: the current
/// flowing a -> b is iv(V_a - V_b), piecewise linear, clamped outside the
/// table range. Solved by Newton iteration in the DC and transient engines
/// and linearized at the operating point for AC. Covers IBIS-style driver
/// output curves, diode clamps and nonlinear terminations.
struct TableConductance {
    std::string name;
    NodeId a = 0, b = 0;
    PiecewiseLinear iv;
};

/// Behavioral push-pull driver instance (see driver.hpp).
struct DriverInstance {
    std::string name;
    NodeId out = 0, vcc = 0, gnd = 0;
    DriverParams params;
};

/// Frequency-tabulated N-port (Touchstone data) usable in AC analysis only:
/// S(f) is interpolated between samples, converted to Y and stamped between
/// the port nodes and the common reference. DC treats the block as open;
/// the transient engine rejects netlists containing one (fit the data with
/// vector_fit + stamp_foster_impedance for time domain).
struct SParamBlock {
    std::string name;
    std::vector<NodeId> nodes; ///< one positive node per port
    NodeId ref = 0;            ///< common reference node
    std::shared_ptr<const TouchstoneData> data;
};

/// Multiconductor transmission-line instance. Terminal voltages are measured
/// against the respective reference nodes.
struct TlineInstance {
    std::string name;
    std::vector<NodeId> near;  ///< near-end conductor nodes
    std::vector<NodeId> far;   ///< far-end conductor nodes
    NodeId near_ref = 0;
    NodeId far_ref = 0;
    std::shared_ptr<const ModalTline> model;
};

/// Flat netlist with named nodes.
class Netlist {
public:
    Netlist();

    /// The ground node (always id 0, name "0").
    NodeId ground() const { return 0; }

    /// Create a fresh node; auto-named "_nK" if name is empty. Throws if the
    /// name is already taken.
    NodeId add_node(const std::string& name = "");

    /// Get-or-create a node by name ("0" is ground).
    NodeId node(const std::string& name);

    /// Look up an existing node; throws if absent.
    NodeId find_node(const std::string& name) const;

    /// Name of a node id.
    const std::string& node_name(NodeId n) const;

    /// Number of nodes including ground.
    std::size_t node_count() const { return names_.size(); }

    // --- element adders (names must be unique per element kind) -----------
    void add_resistor(const std::string& name, NodeId a, NodeId b, double r);
    void add_capacitor(const std::string& name, NodeId a, NodeId b, double c);
    /// Returns the inductor index for use in add_mutual. series_r is an
    /// optional resistance in series with the inductance.
    std::size_t add_inductor(const std::string& name, NodeId a, NodeId b, double l,
                             double series_r = 0.0);
    void add_mutual(const std::string& name, const std::string& l1,
                    const std::string& l2, double k);
    void add_vsource(const std::string& name, NodeId a, NodeId b, Source src);
    void add_isource(const std::string& name, NodeId a, NodeId b, Source src);
    void add_driver(const std::string& name, NodeId out, NodeId vcc, NodeId gnd,
                    DriverParams params);
    /// v/i samples must be sorted in v and should bracket the expected
    /// operating range (the table clamps outside it).
    void add_table_conductance(const std::string& name, NodeId a, NodeId b,
                               VectorD v, VectorD i);
    void add_tline(const std::string& name, std::vector<NodeId> near,
                   std::vector<NodeId> far, std::shared_ptr<const ModalTline> model,
                   NodeId near_ref = 0, NodeId far_ref = 0);
    void add_sparam_block(const std::string& name, std::vector<NodeId> nodes,
                          std::shared_ptr<const TouchstoneData> data,
                          NodeId ref = 0);

    // --- element access ----------------------------------------------------
    const std::vector<Resistor>& resistors() const { return resistors_; }
    const std::vector<Capacitor>& capacitors() const { return capacitors_; }
    const std::vector<Inductor>& inductors() const { return inductors_; }
    const std::vector<MutualCoupling>& mutuals() const { return mutuals_; }
    const std::vector<VSource>& vsources() const { return vsources_; }
    const std::vector<ISource>& isources() const { return isources_; }
    const std::vector<DriverInstance>& drivers() const { return drivers_; }
    const std::vector<TableConductance>& table_conductances() const {
        return tables_;
    }
    const std::vector<TlineInstance>& tlines() const { return tlines_; }
    const std::vector<SParamBlock>& sparam_blocks() const { return sblocks_; }

    /// Mutable source access (benches re-run with varied stimuli).
    std::vector<VSource>& vsources() { return vsources_; }
    std::vector<ISource>& isources() { return isources_; }
    std::vector<DriverInstance>& drivers() { return drivers_; }

    /// Index of an inductor by name; throws if absent.
    std::size_t inductor_index(const std::string& name) const;

    /// True if any element value changes with time during a transient
    /// (drivers are the only such element).
    bool time_varying() const { return !drivers_.empty(); }

    /// True if the netlist needs Newton iteration (has nonlinear elements).
    bool nonlinear() const { return !tables_.empty(); }

private:
    std::vector<std::string> names_;
    std::map<std::string, NodeId> by_name_;
    std::vector<Resistor> resistors_;
    std::vector<Capacitor> capacitors_;
    std::vector<Inductor> inductors_;
    std::vector<MutualCoupling> mutuals_;
    std::vector<VSource> vsources_;
    std::vector<ISource> isources_;
    std::vector<DriverInstance> drivers_;
    std::vector<TableConductance> tables_;
    std::vector<TlineInstance> tlines_;
    std::vector<SParamBlock> sblocks_;

    void check_node(NodeId n, const char* ctx) const;
};

} // namespace pgsi
