#include <algorithm>
#include <cmath>

#include "circuit/mna.hpp"
#include "numeric/lu.hpp"

namespace pgsi {

namespace {

// One linear(ized) DC solve: table elements are stamped at the linearization
// voltages in `table_v` (Newton companion: g = di/dv, ieq = i(v) - g·v).
VectorD dc_solve_linearized(const Netlist& nl, const MnaLayout& lay,
                            const VectorD& table_v) {
    MatrixD m(lay.dim(), lay.dim());
    VectorD b(lay.dim(), 0.0);

    for (const Resistor& r : nl.resistors())
        stamp_conductance(m, lay, r.a, r.b, 1.0 / r.r);

    for (const DriverInstance& d : nl.drivers()) {
        stamp_conductance(m, lay, d.out, d.vcc, d.params.g_up(0.0));
        stamp_conductance(m, lay, d.out, d.gnd, d.params.g_dn(0.0));
    }

    for (std::size_t k = 0; k < nl.table_conductances().size(); ++k) {
        const TableConductance& tc = nl.table_conductances()[k];
        const double v = table_v[k];
        const double g = tc.iv.slope(v);
        const double ieq = tc.iv(v) - g * v;
        stamp_conductance(m, lay, tc.a, tc.b, g);
        stamp_current(b, lay, tc.a, -ieq);
        stamp_current(b, lay, tc.b, +ieq);
    }

    // Inductors: branch current unknown, branch equation V_a - V_b = R·I.
    // A loop of *ideal* inductors makes the DC system structurally singular
    // (the circulating current is undetermined), and extracted plane models
    // are full of such loops — including mutual-coupling branches between
    // galvanically separate planes, which must NOT become DC shorts. The
    // regularization resistance is therefore taken *proportional to the
    // branch inductance* (r = L/τ, τ = 1 s): the resulting DC conductance
    // network is exactly τ·Γ, which preserves the inductive network's
    // per-component current conservation, so no spurious inter-plane DC path
    // appears while every loop current is pinned. Voltages move by < nV.
    constexpr double kDcLoopRegPerSecond = 1.0; // r = L · this
    for (std::size_t k = 0; k < nl.inductors().size(); ++k) {
        const Inductor& l = nl.inductors()[k];
        const std::size_t cur = lay.inductor_current(k);
        stamp_branch_incidence(m, lay, l.a, l.b, cur);
        m(cur, cur) -= (l.r > 0 ? l.r : l.l * kDcLoopRegPerSecond);
    }

    // Voltage sources: branch equation V_a - V_b = value.
    for (std::size_t k = 0; k < nl.vsources().size(); ++k) {
        const VSource& v = nl.vsources()[k];
        const std::size_t cur = lay.vsource_current(k);
        stamp_branch_incidence(m, lay, v.a, v.b, cur);
        b[cur] += v.src.dc_value();
    }

    for (const ISource& i : nl.isources()) {
        // Positive source current flows a -> b through the source, i.e. it is
        // extracted from node a and injected into node b.
        stamp_current(b, lay, i.a, -i.src.dc_value());
        stamp_current(b, lay, i.b, +i.src.dc_value());
    }

    for (const TlineInstance& t : nl.tlines())
        for (std::size_t c = 0; c < t.near.size(); ++c)
            stamp_conductance(m, lay, t.near[c], t.far[c], kTlineDcShort);

    return Lu<double>(std::move(m)).solve(b);
}

} // namespace

DcSolution dc_operating_point(const Netlist& nl) {
    const MnaLayout lay(nl);
    const std::size_t ntab = nl.table_conductances().size();

    VectorD table_v(ntab, 0.0);
    VectorD x;
    constexpr int kMaxNewton = 60;
    for (int iter = 0;; ++iter) {
        x = dc_solve_linearized(nl, lay, table_v);
        if (ntab == 0) break;
        auto node_v = [&](NodeId n) {
            const std::size_t i = lay.node(n);
            return i == MnaLayout::npos ? 0.0 : x[i];
        };
        double worst = 0;
        for (std::size_t k = 0; k < ntab; ++k) {
            const TableConductance& tc = nl.table_conductances()[k];
            const double v = node_v(tc.a) - node_v(tc.b);
            worst = std::max(worst, std::abs(v - table_v[k]));
            // Damped update improves robustness across table breakpoints.
            table_v[k] += 0.8 * (v - table_v[k]);
        }
        if (worst < 1e-9) break;
        if (iter >= kMaxNewton)
            throw NumericalError(
                "dc_operating_point: Newton iteration did not converge");
    }

    DcSolution sol;
    sol.node_voltage.assign(nl.node_count(), 0.0);
    for (NodeId n = 1; n < nl.node_count(); ++n) sol.node_voltage[n] = x[lay.node(n)];
    sol.inductor_current.resize(nl.inductors().size());
    for (std::size_t k = 0; k < nl.inductors().size(); ++k)
        sol.inductor_current[k] = x[lay.inductor_current(k)];
    sol.vsource_current.resize(nl.vsources().size());
    for (std::size_t k = 0; k < nl.vsources().size(); ++k)
        sol.vsource_current[k] = x[lay.vsource_current(k)];
    return sol;
}

} // namespace pgsi
