#include <algorithm>
#include <cmath>
#include <string>

#include "circuit/mna.hpp"
#include "common/robust.hpp"
#include "numeric/lu.hpp"
#include "obs/metrics.hpp"
#include "obs/resource.hpp"
#include "obs/stream.hpp"

namespace pgsi {

namespace {

// One linear(ized) DC solve: table elements are stamped at the linearization
// voltages in `table_v` (Newton companion: g = di/dv, ieq = i(v) - g·v).
// `gmin` adds a shunt conductance from every node to ground (continuation
// regularization), `srcscale` scales every independent source (source
// ramping); gmin = 0, srcscale = 1 is the physical system.
VectorD dc_solve_linearized(const Netlist& nl, const MnaLayout& lay,
                            const VectorD& table_v, double gmin,
                            double srcscale) {
    MatrixD m(lay.dim(), lay.dim());
    VectorD b(lay.dim(), 0.0);

    for (const Resistor& r : nl.resistors())
        stamp_conductance(m, lay, r.a, r.b, 1.0 / r.r);

    for (const DriverInstance& d : nl.drivers()) {
        stamp_conductance(m, lay, d.out, d.vcc, d.params.g_up(0.0));
        stamp_conductance(m, lay, d.out, d.gnd, d.params.g_dn(0.0));
    }

    for (std::size_t k = 0; k < nl.table_conductances().size(); ++k) {
        const TableConductance& tc = nl.table_conductances()[k];
        const double v = table_v[k];
        const double g = tc.iv.slope(v);
        const double ieq = tc.iv(v) - g * v;
        stamp_conductance(m, lay, tc.a, tc.b, g);
        stamp_current(b, lay, tc.a, -ieq);
        stamp_current(b, lay, tc.b, +ieq);
    }

    // Inductors: branch current unknown, branch equation V_a - V_b = R·I.
    // A loop of *ideal* inductors makes the DC system structurally singular
    // (the circulating current is undetermined), and extracted plane models
    // are full of such loops — including mutual-coupling branches between
    // galvanically separate planes, which must NOT become DC shorts. The
    // regularization resistance is therefore taken *proportional to the
    // branch inductance* (r = L/τ, τ = 1 s): the resulting DC conductance
    // network is exactly τ·Γ, which preserves the inductive network's
    // per-component current conservation, so no spurious inter-plane DC path
    // appears while every loop current is pinned. Voltages move by < nV.
    constexpr double kDcLoopRegPerSecond = 1.0; // r = L · this
    for (std::size_t k = 0; k < nl.inductors().size(); ++k) {
        const Inductor& l = nl.inductors()[k];
        const std::size_t cur = lay.inductor_current(k);
        stamp_branch_incidence(m, lay, l.a, l.b, cur);
        m(cur, cur) -= (l.r > 0 ? l.r : l.l * kDcLoopRegPerSecond);
    }

    // Voltage sources: branch equation V_a - V_b = value.
    for (std::size_t k = 0; k < nl.vsources().size(); ++k) {
        const VSource& v = nl.vsources()[k];
        const std::size_t cur = lay.vsource_current(k);
        stamp_branch_incidence(m, lay, v.a, v.b, cur);
        b[cur] += srcscale * v.src.dc_value();
    }

    for (const ISource& i : nl.isources()) {
        // Positive source current flows a -> b through the source, i.e. it is
        // extracted from node a and injected into node b.
        stamp_current(b, lay, i.a, -srcscale * i.src.dc_value());
        stamp_current(b, lay, i.b, +srcscale * i.src.dc_value());
    }

    for (const TlineInstance& t : nl.tlines())
        for (std::size_t c = 0; c < t.near.size(); ++c)
            stamp_conductance(m, lay, t.near[c], t.far[c], kTlineDcShort);

    if (gmin > 0)
        for (NodeId n = 1; n < nl.node_count(); ++n) {
            const std::size_t i = lay.node(n);
            if (i != MnaLayout::npos) m(i, i) += gmin;
        }

    return Lu<double>(std::move(m)).solve(b);
}

// The damped Newton relaxation over the table elements at one continuation
// point. `table_v` carries the linearization state in and out (warm start
// between continuation levels). Throws NumericalError on non-convergence,
// singular factorization, or non-finite arithmetic.
VectorD dc_newton(const Netlist& nl, const MnaLayout& lay, VectorD& table_v,
                  double gmin, double srcscale) {
    if (robust::FaultInjector::should_fire("dcop.diverge"))
        throw NumericalError(
            "dc_operating_point: Newton iteration did not converge "
            "(injected divergence, fault site dcop.diverge)");
    const std::size_t ntab = nl.table_conductances().size();
    PGSI_ALLOC_SCOPE("circuit.dcop");
    // Convergence stream: the worst table-voltage residual per Newton
    // iteration; one series per dc_newton call (continuation levels each
    // get their own). Linear netlists iterate zero times and record none.
    const std::size_t sid = ntab > 0 && obs::streams_enabled()
                                ? obs::stream_open("dcop.newton")
                                : obs::kStreamNone;
    VectorD x;
    constexpr int kMaxNewton = 60;
    for (int iter = 0;; ++iter) {
        x = dc_solve_linearized(nl, lay, table_v, gmin, srcscale);
        robust::require_finite(x, "dc operating point solution");
        if (ntab == 0) break;
        auto node_v = [&](NodeId n) {
            const std::size_t i = lay.node(n);
            return i == MnaLayout::npos ? 0.0 : x[i];
        };
        double worst = 0;
        for (std::size_t k = 0; k < ntab; ++k) {
            const TableConductance& tc = nl.table_conductances()[k];
            const double v = node_v(tc.a) - node_v(tc.b);
            worst = std::max(worst, std::abs(v - table_v[k]));
            // Damped update improves robustness across table breakpoints.
            table_v[k] += 0.8 * (v - table_v[k]);
        }
        if (sid != obs::kStreamNone)
            obs::stream_append(sid, static_cast<double>(iter), worst);
        if (worst < 1e-9) break;
        if (iter >= kMaxNewton)
            throw NumericalError(
                "dc_operating_point: Newton iteration did not converge");
    }
    return x;
}

// A loop of zero-impedance inductor branches (R = 0 and L = 0) leaves the
// circulating DC current undetermined — the r = L/τ regularization above
// vanishes with L, so the MNA matrix is structurally singular. Returns the
// node cycle when one exists (closing branch's endpoints first), empty
// otherwise.
std::vector<NodeId> find_ideal_inductor_loop(const Netlist& nl) {
    const std::size_t nn = nl.node_count();
    std::vector<NodeId> parent(nn);
    for (NodeId n = 0; n < nn; ++n) parent[n] = n;
    auto find = [&](NodeId n) {
        while (parent[n] != n) {
            parent[n] = parent[parent[n]];
            n = parent[n];
        }
        return n;
    };
    std::vector<std::vector<NodeId>> adj(nn); // zero-impedance edges added
    for (const Inductor& l : nl.inductors()) {
        if (l.r > 0 || l.l > 0) continue;
        if (l.a == l.b) return {l.a}; // self loop
        const NodeId ra = find(l.a), rb = find(l.b);
        if (ra != rb) {
            parent[ra] = rb;
            adj[l.a].push_back(l.b);
            adj[l.b].push_back(l.a);
            continue;
        }
        // This branch closes a cycle: recover the existing a..b path with a
        // BFS over the zero-impedance edges added so far.
        std::vector<NodeId> prev(nn, static_cast<NodeId>(nn));
        std::vector<NodeId> queue{l.a};
        prev[l.a] = l.a;
        for (std::size_t q = 0; q < queue.size(); ++q) {
            const NodeId u = queue[q];
            if (u == l.b) break;
            for (NodeId w : adj[u])
                if (prev[w] == nn) {
                    prev[w] = u;
                    queue.push_back(w);
                }
        }
        std::vector<NodeId> loop;
        for (NodeId n = l.b; n != l.a; n = prev[n]) loop.push_back(n);
        loop.push_back(l.a);
        std::reverse(loop.begin(), loop.end());
        return loop;
    }
    return {};
}

DcSolution pack_solution(const Netlist& nl, const MnaLayout& lay,
                         const VectorD& x) {
    DcSolution sol;
    sol.node_voltage.assign(nl.node_count(), 0.0);
    for (NodeId n = 1; n < nl.node_count(); ++n)
        sol.node_voltage[n] = x[lay.node(n)];
    sol.inductor_current.resize(nl.inductors().size());
    for (std::size_t k = 0; k < nl.inductors().size(); ++k)
        sol.inductor_current[k] = x[lay.inductor_current(k)];
    sol.vsource_current.resize(nl.vsources().size());
    for (std::size_t k = 0; k < nl.vsources().size(); ++k)
        sol.vsource_current[k] = x[lay.vsource_current(k)];
    return sol;
}

} // namespace

DcSolution dc_operating_point(const Netlist& nl) {
    return dc_operating_point(nl, robust::RecoveryOptions{}, nullptr);
}

DcSolution dc_operating_point(const Netlist& nl,
                              const robust::RecoveryOptions& opt,
                              robust::RecoveryReport* report) {
    // Cancellation point: before the plain attempt and (below) before each
    // continuation family, so a cancelled batch job never grinds through
    // gmin stepping it no longer needs.
    if (opt.cancel != nullptr) opt.cancel->poll("dcop.solve");
    const MnaLayout lay(nl);
    const std::size_t ntab = nl.table_conductances().size();
    VectorD table_v(ntab, 0.0);
    VectorD x;
    try {
        x = dc_newton(nl, lay, table_v, 0.0, 1.0);
        return pack_solution(nl, lay, x);
    } catch (const NumericalError&) {
        // Structural diagnosis first: a loop of zero-impedance inductors is
        // a modeling error no continuation can fix — name the loop instead
        // of retrying.
        const std::vector<NodeId> loop = find_ideal_inductor_loop(nl);
        if (!loop.empty()) {
            std::string msg =
                "dc_operating_point: loop of ideal (R = 0, L = 0) inductors "
                "through node(s)";
            for (NodeId n : loop) msg += " '" + nl.node_name(n) + "'";
            msg += "; the circulating DC current is undetermined — give one "
                   "branch a nonzero series resistance or inductance";
            throw InvalidArgument(msg);
        }
        if (opt.policy == robust::RecoveryPolicy::Strict) throw;
    }

    // Gmin stepping: solve with a shunt conductance on every node, shrinking
    // it 10× per level (each level warm-starts the next through table_v),
    // then remove it entirely for the final solve.
    {
        table_v.assign(ntab, 0.0);
        double gmin = opt.gmin_start;
        bool ok = true;
        try {
            for (int s = 0; s < opt.gmin_steps; ++s, gmin *= 0.1) {
                if (opt.cancel != nullptr) opt.cancel->poll("dcop.gmin");
                x = dc_newton(nl, lay, table_v, gmin, 1.0);
            }
            x = dc_newton(nl, lay, table_v, 0.0, 1.0);
        } catch (const NumericalError&) {
            ok = false;
        }
        if (ok) {
            robust::note_recovery(report, "dcop.gmin",
                                  "DC operating point recovered by gmin "
                                  "stepping (" +
                                      std::to_string(opt.gmin_steps) +
                                      " levels from " +
                                      std::to_string(opt.gmin_start) + " S)");
            return pack_solution(nl, lay, x);
        }
    }

    // Source ramping: scale every independent source up from a fraction of
    // its value, warm-starting each rung from the previous solution.
    {
        table_v.assign(ntab, 0.0);
        bool ok = true;
        try {
            for (int s = 1; s <= opt.source_steps; ++s) {
                if (opt.cancel != nullptr) opt.cancel->poll("dcop.source_ramp");
                x = dc_newton(nl, lay, table_v, 0.0,
                              static_cast<double>(s) /
                                  static_cast<double>(opt.source_steps));
            }
        } catch (const NumericalError&) {
            ok = false;
        }
        if (ok) {
            robust::note_recovery(report, "dcop.source_ramp",
                                  "DC operating point recovered by ramping "
                                  "sources over " +
                                      std::to_string(opt.source_steps) +
                                      " steps");
            return pack_solution(nl, lay, x);
        }
    }

    // Re-run the plain solve so the caller sees the original failure, with
    // the recovery attempts recorded in the context chain.
    try {
        table_v.assign(ntab, 0.0);
        x = dc_newton(nl, lay, table_v, 0.0, 1.0);
    } catch (NumericalError& e) {
        e.with_context(
            "after gmin stepping and source ramping both failed to recover");
        throw;
    }
    return pack_solution(nl, lay, x);
}

} // namespace pgsi
