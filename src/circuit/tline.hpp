// Lossless multiconductor transmission line via modal analysis and the
// method of characteristics (§5.2: "signal nets are modeled as multiconductor
// transmission lines ... an accurate and efficient modal analysis is applied
// to the time-domain simulation of signal propagation which includes
// crosstalk between multiple lines").
//
// Given per-unit-length matrices L and C (from the 2-D extractor or entered
// directly), the product L·C is diagonalized through the symmetric similarity
// transform of numeric/eigen.hpp:
//     L·C·Tv = Tv·Λ,   Ti = C·Tv,
// which renders the modal inductance Lm = Tv⁻¹·L·Ti = Λ and modal capacitance
// Cm = Ti⁻¹·C·Tv = 1 simultaneously diagonal. Mode i then propagates with
// delay τ_i = len·sqrt(λ_i) and modal impedance zm_i = sqrt(λ_i) (in the
// modal coordinate system; physical port behaviour is recovered through
// Tv/Ti). Each mode gets a Branin (generalized method-of-characteristics)
// two-port: a matched source impedance plus a delayed controlled source.
//
// The terminal characteristic admittance stamped into the MNA matrix is
//     Yc = Ti · diag(1/zm) · Tv⁻¹   (symmetric, positive definite),
// and the per-step Norton history currents are J = Ti · diag(1/zm) · E_modal.
#pragma once

#include <memory>
#include <vector>

#include "numeric/eigen.hpp"
#include "numeric/interp.hpp"
#include "numeric/lu.hpp"
#include "numeric/matrix.hpp"

namespace pgsi {

/// Per-unit-length description of a uniform multiconductor line.
struct MtlParameters {
    MatrixD l; ///< inductance matrix [H/m], SPD
    MatrixD c; ///< capacitance matrix [F/m], SPD (Maxwell form)

    std::size_t conductor_count() const { return l.rows(); }
};

/// Frequency-independent modal decomposition of a lossless MTL of a given
/// physical length. Shared between the transient (Branin) and AC (exact
/// trigonometric) stamps.
class ModalTline {
public:
    ModalTline(MtlParameters params, double length_m);

    std::size_t conductor_count() const { return n_; }
    double length() const { return length_; }
    const MtlParameters& parameters() const { return params_; }

    /// Modal one-way delays [s], one per mode.
    const VectorD& delays() const { return tau_; }
    /// Modal characteristic impedances (modal coordinates).
    const VectorD& modal_impedance() const { return zm_; }
    /// Voltage modal transform Tv (physical = Tv · modal).
    const MatrixD& tv() const { return tv_; }
    /// Current modal transform Ti.
    const MatrixD& ti() const { return ti_; }
    /// Terminal characteristic admittance matrix Yc (n×n).
    const MatrixD& characteristic_admittance() const { return yc_; }

    /// Modal voltages from physical terminal voltages: Vm = Tv⁻¹ V.
    VectorD to_modal_v(const VectorD& v) const;
    /// Modal currents from physical terminal currents: Im = Ti⁻¹ I.
    VectorD to_modal_i(const VectorD& i) const;
    /// Physical Norton currents from modal history EMFs: J = Ti diag(1/zm) Em.
    VectorD norton_from_modal_emf(const VectorD& em) const;

    /// Exact frequency-domain 2n×2n admittance matrix of the lossless line,
    /// ordered (near conductors..., far conductors...). Singular exactly at
    /// the half-wave resonances of a mode; callers sample between them.
    MatrixC ac_admittance(double omega) const;

private:
    MtlParameters params_;
    double length_;
    std::size_t n_;
    MatrixD tv_, ti_;
    VectorD zm_, tau_;
    MatrixD yc_;
    Lu<double> tv_lu_;
    Lu<double> ti_lu_;
};

/// Transient state of one ModalTline instance: per-mode delay lines storing
/// the outgoing wave (V + z·I in modal coordinates) at each end.
class TlineState {
public:
    /// dt: simulator step; initial modal EMFs are set from the DC solution.
    TlineState(const ModalTline& model, double dt);

    /// History EMF vectors for the next step (modal coordinates).
    VectorD near_emf() const;
    VectorD far_emf() const;

    /// Record this step's solved terminal quantities (physical coordinates;
    /// currents are those flowing *into* the line).
    void push(const VectorD& v_near, const VectorD& i_near, const VectorD& v_far,
              const VectorD& i_far);

    /// Pre-load the history with a constant (DC) state.
    void initialize_dc(const VectorD& v_near, const VectorD& i_near,
                       const VectorD& v_far, const VectorD& i_far);

private:
    const ModalTline& model_;
    double dt_;
    std::vector<DelayLine> wave_from_near_; // per mode: Vm + zm·Im at near end
    std::vector<DelayLine> wave_from_far_;
};

} // namespace pgsi
