// Frequency-domain (AC small-signal) analysis (§5.1: "frequency domain
// simulations are useful for gaining insight of high frequency
// characteristics ... used for verification in comparison with experimental
// measurements ... in terms of S-parameters").
#pragma once

#include "circuit/mna.hpp"

namespace pgsi {

/// Phasor solution of one AC analysis point.
struct AcSolution {
    double freq_hz = 0;
    VectorC node_voltage;     ///< indexed by NodeId (entry 0 = ground)
    VectorC vsource_current;  ///< per netlist voltage source

    Complex v(NodeId n) const { return node_voltage[n]; }
};

/// Solve the linearized netlist at one frequency. Sources contribute their
/// AC phasors (set via Source::set_ac); drivers are linearized at their
/// t = 0 conductances; transmission lines use their exact trigonometric
/// admittance.
AcSolution ac_analyze(const Netlist& nl, double freq_hz);

/// Sweep helper.
std::vector<AcSolution> ac_sweep(const Netlist& nl, const VectorD& freqs_hz);

/// Logarithmically spaced frequency grid, points_per_decade points per
/// decade from f_start to f_stop (inclusive endpoints).
VectorD log_space(double f_start, double f_stop, int points_per_decade);

/// Linearly spaced grid with n points from a to b inclusive.
VectorD lin_space(double a, double b, int n);

} // namespace pgsi
