// SPICE-subset netlist parser (§5.1: "general purpose circuit simulators
// such as SPICE can also be used" — this lets decks move both ways).
//
// Supported card types:
//   * Rname n1 n2 value
//   * Cname n1 n2 value
//   * Lname n1 n2 value
//   * Kname Lname1 Lname2 k
//   * Vname n+ n- [DC v] [AC mag [phase]] [PULSE(v1 v2 td tr tf pw per)]
//                 [SIN(off ampl freq [td [damp]])] [PWL(t1 v1 t2 v2 ...)]
//   * Iname n+ n- (same source syntax)
//   * .tran tstep tstop
//   * .ac dec npts fstart fstop
//   * .end, '*' comments, '+' continuation lines
// The first line is the title. Standard value suffixes (f p n u m k meg g t)
// and trailing unit letters are accepted.
#pragma once

#include <string>

#include "circuit/netlist.hpp"

namespace pgsi {

/// Analyses requested by a parsed deck.
struct ParsedAnalyses {
    bool has_tran = false;
    double tran_step = 0, tran_stop = 0;
    bool has_ac = false;
    int ac_points_per_decade = 0;
    double ac_fstart = 0, ac_fstop = 0;
};

/// Result of parsing a deck.
struct ParsedDeck {
    std::string title;
    Netlist netlist;
    ParsedAnalyses analyses;
};

/// Parse a SPICE-subset deck from text. Throws InvalidArgument with a line
/// reference on malformed input.
ParsedDeck parse_spice(const std::string& text);

/// Parse one numeric token with SPICE magnitude suffixes ("2.2k", "10pF",
/// "3meg"). Throws InvalidArgument on garbage.
double parse_spice_value(const std::string& token);

} // namespace pgsi
