// Time-domain solution of the linear(ized) system G x + C x' = w (§5.1).
//
// Fixed time step ("combined with uniform time step for the linear circuit
// portion, this approach gives us very efficient simulation time"), with
// first-order (backward Euler) and second-order (trapezoidal) integration —
// the two methods the paper cites for stability and accuracy. For a purely
// linear circuit the MNA matrix is factored exactly once; behavioral drivers
// introduce time-varying conductances and trigger refactorization only on
// the steps where their conductances actually move.
//
// The engine is exposed both as a one-shot analysis (transient_analyze) and
// as a resumable TransientStepper. The stepper reads source values from the
// netlist on every step, so a caller may retarget sources between steps —
// that is exactly the hook the partitioned co-simulation of §5.2 uses to
// exchange pin currents and supply-noise voltages between the device and
// power/ground subsystems.
#pragma once

#include <memory>

#include "circuit/mna.hpp"
#include "common/robust.hpp"

namespace pgsi {

/// Integration method for the transient engine.
enum class Integrator {
    Trapezoidal,  ///< second order; default
    BackwardEuler ///< first order, maximally damped
};

/// Transient run configuration.
struct TransientOptions {
    double dt = 0;     ///< uniform time step [s]
    double tstop = 0;  ///< final time [s]
    Integrator method = Integrator::Trapezoidal;
    /// Nodes to record; empty records every node.
    std::vector<NodeId> probes;
    /// Numerical-recovery policy (timestep cutting, DC continuation).
    robust::RecoveryOptions recovery;
};

/// Solver telemetry of a transient run / stepper.
struct TransientStats {
    std::size_t steps = 0;             ///< time steps advanced
    std::size_t newton_iterations = 0; ///< Newton passes over table elements
    std::size_t step_rejections = 0;   ///< trapezoidal steps redone with BE
    std::size_t timestep_cuts = 0;     ///< steps re-advanced with a cut dt
    std::size_t lu_factorizations = 0; ///< MNA (re)factorizations
    std::size_t lu_solves = 0;         ///< back-substitutions
    double wall_seconds = 0;           ///< wall time spent inside step()
};

/// Recorded waveforms of a transient run.
struct TransientResult {
    VectorD time;                 ///< sample times (t = 0 is the DC point)
    std::vector<NodeId> probes;   ///< recorded nodes, in recording order
    std::vector<VectorD> samples; ///< samples[s][k] = V(probes[k]) at time[s]
    TransientStats stats;         ///< solver telemetry of the run
    robust::RecoveryReport recovery; ///< recoveries performed during the run

    /// Waveform of one recorded node across all samples.
    VectorD waveform(NodeId node) const;
    /// Largest |v| over the run at one node.
    double peak_abs(NodeId node) const;
    /// Largest |v - v(0)| (noise excursion from the DC level) at one node.
    double peak_excursion(NodeId node) const;
};

/// Resumable fixed-step transient engine over a netlist. The netlist is held
/// by reference and its *source values* are re-read every step; topology and
/// element values must not change after construction.
class TransientStepper {
public:
    /// Initializes at the DC operating point (time 0).
    TransientStepper(const Netlist& nl, double dt,
                     Integrator method = Integrator::Trapezoidal,
                     const robust::RecoveryOptions& recovery = {});
    ~TransientStepper();
    TransientStepper(const TransientStepper&) = delete;
    TransientStepper& operator=(const TransientStepper&) = delete;

    /// Advance one time step. The first step always uses backward Euler.
    void step();

    /// Current simulation time [s].
    double time() const;

    /// Node voltage at the current time.
    double node_voltage(NodeId n) const;

    /// Branch current of voltage source k at the current time (defined
    /// flowing from the + node through the source to the − node).
    double vsource_current(std::size_t k) const;

    /// Branch current of inductor k at the current time.
    double inductor_current(std::size_t k) const;

    /// Telemetry accumulated since construction.
    const TransientStats& stats() const;

    /// Recoveries performed since construction (timestep cuts, DC
    /// continuation). Empty under RecoveryPolicy::Strict.
    const robust::RecoveryReport& recovery_report() const;

private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/// Run a transient analysis. The initial condition is the DC operating
/// point; the first step always uses backward Euler to avoid trapezoidal
/// ringing on inconsistent initial derivatives.
TransientResult transient_analyze(const Netlist& nl, const TransientOptions& opt);

} // namespace pgsi
