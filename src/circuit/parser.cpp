#include "circuit/parser.hpp"

#include <algorithm>
#include <cctype>
#include <functional>
#include <map>
#include <sstream>

#include "common/error.hpp"

namespace pgsi {

namespace {

std::string lower(std::string s) {
    std::transform(s.begin(), s.end(), s.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    return s;
}

std::vector<std::string> tokenize(const std::string& line) {
    std::string cleaned = line;
    for (char& c : cleaned)
        if (c == '(' || c == ')' || c == ',' || c == '=') c = ' ';
    std::istringstream is(cleaned);
    std::vector<std::string> toks;
    std::string t;
    while (is >> t) toks.push_back(t);
    return toks;
}

[[noreturn]] void fail(int lineno, const std::string& msg) {
    throw InvalidArgument("spice parse error at line " + std::to_string(lineno) +
                          ": " + msg);
}

// Parse source tokens starting at toks[i]; returns the Source.
Source parse_source(const std::vector<std::string>& toks, std::size_t i,
                    int lineno) {
    double dc = 0;
    double ac_mag = 0, ac_phase = 0;
    bool have_wave = false;
    Source wave = Source::dc(0.0);

    while (i < toks.size()) {
        const std::string kw = lower(toks[i]);
        if (kw == "dc") {
            if (i + 1 >= toks.size()) fail(lineno, "DC needs a value");
            dc = parse_spice_value(toks[i + 1]);
            i += 2;
        } else if (kw == "ac") {
            if (i + 1 >= toks.size()) fail(lineno, "AC needs a magnitude");
            ac_mag = parse_spice_value(toks[i + 1]);
            i += 2;
            if (i < toks.size() && (std::isdigit(static_cast<unsigned char>(
                                        toks[i][0])) ||
                                    toks[i][0] == '-' || toks[i][0] == '.')) {
                ac_phase = parse_spice_value(toks[i]);
                ++i;
            }
        } else if (kw == "pulse") {
            if (i + 7 >= toks.size()) fail(lineno, "PULSE needs 7 values");
            const double v1 = parse_spice_value(toks[i + 1]);
            const double v2 = parse_spice_value(toks[i + 2]);
            const double td = parse_spice_value(toks[i + 3]);
            const double tr = parse_spice_value(toks[i + 4]);
            const double tf = parse_spice_value(toks[i + 5]);
            const double pw = parse_spice_value(toks[i + 6]);
            const double per = parse_spice_value(toks[i + 7]);
            wave = Source::pulse(v1, v2, td, tr, tf, pw, per);
            have_wave = true;
            i += 8;
        } else if (kw == "sin") {
            if (i + 3 >= toks.size()) fail(lineno, "SIN needs at least 3 values");
            const double off = parse_spice_value(toks[i + 1]);
            const double amp = parse_spice_value(toks[i + 2]);
            const double freq = parse_spice_value(toks[i + 3]);
            double td = 0, damp = 0;
            i += 4;
            if (i < toks.size() && lower(toks[i]) != "ac") {
                td = parse_spice_value(toks[i]);
                ++i;
                if (i < toks.size() && lower(toks[i]) != "ac") {
                    damp = parse_spice_value(toks[i]);
                    ++i;
                }
            }
            wave = Source::sine(off, amp, freq, td, damp);
            have_wave = true;
        } else if (kw == "pwl") {
            VectorD ts, vs;
            ++i;
            while (i < toks.size()) {
                const char c0 = toks[i][0];
                if (!(std::isdigit(static_cast<unsigned char>(c0)) || c0 == '-' ||
                      c0 == '.' || c0 == '+'))
                    break;
                if (i + 1 >= toks.size()) fail(lineno, "PWL needs value pairs");
                ts.push_back(parse_spice_value(toks[i]));
                vs.push_back(parse_spice_value(toks[i + 1]));
                i += 2;
            }
            if (ts.empty()) fail(lineno, "PWL needs at least one pair");
            wave = Source::pwl(std::move(ts), std::move(vs));
            have_wave = true;
        } else {
            // Bare number = DC value.
            dc = parse_spice_value(toks[i]);
            ++i;
        }
    }
    Source s = have_wave ? wave : Source::dc(dc);
    if (ac_mag != 0) s.set_ac(ac_mag, ac_phase);
    return s;
}

// A logical (continuation-joined) card.
struct Card {
    int lineno = 0;
    std::vector<std::string> toks;
};

// A .subckt definition.
struct SubcktDef {
    std::vector<std::string> pins;
    std::vector<Card> cards;
};

using SubcktMap = std::map<std::string, SubcktDef>;

// Element name -> line of first definition, for duplicate detection across
// the whole expanded deck (subcircuit instances are disambiguated by prefix).
using SeenNames = std::map<std::string, int>;

// Expand cards into the netlist. `resolve` maps a card-local node name to a
// netlist node; `prefix` namespaces element names.
void expand_cards(const std::vector<Card>& cards, const SubcktMap& subckts,
                  Netlist& nl,
                  const std::function<NodeId(const std::string&)>& resolve,
                  const std::string& prefix, ParsedAnalyses* analyses,
                  int depth, SeenNames& seen);

// Instantiate one subcircuit: pins map to the caller's nodes, internal nodes
// get fresh namespaced nodes.
void instantiate_subckt(const Card& card, const SubcktMap& subckts, Netlist& nl,
                        const std::function<NodeId(const std::string&)>& resolve,
                        const std::string& prefix, int depth, SeenNames& seen) {
    if (card.toks.size() < 3)
        fail(card.lineno, "X needs: name nodes... subcktname");
    const std::string& def_name = lower(card.toks.back());
    const auto it = subckts.find(def_name);
    if (it == subckts.end())
        fail(card.lineno, "unknown subcircuit '" + card.toks.back() + "'");
    const SubcktDef& def = it->second;
    const std::size_t npins = card.toks.size() - 2;
    if (npins != def.pins.size())
        fail(card.lineno, "subcircuit '" + def_name + "' expects " +
                              std::to_string(def.pins.size()) + " pins, got " +
                              std::to_string(npins));

    std::map<std::string, NodeId> pin_map;
    for (std::size_t p = 0; p < npins; ++p)
        pin_map[lower(def.pins[p])] = resolve(card.toks[1 + p]);

    const std::string inner_prefix = prefix + card.toks[0] + ".";
    std::map<std::string, NodeId> local;
    auto inner_resolve = [&](const std::string& name) -> NodeId {
        if (name == "0") return nl.ground();
        const std::string key = lower(name);
        const auto pin = pin_map.find(key);
        if (pin != pin_map.end()) return pin->second;
        const auto loc = local.find(key);
        if (loc != local.end()) return loc->second;
        const NodeId fresh = nl.node(inner_prefix + key);
        local[key] = fresh;
        return fresh;
    };
    expand_cards(def.cards, subckts, nl, inner_resolve, inner_prefix, nullptr,
                 depth + 1, seen);
}

void expand_cards(const std::vector<Card>& cards, const SubcktMap& subckts,
                  Netlist& nl,
                  const std::function<NodeId(const std::string&)>& resolve,
                  const std::string& prefix, ParsedAnalyses* analyses,
                  int depth, SeenNames& seen) {
    if (depth > 16)
        throw InvalidArgument("spice parse error: subcircuit nesting too deep "
                              "(recursive definition?)");
    for (const Card& card : cards) {
        const std::vector<std::string>& toks = card.toks;
        const int lineno = card.lineno;
        const std::string head = lower(toks[0]);

        if (head[0] == '.') {
            if (head == ".end") break;
            if (analyses == nullptr) continue; // dot-cards ignored in subckts
            if (head == ".tran") {
                if (toks.size() < 3) fail(lineno, ".tran needs tstep tstop");
                analyses->has_tran = true;
                analyses->tran_step = parse_spice_value(toks[1]);
                analyses->tran_stop = parse_spice_value(toks[2]);
            } else if (head == ".ac") {
                if (toks.size() < 5 || lower(toks[1]) != "dec")
                    fail(lineno, ".ac supports: .ac dec npts fstart fstop");
                analyses->has_ac = true;
                analyses->ac_points_per_decade =
                    static_cast<int>(parse_spice_value(toks[2]));
                analyses->ac_fstart = parse_spice_value(toks[3]);
                analyses->ac_fstop = parse_spice_value(toks[4]);
            }
            // Other dot-cards are ignored (as SPICE tools commonly do).
            continue;
        }

        if (head[0] != '.' && head[0] != 'x') {
            const auto [it, fresh] =
                seen.emplace(prefix + lower(toks[0]), lineno);
            if (!fresh)
                fail(lineno, "duplicate element name '" + prefix + toks[0] +
                                 "' (first defined at line " +
                                 std::to_string(it->second) + ")");
        }
        try {
        switch (head[0]) {
            case 'r':
                if (toks.size() < 4) fail(lineno, "R needs: name n1 n2 value");
                nl.add_resistor(prefix + toks[0], resolve(toks[1]),
                                resolve(toks[2]), parse_spice_value(toks[3]));
                break;
            case 'c':
                if (toks.size() < 4) fail(lineno, "C needs: name n1 n2 value");
                nl.add_capacitor(prefix + toks[0], resolve(toks[1]),
                                 resolve(toks[2]), parse_spice_value(toks[3]));
                break;
            case 'l':
                if (toks.size() < 4) fail(lineno, "L needs: name n1 n2 value");
                nl.add_inductor(prefix + toks[0], resolve(toks[1]),
                                resolve(toks[2]), parse_spice_value(toks[3]));
                break;
            case 'k':
                if (toks.size() < 4) fail(lineno, "K needs: name L1 L2 k");
                nl.add_mutual(prefix + toks[0], prefix + toks[1],
                              prefix + toks[2], parse_spice_value(toks[3]));
                break;
            case 'v':
                if (toks.size() < 3) fail(lineno, "V needs: name n+ n- ...");
                nl.add_vsource(prefix + toks[0], resolve(toks[1]),
                               resolve(toks[2]), parse_source(toks, 3, lineno));
                break;
            case 'i':
                if (toks.size() < 3) fail(lineno, "I needs: name n+ n- ...");
                nl.add_isource(prefix + toks[0], resolve(toks[1]),
                               resolve(toks[2]), parse_source(toks, 3, lineno));
                break;
            case 'x':
                instantiate_subckt(card, subckts, nl, resolve, prefix, depth,
                                   seen);
                break;
            default:
                fail(lineno, "unsupported element '" + toks[0] + "'");
        }
        } catch (const InvalidArgument& e) {
            // Value and netlist-level errors (bad numeric token, zero-valued
            // R/C, |k| >= 1, ...) gain the offending line; messages that
            // already carry one pass through untouched.
            if (e.message().rfind("spice parse error", 0) == 0) throw;
            fail(lineno, e.message());
        }
    }
}

} // namespace

double parse_spice_value(const std::string& token) {
    PGSI_REQUIRE(!token.empty(), "empty numeric token");
    std::size_t pos = 0;
    double v;
    try {
        v = std::stod(token, &pos);
    } catch (const std::exception&) {
        throw InvalidArgument("bad numeric token '" + token + "'");
    }
    std::string suffix = lower(token.substr(pos));
    if (suffix.empty()) return v;
    if (suffix.rfind("meg", 0) == 0) return v * 1e6;
    switch (suffix[0]) {
        case 't': return v * 1e12;
        case 'g': return v * 1e9;
        case 'k': return v * 1e3;
        case 'm': return v * 1e-3;
        case 'u': return v * 1e-6;
        case 'n': return v * 1e-9;
        case 'p': return v * 1e-12;
        case 'f': return v * 1e-15;
        default:
            // Trailing unit letters like "V", "Hz", "ohm".
            return v;
    }
}

ParsedDeck parse_spice(const std::string& text) {
    ParsedDeck deck;
    std::istringstream is(text);
    std::string raw;
    std::vector<Card> cards;
    bool first = true;
    int lineno = 0;
    while (std::getline(is, raw)) {
        ++lineno;
        if (first) {
            deck.title = raw;
            first = false;
            continue;
        }
        if (raw.empty() || raw[0] == '*') continue;
        if (raw[0] == '+' && !cards.empty()) {
            const std::vector<std::string> extra = tokenize(raw.substr(1));
            cards.back().toks.insert(cards.back().toks.end(), extra.begin(),
                                     extra.end());
        } else {
            const std::vector<std::string> toks = tokenize(raw);
            if (!toks.empty()) cards.push_back({lineno, toks});
        }
    }

    // First pass: peel out .subckt ... .ends bodies.
    SubcktMap subckts;
    std::vector<Card> main_cards;
    for (std::size_t i = 0; i < cards.size(); ++i) {
        const std::string head = lower(cards[i].toks[0]);
        if (head == ".subckt") {
            if (cards[i].toks.size() < 3)
                fail(cards[i].lineno, ".subckt needs: name pins...");
            SubcktDef def;
            const std::string name = lower(cards[i].toks[1]);
            def.pins.assign(cards[i].toks.begin() + 2, cards[i].toks.end());
            ++i;
            int depth = 1;
            for (; i < cards.size(); ++i) {
                const std::string h = lower(cards[i].toks[0]);
                if (h == ".subckt") ++depth; // nested definitions unsupported
                if (h == ".ends") {
                    --depth;
                    if (depth == 0) break;
                }
                if (depth == 1) def.cards.push_back(cards[i]);
            }
            if (depth != 0)
                fail(cards.back().lineno, "unterminated .subckt '" + name + "'");
            subckts[name] = std::move(def);
        } else {
            main_cards.push_back(cards[i]);
        }
    }

    Netlist& nl = deck.netlist;
    auto resolve = [&nl](const std::string& name) { return nl.node(name); };
    SeenNames seen;
    expand_cards(main_cards, subckts, nl, resolve, "", &deck.analyses, 0, seen);
    return deck;
}

} // namespace pgsi
