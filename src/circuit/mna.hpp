// Modified nodal analysis layout shared by the DC, AC and transient engines
// (§5.1, eq (28): G x + C x' = w).
//
// Unknown ordering: node voltages for every non-ground node, then one branch
// current per inductor (so zero-resistance inductive paths and mutual
// coupling are handled exactly), then one branch current per voltage source.
// "Special formulation of the system equations eliminates the unnecessary
// internal inductance nodes" (§5.1): inductors contribute currents, not
// internal nodes.
#pragma once

#include <limits>

#include "circuit/netlist.hpp"
#include "common/robust.hpp"
#include "numeric/matrix.hpp"

namespace pgsi {

/// Conductance used to short transmission-line conductors end-to-end at DC
/// (a lossless line is a DC short; see dc_operating_point).
inline constexpr double kTlineDcShort = 1e6;

/// Index map from netlist entities to MNA unknowns.
class MnaLayout {
public:
    explicit MnaLayout(const Netlist& nl);

    /// Total number of unknowns.
    std::size_t dim() const { return dim_; }

    /// Marker for the eliminated ground row/column.
    static constexpr std::size_t npos = std::numeric_limits<std::size_t>::max();

    /// Unknown index of a node voltage (npos for ground).
    std::size_t node(NodeId n) const { return n == 0 ? npos : n - 1; }

    /// Unknown index of inductor k's branch current.
    std::size_t inductor_current(std::size_t k) const { return nn_ + k; }

    /// Unknown index of voltage source k's branch current.
    std::size_t vsource_current(std::size_t k) const { return nn_ + nl_ + k; }

private:
    std::size_t nn_ = 0, nl_ = 0, dim_ = 0;
};

/// Stamp a conductance g between nodes a and b of the netlist (ground rows
/// and columns are skipped).
template <class T>
void stamp_conductance(Matrix<T>& m, const MnaLayout& lay, NodeId a, NodeId b,
                       T g) {
    const std::size_t ia = lay.node(a), ib = lay.node(b);
    if (ia != MnaLayout::npos) m(ia, ia) += g;
    if (ib != MnaLayout::npos) m(ib, ib) += g;
    if (ia != MnaLayout::npos && ib != MnaLayout::npos) {
        m(ia, ib) -= g;
        m(ib, ia) -= g;
    }
}

/// Add a current injection `i` *into* node a (KCL right-hand side).
template <class T>
void stamp_current(std::vector<T>& rhs, const MnaLayout& lay, NodeId a, T i) {
    const std::size_t ia = lay.node(a);
    if (ia != MnaLayout::npos) rhs[ia] += i;
}

/// Couple a branch-current unknown at column `cur` into the KCL rows of its
/// terminal nodes (+ at a, − at b: positive branch current flows a → b) and
/// write the matching ±1 voltage coefficients into the branch equation row.
template <class T>
void stamp_branch_incidence(Matrix<T>& m, const MnaLayout& lay, NodeId a,
                            NodeId b, std::size_t cur) {
    const std::size_t ia = lay.node(a), ib = lay.node(b);
    if (ia != MnaLayout::npos) {
        m(ia, cur) += T{1};
        m(cur, ia) += T{1};
    }
    if (ib != MnaLayout::npos) {
        m(ib, cur) -= T{1};
        m(cur, ib) -= T{1};
    }
}

/// DC operating point of a netlist.
struct DcSolution {
    VectorD node_voltage;     ///< indexed by NodeId (entry 0 = ground = 0 V)
    VectorD inductor_current; ///< per netlist inductor
    VectorD vsource_current;  ///< per netlist voltage source

    double v(NodeId n) const { return node_voltage[n]; }
};

/// Compute the DC operating point. Capacitors are open, inductors are
/// shorts (their currents are solved), transmission lines are DC-shorted
/// conductor-to-conductor, drivers use their t = 0 conductances.
DcSolution dc_operating_point(const Netlist& nl);

/// DC operating point with an explicit recovery policy. Under
/// RecoveryPolicy::Recover a failed plain Newton solve is retried with gmin
/// stepping (a shunt conductance on every node, shrunk toward zero) and then
/// source ramping (all sources scaled up from a fraction of their value);
/// recoveries are appended to `report` when non-null. Under Strict this is
/// identical to the one-argument overload.
DcSolution dc_operating_point(const Netlist& nl,
                              const robust::RecoveryOptions& opt,
                              robust::RecoveryReport* report = nullptr);

} // namespace pgsi
