#include "circuit/sparams.hpp"

#include "common/error.hpp"
#include "numeric/lu.hpp"

namespace pgsi {

MatrixC z_to_s(const MatrixC& z, double z0) {
    PGSI_REQUIRE(z.square(), "z_to_s: Z must be square");
    PGSI_REQUIRE(z0 > 0, "z_to_s: z0 must be positive");
    const std::size_t n = z.rows();
    MatrixC a(n, n), b(n, n);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j) {
            const Complex zn = z(i, j) / z0;
            a(i, j) = zn - (i == j ? Complex(1, 0) : Complex(0, 0));
            b(i, j) = zn + (i == j ? Complex(1, 0) : Complex(0, 0));
        }
    // S = A B^{-1}  ==>  S B = A  ==>  B^T S^T = A^T.
    const MatrixC st = Lu<Complex>(b.transposed()).solve(a.transposed());
    return st.transposed();
}

MatrixC y_to_s(const MatrixC& y, double z0) {
    PGSI_REQUIRE(y.square(), "y_to_s: Y must be square");
    const std::size_t n = y.rows();
    MatrixC a(n, n), b(n, n);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j) {
            const Complex yn = y(i, j) * z0;
            a(i, j) = (i == j ? Complex(1, 0) : Complex(0, 0)) - yn;
            b(i, j) = (i == j ? Complex(1, 0) : Complex(0, 0)) + yn;
        }
    const MatrixC st = Lu<Complex>(b.transposed()).solve(a.transposed());
    return st.transposed();
}

SParamExtractor::SParamExtractor(const Netlist& nl, std::vector<Port> ports)
    : ports_(std::move(ports)) {
    PGSI_REQUIRE(!ports_.empty(), "SParamExtractor: no ports");
    const double z0 = ports_.front().z0;
    for (const Port& p : ports_)
        PGSI_REQUIRE(p.z0 == z0,
                     "SParamExtractor: all ports must share one reference "
                     "impedance in this implementation");

    for (std::size_t k = 0; k < ports_.size(); ++k) {
        Netlist aug = nl; // value copy: Netlist is a plain data container
        for (std::size_t j = 0; j < ports_.size(); ++j) {
            const Port& p = ports_[j];
            const std::string tag = "_sport" + std::to_string(j);
            if (j == k) {
                // Source of 1 V AC behind z0.
                const NodeId mid = aug.add_node(tag + "_mid");
                aug.add_resistor(tag + "_r", p.pos, mid, p.z0);
                aug.add_vsource(tag + "_v", mid, p.ref, Source::dc(0.0).set_ac(1.0));
            } else {
                aug.add_resistor(tag + "_r", p.pos, p.ref, p.z0);
            }
        }
        excited_.push_back(std::move(aug));
    }
}

MatrixC SParamExtractor::at(double freq_hz) const {
    const std::size_t n = ports_.size();
    MatrixC s(n, n);
    for (std::size_t k = 0; k < n; ++k) {
        const AcSolution sol = ac_analyze(excited_[k], freq_hz);
        for (std::size_t j = 0; j < n; ++j) {
            const Complex vj = sol.v(ports_[j].pos) - sol.v(ports_[j].ref);
            s(j, k) = 2.0 * vj - (j == k ? Complex(1, 0) : Complex(0, 0));
        }
    }
    return s;
}

std::vector<MatrixC> SParamExtractor::sweep(const VectorD& freqs_hz) const {
    std::vector<MatrixC> out;
    out.reserve(freqs_hz.size());
    for (double f : freqs_hz) out.push_back(at(f));
    return out;
}

} // namespace pgsi
