#include "circuit/mna.hpp"

namespace pgsi {

MnaLayout::MnaLayout(const Netlist& nl) {
    nn_ = nl.node_count() - 1;
    nl_ = nl.inductors().size();
    dim_ = nn_ + nl_ + nl.vsources().size();
}

} // namespace pgsi
