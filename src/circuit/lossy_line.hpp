// Lossy multiconductor transmission lines by RLGC ladder segmentation.
//
// The method-of-characteristics model (tline.hpp) is exact but lossless;
// real traces carry conductor resistance R [ohm/m] and dielectric
// conductance G [S/m]. The classic engineering remedy — and the one a
// quasi-static tool like the paper's uses when loss matters — is to chain
// N short lumped sections:
//
//     in ──[R/N·len]──[L/N·len]──┬── ... ──┬── out
//                                C/N·len   C/N·len  (+ G in parallel)
//
// with full mutual inductive and capacitive coupling between conductors in
// every section. N sections are accurate to roughly N/10 wavelengths; the
// helper checks the sampling against a caller-provided maximum frequency.
#pragma once

#include "circuit/netlist.hpp"
#include "circuit/tline.hpp"

namespace pgsi {

/// Per-unit-length description of a lossy multiconductor line.
struct LossyMtlParameters {
    MatrixD l;  ///< inductance [H/m], SPD
    MatrixD c;  ///< Maxwell capacitance [F/m], SPD
    VectorD r;  ///< series resistance per conductor [ohm/m]
    VectorD g;  ///< shunt conductance per conductor to reference [S/m]

    std::size_t conductor_count() const { return l.rows(); }

    /// Lift a lossless extraction, adding uniform per-conductor loss.
    static LossyMtlParameters from_lossless(const MtlParameters& p,
                                            double r_per_m, double g_per_m = 0);
};

/// Result handles of a stamped ladder.
struct LossyLineTerminals {
    std::vector<NodeId> near; ///< first-section input nodes (== caller's in)
    std::vector<NodeId> far;  ///< last-section output nodes (== caller's out)
    std::size_t sections = 0;
};

/// Stamp an N-section lossy line between the given terminal node vectors.
/// `ref` is the return/reference node for the shunt elements. Element names
/// are prefixed by `name`. Throws if the segmentation under-resolves
/// `max_freq_hz` (needs ≥ 10 sections per wavelength of the slowest mode);
/// pass 0 to skip the check.
LossyLineTerminals stamp_lossy_line(Netlist& nl, const std::string& name,
                                    const std::vector<NodeId>& in,
                                    const std::vector<NodeId>& out, NodeId ref,
                                    const LossyMtlParameters& params,
                                    double length, int sections,
                                    double max_freq_hz = 0);

/// Analytic attenuation of a matched single lossy line: exp(−α·len) with
/// α = R/(2·Z0) + G·Z0/2 (low-loss approximation). Used by tests and
/// benches as the reference.
double matched_line_attenuation(const LossyMtlParameters& p, double length);

} // namespace pgsi
