// Behavioral CMOS output driver (§5.2).
//
// The paper's SSN mechanism is driven by output stages drawing transient
// current from the power/ground network through package parasitics. The
// driver is modeled as a push-pull pair of time-varying conductances:
//
//     Vcc ──[ g_up(t) ]──┬── out
//     Gnd ──[ g_dn(t) ]──┘        (+ optional output capacitance to Gnd)
//
// with g_up(t) = s(t)/Ron_up, g_dn(t) = (1 - s(t))/Ron_dn, where s(t) ∈ [0,1]
// is the (slew-limited) logic input waveform. During a transition both
// devices partially conduct, producing the realistic crowbar + load charging
// current that excites the planes. This is the "proprietary behavioral
// device model" class of the paper, reimplemented openly; IBIS-style tables
// can be approximated by choosing Ron values per corner.
#pragma once

#include <algorithm>

#include "circuit/sources.hpp"

namespace pgsi {

/// Parameters of a behavioral push-pull driver.
struct DriverParams {
    double ron_up = 25.0;   ///< pull-up on-resistance [ohm]
    double ron_dn = 20.0;   ///< pull-down on-resistance [ohm]
    double roff = 1e9;      ///< off-state resistance [ohm]
    double c_out = 3e-12;   ///< output (die + pad) capacitance to Gnd [F]
    Source input = Source::dc(0.0); ///< logic waveform in [0,1]; 1 = drive high

    /// Pull-up conductance at time t.
    double g_up(double t) const {
        const double s = std::clamp(input.value(t), 0.0, 1.0);
        return s / ron_up + (1.0 - s) / roff;
    }
    /// Pull-down conductance at time t.
    double g_dn(double t) const {
        const double s = std::clamp(input.value(t), 0.0, 1.0);
        return (1.0 - s) / ron_dn + s / roff;
    }
};

} // namespace pgsi
