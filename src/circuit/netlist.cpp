#include "circuit/netlist.hpp"

#include <cmath>

#include "common/error.hpp"

namespace pgsi {

Netlist::Netlist() {
    names_.push_back("0");
    by_name_["0"] = 0;
}

NodeId Netlist::add_node(const std::string& name) {
    std::string n = name.empty() ? "_n" + std::to_string(names_.size()) : name;
    PGSI_REQUIRE(by_name_.find(n) == by_name_.end(),
                 "Netlist: duplicate node name '" + n + "'");
    const NodeId id = names_.size();
    names_.push_back(n);
    by_name_[n] = id;
    return id;
}

NodeId Netlist::node(const std::string& name) {
    PGSI_REQUIRE(!name.empty(), "Netlist: empty node name");
    const auto it = by_name_.find(name);
    if (it != by_name_.end()) return it->second;
    return add_node(name);
}

NodeId Netlist::find_node(const std::string& name) const {
    const auto it = by_name_.find(name);
    PGSI_REQUIRE(it != by_name_.end(), "Netlist: unknown node '" + name + "'");
    return it->second;
}

const std::string& Netlist::node_name(NodeId n) const {
    PGSI_REQUIRE(n < names_.size(), "Netlist: node id out of range");
    return names_[n];
}

void Netlist::check_node(NodeId n, const char* ctx) const {
    PGSI_REQUIRE(n < names_.size(), std::string("Netlist: bad node in ") + ctx);
}

void Netlist::add_resistor(const std::string& name, NodeId a, NodeId b, double r) {
    check_node(a, "resistor");
    check_node(b, "resistor");
    // Negative resistances are admitted for macromodel synthesis (Foster
    // sections of non-positive-real fits); MNA handles them directly.
    PGSI_REQUIRE(r != 0, "Netlist: resistor '" + name + "' must be nonzero");
    resistors_.push_back({name, a, b, r});
}

void Netlist::add_capacitor(const std::string& name, NodeId a, NodeId b, double c) {
    check_node(a, "capacitor");
    check_node(b, "capacitor");
    // Negative capacitances are admitted: congruence-reduced plane models
    // can produce small negative branch capacitors, and the MNA companion
    // models handle either sign.
    PGSI_REQUIRE(c != 0, "Netlist: capacitor '" + name + "' must be nonzero");
    capacitors_.push_back({name, a, b, c});
}

std::size_t Netlist::add_inductor(const std::string& name, NodeId a, NodeId b,
                                  double l, double series_r) {
    check_node(a, "inductor");
    check_node(b, "inductor");
    // Negative inductances are admitted: the paper's element-wise equivalent
    // circuit (eq 24) can produce them for weakly coupled distant node pairs,
    // and MNA handles them without special cases. Zero is admitted too — the
    // branch-current formulation turns (R = 0, L = 0) into an ideal jumper
    // (V_a = V_b), the natural model of a via or bond stitch; a *loop* of
    // such jumpers is structurally singular at DC and is diagnosed there.
    PGSI_REQUIRE(std::isfinite(l), "Netlist: inductor '" + name + "' must be finite");
    inductors_.push_back({name, a, b, l, series_r});
    return inductors_.size() - 1;
}

void Netlist::add_mutual(const std::string& name, const std::string& l1,
                         const std::string& l2, double k) {
    PGSI_REQUIRE(k > -1.0 && k < 1.0, "Netlist: |k| must be < 1");
    mutuals_.push_back({name, inductor_index(l1), inductor_index(l2), k});
}

void Netlist::add_vsource(const std::string& name, NodeId a, NodeId b, Source src) {
    check_node(a, "vsource");
    check_node(b, "vsource");
    vsources_.push_back({name, a, b, std::move(src)});
}

void Netlist::add_isource(const std::string& name, NodeId a, NodeId b, Source src) {
    check_node(a, "isource");
    check_node(b, "isource");
    isources_.push_back({name, a, b, std::move(src)});
}

void Netlist::add_driver(const std::string& name, NodeId out, NodeId vcc,
                         NodeId gnd, DriverParams params) {
    check_node(out, "driver");
    check_node(vcc, "driver");
    check_node(gnd, "driver");
    PGSI_REQUIRE(params.ron_up > 0 && params.ron_dn > 0 && params.roff > 0,
                 "Netlist: driver resistances must be positive");
    drivers_.push_back({name, out, vcc, gnd, std::move(params)});
}

void Netlist::add_table_conductance(const std::string& name, NodeId a, NodeId b,
                                    VectorD v, VectorD i) {
    check_node(a, "table conductance");
    check_node(b, "table conductance");
    tables_.push_back({name, a, b, PiecewiseLinear(std::move(v), std::move(i))});
}

void Netlist::add_tline(const std::string& name, std::vector<NodeId> near,
                        std::vector<NodeId> far,
                        std::shared_ptr<const ModalTline> model, NodeId near_ref,
                        NodeId far_ref) {
    PGSI_REQUIRE(model != nullptr, "Netlist: tline model is null");
    PGSI_REQUIRE(near.size() == model->conductor_count() &&
                     far.size() == model->conductor_count(),
                 "Netlist: tline terminal count mismatch");
    for (NodeId n : near) check_node(n, "tline");
    for (NodeId n : far) check_node(n, "tline");
    check_node(near_ref, "tline");
    check_node(far_ref, "tline");
    tlines_.push_back({name, std::move(near), std::move(far), near_ref, far_ref,
                       std::move(model)});
}

void Netlist::add_sparam_block(const std::string& name,
                               std::vector<NodeId> nodes,
                               std::shared_ptr<const TouchstoneData> data,
                               NodeId ref) {
    PGSI_REQUIRE(data != nullptr && !data->s.empty(),
                 "Netlist: S-parameter block needs data");
    PGSI_REQUIRE(nodes.size() == data->s.front().rows(),
                 "Netlist: S-parameter block port-count mismatch");
    for (NodeId n : nodes) check_node(n, "sparam block");
    check_node(ref, "sparam block");
    sblocks_.push_back({name, std::move(nodes), ref, std::move(data)});
}

std::size_t Netlist::inductor_index(const std::string& name) const {
    for (std::size_t i = 0; i < inductors_.size(); ++i)
        if (inductors_[i].name == name) return i;
    throw InvalidArgument("Netlist: unknown inductor '" + name + "'");
}

} // namespace pgsi
