// S-parameter computation (§6.1: frequency-domain verification "in terms of
// S-parameters").
//
// Two paths are provided: direct algebraic conversion of an impedance /
// admittance matrix (used with the field solver's port matrices), and a
// circuit-level extraction that terminates every port of a netlist in its
// reference impedance and excites one port at a time.
#pragma once

#include "circuit/ac.hpp"
#include "circuit/netlist.hpp"

namespace pgsi {

/// Convert an N-port impedance matrix to S-parameters (common real reference
/// impedance z0): S = (Z/z0 − I)(Z/z0 + I)⁻¹.
MatrixC z_to_s(const MatrixC& z, double z0);

/// Convert an N-port admittance matrix to S-parameters: S = (I − z0·Y)(I + z0·Y)⁻¹.
MatrixC y_to_s(const MatrixC& y, double z0);

/// A port of a netlist: positive node, reference node, reference impedance.
struct Port {
    NodeId pos = 0;
    NodeId ref = 0;
    double z0 = 50.0;
};

/// S-parameters of a netlist at the given ports and frequencies.
///
/// The netlist must not already contain terminations at the ports: this
/// routine adds, for each port, a source impedance z0 in series with a test
/// source, excites each port in turn and measures S_jk = 2·V_j/V_s − δ_jk
/// (equal reference impedances assumed across ports).
class SParamExtractor {
public:
    SParamExtractor(const Netlist& nl, std::vector<Port> ports);

    /// S matrix at one frequency.
    MatrixC at(double freq_hz) const;

    /// Sweep over a frequency grid; result[i] corresponds to freqs[i].
    std::vector<MatrixC> sweep(const VectorD& freqs_hz) const;

private:
    // One augmented netlist per excited port (terminations + unit source).
    std::vector<Netlist> excited_;
    std::vector<Port> ports_;
};

} // namespace pgsi
