// Independent source waveforms (§5.1): DC, PULSE, SIN and PWL stimuli with
// SPICE-compatible semantics, plus an AC small-signal magnitude/phase used by
// the frequency-domain analysis.
#pragma once

#include <memory>

#include "numeric/interp.hpp"
#include "numeric/matrix.hpp"

namespace pgsi {

/// Time-domain + AC description of an independent source value.
class Source {
public:
    /// Constant value.
    static Source dc(double value);

    /// SPICE PULSE(v1 v2 delay rise fall width period). period <= 0 means a
    /// single pulse.
    static Source pulse(double v1, double v2, double delay, double rise,
                        double fall, double width, double period = 0.0);

    /// SPICE SIN(offset amplitude freq [delay [damping]]).
    static Source sine(double offset, double amplitude, double freq_hz,
                       double delay = 0.0, double damping = 0.0);

    /// Piecewise-linear waveform.
    static Source pwl(VectorD times, VectorD values);

    /// Instantaneous value at time t [s].
    double value(double t) const;

    /// Value at t = 0 (used by the DC operating point).
    double dc_value() const { return value(0.0); }

    /// Set the AC small-signal excitation (magnitude, phase in degrees).
    Source& set_ac(double magnitude, double phase_deg = 0.0);

    /// AC phasor (0 if the source is not an AC stimulus).
    Complex ac_phasor() const;

    /// Earliest time by which the waveform has settled for good (used to pick
    /// simulation windows); returns +inf for periodic sources.
    double settle_time() const;

    /// Waveform kind, for serialization/introspection.
    enum class Kind { Dc, Pulse, Sin, Pwl };
    Kind kind() const { return kind_; }

    /// Pulse parameters (valid when kind() == Kind::Pulse).
    struct PulseParams {
        double v1 = 0, v2 = 0, delay = 0, rise = 0, fall = 0, width = 0,
               period = 0;
    };
    PulseParams pulse_params() const;

private:
    Kind kind_ = Kind::Dc;
    double v1_ = 0, v2_ = 0, delay_ = 0, rise_ = 0, fall_ = 0, width_ = 0,
           period_ = 0;
    double freq_ = 0, damping_ = 0;
    PiecewiseLinear pwl_;
    double ac_mag_ = 0, ac_phase_deg_ = 0;
};

} // namespace pgsi
