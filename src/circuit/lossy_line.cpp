#include "circuit/lossy_line.hpp"

#include <cmath>

#include "common/error.hpp"

namespace pgsi {

LossyMtlParameters LossyMtlParameters::from_lossless(const MtlParameters& p,
                                                     double r_per_m,
                                                     double g_per_m) {
    LossyMtlParameters out;
    out.l = p.l;
    out.c = p.c;
    out.r.assign(p.conductor_count(), r_per_m);
    out.g.assign(p.conductor_count(), g_per_m);
    return out;
}

LossyLineTerminals stamp_lossy_line(Netlist& nl, const std::string& name,
                                    const std::vector<NodeId>& in,
                                    const std::vector<NodeId>& out, NodeId ref,
                                    const LossyMtlParameters& params,
                                    double length, int sections,
                                    double max_freq_hz) {
    const std::size_t nc = params.conductor_count();
    PGSI_REQUIRE(nc >= 1, "stamp_lossy_line: no conductors");
    PGSI_REQUIRE(in.size() == nc && out.size() == nc,
                 "stamp_lossy_line: terminal count mismatch");
    PGSI_REQUIRE(params.r.size() == nc && params.g.size() == nc,
                 "stamp_lossy_line: loss vector size mismatch");
    PGSI_REQUIRE(length > 0, "stamp_lossy_line: length must be positive");
    PGSI_REQUIRE(sections >= 1, "stamp_lossy_line: need at least one section");

    if (max_freq_hz > 0) {
        // Slowest mode sets the shortest wavelength on the line.
        double lc_max = 0;
        for (std::size_t i = 0; i < nc; ++i)
            lc_max = std::max(lc_max, params.l(i, i) * params.c(i, i));
        const double wavelength = 1.0 / (max_freq_hz * std::sqrt(lc_max));
        PGSI_REQUIRE(length / sections <= wavelength / 10.0,
                     "stamp_lossy_line: too few sections for max_freq_hz "
                     "(need >= 10 per wavelength)");
    }

    const double dl = length / sections;
    std::vector<NodeId> cur = in;
    std::vector<std::vector<std::string>> lnames(
        sections, std::vector<std::string>(nc));

    for (int s = 0; s < sections; ++s) {
        std::vector<NodeId> next(nc);
        const std::string stag = name + "_s" + std::to_string(s);
        for (std::size_t k = 0; k < nc; ++k) {
            next[k] = (s + 1 == sections)
                          ? out[k]
                          : nl.add_node(stag + "_c" + std::to_string(k));
            // Series R folded into the section inductor.
            lnames[s][k] = "L" + stag + "_c" + std::to_string(k);
            nl.add_inductor(lnames[s][k], cur[k], next[k], params.l(k, k) * dl,
                            params.r[k] * dl);
        }
        // Mutual inductive coupling inside the section.
        for (std::size_t i = 0; i < nc; ++i)
            for (std::size_t j = i + 1; j < nc; ++j)
                if (params.l(i, j) != 0.0)
                    nl.add_mutual("K" + stag + "_" + std::to_string(i) + "_" +
                                      std::to_string(j),
                                  lnames[s][i], lnames[s][j],
                                  params.l(i, j) / std::sqrt(params.l(i, i) *
                                                             params.l(j, j)));
        // Shunt network at the section output: node caps + mutual caps + G.
        for (std::size_t i = 0; i < nc; ++i) {
            double crow = 0;
            for (std::size_t j = 0; j < nc; ++j) crow += params.c(i, j);
            if (crow > 0)
                nl.add_capacitor("C" + stag + "_g" + std::to_string(i), next[i],
                                 ref, crow * dl);
            for (std::size_t j = i + 1; j < nc; ++j) {
                const double cm = -params.c(i, j);
                if (cm != 0.0)
                    nl.add_capacitor("C" + stag + "_" + std::to_string(i) + "_" +
                                         std::to_string(j),
                                     next[i], next[j], cm * dl);
            }
            if (params.g[i] > 0)
                nl.add_resistor("Rg" + stag + "_c" + std::to_string(i), next[i],
                                ref, 1.0 / (params.g[i] * dl));
        }
        cur = next;
    }
    return {in, out, static_cast<std::size_t>(sections)};
}

double matched_line_attenuation(const LossyMtlParameters& p, double length) {
    PGSI_REQUIRE(p.conductor_count() == 1,
                 "matched_line_attenuation: single conductor expected");
    const double z0 = std::sqrt(p.l(0, 0) / p.c(0, 0));
    const double alpha = p.r[0] / (2.0 * z0) + p.g[0] * z0 / 2.0;
    return std::exp(-alpha * length);
}

} // namespace pgsi
