#include "circuit/tline.hpp"

#include <cmath>

#include "common/error.hpp"
#include "obs/metrics.hpp"

namespace pgsi {

ModalTline::ModalTline(MtlParameters params, double length_m)
    : params_(std::move(params)),
      length_(length_m),
      n_(params_.l.rows()),
      tv_(),
      ti_(),
      zm_(),
      tau_(),
      yc_(),
      tv_lu_(MatrixD::identity(1)),
      ti_lu_(MatrixD::identity(1)) {
    PGSI_REQUIRE(length_ > 0, "ModalTline: length must be positive");
    PGSI_REQUIRE(params_.l.square() && params_.c.square() &&
                     params_.l.rows() == params_.c.rows(),
                 "ModalTline: L and C must be square and equally sized");

    const ProductEigen pe = eigen_spd_product(params_.l, params_.c);
    tv_ = pe.t;
    ti_ = params_.c * tv_;
    zm_.resize(n_);
    tau_.resize(n_);
    for (std::size_t k = 0; k < n_; ++k) {
        zm_[k] = std::sqrt(pe.values[k]);
        tau_[k] = length_ * std::sqrt(pe.values[k]);
    }
    tv_lu_ = Lu<double>(tv_);
    ti_lu_ = Lu<double>(ti_);

    // Yc = Ti diag(1/zm) Tv^{-1}
    MatrixD d(n_, n_);
    for (std::size_t k = 0; k < n_; ++k) d(k, k) = 1.0 / zm_[k];
    yc_ = ti_ * d * tv_lu_.inverse();
    // Symmetrize (analytically symmetric; guards against roundoff in stamps).
    for (std::size_t i = 0; i < n_; ++i)
        for (std::size_t j = i + 1; j < n_; ++j) {
            const double v = 0.5 * (yc_(i, j) + yc_(j, i));
            yc_(i, j) = v;
            yc_(j, i) = v;
        }
}

VectorD ModalTline::to_modal_v(const VectorD& v) const { return tv_lu_.solve(v); }

VectorD ModalTline::to_modal_i(const VectorD& i) const { return ti_lu_.solve(i); }

VectorD ModalTline::norton_from_modal_emf(const VectorD& em) const {
    VectorD scaled(n_);
    for (std::size_t k = 0; k < n_; ++k) scaled[k] = em[k] / zm_[k];
    return ti_ * scaled;
}

MatrixC ModalTline::ac_admittance(double omega) const {
    // Per mode, the lossless-line 2-port admittance is
    //   [ I1 ]   1/zm [  -j·cotθ    j·cscθ ] [ V1 ]
    //   [ I2 ] =      [   j·cscθ   -j·cotθ ] [ V2 ]   with θ = ω τ.
    // (currents into the line). Assembled back through Ti ... Tv⁻¹.
    const MatrixD tvinv = tv_lu_.inverse();
    MatrixC y(2 * n_, 2 * n_);
    // θ = mπ is a half-wave resonance of mode k: cot/csc blow up. Track the
    // offending mode so a still-resonant sample can be reported precisely.
    std::size_t bad_mode = 0;
    long bad_order = 0;
    auto build = [&](double w) -> bool {
        MatrixC d11(n_, n_), d12(n_, n_);
        for (std::size_t k = 0; k < n_; ++k) {
            const double theta = w * tau_[k];
            const double s = std::sin(theta);
            if (std::abs(s) <= 1e-12) {
                bad_mode = k;
                bad_order = std::lround(theta / 3.14159265358979323846);
                return false;
            }
            const double cot = std::cos(theta) / s;
            const double csc = 1.0 / s;
            d11(k, k) = Complex(0.0, -cot / zm_[k]);
            d12(k, k) = Complex(0.0, csc / zm_[k]);
        }
        const MatrixC tic = to_complex(ti_);
        const MatrixC tvc = to_complex(tvinv);
        const MatrixC y11 = tic * d11 * tvc;
        const MatrixC y12 = tic * d12 * tvc;
        for (std::size_t i = 0; i < n_; ++i)
            for (std::size_t j = 0; j < n_; ++j) {
                y(i, j) = y11(i, j);
                y(i, n_ + j) = y12(i, j);
                y(n_ + i, j) = y12(i, j);
                y(n_ + i, n_ + j) = y11(i, j);
            }
        return true;
    };
    if (build(omega)) return y;
    // Frequency sweeps routinely land a sample exactly on a resonance (grid
    // frequencies and modal delays are both round numbers). A relative 1e-9
    // nudge moves θ far off the singularity while changing the admittance by
    // less than any physical tolerance — retry once before giving up.
    if (omega != 0.0 && build(omega * (1.0 + 1e-9))) {
        static obs::Counter& perturbed =
            obs::counter("tline.resonance_perturbations");
        ++perturbed;
        return y;
    }
    throw InvalidArgument(
        "ModalTline::ac_admittance: omega = " + std::to_string(omega) +
        " rad/s sits on the half-wave resonance m = " +
        std::to_string(bad_order) + " of mode " + std::to_string(bad_mode) +
        " (theta = m*pi) even after a relative 1e-9 perturbation; sample a "
        "different frequency");
}

TlineState::TlineState(const ModalTline& model, double dt)
    : model_(model), dt_(dt) {
    const VectorD& tau = model_.delays();
    for (std::size_t k = 0; k < tau.size(); ++k) {
        PGSI_REQUIRE(tau[k] >= dt,
                     "TlineState: time step exceeds a modal delay; reduce dt");
        wave_from_near_.emplace_back(dt, tau[k]);
        wave_from_far_.emplace_back(dt, tau[k]);
    }
}

VectorD TlineState::near_emf() const {
    // When assembling step t_n+dt, the most recent pushed sample is at t_n;
    // the wave needed left the far end at (t_n + dt) - τ, i.e. τ - dt before
    // the latest sample.
    const std::size_t n = model_.conductor_count();
    VectorD em(n);
    for (std::size_t k = 0; k < n; ++k)
        em[k] = wave_from_far_[k].value_before_last(model_.delays()[k] - dt_);
    return em;
}

VectorD TlineState::far_emf() const {
    const std::size_t n = model_.conductor_count();
    VectorD em(n);
    for (std::size_t k = 0; k < n; ++k)
        em[k] = wave_from_near_[k].value_before_last(model_.delays()[k] - dt_);
    return em;
}

void TlineState::push(const VectorD& v_near, const VectorD& i_near,
                      const VectorD& v_far, const VectorD& i_far) {
    const VectorD vmn = model_.to_modal_v(v_near);
    const VectorD imn = model_.to_modal_i(i_near);
    const VectorD vmf = model_.to_modal_v(v_far);
    const VectorD imf = model_.to_modal_i(i_far);
    const VectorD& zm = model_.modal_impedance();
    for (std::size_t k = 0; k < zm.size(); ++k) {
        wave_from_near_[k].push(vmn[k] + zm[k] * imn[k]);
        wave_from_far_[k].push(vmf[k] + zm[k] * imf[k]);
    }
}

void TlineState::initialize_dc(const VectorD& v_near, const VectorD& i_near,
                               const VectorD& v_far, const VectorD& i_far) {
    const VectorD vmn = model_.to_modal_v(v_near);
    const VectorD imn = model_.to_modal_i(i_near);
    const VectorD vmf = model_.to_modal_v(v_far);
    const VectorD imf = model_.to_modal_i(i_far);
    const VectorD& zm = model_.modal_impedance();
    const VectorD& tau = model_.delays();
    for (std::size_t k = 0; k < zm.size(); ++k) {
        // Re-create the delay lines filled with the DC wave values.
        wave_from_near_[k] = DelayLine(dt_, tau[k], vmn[k] + zm[k] * imn[k]);
        wave_from_far_[k] = DelayLine(dt_, tau[k], vmf[k] + zm[k] * imf[k]);
    }
}

} // namespace pgsi
